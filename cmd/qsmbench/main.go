// Command qsmbench runs the paper's experiments by id and prints their
// tables (or CSV).
//
// Usage:
//
//	qsmbench -list
//	qsmbench -exp fig2 [-runs 10] [-seed 1] [-csv] [-quick] [-parallel 8]
//	qsmbench -all -json .          # also emit BENCH_<id>.json perf records
//	qsmbench -cache DIR -exp fig2  # memoize results in a local store
//	qsmbench -server URL -exp fig2 # submit to a qsmd server and poll
//
// Independent (sweep-point, run) simulations fan out across -parallel
// worker goroutines (default GOMAXPROCS); tables are byte-identical to a
// serial run at the same seed. With -json PATH each experiment's wall time,
// simulated-event throughput, and allocation counters are recorded to
// BENCH_<id>.json files under the PATH directory, or to one combined JSON
// array if PATH ends in .json.
//
// Observability (internal/obs): -metrics aggregates each experiment's
// counters and histograms into METRICS_<id>.json (next to the BENCH records,
// or the current directory without -json); -trace DIR additionally collects
// sim-time spans and writes TRACE_<id>.json Chrome trace files under DIR,
// loadable in Perfetto. -progress logs per-sweep-point completion to stderr
// without perturbing the deterministic result tables.
//
// Engine tuning: -sched selects the pending-event scheduler (heap, the
// default 4-ary heap, or calendar for the calendar queue) and
// -stepprocs=false falls back from state-machine processes to goroutine
// processes in the converted subsystems. Both switches change only
// wall-clock speed; every table and metrics file is byte-identical across
// all four combinations (the differential tests in internal/experiments
// assert this).
//
// Caching: -cache DIR memoizes results in a content-addressed store (the
// same store cmd/qsmd serves from) keyed by experiment id, the
// deterministic options, and the code fingerprint — rerunning an identical
// invocation prints byte-identical tables from the cache without
// simulating. -server URL submits each experiment to a running qsmd
// instead of simulating locally, polling the job until it completes;
// repeated submissions hit the server's cache.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/service"
	"repro/internal/sim"
	"repro/internal/store"
)

func main() {
	var (
		exp       = flag.String("exp", "", "experiment id to run (see -list)")
		all       = flag.Bool("all", false, "run every experiment")
		list      = flag.Bool("list", false, "list experiment ids")
		runs      = flag.Int("runs", 5, "repetitions per data point (paper uses 10)")
		seed      = flag.Int64("seed", 1, "random seed")
		quick     = flag.Bool("quick", false, "trim sweeps for a fast smoke run")
		csv       = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		parallel  = flag.Int("parallel", 0, "simulation worker goroutines (0 = GOMAXPROCS)")
		jsonOut   = flag.String("json", "", "write BENCH_<id>.json perf records under this directory (or one combined file if it ends in .json)")
		metrics   = flag.Bool("metrics", false, "collect metrics and write METRICS_<id>.json per experiment")
		traceDir  = flag.String("trace", "", "collect sim-time spans and write TRACE_<id>.json Chrome trace files under this directory")
		progress  = flag.Bool("progress", false, "log per-sweep-point completion to stderr")
		cacheDir  = flag.String("cache", "", "memoize results in this content-addressed store directory")
		server    = flag.String("server", "", "submit to a qsmd server at this URL instead of simulating locally")
		sched     = flag.String("sched", string(sim.SchedHeap), "event scheduler: heap (4-ary heap) or calendar (calendar queue); tables are byte-identical either way")
		stepProcs = flag.Bool("stepprocs", true, "run converted subsystems as state-machine processes (false falls back to goroutine processes; byte-identical, slower)")
	)
	flag.Parse()

	switch sim.Scheduler(*sched) {
	case sim.SchedHeap, sim.SchedCalendar:
		sim.DefaultScheduler = sim.Scheduler(*sched)
	default:
		fmt.Fprintf(os.Stderr, "qsmbench: unknown -sched %q (want heap or calendar)\n", *sched)
		os.Exit(2)
	}
	sim.UseStepProcs = *stepProcs

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Printf("%-8s %s\n", id, experiments.Title(id))
		}
		return
	}
	ids := flag.Args()
	if *exp != "" {
		ids = append(ids, *exp)
	}
	if *all {
		ids = experiments.IDs()
	}
	if len(ids) == 0 {
		fmt.Fprintln(os.Stderr, "qsmbench: nothing to run; use -exp <id>, -all, or -list")
		os.Exit(2)
	}

	if *server != "" {
		for _, f := range []struct {
			set  bool
			name string
		}{
			{*csv, "-csv"}, {*metrics, "-metrics"}, {*traceDir != "", "-trace"},
			{*jsonOut != "", "-json"}, {*cacheDir != "", "-cache"},
		} {
			if f.set {
				fmt.Fprintf(os.Stderr, "qsmbench: %s is a local-run flag and cannot be combined with -server\n", f.name)
				os.Exit(2)
			}
		}
		if err := runRemote(*server, ids, *seed, *runs, *quick, *progress); err != nil {
			fmt.Fprintf(os.Stderr, "qsmbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	var st *store.Store
	var fingerprint string
	if *cacheDir != "" {
		if *csv || *traceDir != "" {
			fmt.Fprintln(os.Stderr, "qsmbench: -cache stores rendered tables and metrics only; it cannot be combined with -csv or -trace")
			os.Exit(2)
		}
		var err error
		if st, err = store.Open(*cacheDir, 0); err != nil {
			fmt.Fprintf(os.Stderr, "qsmbench: %v\n", err)
			os.Exit(1)
		}
		fingerprint = store.Fingerprint()
	}

	effPar := *parallel
	if effPar <= 0 {
		effPar = runtime.GOMAXPROCS(0)
	}
	// METRICS files land next to the BENCH records (or in the current
	// directory); TRACE files go under their own directory since they can be
	// large.
	metricsDir := "."
	if *jsonOut != "" {
		if strings.HasSuffix(*jsonOut, ".json") {
			metricsDir = filepath.Dir(*jsonOut)
		} else {
			metricsDir = *jsonOut
		}
	}
	var recs []report.BenchRecord
	for _, id := range ids {
		opt := experiments.Options{Seed: *seed, Runs: *runs, Quick: *quick, Parallelism: *parallel}
		if *progress {
			opt.Progress = progressLogger(id)
		}

		if st != nil {
			rec, err := runCached(st, fingerprint, id, opt, *metrics, metricsDir)
			if err != nil {
				fmt.Fprintf(os.Stderr, "qsmbench: %v\n", err)
				os.Exit(1)
			}
			recs = append(recs, rec)
			continue
		}

		var sink *obs.Sink
		if *metrics || *traceDir != "" {
			sink = obs.NewSink(obs.Config{Metrics: *metrics, Trace: *traceDir != ""})
			opt.Obs = sink
		}
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		ev0 := sim.TotalEvents()
		t0 := time.Now()
		r, err := experiments.Run(id, opt)
		wall := time.Since(t0)
		ev1 := sim.TotalEvents()
		runtime.ReadMemStats(&m1)
		if err != nil {
			fmt.Fprintf(os.Stderr, "qsmbench: %v\n", err)
			os.Exit(1)
		}
		if *csv {
			for _, t := range r.Tables {
				fmt.Print(t.CSV())
			}
		} else {
			fmt.Print(r)
		}
		if sink != nil {
			merged := sink.Merged()
			if *metrics {
				f, err := report.WriteMetrics(metricsDir, id, merged)
				if err != nil {
					fmt.Fprintf(os.Stderr, "qsmbench: writing metrics: %v\n", err)
					os.Exit(1)
				}
				fmt.Printf("wrote %s\n", f)
			}
			if *traceDir != "" {
				f, err := report.WriteTrace(*traceDir, id, merged)
				if err != nil {
					fmt.Fprintf(os.Stderr, "qsmbench: writing trace: %v\n", err)
					os.Exit(1)
				}
				fmt.Printf("wrote %s (%d spans, %d dropped)\n", f, merged.Spans(), merged.DroppedSpans())
			}
		}
		rec := report.BenchRecord{
			ID:          id,
			Title:       experiments.Title(id),
			Seed:        *seed,
			Runs:        *runs,
			Quick:       *quick,
			Parallelism: effPar,
			WallSeconds: wall.Seconds(),
			SimEvents:   ev1 - ev0,
			AllocBytes:  m1.TotalAlloc - m0.TotalAlloc,
			Allocs:      m1.Mallocs - m0.Mallocs,
			Extra:       r.Extra,
		}
		rec.Finish()
		recs = append(recs, rec)
		fmt.Printf("[%s completed in %.1fs, %.2gM sim events, %.3g events/sec]\n\n",
			id, wall.Seconds(), float64(rec.SimEvents)/1e6, rec.EventsPerSec)
	}
	if *jsonOut != "" {
		files, err := report.WriteBench(*jsonOut, recs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "qsmbench: writing bench records: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", strings.Join(files, ", "))
	}
}

// runCached serves one experiment through the content-addressed store:
// identical reruns print byte-identical tables from the cache without
// simulating, and concurrent identical invocations in one process share a
// single simulation.
func runCached(st *store.Store, fingerprint, id string, opt experiments.Options, metrics bool, metricsDir string) (report.BenchRecord, error) {
	key := store.ResultKey(id, opt.Key(), fingerprint)
	t0 := time.Now()
	entry, hit, err := st.GetOrCompute(key, func() (*store.Entry, error) {
		return computeEntry(fingerprint, key, id, opt, metrics)
	})
	if err != nil {
		return report.BenchRecord{}, err
	}
	fmt.Print(entry.Tables)
	if metrics && entry.Metrics != nil {
		f, err := report.WriteMetricsRaw(metricsDir, id, entry.Metrics)
		if err != nil {
			return report.BenchRecord{}, fmt.Errorf("writing metrics: %w", err)
		}
		fmt.Printf("wrote %s\n", f)
	}
	rec := report.BenchRecord{ID: id}
	if entry.Bench != nil {
		rec = *entry.Bench
	}
	if hit {
		fmt.Printf("[%s cache hit in %.3fs, key %s, original run %.1fs]\n\n",
			id, time.Since(t0).Seconds(), shortKey(key), rec.WallSeconds)
	} else {
		fmt.Printf("[%s completed in %.1fs, %.2gM sim events, %.3g events/sec; cached as %s]\n\n",
			id, rec.WallSeconds, float64(rec.SimEvents)/1e6, rec.EventsPerSec, shortKey(key))
	}
	return rec, nil
}

// computeEntry is the cache-miss path of runCached: run the experiment and
// package its tables, bench record, and (optionally) metrics as the store
// entry.
func computeEntry(fingerprint, key, id string, opt experiments.Options, metrics bool) (*store.Entry, error) {
	var sink *obs.Sink
	if metrics {
		sink = obs.NewSink(obs.Config{Metrics: true})
		opt.Obs = sink
	}
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	ev0 := sim.TotalEvents()
	t0 := time.Now()
	r, err := experiments.Run(id, opt)
	if err != nil {
		return nil, err
	}
	wall := time.Since(t0)
	ev1 := sim.TotalEvents()
	runtime.ReadMemStats(&m1)
	effPar := opt.Parallelism
	if effPar <= 0 {
		effPar = runtime.GOMAXPROCS(0)
	}
	bench := report.BenchRecord{
		ID:          id,
		Title:       experiments.Title(id),
		Seed:        opt.Seed,
		Runs:        opt.Runs,
		Quick:       opt.Quick,
		Parallelism: effPar,
		WallSeconds: wall.Seconds(),
		SimEvents:   ev1 - ev0,
		AllocBytes:  m1.TotalAlloc - m0.TotalAlloc,
		Allocs:      m1.Mallocs - m0.Mallocs,
		Extra:       r.Extra,
	}
	bench.Finish()
	entry := &store.Entry{
		Key:         key,
		Experiment:  id,
		Title:       r.Title,
		Options:     opt.Key(),
		Fingerprint: fingerprint,
		Tables:      r.String(),
		Bench:       &bench,
		CreatedAt:   time.Now().UTC(),
	}
	if sink != nil {
		var b strings.Builder
		if err := sink.Merged().WriteMetricsJSON(&b); err == nil {
			entry.Metrics = []byte(b.String())
		}
	}
	return entry, nil
}

// runRemote submits each experiment to a qsmd server, polls the job to
// completion, and prints the cached tables. Each experiment runs under its
// own trace ID, propagated on every request (submit, polls, result fetch)
// so a -trace'd server stitches the whole conversation into one job trace.
func runRemote(baseURL string, ids []string, seed int64, runs int, quick, progress bool) error {
	c := &service.Client{BaseURL: baseURL}
	ctx := context.Background()
	for _, id := range ids {
		c.TraceID = obs.NewTraceID()
		js, err := c.Submit(ctx, service.SubmitRequest{Experiment: id, Seed: seed, Runs: runs, Quick: quick})
		if err != nil {
			return err
		}
		if js.State != service.StateDone && js.State != service.StateFailed {
			var onPoll func(service.JobStatus)
			if progress {
				var last int
				onPoll = func(p service.JobStatus) {
					if p.Progress.Done != last {
						last = p.Progress.Done
						fmt.Fprintf(os.Stderr, "qsmbench: %s: %s, %d jobs done (%.1fs elapsed)\n",
							id, p.ID, p.Progress.Done, p.ElapsedSeconds)
					}
				}
			}
			if js, err = c.Wait(ctx, js.ID, 200*time.Millisecond, onPoll); err != nil {
				return err
			}
		}
		if js.State == service.StateFailed {
			return fmt.Errorf("%s: job %s failed: %s", id, js.ID, js.Error)
		}
		entry, err := c.Result(ctx, js.ResultKey)
		if err != nil {
			return err
		}
		fmt.Print(entry.Tables)
		served := "computed by server"
		if js.Cached {
			served = "server cache hit"
		}
		fmt.Printf("[%s %s in %.1fs, key %s, trace %s]\n\n", id, served, js.ElapsedSeconds, shortKey(js.ResultKey), c.TraceID)
	}
	return nil
}

func shortKey(k string) string {
	if len(k) > 12 {
		return k[:12] + "…"
	}
	return k
}

// progressLogger returns an experiments.Progress callback that logs each
// sweep point's completion (its final run) to stderr. The callback runs on
// worker goroutines, so it serialises writes with a mutex; it only observes
// the sweep, never its results, so tables stay byte-identical.
func progressLogger(id string) func(experiments.Progress) {
	var mu sync.Mutex
	return func(p experiments.Progress) {
		if p.RunsDone != p.Runs {
			return
		}
		mu.Lock()
		defer mu.Unlock()
		fmt.Fprintf(os.Stderr, "qsmbench: %s: point %d/%d done (%d runs, %.1fs elapsed)\n",
			id, p.Point+1, p.Points, p.Runs, p.Elapsed.Seconds())
	}
}
