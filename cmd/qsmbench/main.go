// Command qsmbench runs the paper's experiments by id and prints their
// tables (or CSV).
//
// Usage:
//
//	qsmbench -list
//	qsmbench -exp fig2 [-runs 10] [-seed 1] [-csv] [-quick] [-parallel 8]
//	qsmbench -all -json .          # also emit BENCH_<id>.json perf records
//
// Independent (sweep-point, run) simulations fan out across -parallel
// worker goroutines (default GOMAXPROCS); tables are byte-identical to a
// serial run at the same seed. With -json PATH each experiment's wall time,
// simulated-event throughput, and allocation counters are recorded to
// BENCH_<id>.json files under the PATH directory, or to one combined JSON
// array if PATH ends in .json.
//
// Observability (internal/obs): -metrics aggregates each experiment's
// counters and histograms into METRICS_<id>.json (next to the BENCH records,
// or the current directory without -json); -trace DIR additionally collects
// sim-time spans and writes TRACE_<id>.json Chrome trace files under DIR,
// loadable in Perfetto. -progress logs per-sweep-point completion to stderr
// without perturbing the deterministic result tables.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/sim"
)

func main() {
	var (
		exp      = flag.String("exp", "", "experiment id to run (see -list)")
		all      = flag.Bool("all", false, "run every experiment")
		list     = flag.Bool("list", false, "list experiment ids")
		runs     = flag.Int("runs", 5, "repetitions per data point (paper uses 10)")
		seed     = flag.Int64("seed", 1, "random seed")
		quick    = flag.Bool("quick", false, "trim sweeps for a fast smoke run")
		csv      = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		parallel = flag.Int("parallel", 0, "simulation worker goroutines (0 = GOMAXPROCS)")
		jsonOut  = flag.String("json", "", "write BENCH_<id>.json perf records under this directory (or one combined file if it ends in .json)")
		metrics  = flag.Bool("metrics", false, "collect metrics and write METRICS_<id>.json per experiment")
		traceDir = flag.String("trace", "", "collect sim-time spans and write TRACE_<id>.json Chrome trace files under this directory")
		progress = flag.Bool("progress", false, "log per-sweep-point completion to stderr")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Printf("%-8s %s\n", id, experiments.Title(id))
		}
		return
	}
	ids := flag.Args()
	if *exp != "" {
		ids = append(ids, *exp)
	}
	if *all {
		ids = experiments.IDs()
	}
	if len(ids) == 0 {
		fmt.Fprintln(os.Stderr, "qsmbench: nothing to run; use -exp <id>, -all, or -list")
		os.Exit(2)
	}
	effPar := *parallel
	if effPar <= 0 {
		effPar = runtime.GOMAXPROCS(0)
	}
	// METRICS files land next to the BENCH records (or in the current
	// directory); TRACE files go under their own directory since they can be
	// large.
	metricsDir := "."
	if *jsonOut != "" {
		if strings.HasSuffix(*jsonOut, ".json") {
			metricsDir = filepath.Dir(*jsonOut)
		} else {
			metricsDir = *jsonOut
		}
	}
	var recs []report.BenchRecord
	for _, id := range ids {
		opt := experiments.Options{Seed: *seed, Runs: *runs, Quick: *quick, Parallelism: *parallel}
		var sink *obs.Sink
		if *metrics || *traceDir != "" {
			sink = obs.NewSink(obs.Config{Metrics: *metrics, Trace: *traceDir != ""})
			opt.Obs = sink
		}
		if *progress {
			opt.Progress = progressLogger(id)
		}
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		ev0 := sim.TotalEvents()
		t0 := time.Now()
		r, err := experiments.Run(id, opt)
		wall := time.Since(t0)
		ev1 := sim.TotalEvents()
		runtime.ReadMemStats(&m1)
		if err != nil {
			fmt.Fprintf(os.Stderr, "qsmbench: %v\n", err)
			os.Exit(1)
		}
		if *csv {
			for _, t := range r.Tables {
				fmt.Print(t.CSV())
			}
		} else {
			fmt.Print(r)
		}
		if sink != nil {
			merged := sink.Merged()
			if *metrics {
				f, err := report.WriteMetrics(metricsDir, id, merged)
				if err != nil {
					fmt.Fprintf(os.Stderr, "qsmbench: writing metrics: %v\n", err)
					os.Exit(1)
				}
				fmt.Printf("wrote %s\n", f)
			}
			if *traceDir != "" {
				f, err := report.WriteTrace(*traceDir, id, merged)
				if err != nil {
					fmt.Fprintf(os.Stderr, "qsmbench: writing trace: %v\n", err)
					os.Exit(1)
				}
				fmt.Printf("wrote %s (%d spans, %d dropped)\n", f, merged.Spans(), merged.DroppedSpans())
			}
		}
		rec := report.BenchRecord{
			ID:          id,
			Title:       experiments.Title(id),
			Seed:        *seed,
			Runs:        *runs,
			Quick:       *quick,
			Parallelism: effPar,
			WallSeconds: wall.Seconds(),
			SimEvents:   ev1 - ev0,
			AllocBytes:  m1.TotalAlloc - m0.TotalAlloc,
			Allocs:      m1.Mallocs - m0.Mallocs,
		}
		rec.Finish()
		recs = append(recs, rec)
		fmt.Printf("[%s completed in %.1fs, %.2gM sim events, %.3g events/sec]\n\n",
			id, wall.Seconds(), float64(rec.SimEvents)/1e6, rec.EventsPerSec)
	}
	if *jsonOut != "" {
		files, err := report.WriteBench(*jsonOut, recs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "qsmbench: writing bench records: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", strings.Join(files, ", "))
	}
}

// progressLogger returns an experiments.Progress callback that logs each
// sweep point's completion (its final run) to stderr. The callback runs on
// worker goroutines, so it serialises writes with a mutex; it only observes
// the sweep, never its results, so tables stay byte-identical.
func progressLogger(id string) func(experiments.Progress) {
	var mu sync.Mutex
	return func(p experiments.Progress) {
		if p.RunsDone != p.Runs {
			return
		}
		mu.Lock()
		defer mu.Unlock()
		fmt.Fprintf(os.Stderr, "qsmbench: %s: point %d/%d done (%d runs, %.1fs elapsed)\n",
			id, p.Point+1, p.Points, p.Runs, p.Elapsed.Seconds())
	}
}
