// Command qsmbench runs the paper's experiments by id and prints their
// tables (or CSV).
//
// Usage:
//
//	qsmbench -list
//	qsmbench -exp fig2 [-runs 10] [-seed 1] [-csv] [-quick]
//	qsmbench -all
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		exp   = flag.String("exp", "", "experiment id to run (see -list)")
		all   = flag.Bool("all", false, "run every experiment")
		list  = flag.Bool("list", false, "list experiment ids")
		runs  = flag.Int("runs", 5, "repetitions per data point (paper uses 10)")
		seed  = flag.Int64("seed", 1, "random seed")
		quick = flag.Bool("quick", false, "trim sweeps for a fast smoke run")
		csv   = flag.Bool("csv", false, "emit CSV instead of aligned tables")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Printf("%-8s %s\n", id, experiments.Title(id))
		}
		return
	}
	ids := flag.Args()
	if *exp != "" {
		ids = append(ids, *exp)
	}
	if *all {
		ids = experiments.IDs()
	}
	if len(ids) == 0 {
		fmt.Fprintln(os.Stderr, "qsmbench: nothing to run; use -exp <id>, -all, or -list")
		os.Exit(2)
	}
	opt := experiments.Options{Seed: *seed, Runs: *runs, Quick: *quick}
	for _, id := range ids {
		t0 := time.Now()
		r, err := experiments.Run(id, opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "qsmbench: %v\n", err)
			os.Exit(1)
		}
		if *csv {
			for _, t := range r.Tables {
				fmt.Print(t.CSV())
			}
		} else {
			fmt.Print(r)
		}
		fmt.Printf("[%s completed in %.1fs]\n\n", id, time.Since(t0).Seconds())
	}
}
