// Command qsmbench runs the paper's experiments by id and prints their
// tables (or CSV).
//
// Usage:
//
//	qsmbench -list
//	qsmbench -exp fig2 [-runs 10] [-seed 1] [-csv] [-quick] [-parallel 8]
//	qsmbench -all -json .          # also emit BENCH_<id>.json perf records
//
// Independent (sweep-point, run) simulations fan out across -parallel
// worker goroutines (default GOMAXPROCS); tables are byte-identical to a
// serial run at the same seed. With -json PATH each experiment's wall time,
// simulated-event throughput, and allocation counters are recorded to
// BENCH_<id>.json files under the PATH directory, or to one combined JSON
// array if PATH ends in .json.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/report"
	"repro/internal/sim"
)

func main() {
	var (
		exp      = flag.String("exp", "", "experiment id to run (see -list)")
		all      = flag.Bool("all", false, "run every experiment")
		list     = flag.Bool("list", false, "list experiment ids")
		runs     = flag.Int("runs", 5, "repetitions per data point (paper uses 10)")
		seed     = flag.Int64("seed", 1, "random seed")
		quick    = flag.Bool("quick", false, "trim sweeps for a fast smoke run")
		csv      = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		parallel = flag.Int("parallel", 0, "simulation worker goroutines (0 = GOMAXPROCS)")
		jsonOut  = flag.String("json", "", "write BENCH_<id>.json perf records under this directory (or one combined file if it ends in .json)")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Printf("%-8s %s\n", id, experiments.Title(id))
		}
		return
	}
	ids := flag.Args()
	if *exp != "" {
		ids = append(ids, *exp)
	}
	if *all {
		ids = experiments.IDs()
	}
	if len(ids) == 0 {
		fmt.Fprintln(os.Stderr, "qsmbench: nothing to run; use -exp <id>, -all, or -list")
		os.Exit(2)
	}
	opt := experiments.Options{Seed: *seed, Runs: *runs, Quick: *quick, Parallelism: *parallel}
	effPar := *parallel
	if effPar <= 0 {
		effPar = runtime.GOMAXPROCS(0)
	}
	var recs []report.BenchRecord
	for _, id := range ids {
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		ev0 := sim.TotalEvents()
		t0 := time.Now()
		r, err := experiments.Run(id, opt)
		wall := time.Since(t0)
		ev1 := sim.TotalEvents()
		runtime.ReadMemStats(&m1)
		if err != nil {
			fmt.Fprintf(os.Stderr, "qsmbench: %v\n", err)
			os.Exit(1)
		}
		if *csv {
			for _, t := range r.Tables {
				fmt.Print(t.CSV())
			}
		} else {
			fmt.Print(r)
		}
		rec := report.BenchRecord{
			ID:          id,
			Title:       experiments.Title(id),
			Seed:        *seed,
			Runs:        *runs,
			Quick:       *quick,
			Parallelism: effPar,
			WallSeconds: wall.Seconds(),
			SimEvents:   ev1 - ev0,
			AllocBytes:  m1.TotalAlloc - m0.TotalAlloc,
			Allocs:      m1.Mallocs - m0.Mallocs,
		}
		rec.Finish()
		recs = append(recs, rec)
		fmt.Printf("[%s completed in %.1fs, %.2gM sim events, %.3g events/sec]\n\n",
			id, wall.Seconds(), float64(rec.SimEvents)/1e6, rec.EventsPerSec)
	}
	if *jsonOut != "" {
		files, err := report.WriteBench(*jsonOut, recs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "qsmbench: writing bench records: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", strings.Join(files, ", "))
	}
}
