// Command membench runs the Section 4 memory-bank contention microbenchmark
// on the modelled architectures.
//
// Usage:
//
//	membench                  # all architectures, all patterns (Figure 7)
//	membench -arch Cray-T3E -accesses 1000
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/membank"
	"repro/internal/report"
)

func main() {
	var (
		arch     = flag.String("arch", "", "architecture name (default: all)")
		accesses = flag.Int("accesses", 500, "accesses per processor")
		seed     = flag.Int64("seed", 1, "random seed")
		csv      = flag.Bool("csv", false, "emit CSV")
	)
	flag.Parse()

	configs := membank.AllConfigs()
	if *arch != "" {
		var sel []membank.Config
		for _, c := range configs {
			if strings.EqualFold(c.Name, *arch) {
				sel = append(sel, c)
			}
		}
		if len(sel) == 0 {
			names := make([]string, len(configs))
			for i, c := range configs {
				names[i] = c.Name
			}
			fmt.Fprintf(os.Stderr, "membench: unknown architecture %q (have %s)\n",
				*arch, strings.Join(names, ", "))
			os.Exit(2)
		}
		configs = sel
	}

	t := report.NewTable("Remote memory access time under load (us per access)",
		"architecture", "pattern", "avg us", "avg cycles", "hot bank util")
	for _, cfg := range configs {
		for _, r := range membank.RunAll(cfg, *accesses, *seed) {
			t.AddRow(cfg.Name, r.Pattern.String(),
				report.F(r.AvgMicros()), report.F(r.AvgCycles), report.Pct(r.MaxBankUtil))
		}
	}
	if *csv {
		fmt.Print(t.CSV())
		return
	}
	fmt.Print(t.String())
}
