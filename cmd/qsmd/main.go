// Command qsmd serves the paper's experiments over HTTP: a job scheduler
// with a bounded admission queue in front of the parallel experiment
// runner, memoized through a content-addressed result cache. Identical
// submissions (same experiment id, keyed options, and code fingerprint) are
// served from the cache without re-simulating; concurrent identical
// submissions share one simulation.
//
// Usage:
//
//	qsmd [-addr 127.0.0.1:8344] [-cache qsmd-cache] [-queue 64]
//	     [-workers 2] [-parallel 0] [-lru 128] [-drain 60s]
//
// API:
//
//	POST   /v1/jobs          {"experiment":"fig7","seed":1,"runs":2,"quick":true}
//	GET    /v1/jobs          list jobs
//	GET    /v1/jobs/{id}     job status (queued → running → done/failed)
//	DELETE /v1/jobs/{id}     cancel a job
//	GET    /v1/results/{key} cached result (tables + bench + metrics JSON)
//	GET    /healthz          liveness and drain state
//	GET    /metricsz         metrics registry as Prometheus text
//
// On SIGTERM/SIGINT the server stops accepting HTTP, drains queued and
// in-flight jobs (cancelling them through their contexts if -drain expires)
// and exits 0 on a clean drain.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/service"
	"repro/internal/store"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:8344", "listen address")
		cacheDir = flag.String("cache", "qsmd-cache", "result cache directory")
		queueCap = flag.Int("queue", 64, "submission queue capacity (excess submissions get 429)")
		workers  = flag.Int("workers", 2, "jobs simulated concurrently")
		parallel = flag.Int("parallel", 0, "worker goroutines per simulation sweep (0 = GOMAXPROCS)")
		lru      = flag.Int("lru", store.DefaultMaxMem, "in-memory LRU entry bound in front of the disk cache")
		drain    = flag.Duration("drain", 60*time.Second, "shutdown drain budget before in-flight jobs are cancelled")
	)
	flag.Parse()
	log.SetPrefix("qsmd: ")
	log.SetFlags(log.LstdFlags)

	st, err := store.Open(*cacheDir, *lru)
	if err != nil {
		log.Fatal(err)
	}
	sched, err := service.New(service.Config{
		Store:          st,
		QueueCap:       *queueCap,
		Workers:        *workers,
		SimParallelism: *parallel,
		CollectMetrics: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	srv := &http.Server{Addr: *addr, Handler: sched.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		log.Printf("signal received, shutting down HTTP")
		shCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(shCtx); err != nil {
			log.Printf("http shutdown: %v", err)
		}
	}()

	log.Printf("listening on %s (cache %s, queue %d, workers %d, fingerprint %s)",
		*addr, st.Dir(), *queueCap, *workers, sched.Fingerprint())
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}

	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := sched.Drain(drainCtx); err != nil {
		log.Printf("drain incomplete: %v", err)
		os.Exit(1)
	}
	log.Printf("drained cleanly")
}
