// Command qsmd serves the paper's experiments over HTTP: a job scheduler
// with a bounded admission queue in front of the parallel experiment
// runner, memoized through a content-addressed result cache. Identical
// submissions (same experiment id, keyed options, and code fingerprint) are
// served from the cache without re-simulating; concurrent identical
// submissions share one simulation.
//
// Usage:
//
//	qsmd [-addr 127.0.0.1:8344] [-cache qsmd-cache] [-queue 64]
//	     [-workers 2] [-parallel 0] [-lru 128] [-drain 60s]
//	     [-job-timeout 0] [-retries 0] [-faults spec] [-fault-seed 1]
//
// -job-timeout bounds each execution attempt and -retries gives failed
// (non-cancelled) jobs a bounded retry budget. -faults arms the
// deterministic fault injector for chaos drills: a comma-separated list of
// class:every:max[:delay] rules (or "all:every:max") over the classes
// store_read, store_write, corrupt_entry, worker_panic, slow_job,
// http_error, http_drop; -fault-seed picks the schedule. The same seed and
// spec replay the same fault schedule.
//
// API:
//
//	POST   /v1/jobs          {"experiment":"fig7","seed":1,"runs":2,"quick":true}
//	GET    /v1/jobs          list jobs
//	GET    /v1/jobs/{id}     job status (queued → running → done/failed)
//	DELETE /v1/jobs/{id}     cancel a job
//	GET    /v1/results/{key} cached result (tables + bench + metrics JSON)
//	GET    /healthz          liveness and drain state
//	GET    /metricsz         metrics registry as Prometheus text
//
// On SIGTERM/SIGINT the server stops accepting HTTP, drains queued and
// in-flight jobs (cancelling them through their contexts if -drain expires)
// and exits 0 on a clean drain.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/faults"
	"repro/internal/service"
	"repro/internal/store"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:8344", "listen address")
		cacheDir   = flag.String("cache", "qsmd-cache", "result cache directory")
		queueCap   = flag.Int("queue", 64, "submission queue capacity (excess submissions get 429)")
		workers    = flag.Int("workers", 2, "jobs simulated concurrently")
		parallel   = flag.Int("parallel", 0, "worker goroutines per simulation sweep (0 = GOMAXPROCS)")
		lru        = flag.Int("lru", store.DefaultMaxMem, "in-memory LRU entry bound in front of the disk cache")
		drain      = flag.Duration("drain", 60*time.Second, "shutdown drain budget before in-flight jobs are cancelled")
		jobTimeout = flag.Duration("job-timeout", 0, "per-attempt job execution bound (0 = none)")
		retries    = flag.Int("retries", 0, "extra attempts for failed non-cancelled jobs")
		faultSpec  = flag.String("faults", "", "fault-injection rules, class:every:max[:delay],... (chaos drills)")
		faultSeed  = flag.Int64("fault-seed", 1, "seed for the deterministic fault schedule")
	)
	flag.Parse()
	log.SetPrefix("qsmd: ")
	log.SetFlags(log.LstdFlags)

	inj, err := faults.FromSpec(*faultSeed, *faultSpec)
	if err != nil {
		log.Fatal(err)
	}
	if inj != nil {
		log.Printf("fault injection armed: seed %d, spec %q", *faultSeed, *faultSpec)
	}
	st, err := store.OpenConfig(store.Config{Dir: *cacheDir, MaxMem: *lru, Faults: inj})
	if err != nil {
		log.Fatal(err)
	}
	sched, err := service.New(service.Config{
		Store:          st,
		QueueCap:       *queueCap,
		Workers:        *workers,
		SimParallelism: *parallel,
		CollectMetrics: true,
		JobTimeout:     *jobTimeout,
		JobRetries:     *retries,
		Faults:         inj,
	})
	if err != nil {
		log.Fatal(err)
	}

	srv := &http.Server{Addr: *addr, Handler: faults.Middleware(inj, sched.Handler())}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		log.Printf("signal received, shutting down HTTP")
		shCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(shCtx); err != nil {
			log.Printf("http shutdown: %v", err)
		}
	}()

	log.Printf("listening on %s (cache %s, queue %d, workers %d, fingerprint %s)",
		*addr, st.Dir(), *queueCap, *workers, sched.Fingerprint())
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}

	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := sched.Drain(drainCtx); err != nil {
		log.Printf("drain incomplete: %v", err)
		os.Exit(1)
	}
	log.Printf("drained cleanly")
}
