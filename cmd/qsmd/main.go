// Command qsmd serves the paper's experiments over HTTP: a job scheduler
// with a bounded admission queue in front of the parallel experiment
// runner, memoized through a content-addressed result cache. Identical
// submissions (same experiment id, keyed options, and code fingerprint) are
// served from the cache without re-simulating; concurrent identical
// submissions share one simulation.
//
// Usage:
//
//	qsmd [-addr 127.0.0.1:8344] [-cache qsmd-cache] [-queue 64]
//	     [-workers 2] [-parallel 0] [-lru 128] [-drain 60s]
//	     [-job-timeout 0] [-retries 0] [-faults spec] [-fault-seed 1]
//	     [-log-level info] [-trace] [-trace-spans N]
//	     [-tenants spec | -tenants-file path]
//	     [-stream-buffer 64] [-stream-heartbeat 15s]
//	     [-self URL -peers URL,URL,... [-replicas 2] [-vnodes 64]
//	      [-ring-seed 1] [-node-name NAME]]
//
// -job-timeout bounds each execution attempt and -retries gives failed
// (non-cancelled) jobs a bounded retry budget. -faults arms the
// deterministic fault injector for chaos drills: a comma-separated list of
// class:every:max[:delay] rules (or "all:every:max") over the classes
// store_read, store_write, corrupt_entry, worker_panic, slow_job,
// http_error, http_drop, peer_down, peer_slow, stream_drop, stream_stall;
// -fault-seed picks the schedule. The same seed and spec replay the same
// fault schedule.
//
// Multi-tenant mode (-tenants "name:key[:maxactive[:maxqueued]],..." or
// -tenants-file with a JSON array of {"name","key","max_active",
// "max_queued"}) authenticates every submission by API key (X-Qsm-Api-Key
// or an Authorization bearer token) and enforces per-tenant concurrency
// and queue-depth quotas; rejections are 429 with Retry-After. Without
// either flag the server is anonymous and behaves exactly as before.
// Per-tenant usage appears on /statusz, /metricsz, and /v1/admin/state.
//
// Streaming: GET /v1/jobs/{id}/events pushes a job's lifecycle and
// progress events over SSE (NDJSON with "Accept: application/x-ndjson"),
// resumable via Last-Event-ID; POST /v1/jobs:batch submits many jobs whose
// merged events stream at GET /v1/batches/{id}/events. -stream-buffer
// sizes each subscriber's in-flight buffer (a slow consumer overflows it
// and sees a dropped marker instead of ever blocking the scheduler);
// -stream-heartbeat paces idle-connection keepalives.
//
// Cluster mode (-self + -peers, see internal/cluster) shards the result
// space across nodes with a consistent-hash ring: submissions and result
// reads forward to each key's owning node, freshly computed entries
// replicate to -replicas ring successors, and replica misses read-repair
// from the owners. Every node must be started with the same total member
// set (its own -self plus -peers), -replicas, -vnodes, and -ring-seed; the
// ring is pure configuration, so no coordination service is involved.
// -node-name (default: the -self URL's host:port) names this node in job
// statuses and the qsmload balance report.
//
// Observability: every request runs under a trace ID (adopted from the
// X-Qsm-Trace header or minted per request) that appears on each structured
// log line the request or its job emits. -trace additionally records
// wall-clock spans across every serving layer; a job's merged wall + sim
// trace is exported at /v1/jobs/{id}/trace for Perfetto. -log-level selects
// debug, info, warn, or error (logfmt text on stderr).
//
// API:
//
//	POST   /v1/jobs              {"experiment":"fig7","seed":1,"runs":2,"quick":true}
//	POST   /v1/jobs:batch        {"jobs":[...]} with per-item outcomes
//	GET    /v1/jobs              list jobs
//	GET    /v1/jobs/{id}         job status (queued → running → done/failed)
//	GET    /v1/jobs/{id}/events  SSE/NDJSON event stream (Last-Event-ID resume)
//	GET    /v1/jobs/{id}/trace   merged wall + sim Perfetto trace (with -trace)
//	DELETE /v1/jobs/{id}         cancel a job
//	GET    /v1/batches/{id}/events  batch aggregate event stream
//	GET    /v1/results/{key}     cached result (tables + bench + metrics JSON)
//	PUT    /v1/results/{key}     accept a replicated entry (cluster mode)
//	GET    /v1/admin/state       scheduler/queue/subscriber introspection
//	GET    /healthz              liveness and drain state
//	GET    /metricsz             metrics registry as Prometheus text
//	GET    /statusz              live introspection snapshot (JSON)
//	GET    /debug/pprof/         runtime profiling (CPU, heap, goroutines, ...)
//
// /debug/pprof and /statusz sit outside the fault-injection middleware so
// the server stays debuggable mid-chaos-drill.
//
// On SIGTERM/SIGINT the server stops accepting HTTP, drains queued and
// in-flight jobs (cancelling them through their contexts if -drain expires)
// and exits 0 on a clean drain.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"net/http"
	"net/http/pprof"
	"net/url"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/store"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:8344", "listen address")
		cacheDir   = flag.String("cache", "qsmd-cache", "result cache directory")
		queueCap   = flag.Int("queue", 64, "submission queue capacity (excess submissions get 429)")
		aging      = flag.Duration("aging", 5*time.Second, "queue aging step: +1 effective priority per step waited (starvation protection)")
		workers    = flag.Int("workers", 2, "jobs simulated concurrently")
		parallel   = flag.Int("parallel", 0, "worker goroutines per simulation sweep (0 = GOMAXPROCS)")
		lru        = flag.Int("lru", store.DefaultMaxMem, "in-memory LRU entry bound in front of the disk cache")
		drain      = flag.Duration("drain", 60*time.Second, "shutdown drain budget before in-flight jobs are cancelled")
		jobTimeout = flag.Duration("job-timeout", 0, "per-attempt job execution bound (0 = none)")
		retries    = flag.Int("retries", 0, "extra attempts for failed non-cancelled jobs")
		faultSpec  = flag.String("faults", "", "fault-injection rules, class:every:max[:delay],... (chaos drills)")
		faultSeed  = flag.Int64("fault-seed", 1, "seed for the deterministic fault schedule")
		logLevel   = flag.String("log-level", "info", "log verbosity: debug, info, warn, or error")
		traceOn    = flag.Bool("trace", false, "record wall-clock spans for every serving layer (export at /v1/jobs/{id}/trace)")
		traceSpans = flag.Int("trace-spans", 0, "wall-span buffer bound (0 = default)")
		tenantSpec = flag.String("tenants", "", "API tenants, name:key[:maxactive[:maxqueued]],... (enables keyed multi-tenant mode)")
		tenantFile = flag.String("tenants-file", "", "JSON file with an array of tenant configs (alternative to -tenants)")
		streamBuf  = flag.Int("stream-buffer", 0, "per-subscriber stream event buffer (0 = default 64)")
		streamHB   = flag.Duration("stream-heartbeat", 0, "idle stream heartbeat period (0 = default 15s)")
		self       = flag.String("self", "", "this node's advertised base URL (enables cluster mode with -peers)")
		peersFlag  = flag.String("peers", "", "comma-separated peer base URLs (cluster mode)")
		replicas   = flag.Int("replicas", 2, "cluster copies of each result, owner included (1 disables replication)")
		vnodes     = flag.Int("vnodes", cluster.DefaultVNodes, "ring virtual nodes per member; must match across the cluster")
		ringSeed   = flag.Int64("ring-seed", 1, "ring placement seed; must match across the cluster")
		nodeName   = flag.String("node-name", "", "node name stamped into job statuses (default: -self host:port)")
	)
	flag.Parse()
	logger := obs.NewLogger(os.Stderr, obs.ParseLogLevel(*logLevel))
	fatal := func(err error) {
		logger.Error("startup failed", "err", err)
		os.Exit(1)
	}

	inj, err := faults.FromSpec(*faultSeed, *faultSpec)
	if err != nil {
		fatal(err)
	}
	if inj != nil {
		logger.Info("fault injection armed", "seed", *faultSeed, "spec", *faultSpec)
	}
	var tracer *obs.WallTracer
	if *traceOn {
		tracer = obs.NewWallTracer(*traceSpans)
	}
	st, err := store.OpenConfig(store.Config{Dir: *cacheDir, MaxMem: *lru, Faults: inj})
	if err != nil {
		fatal(err)
	}
	var tenants []service.TenantConfig
	switch {
	case *tenantSpec != "" && *tenantFile != "":
		fatal(errors.New("-tenants and -tenants-file are mutually exclusive"))
	case *tenantSpec != "":
		if tenants, err = service.ParseTenants(*tenantSpec); err != nil {
			fatal(err)
		}
	case *tenantFile != "":
		if tenants, err = service.LoadTenantsFile(*tenantFile); err != nil {
			fatal(err)
		}
	}
	if len(tenants) > 0 {
		logger.Info("multi-tenant mode", "tenants", len(tenants))
	}
	peers := splitPeers(*peersFlag)
	clustered := *self != "" || len(peers) > 0
	if clustered && (*self == "" || len(peers) == 0) {
		fatal(errors.New("cluster mode needs both -self and -peers"))
	}
	name := *nodeName
	if clustered && name == "" {
		if u, perr := url.Parse(*self); perr == nil && u.Host != "" {
			name = u.Host
		} else {
			name = *self
		}
	}
	// The scheduler's state hook reaches the cluster node through an atomic
	// pointer: the node wraps the scheduler's handler, so the scheduler must
	// exist first, but the hook only fires once jobs run.
	var nodePtr atomic.Pointer[cluster.Node]
	sched, err := service.New(service.Config{
		Store:           st,
		QueueCap:        *queueCap,
		AgingStep:       *aging,
		Workers:         *workers,
		SimParallelism:  *parallel,
		NodeName:        name,
		CollectMetrics:  true,
		CollectTrace:    *traceOn,
		JobTimeout:      *jobTimeout,
		JobRetries:      *retries,
		Tenants:         tenants,
		StreamBuffer:    *streamBuf,
		StreamHeartbeat: *streamHB,
		Faults:          inj,
		Log:             logger,
		Tracer:          tracer,
		StateHook: func(js service.JobStatus) {
			if nd := nodePtr.Load(); nd != nil {
				nd.JobStateHook(js)
			}
		},
	})
	if err != nil {
		fatal(err)
	}
	var node *cluster.Node
	apiHandler := sched.Handler()
	if clustered {
		node, err = cluster.New(cluster.Config{
			Self:     *self,
			Peers:    peers,
			Replicas: *replicas,
			VNodes:   *vnodes,
			RingSeed: *ringSeed,
			Store:    st,
			Sched:    sched,
			Faults:   inj,
			Log:      logger,
			Tracer:   tracer,
		})
		if err != nil {
			fatal(err)
		}
		nodePtr.Store(node)
		apiHandler = node.Handler()
		logger.Info("cluster mode", "self", *self, "node", name, "members", len(peers)+1,
			"replicas", *replicas, "vnodes", *vnodes, "ring_seed", *ringSeed)
	}

	// The API runs traced and fault-injected (trace middleware outermost, so
	// injected aborts still commit their request span); the debug surface
	// bypasses both so profiling and introspection survive chaos drills. In
	// cluster mode the cluster router wraps the local API inside the same
	// chain, and /statusz grows a cluster section.
	mux := http.NewServeMux()
	mux.Handle("/", sched.TraceMiddleware(faults.Middleware(inj, apiHandler)))
	mux.HandleFunc("GET /statusz", func(w http.ResponseWriter, r *http.Request) {
		payload := struct {
			service.Status
			Cluster *cluster.Status `json:"cluster,omitempty"`
		}{Status: sched.Status()}
		if node != nil {
			cs := node.Status()
			payload.Cluster = &cs
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(payload)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	srv := &http.Server{Addr: *addr, Handler: mux}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		logger.Info("signal received, shutting down HTTP")
		shCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(shCtx); err != nil {
			logger.Warn("http shutdown", "err", err)
		}
	}()

	logger.Info("listening",
		"addr", *addr, "cache", st.Dir(), "queue", *queueCap, "workers", *workers,
		"trace", *traceOn, "fingerprint", sched.Fingerprint())
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}

	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := sched.Drain(drainCtx); err != nil {
		logger.Error("drain incomplete", "err", err)
		os.Exit(1)
	}
	if node != nil {
		// After the drain every terminal state hook has fired; Close waits
		// for the replication pushes those hooks spawned.
		node.Close()
	}
	logger.Info("drained cleanly")
}

// splitPeers parses the -peers list.
func splitPeers(s string) []string {
	var urls []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			urls = append(urls, strings.TrimRight(p, "/"))
		}
	}
	return urls
}
