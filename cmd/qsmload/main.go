// Command qsmload drives a qsmd deployment — single node or cluster — with
// a synthetic job stream and reports end-to-end latency percentiles,
// throughput, cache behavior, and per-node balance as JSON.
//
// Usage:
//
//	qsmload -targets http://localhost:8344                       # closed loop
//	qsmload -targets http://n0:8344,http://n1:8344 -workers 8
//	qsmload -targets ... -rate 50 -duration 30s                  # open loop
//	qsmload -targets ... -zipf 1.2 -keys 100 -out results/       # hot-key skew
//
// Each request submits one experiment job whose seed is drawn from a -keys
// sized key universe: with -zipf S (S > 1) keys follow a Zipf distribution,
// so a few hot keys dominate — the regime where a shared result cache and
// owner-routed forwarding pay off — and otherwise keys are uniform. Requests
// round-robin across -targets, so on a cluster most submissions land on a
// non-owner and measure the forwarding path.
//
// Closed loop (default) runs -workers synchronous clients: each submits a
// job, polls it to completion, and immediately submits the next. Open loop
// (-rate N) fires submissions on a fixed schedule regardless of
// completions, measuring latency under offered load rather than sustainable
// load; arrivals beyond -max-inflight are counted as errors instead of
// queueing without bound.
//
// -stream switches completion-waiting from polling to the push API: each
// submitted job is watched over its SSE event stream (resuming with
// Last-Event-ID across drops), and the report grows a "stream" section
// with time-to-first-event and inter-event-gap percentiles plus drop and
// reconnect counts — the push-side latency picture polling cannot see.
//
// The report (stdout, or LOAD_<name>.json under -out) is a
// report.LoadRecord: p50/p90/p99/p999 latency, requests per second, cache
// hit ratio, jobs per executing node, and each target's forwarded vs local
// counters scraped from /statusz after the run.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/report"
	"repro/internal/service"
	"repro/internal/stats"
)

func main() {
	var (
		targets     = flag.String("targets", "http://localhost:8344", "comma-separated qsmd base URLs; requests round-robin across them")
		experiment  = flag.String("exp", "fig2", "experiment id each job runs")
		runs        = flag.Int("runs", 1, "repetitions per job (smaller = lighter jobs)")
		quick       = flag.Bool("quick", true, "submit quick (trimmed-sweep) jobs")
		duration    = flag.Duration("duration", 10*time.Second, "how long to offer load")
		workers     = flag.Int("workers", 4, "closed-loop concurrent clients")
		rate        = flag.Float64("rate", 0, "open-loop arrivals per second (0 = closed loop)")
		maxInflight = flag.Int("max-inflight", 256, "open-loop cap on concurrent requests; arrivals beyond it count as errors")
		keys        = flag.Int("keys", 20, "distinct job seeds (the key universe)")
		tenant      = flag.String("tenant", "", "tenant name stamped on every submission (fair-share queuing)")
		priority    = flag.Int("priority", 0, "submission priority (higher dequeues first, subject to aging)")
		deadlineMS  = flag.Int64("deadline-ms", 0, "per-job deadline in milliseconds (0 = none)")
		zipfS       = flag.Float64("zipf", 1.1, "Zipf skew exponent for key choice; <= 1 means uniform")
		seed        = flag.Int64("seed", 1, "generator seed (key sequence and worker jitter)")
		out         = flag.String("out", "", "write LOAD_<name>.json under this directory (or to this file if it ends in .json); default stdout")
		name        = flag.String("name", "qsmload", "report name used in the LOAD_<name>.json file name")
		pollEvery   = flag.Duration("poll", 20*time.Millisecond, "job status poll interval")
		stream      = flag.Bool("stream", false, "watch jobs over SSE event streams instead of polling; adds TTFE and event-gap stats")
	)
	flag.Parse()

	urls := splitTargets(*targets)
	if len(urls) == 0 {
		fmt.Fprintln(os.Stderr, "qsmload: -targets must name at least one qsmd URL")
		os.Exit(2)
	}
	if *keys < 1 {
		*keys = 1
	}

	g := &generator{
		urls:       urls,
		exp:        *experiment,
		runs:       *runs,
		quick:      *quick,
		keys:       *keys,
		zipfS:      *zipfS,
		seed:       *seed,
		tenant:     *tenant,
		priority:   *priority,
		deadlineMS: *deadlineMS,
		pollEvery:  *pollEvery,
		stream:     *stream,
		perNode:    map[string]uint64{},
	}
	for _, u := range urls {
		g.clients = append(g.clients, &service.Client{
			BaseURL:        u,
			Retry:          service.RetryPolicy{MaxAttempts: 3, BaseBackoff: 20 * time.Millisecond, MaxBackoff: 200 * time.Millisecond, Seed: *seed},
			RequestTimeout: 30 * time.Second,
		})
	}

	ctx, cancel := context.WithTimeout(context.Background(), *duration)
	defer cancel()
	start := time.Now()
	mode := "closed"
	if *rate > 0 {
		mode = "open"
		g.runOpen(ctx, *rate, *maxInflight)
	} else {
		g.runClosed(ctx, *workers)
	}
	wall := time.Since(start)

	rec := &report.LoadRecord{
		Experiment:  *experiment,
		Mode:        mode,
		Targets:     urls,
		Workers:     *workers,
		RatePerSec:  *rate,
		Seed:        *seed,
		Keys:        *keys,
		ZipfS:       *zipfS,
		WallSeconds: wall.Seconds(),
		Requests:    g.requests.Load(),
		Errors:      g.errors.Load(),
		CacheHits:   g.cacheHits.Load(),
		PerNode:     g.perNode,
		NodeStats:   scrapeNodeStats(urls),
	}
	if mode == "closed" {
		rec.RatePerSec = 0
	}
	rec.Finish(g.latencies)
	if *stream {
		rec.Stream = &report.StreamLoadStats{
			Watched:    g.watched.Load(),
			Events:     g.streamEvents.Load(),
			Drops:      g.streamDrops.Load(),
			Reconnects: g.streamReconnects.Load(),
			TTFE:       report.SummarizeLatency(g.ttfe),
			EventGap:   report.SummarizeLatency(g.gaps),
		}
	}

	if *out == "" {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rec); err != nil {
			fmt.Fprintln(os.Stderr, "qsmload:", err)
			os.Exit(1)
		}
		return
	}
	path, err := report.WriteLoad(*out, *name, rec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qsmload:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "qsmload: wrote %s (%d requests, %.1f req/s, p50 %.1fms p99 %.1fms, hit ratio %.2f)\n",
		path, rec.Requests, rec.Throughput, rec.Latency.P50, rec.Latency.P99, rec.CacheHitRatio)
}

func splitTargets(s string) []string {
	var urls []string
	for _, t := range strings.Split(s, ",") {
		if t = strings.TrimSpace(t); t != "" {
			urls = append(urls, strings.TrimRight(t, "/"))
		}
	}
	return urls
}

// generator holds the shared load-run state.
type generator struct {
	urls       []string
	clients    []*service.Client
	exp        string
	runs       int
	quick      bool
	keys       int
	zipfS      float64
	seed       int64
	tenant     string
	priority   int
	deadlineMS int64
	pollEvery  time.Duration
	stream     bool

	requests  atomic.Uint64
	errors    atomic.Uint64
	cacheHits atomic.Uint64
	next      atomic.Uint64 // round-robin target cursor

	watched          atomic.Uint64 // jobs observed via an event stream
	streamEvents     atomic.Uint64
	streamDrops      atomic.Uint64
	streamReconnects atomic.Uint64

	mu        sync.Mutex
	latencies []float64         // milliseconds
	ttfe      []float64         // submit → first stream event, ms
	gaps      []float64         // between consecutive stream events, ms
	perNode   map[string]uint64 // executing node → jobs
}

// keyPicker returns a per-stream deterministic key chooser: Zipf-skewed
// when the exponent allows it (rand.NewZipf needs s > 1), uniform
// otherwise.
func (g *generator) keyPicker(stream int64) func() int64 {
	rng := stats.NewRand(g.seed, stream)
	if g.zipfS > 1 {
		z := rand.NewZipf(rng, g.zipfS, 1, uint64(g.keys-1))
		return func() int64 { return int64(z.Uint64()) + 1 }
	}
	return func() int64 { return rng.Int63n(int64(g.keys)) + 1 }
}

// one pushes a single job through a round-robin target and records its
// end-to-end latency, cache outcome, and executing node.
func (g *generator) one(ctx context.Context, key int64) {
	c := g.clients[g.next.Add(1)%uint64(len(g.clients))]
	req := service.SubmitRequest{
		Experiment: g.exp, Seed: key, Runs: g.runs, Quick: g.quick,
		Tenant: g.tenant, Priority: g.priority, DeadlineMS: g.deadlineMS,
	}
	start := time.Now()
	js, err := c.Submit(ctx, req)
	if err == nil && js.State != service.StateDone && js.State != service.StateFailed {
		if g.stream {
			js, err = g.watch(ctx, c, js.ID, start)
		} else {
			js, err = c.Wait(ctx, js.ID, g.pollEvery, nil)
		}
	}
	g.requests.Add(1)
	if err != nil || js.State != service.StateDone {
		g.errors.Add(1)
		return
	}
	if js.Cached {
		g.cacheHits.Add(1)
	}
	elapsed := float64(time.Since(start).Microseconds()) / 1000
	node := js.Node
	if node == "" {
		node = "(unnamed)"
	}
	g.mu.Lock()
	g.latencies = append(g.latencies, elapsed)
	g.perNode[node]++
	g.mu.Unlock()
}

// watch follows one job's event stream to the terminal state, timing the
// first event against the submit and the gaps between consecutive events.
func (g *generator) watch(ctx context.Context, c *service.Client, id string, start time.Time) (service.JobStatus, error) {
	g.watched.Add(1)
	var prev time.Time
	res, err := c.WatchJobDetail(ctx, id, 0, func(ev service.StreamEvent) {
		now := time.Now()
		g.mu.Lock()
		if prev.IsZero() {
			g.ttfe = append(g.ttfe, float64(now.Sub(start).Microseconds())/1000)
		} else {
			g.gaps = append(g.gaps, float64(now.Sub(prev).Microseconds())/1000)
		}
		g.mu.Unlock()
		prev = now
	})
	g.streamEvents.Add(uint64(res.Events))
	g.streamDrops.Add(uint64(res.Drops))
	g.streamReconnects.Add(uint64(res.Reconnects))
	return res.Status, err
}

// runClosed runs n synchronous clients until the context expires. In-flight
// jobs finish measuring after the deadline (their submission was offered in
// time), so the tail is not truncated.
func (g *generator) runClosed(ctx context.Context, n int) {
	if n < 1 {
		n = 1
	}
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(stream int64) {
			defer wg.Done()
			pick := g.keyPicker(stream)
			for ctx.Err() == nil {
				// Completed jobs keep their measurement even when the
				// deadline cancels a later poll mid-flight.
				g.one(context.WithoutCancel(ctx), pick())
				if ctx.Err() != nil {
					return
				}
			}
		}(int64(w))
	}
	wg.Wait()
}

// runOpen fires arrivals at the offered rate until the context expires,
// capping concurrency at maxInflight (excess arrivals are dropped and
// counted as errors: an overloaded open-loop run must show up in the error
// count, not in unbounded memory).
func (g *generator) runOpen(ctx context.Context, rate float64, maxInflight int) {
	if maxInflight < 1 {
		maxInflight = 1
	}
	interval := time.Duration(float64(time.Second) / rate)
	if interval <= 0 {
		interval = time.Millisecond
	}
	sem := make(chan struct{}, maxInflight)
	pick := g.keyPicker(0)
	var wg sync.WaitGroup
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			wg.Wait()
			return
		case <-tick.C:
			key := pick()
			select {
			case sem <- struct{}{}:
				wg.Add(1)
				go func() {
					defer wg.Done()
					defer func() { <-sem }()
					g.one(context.WithoutCancel(ctx), key)
				}()
			default:
				g.requests.Add(1)
				g.errors.Add(1)
			}
		}
	}
}

// scrapeNodeStats pulls each target's cluster counters from /statusz after
// the run. Single-node targets (no cluster section) contribute zero rows.
func scrapeNodeStats(urls []string) []report.NodeLoadStats {
	var out []report.NodeLoadStats
	for _, u := range urls {
		st, err := fetchStatusz(u)
		if err != nil || st == nil {
			continue
		}
		out = append(out, report.NodeLoadStats{
			URL:           u,
			Forwarded:     st.Forwarded,
			Local:         st.Local,
			FallbackLocal: st.FallbackLocal,
			ReplicatedOut: st.ReplicatedOut,
			ReplicatedIn:  st.ReplicatedIn,
			ReadRepairs:   st.ReadRepairs,
		})
	}
	return out
}

func fetchStatusz(base string) (*cluster.Status, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/statusz", nil)
	if err != nil {
		return nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("statusz: %s", resp.Status)
	}
	var payload struct {
		Cluster *cluster.Status `json:"cluster"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		return nil, err
	}
	return payload.Cluster, nil
}
