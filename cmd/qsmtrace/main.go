// Command qsmtrace runs one algorithm on the simulated machine and dumps
// the per-node, per-phase timeline as CSV: when each Sync began and ended
// in simulated cycles and how many words it moved. Feed it to a
// spreadsheet or plotting tool to see where a program's time goes.
//
// Usage:
//
//	qsmtrace -alg sort -n 65536 -p 16 > timeline.csv
//	qsmtrace -alg sort -trace sort.json   # Chrome trace JSON for Perfetto
//
// With -trace FILE the run additionally collects sim-time spans through
// internal/obs — per-node superstep sync/compute spans and the underlying
// engine metrics — and writes them as Chrome trace-event JSON, loadable in
// Perfetto or chrome://tracing. The CSV timeline still goes to stdout.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/qsmlib"
	"repro/internal/workload"
)

func main() {
	var (
		alg       = flag.String("alg", "sort", "algorithm: prefix, sort, rank, or wyllie")
		n         = flag.Int("n", 65536, "problem size")
		p         = flag.Int("p", 16, "processors")
		seed      = flag.Int64("seed", 1, "random seed")
		traceFile = flag.String("trace", "", "write a Chrome trace-event JSON file of the run's sim-time spans")
	)
	flag.Parse()

	in := workload.UniformInts(*n, 0, *seed)
	input := func(id, pp int) []int64 {
		lo, hi := workload.Partition(*n, pp, id)
		return in[lo:hi]
	}
	var prog core.Program
	switch *alg {
	case "prefix":
		prog = algorithms.PrefixSums{N: *n, Input: input}.Program()
	case "sort":
		prog = algorithms.SampleSort{N: *n, Input: input}.Program()
	case "rank":
		prog = algorithms.ListRank{List: workload.RandomList(*n, *seed)}.Program()
	case "wyllie":
		prog = algorithms.WyllieListRank{List: workload.RandomList(*n, *seed)}.Program()
	default:
		fmt.Fprintf(os.Stderr, "qsmtrace: unknown algorithm %q\n", *alg)
		os.Exit(2)
	}

	var rec *obs.Recorder
	if *traceFile != "" {
		rec = obs.New(obs.Config{Trace: true, Metrics: true})
	}
	m := qsmlib.New(*p, qsmlib.Options{Seed: *seed, Obs: rec})
	if err := m.Run(prog); err != nil {
		fmt.Fprintf(os.Stderr, "qsmtrace: %v\n", err)
		os.Exit(1)
	}
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "qsmtrace: %v\n", err)
			os.Exit(1)
		}
		if err := rec.WriteTraceJSON(f); err != nil {
			fmt.Fprintf(os.Stderr, "qsmtrace: writing trace: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "qsmtrace: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "qsmtrace: wrote %s (%d spans, %d dropped)\n",
			*traceFile, rec.Spans(), rec.DroppedSpans())
	}
	fmt.Println("node,phase,start_cycles,end_cycles,duration_cycles,put_words,get_words")
	for id := 0; id < *p; id++ {
		for _, s := range m.Timeline(id) {
			fmt.Printf("%d,%d,%d,%d,%d,%d,%d\n",
				id, s.Phase, s.Start, s.End, s.End-s.Start, s.PutWords, s.GetWords)
		}
	}
	fmt.Fprintf(os.Stderr, "qsmtrace: %s n=%d p=%d: total %d cycles, comm %d cycles (bottleneck)\n",
		*alg, *n, *p, m.RunStats().TotalCycles, m.RunStats().MaxComm())
}
