// Command qsmtrace runs one algorithm on the simulated machine and dumps
// the per-node, per-phase timeline as CSV: when each Sync began and ended
// in simulated cycles and how many words it moved. Feed it to a
// spreadsheet or plotting tool to see where a program's time goes.
//
// Usage:
//
//	qsmtrace -alg sort -n 65536 -p 16 > timeline.csv
//	qsmtrace -alg sort -trace sort.json   # Chrome trace JSON for Perfetto
//	qsmtrace -inspect sort.json merged.json
//
// With -trace FILE the run additionally collects sim-time spans through
// internal/obs — per-node superstep sync/compute spans and the underlying
// engine metrics — and writes them as Chrome trace-event JSON, loadable in
// Perfetto or chrome://tracing. The CSV timeline still goes to stdout.
//
// With -inspect the remaining arguments are trace files to validate instead
// of running a simulation: each is parsed as Chrome trace-event JSON and
// checked structurally (an event array, well-formed spans, matching
// metadata). A one-line summary per file goes to stdout; missing or
// malformed files get a stderr diagnostic and a non-zero exit (never silent
// partial output), so CI can gate on exported traces being loadable.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/qsmlib"
	"repro/internal/workload"
)

func main() {
	var (
		alg       = flag.String("alg", "sort", "algorithm: prefix, sort, rank, or wyllie")
		n         = flag.Int("n", 65536, "problem size")
		p         = flag.Int("p", 16, "processors")
		seed      = flag.Int64("seed", 1, "random seed")
		traceFile = flag.String("trace", "", "write a Chrome trace-event JSON file of the run's sim-time spans")
		inspect   = flag.Bool("inspect", false, "validate the trace files given as arguments instead of simulating")
	)
	flag.Parse()
	if *inspect {
		os.Exit(inspectFiles(flag.Args()))
	}

	in := workload.UniformInts(*n, 0, *seed)
	input := func(id, pp int) []int64 {
		lo, hi := workload.Partition(*n, pp, id)
		return in[lo:hi]
	}
	var prog core.Program
	switch *alg {
	case "prefix":
		prog = algorithms.PrefixSums{N: *n, Input: input}.Program()
	case "sort":
		prog = algorithms.SampleSort{N: *n, Input: input}.Program()
	case "rank":
		prog = algorithms.ListRank{List: workload.RandomList(*n, *seed)}.Program()
	case "wyllie":
		prog = algorithms.WyllieListRank{List: workload.RandomList(*n, *seed)}.Program()
	default:
		fmt.Fprintf(os.Stderr, "qsmtrace: unknown algorithm %q\n", *alg)
		os.Exit(2)
	}

	var rec *obs.Recorder
	if *traceFile != "" {
		rec = obs.New(obs.Config{Trace: true, Metrics: true})
	}
	m := qsmlib.New(*p, qsmlib.Options{Seed: *seed, Obs: rec})
	if err := m.Run(prog); err != nil {
		fmt.Fprintf(os.Stderr, "qsmtrace: %v\n", err)
		os.Exit(1)
	}
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "qsmtrace: %v\n", err)
			os.Exit(1)
		}
		if err := rec.WriteTraceJSON(f); err != nil {
			f.Close()
			os.Remove(*traceFile) // no silent partial trace files
			fmt.Fprintf(os.Stderr, "qsmtrace: writing trace: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			os.Remove(*traceFile)
			fmt.Fprintf(os.Stderr, "qsmtrace: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "qsmtrace: wrote %s (%d spans, %d dropped)\n",
			*traceFile, rec.Spans(), rec.DroppedSpans())
	}
	fmt.Println("node,phase,start_cycles,end_cycles,duration_cycles,put_words,get_words")
	for id := 0; id < *p; id++ {
		for _, s := range m.Timeline(id) {
			fmt.Printf("%d,%d,%d,%d,%d,%d,%d\n",
				id, s.Phase, s.Start, s.End, s.End-s.Start, s.PutWords, s.GetWords)
		}
	}
	fmt.Fprintf(os.Stderr, "qsmtrace: %s n=%d p=%d: total %d cycles, comm %d cycles (bottleneck)\n",
		*alg, *n, *p, m.RunStats().TotalCycles, m.RunStats().MaxComm())
}

// inspectFiles validates each file as Chrome trace-event JSON and prints a
// per-file summary. It returns the process exit code: 0 when every file is
// well-formed, 1 when any is missing or malformed, 2 on usage error.
func inspectFiles(files []string) int {
	if len(files) == 0 {
		fmt.Fprintln(os.Stderr, "qsmtrace: -inspect needs at least one trace file argument")
		return 2
	}
	code := 0
	for _, path := range files {
		summary, err := inspectTrace(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "qsmtrace: %s: %v\n", path, err)
			code = 1
			continue
		}
		fmt.Printf("%s: %s\n", path, summary)
	}
	return code
}

// traceEvent is the subset of a Chrome trace event -inspect checks. Numeric
// fields are pointers so "present but zero" and "absent" stay distinct.
type traceEvent struct {
	Ph   string          `json:"ph"`
	Pid  *int            `json:"pid"`
	Tid  *int            `json:"tid"`
	Ts   *float64        `json:"ts"`
	Dur  *float64        `json:"dur"`
	Name string          `json:"name"`
	Args json.RawMessage `json:"args"`
}

// inspectTrace parses and structurally validates one trace file, returning a
// human-readable summary.
func inspectTrace(path string) (string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	if len(data) == 0 {
		return "", fmt.Errorf("empty file")
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
		OtherData   map[string]any    `json:"otherData"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return "", fmt.Errorf("malformed JSON: %v", err)
	}
	if doc.TraceEvents == nil {
		return "", fmt.Errorf("no traceEvents array (not a Chrome trace file?)")
	}
	var spans, meta, instants int
	pids := map[int]bool{}
	for i, raw := range doc.TraceEvents {
		var ev traceEvent
		if err := json.Unmarshal(raw, &ev); err != nil {
			return "", fmt.Errorf("event %d: malformed: %v", i, err)
		}
		if ev.Pid == nil {
			return "", fmt.Errorf("event %d (%q): missing pid", i, ev.Name)
		}
		pids[*ev.Pid] = true
		switch ev.Ph {
		case "X":
			if ev.Name == "" || ev.Ts == nil || ev.Dur == nil {
				return "", fmt.Errorf("event %d: complete span missing name/ts/dur", i)
			}
			if *ev.Dur < 0 {
				return "", fmt.Errorf("event %d (%q): negative duration %v", i, ev.Name, *ev.Dur)
			}
			spans++
		case "M":
			if ev.Name == "" {
				return "", fmt.Errorf("event %d: metadata event missing name", i)
			}
			meta++
		case "i", "I":
			if ev.Name == "" || ev.Ts == nil {
				return "", fmt.Errorf("event %d: instant event missing name/ts", i)
			}
			instants++
		case "":
			return "", fmt.Errorf("event %d (%q): missing ph", i, ev.Name)
		default:
			// Other phases are legal Chrome trace constructs we don't emit;
			// count nothing but accept them.
		}
	}
	if spans+instants == 0 {
		return "", fmt.Errorf("no span or instant events (empty trace)")
	}
	summary := fmt.Sprintf("ok: %d spans, %d instants, %d metadata events, %d process rows",
		spans, instants, meta, len(pids))
	if id, ok := doc.OtherData["traceId"].(string); ok && id != "" {
		summary += ", trace ID " + id
	}
	return summary, nil
}
