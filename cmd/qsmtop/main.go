// Command qsmtop is a live terminal dashboard for a running qsmd: it polls
// the server's /statusz and /metricsz endpoints and renders a one-screen
// view of the serving stack — queue depth, per-state job counts, scheduler
// counters, store health and degradation, fault-injection fire counts, and
// the busiest service metrics.
//
// Usage:
//
//	qsmtop [-server http://127.0.0.1:8344] [-interval 2s]
//	qsmtop -once            # one plain snapshot (no screen control), for CI
//
// In live mode the screen redraws every -interval until interrupted; -once
// prints a single snapshot and exits (non-zero when the server is
// unreachable), which is what the CI smoke uses.
//
// Against a cluster-mode qsmd the dashboard adds a cluster pane: peer
// liveness, each member's ring ownership share, and the node's forwarded vs
// local request and replication counters.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/service"
)

func main() {
	var (
		server   = flag.String("server", "http://127.0.0.1:8344", "qsmd base URL")
		interval = flag.Duration("interval", 2*time.Second, "poll interval in live mode")
		once     = flag.Bool("once", false, "print one snapshot and exit (no screen control)")
		metricsN = flag.Int("metrics", 8, "service metric lines to show (0 hides the section)")
	)
	flag.Parse()
	base := strings.TrimRight(*server, "/")
	client := &http.Client{Timeout: 5 * time.Second}

	if *once {
		if err := render(os.Stdout, client, base, *metricsN); err != nil {
			fmt.Fprintf(os.Stderr, "qsmtop: %v\n", err)
			os.Exit(1)
		}
		return
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	t := time.NewTicker(*interval)
	defer t.Stop()
	for {
		var b strings.Builder
		err := render(&b, client, base, *metricsN)
		// Clear and home only once the frame is built, so a slow poll
		// doesn't leave a blank screen.
		fmt.Print("\x1b[2J\x1b[H")
		if err != nil {
			fmt.Printf("qsmtop: %v (retrying every %s)\n", err, *interval)
		} else {
			fmt.Print(b.String())
		}
		select {
		case <-sig:
			return
		case <-t.C:
		}
	}
}

// render fetches one /statusz + /metricsz snapshot and writes the dashboard
// frame to w.
func render(w io.Writer, client *http.Client, base string, metricsN int) error {
	var payload struct {
		service.Status
		Cluster *cluster.Status `json:"cluster"`
	}
	if err := getJSON(client, base+"/statusz", &payload); err != nil {
		return err
	}
	st := payload.Status

	fmt.Fprintf(w, "qsmd %s — up %s — fingerprint %s — %s\n",
		base, fmtDuration(time.Duration(st.UptimeSeconds*float64(time.Second))),
		st.Fingerprint, time.Now().Format("15:04:05"))
	state := "serving"
	if st.Draining {
		state = "DRAINING"
	}
	fmt.Fprintf(w, "state   %-10s workers %d   goroutines %d\n", state, st.Workers, st.Goroutines)
	fmt.Fprintf(w, "queue   %d/%d waiting%s\n", st.Queue.Depth, st.Queue.Capacity, fmtTenants(st.Queue.Tenants))
	fmt.Fprintf(w, "jobs    queued %d   running %d   done %d   failed %d   (total %d)\n",
		st.Jobs.Queued, st.Jobs.Running, st.Jobs.Done, st.Jobs.Failed, st.Jobs.Total)
	fmt.Fprintf(w, "sched   submitted %d   cache hit/miss %d/%d   retried %d   rejected %d   failed %d   inflight %d   coalesced %d (%d batches)\n",
		st.Scheduler.Submitted, st.Scheduler.CacheHits, st.Scheduler.CacheMisses,
		st.Scheduler.Retried, st.Scheduler.Rejected, st.Scheduler.Failed, st.Scheduler.Inflight,
		st.Scheduler.Coalesced, st.Scheduler.CoalescedBatches)
	renderSched(w, st.Sched)
	fmt.Fprintf(w, "store   mem %d   read-errors %d   checksum-fail %d   quarantined %d   degraded reads/writes %d/%d\n",
		st.Store.MemEntries, st.Store.ReadErrors, st.Store.ChecksumFailures,
		st.Store.EntriesQuarantined, st.Store.ReadsDegraded, st.Store.WritesDegraded)
	if st.TraceEnabled {
		fmt.Fprintf(w, "trace   on   %d wall spans (%d dropped)\n", st.WallSpans, st.WallDropped)
	} else {
		fmt.Fprintf(w, "trace   off\n")
	}
	if st.Faults.Armed {
		fmt.Fprintf(w, "faults  armed   %s\n", fmtFaults(st.Faults.Injected))
	} else {
		fmt.Fprintf(w, "faults  unarmed\n")
	}
	renderStreams(w, st.Streams)
	renderTenants(w, st.Tenants)
	if cs := payload.Cluster; cs != nil {
		renderCluster(w, cs)
	}

	if metricsN > 0 {
		lines, err := serviceMetrics(client, base+"/metricsz", metricsN)
		if err != nil {
			return err
		}
		if len(lines) > 0 {
			fmt.Fprintf(w, "\nservice metrics (top %d of /metricsz)\n", len(lines))
			for _, l := range lines {
				fmt.Fprintf(w, "  %s\n", l)
			}
		}
	}
	return nil
}

// renderSched writes the work-stealing pane: process-wide steal totals since
// start plus, for every pool currently inside a sweep, its per-worker deque
// depths — the live picture of how evenly the sweep's work is spread.
func renderSched(w io.Writer, ss service.SchedStatus) {
	fmt.Fprintf(w, "steal   steals %d   overflows %d   parks %d   live pools %d\n",
		ss.Steals, ss.Overflows, ss.Parks, len(ss.Pools))
	for _, p := range ss.Pools {
		depths := make([]string, len(p.Depths))
		for i, d := range p.Depths {
			depths[i] = fmt.Sprintf("%d", d)
		}
		fmt.Fprintf(w, "  pool %-12s workers %d   jobs %d/%d claimed   steals %d   depths [%s]\n",
			p.Name, p.Workers, p.Claimed, p.Jobs, p.Steals, strings.Join(depths, " "))
	}
}

// renderStreams writes the push-API line: live subscribers and the fan-out
// counters (a growing dropped count flags slow consumers).
func renderStreams(w io.Writer, ss service.StreamStatus) {
	fmt.Fprintf(w, "streams %d subscribers   opened %d   published %d   dropped %d\n",
		ss.Subscribers, ss.Opened, ss.Published, ss.Dropped)
}

// renderTenants writes the quota pane, one row per configured tenant;
// anonymous servers (no tenants) skip it.
func renderTenants(w io.Writer, tenants map[string]service.TenantStatus) {
	if len(tenants) == 0 {
		return
	}
	names := make([]string, 0, len(tenants))
	for t := range tenants {
		names = append(names, t)
	}
	sort.Strings(names)
	fmt.Fprintf(w, "tenants %d configured\n", len(names))
	for _, name := range names {
		t := tenants[name]
		fmt.Fprintf(w, "  %-16s active %s   queued %s   submitted %d   rejected %d\n",
			name, fmtQuota(t.Active, t.MaxActive), fmtQuota(t.Queued, t.MaxQueued),
			t.Submitted, t.Rejected)
	}
}

// fmtQuota renders "used/limit", with "-" for unlimited.
func fmtQuota(used, limit int) string {
	if limit <= 0 {
		return fmt.Sprintf("%d/-", used)
	}
	return fmt.Sprintf("%d/%d", used, limit)
}

// fmtTenants renders per-tenant queue depths as a suffix for the queue line.
func fmtTenants(tenants map[string]int) string {
	if len(tenants) == 0 {
		return ""
	}
	names := make([]string, 0, len(tenants))
	for t := range tenants {
		names = append(names, t)
	}
	sort.Strings(names)
	parts := make([]string, 0, len(names))
	for _, t := range names {
		if t == "" {
			t = "(default)"
		}
		parts = append(parts, fmt.Sprintf("%s %d", t, tenants[t]))
	}
	return "   by tenant: " + strings.Join(parts, "   ")
}

// renderCluster writes the cluster pane: membership and routing counters on
// the node line, then one row per peer with liveness and ring share.
func renderCluster(w io.Writer, cs *cluster.Status) {
	fmt.Fprintf(w, "\ncluster %d members   replicas %d   vnodes %d   seed %d\n",
		len(cs.Members), cs.Replicas, cs.VNodes, cs.RingSeed)
	fmt.Fprintf(w, "  route forwarded %d   local %d   fallback %d   fwd-failures %d\n",
		cs.Forwarded, cs.Local, cs.FallbackLocal, cs.ForwardFailures)
	fmt.Fprintf(w, "  repl  out %d   in %d   failures %d   read-repairs %d\n",
		cs.ReplicatedOut, cs.ReplicatedIn, cs.ReplicateFailures, cs.ReadRepairs)
	fmt.Fprintf(w, "  %-40s %-6s %8s %8s %8s\n", "member", "state", "share", "checks", "failures")
	fmt.Fprintf(w, "  %-40s %-6s %7.1f%% %8s %8s\n", trimURL(cs.Self), "self", cs.Shares[cs.Self]*100, "-", "-")
	for _, p := range cs.Peers {
		state := "up"
		if !p.Alive {
			state = "DOWN"
		}
		fmt.Fprintf(w, "  %-40s %-6s %7.1f%% %8d %8d\n",
			trimURL(p.URL), state, cs.Shares[p.URL]*100, p.Checks, p.Failures)
		if p.LastError != "" {
			fmt.Fprintf(w, "    last error: %s\n", p.LastError)
		}
	}
}

// trimURL drops the scheme so member rows fit the pane.
func trimURL(u string) string {
	u = strings.TrimPrefix(u, "http://")
	return strings.TrimPrefix(u, "https://")
}

func getJSON(client *http.Client, url string, out any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: HTTP %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// serviceMetrics scrapes /metricsz and returns up to n service-subsystem
// sample lines (skipping comments), already sorted by the exporter.
func serviceMetrics(client *http.Client, url string, n int) ([]string, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: HTTP %d", url, resp.StatusCode)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	var lines []string
	for _, l := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(l, "qsm_service_") {
			lines = append(lines, l)
		}
	}
	if len(lines) > n {
		lines = lines[:n]
	}
	return lines, nil
}

// fmtFaults renders the per-class fire counts, fired classes first.
func fmtFaults(injected map[string]uint64) string {
	classes := make([]string, 0, len(injected))
	for c := range injected {
		classes = append(classes, c)
	}
	sort.Slice(classes, func(i, j int) bool {
		if injected[classes[i]] != injected[classes[j]] {
			return injected[classes[i]] > injected[classes[j]]
		}
		return classes[i] < classes[j]
	})
	parts := make([]string, 0, len(classes))
	for _, c := range classes {
		parts = append(parts, fmt.Sprintf("%s %d", c, injected[c]))
	}
	if len(parts) == 0 {
		return "(no classes)"
	}
	return strings.Join(parts, "   ")
}

func fmtDuration(d time.Duration) string {
	switch {
	case d >= time.Hour:
		return fmt.Sprintf("%dh%02dm", int(d.Hours()), int(d.Minutes())%60)
	case d >= time.Minute:
		return fmt.Sprintf("%dm%02ds", int(d.Minutes()), int(d.Seconds())%60)
	default:
		return fmt.Sprintf("%.1fs", d.Seconds())
	}
}
