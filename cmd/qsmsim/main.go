// Command qsmsim runs one QSM algorithm on the simulated multiprocessor
// with configurable machine parameters, verifying the result and printing
// the measurement (and optionally the per-phase cost profile).
//
// Usage:
//
//	qsmsim -alg sort -n 262144 -p 16 -l 1600 -o 400 -g 3 [-profile] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/qsmlib"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	var (
		alg     = flag.String("alg", "sort", "algorithm: prefix, sort, rank, wyllie, kselect, or matmul")
		n       = flag.Int("n", 262144, "problem size")
		p       = flag.Int("p", 16, "processors")
		g       = flag.Float64("g", 3, "hardware gap, cycles/byte")
		l       = flag.Uint64("l", 1600, "latency, cycles")
		o       = flag.Uint64("o", 400, "per-message overhead, cycles")
		seed    = flag.Int64("seed", 1, "random seed")
		profile = flag.Bool("profile", false, "print the per-phase cost profile")
		tree    = flag.Bool("tree", false, "use the dissemination barrier")
	)
	flag.Parse()

	net := machine.DefaultNet()
	net.Gap = *g
	net.Latency = sim.Time(*l)
	net.SendOverhead = sim.Time(*o)
	net.RecvOverhead = sim.Time(*o)

	in := workload.UniformInts(*n, 0, *seed)
	input := func(id, pp int) []int64 {
		lo, hi := workload.Partition(*n, pp, id)
		return in[lo:hi]
	}

	var prog core.Program
	var verify func(got []int64) error
	var out string
	switch *alg {
	case "prefix":
		a := algorithms.PrefixSums{N: *n, Input: input}
		prog, out = a.Program(), a.Out()
		want := algorithms.SeqPrefix(in)
		verify = match(want)
	case "sort":
		a := algorithms.SampleSort{N: *n, Input: input}
		prog, out = a.Program(), a.Out()
		verify = match(algorithms.SeqSort(in))
	case "rank":
		list := workload.RandomList(*n, *seed)
		a := algorithms.ListRank{List: list}
		prog, out = a.Program(), a.Out()
		verify = match(algorithms.SeqListRank(list))
	case "wyllie":
		list := workload.RandomList(*n, *seed)
		a := algorithms.WyllieListRank{List: list}
		prog, out = a.Program(), a.Out()
		verify = match(algorithms.SeqListRank(list))
	case "kselect":
		a := algorithms.KSelect{N: *n, K: *n / 2, Input: input}
		prog, out = a.Program(), a.Out()
		want := algorithms.SeqSort(in)[*n/2]
		verify = match([]int64{want})
	case "matmul":
		// n is the matrix dimension here; keep it modest.
		dim := *n
		if dim > 512 {
			dim = 512
		}
		av := workload.UniformInts(dim*dim, 100, *seed)
		bv := workload.UniformInts(dim*dim, 100, *seed+1)
		rowInput := func(all []int64) func(id, pp int) []int64 {
			return func(id, pp int) []int64 {
				lo, hi := workload.Partition(dim, pp, id)
				return all[lo*dim : hi*dim]
			}
		}
		a := algorithms.MatMul{N: dim, A: rowInput(av), B: rowInput(bv)}
		prog, out = a.Program(), a.Out()
		verify = match(algorithms.SeqMatMul(av, bv, dim))
	default:
		fmt.Fprintf(os.Stderr, "qsmsim: unknown algorithm %q (prefix, sort, rank, wyllie, kselect, matmul)\n", *alg)
		os.Exit(2)
	}

	m := qsmlib.New(*p, qsmlib.Options{Net: net, Seed: *seed, TreeBarrier: *tree})
	var prof *core.Profile
	var err error
	if *profile {
		prof, err = m.RunProfiled(prog, core.Flags{})
	} else {
		err = m.Run(prog)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "qsmsim: %v\n", err)
		os.Exit(1)
	}
	if err := verify(m.Array(out)); err != nil {
		fmt.Fprintf(os.Stderr, "qsmsim: verification failed: %v\n", err)
		os.Exit(1)
	}

	st := m.RunStats()
	fmt.Printf("%s: n=%d p=%d g=%.1fc/B l=%d o=%d\n", *alg, *n, *p, *g, *l, *o)
	fmt.Printf("  total          %12d cycles (%.3f ms at 400 MHz)\n",
		st.TotalCycles, float64(st.TotalCycles)/400e3)
	fmt.Printf("  communication  %12d cycles (bottleneck node)\n", st.MaxComm())
	fmt.Printf("  computation    %12d cycles (bottleneck node)\n", st.MaxComp())
	fmt.Printf("  messages       %12d (%d bytes on the wire)\n", st.MsgsSent, st.BytesSent)
	fmt.Println("  result verified against the sequential baseline")

	if prof != nil {
		fmt.Printf("\nper-phase profile (%d phases):\n", prof.NumPhases())
		fmt.Printf("  %-7s %-12s %-12s %-10s %s\n", "phase", "m_op", "m_rw", "h", "msgs")
		for i, ph := range prof.Phases {
			if ph.MaxOps() == 0 && ph.MaxRW() == 0 {
				continue
			}
			fmt.Printf("  %-7d %-12d %-12d %-10d %d\n",
				i, ph.MaxOps(), ph.MaxRW(), ph.MaxH(), ph.MaxMsgs())
		}
	}
}

func match(want []int64) func([]int64) error {
	return func(got []int64) error {
		if len(got) != len(want) {
			return fmt.Errorf("length %d != %d", len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				return fmt.Errorf("index %d: got %d, want %d", i, got[i], want[i])
			}
		}
		return nil
	}
}
