// Custommodel: writing a new algorithm against the QSM interface and
// costing it under four models at once.
//
// The algorithm is a parallel histogram: every processor counts its local
// elements into b buckets, writes its counts to the owner of each bucket
// range, and bucket owners reduce. The run is profiled with core.Recorder,
// and the per-phase m_op / m_rw / h-relation / message counts feed the QSM,
// s-QSM, BSP and LogP charges — no algorithm changes required.
//
//	go run ./examples/custommodel
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/qsmlib"
	"repro/internal/workload"
)

const (
	n       = 1 << 18
	p       = 16
	buckets = 256
)

// histogram is the new QSM algorithm.
func histogram(ctx core.Ctx) {
	id := ctx.ID()
	lo, hi := workload.Partition(n, p, id)
	local := workload.UniformInts(hi-lo, buckets, int64(100+id))

	// counts is a p x buckets matrix: row i holds processor i's partial
	// counts, owned blocked so each row lands on its writer... then each
	// bucket owner gathers a column. Simpler: partials[writer*buckets+b].
	partials := ctx.RegisterSpec("hist.partials", p*buckets, core.LayoutSpec{Kind: core.LayoutBlocked})
	final := ctx.RegisterSpec("hist.final", buckets, core.LayoutSpec{Kind: core.LayoutBlocked})
	ctx.Sync()

	// Phase 1: local counting (pure computation) and publishing partials.
	mine := make([]int64, buckets)
	for _, v := range local {
		mine[v]++
	}
	ctx.Compute(cpu.BlockCompact(len(local)))
	ctx.WriteLocal(partials, id*buckets, mine)
	ctx.Sync()

	// Phase 2: each processor owns buckets/p buckets and gathers the other
	// processors' partial counts for them.
	perOwner := buckets / p
	myLo := id * perOwner
	col := make([]int64, p*perOwner)
	idx := make([]int, 0, (p-1)*perOwner)
	pos := make([]int, 0, (p-1)*perOwner)
	for src := 0; src < p; src++ {
		for b := 0; b < perOwner; b++ {
			at := src*perOwner + b
			if src == id {
				ctx.ReadLocal(partials, src*buckets+myLo+b, col[at:at+1])
				continue
			}
			idx = append(idx, src*buckets+myLo+b)
			pos = append(pos, at)
		}
	}
	tmp := make([]int64, len(idx))
	ctx.GetIndexed(partials, idx, tmp)
	ctx.Sync()
	for k, at := range pos {
		col[at] = tmp[k]
	}

	// Phase 3: reduce and write the owned slice of the final histogram.
	out := make([]int64, perOwner)
	for src := 0; src < p; src++ {
		for b := 0; b < perOwner; b++ {
			out[b] += col[src*perOwner+b]
		}
	}
	ctx.Compute(cpu.BlockSum(p * perOwner))
	ctx.WriteLocal(final, myLo, out)
	ctx.Sync()
}

func main() {
	m := qsmlib.New(p, qsmlib.Options{Seed: 9})
	prof, err := m.RunProfiled(histogram, core.Flags{CheckRules: true, TrackKappa: true})
	if err != nil {
		panic(err)
	}
	st := m.RunStats()

	var total int64
	for _, v := range m.Array("hist.final") {
		total += v
	}
	fmt.Printf("histogram of %d values in %d buckets: mass %d (expect %d)\n\n", n, buckets, total, n)

	fmt.Printf("%-7s %-10s %-10s %-8s %-8s %s\n", "phase", "m_op", "m_rw", "h", "msgs", "kappa")
	for i, ph := range prof.Phases {
		fmt.Printf("%-7d %-10d %-10d %-8d %-8d %d\n",
			i, ph.MaxOps(), ph.MaxRW(), ph.MaxH(), ph.MaxMsgs(), ph.Kappa)
	}

	// Charge the same run under four cost models (g from Table 3's observed
	// bulk gap, in word units; L from the measured empty-sync cost).
	const gWord, L, lat, o = 312, 51000, 1600, 400
	fmt.Printf("\nmodel charges for the whole run:\n")
	fmt.Printf("  QSM    max(m_op, g*m_rw, kappa)      = %.0f cycles\n", prof.QSMTime(gWord))
	fmt.Printf("  s-QSM  max(m_op, g*m_rw, g*kappa)    = %.0f cycles\n", prof.SQSMTime(gWord))
	fmt.Printf("  BSP    sum max(m_op, g*h) + L/phase  = %.0f cycles\n", prof.BSPTime(gWord, L))
	fmt.Printf("  LogP   2o*msgs + g*h + l per phase   = %.0f cycles (comm only)\n", prof.LogPCommTime(gWord, lat, o))
	fmt.Printf("\nmeasured on the simulated machine: total %d, comm %d cycles\n",
		st.TotalCycles, st.MaxComm())
	fmt.Println("bulk-synchrony rules checked: no word read and written in one phase")
}
