// List ranking: the paper's canonical irregular workload, with a latency
// sensitivity mini-sweep (the Section 3.3 experiment in miniature).
//
// A random linked list is ranked on the simulated 16-node machine at
// several hardware latencies. Because the algorithm is bulk-synchronous,
// its communication time barely moves until the latency is enormous — the
// QSM model's justification for omitting l.
//
//	go run ./examples/listrank [-n 65536]
package main

import (
	"flag"
	"fmt"

	"repro/internal/algorithms"
	"repro/internal/machine"
	"repro/internal/qsmlib"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	n := flag.Int("n", 65536, "list length")
	flag.Parse()
	const p = 16

	l := workload.RandomList(*n, 3)
	want := algorithms.SeqListRank(l)

	fmt.Printf("list ranking, n=%d, p=%d\n", *n, p)
	fmt.Printf("%-14s %-16s %-16s %s\n", "latency l", "total cycles", "comm cycles", "comm vs l=1600")
	var base float64
	for _, lat := range []sim.Time{1600, 6400, 25600, 102400, 409600} {
		net := machine.DefaultNet()
		net.Latency = lat
		m := qsmlib.New(p, qsmlib.Options{Net: net, Seed: 5})
		if err := m.Run(algorithms.ListRank{List: l}.Program()); err != nil {
			panic(err)
		}
		got := m.Array("rank.R")
		for i := range want {
			if got[i] != want[i] {
				panic("wrong ranks")
			}
		}
		st := m.RunStats()
		comm := float64(st.MaxComm())
		if base == 0 {
			base = comm
		}
		fmt.Printf("%-14d %-16d %-16d %.2fx\n", lat, st.TotalCycles, st.MaxComm(), comm/base)
	}
	fmt.Println("\nranks verified against sequential traversal at every latency")
}
