// Sorting: the paper's sample sort on both backends.
//
// The same core.Program runs (1) on the cycle-accurate simulated 16-node
// machine, reporting simulated communication time against the QSM
// prediction computed from the measured load balance, and (2) on the native
// goroutine runtime, reporting wall-clock time against the sequential sort.
//
//	go run ./examples/sorting [-n 262144] [-p 16]
package main

import (
	"flag"
	"fmt"
	"time"

	"repro/internal/algorithms"
	"repro/internal/models"
	"repro/internal/par"
	"repro/internal/qsmlib"
	"repro/internal/workload"
)

func main() {
	n := flag.Int("n", 262144, "elements to sort")
	p := flag.Int("p", 16, "processors")
	flag.Parse()

	in := workload.UniformInts(*n, 0, 7)
	input := func(id, pp int) []int64 {
		lo, hi := workload.Partition(*n, pp, id)
		return in[lo:hi]
	}
	want := algorithms.SeqSort(in)

	// --- Simulated machine: paper-style measurement. ---
	skew := algorithms.NewSortSkew(*p)
	alg := algorithms.SampleSort{N: *n, Input: input, Skew: skew}
	sm := qsmlib.New(*p, qsmlib.Options{Seed: 1})
	if err := sm.Run(alg.Program()); err != nil {
		panic(err)
	}
	st := sm.RunStats()
	check(sm.Array(alg.Out()), want)

	// A crude effective gap: Table 3's bulk put+get average is ~39 c/B,
	// i.e. ~312 cycles/word (run cmd/qsmbench -exp table3 to recalibrate).
	calib := models.Calib{P: *p, GWord: 312, L: 51000}
	est := calib.SortQSMComm(*n, 2, models.SortSkews{
		B: float64(skew.B()), R: skew.R(), OutW: float64(skew.OutW()),
	})
	fmt.Printf("simulated machine (p=%d, n=%d):\n", *p, *n)
	fmt.Printf("  total %d cycles (%.2f ms at 400 MHz)\n", st.TotalCycles,
		float64(st.TotalCycles)/400e3)
	fmt.Printf("  communication %d cycles; QSM estimate %0.f (ratio %.2f)\n",
		st.MaxComm(), est, est/float64(st.MaxComm()))
	fmt.Printf("  skews: largest bucket B=%d (ideal %d), remote fraction r=%.3f\n\n",
		skew.B(), *n / *p, skew.R())

	// --- Native runtime: real goroutines. ---
	nm := par.NewMachine(*p, par.Options{Seed: 1})
	t0 := time.Now()
	if err := nm.Run(algorithms.SampleSort{N: *n, Input: input}.Program()); err != nil {
		panic(err)
	}
	parallel := time.Since(t0)
	check(nm.Array(alg.Out()), want)

	t0 = time.Now()
	algorithms.SeqSort(in)
	seq := time.Since(t0)
	fmt.Printf("native runtime (p=%d goroutines):\n", *p)
	speedup := float64(seq) / float64(parallel)
	fmt.Printf("  parallel %v, sequential %v (speedup %.2fx)\n", parallel, seq, speedup)
	if speedup < 1 {
		fmt.Println("  (barrier overhead dominates at this size/core count; try -n 4194304)")
	}
	fmt.Println("  both backends produced the correct sorted output")
}

func check(got, want []int64) {
	if len(got) != len(want) {
		panic("length mismatch")
	}
	for i := range want {
		if got[i] != want[i] {
			panic(fmt.Sprintf("mismatch at %d: %d != %d", i, got[i], want[i]))
		}
	}
}
