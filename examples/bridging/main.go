// Bridging: one reduction, three models.
//
// The same global-sum computation runs (1) on the native QSM library,
// (2) through the QSM-on-BSP emulation — the bridging construction the
// paper's theory rests on — and (3) as a fine-grained LogP binomial tree.
// The printed cycle counts are the Section 2.1 model landscape in
// miniature: the emulation matches the library, and the fine-grained tree
// wins on tiny payloads where bulk synchrony cannot amortise its overhead.
//
//	go run ./examples/bridging
package main

import (
	"fmt"

	"repro/internal/bsp"
	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/logp"
	"repro/internal/qsmlib"
)

const p = 16

func sumProgram(ctx core.Ctx) {
	g := collective.NewGroup(ctx, "sum")
	total := g.AllReduce([]int64{int64(ctx.ID() + 1)}, collective.Sum)
	if total[0] != p*(p+1)/2 {
		panic("wrong sum")
	}
}

func main() {
	want := int64(p * (p + 1) / 2)
	fmt.Printf("global sum of 1..%d on %d processors (want %d):\n\n", p, p, want)

	qm := qsmlib.New(p, qsmlib.Options{Seed: 1})
	if err := qm.Run(sumProgram); err != nil {
		panic(err)
	}
	fmt.Printf("  QSM library (bulk-synchronous):   %10d cycles\n", qm.RunStats().TotalCycles)

	em := bsp.NewQSM(p, bsp.Options{Seed: 1}, core.LayoutBlocked)
	if err := em.Run(sumProgram); err != nil {
		panic(err)
	}
	fmt.Printf("  QSM emulated on BSP (bridging):   %10d cycles\n", em.RunStats().TotalCycles)

	lm := logp.New(logp.Default(p))
	if err := lm.Run(1, func(pc *logp.Proc) {
		v := logp.Sum(pc, 0, int64(pc.ID()+1))
		if pc.ID() == 0 && v != want {
			panic("wrong LogP sum")
		}
	}); err != nil {
		panic(err)
	}
	fmt.Printf("  LogP binomial tree (fine-grained):%10d cycles\n\n", lm.Now())

	fmt.Println("the emulation tracks the native library (the bridging result);")
	fmt.Println("the fine-grained tree wins on one-word payloads (Section 2.1's trade-off).")
}
