// Quickstart: a QSM program in ~30 lines on the native goroutine runtime.
//
// Every processor owns a block of a shared array, computes a local partial
// sum, broadcasts it (one Put per peer), and after one Sync computes its
// global prefix offset. The same function runs unchanged on the simulated
// machine — see the sorting example.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/par"
)

func main() {
	const p = 8
	m := par.NewMachine(p, par.Options{Seed: 42})

	err := m.Run(func(ctx core.Ctx) {
		id := ctx.ID()
		// A shared p-word array; word i is owned by processor i.
		sums := ctx.Register("sums", p)
		ctx.Sync()

		// Each processor "computes" a local value and publishes it.
		local := int64((id + 1) * 100)
		ctx.Put(sums, id, []int64{local})
		ctx.Sync()

		// Read everyone's value; it became visible at the Sync.
		all := make([]int64, p)
		ctx.Get(sums, 0, all)
		ctx.Sync()

		var offset int64
		for i := 0; i < id; i++ {
			offset += all[i]
		}
		fmt.Printf("processor %d: local=%d, prefix offset=%d\n", id, local, offset)
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("final sums array:", m.Array("sums"))
}
