#!/usr/bin/env python3
"""Gate events/sec against the committed BENCH_<id>.json baselines.

Usage:
    perfcheck.py --baseline bench --fresh /tmp/bench [--tolerance 0.25] id...

For each experiment id, loads bench/BENCH_<id>.json (the committed baseline)
and /tmp/bench/BENCH_<id>.json (just produced by `qsmbench -json`) and fails
if the fresh events_per_sec falls more than --tolerance below the baseline.
The sim_events counts must match exactly: a drifting event count means the
simulation changed, which is a correctness problem the perf gate must not
paper over.

The tolerance is generous (default 25%) because the baseline is refreshed on
a developer machine while the gate runs on CI hardware; regenerate the
baselines (see EXPERIMENTS.md) whenever an intentional engine change moves
throughput.

Records may carry an "extra" map of named values. Keys starting with
"model_" are machine-independent (deterministic schedule-model outputs of
the runner driver) and are gated exactly: a fresh value must match the
baseline to 6 significant digits, and every key starting "model_speedup"
must also clear --min-speedup (default 1.3) — the committed proof that the
work-stealing scheduler beats the fixed pool on skewed shapes. Keys
starting "measured_" are wall-clock observations and are reported but
never gated.
"""

import argparse
import json
import pathlib
import sys


def load(path):
    with open(path) as f:
        rec = json.load(f)
    # A combined `-json file.json` array also works; take the first record.
    return rec[0] if isinstance(rec, list) else rec


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--baseline", required=True, help="directory of committed BENCH_<id>.json files")
    ap.add_argument("--fresh", required=True, help="directory of freshly produced BENCH_<id>.json files")
    ap.add_argument("--tolerance", type=float, default=0.25, help="allowed fractional slowdown vs baseline")
    ap.add_argument("--min-speedup", type=float, default=1.3,
                    help="floor for extra keys starting 'model_speedup'")
    ap.add_argument("ids", nargs="+")
    args = ap.parse_args()

    failed = False
    for eid in args.ids:
        base = load(pathlib.Path(args.baseline) / f"BENCH_{eid}.json")
        fresh = load(pathlib.Path(args.fresh) / f"BENCH_{eid}.json")
        b, f = base["events_per_sec"], fresh["events_per_sec"]
        floor = b * (1.0 - args.tolerance)
        ratio = f / b if b else float("inf")
        line = f"{eid}: baseline {b:,.0f} ev/s, fresh {f:,.0f} ev/s ({ratio:.2f}x, floor {floor:,.0f})"
        if base["sim_events"] != fresh["sim_events"]:
            print(f"FAIL {line} — sim_events {base['sim_events']} -> {fresh['sim_events']}: "
                  "the simulation itself changed; fix determinism before regenerating baselines")
            failed = True
        elif f < floor:
            print(f"FAIL {line}")
            failed = True
        else:
            print(f"ok   {line}")
        failed |= check_extra(eid, base.get("extra") or {}, fresh.get("extra") or {},
                              args.min_speedup)
    return 1 if failed else 0


def check_extra(eid, base, fresh, min_speedup):
    """Gate the model_* extra values; report the measured_* ones."""
    failed = False
    for key in sorted(set(base) | set(fresh)):
        bv, fv = base.get(key), fresh.get(key)
        if key.startswith("model_"):
            if bv is None or fv is None:
                print(f"FAIL {eid}.{key}: present only in "
                      f"{'fresh' if bv is None else 'baseline'} record")
                failed = True
                continue
            if f"{bv:.6g}" != f"{fv:.6g}":
                print(f"FAIL {eid}.{key}: baseline {bv:.6g} -> fresh {fv:.6g}: "
                      "deterministic model value drifted; fix or regenerate baselines")
                failed = True
            elif key.startswith("model_speedup") and fv < min_speedup:
                print(f"FAIL {eid}.{key}: {fv:.3f} below required speedup {min_speedup}")
                failed = True
            else:
                print(f"ok   {eid}.{key}: {fv:.4g}")
        elif key.startswith("measured_") and fv is not None:
            print(f"info {eid}.{key}: {fv:.4g} (not gated)")
    return failed


if __name__ == "__main__":
    sys.exit(main())
