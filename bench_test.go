// Package repro's top-level benchmarks regenerate every table and figure of
// the paper (one benchmark per artifact; each iteration reruns the
// experiment's sweep in quick mode with a single repetition), plus ablation
// benchmarks for the design choices called out in DESIGN.md: exchange
// schedule, barrier algorithm, data layout, and node-model fidelity.
//
// Run them all with:
//
//	go test -bench=. -benchmem
package repro_test

import (
	"fmt"
	"testing"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/qsmlib"
	"repro/internal/workload"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Run(id, experiments.Options{Seed: int64(i + 1), Runs: 1, Quick: true})
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Tables) == 0 {
			b.Fatal("no output")
		}
	}
}

// BenchmarkRunnerParallelism measures the experiment runner's fan-out on a
// representative sweep (fig2's sample-sort grid) at 1, 2, and 4 workers.
// On a multicore host the speedup approaches the worker count; output
// stays byte-identical (see experiments' TestParallelDeterminism).
func BenchmarkRunnerParallelism(b *testing.B) {
	for _, par := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers-%d", par), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := experiments.Run("fig2", experiments.Options{
					Seed: int64(i + 1), Runs: 2, Quick: true, Parallelism: par,
				})
				if err != nil {
					b.Fatal(err)
				}
				if len(r.Tables) == 0 {
					b.Fatal("no output")
				}
			}
		})
	}
}

// One benchmark per paper artifact.

func BenchmarkTable2NodeModel(b *testing.B)       { benchExperiment(b, "table2") }
func BenchmarkTable3ObservedNetwork(b *testing.B) { benchExperiment(b, "table3") }
func BenchmarkFig1Prefix(b *testing.B)            { benchExperiment(b, "fig1") }
func BenchmarkFig2SampleSort(b *testing.B)        { benchExperiment(b, "fig2") }
func BenchmarkFig3ListRank(b *testing.B)          { benchExperiment(b, "fig3") }
func BenchmarkFig4LatencySweep(b *testing.B)      { benchExperiment(b, "fig4") }
func BenchmarkFig5LatencyCrossover(b *testing.B)  { benchExperiment(b, "fig5") }
func BenchmarkFig6OverheadCrossover(b *testing.B) { benchExperiment(b, "fig6") }
func BenchmarkTable4Extrapolation(b *testing.B)   { benchExperiment(b, "table4") }
func BenchmarkFig7MemoryBanks(b *testing.B)       { benchExperiment(b, "fig7") }
func BenchmarkExt1EmulationOverhead(b *testing.B) { benchExperiment(b, "ext1") }
func BenchmarkExt2LogPvsQSM(b *testing.B)         { benchExperiment(b, "ext2") }
func BenchmarkExt3PRAMvsQSM(b *testing.B)         { benchExperiment(b, "ext3") }
func BenchmarkExt4KappaContention(b *testing.B)   { benchExperiment(b, "ext4") }

// Ablations.

func sortOnce(b *testing.B, opts qsmlib.Options, n, p int) {
	b.Helper()
	in := workload.UniformInts(n, 0, opts.Seed)
	alg := algorithms.SampleSort{N: n, Input: func(id, pp int) []int64 {
		lo, hi := workload.Partition(n, pp, id)
		return in[lo:hi]
	}}
	m := qsmlib.New(p, opts)
	if err := m.Run(alg.Program()); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(m.RunStats().TotalCycles), "simcycles/op")
}

// BenchmarkAblationExchangeSchedule compares the staggered exchange (node i
// sends to (i+r) mod p in round r) against a naive fixed order that
// concentrates early traffic on low-numbered receive NICs.
func BenchmarkAblationExchangeSchedule(b *testing.B) {
	const n, p = 131072, 16
	b.Run("staggered", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sortOnce(b, qsmlib.Options{Seed: int64(i + 1)}, n, p)
		}
	})
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sortOnce(b, qsmlib.Options{Seed: int64(i + 1), NaiveExchange: true}, n, p)
		}
	})
}

// BenchmarkAblationBarrier compares the central barrier against the
// dissemination (tree) barrier underneath every Sync.
func BenchmarkAblationBarrier(b *testing.B) {
	const n, p = 65536, 16
	b.Run("central", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sortOnce(b, qsmlib.Options{Seed: int64(i + 1)}, n, p)
		}
	})
	b.Run("tree", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sortOnce(b, qsmlib.Options{Seed: int64(i + 1), TreeBarrier: true}, n, p)
		}
	})
}

// BenchmarkAblationLayout demonstrates why the QSM implementation contract
// randomizes data layout: every node gathers scattered words from one hot
// range of a shared array. Blocked layout funnels all of that traffic to a
// single owner; the hashed layout spreads it across the machine.
func BenchmarkAblationLayout(b *testing.B) {
	const n, p, perNode = 1 << 16, 16, 2000
	hotGather := func(kind core.LayoutKind, seed int64) float64 {
		m := qsmlib.New(p, qsmlib.Options{Seed: seed})
		err := m.Run(func(ctx core.Ctx) {
			h := ctx.RegisterSpec("hot", n, core.LayoutSpec{Kind: kind})
			ctx.Sync()
			rng := ctx.Rand()
			seen := make(map[int]bool, perNode)
			idx := make([]int, 0, perNode)
			for len(idx) < perNode {
				ix := int(rng.Int31n(n / p)) // the hot range: the first 1/p of the array
				if !seen[ix] {
					seen[ix] = true
					idx = append(idx, ix)
				}
			}
			ctx.GetIndexed(h, idx, make([]int64, len(idx)))
			ctx.Sync()
		})
		if err != nil {
			b.Fatal(err)
		}
		return float64(m.RunStats().TotalCycles)
	}
	for _, tc := range []struct {
		name string
		kind core.LayoutKind
	}{
		{"blocked-hotspot", core.LayoutBlocked},
		{"cyclic", core.LayoutCyclic},
		{"hashed", core.LayoutHashed},
	} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.ReportMetric(hotGather(tc.kind, int64(i+1)), "simcycles/op")
			}
		})
	}
}

// BenchmarkEndToEndAlgorithms times one simulated run of each workload at a
// representative size, reporting simulated cycles alongside wall time.
func BenchmarkEndToEndAlgorithms(b *testing.B) {
	const p = 16
	b.Run("prefix-256k", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			n := 262144
			in := workload.UniformInts(n, 1000, int64(i))
			alg := algorithms.PrefixSums{N: n, Input: func(id, pp int) []int64 {
				lo, hi := workload.Partition(n, pp, id)
				return in[lo:hi]
			}}
			m := qsmlib.New(p, qsmlib.Options{Seed: int64(i)})
			if err := m.Run(alg.Program()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sort-256k", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sortOnce(b, qsmlib.Options{Seed: int64(i + 1)}, 262144, p)
		}
	})
	b.Run("listrank-128k", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			l := workload.RandomList(131072, int64(i))
			alg := algorithms.ListRank{List: l}
			m := qsmlib.New(p, qsmlib.Options{Seed: int64(i)})
			if err := m.Run(alg.Program()); err != nil {
				b.Fatal(err)
			}
		}
	})
}
