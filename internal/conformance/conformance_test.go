// Package conformance runs randomly generated QSM programs on both backends
// — the simulated machine (qsmlib) and the native goroutine runtime (par) —
// and checks every read and the final shared state against an executable
// reference semantics. This is the differential test that pins down the
// memory model: reads see pre-phase state; writes commit at Sync, applied in
// source order; concurrent writes to one word resolve to the highest source.
package conformance

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/par"
	"repro/internal/qsmlib"
	"repro/internal/stats"
)

// plan is a deterministic, pre-generated program: ops[phase][proc].
type plan struct {
	arrays []arraySpec
	phases [][][]op // phase -> proc -> ops
}

type arraySpec struct {
	name string
	n    int
	kind core.LayoutKind
}

type op struct {
	write bool
	arr   int
	idx   []int
	vals  []int64 // writes only
}

// writableWord partitions each array's words per phase so that no word is
// both read and written in the same phase, globally.
func writableWord(phase, arr, word int) bool {
	return stats.Mix64(uint64(phase)*31+uint64(arr), uint64(word))&1 == 1
}

// genPlan builds a random program for p processors.
func genPlan(seed int64, p, phases int) *plan {
	pl := &plan{
		arrays: []arraySpec{
			{"a", 64, core.LayoutBlocked},
			{"b", 100, core.LayoutCyclic},
			{"c", 257, core.LayoutHashed},
		},
	}
	for ph := 0; ph < phases; ph++ {
		perProc := make([][]op, p)
		for proc := 0; proc < p; proc++ {
			rng := stats.NewRand(seed, int64(ph*1000+proc))
			nops := rng.Intn(4)
			for k := 0; k < nops; k++ {
				arr := rng.Intn(len(pl.arrays))
				write := rng.Intn(2) == 0
				count := 1 + rng.Intn(8)
				seen := map[int]bool{}
				var idx []int
				var vals []int64
				for len(idx) < count {
					w := rng.Intn(pl.arrays[arr].n)
					if seen[w] || writableWord(ph, arr, w) != write {
						if len(seen) > pl.arrays[arr].n {
							break
						}
						seen[w] = true
						continue
					}
					seen[w] = true
					idx = append(idx, w)
					if write {
						vals = append(vals, rng.Int63n(1000000))
					}
				}
				if len(idx) == 0 {
					continue
				}
				perProc[proc] = append(perProc[proc], op{write: write, arr: arr, idx: idx, vals: vals})
			}
		}
		pl.phases = append(pl.phases, perProc)
	}
	return pl
}

// reference executes the plan against flat arrays and returns, per phase and
// proc and op, the values every read observed, plus the final arrays.
func reference(pl *plan, p int) (reads [][][][]int64, final [][]int64) {
	state := make([][]int64, len(pl.arrays))
	for i, a := range pl.arrays {
		state[i] = make([]int64, a.n)
	}
	for _, phase := range pl.phases {
		phaseReads := make([][][]int64, p)
		// Reads first: pre-phase state.
		for proc := 0; proc < p; proc++ {
			for _, o := range phase[proc] {
				if o.write {
					phaseReads[proc] = append(phaseReads[proc], nil)
					continue
				}
				got := make([]int64, len(o.idx))
				for k, ix := range o.idx {
					got[k] = state[o.arr][ix]
				}
				phaseReads[proc] = append(phaseReads[proc], got)
			}
		}
		// Writes in source order.
		for proc := 0; proc < p; proc++ {
			for _, o := range phase[proc] {
				if !o.write {
					continue
				}
				for k, ix := range o.idx {
					state[o.arr][ix] = o.vals[k]
				}
			}
		}
		reads = append(reads, phaseReads)
	}
	return reads, state
}

// program turns the plan into a core.Program that verifies its reads in the
// phase after they complete.
func program(pl *plan, wantReads [][][][]int64) core.Program {
	return func(ctx core.Ctx) {
		id := ctx.ID()
		hs := make([]core.Handle, len(pl.arrays))
		for i, a := range pl.arrays {
			hs[i] = ctx.RegisterSpec(a.name, a.n, core.LayoutSpec{Kind: a.kind})
		}
		ctx.Sync()
		for ph, phase := range pl.phases {
			type pending struct {
				dst  []int64
				want []int64
				o    op
			}
			var checks []pending
			for oi, o := range phase[id] {
				if o.write {
					ctx.PutIndexed(hs[o.arr], o.idx, o.vals)
					continue
				}
				dst := make([]int64, len(o.idx))
				ctx.GetIndexed(hs[o.arr], o.idx, dst)
				checks = append(checks, pending{dst: dst, want: wantReads[ph][id][oi], o: o})
			}
			ctx.Sync()
			for _, c := range checks {
				for k := range c.want {
					if c.dst[k] != c.want[k] {
						panic(fmt.Sprintf("phase %d proc %d: read arr %d word %d = %d, want %d",
							ph, id, c.o.arr, c.o.idx[k], c.dst[k], c.want[k]))
					}
				}
			}
		}
	}
}

func checkFinal(t *testing.T, backend string, got func(string) []int64, pl *plan, final [][]int64) {
	t.Helper()
	for i, a := range pl.arrays {
		data := got(a.name)
		for w := range final[i] {
			if data[w] != final[i][w] {
				t.Fatalf("%s: final %s[%d] = %d, want %d", backend, a.name, w, data[w], final[i][w])
			}
		}
	}
}

func TestRandomProgramsBothBackends(t *testing.T) {
	// The corpus spans processor counts from trivial to oversubscribed and
	// phase counts from single-step to long programs; every combination runs
	// on both backends against the reference semantics.
	type combo struct {
		seed      int64
		p, phases int
	}
	var corpus []combo
	for seed := int64(1); seed <= 12; seed++ {
		corpus = append(corpus, combo{seed, 5, 8})
	}
	corpus = append(corpus,
		combo{13, 1, 8},  // degenerate: no concurrency
		combo{14, 2, 1},  // single phase
		combo{15, 2, 12}, // long two-proc program
		combo{16, 3, 7},
		combo{17, 7, 5},
		combo{18, 8, 3}, // more procs than a typical host's spare cores
		combo{19, 6, 10},
		combo{20, 4, 9},
	)
	for _, c := range corpus {
		c := c
		t.Run(fmt.Sprintf("seed%d-p%d-ph%d", c.seed, c.p, c.phases), func(t *testing.T) {
			seed, p := c.seed, c.p
			pl := genPlan(seed, p, c.phases)
			wantReads, final := reference(pl, p)
			prog := program(pl, wantReads)

			sm := qsmlib.New(p, qsmlib.Options{Seed: seed})
			if err := sm.Run(prog); err != nil {
				t.Fatalf("sim backend: %v", err)
			}
			checkFinal(t, "sim", sm.Array, pl, final)

			nm := par.NewMachine(p, par.Options{Seed: seed})
			if err := nm.Run(prog); err != nil {
				t.Fatalf("native backend: %v", err)
			}
			checkFinal(t, "native", nm.Array, pl, final)
		})
	}
}

// TestRandomProgramsObeyRules replays a generated plan under the rule
// checker: the generator's read/write word partition must guarantee no
// violation is reported.
func TestRandomProgramsObeyRules(t *testing.T) {
	const p, phases = 4, 6
	pl := genPlan(99, p, phases)
	wantReads, _ := reference(pl, p)
	sm := qsmlib.New(p, qsmlib.Options{Seed: 99})
	if _, err := sm.RunProfiled(program(pl, wantReads), core.Flags{CheckRules: true, TrackKappa: true}); err != nil {
		t.Fatalf("rule checker flagged a compliant program: %v", err)
	}
}

// TestBackendsAgreeOnContention writes the same word from every processor
// in one phase on both backends and confirms both resolve identically.
func TestBackendsAgreeOnContention(t *testing.T) {
	const p = 6
	prog := func(ctx core.Ctx) {
		h := ctx.Register("w", 4)
		ctx.Sync()
		vals := []int64{int64(ctx.ID()*10 + 1), int64(ctx.ID()*10 + 2)}
		ctx.PutIndexed(h, []int{1, 3}, vals)
		ctx.Sync()
	}
	sm := qsmlib.New(p, qsmlib.Options{Seed: 5})
	if err := sm.Run(prog); err != nil {
		t.Fatal(err)
	}
	nm := par.NewMachine(p, par.Options{Seed: 5})
	if err := nm.Run(prog); err != nil {
		t.Fatal(err)
	}
	s, n := sm.Array("w"), nm.Array("w")
	for i := range s {
		if s[i] != n[i] {
			t.Fatalf("backends disagree at word %d: sim=%d native=%d", i, s[i], n[i])
		}
	}
	if s[1] != 51 || s[3] != 52 {
		t.Errorf("contention resolution wrong: %v (want highest source, proc 5)", s)
	}
}
