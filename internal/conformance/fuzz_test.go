package conformance

import (
	"testing"

	"repro/internal/core"
	"repro/internal/par"
	"repro/internal/qsmlib"
)

// byteReader is a cursor over the fuzz input; once exhausted it yields
// zeros, so every input decodes to some finite program.
type byteReader struct {
	data []byte
	i    int
}

func (r *byteReader) next() byte {
	if r.i >= len(r.data) {
		return 0
	}
	b := r.data[r.i]
	r.i++
	return b
}

func (r *byteReader) next16() int {
	return int(r.next())<<8 | int(r.next())
}

// decodePlan turns raw fuzz bytes into a rule-respecting program: the
// decoder, not the fuzzer, enforces the QSM read/write word partition, so
// every input exercises the backends rather than the rule checker. Word
// choices scan forward from the decoded candidate until the partition
// admits them, which keeps every byte meaningful instead of discarded.
func decodePlan(data []byte) (*plan, int) {
	r := &byteReader{data: data}
	p := 2 + int(r.next())%4      // 2..5 processors
	phases := 1 + int(r.next())%4 // 1..4 phases
	pl := &plan{
		arrays: []arraySpec{
			{"a", 64, core.LayoutBlocked},
			{"b", 100, core.LayoutCyclic},
			{"c", 257, core.LayoutHashed},
		},
	}
	for ph := 0; ph < phases; ph++ {
		perProc := make([][]op, p)
		for proc := 0; proc < p; proc++ {
			nops := int(r.next()) % 3
			for k := 0; k < nops; k++ {
				arr := int(r.next()) % len(pl.arrays)
				write := r.next()&1 == 1
				count := 1 + int(r.next())%4
				n := pl.arrays[arr].n
				seen := map[int]bool{}
				var idx []int
				var vals []int64
				for len(idx) < count {
					w, ok := admitWord(ph, arr, r.next16()%n, n, write, seen)
					if !ok {
						break
					}
					seen[w] = true
					idx = append(idx, w)
					if write {
						vals = append(vals, int64(r.next16()))
					}
				}
				if len(idx) == 0 {
					continue
				}
				perProc[proc] = append(perProc[proc], op{write: write, arr: arr, idx: idx, vals: vals})
			}
		}
		pl.phases = append(pl.phases, perProc)
	}
	return pl, p
}

// admitWord scans forward (wrapping) from the candidate until it finds an
// unused word on the right side of the phase's read/write partition.
func admitWord(ph, arr, candidate, n int, write bool, seen map[int]bool) (int, bool) {
	for step := 0; step < n; step++ {
		w := (candidate + step) % n
		if !seen[w] && writableWord(ph, arr, w) == write {
			return w, true
		}
	}
	return 0, false
}

// FuzzConformance feeds fuzzer-shaped programs through the same
// differential harness as the seeded corpus: reference semantics vs the
// simulated machine vs the native goroutine runtime. Any divergence — a
// read seeing the wrong snapshot, a write resolving differently, a final
// array mismatch — fails the input.
func FuzzConformance(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 1, 0, 1, 2, 0, 10, 0, 99})
	f.Add([]byte{3, 3, 2, 1, 0, 3, 1, 200, 0, 7, 2, 1, 1, 1, 0, 50})
	f.Add([]byte{255, 255, 255, 255, 255, 255, 255, 255})
	f.Add([]byte{1, 2, 2, 2, 1, 2, 0, 30, 0, 5, 0, 60, 0, 6})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 512 {
			t.Skip("longer inputs only repeat the same op shapes")
		}
		pl, p := decodePlan(data)
		wantReads, final := reference(pl, p)
		prog := program(pl, wantReads)

		sm := qsmlib.New(p, qsmlib.Options{Seed: 1})
		if err := sm.Run(prog); err != nil {
			t.Fatalf("sim backend: %v", err)
		}
		checkFinal(t, "sim", sm.Array, pl, final)

		nm := par.NewMachine(p, par.Options{Seed: 1})
		if err := nm.Run(prog); err != nil {
			t.Fatalf("native backend: %v", err)
		}
		checkFinal(t, "native", nm.Array, pl, final)
	})
}
