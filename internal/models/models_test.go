package models

import (
	"math"
	"testing"
)

func calib() Calib {
	return Calib{P: 16, GWord: 280, L: 60000, Lat: 1600, O: 400}
}

func TestPrefixOrdering(t *testing.T) {
	c := calib()
	qsm := c.PrefixQSMComm()
	bsp := c.PrefixBSPComm()
	logp := c.PrefixLogPComm()
	if !(qsm < bsp && bsp < logp) {
		t.Errorf("want QSM (%.0f) < BSP (%.0f) < LogP (%.0f)", qsm, bsp, logp)
	}
	if qsm != 280*15 {
		t.Errorf("PrefixQSMComm = %.0f, want %d", qsm, 280*15)
	}
}

func TestPrefixConstantInN(t *testing.T) {
	// The prefix prediction has no n term at all — the paper's point that
	// the models predict flat communication for prefix sums.
	c := calib()
	if c.PrefixQSMComm() != c.PrefixQSMComm() {
		t.Fatal("unstable")
	}
}

func TestSortBestCase(t *testing.T) {
	sk := SortBestCase(16000, 16)
	if sk.B != 1000 {
		t.Errorf("B = %g, want 1000", sk.B)
	}
	if math.Abs(sk.R-15.0/16) > 1e-12 {
		t.Errorf("R = %g, want 15/16", sk.R)
	}
}

func TestSortWHPBoundsAboveBest(t *testing.T) {
	for _, n := range []int{10000, 100000, 1000000} {
		best := SortBestCase(n, 16)
		whp := SortWHP(n, 16, 2, 0.1)
		if whp.B <= best.B {
			t.Errorf("n=%d: WHP B %g not above best %g", n, whp.B, best.B)
		}
		if whp.R < best.R && whp.R != 1 {
			t.Errorf("n=%d: WHP R %g below best %g", n, whp.R, best.R)
		}
		if whp.R > 1 {
			t.Errorf("R = %g > 1", whp.R)
		}
	}
}

func TestSortWHPTightensWithN(t *testing.T) {
	// Relative slack (B_whp / B_best) must shrink as n grows.
	small := SortWHP(10000, 16, 2, 0.1).B / SortBestCase(10000, 16).B
	large := SortWHP(1000000, 16, 2, 0.1).B / SortBestCase(1000000, 16).B
	if large >= small {
		t.Errorf("WHP slack did not shrink: %g -> %g", small, large)
	}
}

func TestSortCommGrowsLinearly(t *testing.T) {
	c := calib()
	s1 := c.SortQSMComm(100000, 2, SortBestCase(100000, 16))
	s2 := c.SortQSMComm(1000000, 2, SortBestCase(1000000, 16))
	ratio := s2 / s1
	if ratio < 8 || ratio > 11 {
		t.Errorf("10x n gave %.1fx comm, want ~10x (B dominates)", ratio)
	}
}

func TestSortBSPAddsPhases(t *testing.T) {
	c := calib()
	sk := SortBestCase(50000, 16)
	if got := c.SortBSPComm(50000, 2, sk) - c.SortQSMComm(50000, 2, sk); math.Abs(got-5*c.L) > 1e-6*c.L {
		t.Errorf("BSP-QSM = %g, want 5L = %g", got, 5*c.L)
	}
}

func TestRankBestCaseDecays(t *testing.T) {
	sk := RankBestCase(160000, 16, 16)
	if sk.X[0] != 10000 {
		t.Errorf("x_1 = %g, want 10000", sk.X[0])
	}
	for i := 1; i < len(sk.X); i++ {
		if sk.X[i] >= sk.X[i-1] {
			t.Fatal("x_i not decreasing")
		}
	}
	want := 160000 * math.Pow(0.75, 16)
	if math.Abs(sk.Z-want) > 1e-6*want {
		t.Errorf("Z = %g, want %g", sk.Z, want)
	}
}

func TestRankWHPAboveBest(t *testing.T) {
	best := RankBestCase(160000, 16, 16)
	whp := RankWHP(160000, 16, 16, 0.1)
	c := calib()
	if c.RankQSMComm(whp) <= c.RankQSMComm(best) {
		t.Errorf("WHP comm %.0f not above best %.0f",
			c.RankQSMComm(whp), c.RankQSMComm(best))
	}
	if whp.C1 < 1 || whp.C2 < 1 {
		t.Error("correction factors below 1")
	}
	for i := range whp.X {
		if whp.X[i] < best.X[i] {
			t.Errorf("WHP x_%d = %g below best %g", i, whp.X[i], best.X[i])
		}
	}
}

func TestRankZeroIters(t *testing.T) {
	sk := RankWHP(1000, 1, 0, 0.1)
	if len(sk.X) != 0 {
		t.Error("p=1 should have no elimination iterations")
	}
	c := calib()
	c.P = 1
	if got := c.RankQSMComm(sk); got != 0 {
		t.Errorf("single-proc comm = %g, want 0", got)
	}
}

func TestRankPhases(t *testing.T) {
	if RankPhases(16) != 69 {
		t.Errorf("RankPhases(16) = %d, want 69", RankPhases(16))
	}
}

func TestRankMeasured(t *testing.T) {
	sk := RankMeasured([]float64{100, 75, 50}, 40)
	if sk.C1 != 1 || sk.C2 != 1 || sk.Z != 40 {
		t.Error("measured skews should carry unit corrections")
	}
	c := calib()
	pi := 15.0 / 16
	want := pi*280*(0.5+1.75)*225 + 4*pi*280*40
	if got := c.RankQSMComm(sk); math.Abs(got-want) > 1e-6 {
		t.Errorf("RankQSMComm = %g, want %g", got, want)
	}
}
