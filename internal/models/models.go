// Package models implements the analytical communication-time predictors
// the paper charts against measurements: QSM (no latency, no per-message
// overhead, no barrier cost), BSP (adds a per-phase synchronization term L),
// and LogP-style charges, specialised to the three algorithms.
//
// All predictions are in cycles. The effective gap GWord (cycles per remote
// word moved in bulk) and the per-phase fixed cost L are calibration
// constants measured through the library (Table 3), because "calculating
// appropriate constants for an algorithm on a particular architecture is
// nontrivial" — the paper does the same.
package models

import (
	"math"

	"repro/internal/stats"
)

// Calib holds the machine constants predictions are evaluated with.
type Calib struct {
	P     int
	GWord float64 // observed cycles per remote word (bulk transfer)
	L     float64 // per-phase fixed cost: plan exchange + barrier, cycles
	Lat   float64 // hardware latency l, cycles (LogP-style charges)
	O     float64 // per-message overhead o, cycles (LogP-style charges)
}

// ---- Prefix sums (Figure 1) ----
// The algorithm's only communication is each processor's (p-1)-word
// broadcast, in one phase.

// PrefixQSMComm is the QSM communication prediction g(p-1).
func (c Calib) PrefixQSMComm() float64 { return c.GWord * float64(c.P-1) }

// PrefixBSPComm adds the single phase's synchronization cost.
func (c Calib) PrefixBSPComm() float64 { return c.PrefixQSMComm() + c.L }

// PrefixLogPComm additionally charges per-message overhead for the p-1
// single-word messages and one pipelined latency.
func (c Calib) PrefixLogPComm() float64 {
	return c.PrefixQSMComm() + 2*c.O*float64(c.P-1) + c.Lat + c.L
}

// ---- Sample sort (Figures 2, 4, 5, 6) ----

// SortPhases is the paper's phase count for sample sort.
const SortPhases = 5

// SortSkews are the load-balance inputs to the sample-sort predictions.
type SortSkews struct {
	B float64 // largest bucket size
	R float64 // largest fraction of a bucket arriving from remote processors
	// OutW is the number of remote words written during the final output
	// redistribution. With a blocked output a perfectly balanced run writes
	// its bucket into its own partition, so OutW captures the placement
	// drift that bucket skew causes (the paper's gB term, specialised to
	// our implementation's layout).
	OutW float64
}

// SortBestCase returns the unreasonably optimistic skews: perfectly equal
// buckets (which also align the output exactly with the blocked partitions,
// so no output word is remote), remote fraction (p-1)/p.
func SortBestCase(n, p int) SortSkews {
	return SortSkews{B: float64(n) / float64(p), R: float64(p-1) / float64(p), OutW: 0}
}

// SortWHP returns bounded skews that hold with probability at least 1-eps.
// Bucket sizes are governed by pivot placement: a bucket exceeds
// (1+d)(n/p) only if fewer than s = oversample*log2(n) of the sorted
// samples fall in a span of (1+d)(n/p) elements, a Chernoff event with
// d ~ sqrt(2 ln(2p/eps) / s). R bounds the remote portion of such a bucket;
// OutW bounds the output drift by p*(B - n/p).
func SortWHP(n, p, oversample int, eps float64) SortSkews {
	s := float64(oversample) * math.Log2(float64(n))
	if s < 1 {
		s = 1
	}
	d := math.Sqrt(2 * math.Log(2*float64(p)/eps) / s)
	b := (1 + d) * float64(n) / float64(p)
	mu := b * float64(p-1) / float64(p)
	r := stats.MaxOfBound(mu, eps/2, p) / b
	if r > 1 {
		r = 1
	}
	outW := float64(p) * (b - float64(n)/float64(p))
	if outW > b {
		outW = b
	}
	return SortSkews{B: b, R: r, OutW: outW}
}

// SortQSMComm is the QSM communication prediction
// c(p-1)g log n + 3(p-1)g + gBr + g*OutW, where oversample is the
// algorithm's per-processor sample multiplier c (the paper's form, with its
// gB output term specialised to the measured/bounded remote output volume).
func (c Calib) SortQSMComm(n, oversample int, sk SortSkews) float64 {
	p1 := float64(c.P - 1)
	logn := math.Log2(float64(n))
	return c.GWord * (float64(oversample)*p1*logn + 3*p1 + sk.B*sk.R + sk.OutW)
}

// SortBSPComm adds the 5-phase synchronization cost.
func (c Calib) SortBSPComm(n, oversample int, sk SortSkews) float64 {
	return c.SortQSMComm(n, oversample, sk) + SortPhases*c.L
}

// ---- List ranking (Figure 3) ----

// RankSkews are the load-balance inputs to the list-ranking predictions.
type RankSkews struct {
	X      []float64 // x_i: maximum active elements at any processor, per iteration
	Z      float64   // elements gathered on processor 0
	C1, C2 float64   // correction factors on candidate and removal counts
}

// RankBestCase returns the idealised no-skew inputs: x_i = (n/p)(3/4)^(i-1),
// z = n(3/4)^iters, c1 = c2 = 1.
func RankBestCase(n, p, iters int) RankSkews {
	xs := make([]float64, iters)
	for i := range xs {
		xs[i] = stats.GeometricDecay(float64(n)/float64(p), 0.75, i)
	}
	return RankSkews{X: xs, Z: stats.GeometricDecay(float64(n), 0.75, iters), C1: 1, C2: 1}
}

// RankWHP returns Chernoff-bounded inputs holding with probability >= 1-eps:
// the per-iteration survivor counts shrink by at least the lower-tail bound
// on removals, and the candidate/removal correction factors c1, c2 absorb
// the upper-tail fluctuation.
func RankWHP(n, p, iters int, eps float64) RankSkews {
	if iters == 0 {
		return RankBestCase(n, p, iters)
	}
	// Union budget over iterations and processors.
	per := eps / float64(3*iters*p)
	xs := make([]float64, iters)
	x := float64(n) / float64(p)
	c1, c2 := 1.0, 1.0
	for i := 0; i < iters; i++ {
		xs[i] = x
		// Removals have mean x/4; whp at least (1-d) of that.
		mu := x / 4
		d := math.Sqrt(2 * math.Log(1/per) / math.Max(mu, 1))
		if d > 1 {
			d = 1
		}
		x -= mu * (1 - d)
		if x < 1 {
			x = 1
		}
		// Candidates have mean x/2; the c1 factor bounds the excess.
		if f := 1 + stats.ChernoffDelta(math.Max(xs[i]/2, 1), per); f > c1 {
			c1 = f
		}
		if f := 1 + stats.ChernoffDelta(math.Max(xs[i]/4, 1), per); f > c2 {
			c2 = f
		}
	}
	z := x * float64(p)
	return RankSkews{X: xs, Z: z, C1: c1, C2: c2}
}

// RankMeasured wraps measured compression into prediction inputs.
func RankMeasured(xs []float64, z float64) RankSkews {
	return RankSkews{X: xs, Z: z, C1: 1, C2: 1}
}

// RankQSMComm is the QSM communication prediction
// pi*g*(c1/2 + 7c2/4)*sum(x_i) + 4*pi'*g*z with pi = pi' = (p-1)/p.
func (c Calib) RankQSMComm(sk RankSkews) float64 {
	pi := float64(c.P-1) / float64(c.P)
	var sum float64
	for _, x := range sk.X {
		sum += x
	}
	return pi*c.GWord*(sk.C1/2+7*sk.C2/4)*sum + 4*pi*c.GWord*sk.Z
}

// RankPhases is the bulk-synchronous phase count of our implementation:
// 2 setup + 2 per elimination iteration + 3 around the sequential stage +
// 2 per expansion iteration.
func RankPhases(iters int) int { return 5 + 4*iters }

// RankBSPComm adds the per-phase synchronization cost.
func (c Calib) RankBSPComm(sk RankSkews, iters int) float64 {
	return c.RankQSMComm(sk) + float64(RankPhases(iters))*c.L
}
