// Package membank reproduces Section 4's memory system microbenchmark: p
// processors hammer remote memory banks as fast as they can under three
// access patterns, and the average access time under overload is measured.
//
//   - Random: every access goes to a random word of a random remote bank —
//     the layout a QSM runtime achieves by hashing addresses.
//   - Conflict: every access goes to bank 0 — an unmitigated hot spot.
//   - NoConflict: processor i uses bank (i+1) mod B exclusively — the ideal
//     hand-placed layout available only under a more detailed model.
//
// The four machine configurations stand in for the paper's testbeds (Sun
// E5000 SMP natively and under BSPlib, a 10 Mbit Ethernet NOW under BSPlib,
// and a Cray T3E using shmem). Absolute parameters are plausible-magnitude
// stand-ins for hardware we do not have; what the experiment checks is the
// queueing behaviour — Conflict is a factor of 2-4+ worse than NoConflict,
// Random lands within tens of percent of NoConflict.
package membank

import (
	"fmt"
	"math/rand"

	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Pattern selects the access pattern of the microbenchmark.
type Pattern int

// Patterns.
const (
	Random Pattern = iota
	Conflict
	NoConflict
)

func (p Pattern) String() string {
	switch p {
	case Random:
		return "Random"
	case Conflict:
		return "Conflict"
	case NoConflict:
		return "NoConflict"
	}
	return fmt.Sprintf("Pattern(%d)", int(p))
}

// Config describes one memory architecture.
type Config struct {
	Name  string
	Procs int
	Banks int

	// ReqOverhead is processor work to issue one access (library software,
	// TCP stack, ...), in cycles.
	ReqOverhead sim.Time
	// WireLatency is the one-way interconnect latency, in cycles.
	WireLatency sim.Time
	// BankTime is a bank's service time per access, in cycles.
	BankTime sim.Time
	// SharedMedium serialises every access on one shared channel (the NOW's
	// 10 Mbit Ethernet) for MediumTime cycles.
	SharedMedium bool
	MediumTime   sim.Time

	// ClockMHz converts cycles to microseconds in reports.
	ClockMHz float64
}

// SMPNative models the 8-processor Sun UltraEnterprise accessed through
// hardware cache-coherent shared memory (166 MHz processors, 8 banks,
// line-interleaved).
func SMPNative() Config {
	return Config{
		Name: "SMP-NATIVE", Procs: 8, Banks: 8,
		ReqOverhead: 6, WireLatency: 30, BankTime: 55,
		ClockMHz: 166,
	}
}

// SMPBSPlib2 models the same SMP through the optimised ("level-2") BSPlib
// shared-memory layer: the hardware path plus library software per access.
func SMPBSPlib2() Config {
	c := SMPNative()
	c.Name = "SMP-BSPlib-L2"
	c.ReqOverhead = 80
	return c
}

// SMPBSPlib1 is the unoptimised ("level-1") BSPlib build: more per-access
// software, and its extra buffering moves whole buffers per access, so each
// access occupies the memory bank longer.
func SMPBSPlib1() Config {
	c := SMPNative()
	c.Name = "SMP-BSPlib-L1"
	c.ReqOverhead = 240
	c.BankTime = 130
	return c
}

// NOWBSPlib models sixteen 166 MHz UltraSPARCs running BSPlib over TCP on
// shared 10 Mbit Ethernet: one bank per node, a huge per-access software
// cost, and a shared medium that serialises every frame (a 64-byte minimum
// frame at 10 Mbit/s is ~51 us of bus occupancy).
func NOWBSPlib() Config {
	return Config{
		Name: "NOW-BSPlib", Procs: 16, Banks: 16,
		ReqOverhead: 40000, WireLatency: 2000, BankTime: 12000,
		SharedMedium: true, MediumTime: 8500,
		ClockMHz: 166,
	}
}

// CrayT3E models 32 nodes of a T3E: EV5 processors on a low-latency 3-D
// torus using the shmem library.
func CrayT3E() Config {
	return Config{
		Name: "Cray-T3E", Procs: 32, Banks: 32,
		ReqOverhead: 60, WireLatency: 120, BankTime: 30,

		ClockMHz: 450,
	}
}

// AllConfigs returns the four Figure 7 architectures (with both BSPlib
// optimisation levels for the SMP, as the paper shows).
func AllConfigs() []Config {
	return []Config{SMPNative(), SMPBSPlib2(), SMPBSPlib1(), NOWBSPlib(), CrayT3E()}
}

// Result is the measured outcome of one run.
type Result struct {
	Config   Config
	Pattern  Pattern
	Accesses int
	// AvgCycles is the mean time per access observed by a processor.
	AvgCycles float64
	// MaxBankUtil is the busiest bank's utilisation in [0,1].
	MaxBankUtil float64
}

// AvgMicros converts the mean access time to microseconds.
func (r Result) AvgMicros() float64 {
	if r.Config.ClockMHz == 0 {
		return 0
	}
	return r.AvgCycles / r.Config.ClockMHz
}

// Run executes the microbenchmark: every processor performs accessesPerProc
// synchronous remote accesses under the pattern. Deterministic in seed.
func Run(cfg Config, pat Pattern, accessesPerProc int, seed int64) Result {
	return RunObserved(cfg, pat, accessesPerProc, seed, nil)
}

// bankObs holds the per-bank and per-pattern metric handles of one observed
// run. All handles are nil-safe, so a zero bankObs is a no-op.
type bankObs struct {
	rec       *obs.Recorder
	depth     []*obs.Histogram // queued accesses ahead, per bank
	contended []*obs.Counter   // accesses that found the bank busy, per bank
	accesses  []*obs.Counter   // total accesses, per bank
	cycles    *obs.Histogram   // end-to-end access time, per arch+pattern
	pid       int
}

func newBankObs(rec *obs.Recorder, cfg Config, pat Pattern) bankObs {
	bo := bankObs{
		rec:       rec,
		depth:     make([]*obs.Histogram, cfg.Banks),
		contended: make([]*obs.Counter, cfg.Banks),
		accesses:  make([]*obs.Counter, cfg.Banks),
		pid:       int(pat),
	}
	if rec == nil {
		return bo
	}
	depthBounds := obs.LinearBuckets(0, 1, 16)
	for b := 0; b < cfg.Banks; b++ {
		labels := fmt.Sprintf("arch=%s,pattern=%s,bank=%d", cfg.Name, pat, b)
		bo.depth[b] = rec.Histogram("membank", "queue_depth", labels, depthBounds)
		bo.contended[b] = rec.Counter("membank", "contended", labels)
		bo.accesses[b] = rec.Counter("membank", "accesses", labels)
	}
	bo.cycles = rec.Histogram("membank", "access_cycles",
		fmt.Sprintf("arch=%s,pattern=%s", cfg.Name, pat),
		obs.ExpBuckets(float64(cfg.BankTime), 2, 14))
	if rec.Tracing() {
		rec.NamePid(bo.pid, cfg.Name+" "+pat.String())
		for b := 0; b < cfg.Banks; b++ {
			rec.NameTid(bo.pid, b, fmt.Sprintf("bank%d", b))
		}
		if cfg.SharedMedium {
			rec.NameTid(bo.pid, cfg.Banks, "medium")
		}
	}
	return bo
}

// observe records one access: its queue depth on arrival at the bank
// (reservations ahead of it, in service-time units), whether it contended,
// and a bank-occupancy span for the trace.
func (bo bankObs) observe(cfg Config, bank int, arrive, bStart, bEnd sim.Time) {
	if bo.rec == nil {
		return
	}
	depth := int64(0)
	if bStart > arrive && cfg.BankTime > 0 {
		depth = int64((bStart - arrive + cfg.BankTime - 1) / cfg.BankTime)
	}
	bo.depth[bank].Observe(float64(depth))
	bo.accesses[bank].Inc()
	if depth > 0 {
		bo.contended[bank].Inc()
	}
	bo.rec.Span(bo.pid, bank, "bank", "access", uint64(bStart), uint64(bEnd),
		obs.Arg{Key: "depth", Val: depth})
}

// pickFn chooses the target bank for one access, drawing from the
// processor's rng as the pattern requires. Draw count per access must not
// depend on simulated time, so the stepped and goroutine accessors consume
// the rng identically.
type pickFn func(pid int, rng *rand.Rand) int

// patternPick returns the bank chooser for a stress pattern.
func patternPick(cfg Config, pat Pattern) pickFn {
	switch pat {
	case Conflict:
		return func(int, *rand.Rand) int { return 0 }
	case NoConflict:
		return func(pid int, _ *rand.Rand) int { return (pid + 1) % cfg.Banks }
	default:
		// A random word of a random remote bank.
		return func(_ int, rng *rand.Rand) int { return rng.Intn(cfg.Banks) }
	}
}

// oneAccess performs the non-blocking middle of an access — the shared
// medium (if any) and bank reservations plus their observations — at the
// instant the request issues (after ReqOverhead). It returns the time the
// reply reaches the processor. Both accessor forms call it between their two
// waits.
func oneAccess(now sim.Time, cfg Config, bank int, banks []*sim.Server, medium *sim.Server, bo bankObs) sim.Time {
	arrive := now + cfg.WireLatency
	if medium != nil {
		mStart, mEnd := medium.UseAt(now, cfg.MediumTime)
		arrive = mEnd + cfg.WireLatency
		if bo.rec != nil {
			bo.rec.Span(bo.pid, cfg.Banks, "medium", "frame", uint64(mStart), uint64(mEnd))
		}
	}
	bStart, bEnd := banks[bank].UseAt(arrive, cfg.BankTime)
	bo.observe(cfg, bank, arrive, bStart, bEnd)
	return bEnd + cfg.WireLatency
}

// goAccessor is the goroutine form of a processor: n synchronous accesses,
// each a ReqOverhead advance, the reservations, and an advance to the reply.
// It is the reference semantics the stepped form must reproduce exactly.
func goAccessor(cfg Config, pick pickFn, n int, banks []*sim.Server, medium *sim.Server, bo bankObs, totals []sim.Time, pid int) func(*sim.Proc) {
	return func(p *sim.Proc) {
		rng := p.Rand()
		start := p.Now()
		for a := 0; a < n; a++ {
			bank := pick(pid, rng)
			t0 := p.Now()
			p.Advance(cfg.ReqOverhead)
			done := oneAccess(p.Now(), cfg, bank, banks, medium, bo)
			p.Advance(done - p.Now())
			bo.cycles.Observe(float64(p.Now() - t0))
		}
		totals[pid] = p.Now() - start
	}
}

// stepAccessor is the state-machine form of the same processor: a two-state
// Step function the event loop drives directly, with no goroutine. Each
// access is one trip around stBegin (pick the bank, sleep through the issue
// overhead) and stService (make the reservations, sleep until the reply).
// Every rng draw, Server reservation and event-slot consumption happens in
// the same order as goAccessor's, so runs are byte-identical between forms;
// TestSteppedMatchesGoroutine pins this.
func stepAccessor(cfg Config, pick pickFn, n int, banks []*sim.Server, medium *sim.Server, bo bankObs, totals []sim.Time, pid int) sim.StepFn {
	const (
		stBegin   = iota // at the top of the access loop (or just woken by a reply)
		stService        // woken after ReqOverhead: issue the access
	)
	state := stBegin
	first := true
	a := 0
	var start, t0 sim.Time
	var bank int
	return func(sp *sim.StepProc) sim.Status {
		switch state {
		case stBegin:
			if first {
				first = false
				start = sp.Now()
			} else {
				bo.cycles.Observe(float64(sp.Now() - t0))
			}
			if a == n {
				totals[pid] = sp.Now() - start
				return sim.StepDone
			}
			bank = pick(pid, sp.Rand())
			t0 = sp.Now()
			state = stService
			return sp.Sleep(cfg.ReqOverhead)
		default: // stService
			done := oneAccess(sp.Now(), cfg, bank, banks, medium, bo)
			a++
			state = stBegin
			return sp.SleepUntil(done)
		}
	}
}

// spawnAccessors starts one processor per pid in whichever form
// sim.UseStepProcs selects, with the per-pid seed derivation both forms
// share.
func spawnAccessors(e *sim.Engine, cfg Config, pick pickFn, n int, banks []*sim.Server, medium *sim.Server, bo bankObs, totals []sim.Time, seed int64) {
	for pid := 0; pid < cfg.Procs; pid++ {
		name := fmt.Sprintf("proc%d", pid)
		pseed := int64(stats.Mix64(uint64(seed), uint64(pid)))
		if sim.UseStepProcs {
			e.SpawnStepSeeded(name, pseed, stepAccessor(cfg, pick, n, banks, medium, bo, totals, pid))
		} else {
			e.SpawnSeeded(name, pseed, goAccessor(cfg, pick, n, banks, medium, bo, totals, pid))
		}
	}
}

// finish runs the simulation and folds the per-processor totals and bank
// busy-cycles into a Result.
func finish(e *sim.Engine, cfg Config, pat Pattern, n int, banks []*sim.Server, totals []sim.Time) Result {
	if err := e.Run(); err != nil {
		panic(err)
	}
	var sum float64
	for _, t := range totals {
		sum += float64(t)
	}
	avg := sum / float64(cfg.Procs) / float64(n)
	var maxUtil float64
	end := float64(e.Now())
	for _, b := range banks {
		if end > 0 {
			if u := float64(b.BusyCycles()) / end; u > maxUtil {
				maxUtil = u
			}
		}
	}
	return Result{Config: cfg, Pattern: pat, Accesses: n, AvgCycles: avg, MaxBankUtil: maxUtil}
}

// RunObserved is Run with an observability recorder (nil behaves exactly
// like Run): per-bank queue-depth histograms, contention counters, an
// end-to-end access-time histogram, and bank-occupancy trace spans keyed by
// pattern so Random, Conflict and NoConflict render as separate processes.
func RunObserved(cfg Config, pat Pattern, accessesPerProc int, seed int64, rec *obs.Recorder) Result {
	if cfg.Procs <= 0 || cfg.Banks <= 0 {
		panic("membank: procs and banks must be positive")
	}
	e := sim.NewEngine()
	if rec != nil {
		e.Observe(rec)
	}
	bo := newBankObs(rec, cfg, pat)
	banks := make([]*sim.Server, cfg.Banks)
	for i := range banks {
		banks[i] = e.NewServer()
	}
	var medium *sim.Server
	if cfg.SharedMedium {
		medium = e.NewServer()
	}
	totals := make([]sim.Time, cfg.Procs)
	spawnAccessors(e, cfg, patternPick(cfg, pat), accessesPerProc, banks, medium, bo, totals, seed)
	return finish(e, cfg, pat, accessesPerProc, banks, totals)
}

// RunAll measures every pattern on cfg.
func RunAll(cfg Config, accessesPerProc int, seed int64) []Result {
	return RunAllObserved(cfg, accessesPerProc, seed, nil)
}

// RunAllObserved is RunAll with an observability recorder (nil behaves
// exactly like RunAll).
func RunAllObserved(cfg Config, accessesPerProc int, seed int64, rec *obs.Recorder) []Result {
	out := make([]Result, 0, 3)
	for _, pat := range []Pattern{Random, Conflict, NoConflict} {
		out = append(out, RunObserved(cfg, pat, accessesPerProc, seed, rec))
	}
	return out
}

// RunHotFraction runs the microbenchmark with a partial hot spot: each
// access targets bank 0 with probability hotFrac and a uniformly random
// bank otherwise — the paper's closing caveat that real programs are less
// concurrent than the stress patterns. Deterministic in seed.
func RunHotFraction(cfg Config, hotFrac float64, accessesPerProc int, seed int64) Result {
	if hotFrac < 0 || hotFrac > 1 {
		panic("membank: hotFrac must be in [0,1]")
	}
	e := sim.NewEngine()
	banks := make([]*sim.Server, cfg.Banks)
	for i := range banks {
		banks[i] = e.NewServer()
	}
	var medium *sim.Server
	if cfg.SharedMedium {
		medium = e.NewServer()
	}
	totals := make([]sim.Time, cfg.Procs)
	// Both draws happen on every access so the rng stream is pattern-shaped
	// only by hotFrac, not by which branch wins.
	pick := func(_ int, rng *rand.Rand) int {
		bank := rng.Intn(cfg.Banks)
		if rng.Float64() < hotFrac {
			bank = 0
		}
		return bank
	}
	spawnAccessors(e, cfg, pick, accessesPerProc, banks, medium, bankObs{}, totals, seed)
	return finish(e, cfg, Random, accessesPerProc, banks, totals)
}
