package membank

import (
	"bytes"
	"testing"

	"repro/internal/obs"
	"repro/internal/sim"
)

// withStepProcs runs fn with the process-kind switch forced to v, restoring
// the default afterwards. The switch is a package global, so tests using it
// must not run in parallel.
func withStepProcs(v bool, fn func()) {
	old := sim.UseStepProcs
	sim.UseStepProcs = v
	defer func() { sim.UseStepProcs = old }()
	fn()
}

// TestSteppedMatchesGoroutine pins the stepped accessor against the
// goroutine reference semantics: identical Results and identical metrics
// (every counter, histogram bucket, and trace span) for every architecture
// and pattern, plus the hot-fraction path. This is the membank-local half of
// the byte-identical guarantee; internal/experiments' differential suite
// covers the rendered tables.
func TestSteppedMatchesGoroutine(t *testing.T) {
	for _, cfg := range AllConfigs() {
		for _, pat := range []Pattern{Random, Conflict, NoConflict} {
			var rStep, rGo Result
			var mStep, mGo bytes.Buffer
			withStepProcs(true, func() {
				sink := obs.NewSink(obs.Config{Metrics: true})
				rStep = RunObserved(cfg, pat, 80, 7, sink.Recorder(sink.Reserve(1)))
				if err := sink.Merged().WriteMetricsJSON(&mStep); err != nil {
					t.Fatal(err)
				}
			})
			withStepProcs(false, func() {
				sink := obs.NewSink(obs.Config{Metrics: true})
				rGo = RunObserved(cfg, pat, 80, 7, sink.Recorder(sink.Reserve(1)))
				if err := sink.Merged().WriteMetricsJSON(&mGo); err != nil {
					t.Fatal(err)
				}
			})
			if rStep != rGo {
				t.Errorf("%s/%s: stepped result %+v != goroutine result %+v", cfg.Name, pat, rStep, rGo)
			}
			if !bytes.Equal(mStep.Bytes(), mGo.Bytes()) {
				t.Errorf("%s/%s: stepped metrics diverge from goroutine metrics (%d vs %d bytes)",
					cfg.Name, pat, mStep.Len(), mGo.Len())
			}
		}
		var hStep, hGo Result
		withStepProcs(true, func() { hStep = RunHotFraction(cfg, 0.3, 80, 7) })
		withStepProcs(false, func() { hGo = RunHotFraction(cfg, 0.3, 80, 7) })
		if hStep != hGo {
			t.Errorf("%s: hot-fraction stepped %+v != goroutine %+v", cfg.Name, hStep, hGo)
		}
	}
}

// TestSteppedMatchesGoroutineOnCalendar repeats the core comparison on the
// calendar-queue scheduler, so both engine switches are covered jointly.
func TestSteppedMatchesGoroutineOnCalendar(t *testing.T) {
	oldSched := sim.DefaultScheduler
	sim.DefaultScheduler = sim.SchedCalendar
	defer func() { sim.DefaultScheduler = oldSched }()
	cfg := SMPNative()
	for _, pat := range []Pattern{Random, Conflict, NoConflict} {
		var rStep, rGo Result
		withStepProcs(true, func() { rStep = Run(cfg, pat, 120, 3) })
		withStepProcs(false, func() { rGo = Run(cfg, pat, 120, 3) })
		if rStep != rGo {
			t.Errorf("%s/%s on calendar: stepped %+v != goroutine %+v", cfg.Name, pat, rStep, rGo)
		}
	}
}
