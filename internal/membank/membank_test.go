package membank

import (
	"testing"
)

func TestConflictMuchWorseThanNoConflict(t *testing.T) {
	for _, cfg := range AllConfigs() {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			nc := Run(cfg, NoConflict, 300, 1)
			cf := Run(cfg, Conflict, 300, 1)
			ratio := cf.AvgCycles / nc.AvgCycles
			// On the shared-Ethernet NOW the medium saturates before the
			// hot bank does, flattening the patterns (the "0%" end of the
			// paper's spread); everywhere else the hot spot must cost 2x+.
			want := 1.8
			if cfg.SharedMedium {
				want = 1.15
			}
			if ratio < want {
				t.Errorf("Conflict/NoConflict = %.2f, want >= %.2f (paper: 2-4x)", ratio, want)
			}
		})
	}
}

func TestRandomNearNoConflict(t *testing.T) {
	// The paper: NoConflict beats Random by 0%-68%; randomization must stay
	// within about 2x of ideal on every architecture.
	for _, cfg := range AllConfigs() {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			nc := Run(cfg, NoConflict, 300, 1)
			rnd := Run(cfg, Random, 300, 1)
			ratio := rnd.AvgCycles / nc.AvgCycles
			if ratio < 0.95 || ratio > 2.1 {
				t.Errorf("Random/NoConflict = %.2f, want in [1, ~2]", ratio)
			}
		})
	}
}

func TestRandomBetterThanConflict(t *testing.T) {
	for _, cfg := range AllConfigs() {
		rnd := Run(cfg, Random, 300, 1)
		cf := Run(cfg, Conflict, 300, 1)
		if rnd.AvgCycles*1.05 >= cf.AvgCycles {
			t.Errorf("%s: Random (%.0f) not clearly faster than Conflict (%.0f)",
				cfg.Name, rnd.AvgCycles, cf.AvgCycles)
		}
	}
}

func TestConflictSaturatesHotBank(t *testing.T) {
	cfg := SMPNative()
	r := Run(cfg, Conflict, 500, 2)
	if r.MaxBankUtil < 0.9 {
		t.Errorf("hot bank utilisation = %.2f, want near 1", r.MaxBankUtil)
	}
}

func TestDeterministic(t *testing.T) {
	a := Run(SMPNative(), Random, 200, 7)
	b := Run(SMPNative(), Random, 200, 7)
	if a.AvgCycles != b.AvgCycles {
		t.Error("not deterministic")
	}
	c := Run(SMPNative(), Random, 200, 8)
	if a.AvgCycles == c.AvgCycles {
		t.Error("different seeds gave identical averages (suspicious)")
	}
}

func TestBSPlibSlowerThanNative(t *testing.T) {
	nat := Run(SMPNative(), Random, 300, 1)
	l2 := Run(SMPBSPlib2(), Random, 300, 1)
	l1 := Run(SMPBSPlib1(), Random, 300, 1)
	if !(nat.AvgCycles < l2.AvgCycles && l2.AvgCycles < l1.AvgCycles) {
		t.Errorf("want native (%.0f) < L2 (%.0f) < L1 (%.0f)",
			nat.AvgCycles, l2.AvgCycles, l1.AvgCycles)
	}
}

func TestNOWDominatedBySoftware(t *testing.T) {
	// On the Ethernet NOW the per-access software cost is so large that
	// even NoConflict accesses are hundreds of microseconds.
	r := Run(NOWBSPlib(), NoConflict, 100, 1)
	if us := r.AvgMicros(); us < 100 {
		t.Errorf("NOW access = %.1f us, want > 100 us", us)
	}
}

func TestAvgMicros(t *testing.T) {
	r := Result{Config: Config{ClockMHz: 100}, AvgCycles: 500}
	if r.AvgMicros() != 5 {
		t.Errorf("AvgMicros = %g, want 5", r.AvgMicros())
	}
	r.Config.ClockMHz = 0
	if r.AvgMicros() != 0 {
		t.Error("zero clock should give 0")
	}
}

func TestRunAllCoversPatterns(t *testing.T) {
	rs := RunAll(CrayT3E(), 100, 3)
	if len(rs) != 3 {
		t.Fatalf("got %d results", len(rs))
	}
	seen := map[Pattern]bool{}
	for _, r := range rs {
		seen[r.Pattern] = true
	}
	if !seen[Random] || !seen[Conflict] || !seen[NoConflict] {
		t.Error("patterns missing")
	}
}

func BenchmarkMembankRandom(b *testing.B) {
	cfg := SMPNative()
	for i := 0; i < b.N; i++ {
		Run(cfg, Random, 100, int64(i))
	}
}

func TestHotFractionMonotone(t *testing.T) {
	cfg := SMPNative()
	prev := 0.0
	for _, f := range []float64{0, 0.25, 0.5, 0.75, 1} {
		r := RunHotFraction(cfg, f, 400, 3)
		if r.AvgCycles < prev*0.98 { // allow sampling jitter at low fractions
			t.Errorf("hotFrac %.2f: avg %.0f below previous %.0f", f, r.AvgCycles, prev)
		}
		prev = r.AvgCycles
	}
}

func TestHotFractionEndpointsMatchPatterns(t *testing.T) {
	cfg := CrayT3E()
	full := RunHotFraction(cfg, 1, 300, 1)
	conflict := Run(cfg, Conflict, 300, 1)
	if ratio := full.AvgCycles / conflict.AvgCycles; ratio < 0.9 || ratio > 1.1 {
		t.Errorf("hotFrac=1 vs Conflict ratio %.2f, want ~1", ratio)
	}
	none := RunHotFraction(cfg, 0, 300, 1)
	random := Run(cfg, Random, 300, 1)
	if ratio := none.AvgCycles / random.AvgCycles; ratio < 0.8 || ratio > 1.2 {
		t.Errorf("hotFrac=0 vs Random ratio %.2f, want ~1", ratio)
	}
}

func TestHotFractionBadInputPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("hotFrac > 1 did not panic")
		}
	}()
	RunHotFraction(SMPNative(), 1.5, 10, 1)
}
