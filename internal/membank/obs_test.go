package membank

import (
	"fmt"
	"testing"

	"repro/internal/obs"
)

func bankLabels(cfg Config, pat Pattern, bank int) string {
	return fmt.Sprintf("arch=%s,pattern=%s,bank=%d", cfg.Name, pat, bank)
}

// TestObservedConflictContention checks the per-bank metrics distinguish the
// paper's access patterns: Conflict hammers bank 0 with queueing, NoConflict
// never contends.
func TestObservedConflictContention(t *testing.T) {
	cfg := SMPNative()
	rec := obs.New(obs.Config{Metrics: true})
	rc := RunObserved(cfg, Conflict, 50, 1, rec)
	if rc.AvgCycles <= 0 {
		t.Fatal("observed run produced no result")
	}

	hot := rec.FindHistogram("membank", "queue_depth", bankLabels(cfg, Conflict, 0))
	if hot == nil {
		t.Fatal("no queue-depth histogram for the hot bank")
	}
	if hot.Count() != uint64(cfg.Procs*50) {
		t.Errorf("hot-bank depth observations = %d, want %d", hot.Count(), cfg.Procs*50)
	}
	// With 8 processors pounding one bank, most accesses queue behind others:
	// depth 0 (bucket 0) must not account for everything.
	if zero := hot.BucketCount(0); zero == hot.Count() {
		t.Error("Conflict pattern shows no queueing on the hot bank")
	}
	if c := rec.FindCounter("membank", "contended", bankLabels(cfg, Conflict, 0)); c.Value() == 0 {
		t.Error("Conflict pattern recorded no contended accesses on bank 0")
	}
	for b := 1; b < cfg.Banks; b++ {
		if c := rec.FindCounter("membank", "accesses", bankLabels(cfg, Conflict, b)); c.Value() != 0 {
			t.Errorf("Conflict pattern touched bank %d (%d accesses)", b, c.Value())
		}
	}

	rec2 := obs.New(obs.Config{Metrics: true})
	RunObserved(cfg, NoConflict, 50, 1, rec2)
	for b := 0; b < cfg.Banks; b++ {
		if c := rec2.FindCounter("membank", "contended", bankLabels(cfg, NoConflict, b)); c.Value() != 0 {
			t.Errorf("NoConflict pattern contended on bank %d (%d times)", b, c.Value())
		}
	}
}

// TestObservedMatchesUnobserved checks instrumentation does not perturb the
// simulation: results are identical with and without a recorder.
func TestObservedMatchesUnobserved(t *testing.T) {
	cfg := SMPBSPlib2()
	for _, pat := range []Pattern{Random, Conflict, NoConflict} {
		plain := Run(cfg, pat, 30, 7)
		observed := RunObserved(cfg, pat, 30, 7, obs.New(obs.Config{Metrics: true, Trace: true}))
		if plain != observed {
			t.Errorf("%v: observed result diverges: %+v vs %+v", pat, observed, plain)
		}
	}
}

// TestObservedTraceSpans checks a traced run emits per-bank access spans and
// (on the shared-medium NOW config) medium frames.
func TestObservedTraceSpans(t *testing.T) {
	rec := obs.New(obs.Config{Metrics: true, Trace: true})
	RunObserved(SMPNative(), Random, 20, 1, rec)
	if rec.Spans() == 0 {
		t.Error("traced SMP run emitted no spans")
	}

	now := NOWBSPlib()
	now.Procs, now.Banks = 4, 4
	rec2 := obs.New(obs.Config{Metrics: true, Trace: true})
	RunObserved(now, Random, 5, 1, rec2)
	if rec2.Spans() == 0 {
		t.Error("traced NOW run emitted no spans")
	}
}

// TestRunAllObservedPatternsDistinct checks the aggregate fig7 recorder keeps
// the three patterns' histograms separate (distinct label sets) so the
// METRICS_fig7.json criterion — per-bank depth histograms that distinguish
// the patterns — holds.
func TestRunAllObservedPatternsDistinct(t *testing.T) {
	cfg := SMPNative()
	rec := obs.New(obs.Config{Metrics: true})
	if got := len(RunAllObserved(cfg, 40, 1, rec)); got != 3 {
		t.Fatalf("RunAllObserved returned %d results, want 3", got)
	}
	depth := func(pat Pattern, bank int) *obs.Histogram {
		h := rec.FindHistogram("membank", "queue_depth", bankLabels(cfg, pat, bank))
		if h == nil {
			t.Fatalf("missing queue-depth histogram for %v bank %d", pat, bank)
		}
		return h
	}
	conflictQueued := depth(Conflict, 0).Count() - depth(Conflict, 0).BucketCount(0)
	noConflictQueued := uint64(0)
	for b := 0; b < cfg.Banks; b++ {
		noConflictQueued += depth(NoConflict, b).Count() - depth(NoConflict, b).BucketCount(0)
	}
	if conflictQueued == 0 {
		t.Error("Conflict depth histogram shows no queued accesses")
	}
	if noConflictQueued != 0 {
		t.Errorf("NoConflict depth histograms show %d queued accesses, want 0", noConflictQueued)
	}
}
