// Package stats provides the small statistical toolkit used throughout the
// QSM reproduction: summary statistics over repeated runs, Chernoff tail
// bounds and their inversions (used for the paper's "WHP bound" prediction
// lines), and deterministic random-source helpers.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64 // sample standard deviation (n-1 denominator)
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes summary statistics of xs. It panics on an empty sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		panic("stats: empty sample")
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.StdDev = math.Sqrt(ss / float64(len(xs)-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		s.Median = sorted[mid]
	} else {
		s.Median = (sorted[mid-1] + sorted[mid]) / 2
	}
	return s
}

// RelStdDev returns the standard deviation as a fraction of the mean, the
// figure the paper reports ("standard deviation is less than 11% of the
// average"). It returns 0 for a zero mean.
func (s Summary) RelStdDev() float64 {
	if s.Mean == 0 {
		return 0
	}
	return s.StdDev / math.Abs(s.Mean)
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g sd=%.3g (%.1f%%) min=%.4g max=%.4g",
		s.N, s.Mean, s.StdDev, 100*s.RelStdDev(), s.Min, s.Max)
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// MaxInt returns the maximum of xs. It panics on an empty slice.
func MaxInt(xs []int) int {
	if len(xs) == 0 {
		panic("stats: empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// MinInt returns the minimum of xs. It panics on an empty slice.
func MinInt(xs []int) int {
	if len(xs) == 0 {
		panic("stats: empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}
