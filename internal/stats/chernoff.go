package stats

import "math"

// Chernoff tail bounds for sums of independent 0/1 random variables with
// mean mu. These are the standard multiplicative forms used in the paper's
// "WHP bound" derivations (TR98-22): for X a sum of independent indicator
// variables with E[X] = mu,
//
//	P[X >= (1+d)mu] <= exp(-d^2 mu / 3)   for 0 < d <= 1
//	P[X >= (1+d)mu] <= exp(-d   mu / 3)   for d > 1
//	P[X <= (1-d)mu] <= exp(-d^2 mu / 2)   for 0 < d < 1

// ChernoffUpperTail returns the bound on P[X >= (1+d)mu].
func ChernoffUpperTail(mu, d float64) float64 {
	if d <= 0 {
		return 1
	}
	if d <= 1 {
		return math.Exp(-d * d * mu / 3)
	}
	return math.Exp(-d * mu / 3)
}

// ChernoffLowerTail returns the bound on P[X <= (1-d)mu].
func ChernoffLowerTail(mu, d float64) float64 {
	if d <= 0 {
		return 1
	}
	if d >= 1 {
		d = 1
	}
	return math.Exp(-d * d * mu / 2)
}

// ChernoffDelta returns the smallest d such that the Chernoff upper-tail
// bound P[X >= (1+d)mu] is at most eps. With t = 3 ln(1/eps) / mu this is
// sqrt(t) when sqrt(t) <= 1 and t otherwise.
func ChernoffDelta(mu, eps float64) float64 {
	if mu <= 0 {
		return 0
	}
	if eps <= 0 || eps >= 1 {
		if eps >= 1 {
			return 0
		}
		return math.Inf(1)
	}
	t := 3 * math.Log(1/eps) / mu
	if s := math.Sqrt(t); s <= 1 {
		return s
	}
	return t
}

// ChernoffUpperBound returns a value b = (1+d)mu such that P[X >= b] <= eps.
func ChernoffUpperBound(mu, eps float64) float64 {
	return mu * (1 + ChernoffDelta(mu, eps))
}

// MaxOfBound returns a bound that holds simultaneously for k independent (or
// arbitrary) variables each with mean mu, via a union bound: each variable is
// bounded with failure probability eps/k.
func MaxOfBound(mu, eps float64, k int) float64 {
	if k < 1 {
		k = 1
	}
	return ChernoffUpperBound(mu, eps/float64(k))
}

// BallsInBinsMax bounds, with failure probability at most eps, the maximum
// number of balls in any of p bins when n balls are thrown independently and
// uniformly. It is the paper's bound on the largest sample-sort bucket B.
func BallsInBinsMax(n, p int, eps float64) float64 {
	if p <= 0 {
		panic("stats: p must be positive")
	}
	mu := float64(n) / float64(p)
	return MaxOfBound(mu, eps, p)
}

// GeometricDecay returns x0 * r^i, clamped below at 0; a helper for the list
// ranking analysis where the expected live set shrinks by a factor 3/4 per
// iteration.
func GeometricDecay(x0, r float64, i int) float64 {
	return x0 * math.Pow(r, float64(i))
}
