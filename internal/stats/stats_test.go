package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 {
		t.Errorf("N = %d, want 8", s.N)
	}
	if s.Mean != 5 {
		t.Errorf("Mean = %g, want 5", s.Mean)
	}
	wantSD := math.Sqrt(32.0 / 7.0)
	if math.Abs(s.StdDev-wantSD) > 1e-12 {
		t.Errorf("StdDev = %g, want %g", s.StdDev, wantSD)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("Min,Max = %g,%g, want 2,9", s.Min, s.Max)
	}
	if s.Median != 4.5 {
		t.Errorf("Median = %g, want 4.5", s.Median)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{3.5})
	if s.Mean != 3.5 || s.StdDev != 0 || s.Median != 3.5 {
		t.Errorf("single-element summary wrong: %+v", s)
	}
}

func TestSummarizeOddMedian(t *testing.T) {
	s := Summarize([]float64{9, 1, 5})
	if s.Median != 5 {
		t.Errorf("Median = %g, want 5", s.Median)
	}
}

func TestSummarizeEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Summarize(nil) did not panic")
		}
	}()
	Summarize(nil)
}

func TestRelStdDev(t *testing.T) {
	s := Summary{Mean: 100, StdDev: 11}
	if got := s.RelStdDev(); got != 0.11 {
		t.Errorf("RelStdDev = %g, want 0.11", got)
	}
	if (Summary{}).RelStdDev() != 0 {
		t.Error("RelStdDev with zero mean should be 0")
	}
}

func TestSummarizePropertyBounds(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		s := Summarize(xs)
		return s.Min <= s.Mean && s.Mean <= s.Max &&
			s.Min <= s.Median && s.Median <= s.Max && s.StdDev >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMeanEmpty(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
}

func TestMinMaxInt(t *testing.T) {
	xs := []int{5, -2, 9, 0}
	if MaxInt(xs) != 9 || MinInt(xs) != -2 {
		t.Errorf("MaxInt/MinInt wrong: %d, %d", MaxInt(xs), MinInt(xs))
	}
}

func TestChernoffTailMonotone(t *testing.T) {
	mu := 100.0
	prev := 1.0
	for d := 0.1; d <= 3.0; d += 0.1 {
		b := ChernoffUpperTail(mu, d)
		if b > prev+1e-12 {
			t.Fatalf("tail bound not monotone at d=%g: %g > %g", d, b, prev)
		}
		prev = b
	}
}

func TestChernoffTailEdges(t *testing.T) {
	if ChernoffUpperTail(100, 0) != 1 {
		t.Error("d=0 should give trivial bound 1")
	}
	if ChernoffLowerTail(100, 0) != 1 {
		t.Error("lower tail d=0 should give 1")
	}
	if b := ChernoffLowerTail(100, 2); b != math.Exp(-50) {
		t.Errorf("lower tail clamps d at 1: got %g", b)
	}
}

func TestChernoffDeltaInvertsTail(t *testing.T) {
	for _, mu := range []float64{1, 10, 100, 1e4, 1e6} {
		for _, eps := range []float64{0.1, 0.01, 1e-6} {
			d := ChernoffDelta(mu, eps)
			if got := ChernoffUpperTail(mu, d); got > eps*(1+1e-9) {
				t.Errorf("mu=%g eps=%g: tail at delta = %g > eps", mu, eps, got)
			}
		}
	}
}

func TestChernoffDeltaSmallMuUsesLinearForm(t *testing.T) {
	// With tiny mu the sqrt form would give d > 1, where the bound shape
	// changes; the linear form must be used.
	d := ChernoffDelta(1, 1e-6)
	if d <= 1 {
		t.Errorf("expected d > 1 for mu=1, eps=1e-6; got %g", d)
	}
	if got := ChernoffUpperTail(1, d); got > 1e-6*(1+1e-9) {
		t.Errorf("tail %g exceeds eps", got)
	}
}

func TestChernoffUpperBoundAboveMean(t *testing.T) {
	f := func(muRaw, epsRaw uint16) bool {
		mu := 1 + float64(muRaw)
		eps := (float64(epsRaw) + 1) / 70000 // in (0, ~0.94)
		b := ChernoffUpperBound(mu, eps)
		return b >= mu
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBallsInBinsMaxEmpirical(t *testing.T) {
	// The bound must hold in at least (1-eps) of random trials.
	const n, p = 10000, 16
	const eps = 0.1
	bound := BallsInBinsMax(n, p, eps)
	rng := rand.New(rand.NewSource(1))
	trials, violations := 200, 0
	for tr := 0; tr < trials; tr++ {
		var bins [p]int
		for i := 0; i < n; i++ {
			bins[rng.Intn(p)]++
		}
		max := 0
		for _, b := range bins {
			if b > max {
				max = b
			}
		}
		if float64(max) > bound {
			violations++
		}
	}
	if frac := float64(violations) / float64(trials); frac > eps {
		t.Errorf("bound %g violated in %.0f%% of trials (> %.0f%%)", bound, 100*frac, 100*eps)
	}
}

func TestGeometricDecay(t *testing.T) {
	if GeometricDecay(1000, 0.75, 0) != 1000 {
		t.Error("i=0 should return x0")
	}
	if got := GeometricDecay(1000, 0.75, 2); math.Abs(got-562.5) > 1e-9 {
		t.Errorf("got %g, want 562.5", got)
	}
}

func TestNewRandStreamsDiffer(t *testing.T) {
	a := NewRand(7, 0).Int63()
	b := NewRand(7, 1).Int63()
	c := NewRand(7, 0).Int63()
	if a == b {
		t.Error("different streams from same seed should differ")
	}
	if a != c {
		t.Error("same seed+stream should reproduce")
	}
}

func TestMix64Avalanche(t *testing.T) {
	// Flipping one input bit should change many output bits on average.
	base := Mix64(12345, 678)
	totalFlips := 0
	for bit := 0; bit < 64; bit++ {
		v := Mix64(12345^(1<<uint(bit)), 678)
		x := base ^ v
		for x != 0 {
			totalFlips++
			x &= x - 1
		}
	}
	if avg := float64(totalFlips) / 64; avg < 24 || avg > 40 {
		t.Errorf("avalanche average %g bits, want near 32", avg)
	}
}
