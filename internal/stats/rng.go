package stats

import "math/rand"

// NewRand returns a deterministic random source for the given experiment
// seed and stream index. Distinct streams derived from the same seed are
// decorrelated by mixing the stream index through SplitMix64.
func NewRand(seed int64, stream int64) *rand.Rand {
	return rand.New(rand.NewSource(int64(Mix64(uint64(seed), uint64(stream)))))
}

// Mix64 mixes two 64-bit values into one using the SplitMix64 finaliser,
// suitable for deriving independent seeds.
func Mix64(a, b uint64) uint64 {
	x := a + 0x9e3779b97f4a7c15*(b+1)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
