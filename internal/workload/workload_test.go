package workload

import (
	"testing"
	"testing/quick"
)

func TestUniformIntsDeterministicAndBounded(t *testing.T) {
	a := UniformInts(1000, 100, 7)
	b := UniformInts(1000, 100, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("not deterministic")
		}
		if a[i] < 0 || a[i] >= 100 {
			t.Fatalf("value %d out of bounds", a[i])
		}
	}
	c := UniformInts(1000, 100, 8)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same > 100 {
		t.Errorf("different seeds produced %d/1000 equal values", same)
	}
}

func TestZipfIntsSkewed(t *testing.T) {
	vs := ZipfInts(10000, 1.5, 1000, 3)
	zeros := 0
	for _, v := range vs {
		if v == 0 {
			zeros++
		}
		if v < 0 || v > 1000 {
			t.Fatalf("value %d out of range", v)
		}
	}
	if zeros < 1000 {
		t.Errorf("zipf(1.5): %d/10000 zeros, want heavy mass at 0", zeros)
	}
}

func TestPartitionCoversExactly(t *testing.T) {
	f := func(nRaw, pRaw uint8) bool {
		n := int(nRaw)
		p := int(pRaw)%16 + 1
		covered := 0
		prevHi := 0
		for id := 0; id < p; id++ {
			lo, hi := Partition(n, p, id)
			if lo != prevHi || hi < lo {
				return false
			}
			covered += hi - lo
			prevHi = hi
		}
		return covered == n && prevHi == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRandomListIsValidList(t *testing.T) {
	l := RandomList(1000, 5)
	seen := make([]bool, l.N)
	count := 0
	for i := l.Head; i != -1; i = int(l.Succ[i]) {
		if seen[i] {
			t.Fatal("cycle in list")
		}
		seen[i] = true
		count++
	}
	if count != l.N {
		t.Fatalf("traversal visited %d of %d", count, l.N)
	}
	// Pred is the inverse of Succ.
	for i := 0; i < l.N; i++ {
		if s := l.Succ[i]; s != -1 {
			if l.Pred[s] != int64(i) {
				t.Fatalf("Pred[%d] = %d, want %d", s, l.Pred[s], i)
			}
		}
	}
	if l.Pred[l.Head] != -1 || l.Succ[l.Tail] != -1 {
		t.Error("head/tail sentinels wrong")
	}
}

func TestRandomListDeterministic(t *testing.T) {
	a, b := RandomList(100, 9), RandomList(100, 9)
	if a.Head != b.Head {
		t.Fatal("not deterministic")
	}
	for i := range a.Succ {
		if a.Succ[i] != b.Succ[i] {
			t.Fatal("not deterministic")
		}
	}
}

func TestRanks(t *testing.T) {
	l := SequentialList(5)
	r := l.Ranks()
	for i, v := range r {
		if v != int64(i) {
			t.Fatalf("ranks = %v", r)
		}
	}
	rl := RandomList(500, 11)
	rr := rl.Ranks()
	if rr[rl.Head] != 0 || rr[rl.Tail] != int64(rl.N-1) {
		t.Error("head/tail ranks wrong")
	}
	// Ranks are a permutation of 0..n-1.
	seen := make([]bool, rl.N)
	for _, v := range rr {
		if v < 0 || v >= int64(rl.N) || seen[v] {
			t.Fatal("ranks not a permutation")
		}
		seen[v] = true
	}
}

func TestAdversarialGenerators(t *testing.T) {
	s := SortedInts(5)
	for i := range s {
		if s[i] != int64(i) {
			t.Fatal("SortedInts wrong")
		}
	}
	r := ReverseSortedInts(5)
	for i := range r {
		if r[i] != int64(4-i) {
			t.Fatal("ReverseSortedInts wrong")
		}
	}
	ns := NearlySortedInts(1000, 0.05, 7)
	displaced := 0
	for i, v := range ns {
		if v != int64(i) {
			displaced++
		}
	}
	if displaced == 0 || displaced > 250 {
		t.Errorf("NearlySortedInts displaced %d of 1000", displaced)
	}
	for _, v := range ConstantInts(10, 42) {
		if v != 42 {
			t.Fatal("ConstantInts wrong")
		}
	}
}
