// Package workload generates the deterministic inputs of the paper's
// experiments: uniform random keys for sorting, random linked lists for list
// ranking, and skewed distributions for robustness tests. All generators are
// pure functions of their seed.
package workload

import (
	"math/rand"

	"repro/internal/stats"
)

// UniformInts returns n pseudorandom values in [0, bound), or arbitrary
// int64s if bound <= 0.
func UniformInts(n int, bound int64, seed int64) []int64 {
	rng := stats.NewRand(seed, 0)
	out := make([]int64, n)
	for i := range out {
		if bound > 0 {
			out[i] = rng.Int63n(bound)
		} else {
			out[i] = rng.Int63()
		}
	}
	return out
}

// ZipfInts returns n values drawn from a Zipf distribution with the given
// skew s > 1 over [0, imax], exercising sort algorithms under heavy
// duplication.
func ZipfInts(n int, s float64, imax uint64, seed int64) []int64 {
	rng := stats.NewRand(seed, 1)
	z := rand.NewZipf(rng, s, 1, imax)
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(z.Uint64())
	}
	return out
}

// Partition returns the bounds of processor id's block of an n-element
// array distributed over p processors: [lo, hi).
func Partition(n, p, id int) (lo, hi int) {
	block := (n + p - 1) / p
	lo = id * block
	hi = lo + block
	if lo > n {
		lo = n
	}
	if hi > n {
		hi = n
	}
	return lo, hi
}

// List is a doubly linked list over elements 0..N-1 in random order.
type List struct {
	N    int
	Head int
	Tail int
	Succ []int64 // Succ[i] is i's successor, -1 for the tail
	Pred []int64 // Pred[i] is i's predecessor, -1 for the head
}

// RandomList builds a uniformly random list: the list order is a random
// permutation of 0..n-1, so the neighbours of each element sit on random
// processors under a blocked distribution — the canonical irregular
// communication pattern.
func RandomList(n int, seed int64) *List {
	if n <= 0 {
		panic("workload: list size must be positive")
	}
	rng := stats.NewRand(seed, 2)
	order := rng.Perm(n)
	l := &List{
		N:    n,
		Head: order[0],
		Tail: order[n-1],
		Succ: make([]int64, n),
		Pred: make([]int64, n),
	}
	for i := 0; i < n; i++ {
		if i+1 < n {
			l.Succ[order[i]] = int64(order[i+1])
		} else {
			l.Succ[order[i]] = -1
		}
		if i > 0 {
			l.Pred[order[i]] = int64(order[i-1])
		} else {
			l.Pred[order[i]] = -1
		}
	}
	return l
}

// Ranks returns the ground-truth rank of every element: the head has rank
// 0, each successor one more.
func (l *List) Ranks() []int64 {
	ranks := make([]int64, l.N)
	r := int64(0)
	for i := l.Head; i != -1; i = int(l.Succ[i]) {
		ranks[i] = r
		r++
	}
	return ranks
}

// SequentialList builds the worst-case-locality-free list 0 -> 1 -> ... ->
// n-1, useful in tests.
func SequentialList(n int) *List {
	l := &List{N: n, Head: 0, Tail: n - 1, Succ: make([]int64, n), Pred: make([]int64, n)}
	for i := 0; i < n; i++ {
		l.Succ[i] = int64(i + 1)
		l.Pred[i] = int64(i - 1)
	}
	l.Succ[n-1] = -1
	return l
}

// SortedInts returns 0..n-1 ascending — an adversarial input for random
// pivot selection.
func SortedInts(n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(i)
	}
	return out
}

// ReverseSortedInts returns n-1..0 descending.
func ReverseSortedInts(n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(n - 1 - i)
	}
	return out
}

// NearlySortedInts returns an ascending sequence with a fraction frac of
// random transpositions applied.
func NearlySortedInts(n int, frac float64, seed int64) []int64 {
	out := SortedInts(n)
	rng := stats.NewRand(seed, 3)
	swaps := int(frac * float64(n))
	for s := 0; s < swaps; s++ {
		i, j := rng.Intn(n), rng.Intn(n)
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// ConstantInts returns n copies of v — the degenerate all-duplicates input.
func ConstantInts(n int, v int64) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = v
	}
	return out
}
