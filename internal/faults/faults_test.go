package faults

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestScheduleIsDeterministic(t *testing.T) {
	rules := map[Class]Rule{
		StoreRead:   {Every: 3, Max: 4},
		HTTPError:   {Every: 2, Max: 0},
		WorkerPanic: {Every: 5, Max: 1},
	}
	pattern := func(seed int64) []bool {
		inj := New(Config{Seed: seed, Rules: rules})
		var p []bool
		for i := 0; i < 40; i++ {
			p = append(p, inj.Fire(StoreRead), inj.Fire(HTTPError), inj.Fire(WorkerPanic))
		}
		return p
	}
	a, b := pattern(7), pattern(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at decision %d", i)
		}
	}
	// A different seed shifts at least one class's phase in this rule set.
	c := pattern(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("seeds 7 and 8 produced identical schedules; offsets are not seeded")
	}
}

func TestEveryAndMaxBudget(t *testing.T) {
	inj := New(Config{Seed: 1, Rules: map[Class]Rule{StoreWrite: {Every: 4, Max: 2}}})
	fires := 0
	var firstIdx []int
	for i := 0; i < 40; i++ {
		if inj.Fire(StoreWrite) {
			fires++
			firstIdx = append(firstIdx, i)
		}
	}
	if fires != 2 {
		t.Fatalf("fired %d times, want Max=2", fires)
	}
	if firstIdx[1]-firstIdx[0] != 4 {
		t.Errorf("fires at %v, want spacing Every=4", firstIdx)
	}
	if firstIdx[0] >= 4 {
		t.Errorf("first fire at %d, want within the first Every=4 consultations", firstIdx[0])
	}
	if inj.Count(StoreWrite) != 2 {
		t.Errorf("Count = %d, want 2", inj.Count(StoreWrite))
	}
}

func TestDisabledAndNilInjectNothing(t *testing.T) {
	inj := New(Config{Seed: 1}) // no rules
	var nilInj *Injector
	for i := 0; i < 10; i++ {
		if inj.Fire(StoreRead) || nilInj.Fire(StoreRead) {
			t.Fatal("disabled class fired")
		}
		if inj.Err(HTTPError, "x") != nil || nilInj.Err(HTTPError, "x") != nil {
			t.Fatal("disabled class errored")
		}
		if inj.SlowDelay() != 0 || nilInj.SlowDelay() != 0 {
			t.Fatal("disabled class delayed")
		}
		if got := inj.CorruptBytes([]byte("abc")); string(got) != "abc" {
			t.Fatal("disabled class corrupted")
		}
	}
	if nilInj.Count(SlowJob) != 0 {
		t.Error("nil injector counted an injection")
	}
	if nilInj.Metrics() == nil {
		t.Error("nil injector Metrics() = nil, want an empty snapshot")
	}
}

func TestInjectedErrorIdentifiesItself(t *testing.T) {
	inj := New(Config{Seed: 3, Rules: map[Class]Rule{StoreRead: {Every: 1, Max: 1}}})
	err := inj.Err(StoreRead, "store get")
	var ie *InjectedError
	if !errors.As(err, &ie) {
		t.Fatalf("Err = %v, want *InjectedError", err)
	}
	if ie.Class != StoreRead || ie.N != 1 || !strings.Contains(ie.Error(), "store get") {
		t.Errorf("InjectedError = %+v (%s)", ie, ie)
	}
}

func TestCorruptBytesTruncatesOrFlips(t *testing.T) {
	data := []byte(strings.Repeat("x", 64))
	sawTruncate, sawFlip := false, false
	for seed := int64(0); seed < 32 && !(sawTruncate && sawFlip); seed++ {
		inj := New(Config{Seed: seed, Rules: map[Class]Rule{CorruptEntry: {Every: 1, Max: 1}}})
		out := inj.CorruptBytes(data)
		switch {
		case len(out) < len(data):
			sawTruncate = true
		case string(out) != string(data):
			sawFlip = true
		default:
			t.Fatalf("seed %d: fired but bytes unchanged", seed)
		}
		if string(data) != strings.Repeat("x", 64) {
			t.Fatal("CorruptBytes mutated the caller's slice")
		}
	}
	if !sawTruncate || !sawFlip {
		t.Errorf("32 seeds produced truncate=%v flip=%v, want both modes", sawTruncate, sawFlip)
	}
}

func TestSlowDelayUsesRuleThenDefault(t *testing.T) {
	inj := New(Config{Seed: 1, Rules: map[Class]Rule{SlowJob: {Every: 1, Max: 1, Delay: 5 * time.Millisecond}}})
	if d := inj.SlowDelay(); d != 5*time.Millisecond {
		t.Errorf("SlowDelay = %v, want the rule's 5ms", d)
	}
	inj = New(Config{Seed: 1, Rules: map[Class]Rule{SlowJob: {Every: 1, Max: 1}}})
	if d := inj.SlowDelay(); d != DefaultSlowDelay {
		t.Errorf("SlowDelay = %v, want DefaultSlowDelay", d)
	}
}

func TestMetricsCountInjections(t *testing.T) {
	inj := New(Config{Seed: 2, Rules: map[Class]Rule{
		HTTPDrop:  {Every: 1, Max: 3},
		StoreRead: {Every: 1, Max: 1},
	}})
	for i := 0; i < 5; i++ {
		inj.Fire(HTTPDrop)
	}
	inj.Err(StoreRead, "get")
	rec := inj.Metrics()
	if v := rec.FindCounter("faults", "injected", "class=http_drop").Value(); v != 3 {
		t.Errorf("http_drop counter = %d, want 3", v)
	}
	if v := rec.FindCounter("faults", "injected", "class=store_read").Value(); v != 1 {
		t.Errorf("store_read counter = %d, want 1", v)
	}
	var b strings.Builder
	if err := inj.WriteMetricsText(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `qsm_faults_injected_total{class="http_drop"} 3`) {
		t.Errorf("prometheus dump missing drop counter:\n%s", b.String())
	}
}

func TestParseRules(t *testing.T) {
	rules, err := ParseRules("store_read:3:2, slow_job:4:1:50ms,http_error:5:0")
	if err != nil {
		t.Fatal(err)
	}
	want := map[Class]Rule{
		StoreRead: {Every: 3, Max: 2},
		SlowJob:   {Every: 4, Max: 1, Delay: 50 * time.Millisecond},
		HTTPError: {Every: 5, Max: 0},
	}
	if len(rules) != len(want) {
		t.Fatalf("parsed %d rules, want %d", len(rules), len(want))
	}
	for c, r := range want {
		if rules[c] != r {
			t.Errorf("rule[%s] = %+v, want %+v", c, rules[c], r)
		}
	}

	all, err := ParseRules("all:2:1")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(Classes()) {
		t.Errorf(`"all" expanded to %d rules, want %d`, len(all), len(Classes()))
	}

	for _, bad := range []string{"nope:1:1", "store_read:0:1", "store_read:1", "store_read:1:1:xyz", "store_read:1:-1"} {
		if _, err := ParseRules(bad); err == nil {
			t.Errorf("ParseRules(%q) accepted", bad)
		}
	}

	if inj, err := FromSpec(1, "  "); err != nil || inj != nil {
		t.Errorf("FromSpec(empty) = (%v, %v), want (nil, nil)", inj, err)
	}
	if inj, err := FromSpec(1, "worker_panic:2:1"); err != nil || inj == nil {
		t.Errorf("FromSpec(valid) = (%v, %v)", inj, err)
	}
}

func TestMiddlewareInjectsErrorAndDrop(t *testing.T) {
	next := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, "ok")
	})

	// HTTPError every request: the client sees 503 with a JSON error body.
	inj := New(Config{Seed: 1, Rules: map[Class]Rule{HTTPError: {Every: 1, Max: 1}}})
	srv := httptest.NewServer(Middleware(inj, next))
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &e); err != nil || !strings.Contains(e.Error, "http_error") {
		t.Errorf("injected 503 body = %q (%v)", body, err)
	}
	// Budget exhausted: the next request passes through.
	resp, err = http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("post-budget status = %d, want 200", resp.StatusCode)
	}

	// HTTPDrop: the client observes a transport error, not a status.
	inj = New(Config{Seed: 1, Rules: map[Class]Rule{HTTPDrop: {Every: 1, Max: 1}}})
	srv2 := httptest.NewServer(Middleware(inj, next))
	defer srv2.Close()
	if resp, err := http.Get(srv2.URL); err == nil {
		resp.Body.Close()
		t.Error("dropped request returned a response, want transport error")
	}
	if inj.Count(HTTPDrop) != 1 {
		t.Errorf("drop count = %d, want 1", inj.Count(HTTPDrop))
	}

	// Nil injector is a pass-through, not a wrapper.
	if got := Middleware(nil, next); got == nil {
		t.Fatal("Middleware(nil) = nil")
	}
}
