package faults_test

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/service"
	"repro/internal/store"
)

// The chaos harness drives the full qsmd stack — client, HTTP transport,
// scheduler, workers, result store — under a seeded fault schedule firing
// every injectable failure class, and asserts the served tables are
// byte-identical to a fault-free run. It is the end-to-end form of the
// repo's determinism claim: first "parallelism doesn't change results",
// now "failures don't change results".
//
// Faults are budgeted (Rule.Max), so the retrying layers are guaranteed to
// converge: the client out-retries the HTTP budget, the scheduler's
// attempt budget out-lasts panics and slowdowns, and the store quarantines
// corruption and recomputes.

// chaosJobs is the workload: one fig7 sweep per seed, small enough that a
// schedule's full double wave stays in test-friendly time.
var chaosJobs = []int64{1, 2, 3, 4, 5, 6}

const chaosExperiment = "fig7"

func chaosOptions(seed int64) experiments.Options {
	return experiments.Options{Seed: seed, Runs: 1, Quick: true}
}

// baseline computes the fault-free tables once per job seed.
func baseline(t *testing.T) map[int64]string {
	t.Helper()
	out := map[int64]string{}
	for _, seed := range chaosJobs {
		res, err := experiments.Run(chaosExperiment, chaosOptions(seed))
		if err != nil {
			t.Fatalf("fault-free %s seed %d: %v", chaosExperiment, seed, err)
		}
		out[seed] = res.String()
	}
	return out
}

// chaosRules arms every fault class with a small period and a bounded
// budget. Periods are chosen well under the number of consultations each
// class sees in one schedule, so every class is guaranteed to fire at
// least once; budgets are small enough that retries always converge.
func chaosRules() map[faults.Class]faults.Rule {
	return map[faults.Class]faults.Rule{
		faults.StoreRead:    {Every: 5, Max: 2},
		faults.StoreWrite:   {Every: 3, Max: 1},
		faults.CorruptEntry: {Every: 2, Max: 2},
		faults.WorkerPanic:  {Every: 4, Max: 1},
		faults.SlowJob:      {Every: 3, Max: 2, Delay: 20 * time.Millisecond},
		faults.HTTPError:    {Every: 4, Max: 3},
		faults.HTTPDrop:     {Every: 5, Max: 3},
	}
}

// chaosStack is one faulted qsmd deployment over a shared cache dir.
type chaosStack struct {
	sched  *service.Scheduler
	server *httptest.Server
	client *service.Client
}

func newChaosStack(t *testing.T, dir string, scheduleSeed int64, inj *faults.Injector) *chaosStack {
	t.Helper()
	st, err := store.OpenConfig(store.Config{
		Dir: dir,
		// A one-entry memory LRU forces most reads to disk, where the
		// corruption and read-error classes act.
		MaxMem: 1,
		Faults: inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	sched, err := service.New(service.Config{
		Store:       st,
		Workers:     2,
		QueueCap:    32,
		Fingerprint: "chaos",
		JobTimeout:  30 * time.Second,
		JobRetries:  3,
		Faults:      inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	server := httptest.NewServer(faults.Middleware(inj, sched.Handler()))
	client := &service.Client{
		BaseURL: server.URL,
		HTTP:    server.Client(),
		Retry: service.RetryPolicy{
			MaxAttempts: 8,
			BaseBackoff: 2 * time.Millisecond,
			MaxBackoff:  20 * time.Millisecond,
			Seed:        scheduleSeed,
		},
		RequestTimeout: 10 * time.Second,
	}
	s := &chaosStack{sched: sched, server: server, client: client}
	t.Cleanup(func() { s.shutdown(t) })
	return s
}

func (s *chaosStack) shutdown(t *testing.T) {
	t.Helper()
	if s.sched != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.sched.Drain(ctx); err != nil {
			t.Errorf("drain: %v", err)
		}
		s.sched = nil
		s.server.Close()
	}
}

// runJob pushes one job through the faulted stack to a fetched result. A
// result fetch can legitimately 404 when the injector corrupted that
// entry's file on read (the store quarantines it, leaving a miss), so the
// fetch loop resubmits to recompute — the same recovery a real client
// performs against a cache that dropped an entry.
func (s *chaosStack) runJob(t *testing.T, ctx context.Context, seed int64) *store.Entry {
	t.Helper()
	req := service.SubmitRequest{
		Experiment: chaosExperiment,
		Seed:       seed,
		Runs:       1,
		Quick:      true,
	}
	for tries := 0; ; tries++ {
		js, err := s.client.Submit(ctx, req)
		if err != nil {
			t.Fatalf("submit seed %d: %v", seed, err)
		}
		if js.State != service.StateDone {
			if js, err = s.client.Wait(ctx, js.ID, 5*time.Millisecond, nil); err != nil {
				t.Fatalf("wait seed %d: %v", seed, err)
			}
		}
		if js.State != service.StateDone {
			t.Fatalf("job seed %d = %s (%s), want done", seed, js.State, js.Error)
		}
		e, err := s.client.Result(ctx, js.ResultKey)
		if err == nil {
			return e
		}
		if tries >= 4 {
			t.Fatalf("result seed %d unavailable after %d recomputes: %v", seed, tries, err)
		}
	}
}

// TestChaosSchedulesMatchFaultFree is the headline chaos sweep (the CI
// smoke job selects it with -run Chaos): three seeded schedules, each
// running the workload twice — once against a fresh cache and once
// against a restarted stack over the same cache dir, which forces the
// cold-read path where corruption bites. Every fault class must fire at
// least once per schedule, and every served table must be byte-identical
// to the fault-free baseline.
func TestChaosSchedulesMatchFaultFree(t *testing.T) {
	want := baseline(t)
	ctx := context.Background()
	for _, scheduleSeed := range []int64{101, 202, 303} {
		t.Run(fmt.Sprintf("schedule-%d", scheduleSeed), func(t *testing.T) {
			inj := faults.New(faults.Config{Seed: scheduleSeed, Rules: chaosRules()})
			dir := t.TempDir()

			for wave := 1; wave <= 2; wave++ {
				stack := newChaosStack(t, dir, scheduleSeed, inj)
				for _, seed := range chaosJobs {
					e := stack.runJob(t, ctx, seed)
					if e.Tables != want[seed] {
						t.Errorf("wave %d seed %d: tables diverged from fault-free run\nfaulted:\n%s\nfault-free:\n%s",
							wave, seed, e.Tables, want[seed])
					}
				}
				// Restarting the stack over the same cache dir empties the
				// memory LRU, so wave 2's admission reads come from disk.
				stack.shutdown(t)
			}

			// Only the classes this harness arms can fire; the peer classes
			// need the cluster harness below.
			assertClassesFired(t, inj, chaosRules(), scheduleSeed)
		})
	}
}

// assertClassesFired checks every armed class fired at least once under the
// schedule.
func assertClassesFired(t *testing.T, inj *faults.Injector, rules map[faults.Class]faults.Rule, scheduleSeed int64) {
	t.Helper()
	rec := inj.Metrics()
	for c := range rules {
		ctr := rec.FindCounter("faults", "injected", "class="+c.String())
		if ctr == nil || ctr.Value() < 1 {
			t.Errorf("fault class %s never fired under schedule %d (counts: %s)",
				c, scheduleSeed, chaosCounts(inj))
		}
	}
}

func chaosCounts(inj *faults.Injector) string {
	out := ""
	for _, c := range faults.Classes() {
		out += fmt.Sprintf("%s=%d ", c, inj.Count(c))
	}
	return out
}

// ---- cluster chaos ----
//
// The cluster chaos sweep extends the determinism claim across node
// boundaries: a 3-node sharded cluster, every single-node fault class PLUS
// peer_down and peer_slow firing on inter-node requests, one node killed
// outright mid-run — and every table served anywhere in the cluster must
// still be byte-identical to the fault-free baseline. Forwarding failures
// degrade to local recomputation, and the simulator's determinism makes
// that recomputation indistinguishable from the owner's copy.

// clusterChaosRules arms the single-node schedule plus the peer classes.
func clusterChaosRules() map[faults.Class]faults.Rule {
	rules := chaosRules()
	rules[faults.PeerDown] = faults.Rule{Every: 7, Max: 3}
	rules[faults.PeerSlow] = faults.Rule{Every: 5, Max: 3, Delay: 10 * time.Millisecond}
	return rules
}

// chaosSwap lets a node's httptest server start before the node exists.
type chaosSwap struct {
	mu sync.Mutex
	h  http.Handler
}

func (s *chaosSwap) set(h http.Handler) {
	s.mu.Lock()
	s.h = h
	s.mu.Unlock()
}

func (s *chaosSwap) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	h := s.h
	s.mu.Unlock()
	if h == nil {
		http.Error(w, "node not ready", http.StatusServiceUnavailable)
		return
	}
	h.ServeHTTP(w, r)
}

// chaosClusterNode is one member of the chaos cluster.
type chaosClusterNode struct {
	name   string
	server *httptest.Server
	sched  *service.Scheduler
	node   *cluster.Node
	client *service.Client
}

// newChaosCluster builds an n-node cluster whose stores, schedulers, HTTP
// middleware, and peer transports all share one seeded injector.
func newChaosCluster(t *testing.T, n int, scheduleSeed int64, inj *faults.Injector) []*chaosClusterNode {
	t.Helper()
	nodes := make([]*chaosClusterNode, n)
	swaps := make([]*chaosSwap, n)
	urls := make([]string, n)
	for i := range nodes {
		swaps[i] = &chaosSwap{}
		server := httptest.NewServer(swaps[i])
		t.Cleanup(server.Close)
		urls[i] = server.URL
		nodes[i] = &chaosClusterNode{name: fmt.Sprintf("n%d", i), server: server}
	}
	for i, cn := range nodes {
		st, err := store.OpenConfig(store.Config{Dir: t.TempDir(), MaxMem: 1, Faults: inj})
		if err != nil {
			t.Fatal(err)
		}
		var nodePtr atomic.Pointer[cluster.Node]
		sched, err := service.New(service.Config{
			Store:       st,
			Workers:     2,
			QueueCap:    32,
			Fingerprint: "chaos",
			NodeName:    cn.name,
			JobTimeout:  30 * time.Second,
			JobRetries:  3,
			Faults:      inj,
			StateHook: func(js service.JobStatus) {
				if nd := nodePtr.Load(); nd != nil {
					nd.JobStateHook(js)
				}
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		cn.sched = sched
		peers := make([]string, 0, n-1)
		for j, u := range urls {
			if j != i {
				peers = append(peers, u)
			}
		}
		nd, err := cluster.New(cluster.Config{
			Self:           cn.server.URL,
			Peers:          peers,
			Replicas:       2,
			VNodes:         16,
			RingSeed:       scheduleSeed,
			Store:          st,
			Sched:          sched,
			Faults:         inj,
			HealthInterval: -1,
		})
		if err != nil {
			t.Fatal(err)
		}
		cn.node = nd
		nodePtr.Store(nd)
		swaps[i].set(faults.Middleware(inj, nd.Handler()))
		cn.client = &service.Client{
			BaseURL: cn.server.URL,
			Retry: service.RetryPolicy{
				MaxAttempts: 8,
				BaseBackoff: 2 * time.Millisecond,
				MaxBackoff:  20 * time.Millisecond,
				Seed:        scheduleSeed,
			},
			RequestTimeout: 10 * time.Second,
		}
		t.Cleanup(func() {
			nd.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			if err := sched.Drain(ctx); err != nil {
				t.Errorf("drain %s: %v", cn.name, err)
			}
		})
	}
	return nodes
}

// runClusterJob pushes one job through the given front node to a fetched
// result. On top of runJob's quarantine recovery, a cluster poll can fail
// outright when a peer fault downs the node a submit was forwarded to (the
// forwarded job ID is unknown everywhere else), so a failed wait or fetch
// resubmits from scratch — which then computes locally on the front node,
// byte-identically, because the owner is marked down.
func runClusterJob(t *testing.T, ctx context.Context, cn *chaosClusterNode, seed int64) *store.Entry {
	t.Helper()
	req := service.SubmitRequest{
		Experiment: chaosExperiment,
		Seed:       seed,
		Runs:       1,
		Quick:      true,
	}
	for tries := 0; ; tries++ {
		fatal := func(stage string, err error) {
			t.Fatalf("%s seed %d via %s after %d tries: %v", stage, seed, cn.name, tries, err)
		}
		js, err := cn.client.Submit(ctx, req)
		if err != nil {
			if tries >= 6 {
				fatal("submit", err)
			}
			continue
		}
		if js.State != service.StateDone {
			if js, err = cn.client.Wait(ctx, js.ID, 5*time.Millisecond, nil); err != nil {
				if tries >= 6 {
					fatal("wait", err)
				}
				continue
			}
		}
		if js.State != service.StateDone {
			t.Fatalf("job seed %d via %s = %s (%s), want done", seed, cn.name, js.State, js.Error)
		}
		e, err := cn.client.Result(ctx, js.ResultKey)
		if err == nil {
			return e
		}
		if tries >= 6 {
			fatal("result", err)
		}
	}
}

// TestClusterChaosMatchesFaultFree: two seeded schedules over a 3-node
// cluster with every fault class armed. Each schedule round-robins the
// workload across live front nodes, probes peer health between jobs (so
// downed peers recover and the peer classes keep firing), kills one node
// for good halfway through, and requires every served table to be
// byte-identical to the fault-free baseline.
func TestClusterChaosMatchesFaultFree(t *testing.T) {
	want := baseline(t)
	ctx := context.Background()
	for _, scheduleSeed := range []int64{11, 22} {
		t.Run(fmt.Sprintf("schedule-%d", scheduleSeed), func(t *testing.T) {
			inj := faults.New(faults.Config{Seed: scheduleSeed, Rules: clusterChaosRules()})
			nodes := newChaosCluster(t, 3, scheduleSeed, inj)
			victim := nodes[2]
			live := nodes[:2]

			for i, seed := range chaosJobs {
				if i == len(chaosJobs)/2 {
					// Halfway: one node dies mid-run and stays dead. Keys it
					// owned now compute on whoever receives the submit.
					victim.server.Close()
				}
				front := nodes[i%3]
				if i >= len(chaosJobs)/2 {
					front = live[i%2]
				}
				e := runClusterJob(t, ctx, front, seed)
				if e.Tables != want[seed] {
					t.Errorf("seed %d via %s: tables diverged from fault-free run\nfaulted:\n%s\nfault-free:\n%s",
						seed, front.name, e.Tables, want[seed])
				}
				// Re-probe peers so a node downed by an injected peer fault
				// (not the real kill) comes back for the next job.
				for _, cn := range live {
					cn.node.CheckPeers(ctx)
				}
			}

			// Second pass over the surviving nodes: every result is now
			// cached or replicated somewhere reachable, and must still match.
			for i, seed := range chaosJobs {
				e := runClusterJob(t, ctx, live[i%2], seed)
				if e.Tables != want[seed] {
					t.Errorf("second pass seed %d: tables diverged\nfaulted:\n%s\nfault-free:\n%s",
						seed, e.Tables, want[seed])
				}
			}

			assertClassesFired(t, inj, clusterChaosRules(), scheduleSeed)
		})
	}
}
