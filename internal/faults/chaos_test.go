package faults_test

import (
	"context"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/service"
	"repro/internal/store"
)

// The chaos harness drives the full qsmd stack — client, HTTP transport,
// scheduler, workers, result store — under a seeded fault schedule firing
// every injectable failure class, and asserts the served tables are
// byte-identical to a fault-free run. It is the end-to-end form of the
// repo's determinism claim: first "parallelism doesn't change results",
// now "failures don't change results".
//
// Faults are budgeted (Rule.Max), so the retrying layers are guaranteed to
// converge: the client out-retries the HTTP budget, the scheduler's
// attempt budget out-lasts panics and slowdowns, and the store quarantines
// corruption and recomputes.

// chaosJobs is the workload: one fig7 sweep per seed, small enough that a
// schedule's full double wave stays in test-friendly time.
var chaosJobs = []int64{1, 2, 3, 4, 5, 6}

const chaosExperiment = "fig7"

func chaosOptions(seed int64) experiments.Options {
	return experiments.Options{Seed: seed, Runs: 1, Quick: true}
}

// baseline computes the fault-free tables once per job seed.
func baseline(t *testing.T) map[int64]string {
	t.Helper()
	out := map[int64]string{}
	for _, seed := range chaosJobs {
		res, err := experiments.Run(chaosExperiment, chaosOptions(seed))
		if err != nil {
			t.Fatalf("fault-free %s seed %d: %v", chaosExperiment, seed, err)
		}
		out[seed] = res.String()
	}
	return out
}

// chaosRules arms every fault class with a small period and a bounded
// budget. Periods are chosen well under the number of consultations each
// class sees in one schedule, so every class is guaranteed to fire at
// least once; budgets are small enough that retries always converge.
func chaosRules() map[faults.Class]faults.Rule {
	return map[faults.Class]faults.Rule{
		faults.StoreRead:    {Every: 5, Max: 2},
		faults.StoreWrite:   {Every: 3, Max: 1},
		faults.CorruptEntry: {Every: 2, Max: 2},
		faults.WorkerPanic:  {Every: 4, Max: 1},
		faults.SlowJob:      {Every: 3, Max: 2, Delay: 20 * time.Millisecond},
		faults.HTTPError:    {Every: 4, Max: 3},
		faults.HTTPDrop:     {Every: 5, Max: 3},
	}
}

// chaosStack is one faulted qsmd deployment over a shared cache dir.
type chaosStack struct {
	sched  *service.Scheduler
	server *httptest.Server
	client *service.Client
}

func newChaosStack(t *testing.T, dir string, scheduleSeed int64, inj *faults.Injector) *chaosStack {
	t.Helper()
	st, err := store.OpenConfig(store.Config{
		Dir: dir,
		// A one-entry memory LRU forces most reads to disk, where the
		// corruption and read-error classes act.
		MaxMem: 1,
		Faults: inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	sched, err := service.New(service.Config{
		Store:       st,
		Workers:     2,
		QueueCap:    32,
		Fingerprint: "chaos",
		JobTimeout:  30 * time.Second,
		JobRetries:  3,
		Faults:      inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	server := httptest.NewServer(faults.Middleware(inj, sched.Handler()))
	client := &service.Client{
		BaseURL: server.URL,
		HTTP:    server.Client(),
		Retry: service.RetryPolicy{
			MaxAttempts: 8,
			BaseBackoff: 2 * time.Millisecond,
			MaxBackoff:  20 * time.Millisecond,
			Seed:        scheduleSeed,
		},
		RequestTimeout: 10 * time.Second,
	}
	s := &chaosStack{sched: sched, server: server, client: client}
	t.Cleanup(func() { s.shutdown(t) })
	return s
}

func (s *chaosStack) shutdown(t *testing.T) {
	t.Helper()
	if s.sched != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.sched.Drain(ctx); err != nil {
			t.Errorf("drain: %v", err)
		}
		s.sched = nil
		s.server.Close()
	}
}

// runJob pushes one job through the faulted stack to a fetched result. A
// result fetch can legitimately 404 when the injector corrupted that
// entry's file on read (the store quarantines it, leaving a miss), so the
// fetch loop resubmits to recompute — the same recovery a real client
// performs against a cache that dropped an entry.
func (s *chaosStack) runJob(t *testing.T, ctx context.Context, seed int64) *store.Entry {
	t.Helper()
	req := service.SubmitRequest{
		Experiment: chaosExperiment,
		Seed:       seed,
		Runs:       1,
		Quick:      true,
	}
	for tries := 0; ; tries++ {
		js, err := s.client.Submit(ctx, req)
		if err != nil {
			t.Fatalf("submit seed %d: %v", seed, err)
		}
		if js.State != service.StateDone {
			if js, err = s.client.Wait(ctx, js.ID, 5*time.Millisecond, nil); err != nil {
				t.Fatalf("wait seed %d: %v", seed, err)
			}
		}
		if js.State != service.StateDone {
			t.Fatalf("job seed %d = %s (%s), want done", seed, js.State, js.Error)
		}
		e, err := s.client.Result(ctx, js.ResultKey)
		if err == nil {
			return e
		}
		if tries >= 4 {
			t.Fatalf("result seed %d unavailable after %d recomputes: %v", seed, tries, err)
		}
	}
}

// TestChaosSchedulesMatchFaultFree is the headline chaos sweep (the CI
// smoke job selects it with -run Chaos): three seeded schedules, each
// running the workload twice — once against a fresh cache and once
// against a restarted stack over the same cache dir, which forces the
// cold-read path where corruption bites. Every fault class must fire at
// least once per schedule, and every served table must be byte-identical
// to the fault-free baseline.
func TestChaosSchedulesMatchFaultFree(t *testing.T) {
	want := baseline(t)
	ctx := context.Background()
	for _, scheduleSeed := range []int64{101, 202, 303} {
		t.Run(fmt.Sprintf("schedule-%d", scheduleSeed), func(t *testing.T) {
			inj := faults.New(faults.Config{Seed: scheduleSeed, Rules: chaosRules()})
			dir := t.TempDir()

			for wave := 1; wave <= 2; wave++ {
				stack := newChaosStack(t, dir, scheduleSeed, inj)
				for _, seed := range chaosJobs {
					e := stack.runJob(t, ctx, seed)
					if e.Tables != want[seed] {
						t.Errorf("wave %d seed %d: tables diverged from fault-free run\nfaulted:\n%s\nfault-free:\n%s",
							wave, seed, e.Tables, want[seed])
					}
				}
				// Restarting the stack over the same cache dir empties the
				// memory LRU, so wave 2's admission reads come from disk.
				stack.shutdown(t)
			}

			rec := inj.Metrics()
			for _, c := range faults.Classes() {
				ctr := rec.FindCounter("faults", "injected", "class="+c.String())
				if ctr == nil || ctr.Value() < 1 {
					t.Errorf("fault class %s never fired under schedule %d (counts: %s)",
						c, scheduleSeed, chaosCounts(inj))
				}
			}
		})
	}
}

func chaosCounts(inj *faults.Injector) string {
	out := ""
	for _, c := range faults.Classes() {
		out += fmt.Sprintf("%s=%d ", c, inj.Count(c))
	}
	return out
}
