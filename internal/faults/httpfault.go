package faults

import (
	"net/http"

	"repro/internal/obs"
)

// Middleware wraps an HTTP handler with the injector's HTTP fault classes:
// HTTPDrop aborts the response mid-flight (the client observes a connection
// reset or EOF, exercising its transport-error retry path) and HTTPError
// replaces the response with a 503 carrying the service's JSON error shape
// (exercising the status-code retry path). A nil injector passes every
// request through untouched.
//
// When the request context carries an obs.TraceContext (the service's trace
// middleware runs outside this one), every injected HTTP fault is recorded
// against the request's trace: an instant span event on the http row and a
// structured log line carrying both the trace ID and the fault class.
func Middleware(inj *Injector, next http.Handler) http.Handler {
	if inj == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		tc := obs.TraceContextFrom(r.Context())
		if inj.Fire(HTTPDrop) {
			tc.Instant("http", "fault:"+HTTPDrop.String(), obs.WArg{Key: "fault", Val: HTTPDrop.String()})
			tc.Logger().Warn("injected http fault", "fault", HTTPDrop.String(), "method", r.Method, "path", r.URL.Path)
			// net/http recovers ErrAbortHandler quietly and closes the
			// connection without writing a response.
			panic(http.ErrAbortHandler)
		}
		if err := inj.Err(HTTPError, "http "+r.Method+" "+r.URL.Path); err != nil {
			tc.Instant("http", "fault:"+HTTPError.String(), obs.WArg{Key: "fault", Val: HTTPError.String()})
			tc.Logger().Warn("injected http fault", "fault", HTTPError.String(), "method", r.Method, "path", r.URL.Path)
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte(`{"error":"` + err.Error() + `"}` + "\n"))
			return
		}
		next.ServeHTTP(w, r)
	})
}
