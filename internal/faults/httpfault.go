package faults

import "net/http"

// Middleware wraps an HTTP handler with the injector's HTTP fault classes:
// HTTPDrop aborts the response mid-flight (the client observes a connection
// reset or EOF, exercising its transport-error retry path) and HTTPError
// replaces the response with a 503 carrying the service's JSON error shape
// (exercising the status-code retry path). A nil injector passes every
// request through untouched.
func Middleware(inj *Injector, next http.Handler) http.Handler {
	if inj == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if inj.Fire(HTTPDrop) {
			// net/http recovers ErrAbortHandler quietly and closes the
			// connection without writing a response.
			panic(http.ErrAbortHandler)
		}
		if err := inj.Err(HTTPError, "http "+r.Method+" "+r.URL.Path); err != nil {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte(`{"error":"` + err.Error() + `"}` + "\n"))
			return
		}
		next.ServeHTTP(w, r)
	})
}
