package faults_test

// Streaming chaos: the push-based API under seeded stream faults. Clients
// watch every job over SSE while the injector kills connections mid-stream
// (stream_drop) and stalls writes (stream_stall); the watch layer must
// resume via Last-Event-ID until the terminal event, and every served table
// must stay byte-identical to the fault-free baseline. The cluster variant
// adds peer_down, so streams proxied through a non-owner node survive the
// owner going away (mid-stream failover recomputes locally).

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/service"
)

// streamChaosRules arms the stream classes plus the worker classes that
// make lifecycle streams interesting (retries publish extra running
// states).
func streamChaosRules() map[faults.Class]faults.Rule {
	return map[faults.Class]faults.Rule{
		faults.StreamDrop:  {Every: 3, Max: 4},
		faults.StreamStall: {Every: 4, Max: 3, Delay: 5 * time.Millisecond},
		faults.WorkerPanic: {Every: 4, Max: 1},
		faults.SlowJob:     {Every: 3, Max: 2, Delay: 10 * time.Millisecond},
	}
}

// watchChaosJob pushes one job through the stack and watches it over SSE to
// its terminal state. With monotonic true it asserts the single-node resume
// invariant: event IDs are strictly increasing across every reconnect
// (Last-Event-ID replay neither duplicates nor skips retained events). The
// cluster sweep passes false — a mid-stream owner failover recomputes
// locally under a fresh job whose stream IDs legitimately restart at 1.
func watchChaosJob(t *testing.T, ctx context.Context, client *service.Client, seed int64, monotonic bool) (service.WatchResult, string) {
	t.Helper()
	js, err := client.Submit(ctx, service.SubmitRequest{
		Experiment: chaosExperiment, Seed: seed, Runs: 1, Quick: true,
	})
	if err != nil {
		t.Fatalf("submit seed %d: %v", seed, err)
	}
	var lastID uint64
	res, err := client.WatchJobDetail(ctx, js.ID, 0, func(ev service.StreamEvent) {
		if ev.ID > 0 {
			if monotonic && ev.ID <= lastID {
				t.Errorf("seed %d: event ID %d after %d — resume replayed or reordered", seed, ev.ID, lastID)
			}
			lastID = ev.ID
		}
	})
	if err != nil {
		t.Fatalf("watch seed %d: %v", seed, err)
	}
	if res.Status.State != service.StateDone {
		t.Fatalf("watched job seed %d = %s (%s), want done", seed, res.Status.State, res.Status.Error)
	}
	e, err := client.Result(ctx, res.Status.ResultKey)
	if err != nil {
		t.Fatalf("result seed %d: %v", seed, err)
	}
	return res, e.Tables
}

// TestStreamChaosResumesToFaultFreeTables is the single-node streaming
// chaos sweep: every job is watched (not polled) to completion under
// injected stream kills and stalls, and must land on the fault-free tables.
// The armed schedules guarantee drops actually sever live streams, so the
// reconnect path is provably exercised, not just available.
func TestStreamChaosResumesToFaultFreeTables(t *testing.T) {
	want := baseline(t)
	for _, scheduleSeed := range []int64{77, 177} {
		t.Run(fmt.Sprintf("schedule-%d", scheduleSeed), func(t *testing.T) {
			inj := faults.New(faults.Config{Seed: scheduleSeed, Rules: streamChaosRules()})
			stack := newChaosStack(t, t.TempDir(), scheduleSeed, inj)
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			defer cancel()

			reconnects := 0
			for _, seed := range chaosJobs {
				res, tables := watchChaosJob(t, ctx, stack.client, seed, true)
				if tables != want[seed] {
					t.Errorf("seed %d: tables diverged from fault-free run\nfaulted:\n%s\nfault-free:\n%s",
						seed, tables, want[seed])
				}
				reconnects += res.Reconnects
			}
			if inj.Count(faults.StreamDrop) < 1 {
				t.Errorf("stream_drop never fired under schedule %d (counts: %s)", scheduleSeed, chaosCounts(inj))
			}
			if inj.Count(faults.StreamStall) < 1 {
				t.Errorf("stream_stall never fired under schedule %d (counts: %s)", scheduleSeed, chaosCounts(inj))
			}
			if reconnects < 1 {
				t.Errorf("no watch ever reconnected under schedule %d — the drops severed nothing", scheduleSeed)
			}
		})
	}
}

// TestClusterStreamChaos extends the sweep across node boundaries: jobs
// enter and are watched through non-owner front nodes (streams proxied to
// the owner over HTTP), with peer_down severing the proxy path on top of
// the stream classes. A severed proxy fails over to local recomputation;
// determinism makes the locally served events converge on the same terminal
// tables.
func TestClusterStreamChaos(t *testing.T) {
	want := baseline(t)
	scheduleSeed := int64(88)
	rules := streamChaosRules()
	rules[faults.PeerDown] = faults.Rule{Every: 6, Max: 2}
	inj := faults.New(faults.Config{Seed: scheduleSeed, Rules: rules})
	nodes := newChaosCluster(t, 3, scheduleSeed, inj)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	for i, seed := range chaosJobs {
		front := nodes[i%3]
		_, tables := watchChaosJob(t, ctx, front.client, seed, false)
		if tables != want[seed] {
			t.Errorf("seed %d via %s: tables diverged from fault-free run\nfaulted:\n%s\nfault-free:\n%s",
				seed, front.name, tables, want[seed])
		}
		// Bring peers downed by injected faults back for the next job.
		for _, cn := range nodes {
			cn.node.CheckPeers(ctx)
		}
	}
	if inj.Count(faults.StreamDrop) < 1 || inj.Count(faults.PeerDown) < 1 {
		t.Errorf("stream_drop/peer_down never fired (counts: %s)", chaosCounts(inj))
	}
}
