// Package faults is a deterministic, seed-driven fault-injection layer for
// the qsmd serving stack. The store, scheduler, and HTTP layer each accept
// an optional *Injector and consult it at their fault sites: store read and
// write I/O, cache-entry bytes coming off disk, the worker compute path
// (panics and artificial slowness), and HTTP responses (5xx and dropped
// connections).
//
// Decisions are a pure function of (seed, fault class, per-class decision
// sequence number): class c fires on every Rule.Every-th consultation, at a
// seeded phase offset, until Rule.Max fires have been injected. A schedule
// is therefore randomized by its seed but exactly reproducible from it, and
// every class's budget is bounded, so a system under injection that retries
// and degrades correctly must eventually converge to the fault-free answer.
// The chaos harness (chaos_test.go) runs experiment sweeps under such
// schedules and asserts the final tables are byte-identical to a fault-free
// run — extending the repo's determinism guarantee from "parallelism doesn't
// change results" to "failures don't change results".
//
// Every injection is counted in an internal obs metrics registry
// (faults/injected{class=...}), so tests and operators can assert which
// fault classes a run actually exercised. The nil *Injector is valid and
// injects nothing; all methods are nil-safe, letting production code wire
// the hooks unconditionally.
package faults

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/stats"
)

// Class enumerates the fault sites the stack consults.
type Class int

const (
	// StoreRead injects an I/O error on a cache read.
	StoreRead Class = iota
	// StoreWrite injects an I/O error on a cache write.
	StoreWrite
	// CorruptEntry corrupts cache-entry bytes read from disk (truncation or
	// a byte flip), exercising checksum-on-read and quarantine.
	CorruptEntry
	// WorkerPanic panics inside the service compute path.
	WorkerPanic
	// SlowJob stalls the compute path by Rule.Delay, exercising per-job
	// timeouts and retries.
	SlowJob
	// HTTPError replaces an HTTP response with a 503.
	HTTPError
	// HTTPDrop aborts an HTTP response mid-flight (connection reset).
	HTTPDrop
	// PeerDown fails a cluster peer request before it is sent, as if the
	// peer's node were unreachable, exercising failover to replica owners
	// and local fallback compute.
	PeerDown
	// PeerSlow stalls a cluster peer request by Rule.Delay before sending
	// it, exercising slow-peer timeouts and health detection.
	PeerSlow
	// StreamDrop aborts an event-stream connection mid-stream (between two
	// event writes), exercising client Last-Event-ID resume.
	StreamDrop
	// StreamStall stalls an event-stream write by Rule.Delay, exercising
	// slow-consumer backpressure and heartbeat liveness.
	StreamStall

	numClasses
)

var classNames = [numClasses]string{
	StoreRead:    "store_read",
	StoreWrite:   "store_write",
	CorruptEntry: "corrupt_entry",
	WorkerPanic:  "worker_panic",
	SlowJob:      "slow_job",
	HTTPError:    "http_error",
	HTTPDrop:     "http_drop",
	PeerDown:     "peer_down",
	PeerSlow:     "peer_slow",
	StreamDrop:   "stream_drop",
	StreamStall:  "stream_stall",
}

func (c Class) String() string {
	if c < 0 || c >= numClasses {
		return fmt.Sprintf("faults.Class(%d)", int(c))
	}
	return classNames[c]
}

// Classes lists every fault class, for iteration in tests and tooling.
func Classes() []Class {
	cs := make([]Class, numClasses)
	for i := range cs {
		cs[i] = Class(i)
	}
	return cs
}

// DefaultSlowDelay stalls a slow job when its rule carries no delay.
const DefaultSlowDelay = 25 * time.Millisecond

// Rule schedules one fault class.
type Rule struct {
	// Every fires the fault on every Every-th consultation of this class's
	// site (at a phase offset derived from the injector seed); <= 0 disables
	// the class.
	Every int
	// Max caps the total number of injections; <= 0 means unlimited. Bounded
	// budgets are what let a retrying system converge, so chaos schedules
	// should always set one.
	Max int
	// Delay is how long SlowJob, PeerSlow, and StreamStall stall; zero
	// means DefaultSlowDelay. Other classes ignore it.
	Delay time.Duration
}

// Config seeds an Injector.
type Config struct {
	// Seed drives every phase offset and corruption draw; the same seed and
	// rules reproduce the same schedule.
	Seed int64
	// Rules maps each enabled class to its schedule; absent classes never
	// fire.
	Rules map[Class]Rule
}

// InjectedError is the error every injected I/O fault surfaces as, so tests
// can tell injected failures from real ones with errors.As.
type InjectedError struct {
	Class Class
	// Site describes the consulting call site ("store get", ...).
	Site string
	// N is the 1-based injection count of this class when it fired.
	N uint64
}

func (e *InjectedError) Error() string {
	return fmt.Sprintf("faults: injected %s fault #%d at %s", e.Class, e.N, e.Site)
}

// Injector makes deterministic fault decisions. All methods are safe for
// concurrent use and on a nil receiver (which never injects).
type Injector struct {
	mu    sync.Mutex
	seed  int64
	rules [numClasses]Rule
	off   [numClasses]uint64 // seeded phase offset into the Every cycle
	seq   [numClasses]uint64 // consultations so far
	fired [numClasses]uint64 // injections so far

	rec      *obs.Recorder
	counters [numClasses]*obs.Counter
}

// New builds an injector for the config. A nil rule map yields an injector
// that never fires but still counts zero for every class.
func New(cfg Config) *Injector {
	inj := &Injector{seed: cfg.Seed, rec: obs.New(obs.Config{Metrics: true})}
	for c := Class(0); c < numClasses; c++ {
		inj.counters[c] = inj.rec.Counter("faults", "injected", "class="+c.String())
		r, ok := cfg.Rules[c]
		if !ok || r.Every <= 0 {
			continue
		}
		inj.rules[c] = r
		inj.off[c] = stats.Mix64(uint64(cfg.Seed), uint64(c)) % uint64(r.Every)
	}
	return inj
}

// fire decides one consultation of class c under the lock, returning whether
// the fault fires, its 1-based injection number, and a per-injection draw
// for decisions like corruption position.
func (inj *Injector) fire(c Class) (bool, uint64, uint64) {
	if inj == nil {
		return false, 0, 0
	}
	inj.mu.Lock()
	defer inj.mu.Unlock()
	r := inj.rules[c]
	if r.Every <= 0 {
		return false, 0, 0
	}
	seq := inj.seq[c]
	inj.seq[c]++
	if r.Max > 0 && inj.fired[c] >= uint64(r.Max) {
		return false, 0, 0
	}
	if seq%uint64(r.Every) != inj.off[c] {
		return false, 0, 0
	}
	inj.fired[c]++
	inj.counters[c].Inc()
	return true, inj.fired[c], stats.Mix64(uint64(inj.seed)+uint64(c), inj.fired[c])
}

// Fire consults class c once and reports whether the fault fires.
func (inj *Injector) Fire(c Class) bool {
	fired, _, _ := inj.fire(c)
	return fired
}

// Err consults class c once and returns an *InjectedError when it fires,
// nil otherwise. site labels the consulting call site in the error text.
func (inj *Injector) Err(c Class, site string) error {
	fired, n, _ := inj.fire(c)
	if !fired {
		return nil
	}
	return &InjectedError{Class: c, Site: site, N: n}
}

// CorruptBytes consults CorruptEntry once and, when it fires, returns a
// corrupted copy of data: odd draws truncate it, even draws flip one byte.
// Otherwise (and always on empty data) it returns data unchanged.
func (inj *Injector) CorruptBytes(data []byte) []byte {
	fired, _, draw := inj.fire(CorruptEntry)
	if !fired || len(data) == 0 {
		return data
	}
	out := append([]byte(nil), data...)
	if draw&1 == 1 {
		return out[:len(out)/2]
	}
	out[int(draw%uint64(len(out)))] ^= 0x42
	return out
}

// SlowDelay consults SlowJob once and returns the injected stall duration,
// or zero when the class does not fire.
func (inj *Injector) SlowDelay() time.Duration {
	return inj.Delay(SlowJob)
}

// Delay consults a stall-shaped class (SlowJob, PeerSlow, StreamStall) once
// and returns the injected stall duration, or zero when the class does not
// fire. A rule without a delay stalls DefaultSlowDelay.
func (inj *Injector) Delay(c Class) time.Duration {
	fired, _, _ := inj.fire(c)
	if !fired {
		return 0
	}
	inj.mu.Lock()
	d := inj.rules[c].Delay
	inj.mu.Unlock()
	if d <= 0 {
		d = DefaultSlowDelay
	}
	return d
}

// Count returns how many faults of class c have been injected so far.
func (inj *Injector) Count(c Class) uint64 {
	if inj == nil {
		return 0
	}
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.fired[c]
}

// Metrics returns a point-in-time snapshot of the injector's obs registry
// (one faults/injected counter per class). The snapshot is private to the
// caller and safe to read while injection continues.
func (inj *Injector) Metrics() *obs.Recorder {
	snap := obs.New(obs.Config{Metrics: true})
	if inj == nil {
		return snap
	}
	inj.mu.Lock()
	defer inj.mu.Unlock()
	snap.Merge(inj.rec)
	return snap
}

// WriteMetricsText dumps the injection counters in Prometheus text format.
func (inj *Injector) WriteMetricsText(w io.Writer) error {
	return inj.Metrics().WritePrometheusText(w)
}

// ParseRules parses a compact schedule spec: comma-separated
// "class:every:max[:delay]" clauses, where class is a Class name
// (store_read, store_write, corrupt_entry, worker_panic, slow_job,
// http_error, http_drop, peer_down, peer_slow, stream_drop, stream_stall)
// or "all" to apply one rule to every class, and delay (slow_job,
// peer_slow, and stream_stall) is a Go duration. Example:
//
//	store_read:3:2,slow_job:4:1:50ms,http_error:5:2
func ParseRules(spec string) (map[Class]Rule, error) {
	rules := map[Class]Rule{}
	for _, clause := range strings.Split(spec, ",") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		parts := strings.Split(clause, ":")
		if len(parts) < 3 || len(parts) > 4 {
			return nil, fmt.Errorf("faults: clause %q is not class:every:max[:delay]", clause)
		}
		every, err := strconv.Atoi(parts[1])
		if err != nil || every <= 0 {
			return nil, fmt.Errorf("faults: clause %q: every must be a positive integer", clause)
		}
		max, err := strconv.Atoi(parts[2])
		if err != nil || max < 0 {
			return nil, fmt.Errorf("faults: clause %q: max must be a non-negative integer", clause)
		}
		r := Rule{Every: every, Max: max}
		if len(parts) == 4 {
			d, err := time.ParseDuration(parts[3])
			if err != nil {
				return nil, fmt.Errorf("faults: clause %q: bad delay: %v", clause, err)
			}
			r.Delay = d
		}
		if parts[0] == "all" {
			for c := Class(0); c < numClasses; c++ {
				rules[c] = r
			}
			continue
		}
		cls, ok := classByName(parts[0])
		if !ok {
			return nil, fmt.Errorf("faults: unknown class %q (have %v or all)", parts[0], classNames)
		}
		rules[cls] = r
	}
	return rules, nil
}

func classByName(name string) (Class, bool) {
	for c := Class(0); c < numClasses; c++ {
		if classNames[c] == name {
			return c, true
		}
	}
	return 0, false
}

// FromSpec builds an injector from a seed and a ParseRules spec string. An
// empty spec returns a nil injector (no injection anywhere).
func FromSpec(seed int64, spec string) (*Injector, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	rules, err := ParseRules(spec)
	if err != nil {
		return nil, err
	}
	return New(Config{Seed: seed, Rules: rules}), nil
}
