package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"runtime/debug"

	"repro/internal/experiments"
)

// keyPayload is the canonical encoding a cache key is hashed over. Struct
// field order fixes the JSON field order, so the encoding is canonical;
// TestOptionsKeyCanonicalJSON in internal/experiments pins the nested
// options encoding.
type keyPayload struct {
	Experiment  string                 `json:"experiment"`
	Options     experiments.OptionsKey `json:"options"`
	Fingerprint string                 `json:"fingerprint"`
}

// ResultKey returns the content address of one experiment configuration:
// the hex SHA-256 of the canonical JSON encoding of (experiment id, keyed
// options, code fingerprint). Identical submissions hash to identical keys;
// a code change rolls the fingerprint and with it every key.
func ResultKey(experiment string, opt experiments.OptionsKey, fingerprint string) string {
	b, err := json.Marshal(keyPayload{experiment, opt, fingerprint})
	if err != nil {
		// keyPayload is plain data; encoding cannot fail.
		panic(fmt.Sprintf("store: encoding key payload: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// ShortKey abbreviates a content address for span args and log lines, where
// the full 64 hex digits are noise.
func ShortKey(k string) string {
	if len(k) > 12 {
		return k[:12]
	}
	return k
}

// ValidKey reports whether k has the shape ResultKey produces (64 hex
// digits). Serving layers check it before touching the filesystem, so an
// attacker-supplied key cannot traverse outside the cache directory.
func ValidKey(k string) bool {
	if len(k) != 2*sha256.Size {
		return false
	}
	for i := 0; i < len(k); i++ {
		c := k[i]
		if !('0' <= c && c <= '9' || 'a' <= c && c <= 'f') {
			return false
		}
	}
	return true
}

// Fingerprint identifies the code producing results, for inclusion in cache
// keys: the VCS revision stamped into the binary (suffixed "+dirty" for
// modified trees), else the main module's checksum, else "dev". Builds of
// identical source fingerprint identically; test and `go run` binaries
// (which carry no VCS stamp) fall back to a process-stable value.
func Fingerprint() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	var rev, modified string
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			modified = s.Value
		}
	}
	if rev != "" {
		if modified == "true" {
			return rev + "+dirty"
		}
		return rev
	}
	if bi.Main.Sum != "" {
		return bi.Main.Sum
	}
	return "dev"
}
