package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/faults"
)

func testEntry(key, tables string) *Entry {
	return &Entry{
		Key:         key,
		Experiment:  "fig7",
		Options:     experiments.OptionsKey{Seed: 1, Runs: 2, Quick: true},
		Fingerprint: "test",
		Tables:      tables,
		CreatedAt:   time.Unix(0, 0).UTC(),
	}
}

func testKey(i int) string {
	return ResultKey(fmt.Sprintf("exp%d", i), experiments.OptionsKey{Seed: int64(i)}, "test")
}

func TestResultKeyStable(t *testing.T) {
	k := ResultKey("fig7", experiments.OptionsKey{Seed: 1, Runs: 2, Quick: true}, "fp")
	// Pinned: changing the canonical encoding silently invalidates every
	// existing cache; this failure makes that a deliberate act.
	const want = "6b2265dfe6c3adde8a575061d8c44411ae4b1c00e35291475466e203ea7d5e55"
	if k != want {
		t.Errorf("ResultKey = %s, want %s", k, want)
	}
	if k2 := ResultKey("fig7", experiments.OptionsKey{Seed: 1, Runs: 2, Quick: true}, "fp"); k2 != k {
		t.Errorf("identical payloads keyed differently: %s vs %s", k, k2)
	}
	for _, other := range []string{
		ResultKey("fig6", experiments.OptionsKey{Seed: 1, Runs: 2, Quick: true}, "fp"),
		ResultKey("fig7", experiments.OptionsKey{Seed: 2, Runs: 2, Quick: true}, "fp"),
		ResultKey("fig7", experiments.OptionsKey{Seed: 1, Runs: 2, Quick: true}, "fp2"),
	} {
		if other == k {
			t.Errorf("distinct payloads collided on %s", k)
		}
	}
}

func TestValidKey(t *testing.T) {
	if k := testKey(0); !ValidKey(k) {
		t.Errorf("ValidKey(%q) = false", k)
	}
	for _, bad := range []string{
		"", "short", strings.Repeat("g", 64), strings.Repeat("A", 64),
		"../../etc/passwd", strings.Repeat("0", 63), strings.Repeat("0", 65),
	} {
		if ValidKey(bad) {
			t.Errorf("ValidKey(%q) = true", bad)
		}
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(1)
	if _, ok, err := s.Get(key); err != nil || ok {
		t.Fatalf("Get on empty store = (%v, %v)", ok, err)
	}
	e := testEntry(key, "== T ==\na  1\n")
	if err := s.Put(e); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.Get(key)
	if err != nil || !ok {
		t.Fatalf("Get after Put = (%v, %v)", ok, err)
	}
	if got.Tables != e.Tables || got.Experiment != e.Experiment {
		t.Errorf("Get returned %+v, want %+v", got, e)
	}

	// A fresh store over the same directory must serve the entry from disk.
	s2, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	got2, ok, err := s2.Get(key)
	if err != nil || !ok {
		t.Fatalf("disk Get = (%v, %v)", ok, err)
	}
	if got2.Tables != e.Tables {
		t.Errorf("disk entry tables = %q, want %q", got2.Tables, e.Tables)
	}
	if s2.MemLen() != 1 {
		t.Errorf("disk hit not promoted into memory: MemLen = %d", s2.MemLen())
	}
}

func TestGetMalformedKey(t *testing.T) {
	s, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Get("../escape"); err == nil {
		t.Error("Get with malformed key did not error")
	}
	if err := s.Put(testEntry("nothex", "x")); err == nil {
		t.Error("Put with malformed key did not error")
	}
}

func TestCorruptEntryIsQuarantinedMiss(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(2)
	if err := os.WriteFile(s.Path(key), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.Get(key); err != nil || ok {
		t.Fatalf("Get over corrupt entry = (%v, %v), want miss", ok, err)
	}
	if _, err := os.Stat(s.Path(key)); !errors.Is(err, os.ErrNotExist) {
		t.Error("corrupt entry not moved aside; it would shadow the key forever")
	}
	if _, err := os.Stat(s.QuarantinePath(key)); err != nil {
		t.Errorf("corrupt entry not quarantined for inspection: %v", err)
	}
	if got := s.Metric("entries_quarantined"); got != 1 {
		t.Errorf("entries_quarantined = %d, want 1", got)
	}
}

// TestChecksumCatchesTamperedEntry flips a byte inside a stored entry's
// tables while keeping the JSON valid: only checksum-on-read can catch
// that, and it must quarantine rather than serve the wrong bytes.
func TestChecksumCatchesTamperedEntry(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(3)
	if err := s.Put(testEntry(key, "== T ==\na  1\n")); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(s.Path(key))
	if err != nil {
		t.Fatal(err)
	}
	tampered := strings.Replace(string(data), "a  1", "a  2", 1)
	if tampered == string(data) {
		t.Fatal("tamper target not found in serialized entry")
	}
	if err := os.WriteFile(s.Path(key), []byte(tampered), 0o644); err != nil {
		t.Fatal(err)
	}

	// A cold store must detect the mismatch and quarantine.
	s2, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s2.Get(key); err != nil || ok {
		t.Fatalf("Get over tampered entry = (%v, %v), want clean miss", ok, err)
	}
	if s2.Metric("checksum_failures") != 1 || s2.Metric("entries_quarantined") != 1 {
		t.Errorf("metrics = checksum %d quarantined %d, want 1/1",
			s2.Metric("checksum_failures"), s2.Metric("entries_quarantined"))
	}
	if _, err := os.Stat(s2.QuarantinePath(key)); err != nil {
		t.Errorf("tampered entry not quarantined: %v", err)
	}
	// The miss recomputes and the fresh entry serves again.
	e, hit, err := s2.GetOrCompute(key, func() (*Entry, error) { return testEntry(key, "recomputed"), nil })
	if err != nil || hit {
		t.Fatalf("recompute after quarantine = (hit=%v, %v)", hit, err)
	}
	if e.Tables != "recomputed" {
		t.Errorf("recomputed tables = %q", e.Tables)
	}
}

func TestEntryChecksumRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(4)
	if err := s.Put(testEntry(key, "tables")); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	e, ok, err := s2.Get(key)
	if err != nil || !ok {
		t.Fatalf("disk Get = (%v, %v)", ok, err)
	}
	if e.Checksum == "" || !e.ChecksumOK() {
		t.Errorf("round-tripped entry checksum %q invalid", e.Checksum)
	}
	// Legacy entries without a checksum still load.
	legacy := testEntry(testKey(5), "old")
	data, _ := json.Marshal(legacy)
	if err := os.WriteFile(s2.Path(legacy.Key), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s2.Get(legacy.Key); err != nil || !ok {
		t.Errorf("checksum-less legacy entry = (%v, %v), want hit", ok, err)
	}
}

// TestUnwritableDirDegradesToComputeThrough removes the cache directory out
// from under the store: GetOrCompute must still serve computed results
// (cached in memory only), not fail.
func TestUnwritableDirDegradesToComputeThrough(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	key := testKey(6)
	e, hit, err := s.GetOrCompute(key, func() (*Entry, error) { return testEntry(key, "computed"), nil })
	if err != nil || hit {
		t.Fatalf("GetOrCompute with unwritable dir = (hit=%v, %v), want computed success", hit, err)
	}
	if e.Tables != "computed" {
		t.Errorf("tables = %q", e.Tables)
	}
	if got := s.Metric("writes_degraded"); got != 1 {
		t.Errorf("writes_degraded = %d, want 1", got)
	}
	// The memory-only entry still serves: no recompute on the next call.
	if _, hit, err := s.GetOrCompute(key, func() (*Entry, error) {
		t.Error("recompute despite memory-cached entry")
		return nil, errors.New("unreachable")
	}); err != nil || !hit {
		t.Errorf("second GetOrCompute = (hit=%v, %v), want memory hit", hit, err)
	}
}

func TestInjectedReadErrorComputesThrough(t *testing.T) {
	dir := t.TempDir()
	plain, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(7)
	if err := plain.Put(testEntry(key, "on disk")); err != nil {
		t.Fatal(err)
	}

	inj := faults.New(faults.Config{Seed: 1, Rules: map[faults.Class]faults.Rule{
		faults.StoreRead: {Every: 1, Max: 1},
	}})
	s, err := OpenConfig(Config{Dir: dir, Faults: inj})
	if err != nil {
		t.Fatal(err)
	}
	// Get itself surfaces the injected error honestly...
	if _, _, err := s.Get(key); err == nil {
		t.Fatal("injected read error not surfaced by Get")
	}
	var ie *faults.InjectedError
	// ...but GetOrCompute degrades to compute-through (budget exhausted, so
	// its own Get succeeds; force a second injector to hit the compute path).
	inj2 := faults.New(faults.Config{Seed: 1, Rules: map[faults.Class]faults.Rule{
		faults.StoreRead: {Every: 1, Max: 1},
	}})
	s2, err := OpenConfig(Config{Dir: dir, Faults: inj2})
	if err != nil {
		t.Fatal(err)
	}
	computed := false
	e, hit, err := s2.GetOrCompute(key, func() (*Entry, error) {
		computed = true
		return testEntry(key, "recomputed"), nil
	})
	if err != nil {
		if errors.As(err, &ie) {
			t.Fatalf("GetOrCompute surfaced the injected error instead of degrading: %v", err)
		}
		t.Fatal(err)
	}
	if !computed || hit {
		t.Errorf("computed=%v hit=%v, want compute-through on read error", computed, hit)
	}
	if e.Tables != "recomputed" {
		t.Errorf("tables = %q", e.Tables)
	}
	if s2.Metric("reads_degraded") != 1 || s2.Metric("read_errors") != 1 {
		t.Errorf("metrics = degraded %d errors %d, want 1/1",
			s2.Metric("reads_degraded"), s2.Metric("read_errors"))
	}
}

func TestInjectedWriteErrorDegradesToMemory(t *testing.T) {
	inj := faults.New(faults.Config{Seed: 1, Rules: map[faults.Class]faults.Rule{
		faults.StoreWrite: {Every: 1, Max: 1},
	}})
	s, err := OpenConfig(Config{Dir: t.TempDir(), Faults: inj})
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(8)
	e, hit, err := s.GetOrCompute(key, func() (*Entry, error) { return testEntry(key, "v"), nil })
	if err != nil || hit || e.Tables != "v" {
		t.Fatalf("GetOrCompute under write fault = (%v, hit=%v, %v)", e, hit, err)
	}
	if _, err := os.Stat(s.Path(key)); !errors.Is(err, os.ErrNotExist) {
		t.Error("injected write fault still produced a disk file")
	}
	if got := s.Metric("writes_degraded"); got != 1 {
		t.Errorf("writes_degraded = %d, want 1", got)
	}
	if inj.Count(faults.StoreWrite) != 1 {
		t.Errorf("injector count = %d, want 1", inj.Count(faults.StoreWrite))
	}
}

func TestInjectedCorruptionQuarantines(t *testing.T) {
	dir := t.TempDir()
	plain, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(9)
	if err := plain.Put(testEntry(key, "pristine")); err != nil {
		t.Fatal(err)
	}
	inj := faults.New(faults.Config{Seed: 4, Rules: map[faults.Class]faults.Rule{
		faults.CorruptEntry: {Every: 1, Max: 1},
	}})
	s, err := OpenConfig(Config{Dir: dir, Faults: inj})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.Get(key); err != nil || ok {
		t.Fatalf("Get over injected corruption = (%v, %v), want miss", ok, err)
	}
	if got := s.Metric("entries_quarantined"); got != 1 {
		t.Errorf("entries_quarantined = %d, want 1", got)
	}
	if inj.Count(faults.CorruptEntry) != 1 {
		t.Errorf("injector count = %d, want 1", inj.Count(faults.CorruptEntry))
	}
}

func TestLRUEviction(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	keys := []string{testKey(10), testKey(11), testKey(12)}
	for _, k := range keys {
		if err := s.Put(testEntry(k, "t "+k)); err != nil {
			t.Fatal(err)
		}
	}
	if s.MemLen() != 2 {
		t.Fatalf("MemLen = %d, want 2", s.MemLen())
	}
	// The evicted entry must still be servable from disk.
	got, ok, err := s.Get(keys[0])
	if err != nil || !ok {
		t.Fatalf("evicted entry not on disk: (%v, %v)", ok, err)
	}
	if got.Tables != "t "+keys[0] {
		t.Errorf("disk entry tables = %q", got.Tables)
	}
}

func TestGetOrComputeSingleFlight(t *testing.T) {
	s, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(20)
	var computes atomic.Int32
	gate := make(chan struct{})
	const callers = 8
	var wg sync.WaitGroup
	hits := make([]bool, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			e, hit, err := s.GetOrCompute(key, func() (*Entry, error) {
				computes.Add(1)
				<-gate // hold the flight open until all callers have queued
				return testEntry(key, "tables"), nil
			})
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
				return
			}
			hits[i] = hit
			if e.Tables != "tables" {
				t.Errorf("caller %d got tables %q", i, e.Tables)
			}
		}(i)
	}
	// Give every caller time to reach the store before releasing the one
	// computation; the count assertion below is the real check.
	time.Sleep(50 * time.Millisecond)
	close(gate)
	wg.Wait()
	if got := computes.Load(); got != 1 {
		t.Errorf("%d concurrent identical requests ran %d computations, want 1", callers, got)
	}
	misses := 0
	for _, h := range hits {
		if !h {
			misses++
		}
	}
	if misses != 1 {
		t.Errorf("%d callers reported a miss, want exactly the computing one", misses)
	}

	// A later call is a plain memory hit with no recomputation.
	if _, hit, err := s.GetOrCompute(key, func() (*Entry, error) {
		t.Error("compute ran on a warm cache")
		return nil, errors.New("unreachable")
	}); err != nil || !hit {
		t.Errorf("warm GetOrCompute = (hit=%v, %v)", hit, err)
	}
}

func TestGetOrComputeErrorNotCached(t *testing.T) {
	s, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(21)
	boom := errors.New("simulation failed")
	if _, _, err := s.GetOrCompute(key, func() (*Entry, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("first call error = %v, want %v", err, boom)
	}
	// The failure must not be cached: the next call recomputes and succeeds.
	e, hit, err := s.GetOrCompute(key, func() (*Entry, error) { return testEntry(key, "ok"), nil })
	if err != nil || hit {
		t.Fatalf("retry after error = (hit=%v, %v)", hit, err)
	}
	if e.Tables != "ok" {
		t.Errorf("retry tables = %q", e.Tables)
	}
}

func TestWriteFileAtomicLeavesNoPartial(t *testing.T) {
	dir := t.TempDir()
	blocker := filepath.Join(dir, "blocker")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Writing under a path whose parent is a regular file fails at temp
	// creation; nothing may be left behind.
	if err := writeFileAtomic(filepath.Join(blocker, "e.json"), []byte("data")); err == nil {
		t.Fatal("writeFileAtomic into a non-directory did not error")
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].Name() != "blocker" {
		t.Errorf("stray files after failed write: %v", ents)
	}
}
