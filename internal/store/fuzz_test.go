package store

import (
	"encoding/json"
	"testing"

	"repro/internal/experiments"
)

// FuzzOptionsKey pins the cache key's canonicalization properties: two
// option sets key identically if and only if they are equal (no aliasing
// between distinct configurations, no instability between identical ones),
// keys survive a JSON round trip of the options (what the HTTP layer does
// to every submission), and every produced key passes ValidKey.
func FuzzOptionsKey(f *testing.F) {
	f.Add(int64(0), 0, false, int64(0), 0, false, "fig7", "fp")
	f.Add(int64(1), 2, true, int64(1), 2, true, "fig7", "fp")
	f.Add(int64(1), 2, true, int64(1), 2, false, "fig7", "fp")
	f.Add(int64(-5), 1000, false, int64(5), -1000, true, "table2", "dev")
	f.Add(int64(1), 2, true, int64(1), 2, true, "fig7", "fp2")
	f.Fuzz(func(t *testing.T, seed1 int64, runs1 int, quick1 bool, seed2 int64, runs2 int, quick2 bool, exp, fp string) {
		k1 := experiments.OptionsKey{Seed: seed1, Runs: runs1, Quick: quick1}
		k2 := experiments.OptionsKey{Seed: seed2, Runs: runs2, Quick: quick2}
		key1 := ResultKey(exp, k1, fp)
		key2 := ResultKey(exp, k2, fp)
		if !ValidKey(key1) {
			t.Fatalf("ResultKey(%q, %+v, %q) = %q fails ValidKey", exp, k1, fp, key1)
		}
		if (k1 == k2) != (key1 == key2) {
			t.Fatalf("aliasing: options %+v vs %+v equal=%v but keys %s vs %s equal=%v",
				k1, k2, k1 == k2, key1, key2, key1 == key2)
		}

		// The HTTP layer decodes options from JSON before keying; a
		// round trip through that encoding must not move the key.
		b, err := json.Marshal(k1)
		if err != nil {
			t.Fatal(err)
		}
		var rt experiments.OptionsKey
		if err := json.Unmarshal(b, &rt); err != nil {
			t.Fatal(err)
		}
		if rk := ResultKey(exp, rt, fp); rk != key1 {
			t.Fatalf("JSON round trip moved key: %s -> %s (options %s)", key1, rk, b)
		}

		// Distinct experiments and fingerprints must never collide with the
		// base key for the same options.
		if other := ResultKey(exp+"x", k1, fp); other == key1 {
			t.Fatalf("experiment ids %q and %q collided on %s", exp, exp+"x", key1)
		}
		if other := ResultKey(exp, k1, fp+"x"); other == key1 {
			t.Fatalf("fingerprints %q and %q collided on %s", fp, fp+"x", key1)
		}
	})
}
