package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// entryChecksum returns the hex SHA-256 of the entry's compact JSON
// encoding with the Checksum field empty. Struct field order fixes the JSON
// field order, so the encoding is canonical and the checksum is stable
// across marshal/unmarshal round trips.
func entryChecksum(e *Entry) string {
	c := *e
	c.Checksum = ""
	b, err := json.Marshal(&c)
	if err != nil {
		// Entry is plain data; encoding cannot fail.
		panic(fmt.Sprintf("store: encoding entry for checksum: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// ChecksumOK verifies the entry against its stored checksum. Entries
// without one (written before checksums existed) pass unverified.
func (e *Entry) ChecksumOK() bool {
	return e.Checksum == "" || e.Checksum == entryChecksum(e)
}
