// Package store is a content-addressed cache of experiment results. The key
// is the SHA-256 of a canonical JSON encoding of (experiment id, the
// deterministic fields of experiments.Options, a code fingerprint); the
// value is the experiment's rendered tables plus its bench record and
// metrics JSON. Entries live on disk under a cache directory with an
// in-memory LRU in front, and GetOrCompute deduplicates concurrent
// identical computations single-flight, so two simultaneous submissions of
// the same experiment run one simulation.
//
// Because the simulator is deterministic in its keyed options, a cache hit
// is byte-identical to a recomputation — the cache changes latency, never
// results.
package store

import (
	"container/list"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/experiments"
	"repro/internal/report"
)

// Entry is one cached experiment result.
type Entry struct {
	Key         string                 `json:"key"`
	Experiment  string                 `json:"experiment"`
	Title       string                 `json:"title,omitempty"`
	Options     experiments.OptionsKey `json:"options"`
	Fingerprint string                 `json:"fingerprint"`
	// Tables is the experiment's rendered ASCII tables, exactly as the
	// Result.String() of the run that populated the entry produced them.
	Tables string `json:"tables"`
	// Bench is the producing run's performance record (wall time, simulated
	// events); on a cache hit it describes the original computation.
	Bench *report.BenchRecord `json:"bench,omitempty"`
	// Metrics holds the producing run's aggregated METRICS JSON when the
	// run collected metrics; nil otherwise.
	Metrics   json.RawMessage `json:"metrics,omitempty"`
	CreatedAt time.Time       `json:"created_at"`
}

// DefaultMaxMem bounds the in-memory LRU when Open is given no limit.
const DefaultMaxMem = 128

// Store is a disk-backed result cache with an in-memory LRU in front. All
// methods are safe for concurrent use.
type Store struct {
	dir string
	max int

	mu      sync.Mutex
	mem     map[string]*list.Element // key → element whose Value is *Entry
	lru     *list.List               // front = most recently used
	flights map[string]*flight
}

// flight is one in-progress computation other callers wait on.
type flight struct {
	done chan struct{}
	err  error
}

// Open creates (if needed) the cache directory and returns a store over it.
// maxMem bounds the in-memory LRU entry count; <= 0 means DefaultMaxMem.
// Disk entries are never evicted by the store.
func Open(dir string, maxMem int) (*Store, error) {
	if maxMem <= 0 {
		maxMem = DefaultMaxMem
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating cache dir: %w", err)
	}
	return &Store{
		dir:     dir,
		max:     maxMem,
		mem:     map[string]*list.Element{},
		lru:     list.New(),
		flights: map[string]*flight{},
	}, nil
}

// Dir returns the cache directory.
func (s *Store) Dir() string { return s.dir }

// Path returns the disk path backing key.
func (s *Store) Path(key string) string {
	return filepath.Join(s.dir, "RESULT_"+key+".json")
}

// Get returns the cached entry for key, consulting the in-memory LRU first
// and falling back to disk (promoting a disk hit into memory). A malformed
// key is an error; a corrupt disk entry is discarded and reported as a
// miss, so one bad file cannot poison its key forever.
func (s *Store) Get(key string) (*Entry, bool, error) {
	if !ValidKey(key) {
		return nil, false, fmt.Errorf("store: malformed key %q", key)
	}
	s.mu.Lock()
	if el, ok := s.mem[key]; ok {
		s.lru.MoveToFront(el)
		e := el.Value.(*Entry)
		s.mu.Unlock()
		return e, true, nil
	}
	s.mu.Unlock()
	data, err := os.ReadFile(s.Path(key))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	var e Entry
	if err := json.Unmarshal(data, &e); err != nil {
		os.Remove(s.Path(key))
		return nil, false, nil
	}
	s.mu.Lock()
	s.insert(&e)
	s.mu.Unlock()
	return &e, true, nil
}

// Put stores the entry on disk (atomically, via temp file + rename) and in
// the in-memory LRU.
func (s *Store) Put(e *Entry) error {
	if !ValidKey(e.Key) {
		return fmt.Errorf("store: malformed key %q", e.Key)
	}
	data, err := json.MarshalIndent(e, "", "  ")
	if err != nil {
		return err
	}
	if err := writeFileAtomic(s.Path(e.Key), append(data, '\n')); err != nil {
		return err
	}
	s.mu.Lock()
	s.insert(e)
	s.mu.Unlock()
	return nil
}

// insert adds or refreshes e in the LRU, evicting from the back over the
// memory bound. Caller holds s.mu.
func (s *Store) insert(e *Entry) {
	if el, ok := s.mem[e.Key]; ok {
		el.Value = e
		s.lru.MoveToFront(el)
		return
	}
	s.mem[e.Key] = s.lru.PushFront(e)
	for s.lru.Len() > s.max {
		el := s.lru.Back()
		delete(s.mem, el.Value.(*Entry).Key)
		s.lru.Remove(el)
	}
}

// MemLen returns the number of entries resident in the in-memory LRU.
func (s *Store) MemLen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lru.Len()
}

// GetOrCompute returns the entry for key, running compute to fill a miss.
// Concurrent calls for the same key are deduplicated single-flight: one
// caller computes while the rest block and share the outcome. hit reports
// whether the returned entry came from cache (memory, disk, or another
// caller's in-flight computation) rather than this caller's own compute.
// Errors are never cached; after a failed flight, waiters receive the
// shared error and the next fresh call recomputes.
func (s *Store) GetOrCompute(key string, compute func() (*Entry, error)) (*Entry, bool, error) {
	if e, ok, err := s.Get(key); err != nil || ok {
		return e, ok, err
	}
	for {
		s.mu.Lock()
		if el, ok := s.mem[key]; ok {
			s.lru.MoveToFront(el)
			e := el.Value.(*Entry)
			s.mu.Unlock()
			return e, true, nil
		}
		f, inflight := s.flights[key]
		if !inflight {
			f = &flight{done: make(chan struct{})}
			s.flights[key] = f
		}
		s.mu.Unlock()
		if inflight {
			<-f.done
			if f.err != nil {
				return nil, false, f.err
			}
			// The winner's Put landed before the flight closed, so the
			// retry hits memory.
			continue
		}
		e, err := compute()
		if err == nil {
			err = s.Put(e)
		}
		f.err = err
		s.mu.Lock()
		delete(s.flights, key)
		s.mu.Unlock()
		close(f.done)
		if err != nil {
			return nil, false, err
		}
		return e, false, nil
	}
}

// writeFileAtomic writes data to path via a same-directory temp file and
// rename, so readers never observe a partial entry and a failed write
// leaves nothing behind.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(f.Name())
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(f.Name())
		return err
	}
	if err := os.Rename(f.Name(), path); err != nil {
		os.Remove(f.Name())
		return err
	}
	return nil
}
