// Package store is a content-addressed cache of experiment results. The key
// is the SHA-256 of a canonical JSON encoding of (experiment id, the
// deterministic fields of experiments.Options, a code fingerprint); the
// value is the experiment's rendered tables plus its bench record and
// metrics JSON. Entries live on disk under a cache directory with an
// in-memory LRU in front, and GetOrCompute deduplicates concurrent
// identical computations single-flight, so two simultaneous submissions of
// the same experiment run one simulation.
//
// Because the simulator is deterministic in its keyed options, a cache hit
// is byte-identical to a recomputation — the cache changes latency, never
// results. The store defends that guarantee against storage failures:
// entries carry a checksum verified on every disk read (a corrupt or
// truncated entry is quarantined and reported as a miss, so the result is
// recomputed rather than served wrong), and GetOrCompute degrades to
// compute-through when the disk misbehaves — a read error falls through to
// computation and a failed write falls back to memory-only caching, so an
// unwritable cache directory costs latency, never availability or
// correctness. Fault sites consult an optional faults.Injector, letting
// tests drive every degraded path deterministically.
package store

import (
	"container/list"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/report"
)

// Entry is one cached experiment result.
type Entry struct {
	Key         string                 `json:"key"`
	Experiment  string                 `json:"experiment"`
	Title       string                 `json:"title,omitempty"`
	Options     experiments.OptionsKey `json:"options"`
	Fingerprint string                 `json:"fingerprint"`
	// Tables is the experiment's rendered ASCII tables, exactly as the
	// Result.String() of the run that populated the entry produced them.
	Tables string `json:"tables"`
	// Bench is the producing run's performance record (wall time, simulated
	// events); on a cache hit it describes the original computation.
	Bench *report.BenchRecord `json:"bench,omitempty"`
	// Metrics holds the producing run's aggregated METRICS JSON when the
	// run collected metrics; nil otherwise.
	Metrics   json.RawMessage `json:"metrics,omitempty"`
	CreatedAt time.Time       `json:"created_at"`
	// Checksum is the hex SHA-256 of the entry's canonical JSON encoding
	// with this field empty; Put fills it and Get verifies it, so silent
	// disk corruption surfaces as a quarantined miss instead of a wrong
	// result. Entries written before checksums existed (empty field) are
	// accepted unverified.
	Checksum string `json:"checksum,omitempty"`
}

// DefaultMaxMem bounds the in-memory LRU when Open is given no limit.
const DefaultMaxMem = 128

// Config parameterises a Store beyond the directory and LRU bound.
type Config struct {
	// Dir is the cache directory, created if needed. Required.
	Dir string
	// MaxMem bounds the in-memory LRU entry count; <= 0 means DefaultMaxMem.
	MaxMem int
	// Faults optionally injects deterministic read/write I/O errors and
	// entry corruption at the store's fault sites; nil injects nothing.
	Faults *faults.Injector
}

// Store is a disk-backed result cache with an in-memory LRU in front. All
// methods are safe for concurrent use.
type Store struct {
	dir    string
	max    int
	faults *faults.Injector

	mu      sync.Mutex
	mem     map[string]*list.Element // key → element whose Value is *Entry
	lru     *list.List               // front = most recently used
	flights map[string]*flight

	// met guards the store's self-metrics registry (obs recorders are
	// single-goroutine by design).
	met struct {
		sync.Mutex
		rec           *obs.Recorder
		readErrors    *obs.Counter // disk reads that errored (injected or real)
		quarantined   *obs.Counter // corrupt/truncated entries moved aside
		checksumFails *obs.Counter // quarantines caused by checksum mismatch
		writeDegraded *obs.Counter // Put failures degraded to memory-only
		readDegraded  *obs.Counter // Get errors degraded to compute-through
	}
}

// flight is one in-progress computation other callers wait on.
type flight struct {
	done chan struct{}
	err  error
}

// Open creates (if needed) the cache directory and returns a store over it.
// maxMem bounds the in-memory LRU entry count; <= 0 means DefaultMaxMem.
// Disk entries are never evicted by the store.
func Open(dir string, maxMem int) (*Store, error) {
	return OpenConfig(Config{Dir: dir, MaxMem: maxMem})
}

// OpenConfig is Open with the full configuration surface.
func OpenConfig(cfg Config) (*Store, error) {
	if cfg.MaxMem <= 0 {
		cfg.MaxMem = DefaultMaxMem
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating cache dir: %w", err)
	}
	s := &Store{
		dir:     cfg.Dir,
		max:     cfg.MaxMem,
		faults:  cfg.Faults,
		mem:     map[string]*list.Element{},
		lru:     list.New(),
		flights: map[string]*flight{},
	}
	rec := obs.New(obs.Config{Metrics: true})
	s.met.rec = rec
	s.met.readErrors = rec.Counter("store", "read_errors", "")
	s.met.quarantined = rec.Counter("store", "entries_quarantined", "")
	s.met.checksumFails = rec.Counter("store", "checksum_failures", "")
	s.met.writeDegraded = rec.Counter("store", "writes_degraded", "")
	s.met.readDegraded = rec.Counter("store", "reads_degraded", "")
	return s, nil
}

// count increments one self-metric under the metrics lock.
func (s *Store) count(c *obs.Counter) {
	s.met.Lock()
	c.Inc()
	s.met.Unlock()
}

// WriteMetricsText dumps the store's self-metrics in Prometheus text
// format; the service layer appends it to /metricsz.
func (s *Store) WriteMetricsText(w io.Writer) error {
	s.met.Lock()
	defer s.met.Unlock()
	return s.met.rec.WritePrometheusText(w)
}

// Metric returns the current value of one store self-metric by name
// (read_errors, entries_quarantined, checksum_failures, writes_degraded,
// reads_degraded); unknown names read zero.
func (s *Store) Metric(name string) uint64 {
	s.met.Lock()
	defer s.met.Unlock()
	return s.met.rec.FindCounter("store", name, "").Value()
}

// Stats is a point-in-time snapshot of the store's health counters, shaped
// for the service's /statusz endpoint.
type Stats struct {
	// MemEntries is the current in-memory LRU population.
	MemEntries int `json:"mem_entries"`
	// The remaining fields mirror the store self-metrics: degradation and
	// corruption counters since the store opened.
	ReadErrors         uint64 `json:"read_errors"`
	EntriesQuarantined uint64 `json:"entries_quarantined"`
	ChecksumFailures   uint64 `json:"checksum_failures"`
	WritesDegraded     uint64 `json:"writes_degraded"`
	ReadsDegraded      uint64 `json:"reads_degraded"`
}

// Stats returns the store's current health counters.
func (s *Store) Stats() Stats {
	st := Stats{MemEntries: s.MemLen()}
	s.met.Lock()
	st.ReadErrors = s.met.readErrors.Value()
	st.EntriesQuarantined = s.met.quarantined.Value()
	st.ChecksumFailures = s.met.checksumFails.Value()
	st.WritesDegraded = s.met.writeDegraded.Value()
	st.ReadsDegraded = s.met.readDegraded.Value()
	s.met.Unlock()
	return st
}

// Dir returns the cache directory.
func (s *Store) Dir() string { return s.dir }

// Path returns the disk path backing key.
func (s *Store) Path(key string) string {
	return filepath.Join(s.dir, "RESULT_"+key+".json")
}

// QuarantinePath returns where a corrupt entry for key is moved on
// detection.
func (s *Store) QuarantinePath(key string) string {
	return s.Path(key) + ".quarantined"
}

// Get returns the cached entry for key, consulting the in-memory LRU first
// and falling back to disk (promoting a disk hit into memory). A malformed
// key is an error; a corrupt or checksum-failing disk entry is quarantined
// (moved to QuarantinePath) and reported as a miss, so one bad file cannot
// poison its key forever and the evidence survives for inspection.
func (s *Store) Get(key string) (*Entry, bool, error) {
	return s.GetCtx(context.Background(), key)
}

// GetCtx is Get under a request context: when ctx carries an
// obs.TraceContext, the read emits a wall-clock "store.get" span annotated
// with its outcome (mem/disk hit, miss, error), and injected faults,
// quarantines, and checksum failures become span events and structured log
// lines stamped with the trace ID.
func (s *Store) GetCtx(ctx context.Context, key string) (*Entry, bool, error) {
	tc := obs.TraceContextFrom(ctx)
	sp := tc.Start("store", "store", "store.get", obs.WArg{Key: "key", Val: ShortKey(key)})
	e, ok, err := s.get(tc, key)
	switch {
	case err != nil:
		sp.Annotate("outcome", "error")
	case ok:
		sp.Annotate("outcome", "hit")
	default:
		sp.Annotate("outcome", "miss")
	}
	sp.End()
	return e, ok, err
}

func (s *Store) get(tc *obs.TraceContext, key string) (*Entry, bool, error) {
	if !ValidKey(key) {
		return nil, false, fmt.Errorf("store: malformed key %q", key)
	}
	s.mu.Lock()
	if el, ok := s.mem[key]; ok {
		s.lru.MoveToFront(el)
		e := el.Value.(*Entry)
		s.mu.Unlock()
		return e, true, nil
	}
	s.mu.Unlock()
	if err := s.faults.Err(faults.StoreRead, "store get"); err != nil {
		s.count(s.met.readErrors)
		s.noteFault(tc, "store.get", faults.StoreRead, key, err)
		return nil, false, err
	}
	data, err := os.ReadFile(s.Path(key))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, false, nil
	}
	if err != nil {
		s.count(s.met.readErrors)
		tc.Logger().Error("store read failed", "key", ShortKey(key), "error", err)
		return nil, false, err
	}
	data = s.faults.CorruptBytes(data)
	var e Entry
	if err := json.Unmarshal(data, &e); err != nil {
		s.quarantine(tc, key, "malformed entry JSON")
		return nil, false, nil
	}
	if !e.ChecksumOK() {
		s.count(s.met.checksumFails)
		s.quarantine(tc, key, "checksum mismatch")
		return nil, false, nil
	}
	s.mu.Lock()
	s.insert(&e)
	s.mu.Unlock()
	return &e, true, nil
}

// noteFault records an injected store fault on the request's trace: an
// instant span event on the store row plus a structured log line carrying
// the fault class, so chaos runs can be audited from either artifact.
func (s *Store) noteFault(tc *obs.TraceContext, site string, class faults.Class, key string, err error) {
	tc.Instant("store", "fault:"+class.String(), obs.WArg{Key: "fault", Val: class.String()}, obs.WArg{Key: "key", Val: ShortKey(key)})
	tc.Logger().Warn("injected store fault", "fault", class.String(), "site", site, "key", ShortKey(key), "error", err)
}

// quarantine moves the disk file behind key aside (falling back to removal
// if the rename fails), so a corrupt entry neither shadows its key nor
// vanishes before it can be inspected.
func (s *Store) quarantine(tc *obs.TraceContext, key, why string) {
	s.count(s.met.quarantined)
	tc.Instant("store", "quarantine", obs.WArg{Key: "key", Val: ShortKey(key)}, obs.WArg{Key: "why", Val: why})
	tc.Logger().Warn("store entry quarantined", "key", ShortKey(key), "why", why, "fault", faults.CorruptEntry.String())
	if err := os.Rename(s.Path(key), s.QuarantinePath(key)); err != nil {
		os.Remove(s.Path(key))
	}
}

// Put stores the entry on disk (atomically, via temp file + rename) and in
// the in-memory LRU, stamping its checksum.
func (s *Store) Put(e *Entry) error {
	return s.PutCtx(context.Background(), e)
}

// PutCtx is Put under a request context, emitting a "store.put" span and
// fault annotations the same way GetCtx does.
func (s *Store) PutCtx(ctx context.Context, e *Entry) error {
	tc := obs.TraceContextFrom(ctx)
	sp := tc.Start("store", "store", "store.put", obs.WArg{Key: "key", Val: ShortKey(e.Key)})
	err := s.put(tc, e)
	if err != nil {
		sp.Annotate("outcome", "error")
	} else {
		sp.Annotate("outcome", "ok")
	}
	sp.End()
	return err
}

func (s *Store) put(tc *obs.TraceContext, e *Entry) error {
	if !ValidKey(e.Key) {
		return fmt.Errorf("store: malformed key %q", e.Key)
	}
	e.Checksum = entryChecksum(e)
	data, err := json.MarshalIndent(e, "", "  ")
	if err != nil {
		return err
	}
	if err := s.faults.Err(faults.StoreWrite, "store put"); err != nil {
		s.noteFault(tc, "store.put", faults.StoreWrite, e.Key, err)
		return err
	}
	if err := writeFileAtomic(s.Path(e.Key), append(data, '\n')); err != nil {
		tc.Logger().Error("store write failed", "key", ShortKey(e.Key), "error", err)
		return err
	}
	s.mu.Lock()
	s.insert(e)
	s.mu.Unlock()
	return nil
}

// insert adds or refreshes e in the LRU, evicting from the back over the
// memory bound. Caller holds s.mu.
func (s *Store) insert(e *Entry) {
	if el, ok := s.mem[e.Key]; ok {
		el.Value = e
		s.lru.MoveToFront(el)
		return
	}
	s.mem[e.Key] = s.lru.PushFront(e)
	for s.lru.Len() > s.max {
		el := s.lru.Back()
		delete(s.mem, el.Value.(*Entry).Key)
		s.lru.Remove(el)
	}
}

// MemLen returns the number of entries resident in the in-memory LRU.
func (s *Store) MemLen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lru.Len()
}

// GetOrCompute returns the entry for key, running compute to fill a miss.
// Concurrent calls for the same key are deduplicated single-flight: one
// caller computes while the rest block and share the outcome. hit reports
// whether the returned entry came from cache (memory, disk, or another
// caller's in-flight computation) rather than this caller's own compute.
// Errors are never cached; after a failed flight, waiters receive the
// shared error and the next fresh call recomputes.
//
// Storage failures degrade rather than propagate: a read error falls
// through to computation (counted as reads_degraded) and a failed disk
// write caches the computed entry in memory only (writes_degraded), so
// compute errors are the only errors GetOrCompute returns.
func (s *Store) GetOrCompute(key string, compute func() (*Entry, error)) (*Entry, bool, error) {
	return s.GetOrComputeCtx(context.Background(), key, compute)
}

// GetOrComputeCtx is GetOrCompute under a request context: the embedded read
// and write emit store spans, a caller blocked on another caller's in-flight
// computation emits a "store.flight-wait" span (making single-flight dedup
// visible on the timeline), and degraded paths log with the trace ID.
func (s *Store) GetOrComputeCtx(ctx context.Context, key string, compute func() (*Entry, error)) (*Entry, bool, error) {
	tc := obs.TraceContextFrom(ctx)
	e, ok, err := s.GetCtx(ctx, key)
	if ok {
		return e, true, nil
	}
	if err != nil {
		// Compute-through: the cache is broken for this read, the
		// simulation is not.
		s.count(s.met.readDegraded)
		tc.Logger().Warn("store read degraded to compute-through", "key", ShortKey(key), "error", err)
	}
	for {
		s.mu.Lock()
		if el, ok := s.mem[key]; ok {
			s.lru.MoveToFront(el)
			e := el.Value.(*Entry)
			s.mu.Unlock()
			return e, true, nil
		}
		f, inflight := s.flights[key]
		if !inflight {
			f = &flight{done: make(chan struct{})}
			s.flights[key] = f
		}
		s.mu.Unlock()
		if inflight {
			sp := tc.Start("store", "store", "store.flight-wait", obs.WArg{Key: "key", Val: ShortKey(key)})
			<-f.done
			sp.End()
			if f.err != nil {
				return nil, false, f.err
			}
			// The winner's entry landed in memory before the flight closed,
			// so the retry hits.
			continue
		}
		e, err := compute()
		if err == nil {
			if perr := s.PutCtx(ctx, e); perr != nil {
				// Degrade to memory-only caching: the result is correct,
				// only its persistence failed.
				s.count(s.met.writeDegraded)
				tc.Logger().Warn("store write degraded to memory-only", "key", ShortKey(key), "error", perr)
				s.mu.Lock()
				s.insert(e)
				s.mu.Unlock()
			}
		}
		f.err = err
		s.mu.Lock()
		delete(s.flights, key)
		s.mu.Unlock()
		close(f.done)
		if err != nil {
			return nil, false, err
		}
		return e, false, nil
	}
}

// writeFileAtomic writes data to path via a same-directory temp file and
// rename, so readers never observe a partial entry and a failed write
// leaves nothing behind.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(f.Name())
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(f.Name())
		return err
	}
	if err := os.Rename(f.Name(), path); err != nil {
		os.Remove(f.Name())
		return err
	}
	return nil
}
