// Package machine models the hardware of a distributed-memory
// multiprocessor: p nodes, each pairing a superscalar processor model
// (internal/cpu) with a network interface, connected by a network
// characterised by the paper's three hardware parameters — per-byte gap g,
// wire latency l, and per-message overhead o — plus a network-controller
// occupancy. It is the substrate the bulk-synchronous shared-memory library
// (internal/qsmlib) runs on, standing in for the Armadillo simulator.
//
// The timing of a message from node A to node B:
//
//  1. A's processor is busy for SendOverhead cycles (interacting with the
//     NIC buffers), plus whatever software cost the messaging layer charges.
//  2. A's send NIC serialises the message: NICOverhead + bytes*Gap cycles of
//     occupancy, queued FIFO behind earlier sends.
//  3. The wire adds Latency cycles.
//  4. B's receive NIC is occupied for NICOverhead + bytes*Gap cycles, queued
//     FIFO behind other arrivals — concentrated traffic into one node queues
//     here, which is why contention-avoiding exchange schedules matter.
//  5. The message enters B's inbox; when B's processor receives it, it is
//     busy for RecvOverhead cycles plus software costs.
package machine

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/obs"
	"repro/internal/sim"
)

// NetParams are the network hardware parameters (paper Table 3, "Hardware
// Setting" column).
type NetParams struct {
	Gap          float64  // cycles per byte of bandwidth (g = 3: 133 MB/s at 400 MHz)
	Latency      sim.Time // wire latency l in cycles (1600 = 4us)
	SendOverhead sim.Time // processor cycles to hand a message to the NIC (o = 400)
	RecvOverhead sim.Time // processor cycles to take a message from the NIC
	NICOverhead  sim.Time // per-message network controller occupancy
}

// DefaultNet returns the default simulated network of Section 3.1.2:
// g = 3 cycles/byte, l = 1600 cycles (4us), o = 400 cycles (1us).
func DefaultNet() NetParams {
	return NetParams{
		Gap:          3,
		Latency:      1600,
		SendOverhead: 400,
		RecvOverhead: 400,
		NICOverhead:  100,
	}
}

// Packet is a message in flight between nodes.
type Packet struct {
	Src, Dst int
	Tag      int
	Bytes    int
	Payload  interface{}
}

// Multiprocessor is a p-node simulated machine.
type Multiprocessor struct {
	E     *sim.Engine
	Net   NetParams
	Nodes []*Node

	// Observability hooks, nil unless Observe attached a recorder; every
	// handle is nil-safe, so Send pays one branch per hook when off.
	rec          *obs.Recorder
	obsMsgs      *obs.Counter
	obsLatency   *obs.Histogram
	obsOccupancy *obs.Histogram
	obsBytes     *obs.Histogram
}

// New builds a p-node machine on a fresh engine. model builds the per-node
// processor cost model (nil uses the Table 2 analytic model for every node).
func New(p int, net NetParams, model func(id int) cpu.Model) *Multiprocessor {
	if p <= 0 {
		panic("machine: p must be positive")
	}
	if model == nil {
		model = func(int) cpu.Model { return cpu.NewAnalytic(cpu.Table2()) }
	}
	e := sim.NewEngine()
	mp := &Multiprocessor{E: e, Net: net}
	for i := 0; i < p; i++ {
		mp.Nodes = append(mp.Nodes, &Node{
			id:      i,
			mp:      mp,
			inbox:   e.NewChan(),
			sendNIC: e.NewServer(),
			recvNIC: e.NewServer(),
			cost:    model(i),
		})
	}
	return mp
}

// P returns the node count.
func (mp *Multiprocessor) P() int { return len(mp.Nodes) }

// Observe attaches an observability recorder to the machine and its engine:
// per-message end-to-end latency, NIC occupancy, and wire-size histograms,
// plus the engine's own event and queue metrics. Call before Run.
func (mp *Multiprocessor) Observe(r *obs.Recorder) {
	mp.rec = r
	mp.E.Observe(r)
	mp.obsMsgs = r.Counter("machine", "msgs_sent", "")
	mp.obsLatency = r.Histogram("machine", "msg_latency_cycles", "", obs.ExpBuckets(256, 2, 14))
	mp.obsOccupancy = r.Histogram("machine", "nic_occupancy_cycles", "", obs.ExpBuckets(64, 2, 12))
	mp.obsBytes = r.Histogram("machine", "msg_wire_bytes", "", obs.ExpBuckets(16, 4, 8))
}

// Recorder returns the recorder attached with Observe, or nil.
func (mp *Multiprocessor) Recorder() *obs.Recorder { return mp.rec }

// Run spawns one process per node executing prog and drives the simulation
// to completion.
func (mp *Multiprocessor) Run(seed int64, prog func(*Node)) error {
	for _, n := range mp.Nodes {
		n := n
		n.proc = mp.E.SpawnSeeded(fmt.Sprintf("node%d", n.id), seed+int64(n.id)*7919, func(p *sim.Proc) {
			prog(n)
		})
	}
	return mp.E.Run()
}

// Node is one processor-memory pair of the machine.
type Node struct {
	id      int
	mp      *Multiprocessor
	proc    *sim.Proc
	inbox   *sim.Chan
	sendNIC *sim.Server
	recvNIC *sim.Server
	cost    cpu.Model

	// Counters.
	MsgsSent   uint64
	BytesSent  uint64
	CompCycles sim.Time // simulated time spent in Compute
}

// ID returns the node index.
func (n *Node) ID() int { return n.id }

// P returns the machine's node count.
func (n *Node) P() int { return len(n.mp.Nodes) }

// Proc returns the node's simulation process.
func (n *Node) Proc() *sim.Proc { return n.proc }

// Now returns the current simulated time.
func (n *Node) Now() sim.Time { return n.proc.Now() }

// Model returns the node's processor cost model.
func (n *Node) Model() cpu.Model { return n.cost }

// Compute advances simulated time by the cost of the block on this node's
// processor model.
func (n *Node) Compute(b cpu.OpBlock) {
	c := sim.Time(n.cost.Cycles(b))
	n.CompCycles += c
	n.proc.Advance(c)
}

// Busy advances simulated time by raw cycles of processor occupancy,
// for software costs charged by higher layers.
func (n *Node) Busy(cycles sim.Time) { n.proc.Advance(cycles) }

// Send transmits a message of the given wire size to dst. The calling
// process is busy for SendOverhead cycles; NIC serialisation, wire latency
// and receive-side NIC queueing proceed asynchronously. The NICs are
// goroutine-free sim.Server reservations and the in-flight hop is the
// engine's closure-free wire shuttle (Chan.SendAfter carries the Packet on
// the event itself), so a message in transit costs no process wake-ups and
// no per-message closure — only the sending and receiving node programs,
// which are user code, run as goroutine processes.
func (n *Node) Send(dst, tag, bytes int, payload interface{}) {
	if dst < 0 || dst >= len(n.mp.Nodes) {
		panic(fmt.Sprintf("machine: send to invalid node %d", dst))
	}
	net := &n.mp.Net
	t0 := n.proc.Now()
	n.proc.Advance(net.SendOverhead)
	occupancy := net.NICOverhead + sim.Time(float64(bytes)*net.Gap)
	_, end := n.sendNIC.Use(occupancy)
	arrival := end + net.Latency
	dstNode := n.mp.Nodes[dst]
	_, rend := dstNode.recvNIC.UseAt(arrival, occupancy)
	now := n.proc.Now()
	dstNode.inbox.SendAfter(rend-now, Packet{Src: n.id, Dst: dst, Tag: tag, Bytes: bytes, Payload: payload})
	n.MsgsSent++
	n.BytesSent += uint64(bytes)
	n.mp.obsMsgs.Inc()
	n.mp.obsLatency.Observe(float64(rend - t0))
	n.mp.obsOccupancy.Observe(float64(occupancy))
	n.mp.obsBytes.Observe(float64(bytes))
}

// Recv blocks until any message is available in the inbox, removes it, and
// charges the receive overhead.
func (n *Node) Recv() Packet {
	pkt := n.inbox.Recv(n.proc).(Packet)
	n.proc.Advance(n.mp.Net.RecvOverhead)
	return pkt
}

// TryRecv removes a pending message without blocking, charging the receive
// overhead only when a message was present.
func (n *Node) TryRecv() (Packet, bool) {
	v, ok := n.inbox.TryRecv()
	if !ok {
		return Packet{}, false
	}
	n.proc.Advance(n.mp.Net.RecvOverhead)
	return v.(Packet), true
}
