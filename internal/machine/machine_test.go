package machine

import (
	"testing"

	"repro/internal/cpu"
	"repro/internal/sim"
)

func TestSendRecvTiming(t *testing.T) {
	mp := New(2, DefaultNet(), nil)
	var sent, recvd sim.Time
	err := mp.Run(1, func(n *Node) {
		switch n.ID() {
		case 0:
			n.Send(1, 7, 100, "hello")
			sent = n.Now()
		case 1:
			pkt := n.Recv()
			recvd = n.Now()
			if pkt.Payload.(string) != "hello" || pkt.Src != 0 || pkt.Tag != 7 {
				t.Errorf("bad packet: %+v", pkt)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// Sender: 400 overhead. NIC: 100 + 300 = 400 occupancy ends at 800.
	// Wire: +1600 => 2400. Recv NIC: +400 => 2800. Recv overhead: +400.
	if sent != 400 {
		t.Errorf("sender released at %d, want 400", sent)
	}
	if recvd != 3200 {
		t.Errorf("receiver done at %d, want 3200", recvd)
	}
}

func TestSendNICSerialises(t *testing.T) {
	mp := New(2, DefaultNet(), nil)
	var last sim.Time
	err := mp.Run(1, func(n *Node) {
		switch n.ID() {
		case 0:
			for i := 0; i < 4; i++ {
				n.Send(1, 0, 1000, i)
			}
		case 1:
			for i := 0; i < 4; i++ {
				pkt := n.Recv()
				if pkt.Payload.(int) != i {
					t.Errorf("out of order: got %d at position %d", pkt.Payload, i)
				}
				last = n.Now()
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// Each 1000-byte message occupies a NIC for 100+3000 cycles; four
	// messages serialise on both NICs: arrival of last >= 4*3100 + latency.
	if last < 4*3100+1600 {
		t.Errorf("last delivery at %d, want >= %d", last, 4*3100+1600)
	}
}

func TestRecvNICCongestion(t *testing.T) {
	// Many senders to one receiver queue at its receive NIC; the same
	// volume spread across receivers does not. This is the effect the
	// staggered exchange schedule avoids.
	concentrated := func() sim.Time {
		mp := New(8, DefaultNet(), nil)
		var done sim.Time
		if err := mp.Run(1, func(n *Node) {
			if n.ID() != 0 {
				n.Send(0, 0, 4000, nil)
				return
			}
			for i := 0; i < 7; i++ {
				n.Recv()
			}
			done = n.Now()
		}); err != nil {
			t.Fatal(err)
		}
		return done
	}()
	spread := func() sim.Time {
		mp := New(8, DefaultNet(), nil)
		var done sim.Time
		if err := mp.Run(1, func(n *Node) {
			n.Send((n.ID()+1)%8, 0, 4000, nil)
			n.Recv()
			if n.ID() == 0 {
				done = n.Now()
			}
		}); err != nil {
			t.Fatal(err)
		}
		return done
	}()
	if concentrated < 3*spread {
		t.Errorf("concentrated=%d spread=%d: want strong receive-side queueing", concentrated, spread)
	}
}

func TestComputeUsesModel(t *testing.T) {
	mp := New(1, DefaultNet(), nil)
	blk := cpu.BlockSum(10000)
	want := cpu.NewAnalytic(cpu.Table2()).Cycles(blk)
	err := mp.Run(1, func(n *Node) {
		n.Compute(blk)
		if n.Now() != sim.Time(want) {
			t.Errorf("compute advanced %d cycles, want %d", n.Now(), want)
		}
		if n.CompCycles != sim.Time(want) {
			t.Errorf("CompCycles = %d, want %d", n.CompCycles, want)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTryRecv(t *testing.T) {
	mp := New(2, DefaultNet(), nil)
	err := mp.Run(1, func(n *Node) {
		switch n.ID() {
		case 0:
			if _, ok := n.TryRecv(); ok {
				t.Error("TryRecv should fail with empty inbox")
			}
			n.Send(1, 0, 8, nil)
		case 1:
			n.Proc().Advance(100000) // let the message arrive
			if _, ok := n.TryRecv(); !ok {
				t.Error("TryRecv should succeed after delivery")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCounters(t *testing.T) {
	mp := New(2, DefaultNet(), nil)
	err := mp.Run(1, func(n *Node) {
		if n.ID() == 0 {
			n.Send(1, 0, 50, nil)
			n.Send(1, 0, 70, nil)
		} else {
			n.Recv()
			n.Recv()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if mp.Nodes[0].MsgsSent != 2 || mp.Nodes[0].BytesSent != 120 {
		t.Errorf("sender counters: msgs=%d bytes=%d, want 2, 120",
			mp.Nodes[0].MsgsSent, mp.Nodes[0].BytesSent)
	}
}

func TestInvalidDstPanics(t *testing.T) {
	mp := New(2, DefaultNet(), nil)
	err := mp.Run(1, func(n *Node) {
		if n.ID() == 0 {
			n.Send(5, 0, 8, nil)
		}
	})
	if err == nil {
		t.Fatal("send to invalid node should error the run")
	}
}

func TestLatencyParameterRespected(t *testing.T) {
	slow := DefaultNet()
	slow.Latency = 100000
	mp := New(2, slow, nil)
	var recvd sim.Time
	err := mp.Run(1, func(n *Node) {
		if n.ID() == 0 {
			n.Send(1, 0, 8, nil)
		} else {
			n.Recv()
			recvd = n.Now()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if recvd < 100000 {
		t.Errorf("received at %d, want >= latency 100000", recvd)
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() sim.Time {
		mp := New(4, DefaultNet(), nil)
		var end sim.Time
		if err := mp.Run(42, func(n *Node) {
			for i := 0; i < 5; i++ {
				n.Send((n.ID()+1)%4, 0, 64+n.Rand(), nil)
				n.Recv()
			}
			if n.ID() == 0 {
				end = n.Now()
			}
		}); err != nil {
			t.Fatal(err)
		}
		return end
	}
	if a, b := run(), run(); a != b {
		t.Errorf("nondeterministic: %d vs %d", a, b)
	}
}

// Rand is a helper making message sizes depend on the seeded proc RNG.
func (n *Node) Rand() int { return int(n.proc.Rand().Int31n(64)) }
