package logp_test

import (
	"fmt"

	"repro/internal/logp"
)

// ExampleSum reduces values to processor 0 with the binomial tree and
// reports how long the LogP model says it takes.
func ExampleSum() {
	m := logp.New(logp.Params{L: 1600, O: 400, G: 200, P: 8})
	var total int64
	if err := m.Run(1, func(pc *logp.Proc) {
		v := logp.Sum(pc, 0, 1)
		if pc.ID() == 0 {
			total = v
		}
	}); err != nil {
		panic(err)
	}
	fmt.Println("total:", total)
	fmt.Println("cycles:", m.Now())
	// Output:
	// total: 8
	// cycles: 7200
}
