package logp

// The classic LogP tree algorithms (Karp, Sahay, Santos, Schauser: "Optimal
// broadcast and summation in the LogP model"). The binomial schedules here
// are within a small constant of the optimal trees and need no global
// coordination: every processor derives its role from its id.

// broadcastTag and sumTag separate the two traffic classes.
const (
	broadcastTag = 1
	sumTag       = 2
)

// Broadcast distributes val from root to every processor using a binomial
// tree: in round k, every informed processor forwards to its partner
// 2^k away. Returns the value at this processor. All processors call it.
func Broadcast(pc *Proc, root int, val int64) int64 {
	p := pc.P()
	me := (pc.ID() - root + p) % p // renumber so the root is 0
	if me != 0 {
		msg := pc.Recv(broadcastTag)
		val = msg.Args[0]
	}
	// Highest set bit of me tells when this processor was informed; it
	// forwards in every later round.
	start := 0
	if me != 0 {
		for b := 0; b < 32; b++ {
			if me&(1<<b) != 0 {
				start = b + 1
			}
		}
	}
	for k := start; (1 << k) < p; k++ {
		peer := me | (1 << k)
		if peer == me || peer >= p {
			continue
		}
		pc.Send((peer+root)%p, broadcastTag, val)
	}
	return val
}

// Sum reduces every processor's val to the root along the mirror of the
// broadcast's binomial tree and returns the total at the root (other
// processors return their partial sums). All processors call it.
func Sum(pc *Proc, root int, val int64) int64 {
	p := pc.P()
	me := (pc.ID() - root + p) % p
	// In the broadcast tree, me's children are me | 1<<k for every k above
	// me's highest set bit; its parent clears that highest bit.
	hb := -1
	for b := 0; b < 32; b++ {
		if me&(1<<b) != 0 {
			hb = b
		}
	}
	for k := hb + 1; (1 << k) < p; k++ {
		child := me | (1 << k)
		if child == me || child >= p {
			continue
		}
		val += pc.Recv(sumTag).Args[0] // children's partials, any order
	}
	if me != 0 {
		parent := me &^ (1 << hb)
		pc.Send((parent+root)%p, sumTag, val)
	}
	return val
}
