package logp

import (
	"testing"

	"repro/internal/sim"
)

func TestSendRecvCharges(t *testing.T) {
	m := New(Params{L: 1600, O: 400, G: 200, P: 2})
	var sent, recvd sim.Time
	err := m.Run(1, func(pc *Proc) {
		if pc.ID() == 0 {
			pc.Send(1, 7, 42)
			sent = pc.Now()
			return
		}
		msg := pc.Recv(7)
		recvd = pc.Now()
		if msg.Args[0] != 42 || msg.Src != 0 {
			t.Errorf("bad message %+v", msg)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if sent != 400 {
		t.Errorf("sender busy until %d, want o=400", sent)
	}
	// Delivery at o + L = 2000, plus receive overhead 400.
	if recvd != 2400 {
		t.Errorf("receiver done at %d, want 2400", recvd)
	}
}

func TestGapSpacesInjections(t *testing.T) {
	m := New(Params{L: 100, O: 10, G: 500, P: 2})
	var done sim.Time
	err := m.Run(1, func(pc *Proc) {
		if pc.ID() == 0 {
			for i := 0; i < 5; i++ {
				pc.Send(1, 0, int64(i))
			}
			done = pc.Now()
			return
		}
		for i := 0; i < 5; i++ {
			pc.Recv(0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// Injections at >= 0, 500, 1000, 1500, 2000 despite o=10.
	if done < 2000 {
		t.Errorf("5 sends finished at %d, want >= 2000 (gap-limited)", done)
	}
}

func TestCapacityStallsSender(t *testing.T) {
	// cap = ceil(L/G) = 4: the 5th consecutive send to one destination must
	// stall until the first delivery.
	m := New(Params{L: 10000, O: 10, G: 2500, P: 2})
	var after5 sim.Time
	err := m.Run(1, func(pc *Proc) {
		if pc.ID() == 0 {
			for i := 0; i < 5; i++ {
				pc.Send(1, 0, int64(i))
			}
			after5 = pc.Now()
			return
		}
		for i := 0; i < 5; i++ {
			pc.Recv(0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if after5 < 10000 {
		t.Errorf("5th send completed at %d, want >= first delivery ~10010", after5)
	}
}

func TestCapacityValue(t *testing.T) {
	if c := (Params{L: 1600, G: 200}).Capacity(); c != 8 {
		t.Errorf("capacity = %d, want 8", c)
	}
	if c := (Params{L: 100, G: 0}).Capacity(); c != 1 {
		t.Errorf("zero-gap capacity = %d, want 1", c)
	}
}

func TestBroadcastAllSizes(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 7, 8, 16, 23} {
		for root := 0; root < p; root += 3 {
			m := New(Params{L: 1600, O: 400, G: 200, P: p})
			got := make([]int64, p)
			err := m.Run(1, func(pc *Proc) {
				got[pc.ID()] = Broadcast(pc, root, 777)
			})
			if err != nil {
				t.Fatalf("p=%d root=%d: %v", p, root, err)
			}
			for i, v := range got {
				if v != 777 {
					t.Fatalf("p=%d root=%d: proc %d got %d", p, root, i, v)
				}
			}
		}
	}
}

func TestSumAllSizes(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 8, 13, 16} {
		for root := 0; root < p; root += 5 {
			m := New(Params{L: 1600, O: 400, G: 200, P: p})
			var total int64
			err := m.Run(1, func(pc *Proc) {
				v := Sum(pc, root, int64(pc.ID()+1))
				if pc.ID() == root {
					total = v
				}
			})
			if err != nil {
				t.Fatalf("p=%d root=%d: %v", p, root, err)
			}
			want := int64(p * (p + 1) / 2)
			if total != want {
				t.Fatalf("p=%d root=%d: sum = %d, want %d", p, root, total, want)
			}
		}
	}
}

func TestBroadcastTimeLogarithmic(t *testing.T) {
	elapsed := func(p int) sim.Time {
		m := New(Params{L: 1600, O: 400, G: 200, P: p})
		if err := m.Run(1, func(pc *Proc) { Broadcast(pc, 0, 1) }); err != nil {
			t.Fatal(err)
		}
		return m.Now()
	}
	t4, t16, t64 := elapsed(4), elapsed(16), elapsed(64)
	// Each quadrupling of p should add roughly a constant (2 rounds), not
	// multiply: strongly sublinear growth.
	if t16 >= 3*t4 || t64 >= 3*t16 {
		t.Errorf("broadcast times not logarithmic: %d, %d, %d", t4, t16, t64)
	}
}

func TestDeterministic(t *testing.T) {
	run := func() sim.Time {
		m := New(Default(8))
		if err := m.Run(9, func(pc *Proc) {
			Sum(pc, 0, int64(pc.ID()))
			Broadcast(pc, 0, 5)
		}); err != nil {
			t.Fatal(err)
		}
		return m.Now()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("nondeterministic: %d vs %d", a, b)
	}
}

func TestInvalidDestPanics(t *testing.T) {
	m := New(Default(2))
	err := m.Run(1, func(pc *Proc) {
		if pc.ID() == 0 {
			pc.Send(9, 0)
		}
	})
	if err == nil {
		t.Fatal("invalid destination should error")
	}
}
