// Package logp implements a LogP-model messaging runtime on the simulation
// engine: fine-grained point-to-point messages charged with the model's
// four parameters — latency L, per-message overhead o at sender and
// receiver, per-message gap g between injections, and the capacity
// constraint that at most ceil(L/g) messages may be in flight to any one
// destination (the sender stalls otherwise).
//
// The paper (Section 2.1) contrasts QSM's bulk-synchronous shared memory
// with exactly this style: communication that activates computation on
// remote nodes (Active Messages) is more powerful but more detailed. The
// package provides the classic LogP tree algorithms — broadcast and
// summation (Karp, Sahay, Santos, Schauser) — and the ext2 experiment races
// them against the QSM collective on the same word counts.
package logp

import (
	"fmt"

	"repro/internal/sim"
)

// Params are the four LogP parameters, in cycles.
type Params struct {
	L sim.Time // latency
	O sim.Time // per-message overhead, each side
	G sim.Time // per-message gap (the reciprocal of injection bandwidth)
	P int      // processors
}

// Default returns LogP parameters matching the default simulated network
// for small (single-word) messages: o = 400, L = 1600, and g derived from
// the NIC's per-message occupancy.
func Default(p int) Params {
	return Params{L: 1600, O: 400, G: 200, P: p}
}

// Capacity returns the model's bound on in-flight messages per destination.
func (pp Params) Capacity() int {
	if pp.G == 0 {
		return 1
	}
	c := int((pp.L + pp.G - 1) / pp.G)
	if c < 1 {
		c = 1
	}
	return c
}

// Message is a delivered LogP message.
type Message struct {
	Src  int
	Tag  int
	Args []int64
}

// Machine is a p-processor LogP machine.
type Machine struct {
	E      *sim.Engine
	params Params
	procs  []*Proc
}

// New builds a LogP machine.
func New(params Params) *Machine {
	if params.P <= 0 {
		panic("logp: P must be positive")
	}
	e := sim.NewEngine()
	m := &Machine{E: e, params: params}
	for i := 0; i < params.P; i++ {
		m.procs = append(m.procs, &Proc{
			id:    i,
			m:     m,
			inbox: e.NewChan(),
		})
	}
	return m
}

// P returns the processor count.
func (m *Machine) P() int { return m.params.P }

// Run executes prog on every processor.
func (m *Machine) Run(seed int64, prog func(*Proc)) error {
	for _, pc := range m.procs {
		pc := pc
		pc.proc = m.E.SpawnSeeded(fmt.Sprintf("logp%d", pc.id), seed+int64(pc.id)*104729, func(*sim.Proc) {
			prog(pc)
		})
	}
	return m.E.Run()
}

// Now returns the machine's current simulated time.
func (m *Machine) Now() sim.Time { return m.E.Now() }

// Proc is one LogP processor.
type Proc struct {
	id    int
	m     *Machine
	proc  *sim.Proc
	inbox *sim.Chan

	lastInject sim.Time
	inflight   map[int][]sim.Time // per destination: delivery times

	MsgsSent uint64
}

// ID returns the processor index.
func (pc *Proc) ID() int { return pc.id }

// P returns the machine size.
func (pc *Proc) P() int { return pc.m.params.P }

// Now returns the current simulated time.
func (pc *Proc) Now() sim.Time { return pc.proc.Now() }

// Compute advances simulated time by the given cycles of local work.
func (pc *Proc) Compute(cycles sim.Time) { pc.proc.Advance(cycles) }

// Send transmits a small message under the LogP charges: the sender is busy
// for o cycles, consecutive injections are spaced by at least g, and if
// ceil(L/g) messages are already in flight to dst the sender stalls until
// one is delivered (the capacity constraint).
func (pc *Proc) Send(dst, tag int, args ...int64) {
	if dst < 0 || dst >= pc.P() {
		panic(fmt.Sprintf("logp: invalid destination %d", dst))
	}
	if pc.inflight == nil {
		pc.inflight = map[int][]sim.Time{}
	}
	// Capacity: wait until fewer than cap messages are undelivered at dst.
	capacity := pc.m.params.Capacity()
	fl := pc.inflight[dst]
	live := fl[:0]
	for _, t := range fl {
		if t > pc.Now() {
			live = append(live, t)
		}
	}
	if len(live) >= capacity {
		wait := live[len(live)-capacity]
		if wait > pc.Now() {
			pc.proc.Advance(wait - pc.Now())
		}
	}

	pc.proc.Advance(pc.m.params.O) // send overhead

	inject := pc.Now()
	if next := pc.lastInject + pc.m.params.G; next > inject {
		pc.proc.Advance(next - inject)
		inject = next
	}
	pc.lastInject = inject

	deliver := inject + pc.m.params.L
	pc.inflight[dst] = append(live, deliver)
	dstProc := pc.m.procs[dst]
	dstProc.inbox.SendAfter(deliver-pc.Now(), Message{Src: pc.id, Tag: tag, Args: args})
	pc.MsgsSent++
}

// Recv blocks until a message with the tag arrives (any source), charging
// the receive overhead o.
func (pc *Proc) Recv(tag int) Message {
	var stash []Message
	for {
		msg := pc.inbox.Recv(pc.proc).(Message)
		if msg.Tag == tag {
			pc.proc.Advance(pc.m.params.O)
			// Requeue unmatched messages (they land behind anything that
			// arrived meanwhile; use distinct tags where order matters).
			for _, s := range stash {
				pc.inbox.Send(s)
			}
			return msg
		}
		stash = append(stash, msg)
	}
}
