// Package cluster turns qsmd from a single binary into a sharded,
// replicated service: a consistent-hash ring places every result key on an
// owning node (plus R−1 successor replicas), a static membership layer with
// health-checked peer clients tracks which nodes are reachable, and a
// request router in front of each node's local scheduler forwards
// submissions and polls to the key's owner, replicates freshly computed
// entries to the successors, and read-repairs replica misses.
//
// Placement is deterministic: the ring hashes (seed, member, vnode) points
// with SHA-256, so every node configured with the same member list, seed,
// and vnode count computes the identical ring without any coordination —
// membership is configuration (-peers), not consensus. Because submissions
// for a key always route to its primary owner, the owner's store
// single-flights concurrent identical submissions cluster-wide; because the
// store is content-addressed and the simulator deterministic, any node can
// fall back to computing any key locally when the owners are unreachable
// and still produce byte-identical results. The cluster layer therefore
// moves latency and placement around, never results — which is what the
// cluster chaos harness (internal/faults) asserts under peer_down and
// peer_slow schedules.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// DefaultVNodes is the per-member virtual-node count when a Ring is built
// without one. More vnodes smooth ownership shares and shrink the key range
// that moves on a membership change, at linear ring-size cost.
const DefaultVNodes = 64

// ringPoint is one virtual node on the hash circle.
type ringPoint struct {
	hash   uint64
	member int // index into Ring.members
}

// Ring is an immutable consistent-hash ring over a member set. Placement is
// a pure function of (seed, members, vnodes): every node building a ring
// from the same configuration agrees on every key's owners. Build one with
// NewRing; all methods are safe for concurrent use.
type Ring struct {
	seed    int64
	vnodes  int
	members []string // sorted unique
	points  []ringPoint
}

// NewRing builds a ring over the given members (deduplicated and sorted,
// so member order does not affect placement) with vnodes virtual nodes per
// member (<= 0 means DefaultVNodes). The seed perturbs every point hash,
// letting tests build differently shaped rings from the same member names.
func NewRing(seed int64, vnodes int, members []string) (*Ring, error) {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	seen := map[string]bool{}
	uniq := make([]string, 0, len(members))
	for _, m := range members {
		if m == "" {
			return nil, fmt.Errorf("cluster: empty ring member")
		}
		if !seen[m] {
			seen[m] = true
			uniq = append(uniq, m)
		}
	}
	if len(uniq) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one member")
	}
	sort.Strings(uniq)
	r := &Ring{seed: seed, vnodes: vnodes, members: uniq}
	r.points = make([]ringPoint, 0, len(uniq)*vnodes)
	for mi, m := range uniq {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: pointHash(seed, m, v), member: mi})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		// A full 64-bit hash collision between two members' points is
		// vanishingly rare but must still order deterministically.
		return r.points[a].member < r.points[b].member
	})
	return r, nil
}

// pointHash positions virtual node v of member m on the circle.
func pointHash(seed int64, member string, v int) uint64 {
	var buf [8]byte
	h := sha256.New()
	binary.BigEndian.PutUint64(buf[:], uint64(seed))
	h.Write(buf[:])
	h.Write([]byte(member))
	binary.BigEndian.PutUint64(buf[:], uint64(v))
	h.Write(buf[:])
	return binary.BigEndian.Uint64(h.Sum(nil)[:8])
}

// KeyHash positions a result key on the circle.
func KeyHash(key string) uint64 {
	sum := sha256.Sum256([]byte(key))
	return binary.BigEndian.Uint64(sum[:8])
}

// Members returns the ring's member set in sorted order. The slice is
// shared; callers must not mutate it.
func (r *Ring) Members() []string { return r.members }

// VNodes returns the per-member virtual-node count.
func (r *Ring) VNodes() int { return r.vnodes }

// Seed returns the ring's placement seed.
func (r *Ring) Seed() int64 { return r.seed }

// owner returns the index of the first ring point at or clockwise of h.
func (r *Ring) ownerIndex(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap past the highest point to the lowest
	}
	return i
}

// Owner returns the member owning key: the member of the first virtual node
// at or clockwise of the key's hash.
func (r *Ring) Owner(key string) string {
	return r.members[r.points[r.ownerIndex(KeyHash(key))].member]
}

// Owners returns the key's owner followed by its distinct successor members
// in ring order — the replica set for replication factor n. Fewer members
// than n returns all of them.
func (r *Ring) Owners(key string, n int) []string {
	if n < 1 {
		n = 1
	}
	if n > len(r.members) {
		n = len(r.members)
	}
	out := make([]string, 0, n)
	seen := make(map[int]bool, n)
	start := r.ownerIndex(KeyHash(key))
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.member] {
			seen[p.member] = true
			out = append(out, r.members[p.member])
		}
	}
	return out
}

// Shares returns each member's ownership fraction of the hash circle — the
// summed arc length preceding its virtual nodes over 2^64. Shares sum to 1
// and concentrate toward 1/len(members) as vnodes grows; /statusz exposes
// them so ring imbalance is observable rather than assumed.
func (r *Ring) Shares() map[string]float64 {
	out := make(map[string]float64, len(r.members))
	if len(r.members) == 1 {
		out[r.members[0]] = 1
		return out
	}
	for i, p := range r.points {
		// Unsigned subtraction wraps, so the first point's arc from the
		// last point around zero comes out right.
		prev := r.points[(i+len(r.points)-1)%len(r.points)].hash
		arc := p.hash - prev
		out[r.members[p.member]] += float64(arc) / (1 << 64)
	}
	return out
}
