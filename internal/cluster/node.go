package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/store"
)

// Config parameterises a cluster Node.
type Config struct {
	// Self is this node's advertised base URL; it must appear nowhere in
	// Peers and is what peers' rings know this node as. Required.
	Self string
	// Peers lists the other members' base URLs. The ring is built over
	// Peers + Self; every node must be configured with the same total
	// member set (order-insensitive) or placements disagree.
	Peers []string
	// Replicas is the total number of nodes holding each key (owner
	// included); <= 1 disables replication. Capped at the member count.
	Replicas int
	// VNodes is the ring's per-member virtual-node count; <= 0 means
	// DefaultVNodes. Must match across the cluster.
	VNodes int
	// RingSeed perturbs ring placement; must match across the cluster.
	RingSeed int64
	// Store is the node's local result cache (the same one its scheduler
	// uses). Required.
	Store *store.Store
	// Sched is the node's local scheduler. Required.
	Sched *service.Scheduler
	// HTTP is the base client for peer requests; nil means
	// http.DefaultClient. Tests pass the httptest server client.
	HTTP *http.Client
	// Faults optionally injects peer_down/peer_slow into every peer
	// request; nil injects nothing.
	Faults *faults.Injector
	// Log receives cluster-layer lines (forward decisions, failovers,
	// replication and repair outcomes); nil logs nothing.
	Log *obs.Logger
	// Tracer records "cluster"-layer wall spans for forwarded requests and
	// replication pushes, merged into job traces by trace ID. Nil traces
	// nothing.
	Tracer *obs.WallTracer
	// HealthInterval is the background peer-probe period; 0 means
	// DefaultHealthInterval, < 0 disables the background checker (tests
	// drive CheckPeers directly).
	HealthInterval time.Duration
}

// Node is one cluster member's routing layer: it wraps the local
// scheduler's HTTP API with ring-directed forwarding, replication, and
// read-repair. Create it with New, serve Handler, and Close it on
// shutdown.
type Node struct {
	cfg   Config
	ring  *Ring
	peers map[string]*peer // keyed by base URL; excludes self
	local http.Handler

	stop chan struct{}
	wg   sync.WaitGroup

	mu      sync.Mutex
	fwdJobs map[string]string // job ID → peer URL this node forwarded the submit to
	// fwdBodies remembers forwarded submit bodies so a stream whose owner
	// dies mid-flight can be recomputed locally.
	fwdBodies map[string][]byte
	// aliases maps a dead owner's job ID to the local job that replaced it
	// after a stream failover.
	aliases map[string]string

	met struct {
		sync.Mutex
		rec            *obs.Recorder
		forwarded      *obs.Counter // requests proxied to an owner
		local          *obs.Counter // owned requests served locally
		fallbackLocal  *obs.Counter // unowned submits computed locally (owners dead)
		forwardFailed  *obs.Counter // proxy attempts that failed over
		replicatedOut  *obs.Counter // entries pushed to successors
		replicatedIn   *obs.Counter // entries accepted from an owner
		replicateFails *obs.Counter // pushes that failed after retries
		readRepairs    *obs.Counter // misses repaired from a peer copy
	}
}

// New builds the node, its ring, and its peer clients, and starts the
// background health checker (unless disabled). The local handler is taken
// from cfg.Sched.
func New(cfg Config) (*Node, error) {
	if cfg.Self == "" {
		return nil, errors.New("cluster: Config.Self is required")
	}
	if cfg.Store == nil || cfg.Sched == nil {
		return nil, errors.New("cluster: Config.Store and Config.Sched are required")
	}
	ring, err := NewRing(cfg.RingSeed, cfg.VNodes, append([]string{cfg.Self}, cfg.Peers...))
	if err != nil {
		return nil, err
	}
	if cfg.Replicas < 1 {
		cfg.Replicas = 1
	}
	if cfg.Replicas > len(ring.Members()) {
		cfg.Replicas = len(ring.Members())
	}
	n := &Node{
		cfg:       cfg,
		ring:      ring,
		peers:     make(map[string]*peer, len(cfg.Peers)),
		local:     cfg.Sched.Handler(),
		stop:      make(chan struct{}),
		fwdJobs:   map[string]string{},
		fwdBodies: map[string][]byte{},
		aliases:   map[string]string{},
	}
	for _, u := range cfg.Peers {
		if u == cfg.Self {
			return nil, fmt.Errorf("cluster: self %q listed in peers", u)
		}
		httpc := peerHTTPClient(cfg.HTTP, cfg.Faults, u, cfg.Log)
		n.peers[u] = newPeer(u, cfg.Self, httpc, cfg.Tracer, cfg.Log)
	}
	rec := obs.New(obs.Config{Metrics: true})
	n.met.rec = rec
	n.met.forwarded = rec.Counter("cluster", "requests_forwarded", "")
	n.met.local = rec.Counter("cluster", "requests_local", "")
	n.met.fallbackLocal = rec.Counter("cluster", "fallback_local", "")
	n.met.forwardFailed = rec.Counter("cluster", "forward_failures", "")
	n.met.replicatedOut = rec.Counter("cluster", "replicated_out", "")
	n.met.replicatedIn = rec.Counter("cluster", "replicated_in", "")
	n.met.replicateFails = rec.Counter("cluster", "replicate_failures", "")
	n.met.readRepairs = rec.Counter("cluster", "read_repairs", "")
	if cfg.HealthInterval >= 0 {
		interval := cfg.HealthInterval
		if interval == 0 {
			interval = DefaultHealthInterval
		}
		n.wg.Add(1)
		go n.healthLoop(interval)
	}
	return n, nil
}

// count increments one cluster metric under the metrics lock.
func (n *Node) count(c *obs.Counter) {
	n.met.Lock()
	c.Inc()
	n.met.Unlock()
}

// Close stops the health checker and waits for in-flight replication
// pushes to finish. It does not drain the scheduler; that stays the
// caller's job.
func (n *Node) Close() {
	close(n.stop)
	n.wg.Wait()
}

// Ring returns the node's placement ring.
func (n *Node) Ring() *Ring { return n.ring }

// healthLoop probes every peer each interval until Close.
func (n *Node) healthLoop(interval time.Duration) {
	defer n.wg.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-n.stop:
			return
		case <-t.C:
			n.CheckPeers(context.Background())
		}
	}
}

// CheckPeers probes every peer's /healthz once, updating liveness and
// logging fingerprint skew (a cluster whose nodes run different code
// computes different cache keys and must be flagged, not silently split).
func (n *Node) CheckPeers(ctx context.Context) {
	for _, u := range n.peerURLs() {
		p := n.peers[u]
		wasAlive := p.Alive()
		if err := p.check(ctx, 5*time.Second); err != nil {
			if wasAlive {
				n.cfg.Log.Warn("peer went down", "peer", u, "error", err)
			}
			continue
		}
		if !wasAlive {
			n.cfg.Log.Info("peer recovered", "peer", u)
		}
		if fp := p.status().Fingerprint; fp != "" && fp != n.cfg.Sched.Fingerprint() {
			n.cfg.Log.Warn("peer fingerprint skew: ring placements will disagree",
				"peer", u, "peer_fingerprint", fp, "local_fingerprint", n.cfg.Sched.Fingerprint())
		}
	}
}

// peerURLs returns the peer set in sorted order, for deterministic probe
// and scan order.
func (n *Node) peerURLs() []string {
	urls := make([]string, 0, len(n.peers))
	for u := range n.peers {
		urls = append(urls, u)
	}
	sort.Strings(urls)
	return urls
}

// Handler returns the node's HTTP API: the local scheduler's surface with
// submits, job polls, and result reads routed through the ring, plus the
// replication endpoint peers push entries to.
func (n *Node) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", n.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", n.handleJobRouted)
	mux.HandleFunc("DELETE /v1/jobs/{id}", n.handleJobRouted)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", n.handleJobRouted)
	mux.HandleFunc("GET /v1/jobs/{id}/events", n.handleJobEvents)
	mux.HandleFunc("GET /v1/results/{key}", n.handleResult)
	mux.HandleFunc("PUT /v1/results/{key}", n.handleReplicate)
	mux.HandleFunc("GET /metricsz", n.handleMetricsz)
	mux.Handle("/", n.local)
	return mux
}

func clusterWriteJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func clusterWriteError(w http.ResponseWriter, code int, err error) {
	clusterWriteJSON(w, code, map[string]string{"error": err.Error()})
}

// serveLocal replays the (possibly already-consumed) request body and hands
// the request to the local scheduler handler.
func (n *Node) serveLocal(w http.ResponseWriter, r *http.Request, body []byte) {
	if body != nil {
		r = r.Clone(r.Context())
		r.Body = io.NopCloser(bytes.NewReader(body))
		r.ContentLength = int64(len(body))
	}
	n.local.ServeHTTP(w, r)
}

// forward proxies the request verbatim to peer p (adding the forwarded
// marker and keeping the inbound trace header), relaying the peer's status
// and body on success and returning the relayed body so the caller can
// inspect it (e.g. to remember which peer owns a returned job ID). It
// returns ok=false — after marking the peer down — on a transport-level
// failure, letting the caller fail over; a response from the peer,
// whatever its status, is relayed as-is because the peer is alive and its
// answer (202, 404, 429, ...) is the answer.
func (n *Node) forward(w http.ResponseWriter, r *http.Request, p *peer, body []byte) ([]byte, bool) {
	tc := obs.TraceContextFrom(r.Context())
	sp := tc.Start("cluster", "forward", "forward "+r.Method+" "+r.URL.Path,
		obs.WArg{Key: "peer", Val: p.url})
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, p.url+r.URL.RequestURI(), rd)
	if err != nil {
		sp.Annotate("outcome", "error")
		sp.End()
		return nil, false
	}
	if ct := r.Header.Get("Content-Type"); ct != "" {
		req.Header.Set("Content-Type", ct)
	}
	if id := r.Header.Get(obs.TraceHeader); id != "" {
		req.Header.Set(obs.TraceHeader, id)
	}
	req.Header.Set(ForwardedHeader, n.cfg.Self)
	resp, err := p.httpc().Do(req)
	if err != nil {
		p.markDown(err)
		n.count(n.met.forwardFailed)
		n.cfg.Log.Warn("forward failed, peer marked down", "peer", p.url,
			"method", r.Method, "path", r.URL.Path, "error", err)
		sp.Annotate("outcome", "failover")
		sp.Annotate("error", err.Error())
		sp.End()
		return nil, false
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		p.markDown(err)
		n.count(n.met.forwardFailed)
		sp.Annotate("outcome", "failover")
		sp.Annotate("error", err.Error())
		sp.End()
		return nil, false
	}
	n.count(n.met.forwarded)
	sp.Annotate("outcome", "relayed")
	sp.Annotate("status", strconv.Itoa(resp.StatusCode))
	sp.End()
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.WriteHeader(resp.StatusCode)
	w.Write(data)
	return data, true
}

// httpc returns the peer's fault-wrapped HTTP client.
func (p *peer) httpc() *http.Client {
	if p.client.HTTP != nil {
		return p.client.HTTP
	}
	return http.DefaultClient
}

// handleSubmit routes one submission: the key's primary owner serves it
// locally (its store single-flights identical submissions cluster-wide);
// any other node proxies to the live owners in replica order and falls
// back to computing locally — deterministically byte-identical — only when
// every remote owner is unreachable.
func (n *Node) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		clusterWriteError(w, http.StatusBadRequest, err)
		return
	}
	var req service.SubmitRequest
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		// Let the local handler produce its canonical 400.
		n.serveLocal(w, r, body)
		return
	}
	key := store.ResultKey(req.Experiment, req.Key(), n.cfg.Sched.Fingerprint())
	owners := n.ring.Owners(key, n.cfg.Replicas)
	if r.Header.Get(ForwardedHeader) != "" || owners[0] == n.cfg.Self {
		n.count(n.met.local)
		n.serveLocal(w, r, body)
		return
	}
	for _, o := range owners {
		if o == n.cfg.Self {
			continue
		}
		p := n.peers[o]
		if p == nil || !p.Alive() {
			continue
		}
		if data, ok := n.forward(w, r, p, body); ok {
			var js service.JobStatus
			if json.Unmarshal(data, &js) == nil {
				n.rememberForward(js.ID, o)
				n.rememberBody(js.ID, body)
			}
			return
		}
	}
	// Every remote owner is down (or filtered): serve locally. If self is
	// a replica this is normal degraded operation; if not, it is a full
	// fallback — either way the deterministic simulator returns the same
	// bytes the owner would have.
	selfOwns := false
	for _, o := range owners {
		selfOwns = selfOwns || o == n.cfg.Self
	}
	if !selfOwns {
		n.count(n.met.fallbackLocal)
		n.cfg.Log.Warn("all owners unreachable, computing locally",
			"key", store.ShortKey(key), "owners", fmt.Sprint(owners))
	} else {
		n.count(n.met.local)
	}
	n.serveLocal(w, r, body)
}

// rememberForward records which peer got a forwarded submit, so later polls
// of the returned job ID route straight back to it.
func (n *Node) rememberForward(id, peerURL string) {
	if id == "" {
		return
	}
	n.mu.Lock()
	n.fwdJobs[id] = peerURL
	n.mu.Unlock()
}

// forwardedTo returns the peer a job ID was forwarded to, if any.
func (n *Node) forwardedTo(id string) (string, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	u, ok := n.fwdJobs[id]
	return u, ok
}

// rememberBody keeps a forwarded submit body for stream failover.
func (n *Node) rememberBody(id string, body []byte) {
	if id == "" || body == nil {
		return
	}
	n.mu.Lock()
	n.fwdBodies[id] = body
	n.mu.Unlock()
}

// forwardedBody returns the submit body a forwarded job ID was created
// with, if remembered.
func (n *Node) forwardedBody(id string) ([]byte, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	b, ok := n.fwdBodies[id]
	return b, ok
}

// aliasJob records that remote job id was recomputed locally as localID.
func (n *Node) aliasJob(id, localID string) {
	n.mu.Lock()
	n.aliases[id] = localID
	n.mu.Unlock()
}

// aliasOf resolves a failover alias.
func (n *Node) aliasOf(id string) (string, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	localID, ok := n.aliases[id]
	return localID, ok
}

// redirectLocal serves the request locally with the aliased job ID spliced
// into the path.
func (n *Node) redirectLocal(w http.ResponseWriter, r *http.Request, oldID, newID string) {
	r2 := r.Clone(r.Context())
	r2.URL.Path = "/v1/jobs/" + newID + strings.TrimPrefix(r2.URL.Path, "/v1/jobs/"+oldID)
	r2.URL.RawPath = ""
	n.local.ServeHTTP(w, r2)
}

// handleJobRouted serves job GET/DELETE/trace requests: locally when the
// job is this node's, else by proxying to the peer the submit was
// forwarded to, else by scanning live peers (job IDs are per-node, so a
// poll can land anywhere in the cluster).
func (n *Node) handleJobRouted(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if localID, ok := n.aliasOf(id); ok {
		n.redirectLocal(w, r, id, localID)
		return
	}
	if _, ok := n.cfg.Sched.Job(id); ok || r.Header.Get(ForwardedHeader) != "" {
		n.serveLocal(w, r, nil)
		return
	}
	if u, ok := n.forwardedTo(id); ok {
		if p := n.peers[u]; p != nil && p.Alive() {
			if _, ok := n.forward(w, r, p, nil); ok {
				return
			}
		}
	}
	for _, u := range n.peerURLs() {
		p := n.peers[u]
		if !p.Alive() {
			continue
		}
		if found, done := n.probeJob(w, r, p, id); found {
			if done {
				return
			}
		}
	}
	n.serveLocal(w, r, nil) // canonical 404
}

// probeJob checks whether peer p knows job id (a cheap status GET) and, if
// so, forwards the real request there. found reports the job was located;
// done reports the response was written.
func (n *Node) probeJob(w http.ResponseWriter, r *http.Request, p *peer, id string) (found, done bool) {
	ctx, cancel := context.WithTimeout(r.Context(), 5*time.Second)
	defer cancel()
	if _, err := p.client.Job(ctx, id); err != nil {
		return false, false
	}
	n.rememberForward(id, p.url)
	_, done = n.forward(w, r, p, nil)
	return true, done
}

// handleResult serves result reads with read-repair: a local hit is
// served; a local miss asks the key's other owners (skipping dead peers)
// and, on a peer hit, repairs the local copy before serving — so one
// node's lost or quarantined entry heals from its replicas instead of
// recomputing. Forwarded reads never chain another hop.
func (n *Node) handleResult(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if !store.ValidKey(key) {
		n.serveLocal(w, r, nil) // canonical 400
		return
	}
	if e, ok, _ := n.cfg.Store.GetCtx(r.Context(), key); ok {
		n.count(n.met.local)
		clusterWriteJSON(w, http.StatusOK, e)
		return
	}
	if r.Header.Get(ForwardedHeader) != "" {
		n.serveLocal(w, r, nil) // canonical 404, no forwarding chains
		return
	}
	for _, o := range n.ring.Owners(key, n.cfg.Replicas) {
		if o == n.cfg.Self {
			continue
		}
		p := n.peers[o]
		if p == nil || !p.Alive() {
			continue
		}
		e, err := p.client.Result(r.Context(), key)
		if err != nil {
			continue
		}
		n.count(n.met.forwarded)
		n.count(n.met.readRepairs)
		if perr := n.cfg.Store.PutCtx(r.Context(), e); perr != nil {
			n.cfg.Log.Warn("read-repair write failed", "key", store.ShortKey(key), "error", perr)
		} else {
			n.cfg.Log.Info("read-repaired entry from peer", "key", store.ShortKey(key), "peer", o)
		}
		clusterWriteJSON(w, http.StatusOK, e)
		return
	}
	n.serveLocal(w, r, nil) // canonical 404
}

// handleReplicate accepts an entry pushed by the key's owner. The entry
// must address the URL's key and carry a valid checksum; anything else is
// rejected, so a confused or malicious peer cannot poison the store.
func (n *Node) handleReplicate(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if !store.ValidKey(key) {
		clusterWriteError(w, http.StatusBadRequest, errors.New("cluster: malformed result key"))
		return
	}
	var e store.Entry
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&e); err != nil {
		clusterWriteError(w, http.StatusBadRequest, err)
		return
	}
	if e.Key != key {
		clusterWriteError(w, http.StatusBadRequest, fmt.Errorf("cluster: entry key %s does not match URL key %s",
			store.ShortKey(e.Key), store.ShortKey(key)))
		return
	}
	if e.Checksum == "" || !e.ChecksumOK() {
		clusterWriteError(w, http.StatusBadRequest, errors.New("cluster: replicated entry failed checksum"))
		return
	}
	if err := n.cfg.Store.PutCtx(r.Context(), &e); err != nil {
		clusterWriteError(w, http.StatusInternalServerError, err)
		return
	}
	n.count(n.met.replicatedIn)
	n.cfg.Log.Info("accepted replicated entry", "key", store.ShortKey(key), "from", r.Header.Get(ForwardedHeader))
	clusterWriteJSON(w, http.StatusOK, map[string]string{"key": key, "status": "replicated"})
}

// handleMetricsz appends the cluster counters to the scheduler's exposition
// (disjoint subsystems, so the concatenation stays a valid exposition).
func (n *Node) handleMetricsz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	n.cfg.Sched.WriteMetricsText(w)
	n.WriteMetricsText(w)
}

// WriteMetricsText dumps the cluster counters in Prometheus text format.
func (n *Node) WriteMetricsText(w io.Writer) error {
	n.met.Lock()
	defer n.met.Unlock()
	return n.met.rec.WritePrometheusText(w)
}

// JobStateHook is the service.Config.StateHook half of replication: wire it
// into the scheduler and every freshly computed (non-cached) done job has
// its entry pushed asynchronously to the key's successor replicas. Cached
// completions skip the push — their entry already replicated when first
// computed, and read-repair heals any copy that has since been lost.
func (n *Node) JobStateHook(js service.JobStatus) {
	if js.State != service.StateDone || js.Cached || js.ResultKey == "" || n.cfg.Replicas < 2 {
		return
	}
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		n.replicate(js.ResultKey, js.TraceID)
	}()
}

// replicate pushes the local entry for key to every other owner in the
// key's replica set. Push errors are counted and logged, never fatal:
// read-repair covers any replica the push missed.
func (n *Node) replicate(key, traceID string) {
	ctx := context.Background()
	if obs.ValidTraceID(traceID) {
		ctx = obs.WithTraceContext(ctx, &obs.TraceContext{
			ID: traceID, Tracer: n.cfg.Tracer, Log: n.cfg.Log.With("trace_id", traceID)})
	}
	e, ok, err := n.cfg.Store.GetCtx(ctx, key)
	if !ok || err != nil {
		n.cfg.Log.Warn("replication skipped: entry unavailable locally",
			"key", store.ShortKey(key), "error", fmt.Sprint(err))
		return
	}
	sp := n.cfg.Tracer.Start(traceID, "cluster", "replicate", "replicate "+store.ShortKey(key))
	pushed := 0
	for _, o := range n.ring.Owners(key, n.cfg.Replicas) {
		if o == n.cfg.Self {
			continue
		}
		p := n.peers[o]
		if p == nil || !p.Alive() {
			continue
		}
		if err := p.client.PutResult(ctx, e); err != nil {
			n.count(n.met.replicateFails)
			n.cfg.Log.Warn("replication push failed", "key", store.ShortKey(key), "peer", o, "error", err)
			continue
		}
		pushed++
		n.count(n.met.replicatedOut)
	}
	sp.Annotate("pushed", strconv.Itoa(pushed))
	sp.End()
}

// Status is the cluster section of /statusz: membership, liveness, ring
// ownership shares, and the forwarding/replication counters.
type Status struct {
	Self     string             `json:"self"`
	Members  []string           `json:"members"`
	Replicas int                `json:"replicas"`
	VNodes   int                `json:"vnodes"`
	RingSeed int64              `json:"ring_seed"`
	Shares   map[string]float64 `json:"ring_shares"`
	Peers    []PeerStatus       `json:"peers"`

	Forwarded         uint64 `json:"requests_forwarded"`
	Local             uint64 `json:"requests_local"`
	FallbackLocal     uint64 `json:"fallback_local"`
	ForwardFailures   uint64 `json:"forward_failures"`
	ReplicatedOut     uint64 `json:"replicated_out"`
	ReplicatedIn      uint64 `json:"replicated_in"`
	ReplicateFailures uint64 `json:"replicate_failures"`
	ReadRepairs       uint64 `json:"read_repairs"`
}

// Status assembles the node's cluster snapshot.
func (n *Node) Status() Status {
	st := Status{
		Self:     n.cfg.Self,
		Members:  n.ring.Members(),
		Replicas: n.cfg.Replicas,
		VNodes:   n.ring.VNodes(),
		RingSeed: n.ring.Seed(),
		Shares:   n.ring.Shares(),
	}
	for _, u := range n.peerURLs() {
		st.Peers = append(st.Peers, n.peers[u].status())
	}
	n.met.Lock()
	st.Forwarded = n.met.forwarded.Value()
	st.Local = n.met.local.Value()
	st.FallbackLocal = n.met.fallbackLocal.Value()
	st.ForwardFailures = n.met.forwardFailed.Value()
	st.ReplicatedOut = n.met.replicatedOut.Value()
	st.ReplicatedIn = n.met.replicatedIn.Value()
	st.ReplicateFailures = n.met.replicateFails.Value()
	st.ReadRepairs = n.met.readRepairs.Value()
	n.met.Unlock()
	return st
}
