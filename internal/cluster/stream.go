package cluster

// Streaming across the ring: GET /v1/jobs/{id}/events follows the same
// owner-routing as job polls — a stream for a job this node forwarded is
// proxied (flushing frame by frame) to the owning peer with the inbound
// trace ID attached, so one trace covers the submit, the hop, and the
// stream. The difference from plain forwards is failure handling: a stream
// that breaks mid-flight cannot simply be retried against the same body,
// because the owner may be gone for good. Instead the node falls over to
// local compute — it replays the remembered submit body into its own
// scheduler (deterministically byte-identical results), aliases the remote
// job ID to the local one so later polls and cancels resolve, and keeps
// serving the same response from the local stream. Local event IDs restart
// from zero; service.Client tolerates the restart and watches through to
// the terminal event.

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"time"

	"repro/internal/obs"
	"repro/internal/service"
)

// handleJobEvents routes one job event stream: locally for local (or
// aliased, or already-forwarded) jobs, else proxied to the peer that got
// the submit, with local-compute failover when the owner dies mid-stream.
func (n *Node) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if localID, ok := n.aliasOf(id); ok {
		n.redirectLocal(w, r, id, localID)
		return
	}
	if _, ok := n.cfg.Sched.Job(id); ok || r.Header.Get(ForwardedHeader) != "" {
		n.serveLocal(w, r, nil)
		return
	}
	var p *peer
	if u, ok := n.forwardedTo(id); ok {
		if cand := n.peers[u]; cand != nil && cand.Alive() {
			p = cand
		}
	} else {
		// Unknown job: locate it the way handleJobRouted does — job IDs are
		// per-node, so the stream can be asked for anywhere in the cluster.
		for _, u := range n.peerURLs() {
			cand := n.peers[u]
			if !cand.Alive() {
				continue
			}
			ctx, cancel := context.WithTimeout(r.Context(), 5*time.Second)
			_, err := cand.client.Job(ctx, id)
			cancel()
			if err == nil {
				n.rememberForward(id, u)
				p = cand
				break
			}
		}
	}
	headerSent := false
	if p != nil {
		var done bool
		done, headerSent = n.forwardStream(w, r, p, id)
		if done {
			return
		}
	}
	n.failoverStream(w, r, id, headerSent)
}

// forwardStream proxies the stream to peer p, flushing after every read so
// events reach the client as they happen. done reports the response is
// complete (peer stream ended, error relayed, or client gone); !done means
// a transport-level break — the peer is marked down and the caller should
// fail over, on the already-started response when headerSent.
func (n *Node) forwardStream(w http.ResponseWriter, r *http.Request, p *peer, id string) (done, headerSent bool) {
	tc := obs.TraceContextFrom(r.Context())
	sp := tc.Start("cluster", "forward", "stream "+r.URL.Path,
		obs.WArg{Key: "peer", Val: p.url})
	defer sp.End()
	req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, p.url+r.URL.RequestURI(), nil)
	if err != nil {
		sp.Annotate("outcome", "error")
		return false, false
	}
	for _, h := range []string{"Accept", "Last-Event-ID", obs.TraceHeader} {
		if v := r.Header.Get(h); v != "" {
			req.Header.Set(h, v)
		}
	}
	req.Header.Set(ForwardedHeader, n.cfg.Self)
	resp, err := p.httpc().Do(req)
	if err != nil {
		p.markDown(err)
		n.count(n.met.forwardFailed)
		n.cfg.Log.Warn("stream forward failed to connect, peer marked down",
			"peer", p.url, "job", id, "error", err)
		sp.Annotate("outcome", "failover")
		return false, false
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		// The peer answered: its error (404, 401, ...) is the answer.
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		if ct := resp.Header.Get("Content-Type"); ct != "" {
			w.Header().Set("Content-Type", ct)
		}
		w.WriteHeader(resp.StatusCode)
		w.Write(data)
		n.count(n.met.forwarded)
		sp.Annotate("outcome", "relayed")
		return true, true
	}
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(resp.StatusCode)
	n.count(n.met.forwarded)
	flusher, _ := w.(http.Flusher)
	if flusher != nil {
		flusher.Flush()
	}
	buf := make([]byte, 4096)
	for {
		nr, rerr := resp.Body.Read(buf)
		if nr > 0 {
			if _, werr := w.Write(buf[:nr]); werr != nil {
				sp.Annotate("outcome", "client_gone")
				return true, true
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if rerr != nil {
			if rerr == io.EOF {
				sp.Annotate("outcome", "relayed")
				return true, true
			}
			if r.Context().Err() != nil {
				sp.Annotate("outcome", "client_gone")
				return true, true
			}
			p.markDown(rerr)
			n.count(n.met.forwardFailed)
			n.cfg.Log.Warn("stream forward broke mid-flight, failing over",
				"peer", p.url, "job", id, "error", rerr)
			sp.Annotate("outcome", "failover")
			return false, true
		}
	}
}

// failoverStream recomputes a dead owner's job locally and serves its
// stream on the same response. Without a remembered submit body nothing can
// be replayed: a fresh response gets the canonical 404, a broken-off stream
// just ends (the client reconnects and re-resolves).
func (n *Node) failoverStream(w http.ResponseWriter, r *http.Request, id string, headerSent bool) {
	body, ok := n.forwardedBody(id)
	if !ok {
		if !headerSent {
			n.serveLocal(w, r, nil) // canonical 404
		}
		return
	}
	var req service.SubmitRequest
	if err := json.Unmarshal(body, &req); err != nil {
		if !headerSent {
			clusterWriteError(w, http.StatusInternalServerError, err)
		}
		return
	}
	js, err := n.cfg.Sched.SubmitCtx(r.Context(), service.Request{
		Experiment: req.Experiment,
		Options:    req.Key(),
		Tenant:     req.Tenant,
		Priority:   req.Priority,
		Deadline:   time.Duration(req.DeadlineMS) * time.Millisecond,
	})
	if err != nil {
		if !headerSent {
			clusterWriteError(w, http.StatusServiceUnavailable, err)
		}
		return
	}
	n.aliasJob(id, js.ID)
	n.count(n.met.fallbackLocal)
	n.cfg.Log.Warn("stream owner unreachable, recomputing locally",
		"job", id, "local_job", js.ID)
	r2 := r.Clone(r.Context())
	r2.URL.Path = "/v1/jobs/" + js.ID + "/events"
	r2.URL.RawPath = ""
	r2.URL.RawQuery = "" // drop ?after= — local event IDs restart from zero
	r2.Header = r.Header.Clone()
	r2.Header.Del("Last-Event-ID")
	r2.Header.Set(ForwardedHeader, n.cfg.Self)
	var lw http.ResponseWriter = w
	if headerSent {
		lw = &midStreamWriter{w: w}
	}
	n.local.ServeHTTP(lw, r2)
}

// midStreamWriter continues an already-started response: the inner handler
// writes body bytes and flushes, while its header writes land in a scratch
// map (the real headers are on the wire already).
type midStreamWriter struct {
	w       http.ResponseWriter
	scratch http.Header
}

func (m *midStreamWriter) Header() http.Header {
	if m.scratch == nil {
		m.scratch = http.Header{}
	}
	return m.scratch
}

func (m *midStreamWriter) Write(b []byte) (int, error) { return m.w.Write(b) }

func (m *midStreamWriter) WriteHeader(int) {}

func (m *midStreamWriter) Flush() {
	if f, ok := m.w.(http.Flusher); ok {
		f.Flush()
	}
}
