package cluster

// The peer layer: one health-checked client per cluster member. Peers are
// static configuration (-peers); what changes at runtime is reachability.
// Detection is both passive (a failed forward marks the peer down
// immediately, so the very next request fails over without waiting for a
// probe) and active (a background checker probes /healthz and is the only
// path that marks a peer up again, so one good response ends an outage).
// Every peer request runs through a fault-consulting transport: the
// peer_down class fails the request before it is sent and peer_slow stalls
// it, which is how the chaos harness drives dead- and slow-peer behavior
// deterministically.

import (
	"context"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/service"
)

// ForwardedHeader marks a request already forwarded once by a cluster node.
// A receiving node serves it locally, whatever the ring says, so forwarding
// can never loop and a replica can serve a submit when the primary routed
// it there. The constant lives in the service package (its keyed-tenant
// auth admits forwarded requests as pre-authenticated); this alias keeps
// the cluster-side name.
const ForwardedHeader = service.ForwardedHeader

// DefaultHealthInterval is the background health-probe period.
const DefaultHealthInterval = 2 * time.Second

// peer is one remote cluster member: its typed client (used for forwarding,
// replication pushes, and health probes — all through the fault transport)
// and its liveness state.
type peer struct {
	url    string
	client *service.Client

	alive    atomic.Bool
	checks   atomic.Uint64 // health probes sent
	failures atomic.Uint64 // probes + forwards that failed

	mu          sync.Mutex
	fingerprint string // last fingerprint seen from /healthz
	lastErr     string // last failure, for /statusz
}

// newPeer builds the member's client over the node's HTTP transport, with
// the forwarded marker baked into every request and a small retry budget
// (service.Client's capped-exponential backoff) for transient blips. Peers
// start alive; the first failed request or probe marks them down.
func newPeer(url, self string, httpc *http.Client, tracer *obs.WallTracer, log *obs.Logger) *peer {
	p := &peer{
		url: url,
		client: &service.Client{
			BaseURL: url,
			HTTP:    httpc,
			Retry: service.RetryPolicy{
				MaxAttempts: 2,
				BaseBackoff: 10 * time.Millisecond,
				MaxBackoff:  100 * time.Millisecond,
			},
			RequestTimeout: 10 * time.Second,
			Headers:        map[string]string{ForwardedHeader: self},
			Tracer:         tracer,
			Log:            log,
		},
	}
	p.alive.Store(true)
	return p
}

// Alive reports the peer's current liveness estimate.
func (p *peer) Alive() bool { return p.alive.Load() }

// markDown records a failed request against the peer.
func (p *peer) markDown(err error) {
	p.alive.Store(false)
	p.failures.Add(1)
	p.mu.Lock()
	p.lastErr = err.Error()
	p.mu.Unlock()
}

// check probes the peer's /healthz once, flipping liveness on the outcome.
// It returns the probe error, if any.
func (p *peer) check(ctx context.Context, timeout time.Duration) error {
	p.checks.Add(1)
	cctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	h, err := p.client.Health(cctx)
	if err != nil {
		p.markDown(err)
		return err
	}
	p.alive.Store(true)
	p.mu.Lock()
	p.fingerprint = h.Fingerprint
	p.lastErr = ""
	p.mu.Unlock()
	return nil
}

// PeerStatus is one peer's row in the cluster's /statusz section.
type PeerStatus struct {
	URL         string `json:"url"`
	Alive       bool   `json:"alive"`
	Checks      uint64 `json:"checks"`
	Failures    uint64 `json:"failures"`
	Fingerprint string `json:"fingerprint,omitempty"`
	LastError   string `json:"last_error,omitempty"`
}

func (p *peer) status() PeerStatus {
	p.mu.Lock()
	fp, lastErr := p.fingerprint, p.lastErr
	p.mu.Unlock()
	return PeerStatus{
		URL:         p.url,
		Alive:       p.alive.Load(),
		Checks:      p.checks.Load(),
		Failures:    p.failures.Load(),
		Fingerprint: fp,
		LastError:   lastErr,
	}
}

// faultTransport consults the injector's peer classes before every peer
// request: peer_down fails the request unsent (the caller sees a transport
// error, exactly as if the peer's machine vanished) and peer_slow stalls it
// by the rule's delay. A nil injector passes requests straight through.
type faultTransport struct {
	base http.RoundTripper
	inj  *faults.Injector
	peer string
	log  *obs.Logger
}

func (t *faultTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if err := t.inj.Err(faults.PeerDown, "peer "+t.peer); err != nil {
		t.log.Warn("injected peer fault", "fault", faults.PeerDown.String(), "peer", t.peer,
			"method", req.Method, "path", req.URL.Path)
		return nil, err
	}
	if d := t.inj.Delay(faults.PeerSlow); d > 0 {
		t.log.Warn("injected peer fault", "fault", faults.PeerSlow.String(), "peer", t.peer, "delay", d)
		timer := time.NewTimer(d)
		select {
		case <-timer.C:
		case <-req.Context().Done():
			timer.Stop()
			return nil, req.Context().Err()
		}
	}
	return t.base.RoundTrip(req)
}

// peerHTTPClient wraps the node's base HTTP client with the fault transport
// for one peer.
func peerHTTPClient(base *http.Client, inj *faults.Injector, peerURL string, log *obs.Logger) *http.Client {
	if base == nil {
		base = http.DefaultClient
	}
	rt := base.Transport
	if rt == nil {
		rt = http.DefaultTransport
	}
	c := *base // shallow copy: same pooling, new transport chain
	c.Transport = &faultTransport{base: rt, inj: inj, peer: peerURL, log: log}
	return &c
}
