package cluster_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/report"
	"repro/internal/service"
	"repro/internal/store"
)

// The cluster tests run a real multi-node cluster in-process: each node is
// a full store + scheduler + cluster.Node stack behind an httptest server,
// and requests travel over actual HTTP between them. Two registered test
// experiments drive the interesting schedules: cluster-fast computes a
// deterministic table immediately (and counts its computes, so the tests
// can prove cluster-wide single-flight), cluster-block parks inside the
// driver until released (so concurrent duplicate submissions provably
// overlap).
var (
	fastComputes atomic.Int64

	clusterBlockMu sync.Mutex
	clusterRelease chan struct{}
	clusterStarted chan struct{}
)

func init() {
	experiments.Register("cluster-fast", "computes instantly, counting computes (test)",
		func(o experiments.Options) (*experiments.Result, error) {
			fastComputes.Add(1)
			tb := report.NewTable("cluster-fast", "seed", "runs")
			tb.AddRow(fmt.Sprint(o.Seed), fmt.Sprint(o.Runs))
			return &experiments.Result{ID: "cluster-fast", Title: "cluster test", Tables: []*report.Table{tb}}, nil
		})
	experiments.Register("cluster-block", "blocks until released, counting computes (test)",
		func(o experiments.Options) (*experiments.Result, error) {
			fastComputes.Add(1)
			clusterBlockMu.Lock()
			started, release := clusterStarted, clusterRelease
			clusterBlockMu.Unlock()
			if started != nil {
				started <- struct{}{}
			}
			if release != nil {
				ctx := o.Context
				if ctx == nil {
					ctx = context.Background()
				}
				select {
				case <-release:
				case <-ctx.Done():
					return nil, ctx.Err()
				}
			}
			tb := report.NewTable("cluster-block", "seed")
			tb.AddRow(fmt.Sprint(o.Seed))
			return &experiments.Result{ID: "cluster-block", Title: "cluster test", Tables: []*report.Table{tb}}, nil
		})
}

// armBlock re-arms cluster-block and returns its start-signal and release
// channels.
func armBlock() (chan struct{}, chan struct{}) {
	clusterBlockMu.Lock()
	defer clusterBlockMu.Unlock()
	clusterStarted = make(chan struct{}, 16)
	clusterRelease = make(chan struct{})
	return clusterStarted, clusterRelease
}

// swapHandler lets the httptest server start (fixing the node's URL) before
// the node that serves it exists.
type swapHandler struct {
	mu sync.Mutex
	h  http.Handler
}

func (s *swapHandler) set(h http.Handler) {
	s.mu.Lock()
	s.h = h
	s.mu.Unlock()
}

func (s *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	h := s.h
	s.mu.Unlock()
	if h == nil {
		http.Error(w, "node not ready", http.StatusServiceUnavailable)
		return
	}
	h.ServeHTTP(w, r)
}

const testFingerprint = "cluster-test-fp"

// testNode is one in-process cluster member.
type testNode struct {
	name   string
	srv    *httptest.Server
	store  *store.Store
	sched  *service.Scheduler
	node   *cluster.Node
	client *service.Client
}

// newCluster brings up n nodes whose rings all agree, with replication
// factor replicas and an optional shared fault injector. Background health
// checking is disabled; tests drive CheckPeers when they need probes.
func newCluster(t *testing.T, n, replicas int, inj *faults.Injector) []*testNode {
	t.Helper()
	nodes := make([]*testNode, n)
	swaps := make([]*swapHandler, n)
	urls := make([]string, n)
	for i := range nodes {
		swaps[i] = &swapHandler{}
		srv := httptest.NewServer(swaps[i])
		t.Cleanup(srv.Close)
		urls[i] = srv.URL
		nodes[i] = &testNode{name: fmt.Sprintf("n%d", i), srv: srv}
	}
	for i, tn := range nodes {
		st, err := store.Open(t.TempDir(), 0)
		if err != nil {
			t.Fatal(err)
		}
		tn.store = st
		// The scheduler's StateHook reaches the cluster node through an
		// atomic pointer: the scheduler must exist before the node (the node
		// wraps its handler) but the hook only fires once jobs run.
		var nodePtr atomic.Pointer[cluster.Node]
		sched, err := service.New(service.Config{
			Store:       st,
			Workers:     2,
			Fingerprint: testFingerprint,
			NodeName:    tn.name,
			StateHook: func(js service.JobStatus) {
				if nd := nodePtr.Load(); nd != nil {
					nd.JobStateHook(js)
				}
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		tn.sched = sched
		peers := make([]string, 0, n-1)
		for j, u := range urls {
			if j != i {
				peers = append(peers, u)
			}
		}
		nd, err := cluster.New(cluster.Config{
			Self:           tn.srv.URL,
			Peers:          peers,
			Replicas:       replicas,
			VNodes:         16,
			RingSeed:       1,
			Store:          st,
			Sched:          sched,
			Faults:         inj,
			HealthInterval: -1,
		})
		if err != nil {
			t.Fatal(err)
		}
		tn.node = nd
		nodePtr.Store(nd)
		swaps[i].set(nd.Handler())
		tn.client = &service.Client{BaseURL: tn.srv.URL}
		t.Cleanup(func() {
			nd.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			sched.Drain(ctx)
		})
	}
	return nodes
}

// ownerOf returns the index of the node owning req's result key, and the
// key itself.
func ownerOf(t *testing.T, nodes []*testNode, req service.SubmitRequest) (int, string) {
	t.Helper()
	key := store.ResultKey(req.Experiment, req.Key(), testFingerprint)
	owner := nodes[0].node.Ring().Owner(key)
	for i, tn := range nodes {
		if tn.srv.URL == owner {
			return i, key
		}
	}
	t.Fatalf("owner %s not among nodes", owner)
	return -1, ""
}

// waitDone polls the job to completion through the given node (exercising
// routed polling when the job lives elsewhere).
func waitDone(t *testing.T, tn *testNode, id string) service.JobStatus {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	js, err := tn.client.Wait(ctx, id, 10*time.Millisecond, nil)
	if err != nil {
		t.Fatalf("waiting for %s via %s: %v", id, tn.name, err)
	}
	return js
}

// TestClusterForwardingAndCrossNodeHit is the core routing path: a submit
// through a non-owner lands on the owner, polls through the submitting
// node reach it there, and a later identical submit through a third node
// hits the owner's cache.
func TestClusterForwardingAndCrossNodeHit(t *testing.T) {
	nodes := newCluster(t, 3, 1, nil)
	req := service.SubmitRequest{Experiment: "cluster-fast", Seed: 101, Runs: 1, Quick: true}
	oi, key := ownerOf(t, nodes, req)
	front := nodes[(oi+1)%3]
	third := nodes[(oi+2)%3]

	before := fastComputes.Load()
	ctx := context.Background()
	js, err := front.client.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	js = waitDone(t, front, js.ID)
	if js.State != service.StateDone {
		t.Fatalf("job state %s, error %q", js.State, js.Error)
	}
	if js.Node != nodes[oi].name {
		t.Errorf("job ran on %q, want owner %q", js.Node, nodes[oi].name)
	}
	if !strings.Contains(js.ID, nodes[oi].name) {
		t.Errorf("job ID %q not namespaced by owning node %q", js.ID, nodes[oi].name)
	}
	if js.ResultKey != key {
		t.Errorf("result key %s, want %s", store.ShortKey(js.ResultKey), store.ShortKey(key))
	}

	// Identical submit through the third node: forwarded to the same owner,
	// served from its cache without recomputing.
	js2, err := third.client.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	js2 = waitDone(t, third, js2.ID)
	if js2.State != service.StateDone {
		t.Fatalf("second job state %s, error %q", js2.State, js2.Error)
	}
	if !js2.Cached {
		t.Error("identical submit through another node missed the owner's cache")
	}
	if got := fastComputes.Load() - before; got != 1 {
		t.Errorf("cluster computed %d times, want 1", got)
	}

	if st := front.node.Status(); st.Forwarded == 0 {
		t.Error("front node reports zero forwarded requests")
	}
	if st := nodes[oi].node.Status(); st.Local == 0 {
		t.Error("owner reports zero local requests")
	}
	// The owner's store has the entry; the front node's does not (R=1).
	if _, ok, _ := nodes[oi].store.GetCtx(ctx, key); !ok {
		t.Error("owner store missing computed entry")
	}
	if _, ok, _ := front.store.GetCtx(ctx, key); ok {
		t.Error("front node store has entry despite R=1")
	}
}

// TestClusterSingleFlight: concurrent identical submissions entering the
// cluster through every node converge on the owner and share ONE
// computation.
func TestClusterSingleFlight(t *testing.T) {
	nodes := newCluster(t, 3, 1, nil)
	req := service.SubmitRequest{Experiment: "cluster-block", Seed: 202, Runs: 1, Quick: true}
	started, release := armBlock()

	before := fastComputes.Load()
	ctx := context.Background()
	ids := make([]string, len(nodes))
	var wg sync.WaitGroup
	errs := make([]error, len(nodes))
	for i, tn := range nodes {
		wg.Add(1)
		go func() {
			defer wg.Done()
			js, err := tn.client.Submit(ctx, req)
			if err != nil {
				errs[i] = err
				return
			}
			ids[i] = js.ID
		}()
	}
	// One compute starts; release it once all submissions are in.
	<-started
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("submit via %s: %v", nodes[i].name, err)
		}
	}
	close(release)

	for i, tn := range nodes {
		js := waitDone(t, tn, ids[i])
		if js.State != service.StateDone {
			t.Fatalf("job %s via %s: state %s, error %q", ids[i], tn.name, js.State, js.Error)
		}
	}
	if got := fastComputes.Load() - before; got != 1 {
		t.Errorf("3 concurrent identical submissions computed %d times, want 1 (cluster-wide single-flight)", got)
	}
	select {
	case <-started:
		t.Error("a second computation started")
	default:
	}
}

// TestClusterReplicationAndReadRepair: at R=2 a fresh computation is pushed
// to the successor replica, and a non-replica node's result read repairs
// its own missing copy from the owners.
func TestClusterReplicationAndReadRepair(t *testing.T) {
	nodes := newCluster(t, 3, 2, nil)
	req := service.SubmitRequest{Experiment: "cluster-fast", Seed: 303, Runs: 2, Quick: true}
	_, key := ownerOf(t, nodes, req)
	owners := nodes[0].node.Ring().Owners(key, 2)
	byURL := map[string]*testNode{}
	for _, tn := range nodes {
		byURL[tn.srv.URL] = tn
	}
	primary, replica := byURL[owners[0]], byURL[owners[1]]
	var outsider *testNode
	for _, tn := range nodes {
		if tn != primary && tn != replica {
			outsider = tn
		}
	}

	ctx := context.Background()
	js, err := primary.client.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if js = waitDone(t, primary, js.ID); js.State != service.StateDone {
		t.Fatalf("job state %s, error %q", js.State, js.Error)
	}

	// Replication is asynchronous (fired from the done-state hook); wait for
	// the replica's store to receive the entry.
	deadline := time.Now().Add(10 * time.Second)
	for {
		// The push writes the replica's store before the primary counts it,
		// so wait on both: entry present AND counter visible.
		_, ok, _ := replica.store.GetCtx(ctx, key)
		if ok && primary.node.Status().ReplicatedOut > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("entry never replicated to %s (present=%v, replicated_out=%d)",
				replica.name, ok, primary.node.Status().ReplicatedOut)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st := replica.node.Status(); st.ReplicatedIn == 0 {
		t.Error("replica reports zero replicated_in")
	}
	if _, ok, _ := outsider.store.GetCtx(ctx, key); ok {
		t.Fatalf("non-replica %s received the entry", outsider.name)
	}

	// A result read through the non-replica misses locally, fetches from an
	// owner, and repairs the local copy.
	e, err := outsider.client.Result(ctx, key)
	if err != nil {
		t.Fatalf("result read via non-replica: %v", err)
	}
	if e.Key != key || e.Tables == "" {
		t.Errorf("repaired entry malformed: key %s, %d table bytes", store.ShortKey(e.Key), len(e.Tables))
	}
	if _, ok, _ := outsider.store.GetCtx(ctx, key); !ok {
		t.Error("read-repair did not write the local copy")
	}
	if st := outsider.node.Status(); st.ReadRepairs == 0 {
		t.Error("non-replica reports zero read_repairs")
	}

	// The replicated and repaired copies carry the owner's exact bytes.
	pe, _, _ := primary.store.GetCtx(ctx, key)
	re, _, _ := replica.store.GetCtx(ctx, key)
	oe, _, _ := outsider.store.GetCtx(ctx, key)
	if pe == nil || re == nil || oe == nil {
		t.Fatal("entry missing from a store that should hold it")
	}
	if re.Tables != pe.Tables || oe.Tables != pe.Tables {
		t.Error("replicated/repaired tables differ from the owner's")
	}
	if re.Checksum != pe.Checksum || oe.Checksum != pe.Checksum {
		t.Error("replicated/repaired checksums differ from the owner's")
	}
}

// TestClusterFailover: when the owner dies, a submit through another node
// fails over to a local computation that is byte-identical to what the
// owner produced while alive.
func TestClusterFailover(t *testing.T) {
	nodes := newCluster(t, 3, 1, nil)
	req := service.SubmitRequest{Experiment: "cluster-fast", Seed: 404, Runs: 3, Quick: true}
	oi, key := ownerOf(t, nodes, req)
	owner := nodes[oi]
	front := nodes[(oi+1)%3]

	// Healthy pass: the owner computes and caches the result.
	ctx := context.Background()
	js, err := front.client.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if js = waitDone(t, front, js.ID); js.State != service.StateDone {
		t.Fatalf("healthy job state %s, error %q", js.State, js.Error)
	}
	healthy, ok, _ := owner.store.GetCtx(ctx, key)
	if !ok {
		t.Fatal("owner store missing entry after healthy pass")
	}

	// Kill the owner. The front node's next forward fails at the transport,
	// marks the peer down, and falls back to computing locally.
	owner.srv.Close()
	js2, err := front.client.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if js2 = waitDone(t, front, js2.ID); js2.State != service.StateDone {
		t.Fatalf("failover job state %s, error %q", js2.State, js2.Error)
	}
	if js2.Node != front.name {
		t.Errorf("failover job ran on %q, want local %q", js2.Node, front.name)
	}
	st := front.node.Status()
	if st.ForwardFailures == 0 {
		t.Error("front node reports zero forward_failures after owner death")
	}
	if st.FallbackLocal == 0 {
		t.Error("front node reports zero fallback_local after owner death")
	}
	for _, p := range st.Peers {
		if p.URL == owner.srv.URL && p.Alive {
			t.Error("dead owner still marked alive after failed forward")
		}
	}

	// The fallback computation is byte-identical to the owner's.
	local, ok, _ := front.store.GetCtx(ctx, key)
	if !ok {
		t.Fatal("front store missing entry after local fallback")
	}
	if local.Tables != healthy.Tables {
		t.Errorf("fallback tables differ from owner's:\nowner:\n%s\nfallback:\n%s", healthy.Tables, local.Tables)
	}

	// A third identical submit now hits the front node's local cache: the
	// ring still names the dead owner, but the live path serves it.
	js3, err := front.client.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if js3 = waitDone(t, front, js3.ID); !js3.Cached {
		t.Error("post-failover resubmit missed the fallback cache")
	}
}

// TestClusterReplicateEndpointRejectsBadEntries: the replication endpoint
// refuses key mismatches and checksum failures, so a confused peer cannot
// poison a store.
func TestClusterReplicateEndpointRejectsBadEntries(t *testing.T) {
	nodes := newCluster(t, 2, 2, nil)
	tn := nodes[0]
	key := store.ResultKey("cluster-fast", service.SubmitRequest{Experiment: "cluster-fast", Seed: 1, Runs: 1}.Key(), testFingerprint)

	put := func(urlKey string, e map[string]any) int {
		t.Helper()
		body, err := json.Marshal(e)
		if err != nil {
			t.Fatal(err)
		}
		req, err := http.NewRequest(http.MethodPut, tn.srv.URL+"/v1/results/"+urlKey, strings.NewReader(string(body)))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	otherKey := store.ResultKey("cluster-fast", service.SubmitRequest{Experiment: "cluster-fast", Seed: 2, Runs: 1}.Key(), testFingerprint)
	if code := put(key, map[string]any{"key": otherKey, "experiment": "cluster-fast", "fingerprint": testFingerprint, "tables": "x", "options": map[string]any{}, "created_at": "2026-01-01T00:00:00Z", "checksum": "junk"}); code != http.StatusBadRequest {
		t.Errorf("key-mismatch PUT returned %d, want 400", code)
	}
	if code := put(key, map[string]any{"key": key, "experiment": "cluster-fast", "fingerprint": testFingerprint, "tables": "x", "options": map[string]any{}, "created_at": "2026-01-01T00:00:00Z", "checksum": "0000000000000000000000000000000000000000000000000000000000000000"}); code != http.StatusBadRequest {
		t.Errorf("bad-checksum PUT returned %d, want 400", code)
	}
	if code := put("not-a-key", map[string]any{"key": key}); code != http.StatusBadRequest {
		t.Errorf("malformed-key PUT returned %d, want 400", code)
	}
	ctx := context.Background()
	if _, ok, _ := tn.store.GetCtx(ctx, key); ok {
		t.Error("rejected replication wrote to the store anyway")
	}
}
