package cluster

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata golden files")

// testKey synthesizes a deterministic 64-hex result-key stand-in.
func testKey(i int) string {
	return fmt.Sprintf("%064x", 0x9e3779b97f4a7c15*uint64(i+1))
}

// TestRingGoldenPlacement pins placement: the same (seed, vnodes, members)
// configuration must map the probe keys to the same owners and successor
// sets forever. A diff here means every deployed cluster would reshuffle
// its keys on upgrade — which is exactly the kind of silent break the
// golden file exists to catch. Regenerate deliberately with -update.
func TestRingGoldenPlacement(t *testing.T) {
	members := []string{
		"http://10.0.0.1:8344",
		"http://10.0.0.2:8344",
		"http://10.0.0.3:8344",
		"http://10.0.0.4:8344",
		"http://10.0.0.5:8344",
	}
	r, err := NewRing(42, 16, members)
	if err != nil {
		t.Fatal(err)
	}
	type placement struct {
		Key    string   `json:"key"`
		Owner  string   `json:"owner"`
		Owners []string `json:"owners"` // replica set at R=3
	}
	got := struct {
		Seed       int                `json:"seed"`
		VNodes     int                `json:"vnodes"`
		Members    []string           `json:"members"`
		Shares     map[string]float64 `json:"shares"`
		Placements []placement        `json:"placements"`
	}{Seed: 42, VNodes: 16, Members: r.Members(), Shares: roundShares(r.Shares())}
	for i := 0; i < 24; i++ {
		k := testKey(i)
		got.Placements = append(got.Placements, placement{Key: k, Owner: r.Owner(k), Owners: r.Owners(k, 3)})
	}

	path := filepath.Join("testdata", "ring_golden.json")
	if *updateGolden {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden (regenerate with -update): %v", err)
	}
	var want json.RawMessage = data
	gotJSON, err := json.MarshalIndent(got, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	gotJSON = append(gotJSON, '\n')
	if string(gotJSON) != string(want) {
		t.Errorf("ring placement diverged from golden file (ring hash changed?)\ngot:\n%s\nwant:\n%s", gotJSON, want)
	}
}

// roundShares trims shares to 6 decimal places so the golden file does not
// depend on float formatting noise.
func roundShares(in map[string]float64) map[string]float64 {
	out := make(map[string]float64, len(in))
	for k, v := range in {
		out[k] = float64(int(v*1e6+0.5)) / 1e6
	}
	return out
}

// TestRingDeterminism: member order and construction order must not matter.
func TestRingDeterminism(t *testing.T) {
	a, err := NewRing(7, 32, []string{"n1", "n2", "n3"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing(7, 32, []string{"n3", "n1", "n2", "n1"})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Members(), b.Members()) {
		t.Fatalf("member normalization differs: %v vs %v", a.Members(), b.Members())
	}
	for i := 0; i < 200; i++ {
		k := testKey(i)
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("key %d: owner %s vs %s", i, a.Owner(k), b.Owner(k))
		}
		if !reflect.DeepEqual(a.Owners(k, 2), b.Owners(k, 2)) {
			t.Fatalf("key %d: owners %v vs %v", i, a.Owners(k, 2), b.Owners(k, 2))
		}
	}
}

// TestRingRebalanceBound: adding or removing one member moves at most K/n
// of K keys (n = the smaller membership), the consistent-hashing contract
// that makes membership changes cheap. A modulo-hash placement would move
// ~K·(n-1)/n and fail this immediately.
func TestRingRebalanceBound(t *testing.T) {
	const K = 10000
	members := []string{"n1", "n2", "n3", "n4"}
	before, err := NewRing(1, 64, members)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("add-member", func(t *testing.T) {
		after, err := NewRing(1, 64, append([]string{"n5"}, members...))
		if err != nil {
			t.Fatal(err)
		}
		moved := 0
		for i := 0; i < K; i++ {
			if before.Owner(testKey(i)) != after.Owner(testKey(i)) {
				moved++
			}
		}
		// Every moved key must have moved TO the new member — an add never
		// shuffles keys between existing members.
		for i := 0; i < K; i++ {
			k := testKey(i)
			if before.Owner(k) != after.Owner(k) && after.Owner(k) != "n5" {
				t.Fatalf("key %d moved %s → %s, not to the new member", i, before.Owner(k), after.Owner(k))
			}
		}
		if bound := K / len(members); moved > bound {
			t.Errorf("adding a member moved %d/%d keys, bound %d", moved, K, bound)
		}
		t.Logf("add: moved %d/%d (ideal %d)", moved, K, K/(len(members)+1))
	})

	t.Run("remove-member", func(t *testing.T) {
		after, err := NewRing(1, 64, members[:3])
		if err != nil {
			t.Fatal(err)
		}
		moved := 0
		for i := 0; i < K; i++ {
			k := testKey(i)
			if before.Owner(k) != after.Owner(k) {
				moved++
				// Only keys the removed member owned may move.
				if before.Owner(k) != "n4" {
					t.Fatalf("key %d moved %s → %s though its owner survived", i, before.Owner(k), after.Owner(k))
				}
			}
		}
		if bound := K / 3; moved > bound {
			t.Errorf("removing a member moved %d/%d keys, bound %d", moved, K, bound)
		}
		t.Logf("remove: moved %d/%d (ideal %d)", moved, K, K/len(members))
	})
}

// TestRingShares: shares sum to 1 and stay within a loose balance envelope
// at production vnode counts.
func TestRingShares(t *testing.T) {
	r, err := NewRing(3, 128, []string{"a", "b", "c"})
	if err != nil {
		t.Fatal(err)
	}
	shares := r.Shares()
	sum := 0.0
	for m, s := range shares {
		sum += s
		if s < 0.15 || s > 0.55 {
			t.Errorf("member %s share %.3f outside [0.15, 0.55] at 128 vnodes", m, s)
		}
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("shares sum to %.6f, want 1", sum)
	}

	single, err := NewRing(0, 8, []string{"only"})
	if err != nil {
		t.Fatal(err)
	}
	if s := single.Shares()["only"]; s != 1 {
		t.Errorf("single-member share = %v, want 1", s)
	}
}

// TestRingOwnersProperties: replica sets are distinct, owner-prefixed, and
// capped at the membership.
func TestRingOwnersProperties(t *testing.T) {
	r, err := NewRing(5, 16, []string{"a", "b", "c"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		k := testKey(i)
		owners := r.Owners(k, 2)
		if len(owners) != 2 {
			t.Fatalf("key %d: %d owners, want 2", i, len(owners))
		}
		if owners[0] != r.Owner(k) {
			t.Fatalf("key %d: Owners[0]=%s but Owner=%s", i, owners[0], r.Owner(k))
		}
		if owners[0] == owners[1] {
			t.Fatalf("key %d: duplicate replica %v", i, owners)
		}
		if all := r.Owners(k, 99); len(all) != 3 {
			t.Fatalf("key %d: over-asking returned %d members, want 3", i, len(all))
		}
	}
}

func TestRingRejectsBadConfig(t *testing.T) {
	if _, err := NewRing(0, 8, nil); err == nil {
		t.Error("empty member list accepted")
	}
	if _, err := NewRing(0, 8, []string{"a", ""}); err == nil {
		t.Error("empty member name accepted")
	}
}

// FuzzRing checks the placement invariants hold for arbitrary member sets
// and keys: every key maps to a live (configured) member, replica sets are
// distinct subsets of the membership, and placement is insensitive to
// member order.
func FuzzRing(f *testing.F) {
	f.Add(int64(1), uint8(3), uint8(2), "somekey")
	f.Add(int64(99), uint8(1), uint8(1), "")
	f.Add(int64(-7), uint8(9), uint8(4), "fffffffffffffffffffffffffffffff0")
	f.Fuzz(func(t *testing.T, seed int64, nMembers, replicas uint8, key string) {
		n := int(nMembers)%9 + 1 // 1..9 members
		members := make([]string, n)
		for i := range members {
			members[i] = fmt.Sprintf("node-%d", i)
		}
		r, err := NewRing(seed, 8, members)
		if err != nil {
			t.Fatalf("valid config rejected: %v", err)
		}
		valid := map[string]bool{}
		for _, m := range members {
			valid[m] = true
		}
		owner := r.Owner(key)
		if !valid[owner] {
			t.Fatalf("owner %q outside membership %v", owner, members)
		}
		rf := int(replicas)%10 + 1
		owners := r.Owners(key, rf)
		if want := min(rf, n); len(owners) != want {
			t.Fatalf("Owners(%d) returned %d members, want %d", rf, len(owners), want)
		}
		seen := map[string]bool{}
		for _, o := range owners {
			if !valid[o] {
				t.Fatalf("replica %q outside membership %v", o, members)
			}
			if seen[o] {
				t.Fatalf("duplicate replica %q in %v", o, owners)
			}
			seen[o] = true
		}
		if owners[0] != owner {
			t.Fatalf("Owners[0]=%q, Owner=%q", owners[0], owner)
		}
		// Reversed member order must place identically.
		rev := make([]string, n)
		for i, m := range members {
			rev[n-1-i] = m
		}
		r2, err := NewRing(seed, 8, rev)
		if err != nil {
			t.Fatal(err)
		}
		if got := r2.Owner(key); got != owner {
			t.Fatalf("member order changed owner: %q vs %q", got, owner)
		}
	})
}
