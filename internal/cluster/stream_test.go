package cluster_test

// Cluster streaming tests: job event streams follow the same owner routing
// as polls — a stream requested anywhere in the ring is proxied to the
// owner frame by frame — and a mid-stream owner death fails over to local
// recomputation on the same response, so the watching client reaches the
// same terminal state and byte-identical tables without ever reconnecting
// to a different URL.

import (
	"context"
	"encoding/json"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/service"
)

// disarmBlock clears cluster-block's channels so a direct experiments.Run
// computes immediately (for fault-free baselines).
func disarmBlock() {
	clusterBlockMu.Lock()
	clusterStarted, clusterRelease = nil, nil
	clusterBlockMu.Unlock()
}

// streamStates extracts the state transitions a watch observed.
func streamStates(events []service.StreamEvent) []service.State {
	var out []service.State
	for _, ev := range events {
		if ev.Type != service.EventState {
			continue
		}
		var js service.JobStatus
		if json.Unmarshal(ev.Data, &js) == nil {
			out = append(out, js.State)
		}
	}
	return out
}

// TestClusterStreamThroughNonOwner: a job submitted through a non-owner
// node (forwarded to the owner) streams its events back through the
// submitting node — and through a third node that never saw the submit,
// which must locate the job across the ring. Both replays carry the same
// terminal state, and the served tables match a fault-free local run.
func TestClusterStreamThroughNonOwner(t *testing.T) {
	disarmBlock()
	nodes := newCluster(t, 3, 1, nil)
	req := service.SubmitRequest{Experiment: "cluster-fast", Seed: 501, Runs: 1, Quick: true}
	oi, _ := ownerOf(t, nodes, req)
	front, third := nodes[(oi+1)%3], nodes[(oi+2)%3]
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	js, err := front.client.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	js = waitDone(t, front, js.ID)
	if js.Node != nodes[oi].name {
		t.Fatalf("job ran on %s, want owner %s", js.Node, nodes[oi].name)
	}

	watch := func(tn *testNode) ([]service.StreamEvent, service.JobStatus) {
		var events []service.StreamEvent
		res, err := tn.client.WatchJobDetail(ctx, js.ID, 0, func(ev service.StreamEvent) {
			events = append(events, ev)
		})
		if err != nil {
			t.Fatalf("watch via %s: %v", tn.name, err)
		}
		return events, res.Status
	}
	frontEvents, frontStatus := watch(front)
	thirdEvents, thirdStatus := watch(third)
	if frontStatus.State != service.StateDone || thirdStatus.State != service.StateDone {
		t.Fatalf("streamed terminal states = %s via %s, %s via %s; want done",
			frontStatus.State, front.name, thirdStatus.State, third.name)
	}
	if len(frontEvents) != len(thirdEvents) {
		t.Errorf("front replayed %d events, third %d; the proxied replays should agree",
			len(frontEvents), len(thirdEvents))
	}
	states := streamStates(frontEvents)
	if len(states) == 0 || states[len(states)-1] != service.StateDone {
		t.Errorf("streamed states via %s = %v, want a sequence ending in done", front.name, states)
	}

	wantRes, err := experiments.Run(req.Experiment, experiments.Options{Seed: req.Seed, Runs: 1, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	e, err := front.client.Result(ctx, frontStatus.ResultKey)
	if err != nil {
		t.Fatal(err)
	}
	if e.Tables != wantRes.String() {
		t.Errorf("streamed job's tables diverged from fault-free run\ncluster:\n%s\nlocal:\n%s", e.Tables, wantRes.String())
	}
}

// TestClusterStreamOwnerFailoverMidStream: a client watches a forwarded
// job's stream through the submitting node while the owner executes it —
// then the owner dies. The proxying node must fail over on the same
// response: replay the remembered submit body into its own scheduler,
// alias the remote job ID, and keep streaming until the locally recomputed
// job's terminal event. The client never reconnects and still lands on
// done with byte-identical tables.
func TestClusterStreamOwnerFailoverMidStream(t *testing.T) {
	started, release := armBlock()
	nodes := newCluster(t, 3, 1, nil)
	req := service.SubmitRequest{Experiment: "cluster-block", Seed: 502, Runs: 1, Quick: true}
	oi, _ := ownerOf(t, nodes, req)
	front, victim := nodes[(oi+1)%3], nodes[oi]
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	js, err := front.client.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	<-started // the owner's worker is inside the experiment

	// Watch through the front node; signal once the owner's running event
	// has crossed both hops, so the kill below is provably mid-stream.
	running := make(chan struct{})
	type outcome struct {
		res service.WatchResult
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		var sawRunning bool
		res, err := front.client.WatchJobDetail(ctx, js.ID, 0, func(ev service.StreamEvent) {
			if ev.Type == service.EventState && !sawRunning {
				var st service.JobStatus
				if json.Unmarshal(ev.Data, &st) == nil && st.State == service.StateRunning {
					sawRunning = true
					close(running)
				}
			}
		})
		done <- outcome{res, err}
	}()
	select {
	case <-running:
	case <-time.After(30 * time.Second):
		t.Fatal("never saw the owner's running event through the proxy")
	}

	// Owner dies mid-stream: severing its connections kills the in-flight
	// proxy read. (srv.Close would block here — it waits for the live
	// stream to finish, which is exactly what never happens when an owner
	// dies.) The front node marks the peer down and recomputes locally —
	// where cluster-block parks again until released.
	victim.srv.CloseClientConnections()
	select {
	case <-started:
	case <-time.After(30 * time.Second):
		t.Fatal("failover never recomputed the job locally")
	}
	close(release)

	out := <-done
	if out.err != nil {
		t.Fatalf("watch across failover: %v", out.err)
	}
	if out.res.Status.State != service.StateDone {
		t.Fatalf("post-failover terminal = %s (%s), want done", out.res.Status.State, out.res.Status.Error)
	}
	if out.res.Reconnects != 0 {
		t.Errorf("client reconnected %d times; failover should continue the original response", out.res.Reconnects)
	}

	// The original (remote) job ID now aliases the local recompute: polls
	// through the front node resolve it.
	als, err := front.client.Job(ctx, js.ID)
	if err != nil {
		t.Fatalf("aliased poll: %v", err)
	}
	if als.State != service.StateDone {
		t.Errorf("aliased job = %s, want done", als.State)
	}

	// Byte-identical tables: what the failover served equals a fault-free
	// local run.
	disarmBlock()
	wantRes, err := experiments.Run(req.Experiment, experiments.Options{Seed: req.Seed, Runs: 1, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	e, err := front.client.Result(ctx, out.res.Status.ResultKey)
	if err != nil {
		t.Fatal(err)
	}
	if e.Tables != wantRes.String() {
		t.Errorf("failover tables diverged from fault-free run\nfailover:\n%s\nlocal:\n%s", e.Tables, wantRes.String())
	}
}
