// Package msg is the software messaging layer of the simulated machine,
// standing in for the paper's libmvpplus library. It adds what hardware
// alone does not charge: per-message software bookkeeping, buffer copies on
// both sides, and header bytes on the wire — the reason the observed gap in
// Table 3 (35 cycles/byte for put) is an order of magnitude above the
// hardware gap (3 cycles/byte). It also provides tagged receive matching and
// two barrier algorithms.
package msg

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/sim"
)

// SWParams model the software costs of the messaging layer.
type SWParams struct {
	// CopyPerByte is the processor cost of moving one payload byte through
	// the library's buffers, charged on both the send and receive sides.
	CopyPerByte float64
	// PerMsg is the fixed processor cost of assembling or disassembling one
	// message, charged on both sides.
	PerMsg sim.Time
	// HeaderBytes is the control information added to every message on the
	// wire.
	HeaderBytes int
}

// DefaultSW returns software parameters calibrated so that the observed
// bulk put gap through the full stack lands near Table 3's 35 cycles/byte
// over the 3 cycles/byte hardware gap.
func DefaultSW() SWParams {
	return SWParams{CopyPerByte: 16, PerMsg: 300, HeaderBytes: 32}
}

// AnySrc matches a message from any source in Recv.
const AnySrc = -1

// Comm wraps a machine node with the software messaging layer. All methods
// must be called from the node's own simulation process.
type Comm struct {
	Node *machine.Node
	SW   SWParams

	pending []machine.Packet
	barGen  int

	// CommCycles accumulates simulated time spent inside this layer; the
	// experiments report it as "communication time".
	CommCycles sim.Time

	// Observability hooks, nil unless Observe attached a recorder.
	obsSends    *obs.Counter
	obsBarriers *obs.Counter
	obsPayload  *obs.Histogram
}

// NewComm layers software messaging over a node.
func NewComm(n *machine.Node, sw SWParams) *Comm {
	return &Comm{Node: n, SW: sw}
}

// Observe attaches an observability recorder to the messaging layer:
// software-level send and barrier counts and a payload-size histogram
// (wire headers excluded, unlike machine's msg_wire_bytes).
func (c *Comm) Observe(r *obs.Recorder) {
	c.obsSends = r.Counter("msg", "sends", "")
	c.obsBarriers = r.Counter("msg", "barriers", "")
	c.obsPayload = r.Histogram("msg", "payload_bytes", "", obs.ExpBuckets(16, 4, 8))
}

// timed runs f and accounts its duration as communication time.
func (c *Comm) timed(f func()) {
	t0 := c.Node.Now()
	f()
	c.CommCycles += c.Node.Now() - t0
}

// Send transmits payload to dst under tag. payloadBytes is the size of the
// payload on the wire (headers are added by this layer); the sender is busy
// for the software per-message and copy costs before the hardware send.
func (c *Comm) Send(dst, tag, payloadBytes int, payload interface{}) {
	c.obsSends.Inc()
	c.obsPayload.Observe(float64(payloadBytes))
	c.timed(func() {
		c.Node.Busy(c.SW.PerMsg + sim.Time(float64(payloadBytes)*c.SW.CopyPerByte))
		c.Node.Send(dst, tag, payloadBytes+c.SW.HeaderBytes, payload)
	})
}

// Recv blocks until a message matching (src, tag) is available and returns
// it, charging receive-side software costs. src may be AnySrc. Messages that
// arrive while waiting but do not match are buffered for later Recv calls.
func (c *Comm) Recv(src, tag int) machine.Packet {
	var out machine.Packet
	c.timed(func() {
		for i, p := range c.pending {
			if matches(p, src, tag) {
				c.pending = append(c.pending[:i], c.pending[i+1:]...)
				c.chargeRecv(p)
				out = p
				return
			}
		}
		for {
			p := c.Node.Recv()
			if matches(p, src, tag) {
				c.chargeRecv(p)
				out = p
				return
			}
			c.pending = append(c.pending, p)
		}
	})
	return out
}

func (c *Comm) chargeRecv(p machine.Packet) {
	payload := p.Bytes - c.SW.HeaderBytes
	if payload < 0 {
		payload = 0
	}
	c.Node.Busy(c.SW.PerMsg + sim.Time(float64(payload)*c.SW.CopyPerByte))
}

func matches(p machine.Packet, src, tag int) bool {
	return (src == AnySrc || p.Src == src) && p.Tag == tag
}

// Pending returns the number of buffered unmatched messages.
func (c *Comm) Pending() int { return len(c.pending) }

// Barrier tags live in a reserved range; each barrier generation uses a
// fresh tag so consecutive barriers cannot cross-talk.
const barrierTagBase = 1 << 30

// Barrier synchronizes all nodes with a centralized algorithm: every node
// reports to node 0, which then releases everyone. Matches the flat barrier
// whose measured cost appears in Table 3 (L ≈ 25500 cycles at 16 nodes).
// All nodes must call it the same number of times.
func (c *Comm) Barrier() {
	c.obsBarriers.Inc()
	tag := barrierTagBase + c.barGen
	c.barGen++
	c.timed(func() {
		me := c.Node.ID()
		p := c.Node.P()
		if me == 0 {
			for i := 1; i < p; i++ {
				c.recvInternal(AnySrc, tag)
			}
			for i := 1; i < p; i++ {
				c.sendInternal(i, tag, 0, nil)
			}
			return
		}
		c.sendInternal(0, tag, 0, nil)
		c.recvInternal(0, tag)
	})
}

// TreeBarrier synchronizes all nodes with a dissemination barrier:
// ceil(log2 p) rounds, in round k each node signals (id + 2^k) mod p. It
// trades message count p-1 at the root for log p rounds of parallel
// messages; the benchmarks compare both (a Table 3 ablation).
func (c *Comm) TreeBarrier() {
	c.obsBarriers.Inc()
	tag := barrierTagBase + (1 << 20) + c.barGen
	c.barGen++
	c.timed(func() {
		me := c.Node.ID()
		p := c.Node.P()
		for k := 1; k < p; k <<= 1 {
			c.sendInternal((me+k)%p, tag+k, 0, nil)
			c.recvInternal((me-k+p)%p, tag+k)
		}
	})
}

// sendInternal and recvInternal are Send/Recv without the outer timing
// wrapper (for use inside timed sections).
func (c *Comm) sendInternal(dst, tag, payloadBytes int, payload interface{}) {
	c.Node.Busy(c.SW.PerMsg + sim.Time(float64(payloadBytes)*c.SW.CopyPerByte))
	c.Node.Send(dst, tag, payloadBytes+c.SW.HeaderBytes, payload)
}

func (c *Comm) recvInternal(src, tag int) machine.Packet {
	for i, p := range c.pending {
		if matches(p, src, tag) {
			c.pending = append(c.pending[:i], c.pending[i+1:]...)
			c.chargeRecv(p)
			return p
		}
	}
	for {
		p := c.Node.Recv()
		if matches(p, src, tag) {
			c.chargeRecv(p)
			return p
		}
		c.pending = append(c.pending, p)
	}
}

// String describes the layer configuration.
func (c *Comm) String() string {
	return fmt.Sprintf("msg.Comm(node=%d, copy=%.1f c/B, permsg=%d, hdr=%dB)",
		c.Node.ID(), c.SW.CopyPerByte, c.SW.PerMsg, c.SW.HeaderBytes)
}
