package msg

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/sim"
)

// harness runs prog on a p-node machine with a Comm per node.
func harness(t *testing.T, p int, net machine.NetParams, prog func(*Comm)) *machine.Multiprocessor {
	t.Helper()
	mp := machine.New(p, net, nil)
	if err := mp.Run(1, func(n *machine.Node) {
		prog(NewComm(n, DefaultSW()))
	}); err != nil {
		t.Fatal(err)
	}
	return mp
}

func TestSendRecvTagged(t *testing.T) {
	harness(t, 2, machine.DefaultNet(), func(c *Comm) {
		switch c.Node.ID() {
		case 0:
			c.Send(1, 5, 80, "five")
			c.Send(1, 6, 80, "six")
		case 1:
			// Receive out of arrival order: match on tag 6 first.
			p6 := c.Recv(0, 6)
			p5 := c.Recv(0, 5)
			if p6.Payload.(string) != "six" || p5.Payload.(string) != "five" {
				t.Error("tag matching failed")
			}
			if c.Pending() != 0 {
				t.Errorf("pending = %d, want 0", c.Pending())
			}
		}
	})
}

func TestRecvAnySrc(t *testing.T) {
	harness(t, 3, machine.DefaultNet(), func(c *Comm) {
		if c.Node.ID() != 0 {
			c.Send(0, 1, 8, c.Node.ID())
			return
		}
		got := map[int]bool{}
		for i := 0; i < 2; i++ {
			p := c.Recv(AnySrc, 1)
			got[p.Src] = true
		}
		if !got[1] || !got[2] {
			t.Errorf("sources seen: %v", got)
		}
	})
}

func TestSoftwareCostsCharged(t *testing.T) {
	// Sending a large payload must cost the sender roughly
	// PerMsg + bytes*CopyPerByte + hardware SendOverhead.
	var sent sim.Time
	harness(t, 2, machine.DefaultNet(), func(c *Comm) {
		if c.Node.ID() == 0 {
			c.Send(1, 0, 10000, nil)
			sent = c.Node.Now()
		} else {
			c.Recv(0, 0)
		}
	})
	sw := DefaultSW()
	want := sim.Time(float64(10000)*sw.CopyPerByte) + sw.PerMsg + 400
	if sent != want {
		t.Errorf("sender busy until %d, want %d", sent, want)
	}
}

func TestCommCyclesAccumulate(t *testing.T) {
	harness(t, 2, machine.DefaultNet(), func(c *Comm) {
		if c.Node.ID() == 0 {
			c.Send(1, 0, 1000, nil)
			if c.CommCycles == 0 {
				t.Error("send did not account communication time")
			}
		} else {
			c.Node.Proc().Advance(12345) // non-comm time
			c.Recv(0, 0)
			// Comm time excludes the Advance.
			if c.CommCycles >= c.Node.Now() {
				t.Errorf("comm cycles %d should exclude idle 12345", c.CommCycles)
			}
		}
	})
}

func TestBarrierReleasesTogether(t *testing.T) {
	times := make([]sim.Time, 8)
	harness(t, 8, machine.DefaultNet(), func(c *Comm) {
		// Stagger arrivals.
		c.Node.Proc().Advance(sim.Time(c.Node.ID()) * 5000)
		c.Barrier()
		times[c.Node.ID()] = c.Node.Now()
	})
	// No one may leave before the last arrival (id 7 at 35000).
	for i, tm := range times {
		if tm < 35000 {
			t.Errorf("node %d left barrier at %d, before last arrival", i, tm)
		}
	}
}

func TestBarrierRepeats(t *testing.T) {
	harness(t, 4, machine.DefaultNet(), func(c *Comm) {
		for i := 0; i < 10; i++ {
			c.Barrier()
		}
	})
}

func TestTreeBarrierReleasesTogether(t *testing.T) {
	times := make([]sim.Time, 7) // non-power-of-two on purpose
	harness(t, 7, machine.DefaultNet(), func(c *Comm) {
		c.Node.Proc().Advance(sim.Time(c.Node.ID()) * 3000)
		c.TreeBarrier()
		times[c.Node.ID()] = c.Node.Now()
	})
	for i, tm := range times {
		if tm < 18000 {
			t.Errorf("node %d left tree barrier at %d, before last arrival", i, tm)
		}
	}
}

func TestMixedBarriers(t *testing.T) {
	harness(t, 4, machine.DefaultNet(), func(c *Comm) {
		c.Barrier()
		c.TreeBarrier()
		c.Barrier()
	})
}

// TestBarrierCostNearTable3 checks the measured 16-node central barrier cost
// lands in the vicinity of Table 3's L = 25500 cycles (64us).
func TestBarrierCostNearTable3(t *testing.T) {
	var cost sim.Time
	harness(t, 16, machine.DefaultNet(), func(c *Comm) {
		c.Barrier() // warm: align all nodes
		t0 := c.Node.Now()
		c.Barrier()
		if c.Node.ID() == 0 {
			cost = c.Node.Now() - t0
		}
	})
	if cost < 12000 || cost > 51000 {
		t.Errorf("16-node barrier = %d cycles, want within 2x of Table 3's 25500", cost)
	} else {
		t.Logf("16-node central barrier: %d cycles (paper: 25500)", cost)
	}
}

func TestBarrierCentralVsTreeCost(t *testing.T) {
	// At p=16 with the default network the dissemination barrier (log p
	// rounds of parallel messages) beats the flat barrier (2(p-1) serial
	// messages through the root).
	cost := func(tree bool) sim.Time {
		var c0 sim.Time
		harness(t, 16, machine.DefaultNet(), func(c *Comm) {
			if tree {
				c.TreeBarrier()
			} else {
				c.Barrier()
			}
			t0 := c.Node.Now()
			if tree {
				c.TreeBarrier()
			} else {
				c.Barrier()
			}
			if c.Node.ID() == 0 {
				c0 = c.Node.Now() - t0
			}
		})
		return c0
	}
	central, tree := cost(false), cost(true)
	if tree >= central {
		t.Errorf("tree barrier (%d) should beat central (%d) at p=16", tree, central)
	}
}

func TestPendingStashSurvivesInterleaving(t *testing.T) {
	harness(t, 2, machine.DefaultNet(), func(c *Comm) {
		if c.Node.ID() == 0 {
			for i := 0; i < 5; i++ {
				c.Send(1, i, 8, i)
			}
			return
		}
		// Receive in reverse tag order: everything buffers then drains.
		for tag := 4; tag >= 0; tag-- {
			p := c.Recv(0, tag)
			if p.Payload.(int) != tag {
				t.Errorf("tag %d carried %v", tag, p.Payload)
			}
		}
		if c.Pending() != 0 {
			t.Errorf("pending = %d after draining", c.Pending())
		}
	})
}
