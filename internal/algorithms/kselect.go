package algorithms

import (
	"fmt"
	"sort"

	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/cpu"
)

// KSelect finds the k-th smallest element (0-indexed) of a distributed
// array by randomized pivoting — an extension workload built on the
// collective library. Each round broadcasts a pivot, counts elements below
// and equal to it with an AllReduce, and discards the irrelevant side;
// O(log n) rounds whp, each a constant number of phases. When few elements
// survive, they are gathered on processor 0 and finished sequentially.
//
// The selected value appears in the one-word shared array "ksel.out".
type KSelect struct {
	N int
	K int // rank to select, 0-indexed
	// Input returns processor id's block of the distributed input.
	Input func(id, p int) []int64
	// GatherAt is the survivor threshold below which the remainder moves to
	// processor 0; zero means 4096.
	GatherAt int
}

// Out returns the name of the result array.
func (KSelect) Out() string { return "ksel.out" }

// Program returns the QSM program.
func (a KSelect) Program() core.Program {
	gatherAt := a.GatherAt
	if gatherAt == 0 {
		gatherAt = 4096
	}
	return func(ctx core.Ctx) {
		p, id := ctx.P(), ctx.ID()
		if a.K < 0 || a.K >= a.N {
			panic(fmt.Sprintf("algorithms: k=%d out of range for n=%d", a.K, a.N))
		}
		local := append([]int64(nil), a.Input(id, p)...)
		out := ctx.RegisterSpec("ksel.out", 1, core.LayoutSpec{Kind: core.LayoutSingle, Owner: 0})
		stage := ctx.RegisterSpec("ksel.stage", a.N, core.LayoutSpec{Kind: core.LayoutSingle, Owner: 0})
		g := collective.NewGroup(ctx, "ksel")
		ctx.Sync()

		k := int64(a.K)
		for round := 0; ; round++ {
			counts := g.AllGather([]int64{int64(len(local))})
			var total int64
			for _, c := range counts {
				total += c
			}
			if total <= int64(gatherAt) {
				break
			}

			// The processor holding the most survivors proposes a random
			// pivot from its active set (deterministic tie-break by id).
			best := 0
			for i, c := range counts {
				if c > counts[best] {
					best = i
				}
			}
			var proposal int64
			if id == best {
				proposal = local[ctx.Rand().Intn(len(local))]
			}
			pivot := g.Broadcast(best, []int64{proposal})[0]

			var below, equal int64
			for _, v := range local {
				switch {
				case v < pivot:
					below++
				case v == pivot:
					equal++
				}
			}
			ctx.Compute(cpu.BlockSum(len(local)))
			agg := g.AllReduce([]int64{below, equal}, collective.Sum)
			gBelow, gEqual := agg[0], agg[1]

			switch {
			case k < gBelow:
				local = filter(local, func(v int64) bool { return v < pivot })
			case k < gBelow+gEqual:
				// The pivot is the answer.
				if id == 0 {
					ctx.Put(out, 0, []int64{pivot})
				}
				ctx.Sync()
				return
			default:
				local = filter(local, func(v int64) bool { return v > pivot })
				k -= gBelow + gEqual
			}
			ctx.Compute(cpu.BlockCompact(len(local)))
		}

		// Gather the survivors on processor 0 and finish sequentially.
		off, _ := g.ExclusiveScan(int64(len(local)), collective.Sum, 0)
		if len(local) > 0 {
			ctx.Put(stage, int(off), local)
		}
		total := g.AllReduce([]int64{int64(len(local))}, collective.Sum)[0]
		if id == 0 {
			rest := make([]int64, total)
			ctx.ReadLocal(stage, 0, rest)
			sort.Slice(rest, func(i, j int) bool { return rest[i] < rest[j] })
			ctx.Compute(cpu.BlockQuickSort(len(rest)))
			ctx.Put(out, 0, []int64{rest[k]})
		}
		ctx.Sync()
	}
}

func filter(xs []int64, keep func(int64) bool) []int64 {
	out := xs[:0]
	for _, v := range xs {
		if keep(v) {
			out = append(out, v)
		}
	}
	return out
}
