package algorithms

import (
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/workload"
)

// PrefixSums is the appendix's parallelprefix: one communication phase in
// which every processor broadcasts its local sum, giving QSM communication
// cost g(p-1). The result appears in the shared array "prefix.out".
type PrefixSums struct {
	N int
	// Input returns processor id's block of the distributed input
	// (workload.Partition sizing). It must be deterministic.
	Input func(id, p int) []int64
}

// OutName is the shared array holding the result.
const prefixOutName = "prefix.out"

// Out returns the name of the result array.
func (PrefixSums) Out() string { return prefixOutName }

// Program returns the QSM program.
func (a PrefixSums) Program() core.Program {
	return func(ctx core.Ctx) {
		p, id := ctx.P(), ctx.ID()
		lo, _ := workload.Partition(a.N, p, id)
		local := append([]int64(nil), a.Input(id, p)...)

		out := ctx.RegisterSpec(prefixOutName, a.N, core.LayoutSpec{Kind: core.LayoutBlocked})
		// bcast is a p x p matrix, one row per reader; row r is owned by
		// processor r (blocked layout with n = p*p gives blocks of p).
		bcast := ctx.RegisterSpec("prefix.bcast", p*p, core.LayoutSpec{Kind: core.LayoutBlocked})
		ctx.Sync()

		// Step 1: local prefix sums.
		for i := 1; i < len(local); i++ {
			local[i] += local[i-1]
		}
		ctx.Compute(cpu.BlockPrefixSum(len(local)))

		// Step 2: broadcast the local total to every other processor's row:
		// p-1 remote words, the algorithm's entire communication.
		var sum int64
		if len(local) > 0 {
			sum = local[len(local)-1]
		}
		idx := make([]int, 0, p-1)
		vals := make([]int64, 0, p-1)
		for r := 0; r < p; r++ {
			if r == id {
				ctx.WriteLocal(bcast, r*p+id, []int64{sum})
				continue
			}
			idx = append(idx, r*p+id)
			vals = append(vals, sum)
		}
		ctx.PutIndexed(bcast, idx, vals)
		ctx.Sync()

		// Step 3: add the offset of the preceding processors.
		row := make([]int64, p)
		ctx.ReadLocal(bcast, id*p, row)
		var off int64
		for r := 0; r < id; r++ {
			off += row[r]
		}
		for i := range local {
			local[i] += off
		}
		ctx.Compute(cpu.BlockSum(p).Add(cpu.BlockPrefixSum(len(local))))
		if len(local) > 0 {
			ctx.WriteLocal(out, lo, local)
		}
		ctx.Sync()
	}
}
