package algorithms

import (
	"testing"

	"repro/internal/core"
	"repro/internal/par"
	"repro/internal/qsmlib"
	"repro/internal/workload"
)

// backends runs a program on both the simulated and native machines and
// returns the named result array from each.
type runner struct {
	name string
	run  func(t *testing.T, p int, seed int64, prog core.Program, out string) []int64
}

func simRunner() runner {
	return runner{"sim", func(t *testing.T, p int, seed int64, prog core.Program, out string) []int64 {
		t.Helper()
		m := qsmlib.New(p, qsmlib.Options{Seed: seed})
		if err := m.Run(prog); err != nil {
			t.Fatal(err)
		}
		return m.Array(out)
	}}
}

func nativeRunner() runner {
	return runner{"native", func(t *testing.T, p int, seed int64, prog core.Program, out string) []int64 {
		t.Helper()
		m := par.NewMachine(p, par.Options{Seed: seed})
		if err := m.Run(prog); err != nil {
			t.Fatal(err)
		}
		return m.Array(out)
	}}
}

func bothBackends(t *testing.T, f func(t *testing.T, r runner)) {
	for _, r := range []runner{simRunner(), nativeRunner()} {
		r := r
		t.Run(r.name, func(t *testing.T) { f(t, r) })
	}
}

func blockInput(all []int64, n int) func(id, p int) []int64 {
	return func(id, p int) []int64 {
		lo, hi := workload.Partition(n, p, id)
		return all[lo:hi]
	}
}

func TestPrefixSumsMatchesSequential(t *testing.T) {
	bothBackends(t, func(t *testing.T, r runner) {
		for _, tc := range []struct{ n, p int }{
			{1000, 4}, {1000, 16}, {17, 4}, {5, 8}, {64, 1},
		} {
			in := workload.UniformInts(tc.n, 1000, 42)
			alg := PrefixSums{N: tc.n, Input: blockInput(in, tc.n)}
			got := r.run(t, tc.p, 1, alg.Program(), alg.Out())
			want := SeqPrefix(in)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("n=%d p=%d: out[%d] = %d, want %d", tc.n, tc.p, i, got[i], want[i])
				}
			}
		}
	})
}

func TestSampleSortMatchesSequential(t *testing.T) {
	bothBackends(t, func(t *testing.T, r runner) {
		for _, tc := range []struct{ n, p int }{
			{2000, 4}, {5000, 16}, {300, 8}, {1000, 1},
		} {
			in := workload.UniformInts(tc.n, 0, 7)
			alg := SampleSort{N: tc.n, Input: blockInput(in, tc.n)}
			got := r.run(t, tc.p, 2, alg.Program(), alg.Out())
			want := SeqSort(in)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("n=%d p=%d: out[%d] = %d, want %d", tc.n, tc.p, i, got[i], want[i])
				}
			}
		}
	})
}

func TestSampleSortWithDuplicates(t *testing.T) {
	bothBackends(t, func(t *testing.T, r runner) {
		n := 4000
		in := workload.ZipfInts(n, 1.3, 50, 9) // heavy duplication
		alg := SampleSort{N: n, Input: blockInput(in, n)}
		got := r.run(t, 8, 3, alg.Program(), alg.Out())
		want := SeqSort(in)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("out[%d] = %d, want %d", i, got[i], want[i])
			}
		}
	})
}

func TestSampleSortSkewMeasured(t *testing.T) {
	n, p := 5000, 8
	in := workload.UniformInts(n, 0, 11)
	skew := NewSortSkew(p)
	alg := SampleSort{N: n, Input: blockInput(in, n), Skew: skew}
	m := qsmlib.New(p, qsmlib.Options{Seed: 4})
	if err := m.Run(alg.Program()); err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, b := range skew.BucketSize {
		total += b
	}
	if total != int64(n) {
		t.Fatalf("bucket sizes sum to %d, want %d", total, n)
	}
	if skew.B() < int64(n/p) {
		t.Errorf("B = %d below perfect balance %d", skew.B(), n/p)
	}
	if r := skew.R(); r < 0.5 || r > 1 {
		t.Errorf("R = %.2f, want in [0.5, 1] for p=8", r)
	}
}

func TestListRankMatchesSequential(t *testing.T) {
	bothBackends(t, func(t *testing.T, r runner) {
		for _, tc := range []struct{ n, p int }{
			{500, 4}, {2000, 8}, {100, 16}, {50, 1}, {3, 2},
		} {
			l := workload.RandomList(tc.n, 13)
			alg := ListRank{List: l}
			got := r.run(t, tc.p, 5, alg.Program(), alg.Out())
			want := SeqListRank(l)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("n=%d p=%d: rank[%d] = %d, want %d", tc.n, tc.p, i, got[i], want[i])
				}
			}
		}
	})
}

func TestListRankSequentialListInput(t *testing.T) {
	bothBackends(t, func(t *testing.T, r runner) {
		l := workload.SequentialList(777)
		alg := ListRank{List: l}
		got := r.run(t, 4, 6, alg.Program(), alg.Out())
		for i, v := range got {
			if v != int64(i) {
				t.Fatalf("rank[%d] = %d, want %d", i, v, i)
			}
		}
	})
}

func TestAlgorithmsObeyQSMRules(t *testing.T) {
	// Run each algorithm with the bulk-synchrony rule checker on; a
	// violation fails the run.
	n, p := 1200, 4
	in := workload.UniformInts(n, 0, 21)
	l := workload.RandomList(n, 22)
	progs := map[string]core.Program{
		"prefix":   PrefixSums{N: n, Input: blockInput(in, n)}.Program(),
		"sort":     SampleSort{N: n, Input: blockInput(in, n)}.Program(),
		"listrank": ListRank{List: l}.Program(),
	}
	for name, prog := range progs {
		name, prog := name, prog
		t.Run(name, func(t *testing.T) {
			m := qsmlib.New(p, qsmlib.Options{Seed: 31})
			if _, err := m.RunProfiled(prog, core.Flags{CheckRules: true, TrackKappa: true}); err != nil {
				t.Fatalf("QSM rule violation: %v", err)
			}
		})
	}
}

func TestPrefixProfileMatchesTheory(t *testing.T) {
	// The prefix sums algorithm's communication is exactly p-1 remote words
	// per processor in one phase (the broadcast).
	n, p := 10000, 8
	in := workload.UniformInts(n, 100, 3)
	alg := PrefixSums{N: n, Input: blockInput(in, n)}
	m := qsmlib.New(p, qsmlib.Options{Seed: 8})
	prof, err := m.RunProfiled(alg.Program(), core.Flags{})
	if err != nil {
		t.Fatal(err)
	}
	var maxRW uint64
	for _, ph := range prof.Phases {
		if rw := ph.MaxRW(); rw > maxRW {
			maxRW = rw
		}
	}
	if maxRW != uint64(p-1) {
		t.Errorf("max m_rw = %d, want %d", maxRW, p-1)
	}
	if prof.TotalRemoteWords() != uint64(p*(p-1)) {
		t.Errorf("total remote words = %d, want %d", prof.TotalRemoteWords(), p*(p-1))
	}
}

func TestSeqHelpers(t *testing.T) {
	if got := SeqPrefix([]int64{1, 2, 3}); got[0] != 1 || got[1] != 3 || got[2] != 6 {
		t.Errorf("SeqPrefix = %v", got)
	}
	if got := SeqSort([]int64{3, 1, 2}); got[0] != 1 || got[2] != 3 {
		t.Errorf("SeqSort = %v", got)
	}
	for n, want := range map[int]int{1: 1, 2: 1, 3: 2, 4: 2, 5: 3, 1024: 10, 1025: 11} {
		if got := ceilLog2(n); got != want {
			t.Errorf("ceilLog2(%d) = %d, want %d", n, got, want)
		}
	}
}
