package algorithms

import (
	"testing"

	"repro/internal/core"
	"repro/internal/qsmlib"
	"repro/internal/workload"
)

func matInput(all []int64, n int) func(id, p int) []int64 {
	return func(id, p int) []int64 {
		lo, hi := workload.Partition(n, p, id)
		return all[lo*n : hi*n]
	}
}

func TestMatMulMatchesSequential(t *testing.T) {
	bothBackends(t, func(t *testing.T, r runner) {
		for _, tc := range []struct{ n, p int }{
			{16, 4}, {32, 8}, {33, 4}, {8, 16}, {24, 1},
		} {
			n := tc.n
			a := workload.UniformInts(n*n, 50, 11)
			bm := workload.UniformInts(n*n, 50, 12)
			alg := MatMul{N: n, A: matInput(a, n), B: matInput(bm, n)}
			got := r.run(t, tc.p, 3, alg.Program(), alg.Out())
			want := SeqMatMul(a, bm, n)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("n=%d p=%d: C[%d] = %d, want %d", n, tc.p, i, got[i], want[i])
				}
			}
		}
	})
}

func TestMatMulTrendsComputeBound(t *testing.T) {
	// The QSM story for matmul: computation is Theta(n^3/p) but
	// communication only Theta(n^2), so the comm/comp ratio must fall
	// roughly in half each time n doubles. (On this machine's ~300
	// cycles/word effective gap the absolute crossover sits near
	// n ~ g_word*p, beyond practical simulation sizes.)
	p := 8
	ratio := func(n int) float64 {
		a := workload.UniformInts(n*n, 10, 1)
		bm := workload.UniformInts(n*n, 10, 2)
		alg := MatMul{N: n, A: matInput(a, n), B: matInput(bm, n)}
		m := qsmlib.New(p, qsmlib.Options{Seed: 4})
		if err := m.Run(alg.Program()); err != nil {
			t.Fatal(err)
		}
		st := m.RunStats()
		return float64(st.MaxComm()) / float64(st.MaxComp())
	}
	r96, r192 := ratio(96), ratio(192)
	if r192 > 0.7*r96 {
		t.Errorf("comm/comp ratio did not fall with n: %.2f -> %.2f", r96, r192)
	}
}

func TestMatMulObeysRules(t *testing.T) {
	n, p := 32, 4
	a := workload.UniformInts(n*n, 10, 5)
	bm := workload.UniformInts(n*n, 10, 6)
	alg := MatMul{N: n, A: matInput(a, n), B: matInput(bm, n)}
	m := qsmlib.New(p, qsmlib.Options{Seed: 7})
	if _, err := m.RunProfiled(alg.Program(), core.Flags{CheckRules: true}); err != nil {
		t.Fatal(err)
	}
}

func TestKSelectMatchesSequential(t *testing.T) {
	bothBackends(t, func(t *testing.T, r runner) {
		n := 20000
		in := workload.UniformInts(n, 1000, 21) // heavy duplication
		sorted := SeqSort(in)
		for _, k := range []int{0, 1, n / 3, n / 2, n - 2, n - 1} {
			alg := KSelect{N: n, K: k, Input: blockInput(in, n), GatherAt: 512}
			got := r.run(t, 8, 5, alg.Program(), alg.Out())
			if got[0] != sorted[k] {
				t.Fatalf("k=%d: got %d, want %d", k, got[0], sorted[k])
			}
		}
	})
}

func TestKSelectDistinctValues(t *testing.T) {
	bothBackends(t, func(t *testing.T, r runner) {
		n := 5000
		in := workload.UniformInts(n, 0, 33)
		sorted := SeqSort(in)
		k := 1234
		alg := KSelect{N: n, K: k, Input: blockInput(in, n)}
		got := r.run(t, 4, 9, alg.Program(), alg.Out())
		if got[0] != sorted[k] {
			t.Fatalf("got %d, want %d", got[0], sorted[k])
		}
	})
}

func TestKSelectSingleProc(t *testing.T) {
	n := 1000
	in := workload.UniformInts(n, 0, 44)
	sorted := SeqSort(in)
	alg := KSelect{N: n, K: 500, Input: blockInput(in, n)}
	m := qsmlib.New(1, qsmlib.Options{Seed: 1})
	if err := m.Run(alg.Program()); err != nil {
		t.Fatal(err)
	}
	if got := m.Array(alg.Out())[0]; got != sorted[500] {
		t.Fatalf("got %d, want %d", got, sorted[500])
	}
}

func TestKSelectObeysRules(t *testing.T) {
	n := 3000
	in := workload.UniformInts(n, 100, 55)
	alg := KSelect{N: n, K: n / 2, Input: blockInput(in, n), GatherAt: 256}
	m := qsmlib.New(4, qsmlib.Options{Seed: 2})
	if _, err := m.RunProfiled(alg.Program(), core.Flags{CheckRules: true}); err != nil {
		t.Fatal(err)
	}
}

func TestKSelectBadKPanics(t *testing.T) {
	in := workload.UniformInts(10, 0, 1)
	alg := KSelect{N: 10, K: 10, Input: blockInput(in, 10)}
	m := qsmlib.New(2, qsmlib.Options{Seed: 1})
	if err := m.Run(alg.Program()); err == nil {
		t.Fatal("k out of range should error")
	}
}

func BenchmarkMatMulSim(b *testing.B) {
	n, p := 128, 8
	a := workload.UniformInts(n*n, 10, 1)
	bm := workload.UniformInts(n*n, 10, 2)
	alg := MatMul{N: n, A: matInput(a, n), B: matInput(bm, n)}
	for i := 0; i < b.N; i++ {
		m := qsmlib.New(p, qsmlib.Options{Seed: int64(i)})
		if err := m.Run(alg.Program()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKSelectSim(b *testing.B) {
	n, p := 100000, 16
	in := workload.UniformInts(n, 0, 9)
	alg := KSelect{N: n, K: n / 2, Input: blockInput(in, n)}
	for i := 0; i < b.N; i++ {
		m := qsmlib.New(p, qsmlib.Options{Seed: int64(i)})
		if err := m.Run(alg.Program()); err != nil {
			b.Fatal(err)
		}
	}
}

func TestWyllieMatchesSequential(t *testing.T) {
	bothBackends(t, func(t *testing.T, r runner) {
		for _, tc := range []struct{ n, p int }{
			{300, 4}, {1000, 8}, {64, 16}, {7, 2}, {50, 1},
		} {
			l := workload.RandomList(tc.n, 31)
			alg := WyllieListRank{List: l}
			got := r.run(t, tc.p, 7, alg.Program(), alg.Out())
			want := SeqListRank(l)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("n=%d p=%d: rank[%d] = %d, want %d", tc.n, tc.p, i, got[i], want[i])
				}
			}
		}
	})
}

func TestWyllieObeysRules(t *testing.T) {
	l := workload.RandomList(500, 37)
	alg := WyllieListRank{List: l}
	m := qsmlib.New(4, qsmlib.Options{Seed: 3})
	if _, err := m.RunProfiled(alg.Program(), core.Flags{CheckRules: true}); err != nil {
		t.Fatal(err)
	}
}

func TestWyllieMoreExpensiveThanRandomized(t *testing.T) {
	// Section 2.1's point: the PRAM-style algorithm keeps all n elements
	// active every round (Theta(n log n) communication) while the QSM
	// algorithm eliminates geometrically (Theta(n)).
	n, p := 32768, 16
	l := workload.RandomList(n, 41)
	mw := qsmlib.New(p, qsmlib.Options{Seed: 4})
	if err := mw.Run(WyllieListRank{List: l}.Program()); err != nil {
		t.Fatal(err)
	}
	mr := qsmlib.New(p, qsmlib.Options{Seed: 4})
	if err := mr.Run(ListRank{List: l}.Program()); err != nil {
		t.Fatal(err)
	}
	w := float64(mw.RunStats().TotalCycles)
	r := float64(mr.RunStats().TotalCycles)
	if w < 1.5*r {
		t.Errorf("Wyllie (%0.f) should cost well above randomized (%0.f)", w, r)
	}
}

// TestSampleSortAdversarialInputs exercises the sorter on inputs where
// random sampling is stressed: pre-sorted, reverse-sorted, nearly sorted,
// and all-equal.
func TestSampleSortAdversarialInputs(t *testing.T) {
	const n, p = 6000, 8
	cases := map[string][]int64{
		"sorted":        workload.SortedInts(n),
		"reverse":       workload.ReverseSortedInts(n),
		"nearly-sorted": workload.NearlySortedInts(n, 0.05, 3),
		"all-equal":     workload.ConstantInts(n, 7),
	}
	for name, in := range cases {
		name, in := name, in
		t.Run(name, func(t *testing.T) {
			alg := SampleSort{N: n, Input: blockInput(in, n)}
			m := qsmlib.New(p, qsmlib.Options{Seed: 6})
			if err := m.Run(alg.Program()); err != nil {
				t.Fatal(err)
			}
			want := SeqSort(in)
			got := m.Array(alg.Out())
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("out[%d] = %d, want %d", i, got[i], want[i])
				}
			}
		})
	}
}

func TestRadixSortMatchesSequential(t *testing.T) {
	bothBackends(t, func(t *testing.T, r runner) {
		for _, tc := range []struct{ n, p int }{
			{2000, 4}, {5000, 16}, {333, 8}, {100, 1},
		} {
			in := workload.UniformInts(tc.n, 1<<30, 61)
			alg := RadixSort{N: tc.n, KeyBits: 30, Input: blockInput(in, tc.n)}
			got := r.run(t, tc.p, 11, alg.Program(), alg.Out())
			want := SeqSort(in)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("n=%d p=%d: out[%d] = %d, want %d", tc.n, tc.p, i, got[i], want[i])
				}
			}
		}
	})
}

func TestRadixSortDuplicatesAndAdversarial(t *testing.T) {
	const n, p = 4000, 8
	for name, in := range map[string][]int64{
		"zipf":    workload.ZipfInts(n, 1.4, 1000, 63),
		"sorted":  workload.SortedInts(n),
		"reverse": workload.ReverseSortedInts(n),
	} {
		name, in := name, in
		t.Run(name, func(t *testing.T) {
			alg := RadixSort{N: n, KeyBits: 16, Input: blockInput(in, n)}
			m := qsmlib.New(p, qsmlib.Options{Seed: 12})
			if err := m.Run(alg.Program()); err != nil {
				t.Fatal(err)
			}
			want := SeqSort(in)
			got := m.Array(alg.Out())
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("out[%d] = %d, want %d", i, got[i], want[i])
				}
			}
		})
	}
}

func TestRadixSortRejectsOutOfRangeKeys(t *testing.T) {
	in := []int64{5, -1, 3, 2}
	alg := RadixSort{N: 4, KeyBits: 8, Input: blockInput(in, 4)}
	m := qsmlib.New(2, qsmlib.Options{Seed: 1})
	if err := m.Run(alg.Program()); err == nil {
		t.Fatal("negative key should error")
	}
}

func TestRadixSortObeysRules(t *testing.T) {
	n := 1500
	in := workload.UniformInts(n, 1<<16, 71)
	alg := RadixSort{N: n, KeyBits: 16, Input: blockInput(in, n)}
	m := qsmlib.New(4, qsmlib.Options{Seed: 13})
	if _, err := m.RunProfiled(alg.Program(), core.Flags{CheckRules: true}); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkSortStyles races the randomized sample sort against the
// deterministic radix sort at equal n on the simulated machine.
func BenchmarkSortStyles(b *testing.B) {
	const n, p = 131072, 16
	in := workload.UniformInts(n, 1<<30, 5)
	b.Run("samplesort", func(b *testing.B) {
		alg := SampleSort{N: n, Input: blockInput(in, n)}
		for i := 0; i < b.N; i++ {
			m := qsmlib.New(p, qsmlib.Options{Seed: int64(i)})
			if err := m.Run(alg.Program()); err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(m.RunStats().TotalCycles), "simcycles/op")
		}
	})
	b.Run("radixsort", func(b *testing.B) {
		alg := RadixSort{N: n, KeyBits: 30, Input: blockInput(in, n)}
		for i := 0; i < b.N; i++ {
			m := qsmlib.New(p, qsmlib.Options{Seed: int64(i)})
			if err := m.Run(alg.Program()); err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(m.RunStats().TotalCycles), "simcycles/op")
		}
	})
}
