package algorithms

import (
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/workload"
)

// WyllieListRank ranks a list by classic PRAM pointer jumping: every
// element repeatedly replaces its successor pointer with its successor's
// successor, accumulating rank weights, for ceil(log2 n) rounds. It is the
// PRAM-style algorithm Section 2.1 contrasts with QSM design: correct and
// simple, but it keeps every element active in every round — Theta(n log n)
// total communication against the randomized algorithm's Theta(n) — and its
// phase count grows with log n rather than log p. The ext3 experiment
// quantifies that gap on the simulated machine.
//
// Ranks (head = 0) appear in the shared array "wyllie.R".
type WyllieListRank struct {
	List *workload.List
}

// Out returns the name of the result array.
func (WyllieListRank) Out() string { return "wyllie.R" }

// Program returns the QSM program.
func (a WyllieListRank) Program() core.Program {
	return func(ctx core.Ctx) {
		p, id := ctx.P(), ctx.ID()
		l := a.List
		n := l.N
		lo, hi := workload.Partition(n, p, id)
		mine := hi - lo

		// Ranks grow from the head, so we jump along predecessor pointers:
		// the invariant is R[i] = total link weight between i and its
		// current shortcut target P[i]; once P[i] reaches past the head,
		// R[i] is i's distance from the head. Each round doubles shortcut
		// length, so ceil(log2 n) rounds converge.
		R := ctx.RegisterSpec("wyllie.R", n, core.LayoutSpec{Kind: core.LayoutBlocked})
		P := ctx.RegisterSpec("wyllie.P", n, core.LayoutSpec{Kind: core.LayoutBlocked})
		ctx.Sync()
		if mine > 0 {
			ctx.WriteLocal(P, lo, l.Pred[lo:hi])
			r0 := make([]int64, mine)
			for i := range r0 {
				r0[i] = 1
			}
			if l.Head >= lo && l.Head < hi {
				r0[l.Head-lo] = 0
			}
			ctx.WriteLocal(R, lo, r0)
		}
		ctx.Sync()

		rounds := ceilLog2(n)
		pBuf := make([]int64, mine)
		rBuf := make([]int64, mine)
		jumpIdx := make([]int, 0, mine)
		jumpPos := make([]int, 0, mine)
		predP := make([]int64, 0, mine)
		predR := make([]int64, 0, mine)
		for round := 0; round < rounds; round++ {
			if mine > 0 {
				ctx.ReadLocal(P, lo, pBuf)
				ctx.ReadLocal(R, lo, rBuf)
			}
			jumpIdx = jumpIdx[:0]
			jumpPos = jumpPos[:0]
			for k := 0; k < mine; k++ {
				if pBuf[k] >= 0 {
					jumpIdx = append(jumpIdx, int(pBuf[k]))
					jumpPos = append(jumpPos, k)
				}
			}
			predP = append(predP[:0], make([]int64, len(jumpIdx))...)
			predR = append(predR[:0], make([]int64, len(jumpIdx))...)
			ctx.GetIndexed(P, jumpIdx, predP)
			ctx.GetIndexed(R, jumpIdx, predR)
			ctx.Compute(cpu.BlockCompact(mine))
			ctx.Sync() // phase: fetch predecessors' state

			// Apply the jump: R[i] += R[pred]; P[i] = P[pred]. Own words
			// are committed via puts so remote readers see a consistent
			// snapshot next phase.
			wIdx := make([]int, 0, len(jumpPos))
			rVals := make([]int64, 0, len(jumpPos))
			pVals := make([]int64, 0, len(jumpPos))
			for j, k := range jumpPos {
				rBuf[k] += predR[j]
				wIdx = append(wIdx, lo+k)
				rVals = append(rVals, rBuf[k])
				pVals = append(pVals, predP[j])
			}
			ctx.PutIndexed(R, wIdx, rVals)
			ctx.PutIndexed(P, wIdx, pVals)
			ctx.Compute(cpu.BlockCompact(len(jumpPos)))
			ctx.Sync() // phase: jumps committed
		}
	}
}
