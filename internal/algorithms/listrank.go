package algorithms

import (
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/workload"
)

// ListRank is the appendix's listrank: randomized independent-set
// elimination. For c*log2(p) iterations every active element flips a random
// bit; an element that flipped 1 whose successor flipped 0 splices itself
// out of the doubly-linked list, folding its link weight into its
// successor. The surviving sublist is gathered on processor 0, ranked
// sequentially, and the eliminated elements are re-inserted in reverse
// order. Ranks (head = 0) appear in the shared array "rank.R".
//
// Phase count: with the flip generation of iteration t+1 merged into the
// splice phase of iteration t, the main loop costs two phases per
// iteration, matching the paper's pi = 4 + 16*log p for c = 4.
type ListRank struct {
	List *workload.List
	// C is the elimination-round multiplier: C*ceil(log2 p) iterations.
	// Zero means 4, the paper's setting.
	C int
	// Trace, when non-nil, receives the measured per-iteration compression
	// (the x_i and z of the paper's cost formula).
	Trace *RankTrace
}

// RankTrace records the load-balance measurements of one list-ranking run.
type RankTrace struct {
	// Active[t][id] is processor id's active element count at the start of
	// elimination iteration t; x_t = max over id.
	Active [][]int64
	// Survivors[id] is processor id's contribution to z.
	Survivors []int64
}

// NewRankTrace allocates trace storage for p processors. Iterations returns
// the elimination round count of a ListRank configured with multiplier c.
func NewRankTrace(p, iters int) *RankTrace {
	tr := &RankTrace{Active: make([][]int64, iters), Survivors: make([]int64, p)}
	for t := range tr.Active {
		tr.Active[t] = make([]int64, p)
	}
	return tr
}

// X returns the per-iteration maximum active counts (the x_i series).
func (tr *RankTrace) X() []float64 {
	xs := make([]float64, len(tr.Active))
	for t, row := range tr.Active {
		var m int64
		for _, v := range row {
			if v > m {
				m = v
			}
		}
		xs[t] = float64(m)
	}
	return xs
}

// Z returns the total survivor count.
func (tr *RankTrace) Z() float64 {
	var z int64
	for _, v := range tr.Survivors {
		z += v
	}
	return float64(z)
}

// Iterations returns the elimination round count for multiplier c on p
// processors.
func Iterations(c, p int) int {
	if c == 0 {
		c = 4
	}
	if p <= 1 {
		return 0
	}
	return c * ceilLog2(p)
}

// Out returns the name of the result array.
func (ListRank) Out() string { return "rank.R" }

// removal records one eliminated element for the expansion pass.
type removal struct {
	id     int
	pred   int
	weight int64
}

// Program returns the QSM program.
func (a ListRank) Program() core.Program {
	c := a.C
	if c == 0 {
		c = 4
	}
	return func(ctx core.Ctx) {
		p, id := ctx.P(), ctx.ID()
		l := a.List
		n := l.N
		head := l.Head
		iters := Iterations(c, p)
		lo, hi := workload.Partition(n, p, id)

		S := ctx.RegisterSpec("rank.S", n, core.LayoutSpec{Kind: core.LayoutBlocked})
		P := ctx.RegisterSpec("rank.P", n, core.LayoutSpec{Kind: core.LayoutBlocked})
		R := ctx.RegisterSpec("rank.R", n, core.LayoutSpec{Kind: core.LayoutBlocked})
		F := ctx.RegisterSpec("rank.F", n, core.LayoutSpec{Kind: core.LayoutBlocked})
		gID := ctx.RegisterSpec("rank.gID", n, core.LayoutSpec{Kind: core.LayoutSingle, Owner: 0})
		gSucc := ctx.RegisterSpec("rank.gSucc", n, core.LayoutSpec{Kind: core.LayoutSingle, Owner: 0})
		gRank := ctx.RegisterSpec("rank.gRank", n, core.LayoutSpec{Kind: core.LayoutSingle, Owner: 0})
		counts := ctx.RegisterSpec("rank.counts", p*p, core.LayoutSpec{Kind: core.LayoutBlocked})

		// Distribute the input: each processor owns the block [lo, hi).
		if hi > lo {
			ctx.WriteLocal(S, lo, l.Succ[lo:hi])
			ctx.WriteLocal(P, lo, l.Pred[lo:hi])
			r0 := make([]int64, hi-lo)
			for i := range r0 {
				r0[i] = 1
			}
			if head >= lo && head < hi {
				r0[head-lo] = 0
			}
			ctx.WriteLocal(R, lo, r0)
		}
		ctx.Sync() // phase: registration + input distribution

		active := make([]int, 0, hi-lo)
		for i := lo; i < hi; i++ {
			active = append(active, i)
		}
		removedAt := make([][]removal, iters)
		rng := ctx.Rand()

		flips := make([]int64, 0, len(active))
		flipIdx := make([]int, 0, len(active))
		myFlip := map[int]int64{}
		genFlips := func() {
			flips = flips[:0]
			flipIdx = flipIdx[:0]
			for k := range myFlip {
				delete(myFlip, k)
			}
			for _, i := range active {
				f := int64(rng.Intn(2))
				flips = append(flips, f)
				flipIdx = append(flipIdx, i)
				myFlip[i] = f
			}
			ctx.PutIndexed(F, flipIdx, flips)
			ctx.Compute(cpu.BlockFlipGenerate(len(active)))
		}

		// Major step 1: eliminate until roughly n/p elements remain.
		if iters > 0 {
			genFlips()
		}
		ctx.Sync() // flips of iteration 0 committed

		sBuf := make([]int64, 0, len(active))
		pBuf := make([]int64, 0, len(active))
		rBuf := make([]int64, 0, len(active))
		var sAll, pAll, rAll []int64
		if hi > lo {
			sAll = make([]int64, hi-lo)
			pAll = make([]int64, hi-lo)
			rAll = make([]int64, hi-lo)
		}
		for t := 0; t < iters; t++ {
			if a.Trace != nil {
				a.Trace.Active[t][id] = int64(len(active))
			}
			// Refresh local mirrors of this processor's partition: splices
			// from the previous iteration may have rewritten them.
			if hi > lo {
				ctx.ReadLocal(S, lo, sAll)
				ctx.ReadLocal(P, lo, pAll)
				ctx.ReadLocal(R, lo, rAll)
			}
			sBuf = sBuf[:0]
			pBuf = pBuf[:0]
			rBuf = rBuf[:0]
			for _, i := range active {
				sBuf = append(sBuf, sAll[i-lo])
				pBuf = append(pBuf, pAll[i-lo])
				rBuf = append(rBuf, rAll[i-lo])
			}
			ctx.Compute(cpu.BlockCompact(len(active)))

			// Phase B: candidates (flipped 1, not head, has successor)
			// prefetch the successor's flip and rank.
			cand := make([]int, 0, len(active)/2)
			succIdx := make([]int, 0, len(active)/2)
			for k, i := range active {
				if i == head || sBuf[k] < 0 || myFlip[i] != 1 {
					continue
				}
				cand = append(cand, k)
				succIdx = append(succIdx, int(sBuf[k]))
			}
			sf := make([]int64, len(cand))
			sr := make([]int64, len(cand))
			ctx.GetIndexed(F, succIdx, sf)
			ctx.GetIndexed(R, succIdx, sr)
			ctx.Sync() // phase B of iteration t

			// Phase C: splice out elements whose successor flipped 0, and
			// (merged) generate the next iteration's flips.
			var remIdx []int
			var remVals []int64
			keep := active[:0]
			removedHere := map[int]bool{}
			for ci, k := range cand {
				if sf[ci] != 0 {
					continue
				}
				i := active[k]
				succ := int(sBuf[k])
				pred := int(pBuf[k])
				// S[pred] = succ; P[succ] = pred; R[succ] += R[i].
				remIdx = append(remIdx, predS(n, pred), predP(n, succ), predR(n, succ))
				remVals = append(remVals, int64(succ), int64(pred), sr[ci]+rBuf[k])
				removedAt[t] = append(removedAt[t], removal{id: i, pred: pred, weight: rBuf[k]})
				removedHere[i] = true
			}
			for _, i := range active {
				if !removedHere[i] {
					keep = append(keep, i)
				}
			}
			active = keep
			// The three target arrays are registered separately; encode the
			// (array, index) pairs through three PutIndexed calls instead.
			splitPut(ctx, S, P, R, n, remIdx, remVals)
			ctx.Compute(cpu.BlockCompact(len(cand)))
			if t+1 < iters {
				genFlips()
			}
			ctx.Sync() // phase C of iteration t
		}

		// Major step 2: gather the surviving sublist on processor 0.
		z := int64(len(active))
		if a.Trace != nil {
			a.Trace.Survivors[id] = z
		}
		var cidx []int
		var cvals []int64
		for r := 0; r < p; r++ {
			if r == id {
				ctx.WriteLocal(counts, r*p+id, []int64{z})
				continue
			}
			cidx = append(cidx, r*p+id)
			cvals = append(cvals, z)
		}
		ctx.PutIndexed(counts, cidx, cvals)
		ctx.Sync() // phase: counts broadcast

		row := make([]int64, p)
		ctx.ReadLocal(counts, id*p, row)
		var gOff, total int64
		for r := 0; r < p; r++ {
			if r < id {
				gOff += row[r]
			}
			total += row[r]
		}
		if hi > lo {
			if sAll == nil {
				sAll = make([]int64, hi-lo)
				rAll = make([]int64, hi-lo)
			}
			ctx.ReadLocal(S, lo, sAll)
			ctx.ReadLocal(R, lo, rAll)
		}
		ids := make([]int64, len(active))
		succs := make([]int64, len(active))
		ranks := make([]int64, len(active))
		for k, i := range active {
			ids[k] = int64(i)
			succs[k] = sAll[i-lo]
			ranks[k] = rAll[i-lo]
		}
		if len(ids) > 0 {
			ctx.Put(gID, int(gOff), ids)
			ctx.Put(gSucc, int(gOff), succs)
			ctx.Put(gRank, int(gOff), ranks)
		}
		ctx.Compute(cpu.BlockCopy(len(active) * 3))
		ctx.Sync() // phase: survivors gathered

		// Processor 0 ranks the survivors sequentially and writes final
		// (absolute) ranks back into R.
		if id == 0 {
			zz := int(total)
			gids := make([]int64, zz)
			gsuccs := make([]int64, zz)
			granks := make([]int64, zz)
			ctx.ReadLocal(gID, 0, gids)
			ctx.ReadLocal(gSucc, 0, gsuccs)
			ctx.ReadLocal(gRank, 0, granks)
			succOf := make([]int64, n)
			weightOf := make([]int64, n)
			for i := range succOf {
				succOf[i] = -2 // not a survivor
			}
			for k := 0; k < zz; k++ {
				succOf[gids[k]] = gsuccs[k]
				weightOf[gids[k]] = granks[k]
			}
			finalIdx := make([]int, 0, zz)
			finalRank := make([]int64, 0, zz)
			acc := int64(0)
			for i := int64(head); i != -1; i = succOf[i] {
				if succOf[i] == -2 {
					panic("algorithms: broken survivor chain")
				}
				acc += weightOf[i]
				finalIdx = append(finalIdx, int(i))
				finalRank = append(finalRank, acc)
			}
			if len(finalIdx) != zz {
				panic("algorithms: survivor chain length mismatch")
			}
			ctx.PutIndexed(R, finalIdx, finalRank)
			ctx.Compute(cpu.BlockListTraverse(zz))
		}
		ctx.Sync() // phase: sequential ranks written

		// Major step 3: expansion — re-insert eliminated elements in reverse
		// order; each takes rank(pred) + its recorded link weight.
		for t := iters - 1; t >= 0; t-- {
			rem := removedAt[t]
			predIdx := make([]int, len(rem))
			for k, rm := range rem {
				predIdx[k] = rm.pred
			}
			pr := make([]int64, len(rem))
			ctx.GetIndexed(R, predIdx, pr)
			ctx.Sync() // expansion phase X_t

			myIdx := make([]int, len(rem))
			myRank := make([]int64, len(rem))
			for k, rm := range rem {
				myIdx[k] = rm.id
				myRank[k] = pr[k] + rm.weight
			}
			ctx.PutIndexed(R, myIdx, myRank)
			ctx.Compute(cpu.BlockCompact(len(rem)))
			ctx.Sync() // expansion phase Y_t
		}
	}
}

// The splice writes of phase C target three different arrays; remIdx packs
// them as n*0+i (S), n*1+i (P), n*2+i (R) and splitPut unpacks.
func predS(n, i int) int { return i }
func predP(n, i int) int { return n + i }
func predR(n, i int) int { return 2*n + i }

func splitPut(ctx core.Ctx, S, P, R core.Handle, n int, idx []int, vals []int64) {
	var si, pi, ri []int
	var sv, pv, rv []int64
	for k, ix := range idx {
		switch {
		case ix < n:
			si = append(si, ix)
			sv = append(sv, vals[k])
		case ix < 2*n:
			pi = append(pi, ix-n)
			pv = append(pv, vals[k])
		default:
			ri = append(ri, ix-2*n)
			rv = append(rv, vals[k])
		}
	}
	ctx.PutIndexed(S, si, sv)
	ctx.PutIndexed(P, pi, pv)
	ctx.PutIndexed(R, ri, rv)
}
