package algorithms

import (
	"fmt"

	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/workload"
)

// RadixSort is a deterministic LSD radix sort over non-negative keys: each
// pass counts digit occurrences locally, computes global stable positions
// with an all-gather of the count vectors, and scatters every element to
// its exact destination. It is the deterministic, oblivious counterpoint to
// SampleSort: its communication volume is fixed (n words per pass) and
// perfectly balanced, at the price of KeyBits/Bits full redistributions —
// useful both as a second sorting workload and as a load-balance control
// (its "skew" is identically zero, so QSM's best-case analysis is exact).
//
// The sorted result appears in the shared array "radix.out".
type RadixSort struct {
	N int
	// Bits is the digit width per pass (default 8).
	Bits int
	// KeyBits bounds the keys: all inputs must lie in [0, 2^KeyBits).
	// Default 32.
	KeyBits int
	// Input returns processor id's block of the distributed input.
	Input func(id, p int) []int64
}

// Out returns the name of the result array.
func (RadixSort) Out() string { return "radix.out" }

// Program returns the QSM program.
func (a RadixSort) Program() core.Program {
	bits := a.Bits
	if bits == 0 {
		bits = 8
	}
	keyBits := a.KeyBits
	if keyBits == 0 {
		keyBits = 32
	}
	return func(ctx core.Ctx) {
		p, id := ctx.P(), ctx.ID()
		n := a.N
		radix := 1 << bits
		mask := int64(radix - 1)
		lo, hi := workload.Partition(n, p, id)
		local := append([]int64(nil), a.Input(id, p)...)
		for _, v := range local {
			if v < 0 || v >= 1<<uint(keyBits) {
				panic(fmt.Sprintf("algorithms: key %d outside [0, 2^%d)", v, keyBits))
			}
		}

		out := ctx.RegisterSpec("radix.out", n, core.LayoutSpec{Kind: core.LayoutBlocked})
		stage := ctx.RegisterSpec("radix.stage", n, core.LayoutSpec{Kind: core.LayoutBlocked})
		g := collective.NewGroup(ctx, "radix")
		ctx.Sync()

		for shift := 0; shift < keyBits; shift += bits {
			digit := func(v int64) int { return int((v >> uint(shift)) & mask) }

			counts := make([]int64, radix)
			for _, v := range local {
				counts[digit(v)]++
			}
			ctx.Compute(cpu.BlockCompact(len(local)))

			// Global stable positions: element e with digit d on processor
			// i goes to (elements with smaller digits anywhere) + (digit-d
			// elements on processors < i) + (digit-d elements before e
			// locally).
			all := g.AllGather(counts) // p x radix
			start := make([]int64, radix)
			var acc int64
			for d := 0; d < radix; d++ {
				start[d] = acc
				for src := 0; src < p; src++ {
					acc += all[src*radix+d]
				}
			}
			myStart := make([]int64, radix)
			for d := 0; d < radix; d++ {
				myStart[d] = start[d]
				for src := 0; src < id; src++ {
					myStart[d] += all[src*radix+d]
				}
			}
			ctx.Compute(cpu.BlockSum(p * radix))

			idx := make([]int, len(local))
			cursor := myStart
			for k, v := range local {
				d := digit(v)
				idx[k] = int(cursor[d])
				cursor[d]++
			}
			ctx.PutIndexed(stage, idx, local)
			ctx.Compute(cpu.BlockScatter(len(local), uint64(8*n)))
			ctx.Sync()

			if hi > lo {
				local = local[:hi-lo]
				ctx.ReadLocal(stage, lo, local)
			}
		}

		if hi > lo {
			ctx.WriteLocal(out, lo, local)
		}
		ctx.Sync()
	}
}
