package algorithms

import (
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/workload"
)

// MatMul is a dense matrix multiplication C = A*B over int64, with A, B and
// C distributed by row blocks. It is the compute-bound counterpoint to the
// paper's communication-bound workloads: processor i fetches each row panel
// of B once (~n*n remote words over the run) but performs 2n^3/p local
// operations, so for n >> g_word*p the QSM charge max(m_op, g*m_rw) is
// dominated by m_op and the model predicts near-perfect speedup. (With the
// simulated machine's ~300-cycle effective word gap that crossover sits in
// the thousands; the tests assert the n^3-vs-n^2 trend instead.)
//
// The result appears in the shared array "mm.C".
type MatMul struct {
	N int // matrix dimension
	// A and B return processor id's row block of each input, row-major,
	// (hi-lo) x N. They must be deterministic.
	A func(id, p int) []int64
	B func(id, p int) []int64
}

// Out returns the name of the result array.
func (MatMul) Out() string { return "mm.C" }

// Program returns the QSM program.
func (m MatMul) Program() core.Program {
	return func(ctx core.Ctx) {
		p, id := ctx.P(), ctx.ID()
		n := m.N
		lo, hi := workload.Partition(n, p, id)
		rows := hi - lo

		a := m.A(id, p)
		bh := ctx.RegisterSpec("mm.B", n*n, core.LayoutSpec{Kind: core.LayoutBlocked})
		ch := ctx.RegisterSpec("mm.C", n*n, core.LayoutSpec{Kind: core.LayoutBlocked})
		ctx.Sync()

		// Distribute B: each processor owns rows [lo, hi). (The blocked
		// layout of an n*n array splits on word boundaries, not row
		// boundaries, when n*n/p is not a multiple of n; we write only the
		// words this processor owns and fetch panels with Get, which works
		// for any split.)
		myB := m.B(id, p)
		if rows > 0 {
			writeOwned(ctx, bh, lo*n, myB)
		}
		ctx.Sync()

		c := make([]int64, rows*n)
		panel := make([]int64, 0)
		for kp := 0; kp < p; kp++ {
			klo, khi := workload.Partition(n, p, kp)
			if khi == klo {
				continue
			}
			panel = panel[:0]
			panel = append(panel, make([]int64, (khi-klo)*n)...)
			if kp == id {
				copy(panel, myB)
			} else {
				ctx.Get(bh, klo*n, panel)
			}
			ctx.Sync()

			// C[lo:hi] += A[:, klo:khi] * B[klo:khi].
			for i := 0; i < rows; i++ {
				ar := a[i*n : (i+1)*n]
				cr := c[i*n : (i+1)*n]
				for kk := klo; kk < khi; kk++ {
					av := ar[kk]
					if av == 0 {
						continue
					}
					br := panel[(kk-klo)*n : (kk-klo+1)*n]
					for j := 0; j < n; j++ {
						cr[j] += av * br[j]
					}
				}
			}
			ctx.Compute(cpu.OpBlock{
				Int:       2 * uint64(rows) * uint64(khi-klo) * uint64(n),
				Loads:     uint64(rows) * uint64(khi-klo) * uint64(n) / 2,
				Stores:    uint64(rows) * uint64(n),
				Branches:  uint64(rows) * uint64(khi-klo),
				Pattern:   cpu.Sequential,
				Footprint: uint64((khi - klo) * n * 8),
				TakenProb: 0.99,
			})
		}
		if rows > 0 {
			writeOwned(ctx, ch, lo*n, c)
		}
		ctx.Sync()
	}
}

// writeOwned writes a contiguous range that is mostly local: the words this
// processor owns go through WriteLocal, boundary words (when n*n/p is not a
// multiple of n) through Put.
func writeOwned(ctx core.Ctx, h core.Handle, off int, vals []int64) {
	// Find the owned middle by probing with ReadLocal-safe spans: the
	// simplest correct strategy is Put for everything not owned; ownership
	// splits at ceil(len/p) boundaries which rarely align with rows, so we
	// just Put the whole range — the library classifies the local portion
	// itself and moves no bytes for it.
	ctx.Put(h, off, vals)
}

// SeqMatMul multiplies two n x n row-major matrices.
func SeqMatMul(a, b []int64, n int) []int64 {
	c := make([]int64, n*n)
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			av := a[i*n+k]
			if av == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				c[i*n+j] += av * b[k*n+j]
			}
		}
	}
	return c
}
