// Package algorithms implements the paper's three QSM workloads — prefix
// sums, sample sort, and list ranking — as core.Programs that run unchanged
// on the simulated machine (internal/qsmlib) and the native goroutine
// runtime (internal/par), plus their sequential baselines used for
// verification and speedup reporting.
package algorithms

import (
	"sort"

	"repro/internal/workload"
)

// SeqPrefix returns the prefix sums of in: out[i] = in[0] + ... + in[i].
func SeqPrefix(in []int64) []int64 {
	out := make([]int64, len(in))
	var acc int64
	for i, v := range in {
		acc += v
		out[i] = acc
	}
	return out
}

// SeqSort returns a sorted copy of in.
func SeqSort(in []int64) []int64 {
	out := append([]int64(nil), in...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SeqListRank returns the rank (position from the head, head = 0) of every
// element of l, by direct traversal.
func SeqListRank(l *workload.List) []int64 {
	return l.Ranks()
}

// ceilLog2 returns ceil(log2(n)), at least 1.
func ceilLog2(n int) int {
	if n <= 2 {
		return 1
	}
	k, v := 0, 1
	for v < n {
		v <<= 1
		k++
	}
	return k
}
