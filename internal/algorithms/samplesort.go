package algorithms

import (
	"sort"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/workload"
)

// SampleSort is the appendix's samplesort: over-sampling pivot selection,
// redistribution into p buckets, local sort, and a final redistribution into
// the output array. It runs in 5 phases whp. The sorted result appears in
// the shared array "sort.out".
type SampleSort struct {
	N int
	// C is the over-sampling factor: each processor draws C*ceil(log2 n)
	// random samples. Zero means 2.
	C int
	// Input returns processor id's block of the distributed input.
	Input func(id, p int) []int64
	// Skew, when non-nil, receives the measured load-balance quantities the
	// paper's "QSM estimate" lines are computed from.
	Skew *SortSkew
}

// SortSkew records per-processor load-balance measurements of one run.
type SortSkew struct {
	// BucketSize[i] is the number of elements sorted by processor i (its
	// bucket size); B = max over i.
	BucketSize []int64
	// RemoteInBucket[i] is how many of processor i's bucket elements
	// arrived from other processors; r = max_i RemoteInBucket[i]/BucketSize[i].
	RemoteInBucket []int64
	// OutRemote[i] is how many words of processor i's sorted output landed
	// outside its own partition of the output array.
	OutRemote []int64
}

// OutW returns the largest per-processor remote output volume (QSM charges
// the per-processor maximum m_rw, not the aggregate).
func (s *SortSkew) OutW() int64 {
	var w int64
	for _, v := range s.OutRemote {
		if v > w {
			w = v
		}
	}
	return w
}

// B returns the largest bucket size.
func (s *SortSkew) B() int64 {
	var b int64
	for _, v := range s.BucketSize {
		if v > b {
			b = v
		}
	}
	return b
}

// R returns the largest remote fraction of any bucket.
func (s *SortSkew) R() float64 {
	var r float64
	for i, sz := range s.BucketSize {
		if sz == 0 {
			continue
		}
		if f := float64(s.RemoteInBucket[i]) / float64(sz); f > r {
			r = f
		}
	}
	return r
}

// Out returns the name of the result array.
func (SampleSort) Out() string { return "sort.out" }

// Program returns the QSM program.
func (a SampleSort) Program() core.Program {
	c := a.C
	if c == 0 {
		c = 2
	}
	return func(ctx core.Ctx) {
		p, id := ctx.P(), ctx.ID()
		n := a.N
		clogn := c * ceilLog2(n)
		lo, hi := workload.Partition(n, p, id)
		local := append([]int64(nil), a.Input(id, p)...)
		if len(local) != hi-lo {
			panic("algorithms: input size does not match partition")
		}

		row := p * clogn // samples per broadcast row
		out := ctx.RegisterSpec("sort.out", n, core.LayoutSpec{Kind: core.LayoutBlocked})
		samples := ctx.RegisterSpec("sort.samples", p*row, core.LayoutSpec{Kind: core.LayoutBlocked})
		// desc row b holds, for bucket b: (staged offset, count) per source.
		desc := ctx.RegisterSpec("sort.desc", p*2*p, core.LayoutSpec{Kind: core.LayoutBlocked})
		staged := ctx.RegisterSpec("sort.staged", n, core.LayoutSpec{Kind: core.LayoutBlocked})
		sizes := ctx.RegisterSpec("sort.sizes", p*p, core.LayoutSpec{Kind: core.LayoutBlocked})
		ctx.Sync() // registration phase

		// Major step 1: each processor picks c*log n random samples (with
		// replacement) and broadcasts them to every processor's row.
		mySamples := make([]int64, clogn)
		for i := range mySamples {
			if len(local) > 0 {
				mySamples[i] = local[ctx.Rand().Intn(len(local))]
			}
		}
		var bidx []int
		var bvals []int64
		for r := 0; r < p; r++ {
			base := r*row + id*clogn
			if r == id {
				ctx.WriteLocal(samples, base, mySamples)
				continue
			}
			for k := 0; k < clogn; k++ {
				bidx = append(bidx, base+k)
				bvals = append(bvals, mySamples[k])
			}
		}
		ctx.PutIndexed(samples, bidx, bvals)
		ctx.Compute(cpu.BlockCopy(p * clogn))
		ctx.Sync() // phase 1: samples broadcast

		// Sort all cp*log n samples and pick every (c log n)-th as a pivot.
		all := make([]int64, row)
		ctx.ReadLocal(samples, id*row, all)
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		ctx.Compute(cpu.BlockQuickSort(row))
		pivots := make([]int64, p-1)
		for k := 1; k < p; k++ {
			pivots[k-1] = all[k*clogn]
		}

		// Major step 2: bucketize local elements (binary search over the
		// pivots), stage them contiguously per bucket, and post descriptors
		// to each bucket's owner.
		bucketOf := func(v int64) int {
			// Number of pivots < v; ties stay with the earlier bucket.
			b := sort.Search(len(pivots), func(k int) bool { return pivots[k] >= v })
			return b
		}
		counts := make([]int64, p)
		for _, v := range local {
			counts[bucketOf(v)]++
		}
		offs := make([]int64, p)
		var acc int64
		for b := 0; b < p; b++ {
			offs[b] = acc
			acc += counts[b]
		}
		stagedLocal := make([]int64, len(local))
		cursor := append([]int64(nil), offs...)
		for _, v := range local {
			b := bucketOf(v)
			stagedLocal[cursor[b]] = v
			cursor[b]++
		}
		if len(stagedLocal) > 0 {
			ctx.WriteLocal(staged, lo, stagedLocal)
		}
		var didx []int
		var dvals []int64
		for b := 0; b < p; b++ {
			base := b*2*p + 2*id
			off, cnt := int64(lo)+offs[b], counts[b]
			if b == id {
				ctx.WriteLocal(desc, base, []int64{off, cnt})
				continue
			}
			didx = append(didx, base, base+1)
			dvals = append(dvals, off, cnt)
		}
		ctx.PutIndexed(desc, didx, dvals)
		ctx.Compute(cpu.BlockBucketize(len(local), p))
		ctx.Sync() // phase 2: descriptors posted

		// Gather this processor's bucket from every source's staged region,
		// and broadcast the bucket size for output placement.
		myDesc := make([]int64, 2*p)
		ctx.ReadLocal(desc, id*2*p, myDesc)
		var total int64
		for src := 0; src < p; src++ {
			total += myDesc[2*src+1]
		}
		bucket := make([]int64, total)
		var remote int64
		pos := int64(0)
		for src := 0; src < p; src++ {
			off, cnt := int(myDesc[2*src]), myDesc[2*src+1]
			if cnt == 0 {
				continue
			}
			dst := bucket[pos : pos+cnt]
			if src == id {
				ctx.ReadLocal(staged, off, dst)
			} else {
				ctx.Get(staged, off, dst)
				remote += cnt
			}
			pos += cnt
		}
		var sidx []int
		var svals []int64
		for r := 0; r < p; r++ {
			if r == id {
				ctx.WriteLocal(sizes, r*p+id, []int64{total})
				continue
			}
			sidx = append(sidx, r*p+id)
			svals = append(svals, total)
		}
		ctx.PutIndexed(sizes, sidx, svals)
		ctx.Sync() // phase 3: buckets gathered

		// Major step 3: sort the bucket locally.
		sort.Slice(bucket, func(i, j int) bool { return bucket[i] < bucket[j] })
		ctx.Compute(cpu.BlockQuickSort(int(total)))

		// Major step 4: write the sorted bucket to its output position.
		sizesRow := make([]int64, p)
		ctx.ReadLocal(sizes, id*p, sizesRow)
		var gOff int64
		for r := 0; r < id; r++ {
			gOff += sizesRow[r]
		}
		if total > 0 {
			ctx.Put(out, int(gOff), bucket)
		}
		ctx.Compute(cpu.BlockCopy(int(total)))
		ctx.Sync() // phase 4: output written

		if a.Skew != nil {
			a.Skew.BucketSize[id] = total
			a.Skew.RemoteInBucket[id] = remote
			oLo, oHi := workload.Partition(n, p, id)
			overlap := min(int64(oHi), gOff+total) - max(int64(oLo), gOff)
			if overlap < 0 {
				overlap = 0
			}
			a.Skew.OutRemote[id] = total - overlap
		}
	}
}

// NewSortSkew allocates skew storage for p processors.
func NewSortSkew(p int) *SortSkew {
	return &SortSkew{
		BucketSize:     make([]int64, p),
		RemoteInBucket: make([]int64, p),
		OutRemote:      make([]int64, p),
	}
}
