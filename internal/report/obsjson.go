package report

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/obs"
)

// MetricsFileName is the canonical per-experiment metrics file name, written
// next to BENCH_<id>.json.
func MetricsFileName(id string) string { return fmt.Sprintf("METRICS_%s.json", id) }

// TraceFileName is the canonical per-experiment Chrome trace file name.
func TraceFileName(id string) string { return fmt.Sprintf("TRACE_%s.json", id) }

// WriteMetrics writes an experiment's aggregated metrics registry to
// dir/METRICS_<id>.json, creating dir if needed, and returns the path.
func WriteMetrics(dir, id string, rec *obs.Recorder) (string, error) {
	return writeObsFile(dir, MetricsFileName(id), rec.WriteMetricsJSON)
}

// WriteTrace writes an experiment's merged span trace to dir/TRACE_<id>.json
// in Chrome trace-event format (loadable in Perfetto or chrome://tracing),
// creating dir if needed, and returns the path.
func WriteTrace(dir, id string, rec *obs.Recorder) (string, error) {
	return writeObsFile(dir, TraceFileName(id), rec.WriteTraceJSON)
}

func writeObsFile(dir, name string, write func(w io.Writer) error) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	if err := write(f); err != nil {
		f.Close()
		return "", err
	}
	return path, f.Close()
}
