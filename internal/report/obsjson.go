package report

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/obs"
)

// MetricsFileName is the canonical per-experiment metrics file name, written
// next to BENCH_<id>.json.
func MetricsFileName(id string) string { return fmt.Sprintf("METRICS_%s.json", id) }

// TraceFileName is the canonical per-experiment Chrome trace file name.
func TraceFileName(id string) string { return fmt.Sprintf("TRACE_%s.json", id) }

// WriteMetrics writes an experiment's aggregated metrics registry to
// dir/METRICS_<id>.json, creating dir if needed, and returns the path.
func WriteMetrics(dir, id string, rec *obs.Recorder) (string, error) {
	return writeObsFile(dir, MetricsFileName(id), rec.WriteMetricsJSON)
}

// WriteMetricsRaw writes pre-rendered METRICS JSON — as cached in a result
// store entry — to dir/METRICS_<id>.json, creating dir if needed, and
// returns the path.
func WriteMetricsRaw(dir, id string, data []byte) (string, error) {
	return writeObsFile(dir, MetricsFileName(id), func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	})
}

// WriteTrace writes an experiment's merged span trace to dir/TRACE_<id>.json
// in Chrome trace-event format (loadable in Perfetto or chrome://tracing),
// creating dir if needed, and returns the path.
func WriteTrace(dir, id string, rec *obs.Recorder) (string, error) {
	return writeObsFile(dir, TraceFileName(id), rec.WriteTraceJSON)
}

// writeObsFile streams write into dir/name via a same-directory temp file
// and rename, so a failed or interrupted write leaves no partial file
// behind and readers never observe a half-written one.
func writeObsFile(dir, name string, write func(w io.Writer) error) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, name)
	f, err := os.CreateTemp(dir, name+".tmp-*")
	if err != nil {
		return "", err
	}
	if err := write(f); err != nil {
		f.Close()
		os.Remove(f.Name())
		return "", err
	}
	if err := f.Close(); err != nil {
		os.Remove(f.Name())
		return "", err
	}
	if err := os.Rename(f.Name(), path); err != nil {
		os.Remove(f.Name())
		return "", err
	}
	return path, nil
}
