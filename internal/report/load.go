package report

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"path/filepath"
	"sort"
	"strings"
)

// LoadRecord is one qsmload run's report: offered load, end-to-end latency
// percentiles, cache behavior, and how the work spread across cluster
// nodes. It is the cluster-level sibling of BenchRecord — BENCH files track
// the simulator's raw throughput, LOAD files track the serving stack's.
type LoadRecord struct {
	Experiment string `json:"experiment"`
	// Mode is "closed" (each worker submits, waits, repeats) or "open"
	// (requests arrive on a fixed schedule regardless of completions).
	Mode string `json:"mode"`
	// Targets is the qsmd endpoints load was spread across.
	Targets []string `json:"targets"`
	Workers int      `json:"workers,omitempty"`
	// RatePerSec is the offered arrival rate in open mode; 0 in closed mode.
	RatePerSec float64 `json:"rate_per_sec,omitempty"`
	Seed       int64   `json:"seed"`
	// Keys is the distinct-key universe size and ZipfS the skew exponent
	// (>1 Zipf-distributed hot keys, else uniform).
	Keys  int     `json:"keys"`
	ZipfS float64 `json:"zipf_s,omitempty"`

	WallSeconds float64 `json:"wall_seconds"`
	Requests    uint64  `json:"requests"`
	Errors      uint64  `json:"errors"`
	Throughput  float64 `json:"requests_per_sec"`

	CacheHits     uint64  `json:"cache_hits"`
	CacheHitRatio float64 `json:"cache_hit_ratio"`

	Latency LatencySummary `json:"latency_ms"`

	// PerNode counts jobs by the node that executed them (JobStatus.Node),
	// the observed balance of the ring placement.
	PerNode map[string]uint64 `json:"per_node,omitempty"`
	// NodeStats carries each target's cluster counters scraped after the
	// run, so the report shows how much traffic was forwarded vs served
	// locally and how replication behaved.
	NodeStats []NodeLoadStats `json:"node_stats,omitempty"`
	// Stream carries push-side measurements when the run watched jobs over
	// SSE (qsmload -stream) instead of polling.
	Stream *StreamLoadStats `json:"stream,omitempty"`
}

// StreamLoadStats summarises a -stream run's push side: how promptly the
// first event arrived after submit (TTFE) and how evenly events flowed
// (gap between consecutive events on one watch), plus the transport-level
// resume accounting.
type StreamLoadStats struct {
	// Watched counts jobs observed via an event stream (cache hits complete
	// at submit and are never watched).
	Watched uint64 `json:"watched"`
	// Events counts data events received across all watches.
	Events uint64 `json:"events"`
	// Drops counts server-side drop markers observed (each resumed via
	// Last-Event-ID).
	Drops uint64 `json:"drops"`
	// Reconnects counts stream re-establishments.
	Reconnects uint64 `json:"reconnects"`
	// TTFE is the submit-to-first-event latency distribution.
	TTFE LatencySummary `json:"ttfe_ms"`
	// EventGap is the distribution of gaps between consecutive events
	// within one watch.
	EventGap LatencySummary `json:"event_gap_ms"`
}

// LatencySummary is an end-to-end latency distribution in milliseconds.
type LatencySummary struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	P999  float64 `json:"p999"`
	Max   float64 `json:"max"`
}

// NodeLoadStats is one target's cluster-counter snapshot at the end of a
// load run.
type NodeLoadStats struct {
	URL           string `json:"url"`
	Forwarded     uint64 `json:"requests_forwarded"`
	Local         uint64 `json:"requests_local"`
	FallbackLocal uint64 `json:"fallback_local"`
	ReplicatedOut uint64 `json:"replicated_out"`
	ReplicatedIn  uint64 `json:"replicated_in"`
	ReadRepairs   uint64 `json:"read_repairs"`
}

// Finish derives the rates and latency summary from the raw samples.
// latenciesMS is consumed (sorted in place).
func (r *LoadRecord) Finish(latenciesMS []float64) {
	if r.WallSeconds > 0 {
		r.Throughput = float64(r.Requests) / r.WallSeconds
	}
	if r.Requests > 0 {
		r.CacheHitRatio = float64(r.CacheHits) / float64(r.Requests)
	}
	r.Latency = SummarizeLatency(latenciesMS)
}

// SummarizeLatency reduces a sample set (milliseconds, consumed: sorted in
// place) to its distribution summary.
func SummarizeLatency(ms []float64) LatencySummary {
	s := LatencySummary{Count: uint64(len(ms))}
	if len(ms) == 0 {
		return s
	}
	sort.Float64s(ms)
	sum := 0.0
	for _, v := range ms {
		sum += v
	}
	s.Mean = sum / float64(len(ms))
	s.P50 = Percentile(ms, 50)
	s.P90 = Percentile(ms, 90)
	s.P99 = Percentile(ms, 99)
	s.P999 = Percentile(ms, 99.9)
	s.Max = ms[len(ms)-1]
	return s
}

// Percentile returns the p-th percentile (0 < p <= 100) of an ascending
// sorted sample by linear interpolation between closest ranks. An empty
// sample returns 0.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo < 0 {
		lo = 0
	}
	if hi >= len(sorted) {
		hi = len(sorted) - 1
	}
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// LoadFileName is the canonical load-report file name.
func LoadFileName(name string) string { return fmt.Sprintf("LOAD_%s.json", name) }

// WriteLoad persists a load report. If path ends in ".json" the record is
// written there; otherwise path is a directory (created if needed)
// receiving LOAD_<name>.json. It returns the file written.
func WriteLoad(path, name string, rec *LoadRecord) (string, error) {
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return "", err
	}
	dir, file := path, LoadFileName(name)
	if strings.HasSuffix(path, ".json") {
		dir, file = filepath.Dir(path), filepath.Base(path)
	}
	return writeObsFile(dir, file, func(w io.Writer) error {
		_, werr := w.Write(append(data, '\n'))
		return werr
	})
}
