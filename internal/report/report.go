// Package report renders experiment results as aligned ASCII tables or CSV,
// the two formats the benchmark harness and command-line tools emit.
package report

import (
	"fmt"
	"strings"
)

// Table is a titled grid of cells.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; missing cells render empty, extras are dropped.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Columns))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddNote appends a footnote rendered below the table.
func (t *Table) AddNote(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total-2))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV renders the table as comma-separated values with a header row.
func (t *Table) CSV() string {
	var b strings.Builder
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	for i, c := range t.Columns {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(esc(c))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		for i, cell := range row {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(esc(cell))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// F formats a float compactly (4 significant digits).
func F(v float64) string { return fmt.Sprintf("%.4g", v) }

// I formats an integer-valued float without a fraction.
func I(v float64) string { return fmt.Sprintf("%.0f", v) }

// Pct formats a ratio as a percentage.
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }

// Cycles formats a cycle count with thousands grouping for readability.
func Cycles(v float64) string {
	s := fmt.Sprintf("%.0f", v)
	if len(s) <= 3 {
		return s
	}
	var b strings.Builder
	lead := len(s) % 3
	if lead > 0 {
		b.WriteString(s[:lead])
	}
	for i := lead; i < len(s); i += 3 {
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		b.WriteString(s[i : i+3])
	}
	return b.String()
}
