package report

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// BenchRecord captures one experiment's performance counters so the
// harness's own throughput is tracked from PR to PR alongside the paper's
// tables. Counters cover the whole experiment: every simulation of the
// sweep, on every worker.
type BenchRecord struct {
	ID          string `json:"id"`
	Title       string `json:"title,omitempty"`
	Seed        int64  `json:"seed"`
	Runs        int    `json:"runs"`
	Quick       bool   `json:"quick"`
	Parallelism int    `json:"parallelism"`

	WallSeconds  float64 `json:"wall_seconds"`
	SimEvents    uint64  `json:"sim_events"`
	EventsPerSec float64 `json:"events_per_sec"`
	AllocBytes   uint64  `json:"alloc_bytes"`
	Allocs       uint64  `json:"allocs"`

	// Extra carries driver-specific named values (the runner driver's
	// schedule-model makespans and measured pool timings). Keys prefixed
	// "model_" are deterministic functions of the workload and are gated
	// exactly by scripts/perfcheck.py; "measured_" keys are wall-clock
	// observations recorded for the trajectory but not gated.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Finish derives the throughput rate from the raw counters.
func (r *BenchRecord) Finish() {
	if r.WallSeconds > 0 {
		r.EventsPerSec = float64(r.SimEvents) / r.WallSeconds
	}
}

// BenchFileName is the canonical per-experiment benchmark file name.
func BenchFileName(id string) string { return fmt.Sprintf("BENCH_%s.json", id) }

// WriteBench persists benchmark records. If path ends in ".json" every
// record goes into that one file as a JSON array; otherwise path is taken
// as a directory (created if needed) receiving one BENCH_<id>.json per
// record. It returns the files written.
func WriteBench(path string, recs []BenchRecord) ([]string, error) {
	if strings.HasSuffix(path, ".json") {
		data, err := json.MarshalIndent(recs, "", "  ")
		if err != nil {
			return nil, err
		}
		if _, err := writeObsFile(filepath.Dir(path), filepath.Base(path), func(w io.Writer) error {
			_, werr := w.Write(append(data, '\n'))
			return werr
		}); err != nil {
			return nil, err
		}
		return []string{path}, nil
	}
	if err := os.MkdirAll(path, 0o755); err != nil {
		return nil, err
	}
	var files []string
	for _, r := range recs {
		data, err := json.MarshalIndent(r, "", "  ")
		if err != nil {
			return nil, err
		}
		f, err := writeObsFile(path, BenchFileName(r.ID), func(w io.Writer) error {
			_, werr := w.Write(append(data, '\n'))
			return werr
		})
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}
