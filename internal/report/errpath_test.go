package report

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/obs"
)

// unwritableDir returns a path that cannot be created because its parent is
// a regular file. Unlike permission bits, this blocks even a root test
// process, so the error paths exercise identically everywhere.
func unwritableDir(t *testing.T) (base, dir string) {
	t.Helper()
	base = t.TempDir()
	blocker := filepath.Join(base, "blocker")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	return base, filepath.Join(blocker, "sub")
}

// assertNoStray fails if anything beyond the blocker file exists under
// base — i.e. if a failed write left a partial or temp file behind.
func assertNoStray(t *testing.T, base string) {
	t.Helper()
	ents, err := os.ReadDir(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if e.Name() != "blocker" {
			t.Errorf("failed write left %q behind", e.Name())
		}
	}
}

func TestWriteMetricsUnwritableDir(t *testing.T) {
	base, dir := unwritableDir(t)
	rec := obs.New(obs.Config{Metrics: true})
	if _, err := WriteMetrics(dir, "fig7", rec); err == nil {
		t.Error("WriteMetrics into an unwritable directory returned nil error")
	}
	assertNoStray(t, base)
}

func TestWriteTraceUnwritableDir(t *testing.T) {
	base, dir := unwritableDir(t)
	rec := obs.New(obs.Config{Trace: true})
	if _, err := WriteTrace(dir, "fig7", rec); err == nil {
		t.Error("WriteTrace into an unwritable directory returned nil error")
	}
	assertNoStray(t, base)
}

func TestWriteBenchUnwritableDir(t *testing.T) {
	recs := []BenchRecord{{ID: "fig7"}}
	base, dir := unwritableDir(t)
	if _, err := WriteBench(dir, recs); err == nil {
		t.Error("WriteBench into an unwritable directory returned nil error")
	}
	assertNoStray(t, base)

	// Combined single-file mode under the same unwritable parent.
	base2, dir2 := unwritableDir(t)
	if _, err := WriteBench(filepath.Join(dir2, "all.json"), recs); err == nil {
		t.Error("WriteBench to an unwritable combined file returned nil error")
	}
	assertNoStray(t, base2)
}

// TestWriteObsFileFailedWriteLeavesNothing drives the streaming writer
// itself into a mid-write failure: the temp file must be cleaned up and the
// destination must not exist.
func TestWriteObsFileFailedWriteLeavesNothing(t *testing.T) {
	dir := t.TempDir()
	boom := errors.New("encoder failure")
	if _, err := writeObsFile(dir, "OUT.json", func(w io.Writer) error {
		if _, werr := io.WriteString(w, "partial"); werr != nil {
			return werr
		}
		return boom
	}); !errors.Is(err, boom) {
		t.Fatalf("writeObsFile error = %v, want %v", err, boom)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Errorf("failed write left files behind: %v", ents)
	}
}

// TestWriteObsFileAtomicReplace checks a successful write lands complete
// under the final name with no temp residue.
func TestWriteObsFileAtomicReplace(t *testing.T) {
	dir := t.TempDir()
	path, err := writeObsFile(dir, "OUT.json", func(w io.Writer) error {
		_, werr := io.WriteString(w, "{}\n")
		return werr
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil || string(data) != "{}\n" {
		t.Errorf("read back %q, err %v", data, err)
	}
	ents, _ := os.ReadDir(dir)
	if len(ents) != 1 {
		t.Errorf("directory holds %d entries, want only the final file", len(ents))
	}
}
