package report_test

import (
	"fmt"

	"repro/internal/report"
)

// ExampleTable renders an aligned ASCII table with a footnote.
func ExampleTable() {
	t := report.NewTable("Demo", "n", "cycles")
	t.AddRow("1,024", report.Cycles(25500))
	t.AddRow("2,048", report.Cycles(51000))
	t.AddNote("illustrative only")
	fmt.Print(t.String())
	// Output:
	// == Demo ==
	// n      cycles
	// -------------
	// 1,024  25,500
	// 2,048  51,000
	// note: illustrative only
}
