package report

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTableString(t *testing.T) {
	tb := NewTable("Demo", "name", "value")
	tb.AddRow("alpha", "1")
	tb.AddRow("b", "22222")
	tb.AddNote("a note with %d parts", 2)
	s := tb.String()
	for _, want := range []string{"== Demo ==", "name", "alpha", "22222", "note: a note with 2 parts"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
	// Columns align: every row line has the same prefix width up to col 2.
	lines := strings.Split(s, "\n")
	idx := strings.Index(lines[1], "value")
	if idx < 0 {
		t.Fatal("header missing value column")
	}
	if lines[3][idx-1] != ' ' {
		t.Errorf("misaligned columns:\n%s", s)
	}
}

func TestTableMissingAndExtraCells(t *testing.T) {
	tb := NewTable("x", "a", "b")
	tb.AddRow("only")
	tb.AddRow("one", "two", "three")
	if len(tb.Rows[0]) != 2 || tb.Rows[0][1] != "" {
		t.Error("missing cell not padded")
	}
	if len(tb.Rows[1]) != 2 {
		t.Error("extra cell not dropped")
	}
}

func TestCSVEscaping(t *testing.T) {
	tb := NewTable("t", "a", "b")
	tb.AddRow(`has,comma`, `has"quote`)
	csv := tb.CSV()
	if !strings.Contains(csv, `"has,comma"`) {
		t.Errorf("comma not quoted: %s", csv)
	}
	if !strings.Contains(csv, `"has""quote"`) {
		t.Errorf("quote not doubled: %s", csv)
	}
	if !strings.HasPrefix(csv, "a,b\n") {
		t.Errorf("header wrong: %s", csv)
	}
}

func TestCSVRowCount(t *testing.T) {
	f := func(cells []string) bool {
		tb := NewTable("t", "c1")
		for _, c := range cells {
			tb.AddRow(c)
		}
		lines := strings.Count(tb.CSV(), "\n")
		return lines == len(cells)+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFormatters(t *testing.T) {
	if F(3.14159) != "3.142" {
		t.Errorf("F = %s", F(3.14159))
	}
	if I(41.7) != "42" {
		t.Errorf("I = %s", I(41.7))
	}
	if Pct(0.123) != "12.3%" {
		t.Errorf("Pct = %s", Pct(0.123))
	}
}

func TestCyclesGrouping(t *testing.T) {
	cases := map[float64]string{
		0:          "0",
		999:        "999",
		1000:       "1,000",
		25500:      "25,500",
		1234567:    "1,234,567",
		1000000000: "1,000,000,000",
	}
	for in, want := range cases {
		if got := Cycles(in); got != want {
			t.Errorf("Cycles(%g) = %s, want %s", in, got, want)
		}
	}
}

func TestCyclesAlwaysParsesBack(t *testing.T) {
	f := func(v uint32) bool {
		s := Cycles(float64(v))
		stripped := strings.ReplaceAll(s, ",", "")
		var back uint64
		for _, c := range stripped {
			if c < '0' || c > '9' {
				return false
			}
			back = back*10 + uint64(c-'0')
		}
		return back == uint64(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
