package report

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestPercentile(t *testing.T) {
	sorted := make([]float64, 100)
	for i := range sorted {
		sorted[i] = float64(i + 1) // 1..100
	}
	cases := []struct {
		p    float64
		want float64
	}{
		{50, 50.5},
		{90, 90.1},
		{100, 100},
		{99, 99.01},
	}
	for _, c := range cases {
		if got := Percentile(sorted, c.p); got < c.want-0.0001 || got > c.want+0.0001 {
			t.Errorf("Percentile(1..100, %v) = %v, want %v", c.p, got, c.want)
		}
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("Percentile(nil) = %v, want 0", got)
	}
	if got := Percentile([]float64{7}, 99.9); got != 7 {
		t.Errorf("Percentile(single) = %v, want 7", got)
	}
}

func TestLoadRecordFinish(t *testing.T) {
	rec := &LoadRecord{
		Requests:    10,
		CacheHits:   4,
		WallSeconds: 2,
	}
	rec.Finish([]float64{5, 1, 3, 2, 4})
	if rec.Throughput != 5 {
		t.Errorf("throughput %v, want 5", rec.Throughput)
	}
	if rec.CacheHitRatio != 0.4 {
		t.Errorf("hit ratio %v, want 0.4", rec.CacheHitRatio)
	}
	l := rec.Latency
	if l.Count != 5 || l.P50 != 3 || l.Max != 5 || l.Mean != 3 {
		t.Errorf("latency summary %+v", l)
	}
	if l.P99 < l.P90 || l.P999 < l.P99 || l.Max < l.P999 {
		t.Errorf("percentiles not monotone: %+v", l)
	}
}

func TestWriteLoad(t *testing.T) {
	dir := t.TempDir()
	rec := &LoadRecord{Experiment: "fig2", Mode: "closed", Requests: 3}
	rec.Finish([]float64{1, 2, 3})

	path, err := WriteLoad(dir, "smoke", rec)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "LOAD_smoke.json" {
		t.Errorf("wrote %s, want LOAD_smoke.json", path)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back LoadRecord
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	if back.Requests != 3 || back.Latency.P50 != 2 {
		t.Errorf("round-tripped record %+v", back)
	}

	// Explicit .json path form.
	file := filepath.Join(dir, "combined.json")
	if path, err = WriteLoad(file, "ignored", rec); err != nil || path != file {
		t.Fatalf("WriteLoad(.json path) = %s, %v", path, err)
	}
}
