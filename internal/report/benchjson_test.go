package report

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestBenchRecordFinish(t *testing.T) {
	r := BenchRecord{SimEvents: 1000, WallSeconds: 2}
	r.Finish()
	if r.EventsPerSec != 500 {
		t.Errorf("EventsPerSec = %g, want 500", r.EventsPerSec)
	}
	z := BenchRecord{SimEvents: 10}
	z.Finish()
	if z.EventsPerSec != 0 {
		t.Errorf("zero wall time should leave rate 0, got %g", z.EventsPerSec)
	}
}

func TestWriteBenchPerExperiment(t *testing.T) {
	dir := t.TempDir()
	recs := []BenchRecord{
		{ID: "fig1", Seed: 1, SimEvents: 100, WallSeconds: 0.5},
		{ID: "ext2", Seed: 1, SimEvents: 50, WallSeconds: 0.25},
	}
	files, err := WriteBench(dir, recs)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 2 {
		t.Fatalf("wrote %d files, want 2", len(files))
	}
	want := filepath.Join(dir, "BENCH_fig1.json")
	if files[0] != want {
		t.Errorf("file = %s, want %s", files[0], want)
	}
	data, err := os.ReadFile(want)
	if err != nil {
		t.Fatal(err)
	}
	var got BenchRecord
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.ID != "fig1" || got.SimEvents != 100 {
		t.Errorf("round-trip = %+v", got)
	}
}

func TestWriteBenchCombined(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	recs := []BenchRecord{{ID: "fig1"}, {ID: "fig2"}}
	files, err := WriteBench(path, recs)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 1 || files[0] != path {
		t.Fatalf("files = %v, want [%s]", files, path)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var got []BenchRecord
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[1].ID != "fig2" {
		t.Errorf("round-trip = %+v", got)
	}
}
