package bsp

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/stats"
)

// QSMMachine runs QSM programs on the BSP machine by emulating shared
// memory: each shared array is distributed over the processors' private
// regions according to its layout, and every QSM operation becomes BSP puts
// and gets addressed to the owning processor. This is the bridging
// construction of Gibbons, Matias and Ramachandran that the paper's
// theoretical results rest on; the ext-emulation experiment measures its
// constant-factor overhead against the native QSM library.
type QSMMachine struct {
	M    *Machine
	opts Options
	def  core.LayoutKind

	arrays []*emuArray
	byName map[string]core.Handle
}

type emuArray struct {
	name  string
	n     int
	lay   core.Layout
	reg   Region
	slots []int32 // per-word slot within the owner's region; nil when computable
	frees int
	freed bool
}

// NewQSM builds a QSM-on-BSP machine with the given default array layout.
func NewQSM(p int, opts Options, def core.LayoutKind) *QSMMachine {
	return &QSMMachine{M: New(p, opts), opts: opts, def: def, byName: map[string]core.Handle{}}
}

// P returns the processor count.
func (qm *QSMMachine) P() int { return qm.M.P() }

// Run executes a QSM program through the emulation.
func (qm *QSMMachine) Run(prog core.Program) error {
	return qm.M.Run(func(pc *Proc) {
		prog(&qsmProc{qm: qm, pc: pc})
	})
}

// RunStats returns the underlying BSP machine's measurements.
func (qm *QSMMachine) RunStats() Stats { return qm.M.RunStats() }

// Array reconstructs a shared array's contents from the distributed
// regions, for verification after Run. Returns nil if never registered.
func (qm *QSMMachine) Array(name string) []int64 {
	h, ok := qm.byName[name]
	if !ok {
		return nil
	}
	a := qm.arrays[h]
	out := make([]int64, a.n)
	for i := range out {
		owner := a.lay.OwnerOf(i)
		out[i] = qm.M.reg(a.reg).data[owner][a.slot(i)]
	}
	return out
}

// OwnerOf implements core.Ownership.
func (qm *QSMMachine) OwnerOf(h core.Handle, i int) int { return qm.arr(h).lay.OwnerOf(i) }

// PerOwner implements core.Ownership.
func (qm *QSMMachine) PerOwner(h core.Handle, off, n int) []int {
	return qm.arr(h).lay.PerOwner(off, n)
}

// RunProfiled executes prog with cost recording.
func (qm *QSMMachine) RunProfiled(prog core.Program, flags core.Flags) (*core.Profile, error) {
	col := core.NewCollector(qm.P(), qm, cpu.NewAnalytic(cpu.Table2()), flags)
	err := qm.Run(func(ctx core.Ctx) { prog(core.NewRecorder(ctx, col)) })
	profile, perr := col.Finish()
	if err == nil {
		err = perr
	}
	return profile, err
}

func (qm *QSMMachine) arr(h core.Handle) *emuArray {
	if h < 0 || int(h) >= len(qm.arrays) {
		panic(fmt.Sprintf("bsp: invalid QSM handle %d", h))
	}
	a := qm.arrays[h]
	if a.freed {
		panic(fmt.Sprintf("bsp: QSM array %q used after Free", a.name))
	}
	return a
}

// slot returns word i's index within its owner's region.
func (a *emuArray) slot(i int) int {
	switch a.lay.Kind {
	case core.LayoutCyclic:
		return i / a.lay.P
	case core.LayoutHashed:
		return int(a.slots[i])
	case core.LayoutSingle:
		return i
	default: // blocked
		o := a.lay.OwnerOf(i)
		return i - o*a.lay.Block
	}
}

func (qm *QSMMachine) register(name string, n int, spec core.LayoutSpec) core.Handle {
	if h, ok := qm.byName[name]; ok {
		if qm.arrays[h].n != n {
			panic(fmt.Sprintf("bsp: QSM array %q re-registered with size %d != %d", name, n, qm.arrays[h].n))
		}
		return h
	}
	h := core.Handle(len(qm.arrays))
	hseed := stats.Mix64(uint64(qm.opts.Seed), uint64(h)+0x5151)
	lay := core.ResolveLayout(spec, n, qm.P(), qm.def, hseed)
	a := &emuArray{name: name, n: n, lay: lay}
	var regionSize int
	switch lay.Kind {
	case core.LayoutCyclic:
		regionSize = (n + lay.P - 1) / lay.P
	case core.LayoutSingle:
		regionSize = n
	case core.LayoutHashed:
		a.slots = make([]int32, n)
		counts := make([]int32, lay.P)
		for i := 0; i < n; i++ {
			o := lay.OwnerOf(i)
			a.slots[i] = counts[o]
			counts[o]++
		}
		for _, c := range counts {
			if int(c) > regionSize {
				regionSize = int(c)
			}
		}
	default:
		regionSize = lay.Block
	}
	if regionSize == 0 {
		regionSize = 1
	}
	// The backing region name carries the handle so that a re-registered
	// QSM name (after a collective Free) gets a fresh region.
	a.reg = qm.M.register(fmt.Sprintf("qsm.%d.%s", h, name), regionSize)
	qm.arrays = append(qm.arrays, a)
	qm.byName[name] = h
	return h
}

// qsmProc adapts a BSP processor to core.Ctx.
type qsmProc struct {
	qm     *QSMMachine
	pc     *Proc
	fixups []fixup
}

// fixup scatters a temporary get buffer into the caller's destination after
// the superstep delivers it.
type fixup struct {
	tmp []int64
	dst []int64
	pos []int
}

var _ core.Ctx = (*qsmProc)(nil)

func (q *qsmProc) ID() int          { return q.pc.ID() }
func (q *qsmProc) P() int           { return q.pc.P() }
func (q *qsmProc) Rand() *rand.Rand { return q.pc.Rand() }

func (q *qsmProc) Register(name string, n int) core.Handle {
	return q.qm.register(name, n, core.LayoutSpec{})
}

func (q *qsmProc) RegisterSpec(name string, n int, spec core.LayoutSpec) core.Handle {
	return q.qm.register(name, n, spec)
}

func (q *qsmProc) Free(h core.Handle) {
	a := q.qm.arr(h)
	a.frees++
	if a.frees >= q.P() {
		a.freed = true
		delete(q.qm.byName, a.name)
	}
}

func (q *qsmProc) Compute(b cpu.OpBlock) { q.pc.Compute(b) }

// group splits global indices by owner into per-owner local slots.
type ownerGroup struct {
	slots []int
	pos   []int // positions in the caller's buffer
}

func (q *qsmProc) groupByOwner(a *emuArray, idx []int) map[int]*ownerGroup {
	gs := map[int]*ownerGroup{}
	for k, i := range idx {
		if i < 0 || i >= a.n {
			panic(fmt.Sprintf("bsp: index %d out of range for QSM array %q (len %d)", i, a.name, a.n))
		}
		o := a.lay.OwnerOf(i)
		g := gs[o]
		if g == nil {
			g = &ownerGroup{}
			gs[o] = g
		}
		g.slots = append(g.slots, a.slot(i))
		g.pos = append(g.pos, k)
	}
	return gs
}

func (q *qsmProc) Put(h core.Handle, off int, src []int64) {
	if len(src) == 0 {
		return
	}
	a := q.qm.arr(h)
	if off < 0 || off+len(src) > a.n {
		panic(fmt.Sprintf("bsp: range [%d,%d) out of bounds for QSM array %q", off, off+len(src), a.name))
	}
	if a.lay.Kind == core.LayoutBlocked || a.lay.Kind == core.LayoutSingle {
		base := off
		a.lay.Spans(off, len(src), func(owner, so, cnt int) {
			q.pc.Put(owner, a.reg, a.slot(so), src[so-base:so-base+cnt])
		})
		return
	}
	q.putScattered(a, seqIdx(off, len(src)), src)
}

func (q *qsmProc) PutIndexed(h core.Handle, idx []int, src []int64) {
	if len(idx) != len(src) {
		panic("bsp: PutIndexed length mismatch")
	}
	if len(idx) == 0 {
		return
	}
	q.putScattered(q.qm.arr(h), idx, src)
}

func (q *qsmProc) putScattered(a *emuArray, idx []int, src []int64) {
	gs := q.groupByOwner(a, idx)
	for _, o := range sortedOwners(gs) {
		g := gs[o]
		vals := make([]int64, len(g.pos))
		for k, p := range g.pos {
			vals[k] = src[p]
		}
		q.pc.PutIndexed(o, a.reg, g.slots, vals)
	}
}

// sortedOwners fixes the iteration order so simulations stay deterministic.
func sortedOwners(gs map[int]*ownerGroup) []int {
	owners := make([]int, 0, len(gs))
	for o := range gs {
		owners = append(owners, o)
	}
	sort.Ints(owners)
	return owners
}

func (q *qsmProc) Get(h core.Handle, off int, dst []int64) {
	if len(dst) == 0 {
		return
	}
	a := q.qm.arr(h)
	if off < 0 || off+len(dst) > a.n {
		panic(fmt.Sprintf("bsp: range [%d,%d) out of bounds for QSM array %q", off, off+len(dst), a.name))
	}
	if a.lay.Kind == core.LayoutBlocked || a.lay.Kind == core.LayoutSingle {
		base := off
		a.lay.Spans(off, len(dst), func(owner, so, cnt int) {
			q.pc.Get(owner, a.reg, a.slot(so), dst[so-base:so-base+cnt])
		})
		return
	}
	q.getScattered(a, seqIdx(off, len(dst)), dst)
}

func (q *qsmProc) GetIndexed(h core.Handle, idx []int, dst []int64) {
	if len(idx) != len(dst) {
		panic("bsp: GetIndexed length mismatch")
	}
	if len(idx) == 0 {
		return
	}
	q.getScattered(q.qm.arr(h), idx, dst)
}

func (q *qsmProc) getScattered(a *emuArray, idx []int, dst []int64) {
	gs := q.groupByOwner(a, idx)
	for _, o := range sortedOwners(gs) {
		g := gs[o]
		tmp := make([]int64, len(g.slots))
		q.pc.GetIndexed(o, a.reg, g.slots, tmp)
		q.fixups = append(q.fixups, fixup{tmp: tmp, dst: dst, pos: g.pos})
	}
}

func (q *qsmProc) ReadLocal(h core.Handle, off int, dst []int64) {
	if len(dst) == 0 {
		return
	}
	a := q.qm.arr(h)
	if !a.lay.OwnsRange(q.ID(), off, len(dst)) {
		panic(fmt.Sprintf("bsp: ReadLocal of %q[%d:%d) not owned by proc %d", a.name, off, off+len(dst), q.ID()))
	}
	if a.lay.Kind == core.LayoutBlocked || a.lay.Kind == core.LayoutSingle {
		q.pc.ReadLocal(a.reg, a.slot(off), dst)
		return
	}
	for k := range dst {
		q.pc.ReadLocal(a.reg, a.slot(off+k), dst[k:k+1])
	}
}

func (q *qsmProc) WriteLocal(h core.Handle, off int, src []int64) {
	if len(src) == 0 {
		return
	}
	a := q.qm.arr(h)
	if !a.lay.OwnsRange(q.ID(), off, len(src)) {
		panic(fmt.Sprintf("bsp: WriteLocal of %q[%d:%d) not owned by proc %d", a.name, off, off+len(src), q.ID()))
	}
	if a.lay.Kind == core.LayoutBlocked || a.lay.Kind == core.LayoutSingle {
		q.pc.WriteLocal(a.reg, a.slot(off), src)
		return
	}
	for k := range src {
		q.pc.WriteLocal(a.reg, a.slot(off+k), src[k:k+1])
	}
}

func (q *qsmProc) Sync() {
	q.pc.Sync()
	for _, f := range q.fixups {
		for k, p := range f.pos {
			f.dst[p] = f.tmp[k]
		}
	}
	q.fixups = q.fixups[:0]
}

func seqIdx(off, n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = off + i
	}
	return idx
}
