package bsp

import (
	"testing"

	"repro/internal/sim"
)

func TestPutDelivers(t *testing.T) {
	m := New(4, Options{Seed: 1})
	err := m.Run(func(pc *Proc) {
		r := pc.Register("box", 4)
		pc.Sync()
		// Everyone writes its id into every processor's copy, slot id.
		for dst := 0; dst < pc.P(); dst++ {
			pc.Put(dst, r, pc.ID(), []int64{int64(pc.ID() + 100)})
		}
		pc.Sync()
		got := make([]int64, 4)
		pc.ReadLocal(r, 0, got)
		for i, v := range got {
			if v != int64(i+100) {
				panic("wrong value")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// Every copy holds the same content.
	for proc := 0; proc < 4; proc++ {
		data := m.RegionData("box", proc)
		for i, v := range data {
			if v != int64(i+100) {
				t.Fatalf("proc %d copy: %v", proc, data)
			}
		}
	}
}

func TestRegionsArePerProcessor(t *testing.T) {
	m := New(3, Options{Seed: 2})
	err := m.Run(func(pc *Proc) {
		r := pc.Register("priv", 1)
		pc.Sync()
		pc.WriteLocal(r, 0, []int64{int64(pc.ID() * 7)})
		pc.Sync()
	})
	if err != nil {
		t.Fatal(err)
	}
	for proc := 0; proc < 3; proc++ {
		if got := m.RegionData("priv", proc)[0]; got != int64(proc*7) {
			t.Fatalf("proc %d region = %d", proc, got)
		}
	}
}

func TestGetReadsRemoteCopy(t *testing.T) {
	m := New(2, Options{Seed: 3})
	err := m.Run(func(pc *Proc) {
		r := pc.Register("a", 8)
		pc.Sync()
		vals := make([]int64, 8)
		for i := range vals {
			vals[i] = int64(pc.ID()*1000 + i)
		}
		pc.WriteLocal(r, 0, vals)
		pc.Sync()
		other := 1 - pc.ID()
		got := make([]int64, 8)
		pc.Get(other, r, 0, got)
		pc.Sync()
		for i, v := range got {
			if v != int64(other*1000+i) {
				panic("get returned wrong copy")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGetSeesPreCommitState(t *testing.T) {
	m := New(2, Options{Seed: 4})
	err := m.Run(func(pc *Proc) {
		r := pc.Register("a", 2)
		pc.Sync()
		if pc.ID() == 0 {
			pc.WriteLocal(r, 0, []int64{5})
		}
		pc.Sync()
		got := make([]int64, 1)
		if pc.ID() == 1 {
			pc.Get(0, r, 0, got)
			pc.Put(0, r, 1, []int64{9}) // same superstep, different word
		}
		pc.Sync()
		if pc.ID() == 1 && got[0] != 5 {
			panic("get saw in-flight state")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIndexedOps(t *testing.T) {
	m := New(3, Options{Seed: 5})
	err := m.Run(func(pc *Proc) {
		r := pc.Register("a", 16)
		pc.Sync()
		if pc.ID() == 0 {
			pc.PutIndexed(2, r, []int{1, 5, 9}, []int64{11, 55, 99})
		}
		pc.Sync()
		got := make([]int64, 3)
		if pc.ID() == 1 {
			pc.GetIndexed(2, r, []int{9, 1, 5}, got)
		}
		pc.Sync()
		if pc.ID() == 1 {
			if got[0] != 99 || got[1] != 11 || got[2] != 55 {
				panic("indexed round trip failed")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestConflictingPutsResolveBySource(t *testing.T) {
	m := New(4, Options{Seed: 6})
	err := m.Run(func(pc *Proc) {
		r := pc.Register("w", 1)
		pc.Sync()
		pc.Put(0, r, 0, []int64{int64(pc.ID() + 100)})
		pc.Sync()
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.RegionData("w", 0)[0]; got != 103 {
		t.Fatalf("conflict resolved to %d, want 103", got)
	}
}

func TestCommCostsAccumulate(t *testing.T) {
	m := New(2, Options{Seed: 7})
	if err := m.Run(func(pc *Proc) {
		r := pc.Register("a", 20000)
		pc.Sync()
		if pc.ID() == 0 {
			pc.Put(1, r, 0, make([]int64, 20000))
		}
		pc.Sync()
	}); err != nil {
		t.Fatal(err)
	}
	st := m.RunStats()
	if st.MaxComm() < 100000 {
		t.Errorf("bulk put comm = %d cycles, suspiciously small", st.MaxComm())
	}
	if st.MsgsSent == 0 || st.BytesSent < 160000 {
		t.Errorf("counters: msgs=%d bytes=%d", st.MsgsSent, st.BytesSent)
	}
}

func TestDeterministic(t *testing.T) {
	run := func() sim.Time {
		m := New(4, Options{Seed: 8})
		if err := m.Run(func(pc *Proc) {
			r := pc.Register("a", 64)
			pc.Sync()
			for round := 0; round < 3; round++ {
				dst := int(pc.Rand().Int31n(4))
				pc.Put(dst, r, pc.ID(), []int64{int64(round)})
				pc.Sync()
			}
		}); err != nil {
			t.Fatal(err)
		}
		return m.RunStats().TotalCycles
	}
	if a, b := run(), run(); a != b {
		t.Errorf("nondeterministic: %d vs %d", a, b)
	}
}

func TestRegisterMismatchPanics(t *testing.T) {
	m := New(2, Options{Seed: 9})
	err := m.Run(func(pc *Proc) {
		pc.Register("a", 4)
		pc.Register("a", 8)
	})
	if err == nil {
		t.Fatal("size mismatch should error")
	}
}

func TestOutOfBoundsPanics(t *testing.T) {
	m := New(2, Options{Seed: 10})
	err := m.Run(func(pc *Proc) {
		r := pc.Register("a", 4)
		pc.Sync()
		pc.Put(1, r, 3, []int64{1, 2})
	})
	if err == nil {
		t.Fatal("out-of-bounds put should error")
	}
}

func TestInvalidDestPanics(t *testing.T) {
	m := New(2, Options{Seed: 11})
	err := m.Run(func(pc *Proc) {
		r := pc.Register("a", 4)
		pc.Sync()
		pc.Put(7, r, 0, []int64{1})
	})
	if err == nil {
		t.Fatal("invalid destination should error")
	}
}
