package bsp

import (
	"fmt"
	"testing"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/qsmlib"
	"repro/internal/workload"
)

func blockInput(all []int64, n int) func(id, p int) []int64 {
	return func(id, p int) []int64 {
		lo, hi := workload.Partition(n, p, id)
		return all[lo:hi]
	}
}

func TestEmulationPutGetRoundTrip(t *testing.T) {
	for _, def := range []core.LayoutKind{core.LayoutBlocked, core.LayoutCyclic, core.LayoutHashed} {
		def := def
		t.Run(fmt.Sprint(def), func(t *testing.T) {
			qm := NewQSM(4, Options{Seed: 1}, def)
			err := qm.Run(func(ctx core.Ctx) {
				h := ctx.Register("a", 64)
				ctx.Sync()
				vals := make([]int64, 16)
				for i := range vals {
					vals[i] = int64(ctx.ID()*16 + i + 500)
				}
				ctx.Put(h, ctx.ID()*16, vals)
				ctx.Sync()
				got := make([]int64, 64)
				ctx.Get(h, 0, got)
				ctx.Sync()
				for i, v := range got {
					if v != int64(i+500) {
						panic("bad value through emulation")
					}
				}
			})
			if err != nil {
				t.Fatal(err)
			}
			data := qm.Array("a")
			for i, v := range data {
				if v != int64(i+500) {
					t.Fatalf("reconstructed[%d] = %d", i, v)
				}
			}
		})
	}
}

// TestEmulationRunsPaperAlgorithms is the headline check: the three paper
// algorithms run unchanged through QSM-on-BSP and produce correct results.
func TestEmulationRunsPaperAlgorithms(t *testing.T) {
	const n, p = 3000, 8
	in := workload.UniformInts(n, 0, 17)
	l := workload.RandomList(n, 18)

	t.Run("prefix", func(t *testing.T) {
		alg := algorithms.PrefixSums{N: n, Input: blockInput(in, n)}
		qm := NewQSM(p, Options{Seed: 2}, core.LayoutBlocked)
		if err := qm.Run(alg.Program()); err != nil {
			t.Fatal(err)
		}
		want := algorithms.SeqPrefix(in)
		got := qm.Array(alg.Out())
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("prefix[%d] = %d, want %d", i, got[i], want[i])
			}
		}
	})
	t.Run("sort", func(t *testing.T) {
		alg := algorithms.SampleSort{N: n, Input: blockInput(in, n)}
		qm := NewQSM(p, Options{Seed: 3}, core.LayoutBlocked)
		if err := qm.Run(alg.Program()); err != nil {
			t.Fatal(err)
		}
		want := algorithms.SeqSort(in)
		got := qm.Array(alg.Out())
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("sort[%d] = %d, want %d", i, got[i], want[i])
			}
		}
	})
	t.Run("listrank", func(t *testing.T) {
		alg := algorithms.ListRank{List: l}
		qm := NewQSM(p, Options{Seed: 4}, core.LayoutBlocked)
		if err := qm.Run(alg.Program()); err != nil {
			t.Fatal(err)
		}
		want := algorithms.SeqListRank(l)
		got := qm.Array(alg.Out())
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("rank[%d] = %d, want %d", i, got[i], want[i])
			}
		}
	})
}

// TestEmulationOverheadModest compares sample sort through the emulation
// against the native QSM library: the bridging result promises a small
// constant factor.
func TestEmulationOverheadModest(t *testing.T) {
	const n, p = 20000, 8
	in := workload.UniformInts(n, 0, 23)
	alg := algorithms.SampleSort{N: n, Input: blockInput(in, n)}

	direct := qsmlib.New(p, qsmlib.Options{Seed: 5})
	if err := direct.Run(alg.Program()); err != nil {
		t.Fatal(err)
	}
	emu := NewQSM(p, Options{Seed: 5}, core.LayoutBlocked)
	if err := emu.Run(alg.Program()); err != nil {
		t.Fatal(err)
	}
	d := float64(direct.RunStats().TotalCycles)
	e := float64(emu.RunStats().TotalCycles)
	ratio := e / d
	t.Logf("emulation overhead: %.2fx (%0.f vs %0.f cycles)", ratio, e, d)
	if ratio > 3 || ratio < 0.5 {
		t.Errorf("emulation overhead %.2fx outside the expected small constant", ratio)
	}
}

func TestEmulationProfiled(t *testing.T) {
	const n, p = 2000, 4
	in := workload.UniformInts(n, 0, 29)
	alg := algorithms.PrefixSums{N: n, Input: blockInput(in, n)}
	qm := NewQSM(p, Options{Seed: 6}, core.LayoutBlocked)
	prof, err := qm.RunProfiled(alg.Program(), core.Flags{CheckRules: true})
	if err != nil {
		t.Fatal(err)
	}
	var maxRW uint64
	for _, ph := range prof.Phases {
		if rw := ph.MaxRW(); rw > maxRW {
			maxRW = rw
		}
	}
	if maxRW != uint64(p-1) {
		t.Errorf("emulated prefix m_rw = %d, want %d", maxRW, p-1)
	}
}

func TestEmulationHashedLayoutWorks(t *testing.T) {
	// A hashed QSM array through the emulation spreads slots correctly.
	qm := NewQSM(8, Options{Seed: 7}, core.LayoutHashed)
	err := qm.Run(func(ctx core.Ctx) {
		h := ctx.Register("h", 500)
		ctx.Sync()
		if ctx.ID() == 0 {
			idx := make([]int, 500)
			vals := make([]int64, 500)
			for i := range idx {
				idx[i] = i
				vals[i] = int64(3 * i)
			}
			ctx.PutIndexed(h, idx, vals)
		}
		ctx.Sync()
		got := make([]int64, 500)
		ctx.Get(h, 0, got)
		ctx.Sync()
		for i, v := range got {
			if v != int64(3*i) {
				panic("hashed emulation wrong")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestEmulationFree(t *testing.T) {
	qm := NewQSM(3, Options{Seed: 8}, core.LayoutBlocked)
	err := qm.Run(func(ctx core.Ctx) {
		h := ctx.Register("tmp", 9)
		ctx.Sync()
		ctx.Free(h)
		ctx.Sync()
		h2 := ctx.Register("tmp", 12) // name reusable after collective free
		_ = h2
		ctx.Sync()
	})
	if err != nil {
		t.Fatal(err)
	}
}
