// Package bsp implements a BSPlib-style bulk-synchronous message-passing
// machine on the same hardware substrate as the QSM library, plus the
// emulation of QSM shared memory on top of it.
//
// A BSP machine is a collection of processor-memory pairs with no shared
// memory: each processor registers named local regions, and communicates by
// one-sided Put and Get operations addressed to a (processor, region,
// offset) triple. Operations enqueue locally and take effect at the end of
// the superstep (Sync), which also synchronizes all processors — the model
// of Valiant's BSP and of BSPlib.
//
// The QSMOnBSP adapter (qsmctx.go) realises the Gibbons-Matias-Ramachandran
// bridging result experimentally: QSM shared arrays are distributed over
// the BSP processors' regions (by blocked or hashed maps), and every QSM
// operation translates to BSP puts and gets. The paper's algorithms run
// unchanged through it; the ext-emulation experiment measures the overhead.
package bsp

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/machine"
	"repro/internal/msg"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Options configure a simulated BSP machine.
type Options struct {
	Net  machine.NetParams // zero value uses machine.DefaultNet
	SW   msg.SWParams      // zero value uses msg.DefaultSW
	Seed int64
	// TreeBarrier selects the dissemination barrier for superstep ends.
	TreeBarrier bool
	// Model builds each node's processor model; nil uses Table 2 analytic.
	Model func(id int) cpu.Model
	// Obs attaches an observability recorder to the machine, the messaging
	// layer, and the superstep protocol. Nil costs nothing.
	Obs *obs.Recorder
}

// tracePid is the trace process id bsp supersteps render under; qsmlib uses
// pid 0, so a recorder shared by both (as in ext1) keeps them separate.
const tracePid = 1

// Region names a registered per-processor memory area.
type Region int

// Machine is a p-processor simulated BSP machine.
type Machine struct {
	MP   *machine.Multiprocessor
	opts Options

	regions []*region
	byName  map[string]Region
	procs   []*Proc
}

// region is a named area with a private copy on every processor.
type region struct {
	name string
	size int
	data [][]int64 // per processor
}

// New builds a p-processor BSP machine.
func New(p int, opts Options) *Machine {
	if opts.Net == (machine.NetParams{}) {
		opts.Net = machine.DefaultNet()
	}
	if opts.SW == (msg.SWParams{}) {
		opts.SW = msg.DefaultSW()
	}
	m := &Machine{opts: opts, byName: map[string]Region{}}
	m.MP = machine.New(p, opts.Net, opts.Model)
	if opts.Obs != nil {
		m.MP.Observe(opts.Obs)
	}
	return m
}

// P returns the processor count.
func (m *Machine) P() int { return m.MP.P() }

// Run executes prog on every processor and drives the simulation.
func (m *Machine) Run(prog func(*Proc)) error {
	m.procs = make([]*Proc, m.P())
	if rec := m.opts.Obs; rec.Tracing() {
		rec.NamePid(tracePid, "bsp")
		for i := 0; i < m.P(); i++ {
			rec.NameTid(tracePid, i, fmt.Sprintf("proc%d", i))
		}
	}
	err := m.MP.Run(m.opts.Seed, func(n *machine.Node) {
		pc := newProc(m, n)
		m.procs[n.ID()] = pc
		prog(pc)
	})
	if rec := m.opts.Obs; rec != nil {
		for _, pc := range m.procs {
			if pc == nil {
				continue
			}
			rec.Counter("bsp", "comm_cycles", "").Add(uint64(pc.commCycles))
		}
		for _, n := range m.MP.Nodes {
			rec.Counter("bsp", "comp_cycles", "").Add(uint64(n.CompCycles))
		}
	}
	return err
}

// Stats summarise a completed run.
type Stats struct {
	TotalCycles sim.Time
	CommCycles  []sim.Time
	CompCycles  []sim.Time
	MsgsSent    uint64
	BytesSent   uint64
}

// MaxComm returns the bottleneck processor's communication time.
func (s Stats) MaxComm() sim.Time {
	var m sim.Time
	for _, c := range s.CommCycles {
		if c > m {
			m = c
		}
	}
	return m
}

// RunStats returns the measurements of the last Run.
func (m *Machine) RunStats() Stats {
	s := Stats{TotalCycles: m.MP.E.Now()}
	for _, n := range m.MP.Nodes {
		s.MsgsSent += n.MsgsSent
		s.BytesSent += n.BytesSent
		s.CompCycles = append(s.CompCycles, n.CompCycles)
	}
	for _, pc := range m.procs {
		if pc == nil {
			s.CommCycles = append(s.CommCycles, 0)
			continue
		}
		s.CommCycles = append(s.CommCycles, pc.commCycles)
	}
	return s
}

// RegionData returns processor proc's copy of a region after Run, or nil.
func (m *Machine) RegionData(name string, proc int) []int64 {
	r, ok := m.byName[name]
	if !ok {
		return nil
	}
	return m.regions[r].data[proc]
}

func (m *Machine) register(name string, size int) Region {
	if r, ok := m.byName[name]; ok {
		if m.regions[r].size != size {
			panic(fmt.Sprintf("bsp: region %q re-registered with size %d != %d", name, size, m.regions[r].size))
		}
		return r
	}
	r := Region(len(m.regions))
	reg := &region{name: name, size: size, data: make([][]int64, m.P())}
	for i := range reg.data {
		reg.data[i] = make([]int64, size)
	}
	m.regions = append(m.regions, reg)
	m.byName[name] = r
	return r
}

func (m *Machine) reg(r Region) *region {
	if r < 0 || int(r) >= len(m.regions) {
		panic(fmt.Sprintf("bsp: invalid region %d", r))
	}
	return m.regions[r]
}
