package bsp

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/cpu"
	"repro/internal/machine"
	"repro/internal/msg"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Wire message types of the superstep protocol (the same plan / data /
// reply structure as the QSM library's sync, with explicit destinations).

type planMsg struct {
	putWords int
	getReqs  int
}

type putSeg struct {
	reg  Region
	off  int   // contiguous start; -1 for indexed
	idx  []int // nil for contiguous
	vals []int64
}

type getReq struct {
	reqID int
	reg   Region
	off   int // contiguous start; -1 for indexed
	n     int
	idx   []int
}

type stepMsg struct {
	puts []putSeg
	reqs []getReq
}

type replyItem struct {
	reqID int
	vals  []int64
}

type replyMsg struct {
	items []replyItem
}

type pendingGet struct {
	dst []int64
}

// Software cost constants, matching the QSM library's.
const (
	enqueueFixed   = 16
	enqueuePerWord = 2
	localPerWord   = 4
	localPerSeg    = 16
)

// Proc is one BSP processor.
type Proc struct {
	m    *Machine
	node *machine.Node
	comm *msg.Comm
	gen  int

	outPuts  [][]putSeg
	outReqs  [][]getReq
	selfPuts []putSeg
	selfReqs []getReq
	pending  []pendingGet

	commCycles sim.Time

	// Observability: nil-safe handles plus the last Sync's end time, which
	// delimits the compute span preceding the next Sync.
	rec           *obs.Recorder
	obsSyncs      *obs.Counter
	obsSyncCycles *obs.Histogram
	obsPutWords   *obs.Histogram
	obsGetWords   *obs.Histogram
	lastSyncEnd   sim.Time
}

func newProc(m *Machine, n *machine.Node) *Proc {
	p := m.P()
	pc := &Proc{
		m:       m,
		node:    n,
		comm:    msg.NewComm(n, m.opts.SW),
		outPuts: make([][]putSeg, p),
		outReqs: make([][]getReq, p),
	}
	if rec := m.opts.Obs; rec != nil {
		pc.rec = rec
		pc.comm.Observe(rec)
		pc.obsSyncs = rec.Counter("bsp", "syncs", "")
		pc.obsSyncCycles = rec.Histogram("bsp", "sync_cycles", "", obs.ExpBuckets(1024, 2, 16))
		pc.obsPutWords = rec.Histogram("bsp", "step_put_words", "", obs.ExpBuckets(1, 4, 12))
		pc.obsGetWords = rec.Histogram("bsp", "step_get_words", "", obs.ExpBuckets(1, 4, 12))
	}
	return pc
}

// ID returns this processor's index.
func (pc *Proc) ID() int { return pc.node.ID() }

// P returns the machine size.
func (pc *Proc) P() int { return pc.m.P() }

// Rand returns the processor's deterministic random source.
func (pc *Proc) Rand() *rand.Rand { return pc.node.Proc().Rand() }

// Register allocates (or resolves) a named region of size words, one
// private copy per processor. Collective; Sync before use.
func (pc *Proc) Register(name string, size int) Region {
	return pc.m.register(name, size)
}

// Compute charges local work to the processor model.
func (pc *Proc) Compute(b cpu.OpBlock) { pc.node.Compute(b) }

// busyComm charges local library work, counted as communication time.
func (pc *Proc) busyComm(cycles sim.Time) {
	pc.node.Busy(cycles)
	pc.commCycles += cycles
}

func (pc *Proc) bounds(r *region, off, n int) {
	if off < 0 || off+n > r.size {
		panic(fmt.Sprintf("bsp: range [%d,%d) out of bounds for %q (size %d)", off, off+n, r.name, r.size))
	}
}

func (pc *Proc) checkDst(dst int) {
	if dst < 0 || dst >= pc.P() {
		panic(fmt.Sprintf("bsp: invalid processor %d", dst))
	}
}

// Put enqueues a write of vals into dst's copy of r at off, effective at
// the end of the superstep (bsp_put).
func (pc *Proc) Put(dst int, r Region, off int, vals []int64) {
	if len(vals) == 0 {
		return
	}
	pc.checkDst(dst)
	reg := pc.m.reg(r)
	pc.bounds(reg, off, len(vals))
	pc.busyComm(enqueueFixed + sim.Time(enqueuePerWord*len(vals)))
	seg := putSeg{reg: r, off: off, vals: append([]int64(nil), vals...)}
	if dst == pc.ID() {
		pc.selfPuts = append(pc.selfPuts, seg)
		return
	}
	pc.outPuts[dst] = append(pc.outPuts[dst], seg)
}

// PutIndexed enqueues scattered writes into dst's copy of r.
func (pc *Proc) PutIndexed(dst int, r Region, idx []int, vals []int64) {
	if len(idx) != len(vals) {
		panic(fmt.Sprintf("bsp: PutIndexed len(idx)=%d != len(vals)=%d", len(idx), len(vals)))
	}
	if len(idx) == 0 {
		return
	}
	pc.checkDst(dst)
	reg := pc.m.reg(r)
	for _, ix := range idx {
		if ix < 0 || ix >= reg.size {
			panic(fmt.Sprintf("bsp: index %d out of range for %q (size %d)", ix, reg.name, reg.size))
		}
	}
	pc.busyComm(enqueueFixed + sim.Time(enqueuePerWord*len(vals)))
	seg := putSeg{reg: r, off: -1,
		idx:  append([]int(nil), idx...),
		vals: append([]int64(nil), vals...)}
	if dst == pc.ID() {
		pc.selfPuts = append(pc.selfPuts, seg)
		return
	}
	pc.outPuts[dst] = append(pc.outPuts[dst], seg)
}

// Get enqueues a read of src's copy of r into dstBuf; the values are those
// at the start of the superstep's end (bsp_hpget semantics).
func (pc *Proc) Get(src int, r Region, off int, dstBuf []int64) {
	if len(dstBuf) == 0 {
		return
	}
	pc.checkDst(src)
	reg := pc.m.reg(r)
	pc.bounds(reg, off, len(dstBuf))
	pc.busyComm(enqueueFixed + sim.Time(enqueuePerWord*len(dstBuf)))
	pc.addGet(src, getReq{reg: r, off: off, n: len(dstBuf)}, pendingGet{dst: dstBuf})
}

// GetIndexed enqueues scattered reads from src's copy of r.
func (pc *Proc) GetIndexed(src int, r Region, idx []int, dstBuf []int64) {
	if len(idx) != len(dstBuf) {
		panic(fmt.Sprintf("bsp: GetIndexed len(idx)=%d != len(dst)=%d", len(idx), len(dstBuf)))
	}
	if len(idx) == 0 {
		return
	}
	pc.checkDst(src)
	reg := pc.m.reg(r)
	for _, ix := range idx {
		if ix < 0 || ix >= reg.size {
			panic(fmt.Sprintf("bsp: index %d out of range for %q (size %d)", ix, reg.name, reg.size))
		}
	}
	pc.busyComm(enqueueFixed + sim.Time(enqueuePerWord*len(dstBuf)))
	pc.addGet(src, getReq{reg: r, off: -1, idx: append([]int(nil), idx...)}, pendingGet{dst: dstBuf})
}

func (pc *Proc) addGet(src int, rq getReq, pg pendingGet) {
	rq.reqID = len(pc.pending)
	pc.pending = append(pc.pending, pg)
	if src == pc.ID() {
		pc.selfReqs = append(pc.selfReqs, rq)
		return
	}
	pc.outReqs[src] = append(pc.outReqs[src], rq)
}

// ReadLocal reads this processor's own copy of r immediately.
func (pc *Proc) ReadLocal(r Region, off int, dst []int64) {
	reg := pc.m.reg(r)
	pc.bounds(reg, off, len(dst))
	copy(dst, reg.data[pc.ID()][off:off+len(dst)])
	pc.node.Busy(sim.Time(localPerSeg + localPerWord*len(dst)))
}

// WriteLocal writes this processor's own copy of r immediately.
func (pc *Proc) WriteLocal(r Region, off int, vals []int64) {
	reg := pc.m.reg(r)
	pc.bounds(reg, off, len(vals))
	copy(reg.data[pc.ID()][off:off+len(vals)], vals)
	pc.node.Busy(sim.Time(localPerSeg + localPerWord*len(vals)))
}

// gather reads a request's words from this processor's copy (pre-commit).
func (pc *Proc) gather(rq getReq) []int64 {
	data := pc.m.reg(rq.reg).data[pc.ID()]
	if rq.idx == nil {
		vals := make([]int64, rq.n)
		copy(vals, data[rq.off:rq.off+rq.n])
		return vals
	}
	vals := make([]int64, len(rq.idx))
	for i, ix := range rq.idx {
		vals[i] = data[ix]
	}
	return vals
}

func words(segs []putSeg) int {
	w := 0
	for _, s := range segs {
		w += len(s.vals)
	}
	return w
}

func smBytes(sm *stepMsg) int {
	b := 0
	for _, s := range sm.puts {
		b += 16 + 8*len(s.vals)
		if s.idx != nil {
			b += 8 * len(s.idx)
		}
	}
	for _, r := range sm.reqs {
		b += 24
		if r.idx != nil {
			b += 8 * len(r.idx)
		}
	}
	return b
}

func replyBytes(rm *replyMsg) int {
	b := 0
	for _, it := range rm.items {
		b += 16 + 8*len(it.vals)
	}
	return b
}

// Sync ends the superstep: plan exchange, staggered data exchange, get
// replies served from pre-commit state, puts applied in source order, and a
// barrier.
func (pc *Proc) Sync() {
	t0 := pc.node.Now()
	putWords := words(pc.selfPuts)
	for _, segs := range pc.outPuts {
		putWords += words(segs)
	}
	getWords := len(pc.pending)
	p, me := pc.P(), pc.ID()
	gen := pc.gen
	pc.gen++
	tagPlan, tagData, tagReply := 3*gen, 3*gen+1, 3*gen+2

	for r := 1; r < p; r++ {
		peer := (me + r) % p
		pm := planMsg{putWords: words(pc.outPuts[peer]), getReqs: len(pc.outReqs[peer])}
		pc.comm.Send(peer, tagPlan, 16, pm)
	}
	expectData := make([]bool, p)
	for r := 1; r < p; r++ {
		peer := (me - r + p) % p
		pm := pc.comm.Recv(peer, tagPlan).Payload.(planMsg)
		expectData[peer] = pm.putWords > 0 || pm.getReqs > 0
	}

	for r := 1; r < p; r++ {
		peer := (me + r) % p
		if len(pc.outPuts[peer]) == 0 && len(pc.outReqs[peer]) == 0 {
			continue
		}
		sm := &stepMsg{puts: pc.outPuts[peer], reqs: pc.outReqs[peer]}
		pc.comm.Send(peer, tagData, smBytes(sm), sm)
	}

	type incoming struct {
		src  int
		puts []putSeg
	}
	var in []incoming
	for r := 1; r < p; r++ {
		peer := (me - r + p) % p
		if !expectData[peer] {
			continue
		}
		sm := pc.comm.Recv(peer, tagData).Payload.(*stepMsg)
		if len(sm.puts) > 0 {
			in = append(in, incoming{src: peer, puts: sm.puts})
		}
		if len(sm.reqs) > 0 {
			rm := &replyMsg{}
			w := 0
			for _, rq := range sm.reqs {
				vals := pc.gather(rq)
				w += len(vals)
				rm.items = append(rm.items, replyItem{reqID: rq.reqID, vals: vals})
			}
			pc.node.Busy(sim.Time(localPerSeg*len(sm.reqs) + localPerWord*w))
			pc.comm.Send(peer, tagReply, replyBytes(rm), rm)
		}
	}

	for r := 1; r < p; r++ {
		peer := (me + r) % p
		if len(pc.outReqs[peer]) == 0 {
			continue
		}
		rm := pc.comm.Recv(peer, tagReply).Payload.(*replyMsg)
		w := 0
		for _, it := range rm.items {
			copy(pc.pending[it.reqID].dst, it.vals)
			w += len(it.vals)
		}
		pc.node.Busy(sim.Time(localPerSeg*len(rm.items) + localPerWord*w))
	}

	if len(pc.selfReqs) > 0 {
		w := 0
		for _, rq := range pc.selfReqs {
			vals := pc.gather(rq)
			copy(pc.pending[rq.reqID].dst, vals)
			w += len(vals)
		}
		pc.node.Busy(sim.Time(localPerSeg*len(pc.selfReqs) + localPerWord*w))
	}

	// Apply puts into this processor's copies, in source order.
	sort.Slice(in, func(i, j int) bool { return in[i].src < in[j].src })
	applied := 0
	apply := func(segs []putSeg) {
		for _, s := range segs {
			data := pc.m.reg(s.reg).data[me]
			if s.idx == nil {
				copy(data[s.off:s.off+len(s.vals)], s.vals)
			} else {
				for i, ix := range s.idx {
					data[ix] = s.vals[i]
				}
			}
			applied += len(s.vals)
		}
	}
	ii := 0
	for src := 0; src < p; src++ {
		if src == me {
			apply(pc.selfPuts)
			continue
		}
		if ii < len(in) && in[ii].src == src {
			apply(in[ii].puts)
			ii++
		}
	}
	if applied > 0 {
		pc.node.Busy(sim.Time(localPerWord * applied))
	}

	for i := range pc.outPuts {
		pc.outPuts[i] = nil
		pc.outReqs[i] = nil
	}
	pc.selfPuts = nil
	pc.selfReqs = nil
	pc.pending = nil

	if pc.m.opts.TreeBarrier {
		pc.comm.TreeBarrier()
	} else {
		pc.comm.Barrier()
	}
	pc.commCycles += pc.node.Now() - t0

	end := pc.node.Now()
	pc.obsSyncs.Inc()
	pc.obsSyncCycles.Observe(float64(end - t0))
	pc.obsPutWords.Observe(float64(putWords))
	pc.obsGetWords.Observe(float64(getWords))
	if pc.rec.Tracing() {
		if t0 > pc.lastSyncEnd {
			pc.rec.Span(tracePid, me, "bsp", "compute", uint64(pc.lastSyncEnd), uint64(t0),
				obs.Arg{Key: "step", Val: int64(gen)})
		}
		pc.rec.Span(tracePid, me, "bsp", fmt.Sprintf("sync %d", gen), uint64(t0), uint64(end),
			obs.Arg{Key: "step", Val: int64(gen)},
			obs.Arg{Key: "put_words", Val: int64(putWords)},
			obs.Arg{Key: "get_words", Val: int64(getWords)})
	}
	pc.lastSyncEnd = end
}
