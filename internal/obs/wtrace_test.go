package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
)

func TestTraceIDValidity(t *testing.T) {
	for _, tc := range []struct {
		id string
		ok bool
	}{
		{"deadbeef", true},
		{"0123456789abcdef", true},
		{strings.Repeat("a", 64), true},
		{"", false},
		{"abc", false},                      // too short
		{strings.Repeat("a", 65), false},    // too long
		{"DEADBEEF", false},                 // uppercase
		{"deadbeeg", false},                 // non-hex
		{"dead beef", false},                // space
		{"deadbeef\n", false},               // control char
		{"../../../../etc/passwd12", false}, // path traversal shape
	} {
		if got := ValidTraceID(tc.id); got != tc.ok {
			t.Errorf("ValidTraceID(%q) = %v, want %v", tc.id, got, tc.ok)
		}
	}
	for i := 0; i < 10; i++ {
		id := NewTraceID()
		if !ValidTraceID(id) {
			t.Fatalf("NewTraceID() = %q, not valid", id)
		}
	}
	if NewTraceID() == NewTraceID() {
		t.Error("two NewTraceID calls returned the same ID")
	}
}

// TestWallTracerNilSafe checks the whole wall-clock API is inert on nil
// receivers: the disabled path must cost one nil check, never a panic.
func TestWallTracerNilSafe(t *testing.T) {
	var tr *WallTracer
	if tr.Enabled() {
		t.Error("nil tracer reports enabled")
	}
	sp := tr.Start("deadbeef", "http", "request", "GET /")
	sp.Annotate("k", "v")
	sp.End()
	sp.End() // double End is also safe
	tr.Instant("deadbeef", "http", "marker")
	if tr.Spans() != 0 || tr.SpansFor("deadbeef") != 0 || tr.Dropped() != 0 {
		t.Error("nil tracer reports non-zero counts")
	}
	var buf bytes.Buffer
	if err := tr.WriteWallTraceJSON(&buf, ""); err != nil {
		t.Fatalf("nil tracer export: %v", err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("nil tracer export is not valid JSON: %v\n%s", err, buf.String())
	}

	var nilSpan *WallSpan
	nilSpan.Annotate("k", "v")
	nilSpan.End()
}

func TestWallTracerCapCountsDrops(t *testing.T) {
	tr := NewWallTracer(3)
	for i := 0; i < 8; i++ {
		tr.Start("deadbeef", "layer", "c", "s").End()
	}
	if tr.Spans() != 3 || tr.Dropped() != 5 {
		t.Fatalf("spans/dropped = %d/%d, want 3/5", tr.Spans(), tr.Dropped())
	}
	for i := 0; i < 5; i++ {
		tr.Instant("deadbeef", "layer", "i")
	}
	if tr.Dropped() != 7 {
		t.Fatalf("dropped after instants = %d, want 7 (3 kept + 2 extra dropped)", tr.Dropped())
	}
}

// TestWallTracerConcurrent hammers one tracer from many goroutines (spans,
// instants, double-Ends, and concurrent reads); run under -race this is the
// registry's concurrency proof, and the counts must still balance.
func TestWallTracerConcurrent(t *testing.T) {
	tr := NewWallTracer(0)
	const workers, each = 8, 200
	ids := []string{"aaaaaaaa", "bbbbbbbb"}
	done := make(chan struct{})
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			id := ids[w%len(ids)]
			for i := 0; i < each; i++ {
				sp := tr.Start(id, "layer", "cat", "span")
				sp.Annotate("i", "x")
				sp.End()
				sp.End()
				if i%10 == 0 {
					tr.Instant(id, "layer", "marker")
				}
				_ = tr.Spans() // concurrent reader
			}
		}(w)
	}
	for w := 0; w < workers; w++ {
		<-done
	}
	if got := tr.Spans(); got != workers*each {
		t.Errorf("Spans() = %d, want %d", got, workers*each)
	}
	if a, b := tr.SpansFor("aaaaaaaa"), tr.SpansFor("bbbbbbbb"); a+b != workers*each {
		t.Errorf("per-ID spans %d + %d != %d", a, b, workers*each)
	}
	if tr.Dropped() != 0 {
		t.Errorf("Dropped() = %d, want 0", tr.Dropped())
	}
}

// mergedDoc mirrors the merged-export JSON for assertions.
type mergedDoc struct {
	OtherData struct {
		TraceID       string `json:"traceId"`
		WallClockUnit string `json:"wallClockUnit"`
		SimClock      string `json:"simClockDomain"`
		Dropped       uint64 `json:"droppedEvents"`
	} `json:"otherData"`
	TraceEvents []struct {
		Ph   string         `json:"ph"`
		Pid  int            `json:"pid"`
		Tid  int            `json:"tid"`
		Ts   float64        `json:"ts"`
		Dur  float64        `json:"dur"`
		Name string         `json:"name"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
}

// TestWriteMergedTraceFiltersAndMerges checks the end-to-end export shape:
// only the requested trace ID's wall spans appear, layers become named
// thread rows on the wall process, sim-time rows keep their structure at
// shifted pids, and every wall event carries the trace ID in its args.
func TestWriteMergedTraceFiltersAndMerges(t *testing.T) {
	tr := NewWallTracer(0)
	tr.Start("aaaaaaaa", "http", "request", "POST /v1/jobs", WArg{"method", "POST"}).End()
	tr.Start("aaaaaaaa", "queue", "queue", "queue-wait").End()
	tr.Start("aaaaaaaa", "scheduler", "attempt", "attempt 1").End()
	tr.Start("bbbbbbbb", "http", "request", "GET /healthz").End() // other trace: filtered out
	tr.Instant("aaaaaaaa", "store", "fault:store_read", WArg{"fault", "store_read"})

	sim := New(Config{Trace: true})
	sim.NamePid(0, "qsmlib")
	sim.Span(0, 1, "qsmlib", "sync 0", 100, 250)

	var buf bytes.Buffer
	if err := WriteMergedTrace(&buf, "aaaaaaaa", tr, sim); err != nil {
		t.Fatal(err)
	}
	var doc mergedDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("merged trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if doc.OtherData.TraceID != "aaaaaaaa" || doc.OtherData.WallClockUnit != "us" || doc.OtherData.SimClock != "cycles" {
		t.Errorf("otherData = %+v", doc.OtherData)
	}

	var layers []string
	var wallSpans, wallInstants, simSpans int
	simPids := map[int]bool{}
	for _, ev := range doc.TraceEvents {
		switch {
		case ev.Ph == "M" && ev.Name == "thread_name" && ev.Pid == 1:
			layers = append(layers, ev.Args["name"].(string))
		case ev.Ph == "X" && ev.Pid == 1:
			wallSpans++
			if id, _ := ev.Args["trace_id"].(string); id != "aaaaaaaa" {
				t.Errorf("wall span %q has trace_id %v, want aaaaaaaa", ev.Name, ev.Args["trace_id"])
			}
		case ev.Ph == "i" && ev.Pid == 1:
			wallInstants++
			if ev.Args["fault"] != "store_read" {
				t.Errorf("instant args = %v", ev.Args)
			}
		case ev.Ph == "X" && ev.Pid != 1:
			simSpans++
			simPids[ev.Pid] = true
		}
	}
	// Layer rows are sorted by name for stable output.
	want := []string{"http", "queue", "scheduler", "store"}
	if strings.Join(layers, ",") != strings.Join(want, ",") {
		t.Errorf("wall layer rows = %v, want %v", layers, want)
	}
	if wallSpans != 3 {
		t.Errorf("wall spans for aaaaaaaa = %d, want 3 (bbbbbbbb must be filtered)", wallSpans)
	}
	if wallInstants != 1 || simSpans != 1 {
		t.Errorf("instants/simSpans = %d/%d, want 1/1", wallInstants, simSpans)
	}
	for pid := range simPids {
		if pid < 2 {
			t.Errorf("sim span pid %d collides with the wall-clock row", pid)
		}
	}
}

func TestLoggerNilSafe(t *testing.T) {
	var l *Logger
	if l.Enabled() {
		t.Error("nil logger reports enabled")
	}
	l.Debug("d")
	l.Info("i", "k", "v")
	l.Warn("w")
	l.Error("e")
	if l.With("trace_id", "x") != nil {
		t.Error("nil logger With returned non-nil")
	}
	if NewSlogLogger(nil) != nil {
		t.Error("NewSlogLogger(nil) returned non-nil")
	}
}

func TestLoggerLines(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, ParseLogLevel("info"))
	l.Debug("hidden")
	l.With("trace_id", "deadbeef", "job", "job-1").Warn("injected store fault", "fault", "store_read")
	out := buf.String()
	if strings.Contains(out, "hidden") {
		t.Errorf("debug line leaked at info level: %s", out)
	}
	for _, want := range []string{"trace_id=deadbeef", "job=job-1", "fault=store_read", "level=WARN"} {
		if !strings.Contains(out, want) {
			t.Errorf("log line missing %q: %s", want, out)
		}
	}
}

func TestTraceContextPlumbing(t *testing.T) {
	if tc := TraceContextFrom(context.Background()); tc != nil {
		t.Error("empty context yielded a trace context")
	}
	// The nil TraceContext is valid and inert.
	var nilTC *TraceContext
	nilTC.Start("http", "c", "n").End()
	nilTC.Instant("http", "n")
	if nilTC.Logger() != nil || nilTC.TraceID() != "" {
		t.Error("nil TraceContext not inert")
	}

	tr := NewWallTracer(0)
	tc := &TraceContext{ID: "deadbeef", Tracer: tr}
	ctx := WithTraceContext(context.Background(), tc)
	got := TraceContextFrom(ctx)
	if got != tc {
		t.Fatal("trace context did not round-trip through context")
	}
	got.Start("store", "store", "store.get").End()
	got.Instant("store", "fault:slow_job")
	if tr.SpansFor("deadbeef") != 1 {
		t.Errorf("span not recorded through context: %d", tr.SpansFor("deadbeef"))
	}
}
