package obs

// Request-scoped structured logging for the serving stack, built on
// log/slog and nil-safe in the same way the metrics Recorder is: a nil
// *Logger accepts every call and emits nothing, so layers log
// unconditionally and pay one nil check when logging is off. Loggers are
// derived with With so every line a request or job emits carries its trace
// ID, job key, and attempt — the chaos smoke greps exactly those fields to
// prove a fault fired inside a traced request.

import (
	"context"
	"io"
	"log/slog"
)

// Logger is a nil-safe wrapper over *slog.Logger.
type Logger struct {
	s *slog.Logger
}

// NewLogger returns a Logger writing logfmt-style text lines
// (key=value pairs, greppable) at or above level to w.
func NewLogger(w io.Writer, level slog.Leveler) *Logger {
	return &Logger{s: slog.New(slog.NewTextHandler(w, &slog.HandlerOptions{Level: level}))}
}

// NewSlogLogger wraps an existing slog logger; nil yields the inert Logger.
func NewSlogLogger(s *slog.Logger) *Logger {
	if s == nil {
		return nil
	}
	return &Logger{s: s}
}

// ParseLogLevel maps "debug", "info", "warn", "error" to a slog level;
// anything else (including "") is info.
func ParseLogLevel(s string) slog.Level {
	switch s {
	case "debug":
		return slog.LevelDebug
	case "warn":
		return slog.LevelWarn
	case "error":
		return slog.LevelError
	default:
		return slog.LevelInfo
	}
}

// Enabled reports whether the logger emits anything.
func (l *Logger) Enabled() bool { return l != nil }

// With returns a logger whose lines all carry the given attributes.
func (l *Logger) With(args ...any) *Logger {
	if l == nil {
		return nil
	}
	return &Logger{s: l.s.With(args...)}
}

// Debug logs at debug level.
func (l *Logger) Debug(msg string, args ...any) {
	if l != nil {
		l.s.Debug(msg, args...)
	}
}

// Info logs at info level.
func (l *Logger) Info(msg string, args ...any) {
	if l != nil {
		l.s.Info(msg, args...)
	}
}

// Warn logs at warn level.
func (l *Logger) Warn(msg string, args ...any) {
	if l != nil {
		l.s.Warn(msg, args...)
	}
}

// Error logs at error level.
func (l *Logger) Error(msg string, args ...any) {
	if l != nil {
		l.s.Error(msg, args...)
	}
}

// TraceContext is the per-request (or per-job) observability bundle carried
// through context.Context: the trace ID, the process-wide wall tracer, and a
// logger already annotated with the trace ID. The nil *TraceContext is valid
// and inert, so deep layers (the store, the fault middleware) consult it
// unconditionally.
type TraceContext struct {
	ID     string
	Tracer *WallTracer
	Log    *Logger
}

type traceCtxKey struct{}

// WithTraceContext attaches tc to ctx.
func WithTraceContext(ctx context.Context, tc *TraceContext) context.Context {
	if tc == nil {
		return ctx
	}
	return context.WithValue(ctx, traceCtxKey{}, tc)
}

// TraceContextFrom extracts the trace context from ctx, or nil.
func TraceContextFrom(ctx context.Context) *TraceContext {
	if ctx == nil {
		return nil
	}
	tc, _ := ctx.Value(traceCtxKey{}).(*TraceContext)
	return tc
}

// Start opens a wall-clock span on the context's tracer, tagged with its
// trace ID. Returns nil (safe to End) when tracing is off.
func (tc *TraceContext) Start(layer, cat, name string, args ...WArg) *WallSpan {
	if tc == nil {
		return nil
	}
	return tc.Tracer.Start(tc.ID, layer, cat, name, args...)
}

// Instant records a point-in-time marker on the context's tracer.
func (tc *TraceContext) Instant(layer, name string, args ...WArg) {
	if tc == nil {
		return
	}
	tc.Tracer.Instant(tc.ID, layer, name, args...)
}

// Logger returns the context's logger (nil-safe: a nil TraceContext yields
// the inert logger).
func (tc *TraceContext) Logger() *Logger {
	if tc == nil {
		return nil
	}
	return tc.Log
}

// TraceID returns the context's trace ID, or "" when untraced.
func (tc *TraceContext) TraceID() string {
	if tc == nil {
		return ""
	}
	return tc.ID
}
