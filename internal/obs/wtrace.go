package obs

// This file is the wall-clock half of the observability layer. The sim-time
// side (trace.go) records spans in simulated cycles from single-goroutine
// Recorders; the wall-clock side records real elapsed time from the serving
// stack — HTTP handling, queue wait, scheduler attempts, store I/O, runner
// execution — where many goroutines trace concurrently into one process-wide
// WallTracer. Spans carry a trace ID propagated end to end (the client sends
// it in the X-Qsm-Trace header, the service stamps it on every span and log
// line), so one job's journey can be filtered out of the shared buffer and
// exported — merged with the job's sim-time spans — as a single
// Perfetto-loadable Chrome trace file: one process row per serving layer in
// microseconds, plus the simulation's own process rows in cycles.
//
// Like the metrics registry, everything is nil-safe: a nil *WallTracer (and
// the nil *WallSpan its methods then return) records nothing, so the serving
// stack wires tracing unconditionally and pays one nil check when it is off.

import (
	"bufio"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"time"
)

// TraceHeader is the HTTP header that propagates a trace ID from
// service.Client through qsmd into every span and log line of a job.
const TraceHeader = "X-Qsm-Trace"

// NewTraceID returns a fresh 16-hex-character trace ID.
func NewTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is effectively fatal elsewhere; degrade to a
		// recognizable constant rather than bringing tracing down.
		return "00000000824c0c1d"
	}
	return hex.EncodeToString(b[:])
}

// ValidTraceID reports whether s is usable as a trace ID: 8–64 characters of
// lowercase hex. Invalid inbound IDs are replaced rather than trusted.
func ValidTraceID(s string) bool {
	if len(s) < 8 || len(s) > 64 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return false
		}
	}
	return true
}

// WArg is one string key/value annotation on a wall-clock span or event.
// (Sim-time spans use the int64-valued Arg; wall spans annotate with job
// keys, states, and fault classes, which are strings.)
type WArg struct {
	Key string
	Val string
}

// wallEvent is one instant ("i"-phase) marker inside the tracer, used for
// fault injections and other point-in-time annotations.
type wallEvent struct {
	traceID string
	layer   string
	name    string
	at      time.Duration
	args    []WArg
}

// wallRecord is one completed wall-clock span in the tracer's buffer.
type wallRecord struct {
	traceID    string
	layer      string
	cat        string
	name       string
	start, end time.Duration
	args       []WArg
}

// DefaultMaxWallSpans bounds the process-wide wall-span buffer; excess spans
// are counted as dropped, mirroring the sim-time trace cap.
const DefaultMaxWallSpans = 1 << 18

// WallTracer collects wall-clock spans from concurrent goroutines into one
// bounded buffer. All methods are safe for concurrent use and on a nil
// receiver (which records nothing).
type WallTracer struct {
	mu      sync.Mutex
	start   time.Time
	max     int
	spans   []wallRecord
	events  []wallEvent
	dropped uint64
}

// NewWallTracer creates a tracer whose span buffer holds up to maxSpans
// completed spans (<= 0 means DefaultMaxWallSpans).
func NewWallTracer(maxSpans int) *WallTracer {
	if maxSpans <= 0 {
		maxSpans = DefaultMaxWallSpans
	}
	return &WallTracer{start: time.Now(), max: maxSpans}
}

// Enabled reports whether the tracer records; use it to skip building span
// arguments when tracing is off.
func (t *WallTracer) Enabled() bool { return t != nil }

// now returns the wall offset since the tracer started.
func (t *WallTracer) now() time.Duration { return time.Since(t.start) }

// WallSpan is one in-progress wall-clock span. Start it with
// WallTracer.Start, optionally annotate it, and End it exactly once; the
// completed record then lands in the tracer's buffer. A span may be started
// and ended on different goroutines as long as the two are ordered (e.g.
// handing a job from the admission path to a worker); its methods are not
// otherwise safe for concurrent use.
type WallSpan struct {
	t       *WallTracer
	traceID string
	layer   string
	cat     string
	name    string
	start   time.Duration
	args    []WArg
	ended   bool
}

// Start opens a span on the given layer row (e.g. "http", "queue",
// "scheduler", "store", "runner", "client") tagged with traceID.
func (t *WallTracer) Start(traceID, layer, cat, name string, args ...WArg) *WallSpan {
	if t == nil {
		return nil
	}
	return &WallSpan{t: t, traceID: traceID, layer: layer, cat: cat, name: name, start: t.now(), args: args}
}

// Annotate appends a key/value argument to the span.
func (s *WallSpan) Annotate(key, val string) {
	if s == nil {
		return
	}
	s.args = append(s.args, WArg{key, val})
}

// End completes the span and commits it to the tracer's buffer. Ending a
// span twice commits it once.
func (s *WallSpan) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	t := s.t
	end := t.now()
	t.mu.Lock()
	if len(t.spans) >= t.max {
		t.dropped++
	} else {
		t.spans = append(t.spans, wallRecord{
			traceID: s.traceID, layer: s.layer, cat: s.cat, name: s.name,
			start: s.start, end: end, args: s.args,
		})
	}
	t.mu.Unlock()
}

// Instant records a zero-duration marker event on a layer row — fault
// injections, state transitions, and other point-in-time annotations.
func (t *WallTracer) Instant(traceID, layer, name string, args ...WArg) {
	if t == nil {
		return
	}
	at := t.now()
	t.mu.Lock()
	if len(t.events) >= t.max {
		t.dropped++
	} else {
		t.events = append(t.events, wallEvent{traceID: traceID, layer: layer, name: name, at: at, args: args})
	}
	t.mu.Unlock()
}

// Spans returns the number of committed spans, across all trace IDs.
func (t *WallTracer) Spans() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// SpansFor returns the number of committed spans tagged with traceID.
func (t *WallTracer) SpansFor(traceID string) int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for i := range t.spans {
		if t.spans[i].traceID == traceID {
			n++
		}
	}
	return n
}

// Dropped returns how many spans and events were discarded at the buffer
// cap.
func (t *WallTracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// snapshotFor copies the spans and events tagged with traceID (or all of
// them when traceID is empty), so export does not hold the lock while
// encoding.
func (t *WallTracer) snapshotFor(traceID string) ([]wallRecord, []wallEvent) {
	t.mu.Lock()
	defer t.mu.Unlock()
	var spans []wallRecord
	for i := range t.spans {
		if traceID == "" || t.spans[i].traceID == traceID {
			spans = append(spans, t.spans[i])
		}
	}
	var events []wallEvent
	for i := range t.events {
		if traceID == "" || t.events[i].traceID == traceID {
			events = append(events, t.events[i])
		}
	}
	return spans, events
}

// wallPid is the Chrome-trace process id of the wall-clock row in merged
// exports; sim-time process ids are offset past it.
const wallPid = 1

// WriteMergedTrace writes one Perfetto-loadable Chrome trace-event JSON
// document combining the wall-clock spans tagged with traceID (or every
// span, when traceID is empty) and the sim-time spans of sim (which may be
// nil, e.g. while the simulation is still running). The wall-clock side is
// process row 1 with one named thread row per serving layer and ts/dur in
// real microseconds; the sim-time rows keep their own process ids (offset
// past the wall row) with ts/dur in simulated cycles — two clock domains,
// deliberately side by side, so layer attribution and simulation structure
// are read from one file.
func WriteMergedTrace(w io.Writer, traceID string, wall *WallTracer, sim *Recorder) error {
	bw := bufio.NewWriter(w)
	var spans []wallRecord
	var events []wallEvent
	var dropped uint64
	if wall != nil {
		spans, events = wall.snapshotFor(traceID)
		dropped = wall.Dropped()
	}
	if sim != nil && sim.trace != nil {
		dropped += sim.trace.dropped
	}
	fmt.Fprintf(bw, "{\n  \"displayTimeUnit\": \"ns\",\n  \"otherData\": {\"traceId\": %s, \"wallClockUnit\": \"us\", \"simClockDomain\": \"cycles\", \"droppedEvents\": %d},\n  \"traceEvents\": [", strconv.Quote(traceID), dropped)
	first := true
	emit := func(line string) {
		if !first {
			bw.WriteString(",")
		}
		first = false
		bw.WriteString("\n    ")
		bw.WriteString(line)
	}

	// Stable thread-row numbering: layers sorted by first appearance would
	// depend on scheduling, so sort them by name.
	layerSet := map[string]bool{}
	for i := range spans {
		layerSet[spans[i].layer] = true
	}
	for i := range events {
		layerSet[events[i].layer] = true
	}
	layers := make([]string, 0, len(layerSet))
	for l := range layerSet {
		layers = append(layers, l)
	}
	sort.Strings(layers)
	tids := make(map[string]int, len(layers))
	emit(fmt.Sprintf(`{"ph":"M","pid":%d,"tid":0,"name":"process_name","args":{"name":"wall-clock (us)"}}`, wallPid))
	for i, l := range layers {
		tids[l] = i + 1
		emit(fmt.Sprintf(`{"ph":"M","pid":%d,"tid":%d,"name":"thread_name","args":{"name":%s}}`, wallPid, i+1, strconv.Quote(l)))
	}
	for i := range spans {
		s := &spans[i]
		line := fmt.Sprintf(`{"ph":"X","pid":%d,"tid":%d,"ts":%d,"dur":%d,"cat":%s,"name":%s`,
			wallPid, tids[s.layer], s.start.Microseconds(), (s.end - s.start).Microseconds(),
			strconv.Quote(s.cat), strconv.Quote(s.name))
		line += wallArgsJSON(s.traceID, s.args)
		emit(line + "}")
	}
	for i := range events {
		e := &events[i]
		line := fmt.Sprintf(`{"ph":"i","s":"t","pid":%d,"tid":%d,"ts":%d,"cat":"event","name":%s`,
			wallPid, tids[e.layer], e.at.Microseconds(), strconv.Quote(e.name))
		line += wallArgsJSON(e.traceID, e.args)
		emit(line + "}")
	}
	if sim != nil && sim.trace != nil {
		sim.trace.emitTo(emit, wallPid+1)
	}
	bw.WriteString("\n  ]\n}\n")
	return bw.Flush()
}

// wallArgsJSON renders the trace id plus string args as a Chrome trace
// "args" object fragment (leading comma included).
func wallArgsJSON(traceID string, args []WArg) string {
	out := `,"args":{"trace_id":` + strconv.Quote(traceID)
	for _, a := range args {
		out += "," + strconv.Quote(a.Key) + ":" + strconv.Quote(a.Val)
	}
	return out + "}"
}

// WriteWallTraceJSON writes the tracer's spans for traceID (all spans when
// empty) as a standalone Chrome trace document with no sim-time rows.
func (t *WallTracer) WriteWallTraceJSON(w io.Writer, traceID string) error {
	return WriteMergedTrace(w, traceID, t, nil)
}
