package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
)

// TestNilSafety exercises every handle method and recorder accessor on nil
// receivers: the disabled path must be inert, not a crash.
func TestNilSafety(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Error("nil counter has a value")
	}
	var g *Gauge
	g.Set(7)
	g.Add(3)
	if g.Value() != 0 || g.Max() != 0 {
		t.Error("nil gauge has a value")
	}
	var h *Histogram
	h.Observe(1.5)
	if h.Count() != 0 || h.Sum() != 0 || h.Mean() != 0 || h.BucketCount(0) != 0 {
		t.Error("nil histogram has observations")
	}

	var r *Recorder
	if r.Counter("s", "n", "") != nil || r.Gauge("s", "n", "") != nil ||
		r.Histogram("s", "n", "", ExpBuckets(1, 2, 4)) != nil {
		t.Error("nil recorder returned non-nil handles")
	}
	if r.Tracing() {
		t.Error("nil recorder claims to trace")
	}
	r.Span(0, 0, "c", "n", 0, 1)
	r.NamePid(0, "x")
	r.NameTid(0, 0, "x")
	r.Merge(New(Config{Metrics: true}))
	var buf bytes.Buffer
	if err := r.WriteMetricsJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteTraceJSON(&buf); err != nil {
		t.Fatal(err)
	}

	// Metrics-off recorder: constructors return nil handles too.
	off := New(Config{})
	if off.Counter("s", "n", "") != nil {
		t.Error("metrics-off recorder returned a counter")
	}
}

// TestHistogramBuckets pins the inclusive-upper-bound ("le") semantics:
// a value equal to a bound lands in that bound's bucket, values above the
// last bound land in overflow.
func TestHistogramBuckets(t *testing.T) {
	r := New(Config{Metrics: true})
	h := r.Histogram("t", "h", "", []float64{10, 20, 40})

	for _, tc := range []struct {
		v      float64
		bucket int
	}{
		{0, 0}, {10, 0}, {10.5, 1}, {20, 1}, {21, 2}, {40, 2}, {40.01, 3}, {1e9, 3},
	} {
		before := h.BucketCount(tc.bucket)
		h.Observe(tc.v)
		if got := h.BucketCount(tc.bucket); got != before+1 {
			t.Errorf("Observe(%v): bucket %d count %d, want %d", tc.v, tc.bucket, got, before+1)
		}
	}
	if h.Count() != 8 {
		t.Errorf("count = %d, want 8", h.Count())
	}
	wantSum := 0.0 + 10 + 10.5 + 20 + 21 + 40 + 40.01 + 1e9
	if math.Abs(h.Sum()-wantSum) > 1e-9 {
		t.Errorf("sum = %v, want %v", h.Sum(), wantSum)
	}
	if h.min != 0 || h.max != 1e9 {
		t.Errorf("min/max = %v/%v, want 0/1e9", h.min, h.max)
	}
}

func TestBucketConstructors(t *testing.T) {
	exp := ExpBuckets(2, 4, 4)
	want := []float64{2, 8, 32, 128}
	for i := range want {
		if exp[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", exp, want)
		}
	}
	lin := LinearBuckets(0, 5, 3)
	want = []float64{0, 5, 10}
	for i := range want {
		if lin[i] != want[i] {
			t.Fatalf("LinearBuckets = %v, want %v", lin, want)
		}
	}
}

// TestHandleIdentity checks a key resolves to the same handle every time, so
// instrumented code can resolve once at setup.
func TestHandleIdentity(t *testing.T) {
	r := New(Config{Metrics: true})
	if r.Counter("a", "b", "x=1") != r.Counter("a", "b", "x=1") {
		t.Error("same counter key resolved to different handles")
	}
	if r.Counter("a", "b", "x=1") == r.Counter("a", "b", "x=2") {
		t.Error("different labels resolved to the same counter")
	}
	if r.FindCounter("a", "b", "x=1") == nil || r.FindCounter("a", "zz", "") != nil {
		t.Error("FindCounter mismatch")
	}
	h := r.Histogram("a", "h", "", ExpBuckets(1, 2, 3))
	if r.FindHistogram("a", "h", "") != h {
		t.Error("FindHistogram returned a different handle")
	}
}

func TestMerge(t *testing.T) {
	a := New(Config{Metrics: true})
	b := New(Config{Metrics: true})
	a.Counter("s", "c", "").Add(3)
	b.Counter("s", "c", "").Add(4)
	b.Counter("s", "only_b", "").Inc()
	a.Gauge("s", "g", "").Set(10)
	b.Gauge("s", "g", "").Set(7)
	bounds := []float64{1, 2}
	a.Histogram("s", "h", "", bounds).Observe(1)
	b.Histogram("s", "h", "", bounds).Observe(5)

	a.Merge(b)
	if got := a.Counter("s", "c", "").Value(); got != 7 {
		t.Errorf("merged counter = %d, want 7", got)
	}
	if got := a.Counter("s", "only_b", "").Value(); got != 1 {
		t.Errorf("counter only in other = %d, want 1", got)
	}
	if got := a.Gauge("s", "g", "").Max(); got != 10 {
		t.Errorf("merged gauge max = %d, want 10", got)
	}
	h := a.FindHistogram("s", "h", "")
	if h.Count() != 2 || h.BucketCount(0) != 1 || h.BucketCount(2) != 1 {
		t.Errorf("merged histogram: count=%d buckets=[%d %d %d]",
			h.Count(), h.BucketCount(0), h.BucketCount(1), h.BucketCount(2))
	}
	if h.min != 1 || h.max != 5 {
		t.Errorf("merged histogram min/max = %v/%v, want 1/5", h.min, h.max)
	}
}

// TestMetricsJSON checks the snapshot is valid JSON with series sorted by
// (subsystem, name, labels).
func TestMetricsJSON(t *testing.T) {
	r := New(Config{Metrics: true})
	r.Counter("z", "c", "").Inc()
	r.Counter("a", "c", "p=2").Inc()
	r.Counter("a", "c", "p=1").Add(2)
	r.Gauge("m", "g", "").Set(4)
	r.Histogram("m", "h", "", []float64{1, 10}).Observe(3)

	var buf bytes.Buffer
	if err := r.WriteMetricsJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Counters []struct {
			Subsystem string `json:"subsystem"`
			Labels    string `json:"labels"`
			Value     uint64 `json:"value"`
		} `json:"counters"`
		Gauges     []json.RawMessage `json:"gauges"`
		Histograms []struct {
			Count   uint64 `json:"count"`
			Buckets []struct {
				LE    float64 `json:"le"`
				Count uint64  `json:"count"`
			} `json:"buckets"`
			Overflow uint64 `json:"overflow"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(snap.Counters) != 3 || len(snap.Gauges) != 1 || len(snap.Histograms) != 1 {
		t.Fatalf("series counts = %d/%d/%d, want 3/1/1", len(snap.Counters), len(snap.Gauges), len(snap.Histograms))
	}
	if snap.Counters[0].Labels != "p=1" || snap.Counters[1].Labels != "p=2" || snap.Counters[2].Subsystem != "z" {
		t.Errorf("counters not sorted by key: %+v", snap.Counters)
	}
	h := snap.Histograms[0]
	if h.Count != 1 || len(h.Buckets) != 2 || h.Buckets[1].Count != 1 || h.Overflow != 0 {
		t.Errorf("histogram snapshot wrong: %+v", h)
	}
}

// TestSinkMergedDeterministic checks Merged folds recorders in index order
// regardless of creation order, so parallel sweeps aggregate identically.
func TestSinkMergedDeterministic(t *testing.T) {
	build := func(order []int) []byte {
		s := NewSink(Config{Metrics: true})
		if base := s.Reserve(3); base != 0 {
			t.Fatalf("first Reserve = %d, want 0", base)
		}
		for _, i := range order {
			r := s.Recorder(i)
			r.Counter("t", "c", "").Add(uint64(i + 1))
			r.Histogram("t", "h", "", []float64{1, 2, 4}).Observe(float64(i))
			r.Gauge("t", "g", "").Set(int64(10 * (i + 1)))
		}
		var buf bytes.Buffer
		if err := s.Merged().WriteMetricsJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a := build([]int{0, 1, 2})
	b := build([]int{2, 0, 1})
	if !bytes.Equal(a, b) {
		t.Errorf("merged output depends on recorder creation order:\n%s\nvs\n%s", a, b)
	}
}

func TestSinkNil(t *testing.T) {
	var s *Sink
	if s.Reserve(10) != 0 {
		t.Error("nil sink Reserve != 0")
	}
	if s.Recorder(3) != nil {
		t.Error("nil sink returned a recorder")
	}
	if s.Merged() != nil {
		t.Error("nil sink returned a merged recorder")
	}
}

func TestSinkReserveBlocks(t *testing.T) {
	s := NewSink(Config{Metrics: true})
	if got := s.Reserve(5); got != 0 {
		t.Fatalf("Reserve(5) = %d, want 0", got)
	}
	if got := s.Reserve(2); got != 5 {
		t.Fatalf("second Reserve = %d, want 5", got)
	}
}
