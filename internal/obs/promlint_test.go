package obs

// Prometheus exposition conformance for WritePrometheusText: a golden file
// pinning the full output of a registry exercising every metric kind and
// awkward-input case, plus a promlint-style structural validator enforcing
// the text format 0.0.4 rules scrapers rely on — TYPE before samples, valid
// metric-name and label syntax, counters suffixed _total, histogram buckets
// cumulative and closed by +Inf, and _sum/_count consistency.

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// conformanceRegistry builds a registry covering every family kind and the
// awkward inputs the exporter must sanitise or escape.
func conformanceRegistry() *Recorder {
	r := New(Config{Metrics: true})
	r.Counter("service", "jobs_submitted", "").Add(41)
	r.Counter("membank", "accesses", "bank=1,op=read").Add(5)
	r.Counter("membank", "accesses", "bank=1,op=write").Add(2)
	r.Counter("sim-core", "events/sec", `kind=a"b\c`).Inc() // name + label escaping
	g := r.Gauge("service", "queue_depth", "")
	g.Set(7)
	g.Set(3)
	r.Gauge("service", "inflight", "worker=w-0").Set(1)
	h := r.Histogram("service", "latency_seconds", "", []float64{0.001, 0.01, 0.1, 1})
	for _, v := range []float64{0.0005, 0.002, 0.05, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	hb := r.Histogram("store", "entry_bytes", "tier=mem", []float64{1024, 1048576})
	hb.Observe(100)
	hb.Observe(2e6) // lands in +Inf only
	return r
}

func TestPrometheusGoldenFile(t *testing.T) {
	var b strings.Builder
	if err := conformanceRegistry().WritePrometheusText(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	golden := filepath.Join("testdata", "prometheus_golden.txt")
	if *updateGolden {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("Prometheus exposition diverges from %s.\ngot:\n%s\nwant:\n%s", golden, got, want)
	}
	lintPrometheusText(t, got)
}

// TestPrometheusLintServiceRegistry lints a second, independently shaped
// registry so the validator is not tuned to the golden fixture.
func TestPrometheusLintServiceRegistry(t *testing.T) {
	r := New(Config{Metrics: true})
	for i := 0; i < 3; i++ {
		r.Counter("engine", "events", fmt.Sprintf("proc=p%d", i)).Add(uint64(100 * (i + 1)))
	}
	r.Gauge("engine", "heap_len", "").Set(12)
	h := r.Histogram("engine", "queue_wait_cycles", "", []float64{10, 100, 1000, 10000, 1e6})
	for i := 0; i < 50; i++ {
		h.Observe(float64(i * i * i))
	}
	var b strings.Builder
	if err := r.WritePrometheusText(&b); err != nil {
		t.Fatal(err)
	}
	lintPrometheusText(t, b.String())
}

var (
	promNameRe  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	promLabelRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// promSample is one parsed sample line.
type promSample struct {
	name   string
	labels map[string]string
	value  float64
	line   int
}

// lintPrometheusText structurally validates a text-format 0.0.4 exposition.
func lintPrometheusText(t *testing.T, text string) {
	t.Helper()
	types := map[string]string{} // family name -> type
	var order []string
	samples := map[string][]promSample{}
	sawSampleFor := map[string]bool{}

	for i, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		ln := i + 1
		if line == "" {
			t.Errorf("line %d: empty line in exposition", ln)
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) < 2 || (fields[1] != "TYPE" && fields[1] != "HELP") {
				t.Errorf("line %d: comment is neither # TYPE nor # HELP: %q", ln, line)
				continue
			}
			if fields[1] != "TYPE" {
				continue
			}
			if len(fields) != 4 {
				t.Errorf("line %d: malformed TYPE line: %q", ln, line)
				continue
			}
			name, typ := fields[2], fields[3]
			if !promNameRe.MatchString(name) {
				t.Errorf("line %d: invalid metric name %q", ln, name)
			}
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				t.Errorf("line %d: invalid metric type %q", ln, typ)
			}
			if _, dup := types[name]; dup {
				t.Errorf("line %d: duplicate TYPE for %q", ln, name)
			}
			if typ == "counter" && !strings.HasSuffix(name, "_total") {
				t.Errorf("line %d: counter %q not suffixed _total", ln, name)
			}
			types[name] = typ
			order = append(order, name)
			continue
		}

		s, err := parsePromSample(line, ln)
		if err != nil {
			t.Errorf("%v", err)
			continue
		}
		fam := familyFor(s.name, types)
		if fam == "" {
			t.Errorf("line %d: sample %q has no preceding TYPE declaration", ln, s.name)
			continue
		}
		if sawSampleFor[fam] && samples[fam][len(samples[fam])-1].line != ln-1 {
			t.Errorf("line %d: samples of family %q are not contiguous", ln, fam)
		}
		sawSampleFor[fam] = true
		samples[fam] = append(samples[fam], s)
	}

	for _, fam := range order {
		fs := samples[fam]
		if len(fs) == 0 {
			t.Errorf("family %q declared but has no samples", fam)
			continue
		}
		switch types[fam] {
		case "counter", "gauge":
			for _, s := range fs {
				if s.name != fam {
					t.Errorf("line %d: sample %q under %s family %q", s.line, s.name, types[fam], fam)
				}
				if types[fam] == "counter" && s.value < 0 {
					t.Errorf("line %d: counter %q has negative value %v", s.line, s.name, s.value)
				}
			}
		case "histogram":
			lintHistogram(t, fam, fs)
		}
	}
}

// familyFor maps a sample name to its declared family: exact for counters
// and gauges, the _bucket/_sum/_count suffixes for histograms.
func familyFor(name string, types map[string]string) string {
	if _, ok := types[name]; ok {
		return name
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suf)
		if base != name && types[base] == "histogram" {
			return base
		}
	}
	return ""
}

// parsePromSample parses `name{k="v",...} value`, checking name, label, and
// escape syntax.
func parsePromSample(line string, ln int) (promSample, error) {
	s := promSample{labels: map[string]string{}, line: ln}
	rest := line
	brace := strings.IndexByte(rest, '{')
	var nameEnd int
	if brace >= 0 {
		nameEnd = brace
	} else {
		nameEnd = strings.IndexByte(rest, ' ')
		if nameEnd < 0 {
			return s, fmt.Errorf("line %d: no value separator in %q", ln, line)
		}
	}
	s.name = rest[:nameEnd]
	if !promNameRe.MatchString(s.name) {
		return s, fmt.Errorf("line %d: invalid metric name %q", ln, s.name)
	}
	rest = rest[nameEnd:]
	if brace >= 0 {
		end := strings.LastIndexByte(rest, '}')
		if end < 0 {
			return s, fmt.Errorf("line %d: unterminated label set in %q", ln, line)
		}
		for _, pair := range splitLabels(rest[1:end]) {
			k, v, ok := strings.Cut(pair, "=")
			if !ok || !promLabelRe.MatchString(k) {
				return s, fmt.Errorf("line %d: malformed label pair %q", ln, pair)
			}
			if len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
				return s, fmt.Errorf("line %d: label value %q not quoted", ln, v)
			}
			unq, err := unescapeLabel(v[1 : len(v)-1])
			if err != nil {
				return s, fmt.Errorf("line %d: label %s: %v", ln, k, err)
			}
			if _, dup := s.labels[k]; dup {
				return s, fmt.Errorf("line %d: duplicate label %q", ln, k)
			}
			s.labels[k] = unq
		}
		rest = rest[end+1:]
	}
	valStr := strings.TrimSpace(rest)
	v, err := strconv.ParseFloat(valStr, 64)
	if err != nil && valStr != "+Inf" && valStr != "-Inf" && valStr != "NaN" {
		return s, fmt.Errorf("line %d: unparseable value %q", ln, valStr)
	}
	s.value = v
	return s, nil
}

// splitLabels splits a label body on commas that are outside quotes.
func splitLabels(body string) []string {
	if body == "" {
		return nil
	}
	var out []string
	var cur strings.Builder
	inQuote, escaped := false, false
	for i := 0; i < len(body); i++ {
		c := body[i]
		switch {
		case escaped:
			escaped = false
			cur.WriteByte(c)
		case c == '\\' && inQuote:
			escaped = true
			cur.WriteByte(c)
		case c == '"':
			inQuote = !inQuote
			cur.WriteByte(c)
		case c == ',' && !inQuote:
			out = append(out, cur.String())
			cur.Reset()
		default:
			cur.WriteByte(c)
		}
	}
	out = append(out, cur.String())
	return out
}

// unescapeLabel validates the \\, \", \n escapes the format allows; raw
// control characters or stray backslashes are conformance failures.
func unescapeLabel(v string) (string, error) {
	var b strings.Builder
	for i := 0; i < len(v); i++ {
		c := v[i]
		if c == '\n' {
			return "", fmt.Errorf("raw newline in label value")
		}
		if c == '"' {
			return "", fmt.Errorf("unescaped quote in label value")
		}
		if c != '\\' {
			b.WriteByte(c)
			continue
		}
		i++
		if i >= len(v) {
			return "", fmt.Errorf("trailing backslash in label value")
		}
		switch v[i] {
		case '\\':
			b.WriteByte('\\')
		case '"':
			b.WriteByte('"')
		case 'n':
			b.WriteByte('\n')
		default:
			return "", fmt.Errorf("invalid escape \\%c in label value", v[i])
		}
	}
	return b.String(), nil
}

// lintHistogram checks one histogram family: per-label-set cumulative
// buckets with strictly increasing bounds closed by +Inf, and a _sum and
// _count whose value matches the +Inf bucket.
func lintHistogram(t *testing.T, fam string, fs []promSample) {
	t.Helper()
	type series struct {
		buckets []promSample
		sum     *promSample
		count   *promSample
	}
	bySet := map[string]*series{}
	keyOf := func(labels map[string]string) string {
		ks := make([]string, 0, len(labels))
		for k := range labels {
			if k != "le" {
				ks = append(ks, k)
			}
		}
		sort.Strings(ks)
		var b strings.Builder
		for _, k := range ks {
			fmt.Fprintf(&b, "%s=%q,", k, labels[k])
		}
		return b.String()
	}
	for i := range fs {
		s := fs[i]
		key := keyOf(s.labels)
		sr := bySet[key]
		if sr == nil {
			sr = &series{}
			bySet[key] = sr
		}
		switch s.name {
		case fam + "_bucket":
			if _, ok := s.labels["le"]; !ok {
				t.Errorf("line %d: %s_bucket without le label", s.line, fam)
				continue
			}
			sr.buckets = append(sr.buckets, s)
		case fam + "_sum":
			sr.sum = &fs[i]
		case fam + "_count":
			sr.count = &fs[i]
		}
	}
	for key, sr := range bySet {
		if len(sr.buckets) == 0 {
			t.Errorf("histogram %s{%s}: no buckets", fam, key)
			continue
		}
		prevBound := float64(0)
		prevCum := float64(-1)
		sawInf := false
		for i, b := range sr.buckets {
			leStr := b.labels["le"]
			var bound float64
			if leStr == "+Inf" {
				sawInf = true
				if i != len(sr.buckets)-1 {
					t.Errorf("line %d: histogram %s: +Inf bucket is not last", b.line, fam)
				}
			} else {
				var err error
				bound, err = strconv.ParseFloat(leStr, 64)
				if err != nil {
					t.Errorf("line %d: histogram %s: unparseable le=%q", b.line, fam, leStr)
					continue
				}
				if i > 0 && bound <= prevBound {
					t.Errorf("line %d: histogram %s: le bounds not increasing (%v after %v)", b.line, fam, bound, prevBound)
				}
				prevBound = bound
			}
			if b.value < prevCum {
				t.Errorf("line %d: histogram %s: bucket counts not cumulative (%v after %v)", b.line, fam, b.value, prevCum)
			}
			prevCum = b.value
		}
		if !sawInf {
			t.Errorf("histogram %s{%s}: missing +Inf bucket", fam, key)
		}
		if sr.sum == nil {
			t.Errorf("histogram %s{%s}: missing _sum", fam, key)
		}
		if sr.count == nil {
			t.Errorf("histogram %s{%s}: missing _count", fam, key)
		} else if inf := sr.buckets[len(sr.buckets)-1]; sawInf && sr.count.value != inf.value {
			t.Errorf("histogram %s{%s}: _count %v != +Inf bucket %v", fam, key, sr.count.value, inf.value)
		}
	}
}
