package obs

import (
	"sort"
	"sync"
)

// Sink hands out per-job Recorders to concurrent simulation workers and
// merges them into one aggregate in deterministic index order, so aggregated
// metrics and traces are byte-identical at any parallelism level.
//
// Index discipline: a sweep first calls Reserve(n) to claim a contiguous
// block of indices (sweeps within one experiment run sequentially, so block
// bases are deterministic), then each job calls Recorder(base+i) with its
// deterministic flat index. All methods are safe on a nil *Sink, returning
// zero values, so callers can wire a sink through unconditionally.
type Sink struct {
	cfg  Config
	mu   sync.Mutex
	recs map[int]*Recorder
	next int
}

// NewSink creates a sink whose recorders carry the facilities cfg enables.
func NewSink(cfg Config) *Sink {
	return &Sink{cfg: cfg, recs: map[int]*Recorder{}}
}

// Reserve claims n consecutive recorder indices and returns the first.
func (s *Sink) Reserve(n int) int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	base := s.next
	s.next += n
	return base
}

// Recorder returns the recorder registered at idx, creating it on first
// use. Each index must be used by at most one goroutine at a time; distinct
// indices are safe concurrently.
func (s *Sink) Recorder(idx int) *Recorder {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	r := s.recs[idx]
	if r == nil {
		r = New(s.cfg)
		s.recs[idx] = r
	}
	return r
}

// Merged folds every registered recorder, in ascending index order, into a
// fresh Recorder. Call it only after all workers have finished.
func (s *Sink) Merged() *Recorder {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := New(s.cfg)
	idxs := make([]int, 0, len(s.recs))
	for i := range s.recs {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	for _, i := range idxs {
		out.Merge(s.recs[i])
	}
	return out
}
