// Package obs is the simulator's observability layer: a metrics registry
// (counters, gauges, fixed-bucket histograms keyed by subsystem, name and
// labels) and sim-time span tracing exportable as Chrome trace-event JSON
// (loadable in Perfetto or chrome://tracing).
//
// The layer is built to cost nothing when disabled. Instrumented code holds
// typed handles (*Counter, *Gauge, *Histogram) resolved once at setup; every
// method is safe on a nil receiver, so with no recorder attached each hook
// compiles to a single predictable nil-check branch — no allocation, no map
// lookup, no time perturbation. A nil *Recorder likewise returns nil from
// every constructor, letting whole layers be wired unconditionally.
//
// Recorders are single-goroutine by design: each simulation run owns its
// own Recorder (the experiment runner hands one to every (sweep-point, run)
// job), and a Sink merges them afterwards in deterministic index order, so
// aggregated output is byte-identical at any parallelism level.
package obs

import (
	"encoding/json"
	"io"
	"sort"
)

// Config selects which facilities a Recorder carries.
type Config struct {
	// Metrics enables the counter/gauge/histogram registry.
	Metrics bool
	// Trace enables sim-time span collection for Chrome trace export.
	Trace bool
	// MaxTraceEvents caps the trace buffer; excess spans are counted as
	// dropped rather than silently discarded. Zero means DefaultMaxTraceEvents.
	MaxTraceEvents int
}

// DefaultMaxTraceEvents bounds a trace at ~1M spans (a few hundred MB of
// JSON) unless configured otherwise.
const DefaultMaxTraceEvents = 1 << 20

// Recorder collects metrics and trace spans for one simulation run. The nil
// Recorder is valid and records nothing.
type Recorder struct {
	reg   *Registry
	trace *Trace
}

// New creates a Recorder with the facilities cfg enables. A config enabling
// nothing still returns a non-nil (but inert) Recorder.
func New(cfg Config) *Recorder {
	r := &Recorder{}
	if cfg.Metrics {
		r.reg = newRegistry()
	}
	if cfg.Trace {
		max := cfg.MaxTraceEvents
		if max <= 0 {
			max = DefaultMaxTraceEvents
		}
		r.trace = &Trace{max: max}
	}
	return r
}

// Key identifies one metric series.
type Key struct {
	Subsystem string
	Name      string
	// Labels is a pre-rendered "k=v,k=v" string (possibly empty); keeping it
	// flat makes the key comparable and the hot path allocation-free.
	Labels string
}

func keyLess(a, b Key) bool {
	if a.Subsystem != b.Subsystem {
		return a.Subsystem < b.Subsystem
	}
	if a.Name != b.Name {
		return a.Name < b.Name
	}
	return a.Labels < b.Labels
}

// Counter accumulates a monotonic count. Methods are nil-safe.
type Counter struct{ v uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds d.
func (c *Counter) Add(d uint64) {
	if c != nil {
		c.v += d
	}
}

// Value returns the accumulated count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge tracks a current value and its high-water mark. Methods are
// nil-safe.
type Gauge struct{ v, max int64 }

// Set records the current value, updating the high-water mark.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v = v
	if v > g.max {
		g.max = v
	}
}

// Add shifts the current value by d.
func (g *Gauge) Add(d int64) {
	if g != nil {
		g.Set(g.v + d)
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Max returns the high-water mark (0 on nil).
func (g *Gauge) Max() int64 {
	if g == nil {
		return 0
	}
	return g.max
}

// Histogram counts observations into fixed buckets with inclusive upper
// bounds (Prometheus "le" semantics); values above the last bound land in an
// overflow bucket. Methods are nil-safe.
type Histogram struct {
	bounds   []float64 // ascending upper bounds; counts[i] holds v <= bounds[i]
	counts   []uint64  // len(bounds)+1; the last entry is the overflow bucket
	sum      float64
	n        uint64
	min, max float64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i]++
	h.sum += v
	if h.n == 0 || v < h.min {
		h.min = v
	}
	if h.n == 0 || v > h.max {
		h.max = v
	}
	h.n++
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.n
}

// Sum returns the sum of observed values (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Mean returns the average observed value, or 0 with no observations.
func (h *Histogram) Mean() float64 {
	if h == nil || h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// BucketCount returns the count of bucket i, where i == len(bounds) is the
// overflow bucket.
func (h *Histogram) BucketCount(i int) uint64 {
	if h == nil {
		return 0
	}
	return h.counts[i]
}

// ExpBuckets returns n exponentially spaced bounds: start, start*factor, ...
func ExpBuckets(start, factor float64, n int) []float64 {
	b := make([]float64, n)
	v := start
	for i := range b {
		b[i] = v
		v *= factor
	}
	return b
}

// LinearBuckets returns n linearly spaced bounds: start, start+step, ...
func LinearBuckets(start, step float64, n int) []float64 {
	b := make([]float64, n)
	for i := range b {
		b[i] = start + float64(i)*step
	}
	return b
}

// Registry holds one run's metric series.
type Registry struct {
	counters map[Key]*Counter
	gauges   map[Key]*Gauge
	hists    map[Key]*Histogram
}

func newRegistry() *Registry {
	return &Registry{
		counters: map[Key]*Counter{},
		gauges:   map[Key]*Gauge{},
		hists:    map[Key]*Histogram{},
	}
}

// Counter resolves (creating if absent) the counter for the key. Returns nil
// when the recorder is nil or metrics are disabled, so the handle can be used
// unconditionally.
func (r *Recorder) Counter(subsystem, name, labels string) *Counter {
	if r == nil || r.reg == nil {
		return nil
	}
	k := Key{subsystem, name, labels}
	c := r.reg.counters[k]
	if c == nil {
		c = &Counter{}
		r.reg.counters[k] = c
	}
	return c
}

// Gauge resolves (creating if absent) the gauge for the key; nil when
// metrics are disabled.
func (r *Recorder) Gauge(subsystem, name, labels string) *Gauge {
	if r == nil || r.reg == nil {
		return nil
	}
	k := Key{subsystem, name, labels}
	g := r.reg.gauges[k]
	if g == nil {
		g = &Gauge{}
		r.reg.gauges[k] = g
	}
	return g
}

// Histogram resolves (creating if absent) the histogram for the key; bounds
// apply only on first creation. Nil when metrics are disabled.
func (r *Recorder) Histogram(subsystem, name, labels string, bounds []float64) *Histogram {
	if r == nil || r.reg == nil {
		return nil
	}
	k := Key{subsystem, name, labels}
	h := r.reg.hists[k]
	if h == nil {
		h = &Histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
		r.reg.hists[k] = h
	}
	return h
}

// FindHistogram returns an existing histogram or nil; it never creates one.
func (r *Recorder) FindHistogram(subsystem, name, labels string) *Histogram {
	if r == nil || r.reg == nil {
		return nil
	}
	return r.reg.hists[Key{subsystem, name, labels}]
}

// FindCounter returns an existing counter or nil; it never creates one.
func (r *Recorder) FindCounter(subsystem, name, labels string) *Counter {
	if r == nil || r.reg == nil {
		return nil
	}
	return r.reg.counters[Key{subsystem, name, labels}]
}

// Merge folds other into r: counters and histogram buckets add, gauges keep
// the maximum of current values and of high-water marks. Merging in a fixed
// order (as Sink.Merged does) makes float sums deterministic.
func (r *Recorder) Merge(other *Recorder) {
	if r == nil || other == nil {
		return
	}
	if r.reg != nil && other.reg != nil {
		r.reg.merge(other.reg)
	}
	if r.trace != nil && other.trace != nil {
		r.trace.merge(other.trace)
	}
}

func (reg *Registry) merge(o *Registry) {
	for k, c := range o.counters {
		dst := reg.counters[k]
		if dst == nil {
			dst = &Counter{}
			reg.counters[k] = dst
		}
		dst.v += c.v
	}
	for k, g := range o.gauges {
		dst := reg.gauges[k]
		if dst == nil {
			dst = &Gauge{}
			reg.gauges[k] = dst
		}
		if g.v > dst.v {
			dst.v = g.v
		}
		if g.max > dst.max {
			dst.max = g.max
		}
	}
	for k, h := range o.hists {
		dst := reg.hists[k]
		if dst == nil {
			dst = &Histogram{bounds: append([]float64(nil), h.bounds...), counts: make([]uint64, len(h.counts))}
			reg.hists[k] = dst
		}
		for i, c := range h.counts {
			dst.counts[i] += c
		}
		if h.n > 0 {
			if dst.n == 0 || h.min < dst.min {
				dst.min = h.min
			}
			if dst.n == 0 || h.max > dst.max {
				dst.max = h.max
			}
		}
		dst.sum += h.sum
		dst.n += h.n
	}
}

// JSON snapshot types; keys sort by (subsystem, name, labels) so encoded
// output is deterministic.

type counterJSON struct {
	Subsystem string `json:"subsystem"`
	Name      string `json:"name"`
	Labels    string `json:"labels,omitempty"`
	Value     uint64 `json:"value"`
}

type gaugeJSON struct {
	Subsystem string `json:"subsystem"`
	Name      string `json:"name"`
	Labels    string `json:"labels,omitempty"`
	Value     int64  `json:"value"`
	Max       int64  `json:"max"`
}

type bucketJSON struct {
	LE    float64 `json:"le"`
	Count uint64  `json:"count"`
}

type histJSON struct {
	Subsystem string       `json:"subsystem"`
	Name      string       `json:"name"`
	Labels    string       `json:"labels,omitempty"`
	Count     uint64       `json:"count"`
	Sum       float64      `json:"sum"`
	Min       float64      `json:"min"`
	Max       float64      `json:"max"`
	Buckets   []bucketJSON `json:"buckets"`
	Overflow  uint64       `json:"overflow"`
}

type metricsJSON struct {
	Counters   []counterJSON `json:"counters"`
	Gauges     []gaugeJSON   `json:"gauges"`
	Histograms []histJSON    `json:"histograms"`
}

// WriteMetricsJSON writes the registry snapshot as indented JSON with series
// sorted by key. A recorder without metrics writes an empty snapshot.
func (r *Recorder) WriteMetricsJSON(w io.Writer) error {
	out := metricsJSON{
		Counters:   []counterJSON{},
		Gauges:     []gaugeJSON{},
		Histograms: []histJSON{},
	}
	if r != nil && r.reg != nil {
		reg := r.reg
		for _, k := range sortedKeys(len(reg.counters), func(add func(Key)) {
			for k := range reg.counters {
				add(k)
			}
		}) {
			out.Counters = append(out.Counters, counterJSON{k.Subsystem, k.Name, k.Labels, reg.counters[k].v})
		}
		for _, k := range sortedKeys(len(reg.gauges), func(add func(Key)) {
			for k := range reg.gauges {
				add(k)
			}
		}) {
			g := reg.gauges[k]
			out.Gauges = append(out.Gauges, gaugeJSON{k.Subsystem, k.Name, k.Labels, g.v, g.max})
		}
		for _, k := range sortedKeys(len(reg.hists), func(add func(Key)) {
			for k := range reg.hists {
				add(k)
			}
		}) {
			h := reg.hists[k]
			hj := histJSON{
				Subsystem: k.Subsystem, Name: k.Name, Labels: k.Labels,
				Count: h.n, Sum: h.sum, Min: h.min, Max: h.max,
				Buckets:  make([]bucketJSON, len(h.bounds)),
				Overflow: h.counts[len(h.bounds)],
			}
			for i, b := range h.bounds {
				hj.Buckets[i] = bucketJSON{LE: b, Count: h.counts[i]}
			}
			out.Histograms = append(out.Histograms, hj)
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

func sortedKeys(n int, visit func(add func(Key))) []Key {
	keys := make([]Key, 0, n)
	visit(func(k Key) { keys = append(keys, k) })
	sort.Slice(keys, func(i, j int) bool { return keyLess(keys[i], keys[j]) })
	return keys
}
