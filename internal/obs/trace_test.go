package obs

import (
	"bytes"
	"encoding/json"
	"strconv"
	"testing"
)

// TestTraceJSONGolden pins the Chrome trace-event output byte-for-byte for a
// small fixed trace: metadata naming events first, then complete ("X") spans,
// with ts/dur in sim cycles.
func TestTraceJSONGolden(t *testing.T) {
	rec := New(Config{Trace: true})
	rec.NamePid(0, "qsmlib")
	rec.NameTid(0, 1, "node1")
	rec.Span(0, 1, "qsmlib", "sync 0", 100, 250, Arg{Key: "phase", Val: 0}, Arg{Key: "put_words", Val: 8})
	rec.Span(0, 1, "qsmlib", "compute", 250, 300)

	var buf bytes.Buffer
	if err := rec.WriteTraceJSON(&buf); err != nil {
		t.Fatal(err)
	}
	want := `{
  "displayTimeUnit": "ns",
  "otherData": {"clockDomain": "sim-cycles", "droppedEvents": 0},
  "traceEvents": [
    {"ph":"M","pid":0,"tid":0,"name":"process_name","args":{"name":"qsmlib"}},
    {"ph":"M","pid":0,"tid":1,"name":"thread_name","args":{"name":"node1"}},
    {"ph":"X","pid":0,"tid":1,"ts":100,"dur":150,"cat":"qsmlib","name":"sync 0","args":{"phase":0,"put_words":8}},
    {"ph":"X","pid":0,"tid":1,"ts":250,"dur":50,"cat":"qsmlib","name":"compute"}
  ]
}
`
	if buf.String() != want {
		t.Errorf("trace JSON diverges from golden output.\ngot:\n%s\nwant:\n%s", buf.String(), want)
	}
}

// chromeTrace mirrors the fields Perfetto's importer reads.
type chromeTrace struct {
	DisplayTimeUnit string `json:"displayTimeUnit"`
	OtherData       struct {
		ClockDomain   string `json:"clockDomain"`
		DroppedEvents uint64 `json:"droppedEvents"`
	} `json:"otherData"`
	TraceEvents []struct {
		Ph   string                     `json:"ph"`
		Pid  int                        `json:"pid"`
		Tid  int                        `json:"tid"`
		Ts   uint64                     `json:"ts"`
		Dur  uint64                     `json:"dur"`
		Cat  string                     `json:"cat"`
		Name string                     `json:"name"`
		Args map[string]json.RawMessage `json:"args"`
	} `json:"traceEvents"`
}

// TestTraceJSONSchema checks the hand-written encoder emits JSON that a
// standard parser accepts, with the fields the trace viewers require.
func TestTraceJSONSchema(t *testing.T) {
	rec := New(Config{Trace: true})
	rec.NamePid(2, `bank "quoted"`) // exercise string escaping
	for i := 0; i < 5; i++ {
		rec.Span(2, i, "bank", "access", uint64(i*10), uint64(i*10+7), Arg{Key: "depth", Val: int64(i)})
	}

	var buf bytes.Buffer
	if err := rec.WriteTraceJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var tr chromeTrace
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatalf("trace output is not valid JSON: %v\n%s", err, buf.String())
	}
	if tr.OtherData.ClockDomain != "sim-cycles" {
		t.Errorf("clockDomain = %q", tr.OtherData.ClockDomain)
	}
	if len(tr.TraceEvents) != 6 {
		t.Fatalf("got %d events, want 6 (1 metadata + 5 spans)", len(tr.TraceEvents))
	}
	meta := tr.TraceEvents[0]
	if meta.Ph != "M" || meta.Name != "process_name" || string(meta.Args["name"]) != `"bank \"quoted\""` {
		t.Errorf("metadata event wrong: %+v", meta)
	}
	for i, ev := range tr.TraceEvents[1:] {
		if ev.Ph != "X" || ev.Pid != 2 || ev.Tid != i || ev.Ts != uint64(i*10) || ev.Dur != 7 {
			t.Errorf("span %d wrong: %+v", i, ev)
		}
		if string(ev.Args["depth"]) != strconv.Itoa(i) {
			t.Errorf("span %d args = %v", i, ev.Args)
		}
	}

	// Empty trace (and metrics-only recorder) must still be valid JSON.
	var empty bytes.Buffer
	if err := New(Config{Metrics: true}).WriteTraceJSON(&empty); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(empty.Bytes(), &tr); err != nil {
		t.Fatalf("empty trace is not valid JSON: %v\n%s", err, empty.String())
	}
}

// TestTraceMergePidShift checks merged recorders keep separate process
// groups: the child's pids are shifted past the parent's.
func TestTraceMergePidShift(t *testing.T) {
	a := New(Config{Trace: true})
	a.NamePid(0, "run0")
	a.Span(0, 0, "c", "s", 0, 1)
	b := New(Config{Trace: true})
	b.NamePid(0, "run1")
	b.Span(0, 3, "c", "s", 5, 9)

	a.Merge(b)
	if a.Spans() != 2 {
		t.Fatalf("merged span count = %d, want 2", a.Spans())
	}
	if got := a.trace.events[1]; got.Pid != 1 || got.Tid != 3 {
		t.Errorf("merged span pid/tid = %d/%d, want 1/3", got.Pid, got.Tid)
	}
	if got := a.trace.names[1]; got.pid != 1 || got.name != "run1" {
		t.Errorf("merged name event = %+v, want pid 1 run1", got)
	}

	// A third merge must land past the second's pids too.
	c := New(Config{Trace: true})
	c.Span(0, 0, "c", "s", 0, 1)
	a.Merge(c)
	if got := a.trace.events[2].Pid; got != 2 {
		t.Errorf("third recorder's span pid = %d, want 2", got)
	}
}

// TestTraceCap checks the buffer cap counts drops instead of growing or
// discarding silently.
func TestTraceCap(t *testing.T) {
	rec := New(Config{Trace: true, MaxTraceEvents: 3})
	for i := 0; i < 10; i++ {
		rec.Span(0, 0, "c", "s", uint64(i), uint64(i+1))
	}
	if rec.Spans() != 3 || rec.DroppedSpans() != 7 {
		t.Fatalf("spans/dropped = %d/%d, want 3/7", rec.Spans(), rec.DroppedSpans())
	}
	var buf bytes.Buffer
	if err := rec.WriteTraceJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var tr chromeTrace
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatal(err)
	}
	if tr.OtherData.DroppedEvents != 7 {
		t.Errorf("droppedEvents = %d, want 7", tr.OtherData.DroppedEvents)
	}
}
