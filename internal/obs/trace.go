package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
)

// Arg is one key/value annotation on a span.
type Arg struct {
	Key string
	Val int64
}

// TraceEvent is one complete sim-time span. Start and End are in cycles;
// the exporter writes cycles directly into the Chrome "ts"/"dur" fields
// (nominally microseconds), so one timeline tick reads as one cycle.
type TraceEvent struct {
	Name       string
	Cat        string
	Pid, Tid   int
	Start, End uint64
	Args       []Arg
}

type nameEvent struct {
	pid, tid int
	thread   bool // false names the process, true names the thread
	name     string
}

// Trace buffers span and naming events for Chrome trace-event export. The
// buffer is bounded; spans past the cap are counted in Dropped instead of
// silently vanishing.
type Trace struct {
	max     int
	events  []TraceEvent
	names   []nameEvent
	dropped uint64
	nextPid int // 1 + highest pid seen, for merge remapping
}

// Tracing reports whether the recorder collects spans; use it to skip
// span-argument construction when off.
func (r *Recorder) Tracing() bool { return r != nil && r.trace != nil }

// Span records a completed [start, end) interval on (pid, tid).
func (r *Recorder) Span(pid, tid int, cat, name string, start, end uint64, args ...Arg) {
	if r == nil || r.trace == nil {
		return
	}
	r.trace.add(TraceEvent{Name: name, Cat: cat, Pid: pid, Tid: tid, Start: start, End: end, Args: args})
}

// NamePid labels a trace process (a Perfetto process track).
func (r *Recorder) NamePid(pid int, name string) {
	if r == nil || r.trace == nil {
		return
	}
	r.trace.names = append(r.trace.names, nameEvent{pid: pid, name: name})
	r.trace.notePid(pid)
}

// NameTid labels a trace thread within a process.
func (r *Recorder) NameTid(pid, tid int, name string) {
	if r == nil || r.trace == nil {
		return
	}
	r.trace.names = append(r.trace.names, nameEvent{pid: pid, tid: tid, thread: true, name: name})
	r.trace.notePid(pid)
}

// Spans returns the number of buffered span events.
func (r *Recorder) Spans() int {
	if r == nil || r.trace == nil {
		return 0
	}
	return len(r.trace.events)
}

// DroppedSpans returns how many spans were discarded at the buffer cap.
func (r *Recorder) DroppedSpans() uint64 {
	if r == nil || r.trace == nil {
		return 0
	}
	return r.trace.dropped
}

func (t *Trace) add(ev TraceEvent) {
	if len(t.events) >= t.max {
		t.dropped++
		return
	}
	t.events = append(t.events, ev)
	t.notePid(ev.Pid)
}

func (t *Trace) notePid(pid int) {
	if pid+1 > t.nextPid {
		t.nextPid = pid + 1
	}
}

// merge appends o's events with pids shifted past t's, so each merged
// recorder appears as its own process group in the viewer.
func (t *Trace) merge(o *Trace) {
	base := t.nextPid
	for _, nm := range o.names {
		nm.pid += base
		t.names = append(t.names, nm)
	}
	for _, ev := range o.events {
		ev.Pid += base
		t.add(ev)
	}
	t.dropped += o.dropped
	if base+o.nextPid > t.nextPid {
		t.nextPid = base + o.nextPid
	}
}

// WriteTraceJSON writes the buffered spans in Chrome trace-event JSON
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU):
// an object with a "traceEvents" array of metadata ("ph":"M") naming events
// followed by complete ("ph":"X") spans. Load the file in Perfetto or
// chrome://tracing. A recorder without tracing writes an empty trace.
func (r *Recorder) WriteTraceJSON(w io.Writer) error {
	bw := bufio.NewWriter(w)
	dropped := uint64(0)
	if r != nil && r.trace != nil {
		dropped = r.trace.dropped
	}
	fmt.Fprintf(bw, "{\n  \"displayTimeUnit\": \"ns\",\n  \"otherData\": {\"clockDomain\": \"sim-cycles\", \"droppedEvents\": %d},\n  \"traceEvents\": [", dropped)
	first := true
	emit := func(line string) {
		if !first {
			bw.WriteString(",")
		}
		first = false
		bw.WriteString("\n    ")
		bw.WriteString(line)
	}
	if r != nil && r.trace != nil {
		r.trace.emitTo(emit, 0)
	}
	bw.WriteString("\n  ]\n}\n")
	return bw.Flush()
}

// emitTo renders the trace's naming and span events as Chrome trace-event
// JSON lines with process ids shifted by pidBase, feeding each line to emit.
// WriteTraceJSON uses it with base 0; WriteMergedTrace offsets the sim-time
// rows past the wall-clock process row.
func (t *Trace) emitTo(emit func(string), pidBase int) {
	for _, nm := range t.names {
		kind := "process_name"
		if nm.thread {
			kind = "thread_name"
		}
		emit(fmt.Sprintf(`{"ph":"M","pid":%d,"tid":%d,"name":%q,"args":{"name":%s}}`,
			nm.pid+pidBase, nm.tid, kind, strconv.Quote(nm.name)))
	}
	for _, ev := range t.events {
		line := fmt.Sprintf(`{"ph":"X","pid":%d,"tid":%d,"ts":%d,"dur":%d,"cat":%s,"name":%s`,
			ev.Pid+pidBase, ev.Tid, ev.Start, ev.End-ev.Start, strconv.Quote(ev.Cat), strconv.Quote(ev.Name))
		if len(ev.Args) > 0 {
			line += `,"args":{`
			for i, a := range ev.Args {
				if i > 0 {
					line += ","
				}
				line += strconv.Quote(a.Key) + ":" + strconv.FormatInt(a.Val, 10)
			}
			line += "}"
		}
		emit(line + "}")
	}
}
