package obs

import (
	"bufio"
	"io"
	"strconv"
	"strings"
)

// WritePrometheusText dumps the registry in the Prometheus text exposition
// format (version 0.0.4), the format /metricsz serves. Series render as
// qsm_<subsystem>_<name> with the flat "k=v,k=v" label string expanded to
// {k="v",...}: counters gain the conventional _total suffix, gauges emit
// their current value plus a _max family for the high-water mark, and
// histograms emit cumulative _bucket series (with a closing +Inf bound)
// alongside _sum and _count. Output is sorted by key, so scrapes of equal
// registries are byte-identical. A nil or metrics-less recorder writes
// nothing.
func (r *Recorder) WritePrometheusText(w io.Writer) error {
	if r == nil || r.reg == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	reg := r.reg

	counterKeys := sortedKeys(len(reg.counters), func(add func(Key)) {
		for k := range reg.counters {
			add(k)
		}
	})
	eachFamily(counterKeys, func(fam []Key) {
		name := promName(fam[0], "_total")
		promType(bw, name, "counter")
		for _, k := range fam {
			promLine(bw, name, promLabels(k.Labels), strconv.FormatUint(reg.counters[k].v, 10))
		}
	})

	gaugeKeys := sortedKeys(len(reg.gauges), func(add func(Key)) {
		for k := range reg.gauges {
			add(k)
		}
	})
	eachFamily(gaugeKeys, func(fam []Key) {
		name := promName(fam[0], "")
		promType(bw, name, "gauge")
		for _, k := range fam {
			promLine(bw, name, promLabels(k.Labels), strconv.FormatInt(reg.gauges[k].v, 10))
		}
		promType(bw, name+"_max", "gauge")
		for _, k := range fam {
			promLine(bw, name+"_max", promLabels(k.Labels), strconv.FormatInt(reg.gauges[k].max, 10))
		}
	})

	histKeys := sortedKeys(len(reg.hists), func(add func(Key)) {
		for k := range reg.hists {
			add(k)
		}
	})
	eachFamily(histKeys, func(fam []Key) {
		name := promName(fam[0], "")
		promType(bw, name, "histogram")
		for _, k := range fam {
			h := reg.hists[k]
			var cum uint64
			for i, b := range h.bounds {
				cum += h.counts[i]
				promLine(bw, name+"_bucket", promLabels(k.Labels, "le", formatFloat(b)), strconv.FormatUint(cum, 10))
			}
			promLine(bw, name+"_bucket", promLabels(k.Labels, "le", "+Inf"), strconv.FormatUint(h.n, 10))
			promLine(bw, name+"_sum", promLabels(k.Labels), formatFloat(h.sum))
			promLine(bw, name+"_count", promLabels(k.Labels), strconv.FormatUint(h.n, 10))
		}
	})
	return bw.Flush()
}

// eachFamily calls fn once per run of keys sharing (subsystem, name). keys
// must already be sorted, as sortedKeys returns them.
func eachFamily(keys []Key, fn func(fam []Key)) {
	for i := 0; i < len(keys); {
		j := i
		for j < len(keys) && keys[j].Subsystem == keys[i].Subsystem && keys[j].Name == keys[i].Name {
			j++
		}
		fn(keys[i:j])
		i = j
	}
}

func promType(w io.Writer, name, typ string) {
	io.WriteString(w, "# TYPE "+name+" "+typ+"\n")
}

func promLine(w io.Writer, name, labels, value string) {
	io.WriteString(w, name+labels+" "+value+"\n")
}

// promName renders a series key as a Prometheus metric name with the given
// suffix, sanitising characters the format forbids.
func promName(k Key, suffix string) string {
	return "qsm_" + sanitizeName(k.Subsystem) + "_" + sanitizeName(k.Name) + suffix
}

func sanitizeName(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_':
			b.WriteByte(c)
		case c >= '0' && c <= '9' && i > 0:
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promLabels expands the registry's flat "k=v,k=v" label string (plus an
// optional extra pair, used for histogram le bounds) into {k="v",...};
// empty labels render as nothing.
func promLabels(flat string, extra ...string) string {
	var pairs []string
	if flat != "" {
		for _, kv := range strings.Split(flat, ",") {
			k, v, _ := strings.Cut(kv, "=")
			pairs = append(pairs, sanitizeName(k)+`="`+escapeLabel(v)+`"`)
		}
	}
	for i := 0; i+1 < len(extra); i += 2 {
		pairs = append(pairs, sanitizeName(extra[i])+`="`+escapeLabel(extra[i+1])+`"`)
	}
	if len(pairs) == 0 {
		return ""
	}
	return "{" + strings.Join(pairs, ",") + "}"
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
