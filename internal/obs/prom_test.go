package obs

import (
	"strings"
	"testing"
)

func TestWritePrometheusText(t *testing.T) {
	r := New(Config{Metrics: true})
	r.Counter("service", "jobs_submitted", "").Add(3)
	r.Counter("membank", "accesses", "bank=1").Add(5)
	r.Counter("membank", "accesses", "bank=2").Add(7)
	g := r.Gauge("service", "queue_depth", "")
	g.Set(2)
	g.Set(1)
	h := r.Histogram("service", "latency", "", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(2)
	h.Observe(64)

	var b strings.Builder
	if err := r.WritePrometheusText(&b); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE qsm_membank_accesses_total counter
qsm_membank_accesses_total{bank="1"} 5
qsm_membank_accesses_total{bank="2"} 7
# TYPE qsm_service_jobs_submitted_total counter
qsm_service_jobs_submitted_total 3
# TYPE qsm_service_queue_depth gauge
qsm_service_queue_depth 1
# TYPE qsm_service_queue_depth_max gauge
qsm_service_queue_depth_max 2
# TYPE qsm_service_latency histogram
qsm_service_latency_bucket{le="1"} 1
qsm_service_latency_bucket{le="10"} 2
qsm_service_latency_bucket{le="+Inf"} 3
qsm_service_latency_sum 66.5
qsm_service_latency_count 3
`
	if got := b.String(); got != want {
		t.Errorf("Prometheus dump mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestWritePrometheusTextNilSafe(t *testing.T) {
	var nilRec *Recorder
	var b strings.Builder
	if err := nilRec.WritePrometheusText(&b); err != nil || b.Len() != 0 {
		t.Errorf("nil recorder wrote %q, err %v", b.String(), err)
	}
	off := New(Config{})
	if err := off.WritePrometheusText(&b); err != nil || b.Len() != 0 {
		t.Errorf("metrics-less recorder wrote %q, err %v", b.String(), err)
	}
}

func TestPromSanitise(t *testing.T) {
	r := New(Config{Metrics: true})
	r.Counter("sim-core", "events/sec", `kind=a"b`).Inc()
	var b strings.Builder
	if err := r.WritePrometheusText(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	for _, want := range []string{
		"qsm_sim_core_events_sec_total",
		`kind="a\"b"`,
	} {
		if !strings.Contains(got, want) {
			t.Errorf("dump missing %q:\n%s", want, got)
		}
	}
}
