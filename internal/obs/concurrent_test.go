package obs

import (
	"strings"
	"sync"
	"testing"
)

// TestRegistryConcurrentUse is the -race proof for the metrics path's
// concurrency discipline: parallel workers claim Sink indices and hammer
// their own counters, gauges, and histograms concurrently (with handle reuse
// inside each worker), then the merged aggregate must balance exactly.
func TestRegistryConcurrentUse(t *testing.T) {
	sink := NewSink(Config{Metrics: true})
	const workers, each = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			idx := sink.Reserve(1)
			r := sink.Recorder(idx)
			c := r.Counter("engine", "events", "")
			g := r.Gauge("engine", "depth", "")
			h := r.Histogram("engine", "latency", "", []float64{10, 100})
			for i := 0; i < each; i++ {
				c.Inc()
				r.Counter("engine", "events", "kind=labelled").Add(2)
				g.Set(int64(i % 7))
				h.Observe(float64(i))
				// Cross-worker interleaving on the shared sink itself.
				if i%100 == 0 {
					_ = sink.Recorder(idx)
				}
			}
		}()
	}
	wg.Wait()

	m := sink.Merged()
	if got := m.Counter("engine", "events", "").Value(); got != workers*each {
		t.Errorf("merged plain counter = %d, want %d", got, workers*each)
	}
	if got := m.Counter("engine", "events", "kind=labelled").Value(); got != 2*workers*each {
		t.Errorf("merged labelled counter = %d, want %d", got, 2*workers*each)
	}
	var b strings.Builder
	if err := m.WritePrometheusText(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "qsm_engine_latency_count 4000") {
		t.Errorf("merged histogram count missing from exposition:\n%s", b.String())
	}
	lintPrometheusText(t, b.String())
}

// TestRegistryConcurrentMerges folds many live recorders into independent
// aggregates in parallel — the pattern a server takes when multiple scrapes
// race against job completion merges.
func TestRegistryConcurrentMerges(t *testing.T) {
	parts := make([]*Recorder, 16)
	for i := range parts {
		parts[i] = New(Config{Metrics: true})
		parts[i].Counter("s", "n", "").Add(uint64(i + 1))
		parts[i].Histogram("s", "h", "", []float64{1}).Observe(float64(i))
	}
	var wg sync.WaitGroup
	for m := 0; m < 8; m++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			agg := New(Config{Metrics: true})
			for _, p := range parts {
				agg.Merge(p)
			}
			if got := agg.Counter("s", "n", "").Value(); got != 136 { // 1+2+...+16
				t.Errorf("merged counter = %d, want 136", got)
			}
		}()
	}
	wg.Wait()
}
