// Package sched is the work-stealing scheduler under the experiment runner
// (and, by extension, every sweep the service executes). It replaces the
// fixed worker pool's shared claim counter with one Chase–Lev deque per
// worker: the owner pushes and pops jobs LIFO at the bottom of its deque,
// while idle workers steal FIFO from the top of a victim's deque, so skewed
// job costs (the large-n points that dominate the paper's Figure 4–7
// sweeps) no longer strand workers behind a shared dispatch order.
//
// Determinism is preserved by construction: a job is an index into a
// preallocated result slice, every index is claimed by exactly one worker,
// and callers aggregate results in index order afterwards — the schedule
// decides only *when* a job runs, never where its result lands. Tables and
// metrics are therefore byte-identical at any parallelism and under any
// steal interleaving.
//
// Cost-hinted seeding: when Options.Cost is set, jobs are dealt across the
// worker deques in descending estimated cost (and each deque is stacked so
// its owner pops its most expensive job first). This is longest-processing-
// time-first list scheduling — the biggest jobs start immediately instead
// of being discovered at the tail of a submission-ordered queue, which is
// where monotone sweeps put them.
package sched

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Panic carries a worker's panic value together with the goroutine stack
// captured at recover time — if a stolen job dies, the report names the
// thief's stack, not just the panic message. Map re-raises the first one
// after the pool drains; it implements error so an unrecovered re-raise
// prints the original value followed by the worker's stack.
type Panic struct {
	Val   any
	Stack []byte
}

func (p *Panic) Error() string {
	return fmt.Sprintf("%v\n\nworker stack:\n%s", p.Val, p.Stack)
}

// Stats counts one Map call's scheduler activity. The same three counters
// accumulate process-wide in Totals for the serving stack's metrics.
type Stats struct {
	// Steals is the number of jobs executed by a worker other than the one
	// they were seeded on.
	Steals uint64
	// Overflows counts deque ring growths (a worker's queue outgrew its
	// buffer; the ring doubles and the old buffer is abandoned to the GC).
	Overflows uint64
	// Parks counts idle backoff sleeps taken by workers that found neither
	// local work nor anything to steal while jobs were still in flight.
	Parks uint64
}

// Options tune one Map call.
type Options struct {
	// Cost estimates a job's relative execution cost. When non-nil, jobs are
	// seeded across the worker deques in descending estimated cost so the
	// most expensive jobs start first. Nil seeds in index order. Cost only
	// shapes the schedule; results are index-addressed either way.
	Cost func(i int) float64
	// Name labels the pool in the live-pool registry (LivePools) while the
	// call runs; /statusz and qsmtop show it. Empty hides nothing — the pool
	// is still registered under "".
	Name string
}

// minRingSize is the smallest deque ring; it must be a power of two.
const minRingSize = 8

// ring is one deque buffer generation. Slots are read by thieves while the
// owner writes neighbouring slots, so element access is atomic; the buffer
// itself is immutable once published (growth copies into a fresh ring).
type ring struct {
	mask int64
	slot []int64
}

func newRing(size int64) *ring {
	return &ring{mask: size - 1, slot: make([]int64, size)}
}

func (r *ring) load(i int64) int64     { return atomic.LoadInt64(&r.slot[i&r.mask]) }
func (r *ring) store(i int64, v int64) { atomic.StoreInt64(&r.slot[i&r.mask], v) }

// Deque is a Chase–Lev work-stealing deque of job indices. The owner calls
// Push and Pop (LIFO, bottom end); any number of concurrent thieves call
// Steal (FIFO, top end). Go's sequentially consistent atomics stand in for
// the acquire/release fences of the original formulation.
type Deque struct {
	top       atomic.Int64
	_         [56]byte // keep top and bottom on separate cache lines
	bottom    atomic.Int64
	_         [56]byte
	buf       atomic.Pointer[ring]
	overflows atomic.Uint64
}

// NewDeque sizes the initial ring to hold capacity jobs without growing.
func NewDeque(capacity int) *Deque {
	size := int64(minRingSize)
	for size < int64(capacity) {
		size *= 2
	}
	d := &Deque{}
	d.buf.Store(newRing(size))
	return d
}

// Push appends a job at the bottom (owner only).
func (d *Deque) Push(v int) {
	b := d.bottom.Load()
	t := d.top.Load()
	r := d.buf.Load()
	if b-t >= int64(len(r.slot)) {
		// Grow: copy the live window into a doubled ring. The old ring stays
		// valid for thieves holding it — growth never mutates old slots, and
		// every index they can claim was copied, so a stale read is still the
		// right value for the top it CASes.
		nr := newRing(int64(len(r.slot)) * 2)
		for i := t; i < b; i++ {
			nr.store(i, r.load(i))
		}
		d.buf.Store(nr)
		d.overflows.Add(1)
		r = nr
	}
	r.store(b, int64(v))
	d.bottom.Store(b + 1)
}

// Pop removes the most recently pushed job (owner only). The final element
// races with thieves and is resolved by a CAS on top.
func (d *Deque) Pop() (int, bool) {
	b := d.bottom.Load() - 1
	d.bottom.Store(b)
	t := d.top.Load()
	if t > b {
		// Empty: restore the canonical empty state.
		d.bottom.Store(t)
		return 0, false
	}
	v := d.buf.Load().load(b)
	if t == b {
		// Last element: win it from any concurrent thief or concede it.
		won := d.top.CompareAndSwap(t, t+1)
		d.bottom.Store(t + 1)
		if !won {
			return 0, false
		}
	}
	return int(v), true
}

// Steal removes the oldest job (any goroutine). retry reports a lost race
// with the owner or another thief — the deque may still have work.
func (d *Deque) Steal() (v int, ok, retry bool) {
	t := d.top.Load()
	b := d.bottom.Load()
	if t >= b {
		return 0, false, false
	}
	x := d.buf.Load().load(t)
	if !d.top.CompareAndSwap(t, t+1) {
		return 0, false, true
	}
	return int(x), true, false
}

// Len is a racy point-in-time depth, for introspection only.
func (d *Deque) Len() int {
	n := d.bottom.Load() - d.top.Load()
	if n < 0 {
		return 0
	}
	return int(n)
}

// Process-wide totals, accumulated by every Map call; the serving stack
// exports them (qsm_sched_* metrics, /statusz) the way sim.TotalEvents
// tracks simulated events.
var (
	totSteals    atomic.Uint64
	totOverflows atomic.Uint64
	totParks     atomic.Uint64
)

// Totals returns the process-wide scheduler counters.
func Totals() Stats {
	return Stats{
		Steals:    totSteals.Load(),
		Overflows: totOverflows.Load(),
		Parks:     totParks.Load(),
	}
}

// PoolInfo is a live snapshot of one running pool for introspection.
type PoolInfo struct {
	Name    string `json:"name"`
	Workers int    `json:"workers"`
	Jobs    int    `json:"jobs"`
	// Depths is each worker's current deque depth (racy snapshot).
	Depths []int `json:"depths"`
	// Claimed is how many of the pool's jobs have been claimed so far.
	Claimed int64  `json:"claimed"`
	Steals  uint64 `json:"steals"`
}

type pool struct {
	name    string
	n       int64
	deques  []*Deque
	claimed atomic.Int64
	steals  atomic.Uint64
	parks   atomic.Uint64
}

var (
	liveMu sync.Mutex
	live   = map[*pool]struct{}{}
)

func registerPool(p *pool) {
	liveMu.Lock()
	live[p] = struct{}{}
	liveMu.Unlock()
}

func unregisterPool(p *pool) {
	liveMu.Lock()
	delete(live, p)
	liveMu.Unlock()
}

// LivePools snapshots every pool currently inside a Map call, with racy
// per-worker deque depths — the feed behind qsmtop's scheduler pane.
func LivePools() []PoolInfo {
	liveMu.Lock()
	pools := make([]*pool, 0, len(live))
	for p := range live {
		pools = append(pools, p)
	}
	liveMu.Unlock()
	out := make([]PoolInfo, 0, len(pools))
	for _, p := range pools {
		info := PoolInfo{
			Name:    p.name,
			Workers: len(p.deques),
			Jobs:    int(p.n),
			Claimed: p.claimed.Load(),
			Steals:  p.steals.Load(),
		}
		for _, d := range p.deques {
			info.Depths = append(info.Depths, d.Len())
		}
		out = append(out, info)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Name < out[b].Name })
	return out
}

// seedOrder returns job indices in seeding order: descending estimated cost
// under a hint (ties broken by index, so the order is deterministic), index
// order otherwise.
func seedOrder(n int, cost func(i int) float64) []int {
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	if cost != nil {
		sort.SliceStable(order, func(a, b int) bool {
			return cost(order[a]) > cost(order[b])
		})
	}
	return order
}

// Map runs fn(i) for every i in [0, n) across par workers with work
// stealing and returns the call's scheduler stats. fn must be safe for
// concurrent calls on distinct indices; each index runs exactly once. A
// panic in any job is captured with the executing worker's stack and
// re-raised in the caller as *Panic after the pool drains — the same
// contract the fixed pool had, so failing simulations keep reporting where
// they died. par <= 1 (or n <= 1) runs serially in index order with no pool
// at all.
func Map(par, n int, fn func(i int), opt Options) Stats {
	if par > n {
		par = n
	}
	if par <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return Stats{}
	}

	p := &pool{name: opt.Name, n: int64(n), deques: make([]*Deque, par)}
	share := (n + par - 1) / par
	for w := range p.deques {
		p.deques[w] = NewDeque(share)
	}
	// Deal jobs round-robin in seeding order, then stack each worker's hand
	// so the owner pops its highest-cost job first: the deal assigns jobs
	// w, w+par, w+2par, ... (descending cost under a hint), and pushing that
	// hand in reverse puts the most expensive at the LIFO end.
	order := seedOrder(n, opt.Cost)
	for w := 0; w < par; w++ {
		for k := ((n - 1 - w) / par) * par; k >= 0; k -= par {
			p.deques[w].Push(order[k+w])
		}
	}

	registerPool(p)
	defer unregisterPool(p)

	var (
		wg       sync.WaitGroup
		panicked atomic.Pointer[Panic]
	)
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicked.CompareAndSwap(nil, &Panic{Val: r, Stack: debug.Stack()})
				}
			}()
			p.work(w, fn)
		}(w)
	}
	wg.Wait()

	st := Stats{Steals: p.steals.Load(), Parks: p.parks.Load()}
	for _, d := range p.deques {
		st.Overflows += d.overflows.Load()
	}
	totSteals.Add(st.Steals)
	totOverflows.Add(st.Overflows)
	totParks.Add(st.Parks)
	if r := panicked.Load(); r != nil {
		panic(r)
	}
	return st
}

// work is one worker's loop: drain the local deque LIFO, then sweep the
// other deques as a thief, then — with jobs still unclaimed somewhere in
// flight — back off and retry. The claimed counter is the termination
// barrier: every job is claimed exactly once (Pop and Steal both linearize
// on the deque), so claimed == n means no work will ever appear again and
// the worker may exit.
func (p *pool) work(w int, fn func(int)) {
	own := p.deques[w]
	par := len(p.deques)
	idle := 0
	for {
		if v, ok := own.Pop(); ok {
			idle = 0
			p.claimed.Add(1)
			fn(v)
			continue
		}
		stole := false
		for k := 1; k < par && !stole; k++ {
			victim := p.deques[(w+k)%par]
			for {
				v, ok, retry := victim.Steal()
				if ok {
					p.claimed.Add(1)
					p.steals.Add(1)
					fn(v)
					stole = true
					break
				}
				if !retry {
					break
				}
			}
		}
		if stole {
			idle = 0
			continue
		}
		if p.claimed.Load() >= p.n {
			return
		}
		// Nothing local, nothing stealable, but claimed jobs are still
		// running (their owners might push follow-up work in a future
		// extension, and a racing Pop/Steal may briefly hide the last job).
		// Back off: a few yields first, then counted parks.
		idle++
		if idle <= 3 {
			// Cheap yield: let the goroutines holding jobs run.
			runtime.Gosched()
		} else {
			p.parks.Add(1)
			time.Sleep(time.Duration(min(idle, 16)) * 20 * time.Microsecond)
		}
	}
}
