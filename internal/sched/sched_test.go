package sched

import (
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// TestDequeLIFOOwner checks the owner end: Pop returns the most recent Push.
func TestDequeLIFOOwner(t *testing.T) {
	d := NewDeque(4)
	for i := 0; i < 10; i++ {
		d.Push(i)
	}
	for i := 9; i >= 0; i-- {
		v, ok := d.Pop()
		if !ok || v != i {
			t.Fatalf("Pop = %d,%v; want %d,true", v, ok, i)
		}
	}
	if _, ok := d.Pop(); ok {
		t.Fatal("Pop on empty deque returned ok")
	}
}

// TestDequeFIFOThief checks the thief end: Steal returns the oldest Push.
func TestDequeFIFOThief(t *testing.T) {
	d := NewDeque(4)
	for i := 0; i < 10; i++ {
		d.Push(i)
	}
	for i := 0; i < 10; i++ {
		v, ok, retry := d.Steal()
		if !ok || retry || v != i {
			t.Fatalf("Steal = %d,%v,%v; want %d,true,false", v, ok, retry, i)
		}
	}
	if _, ok, _ := d.Steal(); ok {
		t.Fatal("Steal on empty deque returned ok")
	}
}

// TestDequeGrowth pushes far past the initial ring and checks overflow
// counting plus element integrity across growth.
func TestDequeGrowth(t *testing.T) {
	d := NewDeque(1) // minRingSize ring
	const n = 1000
	for i := 0; i < n; i++ {
		d.Push(i)
	}
	if d.overflows.Load() == 0 {
		t.Fatal("expected ring growth overflows")
	}
	if d.Len() != n {
		t.Fatalf("Len = %d; want %d", d.Len(), n)
	}
	for i := n - 1; i >= 0; i-- {
		v, ok := d.Pop()
		if !ok || v != i {
			t.Fatalf("after growth: Pop = %d,%v; want %d,true", v, ok, i)
		}
	}
}

// TestDequeStealStorm hammers one owner (push/pop) with many concurrent
// thieves under -race: every value must be claimed exactly once, none lost.
func TestDequeStealStorm(t *testing.T) {
	const (
		n       = 20000
		thieves = 8
	)
	d := NewDeque(8)
	seen := make([]atomic.Int32, n)
	claim := func(v int) {
		if seen[v].Add(1) != 1 {
			t.Errorf("value %d claimed more than once", v)
		}
	}

	var claimed atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < thieves; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for claimed.Load() < n {
				v, ok, retry := d.Steal()
				if ok {
					claim(v)
					claimed.Add(1)
				} else if !retry {
					runtime.Gosched()
				}
			}
		}()
	}

	// Owner interleaves pushes with occasional pops.
	for i := 0; i < n; i++ {
		d.Push(i)
		if i%3 == 0 {
			if v, ok := d.Pop(); ok {
				claim(v)
				claimed.Add(1)
			}
		}
	}
	for claimed.Load() < n {
		if v, ok := d.Pop(); ok {
			claim(v)
			claimed.Add(1)
		} else {
			runtime.Gosched()
		}
	}
	wg.Wait()

	for i := range seen {
		if got := seen[i].Load(); got != 1 {
			t.Fatalf("value %d claimed %d times", i, got)
		}
	}
}

// TestMapRunsEachIndexOnce checks Map's exactly-once contract across
// parallelism levels, including par > n and n = 0.
func TestMapRunsEachIndexOnce(t *testing.T) {
	for _, par := range []int{0, 1, 2, 4, 16} {
		for _, n := range []int{0, 1, 7, 64, 500} {
			seen := make([]atomic.Int32, n)
			Map(par, n, func(i int) { seen[i].Add(1) }, Options{})
			for i := range seen {
				if got := seen[i].Load(); got != 1 {
					t.Fatalf("par=%d n=%d: index %d ran %d times", par, n, i, got)
				}
			}
		}
	}
}

// TestMapCostSeeding verifies cost-hinted seeding starts the most expensive
// job immediately: with par=2 the two highest-cost jobs are the first two
// claimed (they sit at the LIFO end of each worker's deque).
func TestMapCostSeeding(t *testing.T) {
	n := 16
	cost := func(i int) float64 { return float64(i) } // job n-1 most expensive
	var mu sync.Mutex
	var order []int
	Map(2, n, func(i int) {
		mu.Lock()
		order = append(order, i)
		mu.Unlock()
	}, Options{Cost: cost})
	if len(order) != n {
		t.Fatalf("ran %d jobs; want %d", len(order), n)
	}
	// Each worker's first action is a Pop of its own deque bottom, which
	// cost seeding makes that worker's most expensive job — so whichever
	// worker claims first, the first job overall is one of the global top
	// two (15 on worker 0, 14 on worker 1). This holds at any GOMAXPROCS.
	if order[0] != n-1 && order[0] != n-2 {
		t.Fatalf("first claimed job %d is not a deque-bottom giant; order=%v",
			order[0], order)
	}
}

// TestSeedOrder pins the deterministic seeding order: descending cost with
// index ties stable, or plain index order without a hint.
func TestSeedOrder(t *testing.T) {
	got := seedOrder(5, func(i int) float64 { return float64(i % 3) })
	// costs: 0,1,2,0,1 → descending with stable ties: 2, 1, 4, 0, 3
	want := []int{2, 1, 4, 0, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("seedOrder = %v; want %v", got, want)
		}
	}
	got = seedOrder(4, nil)
	for i := range got {
		if got[i] != i {
			t.Fatalf("seedOrder(nil) = %v; want identity", got)
		}
	}
}

// TestMapSerialFallbackOrder checks par<=1 runs strictly in index order
// even with a cost hint (determinism of the serial path).
func TestMapSerialFallbackOrder(t *testing.T) {
	var order []int
	Map(1, 8, func(i int) { order = append(order, i) }, Options{
		Cost: func(i int) float64 { return float64(-i) },
	})
	for i, v := range order {
		if v != i {
			t.Fatalf("serial order[%d] = %d; want %d", i, v, i)
		}
	}
}

// TestMapPanicCarriesWorkerStack checks a job panic is re-raised in the
// caller as *Panic with the executing worker's stack — including when the
// panicking job was stolen.
func TestMapPanicCarriesWorkerStack(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Map did not re-panic")
		}
		p, ok := r.(*Panic)
		if !ok {
			t.Fatalf("recovered %T; want *Panic", r)
		}
		if p.Val != "boom-42" {
			t.Fatalf("Panic.Val = %v; want boom-42", p.Val)
		}
		if !strings.Contains(string(p.Stack), "sched_test.go") {
			t.Fatalf("Panic.Stack does not reference the panicking job:\n%s", p.Stack)
		}
		if msg := p.Error(); !strings.Contains(msg, "boom-42") || !strings.Contains(msg, "worker stack:") {
			t.Fatalf("Panic.Error() = %q; want value and worker stack", msg)
		}
	}()
	Map(4, 64, func(i int) {
		if i == 42 {
			panic("boom-42")
		}
	}, Options{})
}

// TestMapStatsAndTotals runs a skewed load and checks per-call stats and
// the process totals both move.
func TestMapStatsAndTotals(t *testing.T) {
	before := Totals()
	var spin atomic.Int64
	st := Map(4, 64, func(i int) {
		// One giant job so the other workers go hungry and steal.
		iters := 1000
		if i == 0 {
			iters = 400000
		}
		for k := 0; k < iters; k++ {
			spin.Add(1)
		}
	}, Options{Cost: func(i int) float64 {
		if i == 0 {
			return 1000
		}
		return 1
	}, Name: "test-skew"})
	after := Totals()
	if after.Steals-before.Steals != st.Steals {
		t.Fatalf("Totals steals delta %d != call stats %d",
			after.Steals-before.Steals, st.Steals)
	}
	if after.Parks-before.Parks < st.Parks {
		t.Fatalf("Totals parks did not accumulate: %d < %d",
			after.Parks-before.Parks, st.Parks)
	}
	// With 4 workers, one giant job, and cost seeding there is essentially
	// always at least one steal on a multicore box — but on GOMAXPROCS=1
	// the goroutines run to completion serially, so don't assert > 0.
	t.Logf("stats: %+v", st)
}

// TestLivePools checks pools are visible with worker depths while running
// and unregistered afterwards.
func TestLivePools(t *testing.T) {
	inFlight := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		var once sync.Once
		Map(2, 8, func(i int) {
			once.Do(func() {
				close(inFlight)
				<-release
			})
		}, Options{Name: "live-test"})
	}()
	<-inFlight
	pools := LivePools()
	found := false
	for _, p := range pools {
		if p.Name == "live-test" {
			found = true
			if p.Workers != 2 || p.Jobs != 8 || len(p.Depths) != 2 {
				t.Fatalf("pool snapshot wrong: %+v", p)
			}
		}
	}
	if !found {
		t.Fatalf("live-test pool not in LivePools: %+v", pools)
	}
	close(release)
	<-done
	for _, p := range LivePools() {
		if p.Name == "live-test" {
			t.Fatal("pool still registered after Map returned")
		}
	}
}
