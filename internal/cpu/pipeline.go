package cpu

// Detailed is a cycle-by-cycle, trace-driven out-of-order core. Each cycle
// it fetches up to IssueWidth operations into the instruction window,
// issues up to IssueWidth ready operations subject to per-class functional
// unit counts, and retires completed operations in order. Branches are
// predicted at fetch; a misprediction stalls fetch until the branch resolves
// plus a redirect penalty. Rename registers are unlimited, so only true
// (read-after-write) dependences through virtual registers stall issue.
type Detailed struct {
	P      Params
	Mem    *Hierarchy
	Pred   *Predictor
	Cycles uint64 // cumulative cycles across Run calls
	Issued uint64
}

// NewDetailed builds a detailed core with fresh caches and predictor.
func NewDetailed(p Params) *Detailed {
	return &Detailed{P: p, Mem: NewHierarchy(p), Pred: NewPredictor(p.PredictorEntries, p.HistoryBits)}
}

const never = ^uint64(0)

type winEntry struct {
	op      Op
	fetchAt uint64
	issued  bool
	doneAt  uint64
	mispred bool
}

// Run simulates the trace and returns the number of cycles it takes.
// Microarchitectural cache and predictor state persists across calls,
// modelling consecutive program regions.
func (d *Detailed) Run(trace []Op) uint64 {
	if len(trace) == 0 {
		return 0
	}
	var (
		cycle     uint64
		fetched   int
		window    []*winEntry
		regReady  = map[int32]uint64{} // virtual register -> cycle value available; "never" while in flight
		fetchHold uint64               // fetch stalled until this cycle (mispredict redirect)
		completed int
	)
	classFU := func(c Class) int {
		switch c {
		case IntALU, Branch, Call, Return:
			return d.P.IntUnits
		case FPALU:
			return d.P.FPUnits
		case Load, Store:
			return d.P.LSUnits
		}
		return 1
	}
	srcReady := func(r int32, cycle uint64) bool {
		if r < 0 {
			return true
		}
		t, ok := regReady[r]
		return !ok || t <= cycle
	}

	var fuCount [numClasses]int
	for completed < len(trace) {
		// Fetch stage.
		if cycle >= fetchHold {
			for f := 0; f < d.P.IssueWidth && fetched < len(trace) && len(window) < d.P.Window; f++ {
				op := trace[fetched]
				e := &winEntry{op: op, fetchAt: cycle}
				switch op.Class {
				case Branch:
					e.mispred = !d.Pred.Predict(op.PC, op.Taken)
				case Call:
					d.Pred.Call(op.PC + 4)
				case Return:
					e.mispred = !d.Pred.Return(op.Addr)
				}
				if op.Dst >= 0 {
					regReady[op.Dst] = never // in flight until issue computes latency
				}
				window = append(window, e)
				fetched++
				if e.mispred {
					fetchHold = never // restored when the branch issues
					break
				}
			}
		}

		// Issue stage.
		issued := 0
		for i := range fuCount {
			fuCount[i] = 0
		}
		for _, e := range window {
			if issued >= d.P.IssueWidth {
				break
			}
			if e.issued || e.fetchAt >= cycle {
				continue
			}
			if !srcReady(e.op.Src1, cycle) || !srcReady(e.op.Src2, cycle) {
				continue
			}
			fu := e.op.Class
			if fuCount[fu] >= classFU(fu) {
				continue
			}
			fuCount[fu]++
			issued++
			e.issued = true
			lat := uint64(1)
			switch e.op.Class {
			case Load:
				lat = uint64(d.Mem.Access(e.op.Addr))
			case Store:
				d.Mem.Access(e.op.Addr)
				lat = 1 // stores complete into the write buffer
			}
			e.doneAt = cycle + lat
			if e.op.Dst >= 0 {
				regReady[e.op.Dst] = e.doneAt
			}
			if e.mispred {
				// Redirect fetch after resolution plus flush penalty.
				fetchHold = e.doneAt + uint64(d.P.MispredictFlush)
			}
			d.Issued++
		}

		// Retire stage: remove completed entries from the head, in order.
		n := 0
		for n < len(window) && window[n].issued && window[n].doneAt <= cycle {
			n++
		}
		if n > 0 {
			completed += n
			window = append(window[:0], window[n:]...)
		}

		cycle++
	}
	d.Cycles += cycle
	return cycle
}

// Reset clears microarchitectural state and counters.
func (d *Detailed) Reset() {
	d.Mem.Reset()
	d.Pred.Reset()
	d.Cycles, d.Issued = 0, 0
}
