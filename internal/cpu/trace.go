package cpu

import "math/rand"

// GenerateTrace expands an OpBlock into a synthetic dynamic instruction
// trace suitable for the Detailed core. The block is treated as a loop whose
// iteration count is its branch count (at least 1); each iteration carries
// its proportional share of loads, integer, floating-point and store
// operations, wired with true dependences: loads feed computation, the
// ChainFrac share of computation forms a loop-carried chain, and stores
// consume the last computed value. Memory addresses follow the block's
// Pattern over its Footprint.
//
// If maxOps > 0 and the block contains more operations, the trace is a
// prefix sample of at most maxOps operations; callers scale the resulting
// cycle count by Ops()/len(trace).
func GenerateTrace(b OpBlock, maxOps int, rng *rand.Rand) []Op {
	total := b.Ops()
	if total == 0 {
		return nil
	}
	iters := b.Branches
	if iters == 0 {
		iters = 1
	}
	est := int(total)
	if maxOps > 0 && est > maxOps {
		est = maxOps
	}
	trace := make([]Op, 0, est+8)

	const regRing = 1 << 16
	nextReg := int32(1)
	newReg := func() int32 {
		r := nextReg
		nextReg++
		if nextReg >= regRing {
			nextReg = 1
		}
		return r
	}

	var cursor uint64
	stride := b.Stride
	if stride == 0 {
		stride = 8
	}
	foot := b.Footprint
	if foot < 64 {
		foot = 64
	}
	words := foot / 8
	nextAddr := func() uint64 {
		switch b.Pattern {
		case Sequential:
			a := cursor % foot
			cursor += 8
			return a
		case Strided:
			a := cursor % foot
			cursor += stride
			return a
		default: // RandomAccess, PointerChase
			return (uint64(rng.Int63()) % words) * 8
		}
	}

	chainReg := int32(0) // loop-carried chain; 0 is "unset"
	ptrReg := int32(0)   // pointer-chase chain through load addresses
	pc := uint64(0x1000)

	emit := func(op Op) bool {
		trace = append(trace, op)
		return maxOps > 0 && len(trace) >= maxOps
	}

	for it := uint64(0); it < iters; it++ {
		var lastVal int32 = -1
		nl := share(b.Loads, iters, it)
		for i := 0; i < nl; i++ {
			dst := newReg()
			src := int32(-1)
			if b.Pattern == PointerChase {
				src = ptrReg
				if src == 0 {
					src = -1
				}
				ptrReg = dst
			}
			if emit(Op{Class: Load, Dst: dst, Src1: src, Src2: -1, Addr: nextAddr(), PC: pc}) {
				return trace
			}
			pc += 4
			lastVal = dst
		}
		nc := share(b.Int, iters, it)
		chainLen := int(float64(nc)*b.ChainFrac + 0.5)
		for i := 0; i < nc; i++ {
			dst := newReg()
			s1, s2 := lastVal, int32(-1)
			if i < chainLen {
				s2 = chainReg
				if s2 == 0 {
					s2 = -1
				}
				chainReg = dst
			}
			if emit(Op{Class: IntALU, Dst: dst, Src1: s1, Src2: s2, PC: pc}) {
				return trace
			}
			pc += 4
			lastVal = dst
		}
		nf := share(b.FP, iters, it)
		for i := 0; i < nf; i++ {
			dst := newReg()
			if emit(Op{Class: FPALU, Dst: dst, Src1: lastVal, Src2: -1, PC: pc}) {
				return trace
			}
			pc += 4
			lastVal = dst
		}
		ns := share(b.Stores, iters, it)
		for i := 0; i < ns; i++ {
			if emit(Op{Class: Store, Dst: -1, Src1: lastVal, Src2: -1, Addr: nextAddr(), PC: pc}) {
				return trace
			}
			pc += 4
		}
		if b.Branches > 0 {
			taken := rng.Float64() < b.TakenProb
			// The loop's backward branch reuses one PC so the predictor can
			// learn it; data-dependent branches would use varying outcomes,
			// which TakenProb models.
			if emit(Op{Class: Branch, Dst: -1, Src1: lastVal, Src2: -1, PC: 0x500, Taken: taken}) {
				return trace
			}
		}
	}
	return trace
}

// share returns iteration it's portion of count spread over iters
// iterations, distributing the remainder over the first iterations so the
// total is preserved.
func share(count, iters, it uint64) int {
	n := int(count / iters)
	if it < count%iters {
		n++
	}
	return n
}
