package cpu

import "fmt"

// Class identifies which functional unit an operation needs.
type Class uint8

// Operation classes.
const (
	IntALU Class = iota
	FPALU
	Load
	Store
	Branch
	Call
	Return
	numClasses
)

func (c Class) String() string {
	switch c {
	case IntALU:
		return "int"
	case FPALU:
		return "fp"
	case Load:
		return "load"
	case Store:
		return "store"
	case Branch:
		return "branch"
	case Call:
		return "call"
	case Return:
		return "return"
	}
	return fmt.Sprintf("Class(%d)", uint8(c))
}

// Op is one dynamic instruction in a trace. Register numbers are virtual
// (rename registers are unlimited per Table 2, so only true dependences
// matter); -1 means no operand.
type Op struct {
	Class      Class
	Dst        int32
	Src1, Src2 int32
	Addr       uint64 // effective address for Load/Store
	PC         uint64
	Taken      bool // outcome for Branch
}

// Pattern describes the memory reference behaviour of an aggregate block of
// work, used by the analytic model and the synthetic trace generator.
type Pattern uint8

// Memory reference patterns.
const (
	// Sequential walks the footprint with unit (8-byte word) stride.
	Sequential Pattern = iota
	// Strided walks the footprint with a fixed stride given in OpBlock.
	Strided
	// RandomAccess touches uniformly random words within the footprint.
	RandomAccess
	// PointerChase is RandomAccess where each load's address depends on the
	// previous load's value (a linked-list walk): no memory parallelism.
	PointerChase
)

func (p Pattern) String() string {
	switch p {
	case Sequential:
		return "sequential"
	case Strided:
		return "strided"
	case RandomAccess:
		return "random"
	case PointerChase:
		return "pointer-chase"
	}
	return fmt.Sprintf("Pattern(%d)", uint8(p))
}

// OpBlock aggregates the dynamic operation mix of a piece of local
// computation. Algorithms describe their per-step local work as OpBlocks and
// charge a Model for them; this is the m_op side of the QSM cost
// max(m_op, g*m_rw, kappa).
type OpBlock struct {
	Int      uint64 // integer ALU operations
	FP       uint64 // floating-point operations
	Loads    uint64
	Stores   uint64
	Branches uint64

	Pattern   Pattern
	Stride    uint64  // bytes, for Strided
	Footprint uint64  // bytes of memory touched
	TakenProb float64 // probability a branch is taken (predictability proxy)

	// ChainFrac is the fraction of Int+FP operations on the loop-carried
	// critical dependency chain; 1 fully serialises them.
	ChainFrac float64
}

// Ops returns the total dynamic operation count.
func (b OpBlock) Ops() uint64 { return b.Int + b.FP + b.Loads + b.Stores + b.Branches }

// Add returns the element-wise sum of two blocks; pattern fields are taken
// from the block with the larger footprint. Summation is used when a phase
// performs several kernels back to back.
func (b OpBlock) Add(o OpBlock) OpBlock {
	s := OpBlock{
		Int:      b.Int + o.Int,
		FP:       b.FP + o.FP,
		Loads:    b.Loads + o.Loads,
		Stores:   b.Stores + o.Stores,
		Branches: b.Branches + o.Branches,
	}
	big, small := b, o
	if o.Footprint > b.Footprint {
		big, small = o, b
	}
	s.Pattern, s.Stride, s.Footprint = big.Pattern, big.Stride, big.Footprint
	// Weight scalar behaviour fields by op counts.
	tb, to := float64(b.Ops()), float64(o.Ops())
	if tb+to > 0 {
		s.TakenProb = (b.TakenProb*tb + o.TakenProb*to) / (tb + to)
		s.ChainFrac = (b.ChainFrac*tb + o.ChainFrac*to) / (tb + to)
	}
	_ = small
	return s
}

// Scale returns the block with all counts multiplied by k.
func (b OpBlock) Scale(k uint64) OpBlock {
	b.Int *= k
	b.FP *= k
	b.Loads *= k
	b.Stores *= k
	b.Branches *= k
	return b
}
