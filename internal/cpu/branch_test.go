package cpu

import (
	"math/rand"
	"testing"
)

func TestPredictorLearnsLoop(t *testing.T) {
	p := NewPredictor(64*1024, 8)
	// A loop branch: taken 99 times, not taken once, repeated.
	for rep := 0; rep < 20; rep++ {
		for i := 0; i < 99; i++ {
			p.Predict(0x400, true)
		}
		p.Predict(0x400, false)
	}
	if mr := p.MispredictRate(); mr > 0.05 {
		t.Errorf("loop branch mispredict rate = %.3f, want < 0.05", mr)
	}
}

func TestPredictorRandomBranchNearHalf(t *testing.T) {
	p := NewPredictor(64*1024, 8)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 100000; i++ {
		p.Predict(0x400, rng.Intn(2) == 0)
	}
	if mr := p.MispredictRate(); mr < 0.35 || mr > 0.65 {
		t.Errorf("random branch mispredict rate = %.3f, want ~0.5", mr)
	}
}

func TestPredictorLearnsAlternating(t *testing.T) {
	// A TNTN pattern is perfectly captured by 8 bits of global history.
	p := NewPredictor(64*1024, 8)
	for i := 0; i < 10000; i++ {
		p.Predict(0x400, i%2 == 0)
	}
	if mr := p.MispredictRate(); mr > 0.05 {
		t.Errorf("alternating mispredict rate = %.3f, want < 0.05", mr)
	}
}

func TestPredictorRAS(t *testing.T) {
	p := NewPredictor(1024, 8)
	p.Call(0x100)
	p.Call(0x200)
	if !p.Return(0x200) {
		t.Error("return to 0x200 should predict correctly")
	}
	if !p.Return(0x100) {
		t.Error("return to 0x100 should predict correctly")
	}
	if p.Return(0x300) {
		t.Error("underflowed return should mispredict")
	}
}

func TestPredictorBadSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-power-of-two table did not panic")
		}
	}()
	NewPredictor(1000, 8)
}

func TestPredictorReset(t *testing.T) {
	p := NewPredictor(1024, 8)
	p.Predict(0x10, true)
	p.Call(0x20)
	p.Reset()
	if p.Lookups != 0 || p.Mispredicts != 0 || len(p.ras) != 0 {
		t.Error("Reset incomplete")
	}
}
