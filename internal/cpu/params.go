// Package cpu models the compute node of the simulated multiprocessor: a
// four-wide out-of-order superscalar processor with a two-level cache
// hierarchy and a two-level adaptive branch predictor, configured exactly as
// Table 2 of the paper configures each Armadillo node.
//
// Two fidelity levels are provided. Detailed is a cycle-by-cycle,
// trace-driven timing core that honours functional-unit structural hazards,
// the instruction window, register dependences, cache latencies and branch
// mispredictions. Analytic is a closed-form model over aggregate operation
// counts (an OpBlock); it is what experiment sweeps use, and the test suite
// holds it to within tolerance of Detailed on the kernel library.
package cpu

// Params describes the node architecture (paper Table 2).
type Params struct {
	IntUnits   int // integer ALUs
	FPUnits    int // floating-point units
	LSUnits    int // load/store units
	IssueWidth int // max instructions issued per cycle
	Window     int // instruction issue window entries

	L1Size  int // bytes
	L1Assoc int
	L1Hit   int // cycles

	L2Size  int // bytes
	L2Assoc int
	L2Hit   int // cycles

	MemPenalty int // extra cycles beyond L2 hit on an L2 miss ("3 + 7")

	LineSize int // cache line bytes

	PredictorEntries int // branch prediction table entries
	HistoryBits      int // global history length
	MispredictFlush  int // cycles of fetch lost on a misprediction redirect

	ClockMHz int // for converting cycles to wall-clock time in reports
}

// Table2 returns the node configuration from Table 2 of the paper: an
// advanced processor of 1998. 4 int / 4 FP / 2 load-store units with 1-cycle
// latency, 4-wide issue into a 64-entry window, 8KB 2-way L1 (1 cycle),
// 256KB 8-way L2 (3 cycles, miss 3+7), 64K-entry branch predictor with 8-bit
// history, 400 MHz clock.
func Table2() Params {
	return Params{
		IntUnits:   4,
		FPUnits:    4,
		LSUnits:    2,
		IssueWidth: 4,
		Window:     64,

		L1Size:  8 * 1024,
		L1Assoc: 2,
		L1Hit:   1,

		L2Size:  256 * 1024,
		L2Assoc: 8,
		L2Hit:   3,

		MemPenalty: 7,

		LineSize: 64,

		PredictorEntries: 64 * 1024,
		HistoryBits:      8,
		MispredictFlush:  3,

		ClockMHz: 400,
	}
}

// MemLatency returns the access latency in cycles for a hit at each level:
// L1, L2, and main memory.
func (p Params) MemLatency() (l1, l2, mem int) {
	return p.L1Hit, p.L2Hit, p.L2Hit + p.MemPenalty
}

// CyclesToMicros converts a cycle count to microseconds at the configured
// clock rate.
func (p Params) CyclesToMicros(cycles float64) float64 {
	if p.ClockMHz == 0 {
		return 0
	}
	return cycles / float64(p.ClockMHz)
}
