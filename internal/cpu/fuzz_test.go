package cpu

import (
	"math/rand"
	"testing"
)

// FuzzCacheAccess checks cache invariants over arbitrary address streams:
// latency is always one of the three level times, counters add up, and a
// repeated address immediately hits.
func FuzzCacheAccess(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3}, uint16(1))
	f.Add([]byte{255, 0, 255, 0}, uint16(7))
	f.Fuzz(func(t *testing.T, stream []byte, salt uint16) {
		h := NewHierarchy(Table2())
		var accesses uint64
		for i, b := range stream {
			addr := (uint64(b) << 12) ^ (uint64(salt) * uint64(i+1) * 64)
			lat := h.Access(addr)
			if lat != 1 && lat != 4 && lat != 11 {
				t.Fatalf("latency %d not in {1,4,11}", lat)
			}
			accesses++
			if lat2 := h.Access(addr); lat2 != 1 {
				t.Fatalf("repeat access missed (lat %d)", lat2)
			}
			accesses++
		}
		if h.L1.Hits+h.L1.Misses != accesses {
			t.Fatalf("counter mismatch: %d+%d != %d", h.L1.Hits, h.L1.Misses, accesses)
		}
	})
}

// FuzzPipelineTerminates checks the detailed core completes arbitrary
// (well-formed) traces and never reports fewer cycles than the issue bound.
func FuzzPipelineTerminates(f *testing.F) {
	f.Add(uint16(50), int64(1))
	f.Add(uint16(300), int64(9))
	f.Fuzz(func(t *testing.T, nRaw uint16, seed int64) {
		n := int(nRaw)%500 + 1
		rng := rand.New(rand.NewSource(seed))
		classes := []Class{IntALU, FPALU, Load, Store, Branch}
		trace := make([]Op, n)
		for i := range trace {
			c := classes[rng.Intn(len(classes))]
			op := Op{Class: c, Dst: int32(i + 1), Src1: -1, Src2: -1, PC: uint64(4 * i)}
			if i > 0 && rng.Intn(2) == 0 {
				op.Src1 = int32(rng.Intn(i) + 1)
			}
			if c == Load || c == Store {
				op.Addr = uint64(rng.Intn(1 << 20))
			}
			if c == Branch {
				op.Taken = rng.Intn(2) == 0
			}
			trace[i] = op
		}
		d := NewDetailed(Table2())
		cycles := d.Run(trace)
		if cycles < uint64(n)/4 {
			t.Fatalf("%d ops in %d cycles beats the 4-wide issue bound", n, cycles)
		}
		if cycles > uint64(n)*100+1000 {
			t.Fatalf("%d ops took %d cycles: runaway", n, cycles)
		}
	})
}
