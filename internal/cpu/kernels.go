package cpu

import (
	"math"
	"math/rand"
)

// newTraceRand derives a deterministic random source for trace generation.
func newTraceRand(seed, stream int64) *rand.Rand {
	return rand.New(rand.NewSource(seed*0x9e3779b9 + stream))
}

// The kernel library describes, as OpBlocks, the local computation steps of
// the paper's three algorithms. Constants (operations per element) follow
// straightforward instruction counts for the inner loops; the point is not
// exact instruction fidelity but that local work scales correctly and that
// the same blocks are charged identically under every cost model.

// lg returns log2(n), at least 1.
func lg(n int) float64 {
	if n < 2 {
		return 1
	}
	return math.Log2(float64(n))
}

// BlockSum models summing n contiguous 8-byte words.
func BlockSum(n int) OpBlock {
	un := uint64(n)
	return OpBlock{
		Int: 2 * un, Loads: un, Branches: un,
		Pattern: Sequential, Footprint: 8 * un, TakenProb: 0.999, ChainFrac: 0.5,
	}
}

// BlockPrefixSum models an in-place running sum over n contiguous words.
func BlockPrefixSum(n int) OpBlock {
	un := uint64(n)
	return OpBlock{
		Int: 2 * un, Loads: un, Stores: un, Branches: un,
		Pattern: Sequential, Footprint: 8 * un, TakenProb: 0.999, ChainFrac: 0.5,
	}
}

// BlockCopy models copying n contiguous words.
func BlockCopy(n int) OpBlock {
	un := uint64(n)
	return OpBlock{
		Int: un, Loads: un, Stores: un, Branches: un / 4,
		Pattern: Sequential, Footprint: 16 * un, TakenProb: 0.999,
	}
}

// BlockQuickSort models quicksorting n words in place: ~1.4 n lg n
// comparisons, each a load plus compare plus a hard-to-predict branch, with
// about half the comparisons followed by a swap.
func BlockQuickSort(n int) OpBlock {
	cmps := uint64(1.4*float64(n)*lg(n)) + 1
	return OpBlock{
		Int: 3 * cmps, Loads: cmps, Stores: cmps / 2, Branches: cmps,
		Pattern: RandomAccess, Footprint: 8 * uint64(n), TakenProb: 0.5,
	}
}

// BlockBucketize models assigning each of n elements to one of p buckets by
// binary search over the pivots: lg(p) compares per element.
func BlockBucketize(n, p int) OpBlock {
	un := uint64(n)
	steps := uint64(lg(p)) + 1
	return OpBlock{
		Int: (steps + 2) * un, Loads: (steps + 1) * un, Stores: un, Branches: steps * un,
		Pattern: RandomAccess, Footprint: 8 * un, TakenProb: 0.5,
	}
}

// BlockListTraverse models walking n nodes of a linked list resident in
// local memory: a dependent load per node plus rank bookkeeping.
func BlockListTraverse(n int) OpBlock {
	un := uint64(n)
	return OpBlock{
		Int: 2 * un, Loads: un, Stores: un / 2, Branches: un,
		Pattern: PointerChase, Footprint: 16 * un, TakenProb: 0.999,
	}
}

// BlockFlipGenerate models drawing a random bit per active element and
// storing it: a few ALU operations for the generator per element.
func BlockFlipGenerate(n int) OpBlock {
	un := uint64(n)
	return OpBlock{
		Int: 6 * un, Loads: un, Stores: un, Branches: un,
		Pattern: Sequential, Footprint: 16 * un, TakenProb: 0.999,
	}
}

// BlockCompact models scanning n elements and keeping a data-dependent
// subset (list-ranking's remove step, bucket scatter, etc.).
func BlockCompact(n int) OpBlock {
	un := uint64(n)
	return OpBlock{
		Int: 4 * un, Loads: 2 * un, Stores: un / 2, Branches: un,
		Pattern: Sequential, Footprint: 24 * un, TakenProb: 0.5,
	}
}

// BlockScatter models writing n words to data-dependent local locations.
func BlockScatter(n int, footprint uint64) OpBlock {
	un := uint64(n)
	return OpBlock{
		Int: 2 * un, Loads: un, Stores: un, Branches: un / 4,
		Pattern: RandomAccess, Footprint: footprint, TakenProb: 0.999,
	}
}
