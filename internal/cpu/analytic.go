package cpu

import "math"

// Model converts aggregate local computation (an OpBlock) into cycles.
type Model interface {
	// Cycles returns the simulated execution time of the block.
	Cycles(b OpBlock) uint64
	// Name identifies the model in reports.
	Name() string
}

// Analytic is the closed-form node timing model. It bounds execution by the
// tightest of the issue-width, per-functional-unit, and dependency-chain
// throughput limits, then adds memory and branch stall terms estimated from
// the block's reference pattern and footprint. Its estimates are validated
// against the Detailed core by the package tests.
type Analytic struct {
	P Params
	// MissOverlap is the fraction of an independent (non-chained) miss's
	// penalty that the out-of-order window cannot hide. 1 means fully
	// exposed, 0 fully hidden. Calibrated against Detailed.
	MissOverlap float64
}

// NewAnalytic returns the analytic model with default calibration.
func NewAnalytic(p Params) *Analytic {
	return &Analytic{P: p, MissOverlap: 0.55}
}

// Name implements Model.
func (a *Analytic) Name() string { return "cpu-analytic" }

// Cycles implements Model.
func (a *Analytic) Cycles(b OpBlock) uint64 {
	total := b.Ops()
	if total == 0 {
		return 0
	}
	p := a.P

	// Throughput limits.
	issue := float64(total) / float64(p.IssueWidth)
	intish := float64(b.Int+b.Branches) / float64(p.IntUnits)
	fp := float64(b.FP) / float64(p.FPUnits)
	ls := float64(b.Loads+b.Stores) / float64(p.LSUnits)
	bound := math.Max(math.Max(issue, intish), math.Max(fp, ls))

	// Dependency-chain limit: chained ALU ops execute one per cycle; a
	// pointer chase serialises each load's full memory latency.
	m1, m2 := a.missRates(b)
	l1, l2, mem := p.MemLatency()
	avgLoad := float64(l1) + m1*(float64(l2)+m2*float64(mem-l2))
	chain := b.ChainFrac * float64(b.Int+b.FP)
	if b.Pattern == PointerChase {
		chain += float64(b.Loads) * avgLoad
	}
	bound = math.Max(bound, chain)

	// Memory stalls beyond the L1 hits already covered by throughput. For
	// independent accesses the out-of-order window overlaps most of a
	// miss's penalty; dependences through ALU chains reduce the memory
	// parallelism the window can extract, so the exposed fraction grows
	// with ChainFrac up to MissOverlap. Pointer chases already charge full
	// latency in the chain bound above.
	var memStall float64
	if b.Pattern != PointerChase {
		accesses := float64(b.Loads + b.Stores)
		missPenalty := m1 * (float64(l2) + m2*float64(mem-l2))
		exposed := 0.15 + (a.MissOverlap-0.15)*b.ChainFrac
		memStall = accesses * missPenalty * exposed
	}

	// Branch stalls: a 2-bit counter on outcomes taken with probability t
	// mispredicts roughly at the rate of the minority outcome; 2t(1-t) is a
	// standard smooth approximation.
	t := b.TakenProb
	mr := 2 * t * (1 - t)
	branchStall := float64(b.Branches) * mr * float64(p.MispredictFlush+2)

	const pipelineFill = 12
	return uint64(bound + memStall + branchStall + pipelineFill)
}

// missRates estimates (L1 miss rate, fraction of L1 misses missing L2) for
// the block's pattern and footprint using capacity arguments.
func (a *Analytic) missRates(b OpBlock) (m1, m2 float64) {
	p := a.P
	foot := float64(b.Footprint)
	if foot == 0 {
		return 0, 0
	}
	accesses := float64(b.Loads + b.Stores)
	if accesses == 0 {
		return 0, 0
	}
	line := float64(p.LineSize)
	switch b.Pattern {
	case Sequential, Strided:
		stride := float64(b.Stride)
		if b.Pattern == Sequential || stride == 0 {
			stride = 8
		}
		if stride > line {
			stride = line
		}
		perLine := line / stride // accesses per line fetched
		cold := foot / line      // compulsory misses
		if foot <= float64(p.L1Size) {
			m1 = math.Min(1, cold/accesses)
			return m1, 0
		}
		// Streaming: every line fetch misses L1.
		m1 = 1 / perLine
		if foot <= float64(p.L2Size) {
			return m1, math.Min(1, cold/(accesses*m1))
		}
		return m1, 1
	default: // RandomAccess, PointerChase
		if foot <= float64(p.L1Size) {
			return 0, 0
		}
		m1 = 1 - float64(p.L1Size)/foot
		if foot <= float64(p.L2Size) {
			return m1, 0
		}
		m2 = 1 - float64(p.L2Size)/foot
		return m1, m2
	}
}

// DetailedModel adapts the Detailed core to the Model interface by
// generating a bounded synthetic trace for the block and scaling the
// simulated cycles back up to the full operation count.
type DetailedModel struct {
	Core    *Detailed
	MaxOps  int // trace sample cap; 0 means unbounded
	Seed    int64
	counter int64
}

// NewDetailedModel wraps a fresh Detailed core; traces are sampled to at
// most maxOps operations.
func NewDetailedModel(p Params, maxOps int, seed int64) *DetailedModel {
	return &DetailedModel{Core: NewDetailed(p), MaxOps: maxOps, Seed: seed}
}

// Name implements Model.
func (d *DetailedModel) Name() string { return "cpu-detailed" }

// Cycles implements Model.
func (d *DetailedModel) Cycles(b OpBlock) uint64 {
	total := b.Ops()
	if total == 0 {
		return 0
	}
	d.counter++
	rng := newTraceRand(d.Seed, d.counter)
	trace := GenerateTrace(b, d.MaxOps, rng)
	if len(trace) == 0 {
		return 0
	}
	cycles := d.Core.Run(trace)
	if uint64(len(trace)) < total {
		cycles = uint64(float64(cycles) * float64(total) / float64(len(trace)))
	}
	return cycles
}
