package cpu

import (
	"testing"
)

func TestAnalyticZeroBlock(t *testing.T) {
	a := NewAnalytic(Table2())
	if c := a.Cycles(OpBlock{}); c != 0 {
		t.Errorf("zero block = %d cycles, want 0", c)
	}
}

func TestAnalyticScalesLinearly(t *testing.T) {
	a := NewAnalytic(Table2())
	small := a.Cycles(BlockPrefixSum(10000))
	large := a.Cycles(BlockPrefixSum(100000))
	// 10x the elements is at least 10x the work; crossing the L2 capacity
	// (80KB -> 800KB footprint) legitimately adds memory stalls on top.
	ratio := float64(large) / float64(small)
	if ratio < 8 || ratio > 14 {
		t.Errorf("10x work gave %.2fx cycles, want 10x plus cache effects", ratio)
	}
}

func TestAnalyticNLogNKernel(t *testing.T) {
	a := NewAnalytic(Table2())
	c1 := a.Cycles(BlockQuickSort(1 << 12))
	c2 := a.Cycles(BlockQuickSort(1 << 16))
	// n lg n: 16x elements is ~21x work; the larger instance also spills
	// out of L2 (32KB -> 512KB), adding memory stalls.
	ratio := float64(c2) / float64(c1)
	if ratio < 15 || ratio > 45 {
		t.Errorf("quicksort scaling ratio = %.1f, want ~21-40", ratio)
	}
}

func TestAnalyticPointerChaseCostly(t *testing.T) {
	a := NewAnalytic(Table2())
	n := 100000
	seq := a.Cycles(BlockPrefixSum(n))
	chase := a.Cycles(BlockListTraverse(n))
	if chase < 2*seq {
		t.Errorf("pointer chase (%d) should be much slower than sequential (%d)", chase, seq)
	}
}

// agreement runs both models on a block and returns detailed/analytic.
func agreement(t *testing.T, b OpBlock) float64 {
	t.Helper()
	a := NewAnalytic(Table2())
	d := NewDetailedModel(Table2(), 200000, 1)
	ca := a.Cycles(b)
	cd := d.Cycles(b)
	if ca == 0 || cd == 0 {
		t.Fatalf("zero cycles: analytic=%d detailed=%d", ca, cd)
	}
	return float64(cd) / float64(ca)
}

// The analytic model is the production model for sweeps; hold it to within
// a factor band of the detailed core on every kernel in the library. The
// bands are deliberately loose — the models bound different effects — but
// catch gross regressions (an order-of-magnitude drift breaks experiments).
func TestAnalyticVsDetailedKernels(t *testing.T) {
	kernels := []struct {
		name string
		b    OpBlock
		lo   float64
		hi   float64
	}{
		{"sum", BlockSum(50000), 0.3, 3},
		{"prefix", BlockPrefixSum(50000), 0.3, 3},
		{"copy", BlockCopy(50000), 0.3, 3},
		{"quicksort", BlockQuickSort(20000), 0.3, 3.5},
		{"bucketize", BlockBucketize(20000, 16), 0.3, 3.5},
		{"traverse", BlockListTraverse(20000), 0.25, 3},
		{"flipgen", BlockFlipGenerate(50000), 0.3, 3},
		{"compact", BlockCompact(50000), 0.3, 3},
		{"scatter", BlockScatter(50000, 8*50000), 0.3, 3},
	}
	for _, k := range kernels {
		k := k
		t.Run(k.name, func(t *testing.T) {
			r := agreement(t, k.b)
			if r < k.lo || r > k.hi {
				t.Errorf("detailed/analytic = %.2f, want in [%.2g, %.2g]", r, k.lo, k.hi)
			}
		})
	}
}

func TestDetailedModelSamplingScales(t *testing.T) {
	// A sampled run of a huge block should land near an unsampled run of
	// the same block shape (smaller instance scaled up).
	dm := NewDetailedModel(Table2(), 50000, 1)
	big := dm.Cycles(BlockSum(2000000))
	dm2 := NewDetailedModel(Table2(), 0, 1)
	small := dm2.Cycles(BlockSum(200000))
	ratio := float64(big) / (10 * float64(small))
	if ratio < 0.5 || ratio > 2 {
		t.Errorf("sampled scaling off by %.2fx", ratio)
	}
}

func TestOpBlockAdd(t *testing.T) {
	a := BlockSum(100)
	b := BlockQuickSort(1000)
	s := a.Add(b)
	if s.Int != a.Int+b.Int || s.Loads != a.Loads+b.Loads {
		t.Error("Add did not sum counts")
	}
	if s.Pattern != b.Pattern {
		t.Error("Add should take pattern from larger-footprint block")
	}
}

func TestOpBlockScale(t *testing.T) {
	b := BlockSum(10).Scale(3)
	if b.Int != 3*BlockSum(10).Int {
		t.Error("Scale did not multiply counts")
	}
}

func TestParamsHelpers(t *testing.T) {
	p := Table2()
	l1, l2, mem := p.MemLatency()
	if l1 != 1 || l2 != 3 || mem != 10 {
		t.Errorf("latencies = %d,%d,%d, want 1,3,10", l1, l2, mem)
	}
	if us := p.CyclesToMicros(400); us != 1 {
		t.Errorf("400 cycles at 400MHz = %gus, want 1", us)
	}
	if (Params{}).CyclesToMicros(100) != 0 {
		t.Error("zero clock should give 0")
	}
}

func TestGenerateTraceCounts(t *testing.T) {
	b := OpBlock{Int: 100, Loads: 50, Stores: 25, Branches: 10, FP: 5,
		Pattern: Sequential, Footprint: 4096, TakenProb: 0.9}
	trace := GenerateTrace(b, 0, newTraceRand(1, 1))
	var got OpBlock
	for _, op := range trace {
		switch op.Class {
		case IntALU:
			got.Int++
		case FPALU:
			got.FP++
		case Load:
			got.Loads++
		case Store:
			got.Stores++
		case Branch:
			got.Branches++
		}
	}
	if got.Int != b.Int || got.FP != b.FP || got.Loads != b.Loads ||
		got.Stores != b.Stores || got.Branches != b.Branches {
		t.Errorf("trace counts %+v, want %+v", got, b)
	}
}

func TestGenerateTraceCap(t *testing.T) {
	b := BlockSum(100000)
	trace := GenerateTrace(b, 1000, newTraceRand(1, 1))
	if len(trace) > 1000 {
		t.Errorf("trace length %d exceeds cap", len(trace))
	}
}

func TestGenerateTraceAddressesWithinFootprint(t *testing.T) {
	b := OpBlock{Loads: 1000, Branches: 100, Pattern: RandomAccess, Footprint: 1 << 16}
	trace := GenerateTrace(b, 0, newTraceRand(2, 2))
	for _, op := range trace {
		if op.Class == Load && op.Addr >= b.Footprint {
			t.Fatalf("address %#x outside footprint %#x", op.Addr, b.Footprint)
		}
	}
}

func BenchmarkAnalyticModel(b *testing.B) {
	a := NewAnalytic(Table2())
	blk := BlockQuickSort(100000)
	for i := 0; i < b.N; i++ {
		a.Cycles(blk)
	}
}

func BenchmarkDetailedVsAnalyticAblation(b *testing.B) {
	blk := BlockPrefixSum(100000)
	b.Run("analytic", func(b *testing.B) {
		a := NewAnalytic(Table2())
		for i := 0; i < b.N; i++ {
			a.Cycles(blk)
		}
	})
	b.Run("detailed-sampled", func(b *testing.B) {
		d := NewDetailedModel(Table2(), 20000, 1)
		for i := 0; i < b.N; i++ {
			d.Cycles(blk)
		}
	})
}
