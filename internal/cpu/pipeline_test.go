package cpu

import (
	"math/rand"
	"testing"
)

// mkOps builds n independent integer ops.
func mkOps(n int) []Op {
	ops := make([]Op, n)
	for i := range ops {
		ops[i] = Op{Class: IntALU, Dst: int32(i + 1), Src1: -1, Src2: -1, PC: uint64(0x1000 + 4*i)}
	}
	return ops
}

func TestPipelineIssueWidthBound(t *testing.T) {
	d := NewDetailed(Table2())
	const n = 4000
	cycles := d.Run(mkOps(n))
	// 4-wide: ideal n/4 cycles plus small fill; must be close.
	if cycles < n/4 {
		t.Fatalf("cycles = %d below issue bound %d", cycles, n/4)
	}
	if cycles > n/4+50 {
		t.Errorf("cycles = %d, want near %d for independent int ops", cycles, n/4)
	}
}

func TestPipelineChainSerialises(t *testing.T) {
	d := NewDetailed(Table2())
	const n = 2000
	ops := make([]Op, n)
	for i := range ops {
		src := int32(i) // depends on previous op's dst
		if i == 0 {
			src = -1
		}
		ops[i] = Op{Class: IntALU, Dst: int32(i + 1), Src1: src, Src2: -1}
	}
	cycles := d.Run(ops)
	if cycles < n {
		t.Fatalf("chained ops finished in %d cycles, below serial bound %d", cycles, n)
	}
	if cycles > n+100 {
		t.Errorf("chained ops took %d cycles, want near %d", cycles, n)
	}
}

func TestPipelineLSUnitBound(t *testing.T) {
	d := NewDetailed(Table2())
	const n = 4000
	ops := make([]Op, n)
	for i := range ops {
		// Stores to a tiny footprint: all L1 hits, bound by 2 LS units.
		ops[i] = Op{Class: Store, Dst: -1, Src1: -1, Src2: -1, Addr: uint64(i%64) * 8}
	}
	cycles := d.Run(ops)
	if cycles < n/2 {
		t.Fatalf("cycles = %d below LS-unit bound %d", cycles, n/2)
	}
	if cycles > n/2+100 {
		t.Errorf("cycles = %d, want near %d for store stream", cycles, n/2)
	}
}

func TestPipelinePointerChaseExposesLatency(t *testing.T) {
	d := NewDetailed(Table2())
	rng := rand.New(rand.NewSource(5))
	const n = 2000
	foot := uint64(8 << 20)
	ops := make([]Op, n)
	for i := range ops {
		src := int32(i)
		if i == 0 {
			src = -1
		}
		ops[i] = Op{Class: Load, Dst: int32(i + 1), Src1: src, Src2: -1,
			Addr: (uint64(rng.Int63()) % (foot / 8)) * 8}
	}
	cycles := d.Run(ops)
	// Nearly every load misses to memory (11 cycles), fully serialised.
	if cycles < 9*n {
		t.Errorf("pointer chase = %d cycles, want > %d (latency-bound)", cycles, 9*n)
	}
}

func TestPipelineIndependentLoadsOverlapMisses(t *testing.T) {
	dChase := NewDetailed(Table2())
	dInd := NewDetailed(Table2())
	rng := rand.New(rand.NewSource(5))
	const n = 2000
	foot := uint64(8 << 20)
	chase := make([]Op, n)
	ind := make([]Op, n)
	for i := range chase {
		addr := (uint64(rng.Int63()) % (foot / 8)) * 8
		src := int32(i)
		if i == 0 {
			src = -1
		}
		chase[i] = Op{Class: Load, Dst: int32(i + 1), Src1: src, Src2: -1, Addr: addr}
		ind[i] = Op{Class: Load, Dst: int32(i + 1), Src1: -1, Src2: -1, Addr: addr}
	}
	cChase := dChase.Run(chase)
	cInd := dInd.Run(ind)
	if cInd*2 > cChase {
		t.Errorf("independent loads (%d cycles) should be >2x faster than chase (%d)", cInd, cChase)
	}
}

func TestPipelineMispredictPenalty(t *testing.T) {
	good := NewDetailed(Table2())
	bad := NewDetailed(Table2())
	rng := rand.New(rand.NewSource(7))
	const n = 4000
	pred := make([]Op, n)
	unpred := make([]Op, n)
	for i := range pred {
		pred[i] = Op{Class: Branch, Dst: -1, Src1: -1, Src2: -1, PC: 0x400, Taken: true}
		unpred[i] = Op{Class: Branch, Dst: -1, Src1: -1, Src2: -1, PC: 0x400, Taken: rng.Intn(2) == 0}
	}
	cGood := good.Run(pred)
	cBad := bad.Run(unpred)
	if cBad < cGood*2 {
		t.Errorf("unpredictable branches (%d) should cost >2x predictable (%d)", cBad, cGood)
	}
}

func TestPipelineEmptyTrace(t *testing.T) {
	d := NewDetailed(Table2())
	if c := d.Run(nil); c != 0 {
		t.Errorf("empty trace = %d cycles, want 0", c)
	}
}

func TestPipelineWindowLimit(t *testing.T) {
	// With a window of 1 instruction, everything serialises.
	p := Table2()
	p.Window = 1
	d := NewDetailed(p)
	const n = 1000
	cycles := d.Run(mkOps(n))
	if cycles < n {
		t.Errorf("window=1 took %d cycles, want >= %d", cycles, n)
	}
}

func TestPipelineCumulativeCounters(t *testing.T) {
	d := NewDetailed(Table2())
	d.Run(mkOps(100))
	d.Run(mkOps(100))
	if d.Issued != 200 {
		t.Errorf("issued = %d, want 200", d.Issued)
	}
	d.Reset()
	if d.Issued != 0 || d.Cycles != 0 {
		t.Error("Reset incomplete")
	}
}

func BenchmarkPipelineIntStream(b *testing.B) {
	d := NewDetailed(Table2())
	ops := mkOps(10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Run(ops)
	}
}
