package cpu

// Cache is a set-associative, write-allocate, LRU cache level. Levels are
// chained through next; an access that misses every level pays the
// memPenalty of the last level.
type Cache struct {
	name      string
	lineShift uint
	setMask   uint64
	assoc     int
	hitTime   int
	tags      []uint64 // sets*assoc entries; tag 0 means empty (addresses are offset to avoid tag 0)
	lru       []uint32 // per-line LRU timestamp
	clock     uint32
	next      *Cache
	memTime   int // total latency when this (last) level misses

	Hits, Misses uint64
}

// NewCache builds a cache level. size and lineSize are bytes; next is the
// lower level or nil for the last level before memory, in which case
// memPenalty is the additional latency of a memory access.
func NewCache(name string, size, assoc, lineSize, hitTime int, next *Cache, memPenalty int) *Cache {
	if size <= 0 || assoc <= 0 || lineSize <= 0 || size%(assoc*lineSize) != 0 {
		panic("cpu: invalid cache geometry")
	}
	sets := size / (assoc * lineSize)
	if sets&(sets-1) != 0 {
		panic("cpu: cache set count must be a power of two")
	}
	shift := uint(0)
	for 1<<shift != lineSize {
		shift++
	}
	return &Cache{
		name:      name,
		lineShift: shift,
		setMask:   uint64(sets - 1),
		assoc:     assoc,
		hitTime:   hitTime,
		tags:      make([]uint64, sets*assoc),
		lru:       make([]uint32, sets*assoc),
		next:      next,
		memTime:   hitTime + memPenalty,
	}
}

// Access simulates a read or write of addr and returns its latency in
// cycles. Writes allocate like reads (write-allocate, write-back; dirty
// state does not affect timing in this model).
func (c *Cache) Access(addr uint64) int {
	line := (addr >> c.lineShift) + 1 // +1 so that tag 0 means "empty"
	set := int(line & c.setMask)
	base := set * c.assoc
	c.clock++
	victim, oldest := base, c.lru[base]
	for i := 0; i < c.assoc; i++ {
		w := base + i
		if c.tags[w] == line {
			c.Hits++
			c.lru[w] = c.clock
			return c.hitTime
		}
		if c.lru[w] < oldest {
			victim, oldest = w, c.lru[w]
		}
	}
	c.Misses++
	c.tags[victim] = line
	c.lru[victim] = c.clock
	if c.next != nil {
		return c.hitTime + c.next.Access(addr)
	}
	return c.memTime
}

// MissRate returns misses/(hits+misses), or 0 before any access.
func (c *Cache) MissRate() float64 {
	total := c.Hits + c.Misses
	if total == 0 {
		return 0
	}
	return float64(c.Misses) / float64(total)
}

// Reset clears contents and counters.
func (c *Cache) Reset() {
	for i := range c.tags {
		c.tags[i] = 0
		c.lru[i] = 0
	}
	c.clock = 0
	c.Hits, c.Misses = 0, 0
	if c.next != nil {
		c.next.Reset()
	}
}

// fill inserts addr's line without charging latency or counting the access
// (used by the prefetcher).
func (c *Cache) fill(addr uint64) {
	line := (addr >> c.lineShift) + 1
	set := int(line & c.setMask)
	base := set * c.assoc
	c.clock++
	victim, oldest := base, c.lru[base]
	for i := 0; i < c.assoc; i++ {
		w := base + i
		if c.tags[w] == line {
			return // already resident
		}
		if c.lru[w] < oldest {
			victim, oldest = w, c.lru[w]
		}
	}
	c.tags[victim] = line
	c.lru[victim] = c.clock
}

// Hierarchy is the two-level cache system of a node.
type Hierarchy struct {
	L1, L2 *Cache
	// Prefetch enables a next-line prefetcher: every L1 miss also fills the
	// following line. Helps streaming patterns, does nothing for random
	// access — an ablation knob beyond the paper's Table 2 baseline.
	Prefetch bool
	lineSize uint64
}

// NewHierarchy builds the L1/L2 hierarchy described by p.
func NewHierarchy(p Params) *Hierarchy {
	l2 := NewCache("L2", p.L2Size, p.L2Assoc, p.LineSize, p.L2Hit, nil, p.MemPenalty)
	// The L1 hit time is charged by the pipeline for every access; on a miss
	// the lower levels add their own time, so L1's own contribution to a
	// miss is its hit (lookup) time.
	l1 := NewCache("L1", p.L1Size, p.L1Assoc, p.LineSize, p.L1Hit, l2, 0)
	return &Hierarchy{L1: l1, L2: l2, lineSize: uint64(p.LineSize)}
}

// Access returns the latency of a load or store to addr.
func (h *Hierarchy) Access(addr uint64) int {
	misses := h.L1.Misses
	lat := h.L1.Access(addr)
	if h.Prefetch && h.L1.Misses != misses {
		h.L1.fill(addr + h.lineSize)
		h.L2.fill(addr + h.lineSize)
	}
	return lat
}

// Reset clears both levels.
func (h *Hierarchy) Reset() { h.L1.Reset() }
