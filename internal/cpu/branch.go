package cpu

// Predictor is a gshare-style two-level adaptive branch predictor: a global
// history register XORed with the branch PC indexes a table of 2-bit
// saturating counters. Calls push onto and returns pop from an unbounded
// return-address stack, matching Table 2's "subroutine link register stack:
// unlimited".
type Predictor struct {
	table    []uint8 // 2-bit counters
	mask     uint64
	history  uint64
	histMask uint64
	ras      []uint64

	Lookups, Mispredicts uint64
}

// NewPredictor builds a predictor with the given table size (a power of two)
// and global history length in bits.
func NewPredictor(entries, historyBits int) *Predictor {
	if entries <= 0 || entries&(entries-1) != 0 {
		panic("cpu: predictor entries must be a power of two")
	}
	p := &Predictor{
		table:    make([]uint8, entries),
		mask:     uint64(entries - 1),
		histMask: (1 << uint(historyBits)) - 1,
	}
	// Initialise counters to weakly taken, the usual convention.
	for i := range p.table {
		p.table[i] = 2
	}
	return p
}

func (p *Predictor) index(pc uint64) uint64 {
	return ((pc >> 2) ^ p.history) & p.mask
}

// Predict consults the predictor for the branch at pc, updates it with the
// actual outcome taken, and reports whether the prediction was correct.
func (p *Predictor) Predict(pc uint64, taken bool) bool {
	p.Lookups++
	i := p.index(pc)
	pred := p.table[i] >= 2
	if taken && p.table[i] < 3 {
		p.table[i]++
	} else if !taken && p.table[i] > 0 {
		p.table[i]--
	}
	p.history = ((p.history << 1) | b2u(taken)) & p.histMask
	if pred != taken {
		p.Mispredicts++
		return false
	}
	return true
}

// Call records a subroutine call whose return address is retAddr.
func (p *Predictor) Call(retAddr uint64) { p.ras = append(p.ras, retAddr) }

// Return predicts a subroutine return to actual and reports correctness.
// With an unbounded stack the only way to mispredict is stack underflow.
func (p *Predictor) Return(actual uint64) bool {
	p.Lookups++
	if n := len(p.ras); n > 0 {
		top := p.ras[n-1]
		p.ras = p.ras[:n-1]
		if top == actual {
			return true
		}
	}
	p.Mispredicts++
	return false
}

// MispredictRate returns mispredicts/lookups, or 0 before any lookup.
func (p *Predictor) MispredictRate() float64 {
	if p.Lookups == 0 {
		return 0
	}
	return float64(p.Mispredicts) / float64(p.Lookups)
}

// Reset restores the initial state.
func (p *Predictor) Reset() {
	for i := range p.table {
		p.table[i] = 2
	}
	p.history = 0
	p.ras = p.ras[:0]
	p.Lookups, p.Mispredicts = 0, 0
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
