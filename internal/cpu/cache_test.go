package cpu

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCacheHitAfterMiss(t *testing.T) {
	c := NewCache("L1", 8*1024, 2, 64, 1, nil, 9)
	if lat := c.Access(0x100); lat != 10 {
		t.Errorf("first access latency = %d, want 10 (miss)", lat)
	}
	if lat := c.Access(0x100); lat != 1 {
		t.Errorf("second access latency = %d, want 1 (hit)", lat)
	}
	if lat := c.Access(0x108); lat != 1 {
		t.Errorf("same-line access latency = %d, want 1", lat)
	}
	if c.Hits != 2 || c.Misses != 1 {
		t.Errorf("hits=%d misses=%d, want 2,1", c.Hits, c.Misses)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// 2-way, 64-byte lines, 2 sets => 256-byte cache. Addresses mapping to
	// set 0: 0, 128, 256, ...
	c := NewCache("tiny", 256, 2, 64, 1, nil, 9)
	c.Access(0)   // miss
	c.Access(128) // miss, set 0 now {0,128}
	c.Access(0)   // hit, refreshes 0
	c.Access(256) // miss, evicts 128 (LRU)
	if lat := c.Access(0); lat != 1 {
		t.Error("line 0 should still be resident")
	}
	if lat := c.Access(128); lat != 10 {
		t.Error("line 128 should have been evicted")
	}
}

func TestCacheBadGeometryPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewCache("x", 0, 2, 64, 1, nil, 0) },
		func() { NewCache("x", 100, 2, 64, 1, nil, 0) },    // not divisible
		func() { NewCache("x", 3*64*2, 2, 64, 1, nil, 0) }, // 3 sets: not power of two
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid geometry did not panic")
				}
			}()
			f()
		}()
	}
}

func TestHierarchyLatencies(t *testing.T) {
	h := NewHierarchy(Table2())
	// Cold: misses L1 and L2 -> 1 + (3 + 7) = 11.
	if lat := h.Access(0x4000); lat != 11 {
		t.Errorf("cold access = %d, want 11", lat)
	}
	// Now in both levels: L1 hit.
	if lat := h.Access(0x4000); lat != 1 {
		t.Errorf("warm access = %d, want 1", lat)
	}
}

func TestHierarchyL2HitAfterL1Evict(t *testing.T) {
	p := Table2()
	h := NewHierarchy(p)
	h.Access(0)
	// Thrash L1's set 0 (64 sets, so addresses 64*64 apart alias).
	setStride := uint64(p.L1Size / p.L1Assoc) // bytes covering all sets once per way
	for i := uint64(1); i <= 4; i++ {
		h.Access(i * setStride)
	}
	// 0 evicted from L1 but resident in L2: 1 + 3.
	if lat := h.Access(0); lat != 4 {
		t.Errorf("L2 hit latency = %d, want 4", lat)
	}
}

func TestCacheSequentialMissRate(t *testing.T) {
	h := NewHierarchy(Table2())
	// Stream 1MB sequentially: expect ~1/8 L1 miss rate (64B line / 8B words).
	for a := uint64(0); a < 1<<20; a += 8 {
		h.Access(a)
	}
	mr := h.L1.MissRate()
	if mr < 0.11 || mr > 0.14 {
		t.Errorf("sequential L1 miss rate = %.3f, want ~0.125", mr)
	}
}

func TestCacheRandomMissRateLargeFootprint(t *testing.T) {
	h := NewHierarchy(Table2())
	rng := rand.New(rand.NewSource(3))
	foot := uint64(8 << 20) // 8MB >> L2
	for i := 0; i < 200000; i++ {
		h.Access(uint64(rng.Int63()) % foot)
	}
	if mr := h.L1.MissRate(); mr < 0.9 {
		t.Errorf("random 8MB L1 miss rate = %.3f, want > 0.9", mr)
	}
	if mr := h.L2.MissRate(); mr < 0.9 {
		t.Errorf("random 8MB L2 miss rate = %.3f, want > 0.9", mr)
	}
}

func TestCacheSmallFootprintAllHits(t *testing.T) {
	h := NewHierarchy(Table2())
	// 4KB fits in 8KB L1: after one warm pass, all hits.
	for pass := 0; pass < 3; pass++ {
		for a := uint64(0); a < 4096; a += 8 {
			h.Access(a)
		}
	}
	if h.L1.Misses != 64 { // 4096/64 compulsory
		t.Errorf("misses = %d, want 64 compulsory only", h.L1.Misses)
	}
}

func TestCacheReset(t *testing.T) {
	h := NewHierarchy(Table2())
	h.Access(0x123456)
	h.Reset()
	if h.L1.Hits != 0 || h.L1.Misses != 0 || h.L2.Misses != 0 {
		t.Error("Reset did not clear counters")
	}
	if lat := h.Access(0x123456); lat != 11 {
		t.Errorf("post-reset access = %d, want cold 11", lat)
	}
}

func TestCacheAccessesNeverNegativeProperty(t *testing.T) {
	c := NewCache("p", 1024, 4, 32, 2, nil, 8)
	f := func(addrs []uint32) bool {
		for _, a := range addrs {
			lat := c.Access(uint64(a))
			if lat != 2 && lat != 10 {
				return false
			}
		}
		return c.Hits+c.Misses >= uint64(len(addrs))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPrefetchHelpsStreaming(t *testing.T) {
	plain := NewHierarchy(Table2())
	pf := NewHierarchy(Table2())
	pf.Prefetch = true
	var latPlain, latPf int
	for a := uint64(0); a < 1<<19; a += 8 {
		latPlain += plain.Access(a)
		latPf += pf.Access(a)
	}
	if latPf >= latPlain {
		t.Errorf("prefetch did not help streaming: %d vs %d", latPf, latPlain)
	}
	// Miss-triggered next-line prefetch halves streaming misses (every
	// other line arrives early; its hits do not trigger further prefetch).
	if pf.L1.MissRate() > 0.6*plain.L1.MissRate() {
		t.Errorf("prefetch miss rate %.3f, want <= 0.6x of %.3f", pf.L1.MissRate(), plain.L1.MissRate())
	}
}

func TestPrefetchNeutralOnRandom(t *testing.T) {
	plain := NewHierarchy(Table2())
	pf := NewHierarchy(Table2())
	pf.Prefetch = true
	rng := rand.New(rand.NewSource(11))
	foot := uint64(8 << 20)
	var latPlain, latPf int
	for i := 0; i < 100000; i++ {
		a := (uint64(rng.Int63()) % (foot / 8)) * 8
		latPlain += plain.Access(a)
		latPf += pf.Access(a)
	}
	// Random access gains nothing (within a few percent either way).
	ratio := float64(latPf) / float64(latPlain)
	if ratio < 0.9 || ratio > 1.1 {
		t.Errorf("prefetch changed random-access cost by %.2fx", ratio)
	}
}

func BenchmarkAblationPrefetch(b *testing.B) {
	for _, pfOn := range []bool{false, true} {
		name := "off"
		if pfOn {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			h := NewHierarchy(Table2())
			h.Prefetch = pfOn
			for i := 0; i < b.N; i++ {
				for a := uint64(0); a < 1<<16; a += 8 {
					h.Access(a)
				}
			}
		})
	}
}
