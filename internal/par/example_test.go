package par_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/par"
)

// Example shows the minimal QSM program: every processor publishes a value,
// synchronizes, and reads everyone else's.
func Example() {
	m := par.NewMachine(4, par.Options{Seed: 1})
	err := m.Run(func(ctx core.Ctx) {
		h := ctx.Register("vals", ctx.P())
		ctx.Sync()
		ctx.Put(h, ctx.ID(), []int64{int64(ctx.ID() * ctx.ID())})
		ctx.Sync()
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(m.Array("vals"))
	// Output: [0 1 4 9]
}
