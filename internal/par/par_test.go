package par

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/cpu"
)

func TestBarriersRelease(t *testing.T) {
	for _, tc := range []struct {
		name string
		mk   func(n int) Barrier
	}{
		{"spin", func(n int) Barrier { return NewSpinBarrier(n) }},
		{"chan", func(n int) Barrier { return NewChanBarrier(n) }},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			const n, rounds = 8, 100
			b := tc.mk(n)
			counts := make([]int, n)
			var wg sync.WaitGroup
			for i := 0; i < n; i++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					for r := 0; r < rounds; r++ {
						counts[id]++
						b.Wait(id)
						// After the barrier every participant must have
						// completed round r.
						for j := 0; j < n; j++ {
							if counts[j] < r+1 {
								t.Errorf("round %d: participant %d lagging", r, j)
								return
							}
						}
						b.Wait(id)
					}
				}(i)
			}
			wg.Wait()
		})
	}
}

func TestBarrierZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewSpinBarrier(0) did not panic")
		}
	}()
	NewSpinBarrier(0)
}

func TestPutVisibleAfterSync(t *testing.T) {
	m := NewMachine(4, Options{Seed: 1})
	err := m.Run(func(ctx core.Ctx) {
		h := ctx.Register("a", 4)
		ctx.Sync()
		ctx.Put(h, ctx.ID(), []int64{int64(ctx.ID() + 10)})
		ctx.Sync()
		got := make([]int64, 4)
		ctx.Get(h, 0, got)
		ctx.Sync()
		for i, v := range got {
			if v != int64(i+10) {
				panic("wrong value")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGetSeesPrePhaseState(t *testing.T) {
	m := NewMachine(2, Options{Seed: 1})
	err := m.Run(func(ctx core.Ctx) {
		h := ctx.Register("a", 2)
		ctx.Sync()
		if ctx.ID() == 0 {
			ctx.Put(h, 0, []int64{1, 1})
		}
		ctx.Sync()
		// Phase: proc 0 writes word 1; proc 1 reads word 0. Reads must see
		// the values from the start of the phase even though a write to a
		// different word is in flight.
		if ctx.ID() == 0 {
			ctx.Put(h, 1, []int64{99})
		}
		got := make([]int64, 1)
		if ctx.ID() == 1 {
			ctx.Get(h, 1, got)
		}
		ctx.Sync()
		if ctx.ID() == 1 && got[0] != 1 {
			panic("get saw same-phase write")
		}
		// Next phase the write is visible.
		if ctx.ID() == 1 {
			ctx.Get(h, 1, got)
		}
		ctx.Sync()
		if ctx.ID() == 1 && got[0] != 99 {
			panic("write not visible next phase")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIndexedOps(t *testing.T) {
	m := NewMachine(4, Options{Seed: 1})
	const n = 64
	err := m.Run(func(ctx core.Ctx) {
		h := ctx.Register("a", n)
		ctx.Sync()
		// Each proc writes a strided set of words.
		var idx []int
		var vals []int64
		for i := ctx.ID(); i < n; i += ctx.P() {
			idx = append(idx, i)
			vals = append(vals, int64(i*i))
		}
		ctx.PutIndexed(h, idx, vals)
		ctx.Sync()
		// Each proc gathers a different strided set.
		ridx := make([]int, 0, n/4)
		for i := (ctx.ID() + 1) % ctx.P(); i < n; i += ctx.P() {
			ridx = append(ridx, i)
		}
		dst := make([]int64, len(ridx))
		ctx.GetIndexed(h, ridx, dst)
		ctx.Sync()
		for k, i := range ridx {
			if dst[k] != int64(i*i) {
				panic("bad indexed value")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentWritesDeterministic(t *testing.T) {
	// Two procs write the same word in the same phase (kappa = 2). The
	// queuing model allows it; the runtime must resolve deterministically
	// (source order: highest id applies last).
	for trial := 0; trial < 10; trial++ {
		m := NewMachine(4, Options{Seed: int64(trial)})
		var got int64
		err := m.Run(func(ctx core.Ctx) {
			h := ctx.Register("a", 1)
			ctx.Sync()
			ctx.Put(h, 0, []int64{int64(ctx.ID() + 100)})
			ctx.Sync()
			d := make([]int64, 1)
			if ctx.ID() == 0 {
				ctx.Get(h, 0, d)
			}
			ctx.Sync()
			if ctx.ID() == 0 {
				got = d[0]
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		if got != 103 {
			t.Fatalf("trial %d: conflicting write resolved to %d, want 103", trial, got)
		}
	}
}

func TestRegisterSameNameSharedAndSized(t *testing.T) {
	m := NewMachine(3, Options{})
	hs := make([]core.Handle, 3)
	err := m.Run(func(ctx core.Ctx) {
		hs[ctx.ID()] = ctx.Register("shared", 10)
		ctx.Sync()
	})
	if err != nil {
		t.Fatal(err)
	}
	if hs[0] != hs[1] || hs[1] != hs[2] {
		t.Errorf("handles differ: %v", hs)
	}
	if m.Array("shared") == nil || len(m.Array("shared")) != 10 {
		t.Error("Array lookup failed")
	}
	if m.Array("nope") != nil {
		t.Error("unknown array should be nil")
	}
}

func TestRegisterSizeMismatchPanics(t *testing.T) {
	m := NewMachine(1, Options{})
	err := m.Run(func(ctx core.Ctx) {
		ctx.Register("a", 10)
		ctx.Register("a", 20)
	})
	if err == nil {
		t.Fatal("size mismatch should produce an error")
	}
}

func TestOutOfBoundsPanics(t *testing.T) {
	m := NewMachine(1, Options{})
	err := m.Run(func(ctx core.Ctx) {
		h := ctx.Register("a", 4)
		ctx.Sync()
		ctx.Put(h, 3, []int64{1, 2})
	})
	if err == nil {
		t.Fatal("out-of-bounds put should produce an error")
	}
}

func TestOwnership(t *testing.T) {
	m := NewMachine(4, Options{})
	hs := make([]core.Handle, 4)
	if err := m.Run(func(ctx core.Ctx) {
		hs[ctx.ID()] = ctx.Register("a", 10) // block = 3: owners 0,0,0,1,1,1,2,2,2,3
		ctx.Sync()
	}); err != nil {
		t.Fatal(err)
	}
	h := hs[0]
	wantOwners := []int{0, 0, 0, 1, 1, 1, 2, 2, 2, 3}
	for i, w := range wantOwners {
		if o := m.OwnerOf(h, i); o != w {
			t.Errorf("OwnerOf(%d) = %d, want %d", i, o, w)
		}
	}
	per := m.PerOwner(h, 1, 8) // words 1..8: owners 0,0,1,1,1,2,2,2
	want := []int{2, 3, 3, 0}
	for i := range want {
		if per[i] != want[i] {
			t.Errorf("PerOwner = %v, want %v", per, want)
			break
		}
	}
}

func TestRunProfiledCountsRemoteWords(t *testing.T) {
	m := NewMachine(4, Options{})
	prof, err := m.RunProfiled(func(ctx core.Ctx) {
		h := ctx.Register("a", 4) // one word per proc
		ctx.Sync()
		ctx.Put(h, ctx.ID(), []int64{1}) // local: no communication
		ctx.Sync()
		d := make([]int64, 4)
		ctx.Get(h, 0, d) // reads 3 remote words + 1 local
		ctx.Sync()
		ctx.Compute(cpu.BlockSum(100))
	}, core.Flags{})
	if err != nil {
		t.Fatal(err)
	}
	if prof.NumPhases() < 3 {
		t.Fatalf("phases = %d, want >= 3", prof.NumPhases())
	}
	// Phase 1: puts are all local.
	if rw := prof.Phases[1].MaxRW(); rw != 0 {
		t.Errorf("local puts counted as remote: m_rw = %d", rw)
	}
	// Phase 2: each proc reads 3 remote words.
	if rw := prof.Phases[2].MaxRW(); rw != 3 {
		t.Errorf("phase 2 m_rw = %d, want 3", rw)
	}
	// Compute charged in final phase.
	last := prof.Phases[prof.NumPhases()-1]
	if last.MaxOps() == 0 {
		t.Error("compute ops not recorded")
	}
}

func TestRunProfiledDetectsRuleViolation(t *testing.T) {
	m := NewMachine(2, Options{})
	_, err := m.RunProfiled(func(ctx core.Ctx) {
		h := ctx.Register("a", 2)
		ctx.Sync()
		if ctx.ID() == 0 {
			ctx.Put(h, 0, []int64{1})
		} else {
			d := make([]int64, 1)
			ctx.Get(h, 0, d) // same word read and written in one phase
		}
		ctx.Sync()
	}, core.Flags{CheckRules: true})
	if err == nil {
		t.Fatal("read+write of same word in one phase not detected")
	}
}

func TestRunProfiledKappa(t *testing.T) {
	m := NewMachine(4, Options{})
	prof, err := m.RunProfiled(func(ctx core.Ctx) {
		h := ctx.Register("a", 8)
		ctx.Sync()
		d := make([]int64, 1)
		ctx.Get(h, 0, d) // all 4 procs read word 0: kappa = 4
		ctx.Sync()
	}, core.Flags{TrackKappa: true})
	if err != nil {
		t.Fatal(err)
	}
	if k := prof.Phases[1].Kappa; k != 4 {
		t.Errorf("kappa = %d, want 4", k)
	}
}

func TestChanBarrierMachine(t *testing.T) {
	m := NewMachine(4, Options{Barrier: NewChanBarrier(4)})
	err := m.Run(func(ctx core.Ctx) {
		h := ctx.Register("a", 4)
		ctx.Sync()
		ctx.Put(h, ctx.ID(), []int64{int64(ctx.ID())})
		ctx.Sync()
	})
	if err != nil {
		t.Fatal(err)
	}
	data := m.Array("a")
	for i, v := range data {
		if v != int64(i) {
			t.Fatalf("data = %v", data)
		}
	}
}

func TestRandDeterministicPerProc(t *testing.T) {
	draw := func() []int64 {
		m := NewMachine(4, Options{Seed: 99})
		out := make([]int64, 4)
		if err := m.Run(func(ctx core.Ctx) {
			out[ctx.ID()] = ctx.Rand().Int63()
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := draw(), draw()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("per-proc rand not reproducible")
		}
	}
	if a[0] == a[1] {
		t.Error("different procs should get different streams")
	}
}

func BenchmarkSpinBarrier(b *testing.B) {
	benchBarrier(b, NewSpinBarrier(4))
}

func BenchmarkChanBarrier(b *testing.B) {
	benchBarrier(b, NewChanBarrier(4))
}

func benchBarrier(b *testing.B, bar Barrier) {
	const n = 4
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for r := 0; r < b.N; r++ {
				bar.Wait(id)
			}
		}(i)
	}
	wg.Wait()
}

func BenchmarkNativeSyncPhase(b *testing.B) {
	m := NewMachine(4, Options{})
	if err := m.Run(func(ctx core.Ctx) {
		h := ctx.Register("a", 1024)
		ctx.Sync()
		buf := make([]int64, 256)
		for i := 0; i < b.N; i++ {
			ctx.Put(h, ctx.ID()*256, buf)
			ctx.Sync()
		}
	}); err != nil {
		b.Fatal(err)
	}
}

func TestFreeAndReuseNative(t *testing.T) {
	m := NewMachine(3, Options{Seed: 50})
	if err := m.Run(func(ctx core.Ctx) {
		h := ctx.Register("tmp", 6)
		ctx.Sync()
		ctx.Put(h, ctx.ID()*2, []int64{1, 2})
		ctx.Sync()
		ctx.Free(h)
		ctx.Sync()
		h2 := ctx.Register("tmp", 3)
		ctx.Sync()
		if ctx.ID() == 0 {
			ctx.Put(h2, 0, []int64{9})
		}
		ctx.Sync()
	}); err != nil {
		t.Fatal(err)
	}
	if got := len(m.Array("tmp")); got != 3 {
		t.Fatalf("reused array length = %d, want 3", got)
	}
}

func TestUseAfterFreePanicsNative(t *testing.T) {
	m := NewMachine(2, Options{Seed: 51})
	err := m.Run(func(ctx core.Ctx) {
		h := ctx.Register("tmp", 4)
		ctx.Sync()
		ctx.Free(h)
		ctx.Sync()
		ctx.Put(h, 0, []int64{1})
	})
	if err == nil {
		t.Fatal("use after free should error")
	}
}

func TestWriteLocalForeignPanicsNative(t *testing.T) {
	m := NewMachine(4, Options{Seed: 52})
	err := m.Run(func(ctx core.Ctx) {
		h := ctx.Register("a", 16)
		ctx.Sync()
		// Every processor attempts a foreign write (its successor's block),
		// so all of them panic and nobody is left waiting at a barrier.
		ctx.WriteLocal(h, ((ctx.ID()+1)%4)*4, []int64{1})
	})
	if err == nil {
		t.Fatal("foreign WriteLocal should error")
	}
}

func TestRegisterSpecLayouts(t *testing.T) {
	m := NewMachine(4, Options{Seed: 53})
	if err := m.Run(func(ctx core.Ctx) {
		hashed := ctx.RegisterSpec("h", 64, core.LayoutSpec{Kind: core.LayoutHashed})
		single := ctx.RegisterSpec("s", 8, core.LayoutSpec{Kind: core.LayoutSingle, Owner: 2})
		ctx.Sync()
		if ctx.ID() == 0 {
			idx := make([]int, 64)
			vals := make([]int64, 64)
			for i := range idx {
				idx[i] = i
				vals[i] = int64(i)
			}
			ctx.PutIndexed(hashed, idx, vals)
			ctx.Put(single, 0, []int64{1, 2, 3, 4, 5, 6, 7, 8})
		}
		ctx.Sync()
		got := make([]int64, 64)
		ctx.Get(hashed, 0, got)
		s := make([]int64, 8)
		if ctx.ID() == 2 {
			ctx.ReadLocal(single, 0, s) // single-owner array is local to proc 2
		}
		ctx.Sync()
		for i, v := range got {
			if v != int64(i) {
				panic("hashed layout corrupted data")
			}
		}
		if ctx.ID() == 2 && s[7] != 8 {
			panic("single layout wrong")
		}
	}); err != nil {
		t.Fatal(err)
	}
}
