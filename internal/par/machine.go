package par

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/stats"
)

// Options configure a native machine.
type Options struct {
	// Seed drives every processor's private random source.
	Seed int64
	// Barrier overrides the synchronization primitive; nil uses a
	// SpinBarrier.
	Barrier Barrier
}

// Machine is a native QSM machine of p goroutine processors over a shared
// address space. Shared arrays default to a blocked layout (word i of an
// n-word array is owned by processor min(i/ceil(n/p), p-1)); RegisterSpec
// selects others. It implements core.Ownership so runs can be cost-profiled
// with core.NewRecorder.
type Machine struct {
	p       int
	opts    Options
	barrier Barrier

	mu     sync.Mutex
	arrays []*array
	byName map[string]core.Handle

	// mail[src*p+dst] holds put segments from src to apply on dst's side;
	// src writes only its own row, so no locking is needed beyond the
	// barrier's ordering.
	mail []([]putSeg)
}

type array struct {
	name  string
	data  []int64
	lay   core.Layout
	frees int // processors that have called Free; destroyed at P
	freed bool
}

type putSeg struct {
	h    core.Handle
	off  int   // start offset for contiguous; unused for indexed
	idx  []int // nil for contiguous
	vals []int64
}

// NewMachine creates a native machine with p processors.
func NewMachine(p int, opts Options) *Machine {
	if p <= 0 {
		panic("par: p must be positive")
	}
	b := opts.Barrier
	if b == nil {
		b = NewSpinBarrier(p)
	}
	return &Machine{
		p:       p,
		opts:    opts,
		barrier: b,
		byName:  map[string]core.Handle{},
		mail:    make([][]putSeg, p*p),
	}
}

// P returns the processor count.
func (m *Machine) P() int { return m.p }

// Run executes prog on all processors and blocks until every processor
// returns. It returns an error if any processor panicked.
func (m *Machine) Run(prog core.Program) error {
	errs := make([]error, m.p)
	var wg sync.WaitGroup
	for i := 0; i < m.p; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					errs[id] = fmt.Errorf("par: processor %d panicked: %v", id, r)
				}
			}()
			prog(&proc{m: m, id: id, rng: stats.NewRand(m.opts.Seed, int64(id))})
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// RunProfiled executes prog with cost recording and returns the phase
// profile alongside any bulk-synchrony violation or panic.
func (m *Machine) RunProfiled(prog core.Program, flags core.Flags) (*core.Profile, error) {
	col := core.NewCollector(m.p, m, cpu.NewAnalytic(cpu.Table2()), flags)
	err := m.Run(func(ctx core.Ctx) { prog(core.NewRecorder(ctx, col)) })
	profile, perr := col.Finish()
	if err == nil {
		err = perr
	}
	return profile, err
}

// Array returns the backing data of a registered array, for inspection
// after Run returns. It returns nil if the name was never registered.
func (m *Machine) Array(name string) []int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.byName[name]
	if !ok {
		return nil
	}
	return m.arrays[h].data
}

// lookup is arr under the machine lock; the deferred unlock releases the
// mutex even when arr panics (a contract violation by one processor must
// not deadlock the others).
func (m *Machine) lookup(h core.Handle) *array {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.arr(h)
}

func (m *Machine) arr(h core.Handle) *array {
	if h < 0 || int(h) >= len(m.arrays) {
		panic(fmt.Sprintf("par: invalid handle %d", h))
	}
	a := m.arrays[h]
	if a.freed {
		panic(fmt.Sprintf("par: array %q used after Free", a.name))
	}
	return a
}

func (m *Machine) free(h core.Handle) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if h < 0 || int(h) >= len(m.arrays) {
		panic(fmt.Sprintf("par: invalid handle %d", h))
	}
	a := m.arrays[h]
	if a.freed {
		return
	}
	a.frees++
	if a.frees < m.p {
		// Collective: peers may still access the array this phase; it is
		// destroyed once every processor has freed it.
		return
	}
	a.freed = true
	a.data = nil
	delete(m.byName, a.name)
}

// OwnerOf implements core.Ownership.
func (m *Machine) OwnerOf(h core.Handle, i int) int {
	m.mu.Lock()
	a := m.arr(h)
	m.mu.Unlock()
	return a.lay.OwnerOf(i)
}

// PerOwner implements core.Ownership.
func (m *Machine) PerOwner(h core.Handle, off, n int) []int {
	m.mu.Lock()
	a := m.arr(h)
	m.mu.Unlock()
	return a.lay.PerOwner(off, n)
}

func (m *Machine) register(name string, n int, spec core.LayoutSpec) core.Handle {
	m.mu.Lock()
	defer m.mu.Unlock()
	if h, ok := m.byName[name]; ok {
		if len(m.arrays[h].data) != n {
			panic(fmt.Sprintf("par: array %q re-registered with size %d != %d", name, n, len(m.arrays[h].data)))
		}
		return h
	}
	h := core.Handle(len(m.arrays))
	hseed := stats.Mix64(uint64(m.opts.Seed), uint64(h)+0xabcd)
	m.arrays = append(m.arrays, &array{
		name: name,
		data: make([]int64, n),
		lay:  core.ResolveLayout(spec, n, m.p, core.LayoutBlocked, hseed),
	})
	m.byName[name] = h
	return h
}
