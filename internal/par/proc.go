package par

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/cpu"
)

// proc is the per-processor core.Ctx of the native machine.
type proc struct {
	m    *Machine
	id   int
	rng  *rand.Rand
	gets []getOp
}

type getOp struct {
	h   core.Handle
	off int
	idx []int // nil for contiguous
	dst []int64
}

var _ core.Ctx = (*proc)(nil)

func (pc *proc) ID() int          { return pc.id }
func (pc *proc) P() int           { return pc.m.p }
func (pc *proc) Rand() *rand.Rand { return pc.rng }

func (pc *proc) Register(name string, n int) core.Handle {
	return pc.m.register(name, n, core.LayoutSpec{})
}

// RegisterSpec registers an array with an explicit layout.
func (pc *proc) RegisterSpec(name string, n int, spec core.LayoutSpec) core.Handle {
	return pc.m.register(name, n, spec)
}

// Free un-registers an array.
func (pc *proc) Free(h core.Handle) { pc.m.free(h) }

// ReadLocal immediately reads from this processor's own partition. Only the
// owner ever writes those words outside Sync, so the read is race-free.
func (pc *proc) ReadLocal(h core.Handle, off int, dst []int64) {
	if len(dst) == 0 {
		return
	}
	a := pc.m.lookup(h)
	pc.bounds(a, off, len(dst))
	if !a.lay.OwnsRange(pc.id, off, len(dst)) {
		panic(fmt.Sprintf("par: ReadLocal of %q[%d:%d) not owned by proc %d", a.name, off, off+len(dst), pc.id))
	}
	copy(dst, a.data[off:off+len(dst)])
}

// WriteLocal immediately writes into this processor's own partition.
func (pc *proc) WriteLocal(h core.Handle, off int, src []int64) {
	if len(src) == 0 {
		return
	}
	a := pc.m.lookup(h)
	pc.bounds(a, off, len(src))
	if !a.lay.OwnsRange(pc.id, off, len(src)) {
		panic(fmt.Sprintf("par: WriteLocal of %q[%d:%d) not owned by proc %d", a.name, off, off+len(src), pc.id))
	}
	copy(a.data[off:off+len(src)], src)
}

// Put enqueues the write, routed to each destination word's owner so that
// applying writes after the barrier touches only owner-disjoint state (no
// two goroutines ever race on a word even when the algorithm's contention
// kappa exceeds one).
func (pc *proc) Put(h core.Handle, off int, src []int64) {
	if len(src) == 0 {
		return
	}
	a := pc.m.lookup(h)
	pc.bounds(a, off, len(src))
	p := pc.m.p
	base := off
	a.lay.Spans(off, len(src), func(o, so, cnt int) {
		vals := make([]int64, cnt)
		copy(vals, src[so-base:so-base+cnt])
		box := &pc.m.mail[pc.id*p+o]
		*box = append(*box, putSeg{h: h, off: so, vals: vals})
	})
}

// PutIndexed enqueues scattered writes, grouped by owner.
func (pc *proc) PutIndexed(h core.Handle, idx []int, src []int64) {
	if len(idx) != len(src) {
		panic(fmt.Sprintf("par: PutIndexed len(idx)=%d != len(src)=%d", len(idx), len(src)))
	}
	if len(idx) == 0 {
		return
	}
	a := pc.m.lookup(h)
	p := pc.m.p
	byOwner := make(map[int]*putSeg)
	for i, ix := range idx {
		if ix < 0 || ix >= len(a.data) {
			panic(fmt.Sprintf("par: index %d out of range for %q (len %d)", ix, a.name, len(a.data)))
		}
		o := a.lay.OwnerOf(ix)
		seg := byOwner[o]
		if seg == nil {
			seg = &putSeg{h: h}
			byOwner[o] = seg
		}
		seg.idx = append(seg.idx, ix)
		seg.vals = append(seg.vals, src[i])
	}
	for o, seg := range byOwner {
		box := &pc.m.mail[pc.id*p+o]
		*box = append(*box, *seg)
	}
}

// Get enqueues a contiguous read, satisfied during Sync from pre-phase state.
func (pc *proc) Get(h core.Handle, off int, dst []int64) {
	if len(dst) == 0 {
		return
	}
	a := pc.m.lookup(h)
	pc.bounds(a, off, len(dst))
	pc.gets = append(pc.gets, getOp{h: h, off: off, dst: dst})
}

// GetIndexed enqueues scattered reads.
func (pc *proc) GetIndexed(h core.Handle, idx []int, dst []int64) {
	if len(idx) != len(dst) {
		panic(fmt.Sprintf("par: GetIndexed len(idx)=%d != len(dst)=%d", len(idx), len(dst)))
	}
	if len(idx) == 0 {
		return
	}
	pc.gets = append(pc.gets, getOp{h: h, idx: idx, dst: dst})
}

// Sync ends the phase: reads see pre-phase state, then routed writes are
// applied by their owners, then all processors synchronize.
func (pc *proc) Sync() {
	m := pc.m
	b := m.barrier

	// Round 1: all enqueues published (the mail rows are written only by
	// their source goroutine; the barrier orders them before readers).
	b.Wait(pc.id)

	// Serve this processor's gets directly from the shared arrays, which
	// still hold pre-phase values.
	for _, g := range pc.gets {
		a := m.arrays[g.h]
		if g.idx == nil {
			copy(g.dst, a.data[g.off:g.off+len(g.dst)])
			continue
		}
		for i, ix := range g.idx {
			g.dst[i] = a.data[ix]
		}
	}
	pc.gets = pc.gets[:0]

	// Round 2: all reads complete before any write lands.
	b.Wait(pc.id)

	// Apply writes routed to this processor, in source order so concurrent
	// writes to one word resolve deterministically (highest source wins).
	p := m.p
	for src := 0; src < p; src++ {
		box := &m.mail[src*p+pc.id]
		for _, seg := range *box {
			a := m.arrays[seg.h]
			if seg.idx == nil {
				copy(a.data[seg.off:seg.off+len(seg.vals)], seg.vals)
				continue
			}
			for i, ix := range seg.idx {
				a.data[ix] = seg.vals[i]
			}
		}
		*box = (*box)[:0]
	}

	// Round 3: writes visible to the next phase.
	b.Wait(pc.id)
}

// Compute is a no-op on the native backend: the local work is real. The
// charge is still observable through a core.Recorder wrapper.
func (pc *proc) Compute(cpu.OpBlock) {}

func (pc *proc) bounds(a *array, off, n int) {
	if off < 0 || off+n > len(a.data) {
		panic(fmt.Sprintf("par: range [%d,%d) out of bounds for %q (len %d)", off, off+n, a.name, len(a.data)))
	}
}
