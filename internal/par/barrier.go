// Package par is the native backend of the QSM model: a bulk-synchronous
// runtime that executes a core.Program on p real goroutines with hand-rolled
// synchronization primitives. It gives the same phase semantics as the
// simulated machine — puts become visible at Sync, gets read the state the
// phase started with — so an algorithm validated on the simulator runs
// unchanged, in parallel, on real hardware.
package par

import (
	"runtime"
	"sync/atomic"
)

// Barrier synchronizes a fixed group of p participants. Each participant
// passes its own index to Wait; Wait returns only after all p have arrived.
type Barrier interface {
	Wait(id int)
}

// SpinBarrier is a sense-reversing centralized barrier. Arrivals are counted
// with a single atomic; the last arrival flips the global sense, releasing
// the spinners. Spinning yields to the scheduler, so it remains correct
// (if slower) when goroutines outnumber cores.
type SpinBarrier struct {
	n     int32
	count atomic.Int32
	sense atomic.Uint32
	local []uint32 // per-participant sense, padded to avoid false sharing
}

const pad = 16 // uint32s per cache line (64 bytes)

// NewSpinBarrier creates a sense-reversing barrier for n participants.
func NewSpinBarrier(n int) *SpinBarrier {
	if n <= 0 {
		panic("par: barrier size must be positive")
	}
	return &SpinBarrier{n: int32(n), local: make([]uint32, n*pad)}
}

// Wait implements Barrier.
func (b *SpinBarrier) Wait(id int) {
	s := b.local[id*pad] ^ 1
	b.local[id*pad] = s
	if b.count.Add(1) == b.n {
		b.count.Store(0)
		b.sense.Store(s)
		return
	}
	for i := 0; b.sense.Load() != s; i++ {
		if i%64 == 63 {
			runtime.Gosched()
		}
	}
}

// ChanBarrier is a two-round channel-based dissemination barrier: each
// participant signals a coordinator, which releases everyone. It blocks in
// the scheduler instead of spinning, which is kinder under oversubscription;
// the package benchmarks compare the two (a Table 3 "L" ablation).
type ChanBarrier struct {
	n       int
	arrive  chan struct{}
	release []chan struct{}
}

// NewChanBarrier creates a channel-based barrier for n participants.
// Participant 0 acts as the coordinator.
func NewChanBarrier(n int) *ChanBarrier {
	if n <= 0 {
		panic("par: barrier size must be positive")
	}
	b := &ChanBarrier{n: n, arrive: make(chan struct{}, n)}
	b.release = make([]chan struct{}, n)
	for i := range b.release {
		b.release[i] = make(chan struct{}, 1)
	}
	return b
}

// Wait implements Barrier.
func (b *ChanBarrier) Wait(id int) {
	if id == 0 {
		for i := 0; i < b.n-1; i++ {
			<-b.arrive
		}
		for i := 1; i < b.n; i++ {
			b.release[i] <- struct{}{}
		}
		return
	}
	b.arrive <- struct{}{}
	<-b.release[id]
}
