package sim

// Server models a device that serves requests one at a time in FIFO order,
// such as a network interface serialising bytes or a memory bank servicing
// accesses. Use does not block the calling process; it accounts for queueing
// by tracking when the device next becomes free. This matches devices that
// operate asynchronously from the processor.
type Server struct {
	e      *Engine
	freeAt Time
	busy   Time // total busy cycles, for utilisation reporting
	uses   uint64
}

// NewServer creates a server bound to engine e, free from time zero.
func (e *Engine) NewServer() *Server { return &Server{e: e} }

// Use reserves the server for d cycles starting as soon as it is free.
// It returns the time the reservation starts and the time it ends.
func (s *Server) Use(d Time) (start, end Time) {
	start = s.e.now
	if s.freeAt > start {
		start = s.freeAt
	}
	end = start + d
	s.freeAt = end
	s.busy += d
	s.uses++
	return start, end
}

// UseAt is Use but with an earliest start time t >= now, for reservations
// made on behalf of a future event.
func (s *Server) UseAt(t Time, d Time) (start, end Time) {
	start = t
	if s.freeAt > start {
		start = s.freeAt
	}
	end = start + d
	s.freeAt = end
	s.busy += d
	s.uses++
	return start, end
}

// FreeAt returns the earliest time the server is idle.
func (s *Server) FreeAt() Time { return s.freeAt }

// BusyCycles returns the cumulative busy time.
func (s *Server) BusyCycles() Time { return s.busy }

// Uses returns how many reservations have been made.
func (s *Server) Uses() uint64 { return s.uses }

// Gate is a counting semaphore with FIFO queueing for processes that must
// block while holding a simulated resource, such as a bus with a bounded
// number of outstanding transactions.
type Gate struct {
	e       *Engine
	free    int
	waiters []*Proc
}

// NewGate creates a gate with capacity cap.
func (e *Engine) NewGate(cap int) *Gate {
	if cap <= 0 {
		panic("sim: gate capacity must be positive")
	}
	return &Gate{e: e, free: cap}
}

// Acquire blocks the calling process until a slot is free, then takes it.
func (g *Gate) Acquire(p *Proc) {
	p.checkCurrent("Gate.Acquire")
	for g.free == 0 {
		g.waiters = append(g.waiters, p)
		p.blockOn("gate acquire")
	}
	g.free--
}

// Release frees a slot and wakes the oldest waiter, if any.
func (g *Gate) Release() {
	g.free++
	if len(g.waiters) > 0 {
		w := g.waiters[0]
		g.waiters = g.waiters[1:]
		g.e.scheduleProc(g.e.now, w)
	}
}

// Free returns the number of available slots.
func (g *Gate) Free() int { return g.free }
