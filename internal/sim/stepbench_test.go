package sim

import (
	"fmt"
	"testing"
)

// BenchmarkStepProcVsGoroutine measures the per-event cost of the two
// process kinds on the same workload: a single process advancing the clock
// one cycle per event. The goroutine form pays two context switches per
// event; the stepped form a function call.
func BenchmarkStepProcVsGoroutine(b *testing.B) {
	b.Run("Goroutine", func(b *testing.B) {
		b.ReportAllocs()
		e := NewEngine()
		e.Spawn("ticker", func(p *Proc) {
			for i := 0; i < b.N; i++ {
				p.Advance(1)
			}
		})
		b.ResetTimer()
		if err := e.Run(); err != nil {
			b.Fatal(err)
		}
	})
	b.Run("StepProc", func(b *testing.B) {
		b.ReportAllocs()
		e := NewEngine()
		i := 0
		e.SpawnStep("ticker", func(sp *StepProc) Status {
			if i == b.N {
				return StepDone
			}
			i++
			return sp.Sleep(1)
		})
		b.ResetTimer()
		if err := e.Run(); err != nil {
			b.Fatal(err)
		}
	})
}

// schedShapes are the event-schedule shapes BenchmarkHeapVsCalendarQueue
// compares the schedulers under:
//
//   - uniform: 64 steppers with staggered coprime-ish periods — events spread
//     evenly over time, the calendar queue's favourable case.
//   - bursty: 64 steppers all on the same period — every instant is one big
//     same-timestamp cohort, which the nowq ring absorbs before either
//     scheduler is touched.
//   - membank: periods shaped like a contended bank queue — most wakes near
//     now plus a long service tail, the fig7 Conflict pattern.
var schedShapes = []struct {
	name   string
	period func(i int) Time
}{
	{"uniform", func(i int) Time { return Time(1 + i%7) }},
	{"bursty", func(i int) Time { return 5 }},
	{"membank", func(i int) Time {
		if i%8 == 0 {
			return 55 // in service at the bank
		}
		return Time(6 + i%3) // issuing / queued
	}},
}

// BenchmarkHeapVsCalendarQueue compares the 4-ary heap and the calendar
// queue on each schedule shape, with the same stepped processes so scheduler
// cost dominates.
func BenchmarkHeapVsCalendarQueue(b *testing.B) {
	for _, kind := range []Scheduler{SchedHeap, SchedCalendar} {
		for _, shape := range schedShapes {
			b.Run(fmt.Sprintf("%s/%s", kind, shape.name), func(b *testing.B) {
				b.ReportAllocs()
				e := NewEngineSched(kind)
				const procs = 64
				per := b.N/procs + 1
				for i := 0; i < procs; i++ {
					d := shape.period(i)
					j := 0
					e.SpawnStep("p", func(sp *StepProc) Status {
						if j == per {
							return StepDone
						}
						j++
						return sp.Sleep(d)
					})
				}
				b.ResetTimer()
				if err := e.Run(); err != nil {
					b.Fatal(err)
				}
			})
		}
	}
}
