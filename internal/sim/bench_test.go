package sim

import (
	"math/rand"
	"testing"
)

// BenchmarkEngineEventsPerSec drives the canonical hot path — a process
// advancing the clock one cycle per event — and reports allocations, which
// the event free list and closure-free resume are meant to hold near zero
// at steady state.
func BenchmarkEngineEventsPerSec(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine()
	e.Spawn("ticker", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Advance(1)
		}
	})
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkEngineManyProcsMixed exercises the 4-ary heap with 64 processes
// at staggered periods, the shape the multiprocessor simulation produces.
func BenchmarkEngineManyProcsMixed(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine()
	const procs = 64
	per := b.N/procs + 1
	for i := 0; i < procs; i++ {
		d := Time(1 + i%7)
		e.Spawn("p", func(p *Proc) {
			for j := 0; j < per; j++ {
				p.Advance(d)
			}
		})
	}
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkChanSendRecv measures a send/recv ping through the ring-buffered
// channel; steady state must not grow the ring or the backing array.
func BenchmarkChanSendRecv(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine()
	c := e.NewChan()
	e.Spawn("recv", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			c.Recv(p)
		}
	})
	e.Spawn("send", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Advance(1)
			c.Send(i)
		}
	})
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// TestChanRingReusesBuffer verifies the satellite fix for the old
// buf = buf[1:] retention bug: a channel cycled through many send/recv
// pairs must keep a small constant-size ring, not a backing array that
// grew with the number of messages ever sent.
func TestChanRingReusesBuffer(t *testing.T) {
	e := NewEngine()
	c := e.NewChan()
	e.Spawn("pump", func(p *Proc) {
		for i := 0; i < 10000; i++ {
			c.Send(i)
			if v, ok := c.TryRecv(); !ok || v.(int) != i {
				t.Errorf("TryRecv = %v,%v at %d", v, ok, i)
				return
			}
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(c.buf) > 8 {
		t.Errorf("ring capacity = %d after 10000 send/recv pairs, want <= 8", len(c.buf))
	}
}

// TestChanRingWrapOrder fills across a wrap boundary and checks FIFO order
// survives growth mid-stream.
func TestChanRingWrapOrder(t *testing.T) {
	e := NewEngine()
	c := e.NewChan()
	e.Spawn("pump", func(p *Proc) {
		next := 0 // next value expected out
		sent := 0
		for round := 0; round < 50; round++ {
			for i := 0; i < 3+round%5; i++ {
				c.Send(sent)
				sent++
			}
			for i := 0; i < 2+round%4 && c.Len() > 0; i++ {
				v, _ := c.TryRecv()
				if v.(int) != next {
					t.Errorf("got %v, want %d", v, next)
					return
				}
				next++
			}
		}
		for c.Len() > 0 {
			v, _ := c.TryRecv()
			if v.(int) != next {
				t.Errorf("drain got %v, want %d", v, next)
				return
			}
			next++
		}
		if next != sent {
			t.Errorf("drained %d values, sent %d", next, sent)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestEventFreeListReuse checks that sequential events recycle one struct
// instead of allocating per event.
func TestEventFreeListReuse(t *testing.T) {
	e := NewEngine()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < 1000 {
			e.After(1, tick)
		}
	}
	e.After(1, tick)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if n != 1000 {
		t.Fatalf("ran %d events, want 1000", n)
	}
	// Only one event is ever outstanding, so the free list holds one struct.
	if len(e.free) > 2 {
		t.Errorf("free list holds %d events, want <= 2", len(e.free))
	}
}

// TestHeapOrderProperty pushes events with random times and checks popMin
// yields nondecreasing (at, seq) order — the invariant the engine's
// determinism rests on.
func TestHeapOrderProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var h eventHeap
	const n = 2000
	for seq := 0; seq < n; seq++ {
		h.push(&event{at: Time(rng.Intn(97)), seq: uint64(seq)})
	}
	var prev *event
	for i := 0; i < n; i++ {
		ev := h.popMin()
		if ev == nil {
			t.Fatalf("heap empty after %d pops, want %d", i, n)
		}
		if prev != nil && eventLess(ev, prev) {
			t.Fatalf("pop %d out of order: (%d,%d) after (%d,%d)",
				i, ev.at, ev.seq, prev.at, prev.seq)
		}
		prev = ev
	}
	if h.popMin() != nil {
		t.Error("heap not empty after draining")
	}
}

// TestCancelledEventsRecycled ensures cancelled events are skipped and
// returned to the free list rather than firing or leaking.
func TestCancelledEventsRecycled(t *testing.T) {
	e := NewEngine()
	fired := 0
	for i := 0; i < 10; i++ {
		ev := e.schedule(Time(i+1), func() { fired++ })
		if i%2 == 1 {
			ev.Cancel()
		}
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != 5 {
		t.Errorf("fired %d events, want 5", fired)
	}
	if len(e.free) != 10 {
		t.Errorf("free list holds %d events, want all 10", len(e.free))
	}
}
