package sim

import (
	"fmt"
	"math/rand"
)

// procKill is the sentinel the engine panics a process goroutine with to
// terminate it at its block point (Reset terminating processes abandoned by
// Stop or a discarded deadlock). Spawn's deferred handler recognises it and
// unwinds the goroutine without recording an error.
type procKill struct{}

// Proc is a simulated process: a Go function scheduled cooperatively by the
// engine. All methods on Proc must be called from within the process's own
// function; they are not safe to call from outside the simulation.
type Proc struct {
	e      *Engine
	id     int
	name   string
	resume chan struct{}
	done   bool
	killed bool
	err    error
	rng    *rand.Rand

	// waitReason names the primitive the process is blocked on ("" while
	// runnable or merely advancing time); blockedAt is when it yielded.
	// Together they make deadlock reports actionable and feed the engine's
	// blocked-dwell histogram.
	waitReason string
	blockedAt  Time
}

// Spawn creates a process named name running fn, starting at the current
// simulated time. fn receives the Proc as its scheduling handle.
func (e *Engine) Spawn(name string, fn func(*Proc)) *Proc {
	p := &Proc{
		e:      e,
		id:     len(e.procs),
		name:   name,
		resume: make(chan struct{}),
	}
	e.procs = append(e.procs, p)
	go func() {
		<-p.resume
		defer func() {
			if r := recover(); r != nil {
				if _, isKill := r.(procKill); !isKill {
					p.err = fmt.Errorf("panic: %v", r)
				}
			}
			p.done = true
			e.yieldCh <- p
		}()
		if p.killed {
			// Terminated before its first step (Stop before the spawn
			// event fired): unwind without running the body.
			return
		}
		fn(p)
	}()
	e.scheduleProc(e.now, p)
	return p
}

// SpawnSeeded is Spawn with a process-local deterministic random source,
// available through Rand.
func (e *Engine) SpawnSeeded(name string, seed int64, fn func(*Proc)) *Proc {
	p := e.Spawn(name, fn)
	p.rng = rand.New(rand.NewSource(seed))
	return p
}

// ID returns the process's spawn index.
func (p *Proc) ID() int { return p.id }

// Name returns the process's name.
func (p *Proc) Name() string { return p.name }

// Engine returns the engine the process runs on.
func (p *Proc) Engine() *Engine { return p.e }

// Now returns the current simulated time.
func (p *Proc) Now() Time { return p.e.now }

// Rand returns the process-local random source, or nil if the process was
// created with Spawn rather than SpawnSeeded.
func (p *Proc) Rand() *rand.Rand { return p.rng }

// Done reports whether the process function has returned.
func (p *Proc) Done() bool { return p.done }

// block yields control to the engine until the process is resumed. Callers
// waiting on a primitive set waitReason first (blockOn); a plain time
// advance leaves it empty.
func (p *Proc) block() {
	p.blockedAt = p.e.now
	p.e.yieldCh <- p
	<-p.resume
	if p.killed {
		panic(procKill{})
	}
	if p.waitReason != "" {
		p.e.obsDwell.Observe(float64(p.e.now - p.blockedAt))
		p.waitReason = ""
	}
}

// blockOn is block with the wait reason recorded, for the waiting
// primitives (channel recv, signal wait, gate acquire).
func (p *Proc) blockOn(reason string) {
	p.waitReason = reason
	p.block()
}

// Advance suspends the process for d cycles of simulated time.
func (p *Proc) Advance(d Time) {
	p.checkCurrent("Advance")
	p.e.scheduleProc(p.e.now+d, p)
	p.block()
}

// Yield suspends the process and reschedules it at the current time, after
// all events already queued for this instant.
func (p *Proc) Yield() { p.Advance(0) }

func (p *Proc) checkCurrent(op string) {
	if p.e.current != p {
		panic(fmt.Sprintf("sim: %s called on process %q from outside it", op, p.name))
	}
}
