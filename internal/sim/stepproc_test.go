package sim

import (
	"fmt"
	"runtime"
	"testing"
	"time"
)

// TestStepProcSleepLoop drives a lone state-machine ticker and checks the
// clock and step count.
func TestStepProcSleepLoop(t *testing.T) {
	e := NewEngine()
	n := 0
	e.SpawnStep("ticker", func(sp *StepProc) Status {
		if n == 10 {
			return StepDone
		}
		n++
		return sp.Sleep(3)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Errorf("steps = %d, want 10", n)
	}
	if e.Now() != 30 {
		t.Errorf("Now() = %d, want 30", e.Now())
	}
}

// TestStepProcInterleavesWithProcs pins the core determinism claim: a
// goroutine process and a state-machine process doing the same schedule of
// advances interleave in exact spawn order at every shared timestamp,
// regardless of their kind.
func TestStepProcInterleavesWithProcs(t *testing.T) {
	e := NewEngine()
	var trace []string
	e.Spawn("g", func(p *Proc) {
		for i := 0; i < 4; i++ {
			trace = append(trace, fmt.Sprintf("g@%d", p.Now()))
			p.Advance(2)
		}
	})
	i := 0
	e.SpawnStep("s", func(sp *StepProc) Status {
		trace = append(trace, fmt.Sprintf("s@%d", sp.Now()))
		if i++; i == 4 {
			return StepDone
		}
		return sp.Sleep(2)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"g@0", "s@0", "g@2", "s@2", "g@4", "s@4", "g@6", "s@6"}
	if fmt.Sprint(trace) != fmt.Sprint(want) {
		t.Errorf("trace = %v, want %v", trace, want)
	}
}

// TestStepProcSleepUntilPastPanics mirrors the engine's scheduling-in-the-
// past panic for the stepped API. Unlike a goroutine Proc, whose panic is
// captured as a process error, a StepProc runs on the engine's goroutine, so
// its panic propagates straight out of Run.
func TestStepProcSleepUntilPastPanics(t *testing.T) {
	e := NewEngine()
	e.SpawnStep("bad", func(sp *StepProc) Status {
		if sp.Now() == 0 {
			return sp.Sleep(5)
		}
		return sp.SleepUntil(1)
	})
	defer func() {
		if recover() == nil {
			t.Error("expected panic from SleepUntil into the past")
		}
	}()
	_ = e.Run()
}

// TestStepProcRecvStep exercises the stepped channel receive: wait, wake on
// send, consume.
func TestStepProcRecvStep(t *testing.T) {
	e := NewEngine()
	c := e.NewChan()
	var got []int
	e.SpawnStep("recv", func(sp *StepProc) Status {
		for {
			v, ok, st := c.RecvStep(sp)
			if !ok {
				return st
			}
			got = append(got, v.(int))
			if len(got) == 3 {
				return StepDone
			}
		}
	})
	e.Spawn("send", func(p *Proc) {
		for i := 1; i <= 3; i++ {
			p.Advance(10)
			c.Send(i)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != "[1 2 3]" {
		t.Errorf("received %v, want [1 2 3]", got)
	}
	if e.Now() != 30 {
		t.Errorf("Now() = %d, want 30", e.Now())
	}
}

// TestStepProcWaitStep exercises the stepped signal wait alongside goroutine
// waiters: both kinds wake on one Fire, in wait order.
func TestStepProcWaitStep(t *testing.T) {
	e := NewEngine()
	s := e.NewSignal()
	var order []string
	e.Spawn("g", func(p *Proc) {
		s.Wait(p)
		order = append(order, "g")
	})
	waited := false
	e.SpawnStep("s", func(sp *StepProc) Status {
		if !waited {
			waited = true
			return s.WaitStep(sp)
		}
		order = append(order, "s")
		return StepDone
	})
	e.At(5, func() { s.Fire() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(order) != "[g s]" {
		t.Errorf("wake order = %v, want [g s]", order)
	}
}

// TestStepProcDeadlockReported checks a stepper stuck on a channel shows up
// in the deadlock report like a goroutine process would.
func TestStepProcDeadlockReported(t *testing.T) {
	e := NewEngine()
	c := e.NewChan()
	e.SpawnStep("stuck", func(sp *StepProc) Status {
		_, ok, st := c.RecvStep(sp)
		if !ok {
			return st
		}
		return StepDone
	})
	err := e.Run()
	de, isDeadlock := err.(*DeadlockError)
	if !isDeadlock {
		t.Fatalf("err = %v, want DeadlockError", err)
	}
	if len(de.Procs) != 1 || de.Procs[0].Name != "stuck" || de.Procs[0].Reason != "chan recv" {
		t.Errorf("blocked = %+v, want stuck on chan recv", de.Procs)
	}
}

// TestStepProcAccessors covers the trivial getters and the seeded rng.
func TestStepProcAccessors(t *testing.T) {
	e := NewEngine()
	sp := e.SpawnStepSeeded("acc", 7, func(sp *StepProc) Status { return StepDone })
	if sp.ID() != 0 || sp.Name() != "acc" || sp.Engine() != e || sp.Rand() == nil {
		t.Errorf("accessor mismatch: id=%d name=%q", sp.ID(), sp.Name())
	}
	if sp.Done() {
		t.Error("Done() true before run")
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !sp.Done() {
		t.Error("Done() false after StepDone")
	}
}

// countGoroutines samples the goroutine count after nudging the scheduler so
// exiting goroutines get to finish.
func countGoroutines() int {
	runtime.GC()
	time.Sleep(time.Millisecond)
	return runtime.NumGoroutine()
}

// TestStopResetNoGoroutineLeak is the satellite regression test: Stop
// abandons blocked goroutine processes; Reset must terminate them so the
// engine can be reused without the process count growing run over run.
func TestStopResetNoGoroutineLeak(t *testing.T) {
	base := countGoroutines()
	e := NewEngine()
	for round := 0; round < 20; round++ {
		s := e.NewSignal()
		for i := 0; i < 10; i++ {
			e.Spawn("waiter", func(p *Proc) { s.Wait(p) })
		}
		e.At(5, func() { e.Stop() })
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		e.Reset()
	}
	// Allow scheduling slack: the unwound goroutines exit asynchronously.
	var got int
	for try := 0; try < 50; try++ {
		if got = countGoroutines(); got <= base {
			return
		}
	}
	t.Errorf("goroutines after 20 Stop+Reset rounds = %d, want <= %d", got, base)
}

// TestStopBeforeFirstStepThenReset kills a process that never got to run:
// its goroutine must unwind without executing the body.
func TestStopBeforeFirstStepThenReset(t *testing.T) {
	e := NewEngine()
	ran := false
	e.At(0, func() { e.Stop() })
	// Spawned after the stop event, so its start event never fires... but the
	// spawn event shares timestamp 0; stop halts the loop first.
	e.Spawn("never", func(p *Proc) { ran = true })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	e.Reset()
	if ran {
		t.Error("process body ran despite Stop before its first event")
	}
}
