package sim

// Chan is an unbounded FIFO message queue between simulated processes.
// Send never blocks; Recv blocks until a value is available. Values sent
// with a delivery delay become visible to receivers only once the delay
// elapses, which models network transit time.
type Chan struct {
	e       *Engine
	buf     []interface{}
	waiters []*Proc
}

// NewChan creates a channel bound to engine e.
func (e *Engine) NewChan() *Chan { return &Chan{e: e} }

// Send makes v available to receivers immediately.
func (c *Chan) Send(v interface{}) { c.deliver(v) }

// SendAfter makes v available to receivers d cycles from now.
func (c *Chan) SendAfter(d Time, v interface{}) {
	if d == 0 {
		c.deliver(v)
		return
	}
	c.e.schedule(c.e.now+d, func() { c.deliver(v) })
}

func (c *Chan) deliver(v interface{}) {
	c.buf = append(c.buf, v)
	if len(c.waiters) > 0 {
		w := c.waiters[0]
		c.waiters = c.waiters[1:]
		c.e.schedule(c.e.now, func() { c.e.runProc(w) })
	}
}

// Recv blocks the calling process until a value is available, then removes
// and returns the oldest value.
func (c *Chan) Recv(p *Proc) interface{} {
	p.checkCurrent("Chan.Recv")
	for len(c.buf) == 0 {
		c.waiters = append(c.waiters, p)
		p.block()
	}
	v := c.buf[0]
	c.buf[0] = nil
	c.buf = c.buf[1:]
	return v
}

// TryRecv removes and returns the oldest value without blocking. The second
// result reports whether a value was available.
func (c *Chan) TryRecv() (interface{}, bool) {
	if len(c.buf) == 0 {
		return nil, false
	}
	v := c.buf[0]
	c.buf[0] = nil
	c.buf = c.buf[1:]
	return v, true
}

// Len returns the number of values currently available.
func (c *Chan) Len() int { return len(c.buf) }
