package sim

// Chan is an unbounded FIFO message queue between simulated processes.
// Send never blocks; Recv blocks until a value is available. Values sent
// with a delivery delay become visible to receivers only once the delay
// elapses, which models network transit time.
//
// The buffer is a head/tail ring: removing the oldest value advances an
// index instead of reslicing, so a long-lived channel reuses one
// backing array at steady state rather than crawling down an ever-growing
// one and retaining everything behind the read point.
type Chan struct {
	e       *Engine
	buf     []interface{} // ring storage; len(buf) is the capacity
	head    int           // index of the oldest value
	count   int           // number of buffered values
	waiters []waiter
}

// waiter is a blocked process of either kind, queued FIFO on a waiting
// primitive. Exactly one field is non-nil.
type waiter struct {
	p  *Proc
	sp *StepProc
}

// wake schedules a resume of w at the current instant, whichever kind it is.
func (e *Engine) wake(w waiter) {
	if w.p != nil {
		e.scheduleProc(e.now, w.p)
	} else {
		e.scheduleStep(e.now, w.sp)
	}
}

// NewChan creates a channel bound to engine e.
func (e *Engine) NewChan() *Chan { return &Chan{e: e} }

// Send makes v available to receivers immediately.
func (c *Chan) Send(v interface{}) { c.deliver(v) }

// SendAfter makes v available to receivers d cycles from now. The in-flight
// value rides on the event itself (the engine's wire-delay shuttle) rather
// than in a closure, so a simulated message in transit costs no allocation
// beyond its event struct.
func (c *Chan) SendAfter(d Time, v interface{}) {
	if d == 0 {
		c.deliver(v)
		return
	}
	c.e.scheduleDeliver(c.e.now+d, c, v)
}

func (c *Chan) deliver(v interface{}) {
	if c.count == len(c.buf) {
		c.grow()
	}
	c.buf[(c.head+c.count)%len(c.buf)] = v
	c.count++
	if len(c.waiters) > 0 {
		w := c.waiters[0]
		c.waiters = c.waiters[1:]
		c.e.wake(w)
	}
}

// grow doubles the ring, unwrapping the values to the front.
func (c *Chan) grow() {
	capc := 2 * len(c.buf)
	if capc < 8 {
		capc = 8
	}
	nb := make([]interface{}, capc)
	for i := 0; i < c.count; i++ {
		nb[i] = c.buf[(c.head+i)%len(c.buf)]
	}
	c.buf = nb
	c.head = 0
}

// take removes and returns the oldest buffered value. count must be > 0.
func (c *Chan) take() interface{} {
	v := c.buf[c.head]
	c.buf[c.head] = nil
	c.head = (c.head + 1) % len(c.buf)
	c.count--
	return v
}

// Recv blocks the calling process until a value is available, then removes
// and returns the oldest value.
func (c *Chan) Recv(p *Proc) interface{} {
	p.checkCurrent("Chan.Recv")
	for c.count == 0 {
		c.waiters = append(c.waiters, waiter{p: p})
		p.blockOn("chan recv")
	}
	return c.take()
}

// RecvStep is Recv for state-machine processes. On success it returns the
// oldest value and StepDone is NOT implied — the caller continues its step.
// When the channel is empty it queues sp as a waiter and returns ok=false
// with st = sp.Waiting(...); the step function must return st immediately,
// and its next invocation (after a send wakes it) retries the receive.
// Like Recv's loop, a retry can find the channel empty again if an earlier
// waiter took the value first.
func (c *Chan) RecvStep(sp *StepProc) (v interface{}, ok bool, st Status) {
	if c.count == 0 {
		c.waiters = append(c.waiters, waiter{sp: sp})
		return nil, false, sp.Waiting("chan recv")
	}
	return c.take(), true, StepDone
}

// TryRecv removes and returns the oldest value without blocking. The second
// result reports whether a value was available.
func (c *Chan) TryRecv() (interface{}, bool) {
	if c.count == 0 {
		return nil, false
	}
	return c.take(), true
}

// Len returns the number of values currently available.
func (c *Chan) Len() int { return c.count }
