// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine advances a virtual clock measured in processor cycles and
// executes events in (time, sequence) order. Simulated activities are
// expressed as processes: ordinary Go functions that run on their own
// goroutine but are scheduled cooperatively, one at a time, by the engine.
// A process blocks by calling one of the waiting primitives (Advance, Wait,
// Recv, Acquire); control then returns to the engine, which resumes the
// process when the corresponding event fires. Because exactly one process
// runs at any instant and all ties are broken by sequence number, a
// simulation with a fixed seed is fully reproducible.
//
// Engines are single-threaded and carry no shared state, so independent
// engines may run concurrently on separate goroutines; the experiment
// runner exploits this to fan simulations across cores.
package sim

import (
	"fmt"
	"sort"
	"sync/atomic"

	"repro/internal/obs"
)

// Time is a point in simulated time, in cycles.
type Time uint64

// totalEvents counts events executed by every engine in the process, for
// whole-program throughput reporting (events/sec) across parallel workers.
var totalEvents atomic.Uint64

// TotalEvents returns the number of events executed by all engines in this
// process since it started. The counter is process-global and monotonic:
// it aggregates across every engine ever run (including engines on parallel
// experiment workers) and is never reset, so per-run readers must subtract
// a snapshot taken before the run, as cmd/qsmbench does for BENCH_<id>.json.
// For a single engine's count use Engine.Events. Engines publish their
// counts when Run returns.
func TotalEvents() uint64 { return totalEvents.Load() }

// Engine is a deterministic discrete-event simulator. The zero value is not
// usable; create engines with NewEngine.
type Engine struct {
	now     Time
	seq     uint64
	queue   eventHeap
	free    []*event // recycled event structs, refilled as events fire
	procs   []*Proc
	yieldCh chan *Proc
	current *Proc
	stopped bool
	nEvents uint64

	// Observability hooks, nil unless Observe attached a recorder. Each is a
	// typed handle whose methods are nil-safe, so the hot paths pay only a
	// predictable branch when observation is off.
	rec        *obs.Recorder
	obsEvents  *obs.Counter
	obsQueueHW *obs.Gauge
	obsDwell   *obs.Histogram
}

// NewEngine returns an empty engine at time zero.
func NewEngine() *Engine {
	return &Engine{yieldCh: make(chan *Proc)}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Events returns the number of events this engine has executed over its
// lifetime. The counter is per-engine and monotonic: it keeps growing across
// multiple Run calls and deliberately survives Reset, so deltas taken around
// a Run stay valid on a reused engine. Contrast TotalEvents, which is
// process-global.
func (e *Engine) Events() uint64 { return e.nEvents }

// Observe attaches an observability recorder: the engine reports its event
// count, event-queue depth high-water mark, and blocked-process dwell times
// through it. Call before Run. A nil recorder detaches the hooks; with no
// recorder attached the engine's hot path is unchanged.
func (e *Engine) Observe(r *obs.Recorder) {
	e.rec = r
	e.obsEvents = r.Counter("sim", "events", "")
	e.obsQueueHW = r.Gauge("sim", "queue_depth", "")
	e.obsDwell = r.Histogram("sim", "blocked_dwell_cycles", "", obs.ExpBuckets(64, 4, 10))
}

// Recorder returns the recorder attached with Observe, or nil.
func (e *Engine) Recorder() *obs.Recorder { return e.rec }

// Reset returns a finished engine to time zero so it can be reused for a
// fresh simulation without reallocating its queue storage or event free
// list. It panics if any spawned process has not finished: abandoning a
// blocked process would leak its goroutine. Events() deliberately survives
// Reset (see its doc); only the clock, queue, and process table are cleared.
func (e *Engine) Reset() {
	for _, p := range e.procs {
		if !p.done {
			panic(fmt.Sprintf("sim: Reset with process %q still blocked", p.name))
		}
	}
	for {
		ev := e.queue.popMin()
		if ev == nil {
			break
		}
		e.recycle(ev)
	}
	e.now = 0
	e.seq = 0
	e.procs = e.procs[:0]
	e.current = nil
	e.stopped = false
}

// newEvent takes a struct off the free list or allocates one.
func (e *Engine) newEvent(t Time) *event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event in the past (t=%d, now=%d)", t, e.now))
	}
	var ev *event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		*ev = event{at: t, seq: e.seq}
	} else {
		ev = &event{at: t, seq: e.seq}
	}
	e.seq++
	return ev
}

// recycle returns a fired or cancelled event to the free list.
func (e *Engine) recycle(ev *event) {
	ev.fn = nil
	ev.proc = nil
	e.free = append(e.free, ev)
}

// schedule enqueues fn to run at time t. Ties are broken in schedule order.
func (e *Engine) schedule(t Time, fn func()) *event {
	ev := e.newEvent(t)
	ev.fn = fn
	e.queue.push(ev)
	e.obsQueueHW.Set(int64(e.queue.Len()))
	return ev
}

// scheduleProc enqueues a resume of p at time t without allocating a
// closure — the hot path behind Advance and every wake-up primitive.
func (e *Engine) scheduleProc(t Time, p *Proc) *event {
	ev := e.newEvent(t)
	ev.proc = p
	e.queue.push(ev)
	e.obsQueueHW.Set(int64(e.queue.Len()))
	return ev
}

// At schedules fn to run at absolute time t. It may be called before Run or
// from within a running process.
func (e *Engine) At(t Time, fn func()) { e.schedule(t, fn) }

// After schedules fn to run d cycles from now.
func (e *Engine) After(d Time, fn func()) { e.schedule(e.now+d, fn) }

// popEvent removes and returns the next live event, recycling any cancelled
// ones it skips. It returns nil when the queue is empty.
func (e *Engine) popEvent() *event {
	for {
		ev := e.queue.popMin()
		if ev == nil || !ev.cancelled {
			return ev
		}
		e.recycle(ev)
	}
}

// Run executes events until the queue is empty or Stop is called. It returns
// an error if any process panicked or if processes remain blocked when no
// events are left (a deadlock).
func (e *Engine) Run() error {
	start := e.nEvents
	defer func() {
		totalEvents.Add(e.nEvents - start)
		e.obsEvents.Add(e.nEvents - start)
	}()
	for !e.stopped {
		ev := e.popEvent()
		if ev == nil {
			break
		}
		e.now = ev.at
		e.nEvents++
		if p := ev.proc; p != nil {
			e.recycle(ev)
			e.runProc(p)
		} else {
			fn := ev.fn
			e.recycle(ev)
			fn()
		}
	}
	var blocked []BlockedProc
	for _, p := range e.procs {
		if p.err != nil {
			return fmt.Errorf("sim: process %q failed: %v", p.name, p.err)
		}
		if !p.done {
			reason := p.waitReason
			if reason == "" {
				reason = "unknown"
			}
			blocked = append(blocked, BlockedProc{Name: p.name, Reason: reason, Since: p.blockedAt})
		}
	}
	if len(blocked) > 0 && !e.stopped {
		sort.Slice(blocked, func(i, j int) bool { return blocked[i].Name < blocked[j].Name })
		names := make([]string, len(blocked))
		for i, b := range blocked {
			names[i] = b.Name
		}
		return &DeadlockError{Blocked: names, Procs: blocked, At: e.now}
	}
	return nil
}

// Stop halts the engine after the current event completes. Blocked processes
// are abandoned; Run returns nil.
func (e *Engine) Stop() { e.stopped = true }

// BlockedProc describes one process stuck in a deadlock: what primitive it
// was waiting on (captured at block time) and since when.
type BlockedProc struct {
	Name   string
	Reason string // e.g. "chan recv", "signal wait", "gate acquire"
	Since  Time
}

func (b BlockedProc) String() string {
	return fmt.Sprintf("%s (%s since t=%d)", b.Name, b.Reason, b.Since)
}

// DeadlockError reports processes still blocked when the event queue
// drained. Blocked lists their names; Procs carries each one's wait reason
// and block time, both sorted by name.
type DeadlockError struct {
	Blocked []string
	Procs   []BlockedProc
	At      Time
}

func (d *DeadlockError) Error() string {
	detail := d.Blocked
	if len(d.Procs) == len(d.Blocked) {
		detail = make([]string, len(d.Procs))
		for i, b := range d.Procs {
			detail[i] = b.String()
		}
	}
	return fmt.Sprintf("sim: deadlock at t=%d: %d process(es) blocked: %v", d.At, len(d.Blocked), detail)
}

// runProc transfers control to p until it blocks or finishes. It must only be
// called from the engine's event loop (directly or via an event closure).
func (e *Engine) runProc(p *Proc) {
	if p.done {
		return
	}
	prev := e.current
	e.current = p
	p.resume <- struct{}{}
	<-e.yieldCh
	e.current = prev
}
