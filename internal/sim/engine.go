// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine advances a virtual clock measured in processor cycles and
// executes events in (time, sequence) order. Simulated activities are
// expressed as processes of two kinds:
//
//   - Goroutine processes (Proc): ordinary Go functions that run on their
//     own goroutine but are scheduled cooperatively, one at a time, by the
//     engine. A process blocks by calling one of the waiting primitives
//     (Advance, Wait, Recv, Acquire); control then returns to the engine,
//     which resumes the process when the corresponding event fires. Each
//     resumption costs two goroutine context switches. This is the API for
//     user-authored algorithms, whose control flow reads naturally as
//     straight-line code.
//
//   - State-machine processes (StepProc): explicit Step functions the event
//     loop calls directly, with no goroutine and no per-resume context
//     switch. The engine's hottest built-in process types (the membank bank
//     accessors) use this form; see stepproc.go.
//
// Both kinds interleave in the same (time, seq) order, so converting a
// process between forms leaves a simulation's results byte-identical.
// Because exactly one process runs at any instant and all ties are broken
// by sequence number, a simulation with a fixed seed is fully reproducible.
//
// Events scheduled for the current instant bypass the time-ordered
// scheduler and drain through a FIFO ring (the same-timestamp cohort), and
// the scheduler behind the future-event queue is selectable: the default
// 4-ary heap or a calendar queue (see Scheduler).
//
// Engines are single-threaded and carry no shared state, so independent
// engines may run concurrently on separate goroutines; the experiment
// runner exploits this to fan simulations across cores.
package sim

import (
	"fmt"
	"sort"
	"sync/atomic"

	"repro/internal/obs"
)

// Time is a point in simulated time, in cycles.
type Time uint64

// totalEvents counts events executed by every engine in the process, for
// whole-program throughput reporting (events/sec) across parallel workers.
var totalEvents atomic.Uint64

// TotalEvents returns the number of events executed by all engines in this
// process since it started. The counter is process-global and monotonic:
// it aggregates across every engine ever run (including engines on parallel
// experiment workers) and is never reset, so per-run readers must subtract
// a snapshot taken before the run, as cmd/qsmbench does for BENCH_<id>.json.
// For a single engine's count use Engine.Events. Engines publish their
// counts when Run returns.
func TotalEvents() uint64 { return totalEvents.Load() }

// Scheduler names a pending-event queue implementation.
type Scheduler string

// Available schedulers. SchedHeap is the default. Measured honestly
// (BenchmarkHeapVsCalendarQueue, DESIGN.md): the calendar queue wins where
// scheduler operations dominate — 2-3× per event on pure stepped-process
// schedules, a few percent end-to-end on membank/fig7 — and ties on
// goroutine-dominated workloads where the context switch is the cost. The
// heap stays the default because its O(log n) bound holds for any schedule,
// while the calendar queue degrades to full-bucket scans on schedules whose
// event spacing defeats its width estimate; SchedCalendar is the measured
// opt-in, not a heuristic.
const (
	SchedHeap     Scheduler = "heap"
	SchedCalendar Scheduler = "calendar"
)

// DefaultScheduler selects the scheduler NewEngine uses. It exists so one
// switch (cmd/qsmbench -sched) can steer every engine an experiment builds,
// including those built on worker goroutines; set it before engines are
// created, not while simulations run. Results are byte-identical under
// either scheduler — only wall-clock speed differs.
var DefaultScheduler = SchedHeap

// UseStepProcs selects whether converted subsystems (internal/membank) run
// their hot processes as state-machine StepProcs (true, the default) or as
// goroutine Procs. Both modes produce byte-identical simulation results;
// the goroutine mode exists for differential testing and as the reference
// semantics. Set it before engines are created, not while simulations run.
var UseStepProcs = true

// Engine is a deterministic discrete-event simulator. The zero value is not
// usable; create engines with NewEngine.
type Engine struct {
	now Time
	seq uint64

	// Pending events live in one of two places: nowq, a FIFO ring holding
	// the remainder of the current instant's cohort (events scheduled for
	// t == now while the engine executes that instant), and the
	// time-ordered scheduler behind it — the 4-ary heap by default, or the
	// calendar queue when selected. Exactly one of cal/heap is active.
	heap eventHeap
	cal  *calQueue
	nowq eventRing

	free    []*event // recycled event structs, refilled as events fire
	procs   []*Proc
	steps   []*StepProc
	yieldCh chan *Proc
	current *Proc
	stopped bool
	nEvents uint64

	// Observability hooks, nil unless Observe attached a recorder. Each is a
	// typed handle whose methods are nil-safe, so the hot paths pay only a
	// predictable branch when observation is off.
	rec        *obs.Recorder
	obsEvents  *obs.Counter
	obsQueueHW *obs.Gauge
	obsDwell   *obs.Histogram
}

// NewEngine returns an empty engine at time zero using DefaultScheduler.
func NewEngine() *Engine { return NewEngineSched(DefaultScheduler) }

// NewEngineSched returns an empty engine at time zero using the named
// scheduler.
func NewEngineSched(kind Scheduler) *Engine {
	e := &Engine{yieldCh: make(chan *Proc)}
	if kind == SchedCalendar {
		e.cal = newCalQueue()
	}
	return e
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Events returns the number of events this engine has executed over its
// lifetime. The counter is per-engine and monotonic: it keeps growing across
// multiple Run calls and deliberately survives Reset, so deltas taken around
// a Run stay valid on a reused engine. Contrast TotalEvents, which is
// process-global.
func (e *Engine) Events() uint64 { return e.nEvents }

// Observe attaches an observability recorder: the engine reports its event
// count, event-queue depth high-water mark, and blocked-process dwell times
// through it. Call before Run. A nil recorder detaches the hooks; with no
// recorder attached the engine's hot path is unchanged.
func (e *Engine) Observe(r *obs.Recorder) {
	e.rec = r
	e.obsEvents = r.Counter("sim", "events", "")
	e.obsQueueHW = r.Gauge("sim", "queue_depth", "")
	e.obsDwell = r.Histogram("sim", "blocked_dwell_cycles", "", obs.ExpBuckets(64, 4, 10))
}

// Recorder returns the recorder attached with Observe, or nil.
func (e *Engine) Recorder() *obs.Recorder { return e.rec }

// Reset returns the engine to time zero so it can be reused for a fresh
// simulation without reallocating its queue storage or event free list.
// Goroutine processes still blocked — abandoned by Stop, or left mid-wait by
// a caller discarding a deadlocked run — are terminated: each one is resumed
// with a kill sentinel that unwinds its goroutine (running its defers), so
// Stop→Reset→reuse leaks nothing. Events() deliberately survives Reset (see
// its doc); the clock, queues, and process tables are cleared.
func (e *Engine) Reset() {
	for _, p := range e.procs {
		if !p.done {
			e.kill(p)
		}
	}
	for {
		ev := e.qpop()
		if ev == nil {
			break
		}
		e.recycle(ev)
	}
	for {
		ev := e.nowq.pop()
		if ev == nil {
			break
		}
		e.recycle(ev)
	}
	e.now = 0
	e.seq = 0
	e.procs = e.procs[:0]
	e.steps = e.steps[:0]
	e.current = nil
	e.stopped = false
}

// kill terminates a blocked goroutine process: it is resumed with the killed
// flag set, panics with the kill sentinel at its block point, and its spawn
// wrapper recovers the sentinel and yields back one final time.
func (e *Engine) kill(p *Proc) {
	p.killed = true
	p.resume <- struct{}{}
	<-e.yieldCh
}

// newEvent takes a struct off the free list or allocates one.
func (e *Engine) newEvent(t Time) *event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event in the past (t=%d, now=%d)", t, e.now))
	}
	var ev *event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		*ev = event{at: t, seq: e.seq}
	} else {
		ev = &event{at: t, seq: e.seq}
	}
	e.seq++
	return ev
}

// recycle returns a fired or cancelled event to the free list.
func (e *Engine) recycle(ev *event) {
	ev.fn = nil
	ev.proc = nil
	ev.sp = nil
	ev.ch = nil
	ev.val = nil
	e.free = append(e.free, ev)
}

// qpush enqueues a pending event: the same-timestamp ring when it fires at
// the current instant (append order is seq order there), the time-ordered
// scheduler otherwise.
func (e *Engine) qpush(ev *event) {
	if ev.at == e.now {
		e.nowq.push(ev)
	} else if e.cal != nil {
		e.cal.push(ev)
	} else {
		e.heap.push(ev)
	}
	e.obsQueueHW.Set(int64(e.pending()))
}

// qpop removes the earliest event from the time-ordered scheduler.
func (e *Engine) qpop() *event {
	if e.cal != nil {
		return e.cal.popMin()
	}
	return e.heap.popMin()
}

// pending returns the total number of queued events across both stores.
func (e *Engine) pending() int {
	n := e.heap.Len() + e.nowq.count
	if e.cal != nil {
		n += e.cal.Len()
	}
	return n
}

// peekLive returns the scheduler's earliest live event without removing it,
// recycling any cancelled events found at the front. nil means the
// time-ordered scheduler is empty (the nowq ring may still hold events).
func (e *Engine) peekLive() *event {
	for {
		var ev *event
		if e.cal != nil {
			ev = e.cal.peek()
		} else {
			ev = e.heap.peek()
		}
		if ev == nil || !ev.cancelled {
			return ev
		}
		e.qpop()
		e.recycle(ev)
	}
}

// schedule enqueues fn to run at time t. Ties are broken in schedule order.
func (e *Engine) schedule(t Time, fn func()) *event {
	ev := e.newEvent(t)
	ev.fn = fn
	e.qpush(ev)
	return ev
}

// scheduleProc enqueues a resume of p at time t without allocating a
// closure — the hot path behind Advance and every wake-up primitive.
func (e *Engine) scheduleProc(t Time, p *Proc) *event {
	ev := e.newEvent(t)
	ev.proc = p
	e.qpush(ev)
	return ev
}

// scheduleStep enqueues a step of sp at time t, closure-free.
func (e *Engine) scheduleStep(t Time, sp *StepProc) *event {
	ev := e.newEvent(t)
	ev.sp = sp
	e.qpush(ev)
	return ev
}

// scheduleDeliver enqueues delivery of v to channel c at time t — the
// closure-free wire-delay shuttle behind Chan.SendAfter, which carries every
// simulated message in flight through the machine and logp stacks.
func (e *Engine) scheduleDeliver(t Time, c *Chan, v interface{}) *event {
	ev := e.newEvent(t)
	ev.ch = c
	ev.val = v
	e.qpush(ev)
	return ev
}

// At schedules fn to run at absolute time t. It may be called before Run or
// from within a running process.
func (e *Engine) At(t Time, fn func()) { e.schedule(t, fn) }

// After schedules fn to run d cycles from now.
func (e *Engine) After(d Time, fn func()) { e.schedule(e.now+d, fn) }

// nextEvent returns the next live event in (time, seq) order, advancing the
// clock when the current instant's cohort is exhausted. The cohort drains in
// two legs that together follow seq order: scheduler events that reached
// the current timestamp first (they were scheduled from earlier instants,
// so their seqs are the cohort's lowest), then the nowq ring of events
// scheduled during the instant itself. Only a cohort boundary touches the
// time-ordered scheduler, so same-timestamp bursts cost O(1) ring
// operations instead of heap sifts.
func (e *Engine) nextEvent() *event {
	for {
		nxt := e.peekLive()
		switch {
		case nxt != nil && nxt.at == e.now:
			return e.qpop()
		case e.nowq.count > 0:
			ev := e.nowq.pop()
			if ev.cancelled {
				e.recycle(ev)
				continue
			}
			return ev
		case nxt != nil:
			e.now = nxt.at
			return e.qpop()
		default:
			return nil
		}
	}
}

// Run executes events until the queue is empty or Stop is called. It returns
// an error if any process panicked or if processes remain blocked when no
// events are left (a deadlock).
func (e *Engine) Run() error {
	start := e.nEvents
	defer func() {
		totalEvents.Add(e.nEvents - start)
		e.obsEvents.Add(e.nEvents - start)
	}()
	for !e.stopped {
		ev := e.nextEvent()
		if ev == nil {
			break
		}
		e.nEvents++
		switch {
		case ev.proc != nil:
			p := ev.proc
			e.recycle(ev)
			e.runProc(p)
		case ev.sp != nil:
			sp := ev.sp
			e.recycle(ev)
			e.runStep(sp)
		case ev.ch != nil:
			c, v := ev.ch, ev.val
			e.recycle(ev)
			c.deliver(v)
		default:
			fn := ev.fn
			e.recycle(ev)
			fn()
		}
	}
	var blocked []BlockedProc
	for _, p := range e.procs {
		if p.err != nil {
			return fmt.Errorf("sim: process %q failed: %v", p.name, p.err)
		}
		if !p.done {
			reason := p.waitReason
			if reason == "" {
				reason = "unknown"
			}
			blocked = append(blocked, BlockedProc{Name: p.name, Reason: reason, Since: p.blockedAt})
		}
	}
	for _, sp := range e.steps {
		if !sp.done && sp.waitReason != "" {
			blocked = append(blocked, BlockedProc{Name: sp.name, Reason: sp.waitReason, Since: sp.blockedAt})
		}
	}
	if len(blocked) > 0 && !e.stopped {
		sort.Slice(blocked, func(i, j int) bool { return blocked[i].Name < blocked[j].Name })
		names := make([]string, len(blocked))
		for i, b := range blocked {
			names[i] = b.Name
		}
		return &DeadlockError{Blocked: names, Procs: blocked, At: e.now}
	}
	return nil
}

// Stop halts the engine after the current event completes. Blocked processes
// are abandoned (Reset terminates them); Run returns nil.
func (e *Engine) Stop() { e.stopped = true }

// BlockedProc describes one process stuck in a deadlock: what primitive it
// was waiting on (captured at block time) and since when.
type BlockedProc struct {
	Name   string
	Reason string // e.g. "chan recv", "signal wait", "gate acquire"
	Since  Time
}

func (b BlockedProc) String() string {
	return fmt.Sprintf("%s (%s since t=%d)", b.Name, b.Reason, b.Since)
}

// DeadlockError reports processes still blocked when the event queue
// drained. Blocked lists their names; Procs carries each one's wait reason
// and block time, both sorted by name.
type DeadlockError struct {
	Blocked []string
	Procs   []BlockedProc
	At      Time
}

func (d *DeadlockError) Error() string {
	detail := d.Blocked
	if len(d.Procs) == len(d.Blocked) {
		detail = make([]string, len(d.Procs))
		for i, b := range d.Procs {
			detail[i] = b.String()
		}
	}
	return fmt.Sprintf("sim: deadlock at t=%d: %d process(es) blocked: %v", d.At, len(d.Blocked), detail)
}

// runProc transfers control to p until it blocks or finishes. It must only be
// called from the engine's event loop (directly or via an event closure).
func (e *Engine) runProc(p *Proc) {
	if p.done {
		return
	}
	prev := e.current
	e.current = p
	p.resume <- struct{}{}
	<-e.yieldCh
	e.current = prev
}
