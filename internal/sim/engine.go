// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine advances a virtual clock measured in processor cycles and
// executes events in (time, sequence) order. Simulated activities are
// expressed as processes: ordinary Go functions that run on their own
// goroutine but are scheduled cooperatively, one at a time, by the engine.
// A process blocks by calling one of the waiting primitives (Advance, Wait,
// Recv, Acquire); control then returns to the engine, which resumes the
// process when the corresponding event fires. Because exactly one process
// runs at any instant and all ties are broken by sequence number, a
// simulation with a fixed seed is fully reproducible.
package sim

import (
	"fmt"
	"sort"
)

// Time is a point in simulated time, in cycles.
type Time uint64

// Engine is a deterministic discrete-event simulator. The zero value is not
// usable; create engines with NewEngine.
type Engine struct {
	now     Time
	seq     uint64
	queue   eventHeap
	procs   []*Proc
	yieldCh chan *Proc
	current *Proc
	stopped bool
	nEvents uint64
}

// NewEngine returns an empty engine at time zero.
func NewEngine() *Engine {
	return &Engine{yieldCh: make(chan *Proc)}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Events returns the number of events executed so far.
func (e *Engine) Events() uint64 { return e.nEvents }

// schedule enqueues fn to run at time t. Ties are broken in schedule order.
func (e *Engine) schedule(t Time, fn func()) *event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event in the past (t=%d, now=%d)", t, e.now))
	}
	ev := &event{at: t, seq: e.seq, fn: fn}
	e.seq++
	e.queue.push(ev)
	return ev
}

// At schedules fn to run at absolute time t. It may be called before Run or
// from within a running process.
func (e *Engine) At(t Time, fn func()) { e.schedule(t, fn) }

// After schedules fn to run d cycles from now.
func (e *Engine) After(d Time, fn func()) { e.schedule(e.now+d, fn) }

// Run executes events until the queue is empty or Stop is called. It returns
// an error if any process panicked or if processes remain blocked when no
// events are left (a deadlock).
func (e *Engine) Run() error {
	for !e.stopped {
		ev := e.queue.pop()
		if ev == nil {
			break
		}
		if ev.cancelled {
			continue
		}
		e.now = ev.at
		e.nEvents++
		ev.fn()
	}
	var blocked []string
	for _, p := range e.procs {
		if p.err != nil {
			return fmt.Errorf("sim: process %q failed: %v", p.name, p.err)
		}
		if !p.done {
			blocked = append(blocked, p.name)
		}
	}
	if len(blocked) > 0 && !e.stopped {
		sort.Strings(blocked)
		return &DeadlockError{Blocked: blocked, At: e.now}
	}
	return nil
}

// Stop halts the engine after the current event completes. Blocked processes
// are abandoned; Run returns nil.
func (e *Engine) Stop() { e.stopped = true }

// DeadlockError reports processes still blocked when the event queue drained.
type DeadlockError struct {
	Blocked []string
	At      Time
}

func (d *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at t=%d: %d process(es) blocked: %v", d.At, len(d.Blocked), d.Blocked)
}

// runProc transfers control to p until it blocks or finishes. It must only be
// called from the engine's event loop (directly or via an event closure).
func (e *Engine) runProc(p *Proc) {
	if p.done {
		return
	}
	prev := e.current
	e.current = p
	p.resume <- struct{}{}
	<-e.yieldCh
	e.current = prev
}
