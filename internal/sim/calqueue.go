package sim

import "sort"

// calQueue is a calendar-queue scheduler (Brown, CACM 1988): pending events
// hash into nbuckets "days" of width cycles each, and popping scans forward
// from the current day, returning the head of the first bucket whose head
// falls inside the day's current-year window. When the event population is
// spread evenly over time — the shape membank's overloaded banks and the
// machine's NIC pipelines produce — each operation touches O(1) events,
// versus the heap's O(log n) sift.
//
// Ordering: bucket width never splits a timestamp (all events with equal at
// hash to the same bucket), buckets are kept sorted by (at, seq), and a push
// behind the current day rewinds the scan position, so popMin yields exactly
// the (at, seq) order the 4-ary heap yields. The engine's differential tests
// assert the two schedulers produce byte-identical experiment tables.
//
// Resizes (grow at >2 events/bucket, shrink at <1/2) sample the live events
// to pick a width near the mean inter-event gap. Every decision is a pure
// function of the push/pop sequence, so runs stay deterministic.
type calQueue struct {
	buckets  [][]*event
	nbuckets int  // power of two
	mask     int  // nbuckets - 1
	width    Time // bucket span in cycles
	count    int
	day      int  // bucket index the scan is on
	topAt    Time // exclusive end of the current day's window
}

const (
	calMinBuckets = 16
	calSampleMax  = 64
)

func newCalQueue() *calQueue {
	q := &calQueue{nbuckets: calMinBuckets, mask: calMinBuckets - 1, width: 1}
	q.buckets = make([][]*event, q.nbuckets)
	return q
}

func (q *calQueue) Len() int { return q.count }

// bucketOf maps a timestamp to its bucket index.
func (q *calQueue) bucketOf(t Time) int {
	return int(t/q.width) & q.mask
}

// windowEnd returns the exclusive end of the day window containing t.
func (q *calQueue) windowEnd(t Time) Time {
	return (t/q.width + 1) * q.width
}

// push inserts ev in (at, seq) position within its bucket. A push into a
// window behind the scan position rewinds the scan so the event is not
// missed until the next wraparound.
func (q *calQueue) push(ev *event) {
	if q.count >= 2*q.nbuckets {
		q.resize(q.nbuckets * 2)
	}
	b := q.bucketOf(ev.at)
	s := q.buckets[b]
	// Insert from the back: new events usually carry the latest (at, seq).
	i := len(s)
	s = append(s, ev)
	for i > 0 && eventLess(ev, s[i-1]) {
		s[i] = s[i-1]
		i--
	}
	s[i] = ev
	q.buckets[b] = s
	q.count++
	if ev.at < q.topAt-q.width {
		q.day = b
		q.topAt = q.windowEnd(ev.at)
	}
}

// peek returns the earliest event without removing it, or nil if empty. It
// advances the scan position as a side effect, so a peek that lands on a due
// event leaves the queue positioned for an O(1) repeat peek or pop — the
// shape the engine's cohort drain produces.
func (q *calQueue) peek() *event {
	if q.count == 0 {
		return nil
	}
	for i := 0; i < q.nbuckets; i++ {
		if s := q.buckets[q.day]; len(s) > 0 && s[0].at < q.topAt {
			return s[0]
		}
		q.day = (q.day + 1) & q.mask
		q.topAt += q.width
	}
	// A whole year of empty windows: jump straight to the global minimum.
	min := q.findMin()
	q.day = q.bucketOf(min.at)
	q.topAt = q.windowEnd(min.at)
	return min
}

// popMin removes and returns the earliest event, or nil if empty.
func (q *calQueue) popMin() *event {
	ev := q.peek()
	if ev == nil {
		return nil
	}
	s := q.buckets[q.day]
	copy(s, s[1:])
	s[len(s)-1] = nil
	q.buckets[q.day] = s[:len(s)-1]
	q.count--
	if q.count < q.nbuckets/2 && q.nbuckets > calMinBuckets {
		q.resize(q.nbuckets / 2)
	}
	return ev
}

// findMin scans every bucket for the global (at, seq) minimum. Only reached
// when the population is sparse relative to the year, right before the scan
// position jumps to the result.
func (q *calQueue) findMin() *event {
	var min *event
	for _, s := range q.buckets {
		if len(s) > 0 && (min == nil || eventLess(s[0], min)) {
			min = s[0]
		}
	}
	return min
}

// resize rebuilds the calendar with n buckets and a width picked from the
// mean gap of a sample of the live events, then re-seats the scan position
// at the earliest event.
func (q *calQueue) resize(n int) {
	evs := make([]*event, 0, q.count)
	for _, s := range q.buckets {
		evs = append(evs, s...)
	}
	sort.Slice(evs, func(i, j int) bool { return eventLess(evs[i], evs[j]) })

	q.width = sampleWidth(evs)
	q.nbuckets = n
	q.mask = n - 1
	q.buckets = make([][]*event, n)
	q.count = 0
	if len(evs) > 0 {
		q.day = q.bucketOf(evs[0].at)
		q.topAt = q.windowEnd(evs[0].at)
	}
	for _, ev := range evs {
		b := q.bucketOf(ev.at)
		q.buckets[b] = append(q.buckets[b], ev)
		q.count++
	}
}

// sampleWidth estimates a bucket width from the head of the sorted event
// list: three times the mean inter-event gap (Brown's rule of thumb), so a
// day holds a few events. Equal-timestamp bursts contribute zero gaps and
// shrink the width toward 1, which the same-time ring in front of the
// scheduler already absorbs.
func sampleWidth(sorted []*event) Time {
	k := len(sorted)
	if k > calSampleMax {
		k = calSampleMax
	}
	if k < 2 {
		return 1
	}
	span := sorted[k-1].at - sorted[0].at
	w := 3 * span / Time(k-1)
	if w < 1 {
		w = 1
	}
	return w
}
