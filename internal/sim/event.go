package sim

import "container/heap"

// event is a scheduled callback. Events compare by (at, seq) so that equal
// times preserve scheduling order, making runs reproducible.
type event struct {
	at        Time
	seq       uint64
	fn        func()
	cancelled bool
}

// Cancel prevents a pending event from firing. Cancelling an already-fired
// event is a no-op.
func (ev *event) Cancel() { ev.cancelled = true }

type eventHeap struct{ evs []*event }

func (h *eventHeap) Len() int { return len(h.evs) }
func (h *eventHeap) Less(i, j int) bool {
	a, b := h.evs[i], h.evs[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}
func (h *eventHeap) Swap(i, j int)      { h.evs[i], h.evs[j] = h.evs[j], h.evs[i] }
func (h *eventHeap) Push(x interface{}) { h.evs = append(h.evs, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := h.evs
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	h.evs = old[:n-1]
	return ev
}

func (h *eventHeap) push(ev *event) { heap.Push(h, ev) }

func (h *eventHeap) pop() *event {
	for h.Len() > 0 {
		ev := heap.Pop(h).(*event)
		if !ev.cancelled {
			return ev
		}
	}
	return nil
}
