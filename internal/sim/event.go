package sim

// event is a scheduled callback. Events compare by (at, seq) so that equal
// times preserve scheduling order, making runs reproducible. Fired events are
// recycled through the engine's free list, so a caller must not retain an
// *event past its firing time; Cancel on a still-pending event is fine.
//
// The hot cases carry their target directly instead of wrapping it in a
// closure, so the per-event closure allocation disappears from the engine's
// hot path: proc resumes a blocked goroutine process, sp steps a
// state-machine process, and ch/val deliver a value to a channel after a
// wire delay (the "shuttle" behind Chan.SendAfter and every simulated
// message in flight). fn remains for general scheduled callbacks.
type event struct {
	at        Time
	seq       uint64
	fn        func()
	proc      *Proc
	sp        *StepProc
	ch        *Chan
	val       interface{}
	cancelled bool
}

// Cancel prevents a pending event from firing. Cancelling an already-fired
// event is a no-op.
func (ev *event) Cancel() { ev.cancelled = true }

// eventLess orders events by (at, seq): the scheduler invariant every queue
// implementation (4-ary heap, calendar queue, same-time ring) must preserve.
func eventLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// eventHeap is a concrete 4-ary min-heap ordered by (at, seq). The wide node
// halves the tree depth of the binary heap it replaced, and the monomorphic
// methods avoid container/heap's interface boxing on every push and pop.
// It is the engine's default scheduler; see calQueue for the alternative.
type eventHeap struct{ evs []*event }

func (h *eventHeap) Len() int { return len(h.evs) }

// peek returns the earliest event without removing it, or nil if empty.
func (h *eventHeap) peek() *event {
	if len(h.evs) == 0 {
		return nil
	}
	return h.evs[0]
}

// push inserts ev, sifting it up to its (at, seq) position.
func (h *eventHeap) push(ev *event) {
	h.evs = append(h.evs, ev)
	i := len(h.evs) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !eventLess(h.evs[i], h.evs[parent]) {
			break
		}
		h.evs[i], h.evs[parent] = h.evs[parent], h.evs[i]
		i = parent
	}
}

// popMin removes and returns the earliest event (cancelled or not), or nil if
// the heap is empty. Skipping cancelled events is the engine's job, which
// also recycles them.
func (h *eventHeap) popMin() *event {
	n := len(h.evs)
	if n == 0 {
		return nil
	}
	min := h.evs[0]
	last := h.evs[n-1]
	h.evs[n-1] = nil
	h.evs = h.evs[:n-1]
	if n--; n > 0 {
		// Sift last down from the root's hole.
		i := 0
		for {
			first := 4*i + 1
			if first >= n {
				break
			}
			best := first
			end := first + 4
			if end > n {
				end = n
			}
			for c := first + 1; c < end; c++ {
				if eventLess(h.evs[c], h.evs[best]) {
					best = c
				}
			}
			if !eventLess(h.evs[best], last) {
				break
			}
			h.evs[i] = h.evs[best]
			i = best
		}
		h.evs[i] = last
	}
	return min
}

// eventRing is the engine's same-timestamp cohort FIFO: events scheduled for
// the current instant bypass the time-ordered scheduler entirely and drain
// in append order. Because the engine assigns seq monotonically, append
// order IS (at, seq) order for events that share the current timestamp, so
// the ring preserves the determinism invariant while turning the O(log n)
// sift per same-time event into an O(1) ring operation.
type eventRing struct {
	evs   []*event
	head  int
	count int
}

func (r *eventRing) push(ev *event) {
	if r.count == len(r.evs) {
		r.grow()
	}
	r.evs[(r.head+r.count)%len(r.evs)] = ev
	r.count++
}

func (r *eventRing) pop() *event {
	if r.count == 0 {
		return nil
	}
	ev := r.evs[r.head]
	r.evs[r.head] = nil
	r.head = (r.head + 1) % len(r.evs)
	r.count--
	return ev
}

func (r *eventRing) grow() {
	capc := 2 * len(r.evs)
	if capc < 16 {
		capc = 16
	}
	nb := make([]*event, capc)
	for i := 0; i < r.count; i++ {
		nb[i] = r.evs[(r.head+i)%len(r.evs)]
	}
	r.evs = nb
	r.head = 0
}
