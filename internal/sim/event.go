package sim

// event is a scheduled callback. Events compare by (at, seq) so that equal
// times preserve scheduling order, making runs reproducible. Fired events are
// recycled through the engine's free list, so a caller must not retain an
// *event past its firing time; Cancel on a still-pending event is fine.
//
// The common case — resuming a blocked process — carries the *Proc directly
// in proc instead of wrapping it in a closure, so the per-event closure
// allocation disappears from the engine's hot path.
type event struct {
	at        Time
	seq       uint64
	fn        func()
	proc      *Proc
	cancelled bool
}

// Cancel prevents a pending event from firing. Cancelling an already-fired
// event is a no-op.
func (ev *event) Cancel() { ev.cancelled = true }

// eventHeap is a concrete 4-ary min-heap ordered by (at, seq). The wide node
// halves the tree depth of the binary heap it replaced, and the monomorphic
// methods avoid container/heap's interface boxing on every push and pop.
type eventHeap struct{ evs []*event }

func (h *eventHeap) Len() int { return len(h.evs) }

func eventLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// push inserts ev, sifting it up to its (at, seq) position.
func (h *eventHeap) push(ev *event) {
	h.evs = append(h.evs, ev)
	i := len(h.evs) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !eventLess(h.evs[i], h.evs[parent]) {
			break
		}
		h.evs[i], h.evs[parent] = h.evs[parent], h.evs[i]
		i = parent
	}
}

// popMin removes and returns the earliest event (cancelled or not), or nil if
// the heap is empty. Skipping cancelled events is the engine's job, which
// also recycles them.
func (h *eventHeap) popMin() *event {
	n := len(h.evs)
	if n == 0 {
		return nil
	}
	min := h.evs[0]
	last := h.evs[n-1]
	h.evs[n-1] = nil
	h.evs = h.evs[:n-1]
	if n--; n > 0 {
		// Sift last down from the root's hole.
		i := 0
		for {
			first := 4*i + 1
			if first >= n {
				break
			}
			best := first
			end := first + 4
			if end > n {
				end = n
			}
			for c := first + 1; c < end; c++ {
				if eventLess(h.evs[c], h.evs[best]) {
					best = c
				}
			}
			if !eventLess(h.evs[best], last) {
				break
			}
			h.evs[i] = h.evs[best]
			i = best
		}
		h.evs[i] = last
	}
	return min
}
