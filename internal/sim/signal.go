package sim

// Signal is a broadcast wake-up primitive. Processes block on Wait; Fire
// wakes every current waiter at the moment it fires. Later waiters block
// until the next Fire.
type Signal struct {
	e       *Engine
	waiters []waiter
}

// NewSignal creates a signal bound to engine e.
func (e *Engine) NewSignal() *Signal { return &Signal{e: e} }

// Wait blocks the calling process until the signal fires.
func (s *Signal) Wait(p *Proc) {
	p.checkCurrent("Signal.Wait")
	s.waiters = append(s.waiters, waiter{p: p})
	p.blockOn("signal wait")
}

// WaitStep is Wait for state-machine processes: it queues sp as a waiter and
// returns the StepWaiting status the step function must return immediately;
// the next invocation runs after the signal fires.
func (s *Signal) WaitStep(sp *StepProc) Status {
	s.waiters = append(s.waiters, waiter{sp: sp})
	return sp.Waiting("signal wait")
}

// Fire wakes all processes currently waiting, in the order they began
// waiting. It may be called from a process or from an event closure.
func (s *Signal) Fire() {
	waiters := s.waiters
	s.waiters = nil
	for _, w := range waiters {
		s.e.wake(w)
	}
}

// FireAfter fires the signal d cycles from now. Processes that begin waiting
// in the meantime are woken too.
func (s *Signal) FireAfter(d Time) {
	s.e.schedule(s.e.now+d, func() { s.Fire() })
}

// Waiting returns the number of processes currently blocked on the signal.
func (s *Signal) Waiting() int { return len(s.waiters) }
