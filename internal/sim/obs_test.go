package sim

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestDeadlockWaitReasons checks the error captures what each stuck process
// was waiting on, recorded at block time, sorted by name.
func TestDeadlockWaitReasons(t *testing.T) {
	e := NewEngine()
	ch := e.NewChan()
	s := e.NewSignal()
	g := e.NewGate(1)
	e.Spawn("a-holder", func(p *Proc) {
		g.Acquire(p)
		p.Advance(10)
		s.Wait(p) // never fired
	})
	e.Spawn("b-gated", func(p *Proc) {
		p.Advance(5)
		g.Acquire(p) // held forever by a-holder
	})
	e.Spawn("c-recv", func(p *Proc) {
		p.Advance(7)
		ch.Recv(p) // nothing ever sent
	})

	err := e.Run()
	var de *DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("err = %v, want DeadlockError", err)
	}
	want := []BlockedProc{
		{Name: "a-holder", Reason: "signal wait", Since: 10},
		{Name: "b-gated", Reason: "gate acquire", Since: 5},
		{Name: "c-recv", Reason: "chan recv", Since: 7},
	}
	if len(de.Procs) != len(want) {
		t.Fatalf("Procs = %v, want %v", de.Procs, want)
	}
	for i, w := range want {
		if de.Procs[i] != w {
			t.Errorf("Procs[%d] = %+v, want %+v", i, de.Procs[i], w)
		}
	}
	msg := err.Error()
	for _, frag := range []string{"signal wait", "gate acquire", "chan recv", "since t=10"} {
		if !strings.Contains(msg, frag) {
			t.Errorf("error message %q missing %q", msg, frag)
		}
	}
}

// TestEngineObserve checks the engine reports events, queue-depth high water,
// and blocked dwell through an attached recorder.
func TestEngineObserve(t *testing.T) {
	rec := obs.New(obs.Config{Metrics: true})
	e := NewEngine()
	e.Observe(rec)
	if e.Recorder() != rec {
		t.Fatal("Recorder() did not return the attached recorder")
	}
	s := e.NewSignal()
	e.Spawn("waiter", func(p *Proc) { s.Wait(p) })
	e.Spawn("firer", func(p *Proc) {
		p.Advance(100)
		s.Fire()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got := rec.FindCounter("sim", "events", "").Value(); got != e.Events() {
		t.Errorf("sim.events counter = %d, want Events() = %d", got, e.Events())
	}
	if hw := rec.Gauge("sim", "queue_depth", "").Max(); hw < 2 {
		t.Errorf("queue-depth high water = %d, want >= 2", hw)
	}
	dwell := rec.FindHistogram("sim", "blocked_dwell_cycles", "")
	if dwell.Count() != 1 || dwell.Sum() != 100 {
		t.Errorf("dwell histogram count/sum = %d/%v, want 1/100", dwell.Count(), dwell.Sum())
	}
}

// TestResetReuse checks Reset returns the engine to time zero for a fresh
// run while Events() keeps accumulating monotonically, and that the
// observability counter tracks the reused engine across both runs.
func TestResetReuse(t *testing.T) {
	rec := obs.New(obs.Config{Metrics: true})
	e := NewEngine()
	e.Observe(rec)
	run := func() {
		e.Spawn("p", func(p *Proc) {
			for i := 0; i < 3; i++ {
				p.Advance(10)
			}
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
	}
	run()
	first := e.Events()
	if first == 0 {
		t.Fatal("no events executed in first run")
	}
	if e.Now() == 0 {
		t.Fatal("clock did not advance")
	}
	e.Reset()
	if e.Now() != 0 {
		t.Errorf("Now() after Reset = %d, want 0", e.Now())
	}
	if e.Events() != first {
		t.Errorf("Events() after Reset = %d, want %d (survives Reset)", e.Events(), first)
	}
	run()
	if e.Events() != 2*first {
		t.Errorf("Events() after second run = %d, want %d", e.Events(), 2*first)
	}
	if got := rec.FindCounter("sim", "events", "").Value(); got != 2*first {
		t.Errorf("sim.events counter = %d, want %d across both runs", got, 2*first)
	}
}

// TestResetTerminatesBlocked pins Reset terminating a still-blocked process
// (its goroutine unwinds via the kill sentinel, running defers) so a
// deadlocked engine can be reset and reused.
func TestResetTerminatesBlocked(t *testing.T) {
	e := NewEngine()
	s := e.NewSignal()
	cleaned := false
	e.Spawn("stuck", func(p *Proc) {
		defer func() { cleaned = true }()
		s.Wait(p)
	})
	if err := e.Run(); err == nil {
		t.Fatal("expected deadlock error")
	}
	e.Reset()
	if !cleaned {
		t.Error("blocked process's defer did not run during Reset")
	}
	e.Spawn("fresh", func(p *Proc) { p.Advance(5) })
	if err := e.Run(); err != nil {
		t.Fatalf("run after Reset: %v", err)
	}
	if e.Now() != 5 {
		t.Errorf("Now() after reuse = %d, want 5", e.Now())
	}
}
