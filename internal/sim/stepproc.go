package sim

import (
	"fmt"
	"math/rand"
)

// Status is a step function's verdict on what the engine should do with the
// process next. Step functions return it from the helper that established
// it: sp.Sleep / sp.SleepUntil return StepSleeping, Chan.RecvStep's failure
// path pairs with sp.Waiting, and StepDone is returned directly.
type Status int

const (
	// StepDone means the process has finished; its Step is never called
	// again.
	StepDone Status = iota
	// StepSleeping means the process asked (via Sleep or SleepUntil) to be
	// stepped again at a recorded wake time.
	StepSleeping
	// StepWaiting means the process registered itself with a waiting
	// primitive (e.g. Chan.RecvStep) and is stepped again when that
	// primitive wakes it.
	StepWaiting
)

// StepFn is the body of a state-machine process: called by the engine each
// time the process is runnable, it performs one resumption's worth of work
// and returns what to do next. All simulated state lives in the closure (or
// the struct the closure points at); there is no goroutine and no stack.
// Because the engine calls it directly, a panic in a StepFn propagates out
// of Run rather than being captured as a process error the way a goroutine
// Proc's panic is — keeping the per-step cost a bare function call.
type StepFn func(*StepProc) Status

// StepProc is a state-machine process: the zero-goroutine counterpart of
// Proc. Where a Proc is an ordinary Go function that blocks by yielding its
// goroutine to the engine (two context switches per resumption), a StepProc
// is a Step function the engine's event loop calls directly — resuming one
// costs a function call. The trade is explicitness: the process's control
// flow must be written as states the Step function dispatches on, which is
// why the hottest built-in process types (membank's bank accessors) use
// StepProc while user-authored algorithms keep the goroutine API.
//
// Scheduling is identical to Proc's: Sleep(d) consumes the same (time, seq)
// slot Advance(d) would, so a simulation converted between the two forms
// executes events in exactly the same order and produces byte-identical
// results. The differential tests in internal/experiments pin this.
type StepProc struct {
	e    *Engine
	id   int
	name string
	step StepFn
	rng  *rand.Rand
	done bool

	// wakeAt is the pending wake time recorded by Sleep/SleepUntil, read by
	// the engine after the step returns StepSleeping.
	wakeAt Time

	// waitReason names the primitive the process is blocked on ("" while
	// runnable or sleeping); blockedAt is when it began waiting. They feed
	// deadlock reports and the engine's blocked-dwell histogram, same as
	// Proc's fields.
	waitReason string
	blockedAt  Time
}

// SpawnStep creates a state-machine process named name whose Step function
// is fn, first stepped at the current simulated time. It occupies the same
// (time, seq) slot a Spawn at the same point would.
func (e *Engine) SpawnStep(name string, fn StepFn) *StepProc {
	sp := &StepProc{e: e, id: len(e.steps), name: name, step: fn}
	e.steps = append(e.steps, sp)
	e.scheduleStep(e.now, sp)
	return sp
}

// SpawnStepSeeded is SpawnStep with a process-local deterministic random
// source, available through Rand.
func (e *Engine) SpawnStepSeeded(name string, seed int64, fn StepFn) *StepProc {
	sp := e.SpawnStep(name, fn)
	sp.rng = rand.New(rand.NewSource(seed))
	return sp
}

// ID returns the process's spawn index among state-machine processes.
func (sp *StepProc) ID() int { return sp.id }

// Name returns the process's name.
func (sp *StepProc) Name() string { return sp.name }

// Engine returns the engine the process runs on.
func (sp *StepProc) Engine() *Engine { return sp.e }

// Now returns the current simulated time.
func (sp *StepProc) Now() Time { return sp.e.now }

// Rand returns the process-local random source, or nil if the process was
// created with SpawnStep rather than SpawnStepSeeded.
func (sp *StepProc) Rand() *rand.Rand { return sp.rng }

// Done reports whether the process has returned StepDone.
func (sp *StepProc) Done() bool { return sp.done }

// Sleep asks the engine to step the process again d cycles from now. It is
// the state-machine equivalent of Proc.Advance: the step function must
// return its result as the step's final action.
func (sp *StepProc) Sleep(d Time) Status {
	sp.wakeAt = sp.e.now + d
	return StepSleeping
}

// SleepUntil is Sleep with an absolute wake time t >= now.
func (sp *StepProc) SleepUntil(t Time) Status {
	if t < sp.e.now {
		panic(fmt.Sprintf("sim: StepProc %q sleeping into the past (t=%d, now=%d)", sp.name, t, sp.e.now))
	}
	sp.wakeAt = t
	return StepSleeping
}

// Waiting marks the process blocked on the named primitive and returns
// StepWaiting. Waiting primitives with step support (Chan.RecvStep) call it
// internally; a custom primitive that wakes the process through Engine
// scheduling can use it directly.
func (sp *StepProc) Waiting(reason string) Status {
	sp.waitReason = reason
	sp.blockedAt = sp.e.now
	return StepWaiting
}

// runStep executes one step of sp from the engine's event loop: exactly the
// control transfer runProc performs for a goroutine process, minus the two
// context switches.
func (e *Engine) runStep(sp *StepProc) {
	if sp.done {
		return
	}
	if sp.waitReason != "" {
		e.obsDwell.Observe(float64(e.now - sp.blockedAt))
		sp.waitReason = ""
	}
	switch sp.step(sp) {
	case StepDone:
		sp.done = true
	case StepSleeping:
		// Scheduling after the step body ran mirrors Advance consuming its
		// event seq after everything the process did earlier in the slot.
		e.scheduleStep(sp.wakeAt, sp)
	case StepWaiting:
		// Registered with a primitive; it will wake the process.
	}
}
