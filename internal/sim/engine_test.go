package sim

import (
	"testing"
)

func TestEngineEventOrder(t *testing.T) {
	e := NewEngine()
	var got []int
	e.At(10, func() { got = append(got, 1) })
	e.At(5, func() { got = append(got, 0) })
	e.At(10, func() { got = append(got, 2) }) // same time: schedule order
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event order = %v, want %v", got, want)
		}
	}
	if e.Now() != 10 {
		t.Errorf("final time = %d, want 10", e.Now())
	}
}

func TestEngineAfter(t *testing.T) {
	e := NewEngine()
	var at Time
	e.At(100, func() {
		e.After(50, func() { at = e.Now() })
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 150 {
		t.Errorf("After fired at %d, want 150", at)
	}
}

func TestEngineSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(50, func() {})
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestProcAdvance(t *testing.T) {
	e := NewEngine()
	var times []Time
	e.Spawn("walker", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Advance(7)
			times = append(times, p.Now())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []Time{7, 14, 21}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("times = %v, want %v", times, want)
		}
	}
}

func TestProcInterleavingDeterministic(t *testing.T) {
	run := func() []string {
		e := NewEngine()
		var trace []string
		for i := 0; i < 4; i++ {
			name := string(rune('a' + i))
			d := Time(3 + i)
			e.Spawn(name, func(p *Proc) {
				for j := 0; j < 5; j++ {
					p.Advance(d)
					trace = append(trace, p.Name())
				}
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return trace
	}
	a, b := run(), run()
	if len(a) != len(b) || len(a) != 20 {
		t.Fatalf("trace lengths %d, %d; want 20", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic interleaving at %d: %v vs %v", i, a, b)
		}
	}
}

func TestProcPanicPropagates(t *testing.T) {
	e := NewEngine()
	e.Spawn("boom", func(p *Proc) {
		p.Advance(1)
		panic("kaboom")
	})
	if err := e.Run(); err == nil {
		t.Fatal("expected error from panicking process")
	}
}

func TestDeadlockDetection(t *testing.T) {
	e := NewEngine()
	s := e.NewSignal()
	e.Spawn("stuck", func(p *Proc) { s.Wait(p) })
	err := e.Run()
	de, ok := err.(*DeadlockError)
	if !ok {
		t.Fatalf("err = %v, want DeadlockError", err)
	}
	if len(de.Blocked) != 1 || de.Blocked[0] != "stuck" {
		t.Errorf("blocked = %v, want [stuck]", de.Blocked)
	}
}

func TestStop(t *testing.T) {
	e := NewEngine()
	n := 0
	e.Spawn("counter", func(p *Proc) {
		for {
			p.Advance(1)
			n++
			if n == 10 {
				e.Stop()
				p.block() // never resumed; engine stops
			}
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Errorf("n = %d, want 10", n)
	}
}

func TestSignalBroadcast(t *testing.T) {
	e := NewEngine()
	s := e.NewSignal()
	var woken []string
	for _, name := range []string{"p0", "p1", "p2"} {
		e.Spawn(name, func(p *Proc) {
			s.Wait(p)
			woken = append(woken, p.Name())
		})
	}
	e.At(42, func() { s.Fire() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(woken) != 3 {
		t.Fatalf("woken = %v, want 3 processes", woken)
	}
	for i, w := range []string{"p0", "p1", "p2"} {
		if woken[i] != w {
			t.Errorf("wake order %v, want FIFO", woken)
			break
		}
	}
}

func TestSignalFireAfter(t *testing.T) {
	e := NewEngine()
	s := e.NewSignal()
	var at Time
	e.Spawn("w", func(p *Proc) {
		s.Wait(p)
		at = p.Now()
	})
	s.FireAfter(33)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 33 {
		t.Errorf("woke at %d, want 33", at)
	}
}

func TestChanFIFO(t *testing.T) {
	e := NewEngine()
	c := e.NewChan()
	var got []int
	e.Spawn("recv", func(p *Proc) {
		for i := 0; i < 3; i++ {
			got = append(got, c.Recv(p).(int))
		}
	})
	e.Spawn("send", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Advance(5)
			c.Send(i)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != i {
			t.Fatalf("got %v, want [0 1 2]", got)
		}
	}
}

func TestChanSendAfterDelaysVisibility(t *testing.T) {
	e := NewEngine()
	c := e.NewChan()
	var at Time
	e.Spawn("recv", func(p *Proc) {
		c.Recv(p)
		at = p.Now()
	})
	e.Spawn("send", func(p *Proc) {
		c.SendAfter(100, "hello")
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 100 {
		t.Errorf("received at %d, want 100", at)
	}
}

func TestChanTryRecv(t *testing.T) {
	e := NewEngine()
	c := e.NewChan()
	if _, ok := c.TryRecv(); ok {
		t.Error("TryRecv on empty chan reported a value")
	}
	c.Send(7)
	v, ok := c.TryRecv()
	if !ok || v.(int) != 7 {
		t.Errorf("TryRecv = %v,%v, want 7,true", v, ok)
	}
	if c.Len() != 0 {
		t.Errorf("Len = %d, want 0", c.Len())
	}
}

func TestServerSerialises(t *testing.T) {
	e := NewEngine()
	s := e.NewServer()
	var ends []Time
	e.Spawn("a", func(p *Proc) {
		_, end := s.Use(10)
		ends = append(ends, end)
		_, end = s.Use(10) // queues behind the first use
		ends = append(ends, end)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if ends[0] != 10 || ends[1] != 20 {
		t.Errorf("ends = %v, want [10 20]", ends)
	}
	if s.BusyCycles() != 20 || s.Uses() != 2 {
		t.Errorf("busy=%d uses=%d, want 20, 2", s.BusyCycles(), s.Uses())
	}
}

func TestServerIdleGap(t *testing.T) {
	e := NewEngine()
	s := e.NewServer()
	e.At(0, func() { s.Use(5) })
	e.At(100, func() {
		start, end := s.Use(5)
		if start != 100 || end != 105 {
			t.Errorf("start,end = %d,%d; want 100,105", start, end)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestGateBlocksAtCapacity(t *testing.T) {
	e := NewEngine()
	g := e.NewGate(2)
	var order []string
	worker := func(name string, hold Time) func(*Proc) {
		return func(p *Proc) {
			g.Acquire(p)
			order = append(order, name+"+")
			p.Advance(hold)
			order = append(order, name+"-")
			g.Release()
		}
	}
	e.Spawn("a", worker("a", 10))
	e.Spawn("b", worker("b", 10))
	e.Spawn("c", worker("c", 10)) // must wait for a or b
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// c acquires only after a release.
	idx := func(s string) int {
		for i, v := range order {
			if v == s {
				return i
			}
		}
		return -1
	}
	if idx("c+") < idx("a-") {
		t.Errorf("order = %v: c acquired before a released", order)
	}
	if g.Free() != 2 {
		t.Errorf("free = %d, want 2", g.Free())
	}
}

func TestSpawnSeededRand(t *testing.T) {
	e := NewEngine()
	var a, b int64
	e.SpawnSeeded("r1", 42, func(p *Proc) { a = p.Rand().Int63() })
	e.SpawnSeeded("r2", 42, func(p *Proc) { b = p.Rand().Int63() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("same seed produced different values: %d vs %d", a, b)
	}
}

func TestYieldRunsAfterQueuedEvents(t *testing.T) {
	e := NewEngine()
	var order []string
	e.Spawn("p", func(p *Proc) {
		e.After(0, func() { order = append(order, "event") })
		p.Yield()
		order = append(order, "proc")
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "event" || order[1] != "proc" {
		t.Errorf("order = %v, want [event proc]", order)
	}
}

func TestEventCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.schedule(10, func() { fired = true })
	ev.Cancel()
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Error("cancelled event fired")
	}
}

func BenchmarkEngineEventThroughput(b *testing.B) {
	e := NewEngine()
	e.Spawn("ticker", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Advance(1)
		}
	})
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkEngineManyProcs(b *testing.B) {
	e := NewEngine()
	const procs = 64
	per := b.N/procs + 1
	for i := 0; i < procs; i++ {
		d := Time(1 + i%7)
		e.Spawn("p", func(p *Proc) {
			for j := 0; j < per; j++ {
				p.Advance(d)
			}
		})
	}
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

func TestAdvanceFromOutsidePanics(t *testing.T) {
	e := NewEngine()
	var p *Proc
	p = e.Spawn("victim", func(pp *Proc) { pp.Advance(10) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("Advance from outside the process did not panic")
		}
	}()
	p.Advance(1)
}

func TestProcAccessors(t *testing.T) {
	e := NewEngine()
	p := e.Spawn("named", func(pp *Proc) {
		if pp.ID() != 0 || pp.Name() != "named" || pp.Engine() != e {
			t.Error("accessors wrong")
		}
		if pp.Rand() != nil {
			t.Error("unseeded proc should have nil Rand")
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !p.Done() {
		t.Error("Done() false after Run")
	}
}

func TestEventsCounter(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 5; i++ {
		e.At(Time(i), func() {})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.Events() != 5 {
		t.Errorf("Events = %d, want 5", e.Events())
	}
}

func TestGateInvalidCapacityPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Error("NewGate(0) did not panic")
		}
	}()
	e.NewGate(0)
}
