package sim

import (
	"math/rand"
	"testing"
)

// TestCalQueueOrderProperty pushes randomized schedules through the calendar
// queue and a reference 4-ary heap and checks both pop identical (at, seq)
// sequences, including interleaved push/pop phases that force resizes and
// scan-position rewinds.
func TestCalQueueOrderProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		q := newCalQueue()
		h := &eventHeap{}
		var seq uint64
		push := func(at Time) {
			ev1 := &event{at: at, seq: seq}
			ev2 := &event{at: at, seq: seq}
			seq++
			q.push(ev1)
			h.push(ev2)
		}
		check := func() {
			a, b := q.popMin(), h.popMin()
			if (a == nil) != (b == nil) {
				t.Fatalf("trial %d: calendar empty=%v heap empty=%v", trial, a == nil, b == nil)
			}
			if a != nil && (a.at != b.at || a.seq != b.seq) {
				t.Fatalf("trial %d: calendar popped (%d,%d), heap (%d,%d)", trial, a.at, a.seq, b.at, b.seq)
			}
		}
		var now Time
		for step := 0; step < 400; step++ {
			switch rng.Intn(3) {
			case 0, 1:
				// Bias toward clustered times to hit same-bucket inserts and
				// occasionally far-future ones to leave year gaps.
				d := Time(rng.Intn(8))
				if rng.Intn(10) == 0 {
					d = Time(rng.Intn(100000))
				}
				push(now + d)
			default:
				if nxt := q.peek(); nxt != nil && nxt.at > now {
					now = nxt.at
				}
				check()
			}
		}
		for q.Len() > 0 || h.Len() > 0 {
			check()
		}
	}
}

// TestCalQueueRewind pins the push-behind-window path: after draining far
// into the future, a push at an earlier time must still pop first.
func TestCalQueueRewind(t *testing.T) {
	q := newCalQueue()
	q.push(&event{at: 1000, seq: 0})
	if got := q.peek(); got.at != 1000 {
		t.Fatalf("peek = %d, want 1000", got.at)
	}
	q.push(&event{at: 50, seq: 1})
	if got := q.popMin(); got.at != 50 {
		t.Fatalf("popMin = %d, want 50 (rewind failed)", got.at)
	}
	if got := q.popMin(); got.at != 1000 {
		t.Fatalf("popMin = %d, want 1000", got.at)
	}
	if q.popMin() != nil {
		t.Fatal("queue should be empty")
	}
}

// TestEngineCalendarMatchesHeap runs an identical mixed simulation on both
// schedulers and checks the runs agree on final time and event count — the
// engine-level form of the order property.
func TestEngineCalendarMatchesHeap(t *testing.T) {
	run := func(kind Scheduler) (Time, uint64) {
		e := NewEngineSched(kind)
		c := e.NewChan()
		for i := 0; i < 8; i++ {
			d := Time(1 + i%5)
			e.SpawnSeeded("p", int64(i), func(p *Proc) {
				rng := p.Rand()
				for j := 0; j < 200; j++ {
					p.Advance(Time(rng.Intn(int(3*d)) + 1))
					c.SendAfter(d, j)
				}
			})
		}
		e.Spawn("drain", func(p *Proc) {
			for i := 0; i < 8*200; i++ {
				c.Recv(p)
			}
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return e.Now(), e.Events()
	}
	ht, hn := run(SchedHeap)
	ct, cn := run(SchedCalendar)
	if ht != ct || hn != cn {
		t.Errorf("heap run (t=%d, events=%d) != calendar run (t=%d, events=%d)", ht, hn, ct, cn)
	}
}

// TestDefaultSchedulerSelection checks NewEngine honours the package-level
// scheduler switch.
func TestDefaultSchedulerSelection(t *testing.T) {
	old := DefaultScheduler
	defer func() { DefaultScheduler = old }()
	DefaultScheduler = SchedCalendar
	if e := NewEngine(); e.cal == nil {
		t.Error("DefaultScheduler=calendar did not select the calendar queue")
	}
	DefaultScheduler = SchedHeap
	if e := NewEngine(); e.cal != nil {
		t.Error("DefaultScheduler=heap selected the calendar queue")
	}
}
