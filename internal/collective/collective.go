// Package collective provides reusable bulk-synchronous collective
// operations over the QSM Ctx interface: broadcast, all-gather, reductions,
// prefix scans and uniform all-to-all. Each operation is a phased QSM
// program fragment — it calls Sync internally — with the communication cost
// stated in its doc comment in QSM terms (words of m_rw per processor).
//
// Operations allocate their scratch arrays through a Group, which derives
// collision-free shared-array names; because every processor executes the
// same collective sequence, the derived names agree across processors.
// Scratch arrays are freed before the operation returns.
package collective

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cpu"
)

// Group issues collectives for one processor. Create one per processor with
// the same prefix on all processors and call the same operations in the
// same order.
type Group struct {
	ctx core.Ctx
	pfx string
	seq int
}

// NewGroup creates a collective group over ctx.
func NewGroup(ctx core.Ctx, prefix string) *Group {
	return &Group{ctx: ctx, pfx: prefix}
}

func (g *Group) scratch(kind string, n int) core.Handle {
	name := fmt.Sprintf("%s.%s.%d", g.pfx, kind, g.seq)
	g.seq++
	return g.ctx.RegisterSpec(name, n, core.LayoutSpec{Kind: core.LayoutBlocked})
}

// Broadcast distributes root's vals to every processor and returns the
// received copy (root included). Cost: the root writes k(p-1) remote words;
// 2 phases.
func (g *Group) Broadcast(root int, vals []int64) []int64 {
	ctx := g.ctx
	p, id := ctx.P(), ctx.ID()
	k := len(vals)
	rows := g.scratch("bcast", p*k)
	ctx.Sync()
	if id == root {
		for r := 0; r < p; r++ {
			if r == id {
				ctx.WriteLocal(rows, r*k, vals)
				continue
			}
			ctx.Put(rows, r*k, vals)
		}
		ctx.Compute(cpu.BlockCopy(p * k))
	}
	ctx.Sync()
	out := make([]int64, k)
	ctx.ReadLocal(rows, id*k, out)
	ctx.Free(rows)
	ctx.Sync()
	return out
}

// AllGather collects each processor's k-word contribution; the result is
// laid out by processor id. Every contribution must have the same length.
// Cost: k(p-1) remote words written per processor; 2 phases.
func (g *Group) AllGather(mine []int64) []int64 {
	ctx := g.ctx
	p, id := ctx.P(), ctx.ID()
	k := len(mine)
	rows := g.scratch("gather", p*p*k) // row r holds all contributions for reader r
	ctx.Sync()
	for r := 0; r < p; r++ {
		at := r*p*k + id*k
		if r == id {
			ctx.WriteLocal(rows, at, mine)
			continue
		}
		ctx.Put(rows, at, mine)
	}
	ctx.Compute(cpu.BlockCopy(p * k))
	ctx.Sync()
	out := make([]int64, p*k)
	ctx.ReadLocal(rows, id*p*k, out)
	ctx.Free(rows)
	ctx.Sync()
	return out
}

// Op is a binary reduction operator.
type Op func(a, b int64) int64

// Standard reduction operators.
var (
	Sum Op = func(a, b int64) int64 { return a + b }
	Min Op = func(a, b int64) int64 {
		if b < a {
			return b
		}
		return a
	}
	Max Op = func(a, b int64) int64 {
		if b > a {
			return b
		}
		return a
	}
)

// AllReduce combines each processor's k-word vector element-wise with op;
// every processor receives the full result. Cost: as AllGather plus kp
// local operations.
func (g *Group) AllReduce(mine []int64, op Op) []int64 {
	ctx := g.ctx
	p := ctx.P()
	k := len(mine)
	all := g.AllGather(mine)
	out := make([]int64, k)
	copy(out, all[:k])
	for r := 1; r < p; r++ {
		for i := 0; i < k; i++ {
			out[i] = op(out[i], all[r*k+i])
		}
	}
	ctx.Compute(cpu.BlockSum(p * k))
	return out
}

// ExclusiveScan returns op over the values of all lower-numbered
// processors (identity for processor 0), plus the total over everyone.
// Cost: as AllGather with k = 1.
func (g *Group) ExclusiveScan(mine int64, op Op, identity int64) (prefix, total int64) {
	ctx := g.ctx
	all := g.AllGather([]int64{mine})
	prefix, total = identity, identity
	for r, v := range all {
		if r < ctx.ID() {
			prefix = op(prefix, v)
		}
		total = op(total, v)
	}
	ctx.Compute(cpu.BlockSum(len(all)))
	return prefix, total
}

// AllToAll delivers send[dst] (each exactly k words) to processor dst and
// returns the p received blocks indexed by source. Cost: k(p-1) remote
// words written per processor; 2 phases.
func (g *Group) AllToAll(send [][]int64, k int) [][]int64 {
	ctx := g.ctx
	p, id := ctx.P(), ctx.ID()
	if len(send) != p {
		panic(fmt.Sprintf("collective: AllToAll needs %d blocks, got %d", p, len(send)))
	}
	for dst, blk := range send {
		if len(blk) != k {
			panic(fmt.Sprintf("collective: AllToAll block %d has %d words, want %d", dst, len(blk), k))
		}
	}
	rows := g.scratch("a2a", p*p*k) // row r: blocks destined to r, by source
	ctx.Sync()
	for dst := 0; dst < p; dst++ {
		at := dst*p*k + id*k
		if dst == id {
			ctx.WriteLocal(rows, at, send[dst])
			continue
		}
		ctx.Put(rows, at, send[dst])
	}
	ctx.Compute(cpu.BlockCopy(p * k))
	ctx.Sync()
	mine := make([]int64, p*k)
	ctx.ReadLocal(rows, id*p*k, mine)
	out := make([][]int64, p)
	for src := 0; src < p; src++ {
		out[src] = mine[src*k : (src+1)*k : (src+1)*k]
	}
	ctx.Free(rows)
	ctx.Sync()
	return out
}

// Barrier is a pure synchronization phase with no data movement.
func (g *Group) Barrier() { g.ctx.Sync() }
