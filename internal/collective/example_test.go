package collective_test

import (
	"fmt"

	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/par"
)

// ExampleGroup_AllReduce sums a per-processor value across the machine.
func ExampleGroup_AllReduce() {
	m := par.NewMachine(8, par.Options{Seed: 1})
	out := make([]int64, 8)
	err := m.Run(func(ctx core.Ctx) {
		g := collective.NewGroup(ctx, "ex")
		total := g.AllReduce([]int64{int64(ctx.ID() + 1)}, collective.Sum)
		out[ctx.ID()] = total[0]
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(out[0], out[7])
	// Output: 36 36
}

// ExampleGroup_ExclusiveScan computes each processor's prefix offset, the
// building block for distributing variable-sized output.
func ExampleGroup_ExclusiveScan() {
	m := par.NewMachine(4, par.Options{Seed: 1})
	offsets := make([]int64, 4)
	err := m.Run(func(ctx core.Ctx) {
		mine := int64(10 * (ctx.ID() + 1)) // items this processor produced
		off, total := g(ctx).ExclusiveScan(mine, collective.Sum, 0)
		offsets[ctx.ID()] = off
		if total != 100 {
			panic("wrong total")
		}
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(offsets)
	// Output: [0 10 30 60]
}

func g(ctx core.Ctx) *collective.Group { return collective.NewGroup(ctx, "ex2") }
