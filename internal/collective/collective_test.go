package collective

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/par"
	"repro/internal/qsmlib"
)

// run executes prog on both backends and fails on any error.
func run(t *testing.T, p int, prog core.Program) {
	t.Helper()
	sm := qsmlib.New(p, qsmlib.Options{Seed: 3})
	if err := sm.Run(prog); err != nil {
		t.Fatalf("sim: %v", err)
	}
	nm := par.NewMachine(p, par.Options{Seed: 3})
	if err := nm.Run(prog); err != nil {
		t.Fatalf("native: %v", err)
	}
}

func TestBroadcast(t *testing.T) {
	const p = 6
	run(t, p, func(ctx core.Ctx) {
		g := NewGroup(ctx, "t")
		got := g.Broadcast(2, []int64{7, 8, 9})
		for i, w := range []int64{7, 8, 9} {
			if got[i] != w {
				panic(fmt.Sprintf("proc %d: broadcast got %v", ctx.ID(), got))
			}
		}
	})
}

func TestBroadcastFromEveryRoot(t *testing.T) {
	const p = 4
	run(t, p, func(ctx core.Ctx) {
		g := NewGroup(ctx, "t")
		for root := 0; root < p; root++ {
			v := []int64{int64(100 + root)}
			got := g.Broadcast(root, v)
			if got[0] != int64(100+root) {
				panic("wrong broadcast value")
			}
		}
	})
}

func TestAllGather(t *testing.T) {
	const p = 5
	run(t, p, func(ctx core.Ctx) {
		g := NewGroup(ctx, "t")
		mine := []int64{int64(ctx.ID() * 2), int64(ctx.ID()*2 + 1)}
		all := g.AllGather(mine)
		if len(all) != p*2 {
			panic("wrong length")
		}
		for i, v := range all {
			if v != int64(i) {
				panic(fmt.Sprintf("allgather[%d] = %d", i, v))
			}
		}
	})
}

func TestAllReduce(t *testing.T) {
	const p = 8
	run(t, p, func(ctx core.Ctx) {
		g := NewGroup(ctx, "t")
		id := int64(ctx.ID())
		sum := g.AllReduce([]int64{id, -id}, Sum)
		if sum[0] != 28 || sum[1] != -28 {
			panic(fmt.Sprintf("sum = %v", sum))
		}
		mn := g.AllReduce([]int64{id + 10}, Min)
		if mn[0] != 10 {
			panic("min wrong")
		}
		mx := g.AllReduce([]int64{id}, Max)
		if mx[0] != 7 {
			panic("max wrong")
		}
	})
}

func TestExclusiveScan(t *testing.T) {
	const p = 7
	run(t, p, func(ctx core.Ctx) {
		g := NewGroup(ctx, "t")
		id := int64(ctx.ID())
		prefix, total := g.ExclusiveScan(id+1, Sum, 0)
		want := id * (id + 1) / 2
		if prefix != want {
			panic(fmt.Sprintf("proc %d: prefix = %d, want %d", id, prefix, want))
		}
		if total != 28 {
			panic("total wrong")
		}
	})
}

func TestAllToAll(t *testing.T) {
	const p, k = 4, 3
	run(t, p, func(ctx core.Ctx) {
		g := NewGroup(ctx, "t")
		send := make([][]int64, p)
		for dst := 0; dst < p; dst++ {
			send[dst] = make([]int64, k)
			for i := range send[dst] {
				send[dst][i] = int64(ctx.ID()*100 + dst*10 + i)
			}
		}
		got := g.AllToAll(send, k)
		for src := 0; src < p; src++ {
			for i := 0; i < k; i++ {
				want := int64(src*100 + ctx.ID()*10 + i)
				if got[src][i] != want {
					panic(fmt.Sprintf("a2a[%d][%d] = %d, want %d", src, i, got[src][i], want))
				}
			}
		}
	})
}

func TestAllToAllBadShapePanics(t *testing.T) {
	sm := qsmlib.New(2, qsmlib.Options{Seed: 1})
	err := sm.Run(func(ctx core.Ctx) {
		g := NewGroup(ctx, "t")
		g.AllToAll([][]int64{{1}}, 1) // wrong block count
	})
	if err == nil {
		t.Fatal("shape mismatch should error")
	}
}

func TestCollectiveSequenceReusesNames(t *testing.T) {
	// Two groups with different prefixes and repeated ops must not collide.
	run(t, 3, func(ctx core.Ctx) {
		a := NewGroup(ctx, "a")
		b := NewGroup(ctx, "b")
		for i := 0; i < 3; i++ {
			a.Broadcast(0, []int64{int64(i)})
			b.AllGather([]int64{int64(ctx.ID())})
		}
	})
}

func TestCollectiveCostProfile(t *testing.T) {
	// AllGather's communication is k(p-1) remote words per processor.
	const p, k = 4, 5
	m := qsmlib.New(p, qsmlib.Options{Seed: 2})
	prof, err := m.RunProfiled(func(ctx core.Ctx) {
		g := NewGroup(ctx, "t")
		g.AllGather(make([]int64, k))
	}, core.Flags{})
	if err != nil {
		t.Fatal(err)
	}
	var maxRW uint64
	for _, ph := range prof.Phases {
		if rw := ph.MaxRW(); rw > maxRW {
			maxRW = rw
		}
	}
	if maxRW != uint64(k*(p-1)) {
		t.Errorf("allgather m_rw = %d, want %d", maxRW, k*(p-1))
	}
}

func BenchmarkAllReduceSim(b *testing.B) {
	m := qsmlib.New(16, qsmlib.Options{Seed: 1})
	if err := m.Run(func(ctx core.Ctx) {
		g := NewGroup(ctx, "b")
		v := []int64{int64(ctx.ID())}
		for i := 0; i < b.N; i++ {
			g.AllReduce(v, Sum)
		}
	}); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkAllReduceNative(b *testing.B) {
	m := par.NewMachine(8, par.Options{Seed: 1})
	if err := m.Run(func(ctx core.Ctx) {
		g := NewGroup(ctx, "b")
		v := []int64{int64(ctx.ID())}
		for i := 0; i < b.N; i++ {
			g.AllReduce(v, Sum)
		}
	}); err != nil {
		b.Fatal(err)
	}
}
