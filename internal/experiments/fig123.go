package experiments

import (
	"repro/internal/algorithms"
	"repro/internal/machine"
	"repro/internal/models"
	"repro/internal/obs"
	"repro/internal/report"
)

// defaultP is the simulated machine size of Section 3 (16 nodes).
const defaultP = 16

// whpEps is the failure budget of the WHP prediction lines (the paper's
// bounds hold for at least 90% of runs).
const whpEps = 0.1

// oversample is the sample-sort over-sampling factor used throughout.
const oversample = 2

func sweepSizes(quick bool, sizes []int) []int {
	if quick && len(sizes) > 3 {
		return []int{sizes[0], sizes[len(sizes)/2], sizes[len(sizes)-1]}
	}
	return sizes
}

func init() {
	register("fig1", "Figure 1: prefix sums, measured vs QSM/BSP predicted communication", fig1)
	register("fig2", "Figure 2: sample sort, measured vs Best-case/WHP/QSM-estimate/BSP-estimate", fig2)
	register("fig3", "Figure 3: list ranking, measured vs Best-case/WHP/QSM-estimate/BSP-estimate", fig3)
}

func fig1(opt Options) (*Result, error) {
	net := machine.DefaultNet()
	mc := Calibrate(net, opt.Seed, opt.parallelism())
	c := mc.Calib(defaultP)
	sizes := sweepSizes(opt.Quick, []int{4096, 16384, 65536, 262144, 1048576})

	per := sweepRuns(opt, len(sizes), opt.runs(), func(pt, r int, rec *obs.Recorder) measured {
		return prefixOnce(net, sizes[pt], defaultP, opt.Seed+int64(r), rec)
	})

	t := report.NewTable("Figure 1: prefix sums (p=16, g=3, l=1600, o=400; cycles)",
		"n", "measured total", "measured comm", "QSM pred", "BSP pred", "QSM/measured")
	for i, n := range sizes {
		m := avgMeasured(per[i])
		qsm := c.PrefixQSMComm()
		bsp := c.PrefixBSPComm()
		t.AddRow(report.Cycles(float64(n)), report.Cycles(m.Total), report.Cycles(m.Comm),
			report.Cycles(qsm), report.Cycles(bsp), report.F(qsm/m.Comm))
	}
	t.AddNote("QSM and BSP vastly underestimate: prefix communication is tiny and dominated by o and l, which both models omit (the paper's Figure 1 finding). Absolute error stays small.")
	t.AddNote("calibration: put %.1f c/B, get %.1f c/B, L=%s cycles", mc.PutGapPB, mc.GetGapPB, report.Cycles(mc.LBarrier))
	return &Result{ID: "fig1", Title: Title("fig1"), Tables: []*report.Table{t}}, nil
}

func fig2(opt Options) (*Result, error) {
	net := machine.DefaultNet()
	mc := Calibrate(net, opt.Seed, opt.parallelism())
	c := mc.Calib(defaultP)
	sizes := sweepSizes(opt.Quick, []int{16384, 32768, 65536, 131072, 262144, 524288, 1048576})

	per := sweepRuns(opt, len(sizes), opt.runs(), func(pt, r int, rec *obs.Recorder) sortRun {
		return sortOnce(net, sizes[pt], defaultP, opt.Seed+int64(r), rec)
	})

	t := report.NewTable("Figure 2: sample sort (p=16; communication cycles)",
		"n", "total", "comm", "Best case", "WHP bound", "QSM est", "BSP est", "est/meas")
	for i, n := range sizes {
		sr := avgSort(per[i])
		best := c.SortQSMComm(n, oversample, models.SortBestCase(n, defaultP))
		whp := c.SortQSMComm(n, oversample, models.SortWHP(n, defaultP, oversample, whpEps))
		meas := models.SortSkews{B: sr.B, R: sr.R, OutW: sr.OutW}
		est := c.SortQSMComm(n, oversample, meas)
		bsp := c.SortBSPComm(n, oversample, meas)
		t.AddRow(report.Cycles(float64(n)), report.Cycles(sr.Total), report.Cycles(sr.Comm),
			report.Cycles(best), report.Cycles(whp), report.Cycles(est), report.Cycles(bsp),
			report.F(est/sr.Comm))
	}
	t.AddNote("expected shape: measured falls between Best case and WHP bound except at small n; QSM estimate converges toward measured as n grows; BSP estimate adds 5L.")
	return &Result{ID: "fig2", Title: Title("fig2"), Tables: []*report.Table{t}}, nil
}

func fig3(opt Options) (*Result, error) {
	net := machine.DefaultNet()
	mc := Calibrate(net, opt.Seed, opt.parallelism())
	// List ranking's traffic is scattered single words, so its predictions
	// are charged at the word-granularity gap.
	c := mc.ScatterCalib(defaultP)
	sizes := sweepSizes(opt.Quick, []int{16384, 32768, 65536, 131072, 262144, 524288})
	iters := 16 // 4*log2(16)

	rankIters := algorithms.Iterations(0, defaultP)
	per := sweepRuns(opt, len(sizes), opt.runs(), func(pt, r int, rec *obs.Recorder) rankRun {
		return rankOnce(net, sizes[pt], defaultP, rankIters, opt.Seed+int64(r), rec)
	})

	t := report.NewTable("Figure 3: list ranking (p=16; communication cycles)",
		"n", "total", "comm", "Best case", "WHP bound", "QSM est", "BSP est", "est/meas")
	for i, n := range sizes {
		rr := avgRank(per[i])
		best := c.RankQSMComm(models.RankBestCase(n, defaultP, iters))
		whp := c.RankQSMComm(models.RankWHP(n, defaultP, iters, whpEps))
		est := c.RankQSMComm(models.RankMeasured(rr.X, rr.Z))
		bsp := c.RankBSPComm(models.RankMeasured(rr.X, rr.Z), iters)
		t.AddRow(report.Cycles(float64(n)), report.Cycles(rr.Total), report.Cycles(rr.Comm),
			report.Cycles(best), report.Cycles(whp), report.Cycles(est), report.Cycles(bsp),
			report.F(est/rr.Comm))
	}
	t.AddNote("expected shape: prediction accuracy improves with n; BSP (adding %d phases * L) lands nearer the measurement than QSM at moderate n.", models.RankPhases(iters))
	return &Result{ID: "fig3", Title: Title("fig3"), Tables: []*report.Table{t}}, nil
}
