package experiments

import (
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/sched"
)

// This file is the parallel experiment runner. Every driver expresses its
// sweep as independent (sweep-point, run) simulation jobs and submits them
// through parMap or sweepRuns; the jobs fan across Options.Parallelism
// workers on the work-stealing scheduler (internal/sched), each job
// building its own sim.Engine/qsmlib.Machine, and the results land in an
// index-addressed slice. Because aggregation then walks that slice in
// submission order, every averaging and table-building step sees results in
// exactly the order the serial loop produced them — the rendered tables are
// byte-identical at any parallelism level and under any steal interleaving.

// workerPanic carries a worker's panic value together with the goroutine
// stack captured at recover time, so a simulation failing under -parallel
// reports where it died rather than just the panic message. It is the
// scheduler's panic envelope; the alias keeps the runner's historical name
// for it.
type workerPanic = sched.Panic

// sweepCancelled is the sentinel panic the runner raises when
// Options.Context is cancelled; Run converts it back into an error.
type sweepCancelled struct{ err error }

// cancelCause unwraps a recovered panic value to the context error behind a
// runner-raised cancellation, from either the serial path (raised directly)
// or a worker pool (wrapped in workerPanic).
func cancelCause(r any) (error, bool) {
	switch v := r.(type) {
	case *sweepCancelled:
		return v.err, true
	case *workerPanic:
		if c, ok := v.Val.(*sweepCancelled); ok {
			return c.err, true
		}
	}
	return nil, false
}

// parMap runs fn for every index in [0, n) across a pool of par stealing
// workers and returns the results in index order. fn must be safe to call
// concurrently and deterministic in its argument; simulator state must be
// local to the call. A panic in any job is captured — together with the
// worker's stack — and re-raised in the caller after all workers drain, so
// a failing simulation reports the same way it does serially.
func parMap[T any](par, n int, fn func(i int) T) []T {
	return parMapCost(par, n, nil, "", fn)
}

// parMapCost is parMap with a cost hint: when non-nil, cost seeds the
// per-worker deques in descending estimated job cost so the biggest jobs
// start first (LPT list scheduling) instead of being discovered at the tail
// of a monotone sweep. name labels the pool in live introspection.
func parMapCost[T any](par, n int, cost func(i int) float64, name string, fn func(i int) T) []T {
	out := make([]T, n)
	sched.Map(par, n, func(i int) { out[i] = fn(i) }, sched.Options{Cost: cost, Name: name})
	return out
}

// fixedParMap is the pre-stealing fixed pool: par workers claiming jobs off
// a single shared counter in submission order. It is retained only as the
// baseline the `runner` bench driver measures the stealing scheduler
// against — no driver fans over it.
func fixedParMap[T any](par, n int, fn func(i int) T) []T {
	out := make([]T, n)
	if par > n {
		par = n
	}
	if par <= 1 {
		for i := 0; i < n; i++ {
			out[i] = fn(i)
		}
		return out
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicked atomic.Value
	)
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicked.CompareAndSwap(nil, &workerPanic{Val: r, Stack: debug.Stack()})
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	if r := panicked.Load(); r != nil {
		panic(r)
	}
	return out
}

// progressTracker drives Options.Progress callbacks for one sweep. A nil
// tracker is a no-op.
type progressTracker struct {
	fn     func(Progress)
	start  time.Time
	points int
	runs   int
	done   []atomic.Int32 // completed runs per point
}

func newProgressTracker(opt Options, points, runs int) *progressTracker {
	if opt.Progress == nil {
		return nil
	}
	return &progressTracker{
		fn:     opt.Progress,
		start:  time.Now(),
		points: points,
		runs:   runs,
		done:   make([]atomic.Int32, points),
	}
}

func (pt *progressTracker) jobDone(point int) {
	if pt == nil {
		return
	}
	pt.fn(Progress{
		Point:    point,
		Points:   pt.points,
		RunsDone: int(pt.done[point].Add(1)),
		Runs:     pt.runs,
		Elapsed:  time.Since(pt.start),
	})
}

// sweepCost is the default cost hint for sweep fan-outs: sweeps enumerate
// their points in ascending problem size, so a job's flat index is a
// monotone proxy for its cost. Seeding by it starts the most expensive
// (large-n) jobs first, which is exactly the skew that strands a fixed pool.
func sweepCost(i int) float64 { return float64(i) }

// sweepRuns fans the full (point, run) grid of a sweep across the stealing
// pool and returns result[point][run]. This is the widest fan-out: with
// points*runs jobs in one pool, a slow point cannot leave workers idle the
// way per-point parallelism would, and stealing rebalances whatever skew
// the cost hint mispredicts.
//
// Each job receives its own obs.Recorder (nil when Options.Obs is nil),
// reserved from the sink in flat (point, run) order before the fan-out so
// the eventual Merged() aggregation is independent of worker scheduling.
func sweepRuns[T any](opt Options, points, runs int, fn func(point, run int, rec *obs.Recorder) T) [][]T {
	base := opt.Obs.Reserve(points * runs)
	pt := newProgressTracker(opt, points, runs)
	flat := parMapCost(opt.parallelism(), points*runs, sweepCost, "sweep", func(i int) T {
		if err := opt.ctxErr(); err != nil {
			panic(&sweepCancelled{err})
		}
		sp := opt.wallSpan(i/runs, i%runs)
		v := fn(i/runs, i%runs, opt.Obs.Recorder(base+i))
		sp.End()
		pt.jobDone(i / runs)
		return v
	})
	out := make([][]T, points)
	for p := 0; p < points; p++ {
		out[p] = flat[p*runs : (p+1)*runs]
	}
	return out
}

// sweepPoints fans one job per sweep point, for drivers whose per-point work
// is not a plain repetition grid (adaptive scans, multi-machine jobs).
func sweepPoints[T any](opt Options, points int, fn func(point int, rec *obs.Recorder) T) []T {
	base := opt.Obs.Reserve(points)
	pt := newProgressTracker(opt, points, 1)
	return parMapCost(opt.parallelism(), points, sweepCost, "sweep", func(i int) T {
		if err := opt.ctxErr(); err != nil {
			panic(&sweepCancelled{err})
		}
		sp := opt.wallSpan(i, 0)
		v := fn(i, opt.Obs.Recorder(base+i))
		sp.End()
		pt.jobDone(i)
		return v
	})
}

// wallSpan opens the wall-clock span for one (point, run) job, or nil (a
// no-op to End) when wall tracing is off. The guard keeps the disabled path
// free of the span-name allocation.
func (o Options) wallSpan(point, run int) *obs.WallSpan {
	if o.Wall == nil {
		return nil
	}
	return o.Wall.Start(o.TraceID, "runner", "sweep", fmt.Sprintf("point %d run %d", point, run))
}
