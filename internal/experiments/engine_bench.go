package experiments

import (
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/stats"
)

func init() {
	register("engine", "Engine: event-loop workload shapes for the perf trajectory", engineBench)
}

// engineWorkloads are the schedule shapes BENCH_engine.json tracks across
// PRs: each row drives the raw engine the way one subsystem does, and the
// table records only simulation-determined values (event counts and final
// sim time), so it is byte-identical across schedulers, process kinds, and
// parallelism. The wall-clock side — events/sec — lands in the BENCH record
// cmd/qsmbench -json wraps around the whole driver.
var engineWorkloads = []struct {
	name string
	run  func(n int, seed int64) (uint64, sim.Time)
}{
	// One state-machine process advancing a cycle per event: the floor of
	// per-event cost with zero context switches.
	{"step-ticker", func(n int, _ int64) (uint64, sim.Time) {
		e := sim.NewEngine()
		i := 0
		e.SpawnStep("ticker", func(sp *sim.StepProc) sim.Status {
			if i == n {
				return sim.StepDone
			}
			i++
			return sp.Sleep(1)
		})
		mustRun(e)
		return e.Events(), e.Now()
	}},
	// The same schedule as a goroutine process: two context switches per
	// event, the cost the StepProc API removes.
	{"goroutine-ticker", func(n int, _ int64) (uint64, sim.Time) {
		e := sim.NewEngine()
		e.Spawn("ticker", func(p *sim.Proc) {
			for i := 0; i < n; i++ {
				p.Advance(1)
			}
		})
		mustRun(e)
		return e.Events(), e.Now()
	}},
	// Both process kinds interleaved at staggered periods: the scheduler
	// carries 64 pending events at all times.
	{"mixed-64", func(n int, _ int64) (uint64, sim.Time) {
		e := sim.NewEngine()
		for i := 0; i < 64; i++ {
			d := sim.Time(1 + i%7)
			if i%2 == 0 {
				j := 0
				e.SpawnStep("s", func(sp *sim.StepProc) sim.Status {
					if j == n {
						return sim.StepDone
					}
					j++
					return sp.Sleep(d)
				})
			} else {
				e.Spawn("g", func(p *sim.Proc) {
					for j := 0; j < n; j++ {
						p.Advance(d)
					}
				})
			}
		}
		mustRun(e)
		return e.Events(), e.Now()
	}},
	// Each step detonates a same-instant cohort of callbacks: the shape the
	// nowq ring batch-drains without touching the time-ordered scheduler.
	{"bursty-cohort", func(n int, _ int64) (uint64, sim.Time) {
		e := sim.NewEngine()
		sink := 0
		for i := 0; i < 16; i++ {
			j := 0
			e.SpawnStep("burst", func(sp *sim.StepProc) sim.Status {
				if j == n {
					return sim.StepDone
				}
				j++
				for k := 0; k < 8; k++ {
					e.At(sp.Now(), func() { sink++ })
				}
				return sp.Sleep(5)
			})
		}
		mustRun(e)
		return e.Events(), e.Now()
	}},
	// A send/recv ping through the channel's delayed delivery: every message
	// in flight rides the closure-free wire shuttle.
	{"chan-ping", func(n int, _ int64) (uint64, sim.Time) {
		e := sim.NewEngine()
		c := e.NewChan()
		e.Spawn("recv", func(p *sim.Proc) {
			for i := 0; i < n; i++ {
				c.Recv(p)
			}
		})
		e.Spawn("send", func(p *sim.Proc) {
			for i := 0; i < n; i++ {
				p.Advance(1)
				c.SendAfter(1, i)
			}
		})
		mustRun(e)
		return e.Events(), e.Now()
	}},
	// The fig7 hot spot in miniature: stepped accessors hammering bank
	// servers, most wakes landing just past now with a service-time tail.
	{"membank-shaped", func(n int, seed int64) (uint64, sim.Time) {
		e := sim.NewEngine()
		banks := make([]*sim.Server, 8)
		for i := range banks {
			banks[i] = e.NewServer()
		}
		for pid := 0; pid < 8; pid++ {
			const stService = 1
			state, a := 0, 0
			var bank int
			e.SpawnStepSeeded("acc", int64(stats.Mix64(uint64(seed), uint64(pid))), func(sp *sim.StepProc) sim.Status {
				if state == stService {
					_, bEnd := banks[bank].UseAt(sp.Now()+30, 55)
					a++
					state = 0
					return sp.SleepUntil(bEnd + 30)
				}
				if a == n {
					return sim.StepDone
				}
				bank = sp.Rand().Intn(len(banks))
				state = stService
				return sp.Sleep(6)
			})
		}
		mustRun(e)
		return e.Events(), e.Now()
	}},
}

func mustRun(e *sim.Engine) {
	if err := e.Run(); err != nil {
		panic(err)
	}
}

// engineBench is the "engine" pseudo-experiment: not a paper figure but the
// committed perf trajectory's workload set (ROADMAP item 3). Its table pins
// the deterministic side of each workload; pair it with the BENCH_engine.json
// wall-clock record to read events/sec.
func engineBench(opt Options) (*Result, error) {
	n := 100000
	if opt.Quick {
		n = 10000
	}
	scale := []int{n, n, n / 50, n / 50, n / 3, n / 40}
	type row struct {
		events uint64
		end    sim.Time
	}
	rows := sweepPoints(opt, len(engineWorkloads), func(i int, _ *obs.Recorder) row {
		ev, end := engineWorkloads[i].run(scale[i], opt.Seed)
		return row{ev, end}
	})
	t := report.NewTable("Engine: workload shapes (simulation-determined values)",
		"workload", "iterations", "sim events", "final t (cycles)")
	for i, w := range engineWorkloads {
		t.AddRow(w.name, report.I(float64(scale[i])), report.I(float64(rows[i].events)), report.I(float64(rows[i].end)))
	}
	t.AddNote("values are scheduler- and process-kind-independent by construction; events/sec for these shapes lives in BENCH_engine.json and internal/sim's microbenchmarks.")
	return &Result{ID: "engine", Title: Title("engine"), Tables: []*report.Table{t}}, nil
}
