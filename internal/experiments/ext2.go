package experiments

import (
	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/logp"
	"repro/internal/obs"
	"repro/internal/qsmlib"
	"repro/internal/report"
	"repro/internal/sim"
)

func init() {
	register("ext2", "Extension 2: fine-grained LogP trees vs bulk-synchronous QSM collectives", ext2)
}

// ext2 quantifies the cost of QSM's simplicity that Section 2.1 concedes:
// for tiny payloads, fine-grained message passing (LogP binomial trees, an
// Active-Messages style) beats the bulk-synchronous library, whose every
// phase pays the full plan-exchange-plus-barrier overhead. QSM's bet is
// that real workloads amortise that overhead over large h-relations.
func ext2(opt Options) (*Result, error) {
	ps := []int{4, 8, 16, 32}
	if opt.Quick {
		ps = ps[:2]
	}
	// One job per machine size; each runs its four collectives on private
	// machines.
	type row struct{ qb, lb, qs, ls sim.Time }
	rows := sweepPoints(opt, len(ps), func(i int, rec *obs.Recorder) row {
		p := ps[i]
		return row{
			qb: qsmBroadcastCycles(p, opt.Seed, rec),
			lb: logpCycles(p, opt.Seed, func(pc *logp.Proc) { logp.Broadcast(pc, 0, 42) }),
			qs: qsmSumCycles(p, opt.Seed, rec),
			ls: logpCycles(p, opt.Seed, func(pc *logp.Proc) { logp.Sum(pc, 0, int64(pc.ID())) }),
		}
	})
	t := report.NewTable("Extension 2: one-word broadcast and sum, cycles to completion",
		"p", "QSM broadcast", "LogP broadcast", "ratio", "QSM sum", "LogP sum", "ratio")
	for i, p := range ps {
		r := rows[i]
		t.AddRow(report.I(float64(p)),
			report.Cycles(float64(r.qb)), report.Cycles(float64(r.lb)), report.F(float64(r.qb)/float64(r.lb)),
			report.Cycles(float64(r.qs)), report.Cycles(float64(r.ls)), report.F(float64(r.qs)/float64(r.ls)))
	}
	t.AddNote("LogP trees win by an order of magnitude on one-word collectives; the paper's Section 3 workloads amortise the bulk-synchronous overhead over large phases instead.")
	return &Result{ID: "ext2", Title: Title("ext2"), Tables: []*report.Table{t}}, nil
}

func qsmBroadcastCycles(p int, seed int64, rec *obs.Recorder) sim.Time {
	m := qsmlib.New(p, qsmlib.Options{Seed: seed, Obs: rec})
	if err := m.Run(func(ctx core.Ctx) {
		g := collective.NewGroup(ctx, "x2")
		g.Broadcast(0, []int64{42})
	}); err != nil {
		panic(err)
	}
	return m.RunStats().TotalCycles
}

func qsmSumCycles(p int, seed int64, rec *obs.Recorder) sim.Time {
	m := qsmlib.New(p, qsmlib.Options{Seed: seed, Obs: rec})
	if err := m.Run(func(ctx core.Ctx) {
		g := collective.NewGroup(ctx, "x2")
		g.AllReduce([]int64{int64(ctx.ID())}, collective.Sum)
	}); err != nil {
		panic(err)
	}
	return m.RunStats().TotalCycles
}

func logpCycles(p int, seed int64, f func(*logp.Proc)) sim.Time {
	m := logp.New(logp.Default(p))
	if err := m.Run(seed, f); err != nil {
		panic(err)
	}
	return m.Now()
}
