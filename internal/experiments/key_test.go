package experiments

import (
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"testing"
)

// TestOptionsKeyCoversOptions is the drift guard for cache keys: every field
// of Options must be either represented in OptionsKey or explicitly listed
// as excluded. Growing Options without deciding the new field's cache
// behaviour fails here instead of silently changing (or failing to change)
// content addresses.
func TestOptionsKeyCoversOptions(t *testing.T) {
	keyed := map[string]bool{"Seed": true, "Runs": true, "Quick": true}
	excluded := map[string]bool{
		// Execution shape only; results are byte-identical at any setting.
		"Parallelism": true,
		// Unencodable observers/control, with no effect on result tables.
		"Obs":      true,
		"Progress": true,
		"Context":  true,
		// Wall-clock tracing observes real time only, never results.
		"Wall":    true,
		"TraceID": true,
	}
	rt := reflect.TypeOf(Options{})
	for i := 0; i < rt.NumField(); i++ {
		name := rt.Field(i).Name
		if keyed[name] && excluded[name] {
			t.Errorf("Options.%s is both keyed and excluded", name)
		}
		if !keyed[name] && !excluded[name] {
			t.Errorf("Options.%s is neither mirrored in OptionsKey nor in the exclusion list; decide its cache behaviour (and update the canonical-JSON pin) before shipping it", name)
		}
	}
	kt := reflect.TypeOf(OptionsKey{})
	if kt.NumField() != len(keyed) {
		t.Errorf("OptionsKey has %d fields, want %d (keep the keyed set in sync)", kt.NumField(), len(keyed))
	}
}

// TestOptionsKeyCanonicalJSON pins the canonical encoding content addresses
// are hashed over. Changing this encoding invalidates every existing cache
// entry; do it deliberately.
func TestOptionsKeyCanonicalJSON(t *testing.T) {
	opt := Options{
		Seed:        7,
		Runs:        3,
		Quick:       true,
		Parallelism: 9,
		Progress:    func(Progress) {},
		Context:     context.Background(),
	}
	b, err := json.Marshal(opt.Key())
	if err != nil {
		t.Fatal(err)
	}
	const want = `{"seed":7,"runs":3,"quick":true}`
	if string(b) != want {
		t.Errorf("canonical OptionsKey JSON = %s, want %s", b, want)
	}
}

func TestOptionsKeyNormalisesRuns(t *testing.T) {
	if (Options{}).Key() != (Options{Runs: 5}).Key() {
		t.Errorf("Options{} and Options{Runs: 5} key differently: %+v vs %+v",
			(Options{}).Key(), (Options{Runs: 5}).Key())
	}
}

func TestOptionsKeyRoundTrip(t *testing.T) {
	k := Options{Seed: 42, Runs: 10, Quick: true}.Key()
	if got := k.Options().Key(); got != k {
		t.Errorf("Key().Options().Key() = %+v, want %+v", got, k)
	}
}

// TestRunCancellation checks that a cancelled Options.Context surfaces as an
// error from Run — on both the serial and the pooled runner path — instead
// of unwinding as a panic.
func TestRunCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, par := range []int{1, 4} {
		_, err := Run("fig7", Options{Seed: 1, Runs: 1, Quick: true, Parallelism: par, Context: ctx})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("parallelism %d: Run with cancelled context returned %v, want context.Canceled", par, err)
		}
	}
}
