// Package experiments contains one driver per table and figure of the
// paper's evaluation. Each driver runs the relevant workloads on the
// simulated machine (or the membank model for Section 4), computes the
// analytical prediction lines, and renders the same rows or series the
// paper reports. cmd/qsmbench exposes them on the command line and the
// top-level bench_test.go wires them into `go test -bench`.
package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"repro/internal/obs"
	"repro/internal/report"
)

// Options control an experiment run.
type Options struct {
	// Seed drives all randomness; runs r uses Seed+r.
	Seed int64
	// Runs is the number of repetitions averaged per point (the paper uses
	// 10). Zero means 5.
	Runs int
	// Quick trims sweeps to a few points for smoke tests.
	Quick bool
	// Parallelism is the number of workers the runner fans independent
	// (sweep-point, run) simulations across. Zero means GOMAXPROCS; 1
	// forces the serial path. Results are merged in deterministic
	// (point, run) order, so output is byte-identical at any setting.
	Parallelism int
	// Obs collects metrics and trace spans from the instrumented sweeps.
	// Each (point, run) job records into its own obs.Recorder drawn from the
	// sink, so collection is safe and deterministic at any Parallelism;
	// Obs.Merged() after Run folds them in job order. Nil disables
	// collection entirely.
	Obs *obs.Sink
	// Progress, when non-nil, is called after every completed (point, run)
	// job with the sweep's progress so far. It may be called concurrently
	// from worker goroutines; the callback must be safe for that.
	Progress func(Progress)
}

// Progress reports one completed job of a sweep.
type Progress struct {
	Point    int           // sweep-point index within the current sweep
	Points   int           // total sweep points
	RunsDone int           // completed runs of this point, including this one
	Runs     int           // total runs per point
	Elapsed  time.Duration // wall time since the sweep started
}

func (o Options) runs() int {
	if o.Runs <= 0 {
		return 5
	}
	return o.Runs
}

func (o Options) parallelism() int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// Result is an experiment's output.
type Result struct {
	ID     string
	Title  string
	Tables []*report.Table
}

// String renders all tables.
func (r *Result) String() string {
	s := ""
	for _, t := range r.Tables {
		s += t.String() + "\n"
	}
	return s
}

type driver struct {
	title string
	run   func(Options) (*Result, error)
}

var registry = map[string]driver{}

func register(id, title string, run func(Options) (*Result, error)) {
	registry[id] = driver{title: title, run: run}
}

// IDs lists the registered experiment identifiers in order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Title returns an experiment's description.
func Title(id string) string { return registry[id].title }

// Run executes the experiment with the given id.
func Run(id string, opt Options) (*Result, error) {
	d, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown id %q (have %v)", id, IDs())
	}
	return d.run(opt)
}
