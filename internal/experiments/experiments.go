// Package experiments contains one driver per table and figure of the
// paper's evaluation. Each driver runs the relevant workloads on the
// simulated machine (or the membank model for Section 4), computes the
// analytical prediction lines, and renders the same rows or series the
// paper reports. cmd/qsmbench exposes them on the command line and the
// top-level bench_test.go wires them into `go test -bench`.
package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"time"

	"repro/internal/obs"
	"repro/internal/report"
)

// Options control an experiment run.
type Options struct {
	// Seed drives all randomness; runs r uses Seed+r.
	Seed int64
	// Runs is the number of repetitions averaged per point (the paper uses
	// 10). Zero means 5.
	Runs int
	// Quick trims sweeps to a few points for smoke tests.
	Quick bool
	// Parallelism is the number of workers the runner fans independent
	// (sweep-point, run) simulations across. Zero means GOMAXPROCS; 1
	// forces the serial path. Results are merged in deterministic
	// (point, run) order, so output is byte-identical at any setting.
	Parallelism int
	// Obs collects metrics and trace spans from the instrumented sweeps.
	// Each (point, run) job records into its own obs.Recorder drawn from the
	// sink, so collection is safe and deterministic at any Parallelism;
	// Obs.Merged() after Run folds them in job order. Nil disables
	// collection entirely.
	Obs *obs.Sink
	// Progress, when non-nil, is called after every completed (point, run)
	// job with the sweep's progress so far. It may be called concurrently
	// from worker goroutines; the callback must be safe for that.
	Progress func(Progress)
	// Context, when non-nil, cancels an in-progress experiment: the runner
	// checks it before starting each (point, run) job, and Run returns the
	// context's error instead of a Result. Already-started simulations run
	// to completion; cancellation takes effect at job granularity.
	Context context.Context
	// Wall, when non-nil, receives one wall-clock span per (point, run) job
	// on the "runner" layer row, tagged with TraceID — this is how serving-
	// stack traces attribute real time to individual sweep points. Nil (the
	// default) records nothing and costs nothing.
	Wall *obs.WallTracer
	// TraceID tags the Wall spans; empty spans are still recorded but cannot
	// be filtered into a per-request trace.
	TraceID string
}

// Progress reports one completed job of a sweep.
type Progress struct {
	Point    int           // sweep-point index within the current sweep
	Points   int           // total sweep points
	RunsDone int           // completed runs of this point, including this one
	Runs     int           // total runs per point
	Elapsed  time.Duration // wall time since the sweep started
}

func (o Options) runs() int {
	if o.Runs <= 0 {
		return 5
	}
	return o.Runs
}

func (o Options) parallelism() int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

func (o Options) ctxErr() error {
	if o.Context == nil {
		return nil
	}
	return o.Context.Err()
}

// OptionsKey is the plain-data view of Options a result cache may key on:
// exactly the fields that determine an experiment's output. Execution-shape
// fields are deliberately excluded — Progress, Obs, and Context cannot be
// encoded, and Parallelism must not be (tables are byte-identical at any
// setting). TestOptionsKeyCoversOptions pins both the canonical JSON and the
// keyed/excluded field partition, so adding a field to Options without
// deciding its cache behaviour is a test failure, not silent key drift.
type OptionsKey struct {
	Seed  int64 `json:"seed"`
	Runs  int   `json:"runs"`
	Quick bool  `json:"quick"`
}

// Key returns the cache-keyable view of o. Runs is normalised through the
// same default the runner applies, so Options{} and Options{Runs: 5} key
// identically.
func (o Options) Key() OptionsKey {
	return OptionsKey{Seed: o.Seed, Runs: o.runs(), Quick: o.Quick}
}

// Options reconstructs an Options carrying exactly the keyed fields.
func (k OptionsKey) Options() Options {
	return Options{Seed: k.Seed, Runs: k.Runs, Quick: k.Quick}
}

// Result is an experiment's output.
type Result struct {
	ID     string
	Title  string
	Tables []*report.Table
	// Extra carries driver-specific named values into the BenchRecord the
	// harness wraps around the run (see report.BenchRecord.Extra). Unlike
	// Tables it may hold wall-clock measurements; drivers must keep
	// anything nondeterministic out of Tables.
	Extra map[string]float64
}

// String renders all tables.
func (r *Result) String() string {
	s := ""
	for _, t := range r.Tables {
		s += t.String() + "\n"
	}
	return s
}

type driver struct {
	title string
	run   func(Options) (*Result, error)
}

var registry = map[string]driver{}

func register(id, title string, run func(Options) (*Result, error)) {
	registry[id] = driver{title: title, run: run}
}

// Register adds an experiment driver under id. The paper's drivers ship
// registered at init time; the hook is exported so embedding code and tests
// can serve custom experiments through the same runner, cache, and service
// tooling. Registering a duplicate id panics.
func Register(id, title string, run func(Options) (*Result, error)) {
	if _, dup := registry[id]; dup {
		panic(fmt.Sprintf("experiments: duplicate registration of %q", id))
	}
	register(id, title, run)
}

// Known reports whether id names a registered experiment.
func Known(id string) bool {
	_, ok := registry[id]
	return ok
}

// IDs lists the registered experiment identifiers in order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Title returns an experiment's description.
func Title(id string) string { return registry[id].title }

// Run executes the experiment with the given id. If opt.Context is
// cancelled mid-sweep, the unwind is caught here and Run returns the
// context's error.
func Run(id string, opt Options) (res *Result, err error) {
	d, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown id %q (have %v)", id, IDs())
	}
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		if c, ok := cancelCause(r); ok {
			res, err = nil, c
			return
		}
		panic(r)
	}()
	return d.run(opt)
}
