package experiments

import (
	"math"

	"repro/internal/machine"
	"repro/internal/models"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/sim"
)

func init() {
	register("fig4", "Figure 4: sample sort measured comm vs QSM predictions as latency l varies", fig4)
	register("fig5", "Figure 5: problem size for measured comm to enter [Best, WHP] band vs latency l", fig5)
	register("fig6", "Figure 6: problem size for measured comm to enter [Best, WHP] band vs overhead o", fig6)
}

// latSweep are the hardware latencies of the Figure 4/5 sweep (default
// l = 1600 and well beyond).
var latSweep = []sim.Time{1600, 12800, 102400, 409600}

// ovhSweep are the per-message overheads of the Figure 6 sweep.
var ovhSweep = []sim.Time{400, 3200, 25600, 102400}

func fig4(opt Options) (*Result, error) {
	base := machine.DefaultNet()
	// Prediction lines are computed once, on the default configuration:
	// QSM does not model l, so its predictions are constant as l varies.
	mc := Calibrate(base, opt.Seed, opt.parallelism())
	c := mc.Calib(defaultP)
	sizes := sweepSizes(opt.Quick, []int{16384, 65536, 262144, 1048576})
	lats := latSweep
	if opt.Quick {
		lats = lats[:2]
	}

	// The sweep grid is (latency, n); flatten it so the pool sees every
	// (point, run) job at once.
	type point struct {
		l sim.Time
		n int
	}
	var pts []point
	for _, l := range lats {
		for _, n := range sizes {
			pts = append(pts, point{l, n})
		}
	}
	per := sweepRuns(opt, len(pts), opt.runs(), func(pt, r int, rec *obs.Recorder) sortRun {
		net := base
		net.Latency = pts[pt].l
		return sortOnce(net, pts[pt].n, defaultP, opt.Seed+int64(r), rec)
	})

	t := report.NewTable("Figure 4: sample sort comm vs latency (p=16; cycles)",
		"l", "n", "measured comm", "Best case", "WHP bound", "meas/WHP")
	for i, pt := range pts {
		srr := avgSort(per[i])
		best := c.SortQSMComm(pt.n, oversample, models.SortBestCase(pt.n, defaultP))
		whp := c.SortQSMComm(pt.n, oversample, models.SortWHP(pt.n, defaultP, oversample, whpEps))
		t.AddRow(report.Cycles(float64(pt.l)), report.Cycles(float64(pt.n)),
			report.Cycles(srr.Comm), report.Cycles(best), report.Cycles(whp),
			report.F(srr.Comm/whp))
	}
	t.AddNote("QSM's prediction lines do not move with l; larger l pushes the measured line above them until n grows enough to hide the latency by pipelining.")
	return &Result{ID: "fig4", Title: Title("fig4"), Tables: []*report.Table{t}}, nil
}

// crossoverN finds the smallest problem size at which the measured
// communication time falls to or below the WHP bound, interpolating
// geometrically between bracketing sweep points. It returns 0 if the
// measured line never crosses within the sweep. The scan over sizes is
// adaptive (it stops at the first crossing), so only each size's runs fan
// out across the pool.
func crossoverN(net machine.NetParams, c models.Calib, opt Options) float64 {
	sizes := []int{8192, 16384, 32768, 65536, 131072, 262144, 524288, 1048576, 2097152}
	if opt.Quick {
		sizes = sizes[:6]
	}
	prevN, prevRatio := 0, 0.0
	runs := opt.runs()
	if runs > 3 {
		runs = 3 // the crossover scan is the expensive part; 3 repetitions suffice
	}
	for _, n := range sizes {
		srr := runSort(net, n, defaultP, runs, opt.Seed, opt.parallelism())
		whp := c.SortQSMComm(n, oversample, models.SortWHP(n, defaultP, oversample, whpEps))
		ratio := srr.Comm / whp
		if ratio <= 1 {
			if prevN == 0 || prevRatio <= 1 {
				return float64(n)
			}
			// Geometric interpolation on (log n, log ratio).
			f := math.Log(prevRatio) / (math.Log(prevRatio) - math.Log(ratio))
			return float64(prevN) * math.Pow(float64(n)/float64(prevN), f)
		}
		prevN, prevRatio = n, ratio
	}
	return 0
}

func fig5(opt Options) (*Result, error) {
	base := machine.DefaultNet()
	mc := Calibrate(base, opt.Seed, opt.parallelism())
	c := mc.Calib(defaultP)
	lats := latSweep
	if opt.Quick {
		lats = lats[:2]
	}
	ns := sweepPoints(opt, len(lats), func(i int, _ *obs.Recorder) float64 {
		net := base
		net.Latency = lats[i]
		return crossoverN(net, c, opt)
	})
	t := report.NewTable("Figure 5: crossover problem size vs latency l (p=16)",
		"l (cycles)", "crossover n", "n per unit l")
	for i, l := range lats {
		n := ns[i]
		perL := ""
		if n > 0 {
			perL = report.F(n / float64(l))
		}
		cell := "not reached"
		if n > 0 {
			cell = report.Cycles(n)
		}
		t.AddRow(report.Cycles(float64(l)), cell, perL)
	}
	t.AddNote("expected shape: crossover n grows roughly linearly in l (constant n-per-unit-l at large l).")
	return &Result{ID: "fig5", Title: Title("fig5"), Tables: []*report.Table{t}}, nil
}

func fig6(opt Options) (*Result, error) {
	base := machine.DefaultNet()
	mc := Calibrate(base, opt.Seed, opt.parallelism())
	c := mc.Calib(defaultP)
	ovhs := ovhSweep
	if opt.Quick {
		ovhs = ovhs[:2]
	}
	ns := sweepPoints(opt, len(ovhs), func(i int, _ *obs.Recorder) float64 {
		net := base
		net.SendOverhead = ovhs[i]
		net.RecvOverhead = ovhs[i]
		return crossoverN(net, c, opt)
	})
	t := report.NewTable("Figure 6: crossover problem size vs per-message overhead o (p=16)",
		"o (cycles)", "crossover n", "n per unit o")
	for i, o := range ovhs {
		n := ns[i]
		perO := ""
		if n > 0 {
			perO = report.F(n / float64(o))
		}
		cell := "not reached"
		if n > 0 {
			cell = report.Cycles(n)
		}
		t.AddRow(report.Cycles(float64(o)), cell, perO)
	}
	t.AddNote("expected shape: crossover n grows roughly linearly in o.")
	return &Result{ID: "fig6", Title: Title("fig6"), Tables: []*report.Table{t}}, nil
}
