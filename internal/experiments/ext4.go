package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/qsmlib"
	"repro/internal/report"
)

func init() {
	register("ext4", "Extension 4: the kappa term — hot-word contention vs QSM and s-QSM charges", ext4)
}

// ext4 probes the model's namesake feature: queuing at a single shared
// word. Every processor reads the same kappa/p words of one hot location's
// neighbourhood while a control run spreads the same volume evenly. The
// owner serialises the hot traffic, so measured time grows linearly in
// kappa — the s-QSM charge max(m_op, g*m_rw, g*kappa) tracks it, while the
// plain QSM charge (kappa, unscaled by g) underestimates the slope by a
// factor of g.
func ext4(opt Options) (*Result, error) {
	const p = defaultP
	mc := Calibrate(machine.DefaultNet(), opt.Seed, opt.parallelism())
	gw := mc.ScatterCalib(p).GWord

	kappas := []int{16, 64, 256, 1024}
	// One job per kappa point, timing the hot and the spread pattern.
	type pair struct{ hot, spread float64 }
	ms := sweepPoints(opt, len(kappas), func(i int, rec *obs.Recorder) pair {
		return pair{
			hot:    contendedRun(p, kappas[i], true, opt.Seed, rec),
			spread: contendedRun(p, kappas[i], false, opt.Seed, rec),
		}
	})

	t := report.NewTable("Extension 4: contention at one owner (p=16; cycles)",
		"kappa (words at hot owner)", "measured hot", "measured spread", "hot/spread",
		"QSM charge", "s-QSM charge")
	for i, kappa := range kappas {
		hot, spread := ms[i].hot, ms[i].spread
		// Per-processor m_rw is kappa/p in both runs; the QSM charge for
		// the access phase is max(g*m_rw, kappa), the s-QSM charge
		// max(g*m_rw, g*kappa).
		mrw := float64(kappa) / float64(p)
		qsm := maxf(gw*mrw, float64(kappa))
		sqsm := maxf(gw*mrw, gw*float64(kappa))
		t.AddRow(fmt.Sprint(kappa),
			report.Cycles(hot), report.Cycles(spread), report.F(hot/spread),
			report.Cycles(qsm), report.Cycles(sqsm))
	}
	t.AddNote("measured hot-run time scales with g*kappa (the s-QSM charge), not kappa alone: contended words cost bandwidth at the owner, which is why the paper presents its results under s-QSM.")
	return &Result{ID: "ext4", Title: Title("ext4"), Tables: []*report.Table{t}}, nil
}

// contendedRun times one phase in which the p processors collectively make
// kappa single-word reads: all to one owner's words (hot) or spread evenly
// over all owners (control). Returns the phase duration in cycles beyond an
// empty sync.
func contendedRun(p, kappa int, hot bool, seed int64, rec *obs.Recorder) float64 {
	m := qsmlib.New(p, qsmlib.Options{Seed: seed, Obs: rec})
	n := p * kappa
	if err := m.Run(func(ctx core.Ctx) {
		h := ctx.Register("hot", n)
		ctx.Sync()
		perProc := kappa / p
		idx := make([]int, 0, perProc)
		for k := 0; k < perProc; k++ {
			if hot {
				// Words owned by processor 0 (first block), distinct per
				// requester so the traffic is kappa reads at one owner.
				idx = append(idx, (ctx.ID()*perProc+k)%(n/p))
			} else {
				// Spread: requester i reads from owner (i+k+1) mod p.
				owner := (ctx.ID() + k + 1) % p
				idx = append(idx, owner*(n/p)+(ctx.ID()*perProc+k)%(n/p))
			}
		}
		ctx.GetIndexed(h, idx, make([]int64, len(idx)))
		ctx.Sync()
	}); err != nil {
		panic(err)
	}
	total := float64(m.RunStats().TotalCycles)
	return total - float64(emptySyncCost(m.MP.Net, p, seed))*2
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
