package experiments

import (
	"bytes"
	"runtime"
	"strings"
	"sync"
	"testing"

	"repro/internal/obs"
)

func TestParMapOrder(t *testing.T) {
	for _, par := range []int{1, 2, 7, 32} {
		got := parMap(par, 100, func(i int) int { return i * i })
		for i, v := range got {
			if v != i*i {
				t.Fatalf("par=%d: out[%d] = %d, want %d", par, i, v, i*i)
			}
		}
	}
}

func TestParMapEmpty(t *testing.T) {
	if got := parMap(4, 0, func(i int) int { return i }); len(got) != 0 {
		t.Fatalf("parMap over 0 items returned %v", got)
	}
}

func TestParMapPanicPropagates(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic in a parallel job was swallowed")
		}
		wp, ok := r.(*workerPanic)
		if !ok {
			t.Fatalf("re-raised panic is %T, want *workerPanic", r)
		}
		msg := wp.Error()
		if !strings.Contains(msg, "job failure") {
			t.Errorf("re-raised panic lost the original value: %q", msg)
		}
		// The worker's stack must survive the re-raise so a failing
		// simulation under -parallel is debuggable.
		if !strings.Contains(msg, "worker stack:") || !strings.Contains(msg, "runner_test.go") {
			t.Errorf("re-raised panic carries no usable worker stack:\n%s", msg)
		}
	}()
	parMap(4, 16, func(i int) int {
		if i == 7 {
			panic("job failure")
		}
		return i
	})
}

func TestSweepRunsShape(t *testing.T) {
	opt := Options{Parallelism: 3}
	got := sweepRuns(opt, 4, 5, func(pt, r int, _ *obs.Recorder) [2]int { return [2]int{pt, r} })
	if len(got) != 4 {
		t.Fatalf("points = %d, want 4", len(got))
	}
	for pt := range got {
		if len(got[pt]) != 5 {
			t.Fatalf("point %d has %d runs, want 5", pt, len(got[pt]))
		}
		for r, v := range got[pt] {
			if v != [2]int{pt, r} {
				t.Fatalf("result[%d][%d] = %v", pt, r, v)
			}
		}
	}
}

func TestParallelismDefault(t *testing.T) {
	if got := (Options{}).parallelism(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("default parallelism = %d, want GOMAXPROCS = %d", got, runtime.GOMAXPROCS(0))
	}
	if got := (Options{Parallelism: 3}).parallelism(); got != 3 {
		t.Errorf("explicit parallelism = %d, want 3", got)
	}
}

// TestParallelDeterminism is the contract the runner is built around: for
// every experiment, the serial path and the work-stealing pool at any width
// (par ∈ {1, 4, GOMAXPROCS, 8}) must render byte-identical tables at the
// same seed — and, with observability on, byte-identical aggregated metrics
// too, no matter how the steal interleaving falls out.
func TestParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweeps in -short mode")
	}
	pars := []int{4, runtime.GOMAXPROCS(0), 8}
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			serialSink := obs.NewSink(obs.Config{Metrics: true})
			serial, err := Run(id, Options{Seed: 1, Runs: 2, Quick: true, Parallelism: 1, Obs: serialSink})
			if err != nil {
				t.Fatal(err)
			}
			var serialMetrics bytes.Buffer
			if err := serialSink.Merged().WriteMetricsJSON(&serialMetrics); err != nil {
				t.Fatal(err)
			}
			for _, par := range pars {
				parallelSink := obs.NewSink(obs.Config{Metrics: true})
				parallel, err := Run(id, Options{Seed: 1, Runs: 2, Quick: true, Parallelism: par, Obs: parallelSink})
				if err != nil {
					t.Fatal(err)
				}
				a, b := serial.String(), parallel.String()
				if a != b {
					line := 0
					la, lb := strings.Split(a, "\n"), strings.Split(b, "\n")
					for line < len(la) && line < len(lb) && la[line] == lb[line] {
						line++
					}
					t.Errorf("par=%d output diverges from serial at line %d:\nserial:   %q\nparallel: %q",
						par, line, at(la, line), at(lb, line))
				}
				var mb bytes.Buffer
				if err := parallelSink.Merged().WriteMetricsJSON(&mb); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(serialMetrics.Bytes(), mb.Bytes()) {
					t.Errorf("aggregated metrics diverge between serial and par=%d runs (%d vs %d bytes)",
						par, serialMetrics.Len(), mb.Len())
				}
			}
		})
	}
}

// TestProgressCallback checks the runner reports one completed job per
// (point, run) with consistent totals, at any parallelism.
func TestProgressCallback(t *testing.T) {
	var mu sync.Mutex
	var events []Progress
	opt := Options{
		Parallelism: 4,
		Progress: func(p Progress) {
			mu.Lock()
			events = append(events, p)
			mu.Unlock()
		},
	}
	sweepRuns(opt, 3, 4, func(pt, r int, _ *obs.Recorder) int { return pt*10 + r })
	if len(events) != 12 {
		t.Fatalf("got %d progress events, want 12", len(events))
	}
	final := map[int]int{}
	for _, p := range events {
		if p.Points != 3 || p.Runs != 4 {
			t.Fatalf("progress totals = (%d points, %d runs), want (3, 4)", p.Points, p.Runs)
		}
		if p.RunsDone < 1 || p.RunsDone > 4 {
			t.Fatalf("RunsDone = %d out of range", p.RunsDone)
		}
		if p.RunsDone > final[p.Point] {
			final[p.Point] = p.RunsDone
		}
	}
	for pt := 0; pt < 3; pt++ {
		if final[pt] != 4 {
			t.Errorf("point %d finished with RunsDone=%d, want 4", pt, final[pt])
		}
	}
}

func at(lines []string, i int) string {
	if i < len(lines) {
		return lines[i]
	}
	return "<eof>"
}
