package experiments

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/report"
	"repro/internal/sched"
	"repro/internal/sim"
)

func init() {
	register("runner", "Runner: work-stealing vs fixed-pool scheduling on skewed sweeps", runnerBench)
}

// runnerShapes are the job-cost distributions BENCH_runner.json tracks: the
// shapes that separate a work-stealing scheduler from a fixed pool. Costs
// are in ticker iterations; jobs are listed in submission order, which for
// a monotone sweep is ascending problem size — exactly the order that
// parks a fixed pool's workers behind the late giants.
type runnerShape struct {
	name  string
	costs func(c int) []int
}

var runnerShapes = []runnerShape{
	// Every job identical: the null case. Stealing must not lose here.
	{"uniform", func(c int) []int {
		costs := make([]int, 64)
		for i := range costs {
			costs[i] = c
		}
		return costs
	}},
	// 48 small jobs then one 16× giant last — the classic tail: a fixed
	// pool discovers the giant only after burning the small jobs.
	{"one-giant", func(c int) []int {
		costs := make([]int, 49)
		for i := 0; i < 48; i++ {
			costs[i] = c
		}
		costs[48] = 16 * c
		return costs
	}},
	// Zipf(1.0) costs in ascending order: job k of 64 costs ∝ 1/(64-k),
	// the long-tailed size distribution of the Figure 4–7 sweeps with the
	// expensive points at the end where monotone sweeps put them.
	{"zipf-cost", func(c int) []int {
		costs := make([]int, 64)
		for i := range costs {
			costs[i] = c / (len(costs) - i)
			if costs[i] < 1 {
				costs[i] = 1
			}
		}
		return costs
	}},
}

// modelMakespan is greedy list scheduling: jobs are handed out in the given
// order, each to the earliest-free worker. This is exactly the fixed pool's
// schedule (workers claim the next submission-order index when free); fed
// the cost-descending order instead, it is LPT — the schedule the stealing
// pool converges to under cost-hinted seeding, since an idle worker always
// finds the pending work. The returned makespan is in cost units, a
// machine-independent pure function of the workload.
func modelMakespan(costs []int, p int) float64 {
	free := make([]float64, p)
	for _, c := range costs {
		w := 0
		for i := 1; i < p; i++ {
			if free[i] < free[w] {
				w = i
			}
		}
		free[w] += float64(c)
	}
	m := 0.0
	for _, f := range free {
		if f > m {
			m = f
		}
	}
	return m
}

// descending returns costs sorted descending without mutating the input.
func descending(costs []int) []int {
	out := append([]int(nil), costs...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] > out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// runnerJob burns exactly iters ticker events on a private engine — the
// same unit of work at every parallelism, so wall time per job is
// proportional to its cost.
func runnerJob(iters int) uint64 {
	e := sim.NewEngine()
	i := 0
	e.SpawnStep("job", func(sp *sim.StepProc) sim.Status {
		if i == iters {
			return sim.StepDone
		}
		i++
		return sp.Sleep(1)
	})
	mustRun(e)
	return e.Events()
}

// runnerBench is the "runner" pseudo-experiment: the scheduler's own
// benchmark (ROADMAP item 2). Its table pins the deterministic side — per-
// shape sim events plus the schedule-model makespans of the fixed pool vs
// LPT/stealing at 4 and 8 workers, pure functions of the cost vectors — so
// the speedup the deques buy on skewed shapes is committed and gated
// (scripts/perfcheck.py fails if any model_speedup_* drifts or drops below
// the floor). Measured wall clocks for both pools land in the BENCH extra
// map under measured_*: honest observations of the machine the bench ran
// on, which only show the modelled gap when GOMAXPROCS cores actually
// exist.
func runnerBench(opt Options) (*Result, error) {
	c := 60000
	if opt.Quick {
		c = 4000
	}
	t := report.NewTable("Runner: fixed pool vs work stealing (schedule-model makespans, cost units)",
		"shape", "jobs", "total cost", "sim events",
		"fixed@4", "steal@4", "speedup@4", "speedup@8")
	extra := map[string]float64{}
	for _, sh := range runnerShapes {
		costs := sh.costs(c)
		total := 0
		for _, x := range costs {
			total += x
		}
		desc := descending(costs)

		// Deterministic side: the schedule model.
		f4 := modelMakespan(costs, 4)
		s4 := modelMakespan(desc, 4)
		f8 := modelMakespan(costs, 8)
		s8 := modelMakespan(desc, 8)
		// Uniform is a parity check (speedup 1.0 by construction), so it is
		// exact-matched but excluded from the ≥ min-speedup gate; the skewed
		// shapes carry the gated model_speedup keys.
		prefix := "model_speedup_"
		if sh.name == "uniform" {
			prefix = "model_parity_"
		}
		extra[prefix+"p4_"+sh.name] = f4 / s4
		extra[prefix+"p8_"+sh.name] = f8 / s8

		// Measured side: run the identical job set through both pools at
		// par=4 and record wall clocks. Nondeterministic, so it stays out
		// of the table; it lands in BENCH extra for the perf trajectory.
		job := func(i int) uint64 { return runnerJob(costs[i]) }
		t0 := time.Now()
		fixedEv := fixedParMap(4, len(costs), job)
		fixedWall := time.Since(t0)
		cost := func(i int) float64 { return float64(costs[i]) }
		before := sched.Totals()
		t0 = time.Now()
		stealEv := parMapCost(4, len(costs), cost, "bench:"+sh.name, job)
		stealWall := time.Since(t0)
		after := sched.Totals()

		var events uint64
		for i := range fixedEv {
			if fixedEv[i] != stealEv[i] {
				return nil, fmt.Errorf("runner bench: shape %s job %d events diverge (%d vs %d)",
					sh.name, i, fixedEv[i], stealEv[i])
			}
			events += stealEv[i]
		}
		extra["measured_fixed_ms_"+sh.name] = float64(fixedWall.Milliseconds())
		extra["measured_steal_ms_"+sh.name] = float64(stealWall.Milliseconds())
		if stealWall > 0 {
			extra["measured_speedup_"+sh.name] = float64(fixedWall) / float64(stealWall)
		}
		extra["measured_steals_"+sh.name] = float64(after.Steals - before.Steals)

		t.AddRow(sh.name,
			report.I(float64(len(costs))), report.I(float64(total)), report.I(float64(events)),
			report.I(f4), report.I(s4),
			report.F(f4/s4), report.F(f8/s8))
	}
	extra["measured_gomaxprocs"] = float64(runtime.GOMAXPROCS(0))
	t.AddNote("makespans are greedy list schedules of the cost vectors (submission order = fixed pool; descending = LPT, the stealing pool's seeded order) — machine-independent; measured wall clocks for both pools are in BENCH_runner.json extra.*")
	return &Result{ID: "runner", Title: Title("runner"), Tables: []*report.Table{t}, Extra: extra}, nil
}
