package experiments

import (
	"repro/internal/algorithms"
	"repro/internal/obs"
	"repro/internal/qsmlib"
	"repro/internal/report"
	"repro/internal/workload"
)

func init() {
	register("ext3", "Extension 3: PRAM-style pointer jumping vs QSM randomized elimination (list ranking)", ext3)
}

// ext3 quantifies Section 2.1's PRAM critique on the simulated machine:
// Wyllie's pointer jumping — the natural PRAM algorithm — keeps all n
// elements active for log n rounds (Theta(n log n) communication, phases
// growing with log n), while the QSM algorithm eliminates elements
// geometrically (Theta(n) communication, phases growing with log p).
func ext3(opt Options) (*Result, error) {
	sizes := sweepSizes(opt.Quick, []int{8192, 32768, 131072})
	runs := opt.runs()

	// One job per (size, run): both algorithms rank the same list.
	type sample struct {
		wTot, wComm, rTot, rComm float64
		err                      error
	}
	per := sweepRuns(opt, len(sizes), runs, func(pt, r int, rec *obs.Recorder) sample {
		n := sizes[pt]
		seed := opt.Seed + int64(r)
		l := workload.RandomList(n, seed)

		mw := qsmlib.New(defaultP, qsmlib.Options{Seed: seed, Obs: rec})
		if err := mw.Run(algorithms.WyllieListRank{List: l}.Program()); err != nil {
			return sample{err: err}
		}
		ws := mw.RunStats()

		mr := qsmlib.New(defaultP, qsmlib.Options{Seed: seed, Obs: rec})
		if err := mr.Run(algorithms.ListRank{List: l}.Program()); err != nil {
			return sample{err: err}
		}
		rs := mr.RunStats()
		return sample{
			wTot: float64(ws.TotalCycles), wComm: float64(ws.MaxComm()),
			rTot: float64(rs.TotalCycles), rComm: float64(rs.MaxComm()),
		}
	})

	t := report.NewTable("Extension 3: list ranking, Wyllie (PRAM style) vs randomized elimination (QSM style); cycles",
		"n", "Wyllie total", "Wyllie comm", "randomized total", "randomized comm", "slowdown")
	for i, n := range sizes {
		var wTot, wComm, rTot, rComm float64
		for _, s := range per[i] {
			if s.err != nil {
				return nil, s.err
			}
			wTot += s.wTot
			wComm += s.wComm
			rTot += s.rTot
			rComm += s.rComm
		}
		k := float64(runs)
		t.AddRow(report.Cycles(float64(n)),
			report.Cycles(wTot/k), report.Cycles(wComm/k),
			report.Cycles(rTot/k), report.Cycles(rComm/k),
			report.F(wTot/rTot))
	}
	t.AddNote("the slowdown grows with n (Theta(log n) asymptotically): the PRAM algorithm's extra synchronization and undiminished active set are exactly what QSM's bulk-synchronous, work-reducing style avoids.")
	return &Result{ID: "ext3", Title: Title("ext3"), Tables: []*report.Table{t}}, nil
}
