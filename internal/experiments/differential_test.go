package experiments

import (
	"bytes"
	"fmt"
	"runtime"
	"testing"

	"repro/internal/obs"
	"repro/internal/sim"
)

// renderMode runs one experiment under an engine configuration and returns
// its rendered tables and aggregated metrics JSON.
func renderMode(t *testing.T, id string, stepProcs bool, sched sim.Scheduler, par int) (string, []byte) {
	t.Helper()
	sim.UseStepProcs = stepProcs
	sim.DefaultScheduler = sched
	sink := obs.NewSink(obs.Config{Metrics: true})
	r, err := Run(id, Options{Seed: 1, Runs: 2, Quick: true, Parallelism: par, Obs: sink})
	if err != nil {
		t.Fatalf("%s [stepprocs=%v sched=%s par=%d]: %v", id, stepProcs, sched, par, err)
	}
	var m bytes.Buffer
	if err := sink.Merged().WriteMetricsJSON(&m); err != nil {
		t.Fatal(err)
	}
	return r.String(), m.Bytes()
}

// TestEngineModeDifferential is the determinism contract behind the engine's
// speed switches: for every experiment, state-machine processes on or off,
// the calendar queue or the 4-ary heap, serial or a full worker pool — the
// rendered tables and the aggregated METRICS_<id>.json bytes must be
// identical. The switches are package globals, so this test runs the matrix
// sequentially and must not use t.Parallel.
func TestEngineModeDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweeps in -short mode")
	}
	defer func() {
		sim.UseStepProcs = true
		sim.DefaultScheduler = sim.SchedHeap
	}()
	// Floor the pool size so the worker-pool merge paths are exercised even
	// on single-core machines (parMap caps the pool at the job count anyway).
	maxPar := runtime.GOMAXPROCS(0)
	if maxPar < 4 {
		maxPar = 4
	}
	for _, id := range IDs() {
		baseTables, baseMetrics := renderMode(t, id, true, sim.SchedHeap, 1)
		for _, mode := range []struct {
			name      string
			stepProcs bool
			sched     sim.Scheduler
			par       int
		}{
			{"goroutines/heap/serial", false, sim.SchedHeap, 1},
			{"steppers/calendar/serial", true, sim.SchedCalendar, 1},
			{"goroutines/calendar/parallel", false, sim.SchedCalendar, maxPar},
			{"steppers/heap/parallel", true, sim.SchedHeap, maxPar},
		} {
			tables, metrics := renderMode(t, id, mode.stepProcs, mode.sched, mode.par)
			if tables != baseTables {
				t.Errorf("%s: tables diverge under %s\nbase:\n%s\ngot:\n%s", id, mode.name,
					firstDiffLine(baseTables, tables), firstDiffLine(tables, baseTables))
			}
			if !bytes.Equal(metrics, baseMetrics) {
				t.Errorf("%s: metrics JSON diverges under %s (%d vs %d bytes)", id, mode.name,
					len(baseMetrics), len(metrics))
			}
		}
	}
}

// firstDiffLine returns the first line of a that differs from b, with its
// index, for readable failure output.
func firstDiffLine(a, b string) string {
	la, lb := []byte(a), []byte(b)
	line, col := 1, 0
	for i := 0; i < len(la) && i < len(lb); i++ {
		if la[i] != lb[i] {
			break
		}
		if la[i] == '\n' {
			line++
			col = i + 1
		}
	}
	end := col
	for end < len(la) && la[end] != '\n' {
		end++
	}
	return fmt.Sprintf("line %d: %q", line, string(la[col:end]))
}
