package experiments

import (
	"repro/internal/algorithms"
	"repro/internal/machine"
	"repro/internal/models"
	"repro/internal/obs"
	"repro/internal/qsmlib"
	"repro/internal/stats"
	"repro/internal/workload"
)

// The measurement helpers here come in two layers: *Once functions run one
// simulation on a machine the job builds itself (safe to execute on any
// worker), and run* functions fan the repetitions of one sweep point across
// the pool and aggregate them in run order, so their averages match the old
// serial loops bit for bit.

// measured is an averaged simulation measurement, in cycles.
type measured struct {
	Total float64 // end-to-end running time
	Comm  float64 // bottleneck node's communication time
}

func avgMeasured(ms []measured) measured {
	var t, c []float64
	for _, m := range ms {
		t = append(t, m.Total)
		c = append(c, m.Comm)
	}
	return measured{Total: stats.Mean(t), Comm: stats.Mean(c)}
}

func blockInput(all []int64, n int) func(id, p int) []int64 {
	return func(id, p int) []int64 {
		lo, hi := workload.Partition(n, p, id)
		return all[lo:hi]
	}
}

// prefixOnce runs the prefix-sums program once on its own machine.
func prefixOnce(net machine.NetParams, n, p int, seed int64, rec *obs.Recorder) measured {
	in := workload.UniformInts(n, 1000, seed)
	alg := algorithms.PrefixSums{N: n, Input: blockInput(in, n)}
	m := qsmlib.New(p, qsmlib.Options{Net: net, Seed: seed, Obs: rec})
	if err := m.Run(alg.Program()); err != nil {
		panic(err)
	}
	st := m.RunStats()
	return measured{Total: float64(st.TotalCycles), Comm: float64(st.MaxComm())}
}

// runPrefix measures the prefix-sums program, fanning runs across par
// workers.
func runPrefix(net machine.NetParams, n, p, runs int, seed int64, par int) measured {
	return avgMeasured(parMap(par, runs, func(r int) measured {
		return prefixOnce(net, n, p, seed+int64(r), nil)
	}))
}

// sortRun is a sample-sort measurement with its observed skews: one run's
// values, or the run-order average of several.
type sortRun struct {
	measured
	B    float64
	R    float64
	OutW float64
}

// sortOnce runs the sample-sort program once on its own machine.
func sortOnce(net machine.NetParams, n, p int, seed int64, rec *obs.Recorder) sortRun {
	in := workload.UniformInts(n, 0, seed)
	skew := algorithms.NewSortSkew(p)
	alg := algorithms.SampleSort{N: n, Input: blockInput(in, n), Skew: skew}
	m := qsmlib.New(p, qsmlib.Options{Net: net, Seed: seed, Obs: rec})
	if err := m.Run(alg.Program()); err != nil {
		panic(err)
	}
	st := m.RunStats()
	return sortRun{
		measured: measured{Total: float64(st.TotalCycles), Comm: float64(st.MaxComm())},
		B:        float64(skew.B()),
		R:        skew.R(),
		OutW:     float64(skew.OutW()),
	}
}

// avgSort averages per-run samples in run order.
func avgSort(ss []sortRun) sortRun {
	var ms []measured
	var bs, rs, ows []float64
	for _, s := range ss {
		ms = append(ms, s.measured)
		bs = append(bs, s.B)
		rs = append(rs, s.R)
		ows = append(ows, s.OutW)
	}
	return sortRun{measured: avgMeasured(ms), B: stats.Mean(bs), R: stats.Mean(rs), OutW: stats.Mean(ows)}
}

// runSort measures the sample-sort program, fanning runs across par workers,
// returning the run average and the average observed skews.
func runSort(net machine.NetParams, n, p, runs int, seed int64, par int) sortRun {
	return avgSort(parMap(par, runs, func(r int) sortRun {
		return sortOnce(net, n, p, seed+int64(r), nil)
	}))
}

// sortSkewOf converts a measurement's averaged skews into model inputs.
func sortSkewOf(sr sortRun) models.SortSkews {
	return models.SortSkews{B: sr.B, R: sr.R, OutW: sr.OutW}
}

// rankRun is a list-ranking measurement with its observed compression: one
// run's values, or the run-order average of several.
type rankRun struct {
	measured
	X []float64 // per-iteration max active counts, averaged over runs
	Z float64
}

// rankOnce runs the list-ranking program once on its own machine.
func rankOnce(net machine.NetParams, n, p, iters int, seed int64, rec *obs.Recorder) rankRun {
	l := workload.RandomList(n, seed)
	tr := algorithms.NewRankTrace(p, iters)
	alg := algorithms.ListRank{List: l, Trace: tr}
	m := qsmlib.New(p, qsmlib.Options{Net: net, Seed: seed, Obs: rec})
	if err := m.Run(alg.Program()); err != nil {
		panic(err)
	}
	st := m.RunStats()
	return rankRun{
		measured: measured{Total: float64(st.TotalCycles), Comm: float64(st.MaxComm())},
		X:        tr.X(),
		Z:        tr.Z(),
	}
}

// avgRank averages per-run samples in run order.
func avgRank(ss []rankRun) rankRun {
	iters := len(ss[0].X)
	xs := make([]float64, iters)
	var zs []float64
	var ms []measured
	for _, s := range ss {
		ms = append(ms, s.measured)
		for i, x := range s.X {
			xs[i] += x
		}
		zs = append(zs, s.Z)
	}
	for i := range xs {
		xs[i] /= float64(len(ss))
	}
	return rankRun{measured: avgMeasured(ms), X: xs, Z: stats.Mean(zs)}
}

// runRank measures the list-ranking program, fanning runs across par
// workers.
func runRank(net machine.NetParams, n, p, runs int, seed int64, par int) rankRun {
	iters := algorithms.Iterations(0, p)
	return avgRank(parMap(par, runs, func(r int) rankRun {
		return rankOnce(net, n, p, iters, seed+int64(r), nil)
	}))
}
