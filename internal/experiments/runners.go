package experiments

import (
	"repro/internal/algorithms"
	"repro/internal/machine"
	"repro/internal/models"
	"repro/internal/qsmlib"
	"repro/internal/stats"
	"repro/internal/workload"
)

// measured is an averaged simulation measurement, in cycles.
type measured struct {
	Total float64 // end-to-end running time
	Comm  float64 // bottleneck node's communication time
}

func avgMeasured(ms []measured) measured {
	var t, c []float64
	for _, m := range ms {
		t = append(t, m.Total)
		c = append(c, m.Comm)
	}
	return measured{Total: stats.Mean(t), Comm: stats.Mean(c)}
}

func blockInput(all []int64, n int) func(id, p int) []int64 {
	return func(id, p int) []int64 {
		lo, hi := workload.Partition(n, p, id)
		return all[lo:hi]
	}
}

// runPrefix measures the prefix-sums program.
func runPrefix(net machine.NetParams, n, p, runs int, seed int64) measured {
	var ms []measured
	for r := 0; r < runs; r++ {
		s := seed + int64(r)
		in := workload.UniformInts(n, 1000, s)
		alg := algorithms.PrefixSums{N: n, Input: blockInput(in, n)}
		m := qsmlib.New(p, qsmlib.Options{Net: net, Seed: s})
		if err := m.Run(alg.Program()); err != nil {
			panic(err)
		}
		st := m.RunStats()
		ms = append(ms, measured{Total: float64(st.TotalCycles), Comm: float64(st.MaxComm())})
	}
	return avgMeasured(ms)
}

// sortRun is one sample-sort measurement with its observed skews.
type sortRun struct {
	measured
	B    float64
	R    float64
	OutW float64
}

// runSort measures the sample-sort program, returning the run average and
// the average observed skews.
func runSort(net machine.NetParams, n, p, runs int, seed int64) sortRun {
	var ms []measured
	var bs, rs, ows []float64
	for r := 0; r < runs; r++ {
		s := seed + int64(r)
		in := workload.UniformInts(n, 0, s)
		skew := algorithms.NewSortSkew(p)
		alg := algorithms.SampleSort{N: n, Input: blockInput(in, n), Skew: skew}
		m := qsmlib.New(p, qsmlib.Options{Net: net, Seed: s})
		if err := m.Run(alg.Program()); err != nil {
			panic(err)
		}
		st := m.RunStats()
		ms = append(ms, measured{Total: float64(st.TotalCycles), Comm: float64(st.MaxComm())})
		bs = append(bs, float64(skew.B()))
		rs = append(rs, skew.R())
		ows = append(ows, float64(skew.OutW()))
	}
	return sortRun{measured: avgMeasured(ms), B: stats.Mean(bs), R: stats.Mean(rs), OutW: stats.Mean(ows)}
}

// sortSkewOf converts a measurement's averaged skews into model inputs.
func sortSkewOf(sr sortRun) models.SortSkews {
	return models.SortSkews{B: sr.B, R: sr.R, OutW: sr.OutW}
}

// rankRun is one list-ranking measurement with its observed compression.
type rankRun struct {
	measured
	X []float64 // per-iteration max active counts, averaged over runs
	Z float64
}

// runRank measures the list-ranking program.
func runRank(net machine.NetParams, n, p, runs int, seed int64) rankRun {
	iters := algorithms.Iterations(0, p)
	xs := make([]float64, iters)
	var zs []float64
	var ms []measured
	for r := 0; r < runs; r++ {
		s := seed + int64(r)
		l := workload.RandomList(n, s)
		tr := algorithms.NewRankTrace(p, iters)
		alg := algorithms.ListRank{List: l, Trace: tr}
		m := qsmlib.New(p, qsmlib.Options{Net: net, Seed: s})
		if err := m.Run(alg.Program()); err != nil {
			panic(err)
		}
		st := m.RunStats()
		ms = append(ms, measured{Total: float64(st.TotalCycles), Comm: float64(st.MaxComm())})
		for i, x := range tr.X() {
			xs[i] += x
		}
		zs = append(zs, tr.Z())
	}
	for i := range xs {
		xs[i] /= float64(runs)
	}
	return rankRun{measured: avgMeasured(ms), X: xs, Z: stats.Mean(zs)}
}
