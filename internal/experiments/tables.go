package experiments

import (
	"math"

	"repro/internal/cpu"
	"repro/internal/machine"
	"repro/internal/membank"
	"repro/internal/models"
	"repro/internal/obs"
	"repro/internal/report"
)

func init() {
	register("table2", "Table 2: node architecture model validation (analytic vs detailed core)", table2)
	register("table3", "Table 3: raw hardware vs observed network performance", table3)
	register("table4", "Table 4: extrapolated minimum problem size across architectures", table4)
	register("fig7", "Figure 7: remote memory bank contention across architectures", fig7)
}

func table2(opt Options) (*Result, error) {
	p := cpu.Table2()
	cfg := report.NewTable("Table 2: node architecture parameters",
		"parameter", "setting")
	cfg.AddRow("functional units", "4 int / 4 FPU / 2 load-store")
	cfg.AddRow("issue width / window", "4 / 64")
	cfg.AddRow("L1", "8KB 2-way, 1 cycle")
	cfg.AddRow("L2", "256KB 8-way, 3 cycles (miss 3+7)")
	cfg.AddRow("branch predictor", "64K entries, 8-bit history")
	cfg.AddRow("clock", "400 MHz")

	val := report.NewTable("Node model validation: analytic vs detailed cycles per kernel",
		"kernel", "analytic", "detailed", "detailed/analytic")
	an := cpu.NewAnalytic(p)
	kernels := []struct {
		name string
		b    cpu.OpBlock
	}{
		{"sum(50k)", cpu.BlockSum(50000)},
		{"prefix(50k)", cpu.BlockPrefixSum(50000)},
		{"copy(50k)", cpu.BlockCopy(50000)},
		{"quicksort(20k)", cpu.BlockQuickSort(20000)},
		{"bucketize(20k,16)", cpu.BlockBucketize(20000, 16)},
		{"list-traverse(20k)", cpu.BlockListTraverse(20000)},
		{"flip-gen(50k)", cpu.BlockFlipGenerate(50000)},
		{"compact(50k)", cpu.BlockCompact(50000)},
	}
	// Each kernel's trace-driven run builds its own detailed core, so the
	// validations fan across the pool.
	type pair struct{ ca, cd float64 }
	vs := sweepPoints(opt, len(kernels), func(i int, _ *obs.Recorder) pair {
		det := cpu.NewDetailedModel(p, 200000, opt.Seed+1)
		return pair{float64(an.Cycles(kernels[i].b)), float64(det.Cycles(kernels[i].b))}
	})
	for i, k := range kernels {
		val.AddRow(k.name, report.Cycles(vs[i].ca), report.Cycles(vs[i].cd), report.F(vs[i].cd/vs[i].ca))
	}
	val.AddNote("experiment sweeps use the analytic model; the detailed trace-driven core bounds its error.")
	return &Result{ID: "table2", Title: Title("table2"), Tables: []*report.Table{cfg, val}}, nil
}

func table3(opt Options) (*Result, error) {
	net := machine.DefaultNet()
	mc := Calibrate(net, opt.Seed, opt.parallelism())
	t := report.NewTable("Table 3: raw hardware vs observed (hardware + software) network performance",
		"parameter", "hardware setting", "observed (HW+SW)")
	t.AddRow("gap g (bandwidth)", "3 cycles/byte (133 MB/s)",
		report.F(mc.PutGapPB)+" c/B (put), "+report.F(mc.GetGapPB)+" c/B (bulk get), "+
			report.F(mc.GetWordGapPB)+" c/B (word-grain get)")
	t.AddRow("per-message overhead o", "400 cycles (1 us)", "N/A (hidden by bulk interface)")
	t.AddRow("latency l", "1600 cycles (4 us)", "N/A (hidden by bulk interface)")
	t.AddRow("sync/barrier L", "N/A", report.Cycles(mc.LBarrier)+" cycles (16 nodes)")
	t.AddNote("paper's observed values: 35 c/B put, 287 c/B get, L = 25500 cycles; software copies and headers inflate the 3 c/B hardware gap an order of magnitude.")
	return &Result{ID: "table3", Title: Title("table3"), Tables: []*report.Table{t}}, nil
}

// arch is a Table 4 architecture row (parameters in cycles, per the paper).
type arch struct {
	name     string
	p        int
	l, o     float64
	gPerByte float64
	paperVal string // the paper's reported n_min/p (with its software factor k)
}

func table4(opt Options) (*Result, error) {
	archs := []arch{
		{"Default simulation parameters", 16, 1600, 400, 3, "8000"},
		{"Berkeley NOW", 32, 830, 481, 4.3, "k * 4640"},
		{"300MHz PII TCP/IP 100Mb Ethernet", 32, 75000, 150000, 24, "k * 325000"},
		{"Cray T3E", 64, 126, 50, 1.6, "k * 1558"},
		{"Intel Paragon", 64, 325, 90, 0.35, "k * 15429"},
		{"Meico CS-2", 32, 497, 112, 1.4, "k * 5325"},
	}

	// The extrapolation model: the per-run fixed communication cost a QSM
	// analysis omits is SortPhases per-phase costs, each roughly a barrier
	// (2(p-1) messages through the root) plus one latency:
	// fixed = phases * (2*o*(p-1) + 2*l). QSM predicts accurately once this
	// fixed cost is under 10% of the bandwidth term g*B*(1+r) ~ 2*g*8*n/p.
	// kCal normalises the software-implementation factor so the default row
	// reproduces the paper's n_min/p = 8000.
	nMin := func(a arch) float64 {
		fixed := models.SortPhases * (2*a.o*float64(a.p-1) + 2*a.l)
		perElem := 2 * a.gPerByte * 8 / float64(a.p) // cycles per element of bucket traffic
		return fixed / (0.1 * perElem)               // n at which fixed = 10% of g-term
	}
	def := archs[0]
	kCal := 8000 / (nMin(def) / float64(def.p))

	vals := sweepPoints(opt, len(archs), func(i int, _ *obs.Recorder) float64 {
		return kCal * nMin(archs[i]) / float64(archs[i].p)
	})
	t := report.NewTable("Table 4: predicted minimum problem size for accurate QSM prediction (sample sort)",
		"architecture", "p", "l", "o", "g (c/B)", "n_min/p (ours)", "n_min/p (paper)")
	for i, a := range archs {
		t.AddRow(a.name, report.I(float64(a.p)), report.I(a.l), report.I(a.o),
			report.F(a.gPerByte), report.Cycles(math.Round(vals[i])), a.paperVal)
	}
	t.AddNote("ours is normalised to the default row; the paper's k absorbs per-architecture software costs, so compare orderings and magnitudes, not exact values.")
	return &Result{ID: "table4", Title: Title("table4"), Tables: []*report.Table{t}}, nil
}

func fig7(opt Options) (*Result, error) {
	accesses := 500
	if opt.Quick {
		accesses = 150
	}
	cfgs := membank.AllConfigs()
	// One job per architecture; each runs its three access patterns on its
	// own simulated memory system.
	results := sweepPoints(opt, len(cfgs), func(i int, rec *obs.Recorder) []membank.Result {
		return membank.RunAllObserved(cfgs[i], accesses, opt.Seed, rec)
	})
	t := report.NewTable("Figure 7: remote memory access time under load (us per access)",
		"architecture", "Random", "Conflict", "NoConflict", "Conflict/NoConflict", "Random/NoConflict")
	for i, cfg := range cfgs {
		var rnd, cf, nc membank.Result
		for _, r := range results[i] {
			switch r.Pattern {
			case membank.Random:
				rnd = r
			case membank.Conflict:
				cf = r
			case membank.NoConflict:
				nc = r
			}
		}
		t.AddRow(cfg.Name,
			report.F(rnd.AvgMicros()), report.F(cf.AvgMicros()), report.F(nc.AvgMicros()),
			report.F(cf.AvgCycles/nc.AvgCycles), report.F(rnd.AvgCycles/nc.AvgCycles))
	}
	t.AddNote("paper's shape: NoConflict beats Random by 0-68%%; Conflict is generally 2-4x worse than NoConflict (except where a shared medium saturates first, as on the Ethernet NOW).")
	return &Result{ID: "fig7", Title: Title("fig7"), Tables: []*report.Table{t}}, nil
}
