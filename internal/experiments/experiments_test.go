package experiments

import (
	"strings"
	"testing"

	"repro/internal/machine"
)

func TestIDsComplete(t *testing.T) {
	want := []string{"engine", "ext1", "ext2", "ext3", "ext4", "fig1", "fig2", "fig3",
		"fig4", "fig5", "fig6", "fig7", "runner", "table2", "table3", "table4"}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("IDs = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("IDs = %v, want %v", got, want)
		}
	}
	for _, id := range got {
		if Title(id) == "" {
			t.Errorf("experiment %s has no title", id)
		}
	}
}

func TestUnknownID(t *testing.T) {
	if _, err := Run("nope", Options{}); err == nil {
		t.Fatal("unknown id should error")
	}
}

func TestCalibrationSane(t *testing.T) {
	mc := Calibrate(machine.DefaultNet(), 1, 1)
	// The observed put gap must sit an order of magnitude above the 3 c/B
	// hardware gap but below 100 c/B (paper: 35 c/B).
	if mc.PutGapPB < 10 || mc.PutGapPB > 100 {
		t.Errorf("put gap = %.1f c/B, want ~35", mc.PutGapPB)
	}
	if mc.GetGapPB < mc.PutGapPB*0.5 {
		t.Errorf("bulk get gap = %.1f c/B suspiciously below put %.1f", mc.GetGapPB, mc.PutGapPB)
	}
	// Word-granularity gets are much more expensive than bulk (paper: 287
	// vs 35 c/B; ours carries an 8-byte index per word).
	if mc.GetWordGapPB < 1.5*mc.GetGapPB {
		t.Errorf("word-grain get gap = %.1f c/B, want well above bulk %.1f", mc.GetWordGapPB, mc.GetGapPB)
	}
	// The 16-node per-phase cost must be within 2x of the paper's L=25500.
	if mc.LBarrier < 12000 || mc.LBarrier > 102000 {
		t.Errorf("L = %.0f cycles, want within ~2x of 25500", mc.LBarrier)
	}
}

func TestCalibDerivation(t *testing.T) {
	mc := MachineCalib{PutGapPB: 30, GetGapPB: 40, GetWordGapPB: 80, PutWordGapPB: 60,
		Net: machine.DefaultNet()}
	c := mc.Calib(16)
	if c.GWord != 8*35 {
		t.Errorf("GWord = %g, want 280", c.GWord)
	}
	s := mc.ScatterCalib(16)
	if s.GWord != 8*70 {
		t.Errorf("scatter GWord = %g, want 560", s.GWord)
	}
	if c.P != 16 || c.Lat != 1600 || c.O != 400 {
		t.Errorf("calib params wrong: %+v", c)
	}
}

// TestAllExperimentsQuick smoke-runs every driver in quick mode and checks
// it yields at least one non-empty table.
func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweeps in -short mode")
	}
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			r, err := Run(id, Options{Seed: 1, Runs: 2, Quick: true})
			if err != nil {
				t.Fatal(err)
			}
			if len(r.Tables) == 0 {
				t.Fatal("no tables")
			}
			for _, tab := range r.Tables {
				if len(tab.Rows) == 0 {
					t.Errorf("table %q has no rows", tab.Title)
				}
				if !strings.Contains(tab.String(), tab.Columns[0]) {
					t.Error("rendering lost the header")
				}
			}
		})
	}
}

// TestFig2Convergence verifies the paper's central quantitative claim on our
// substrate: the QSM estimate for sample sort lands within 15% of measured
// communication at n = 131072 (paper: within 10% for n >= 125000).
func TestFig2Convergence(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep in -short mode")
	}
	net := machine.DefaultNet()
	mc := Calibrate(net, 1, 4)
	c := mc.Calib(defaultP)
	sr := runSort(net, 131072, defaultP, 3, 1, 3)
	est := c.SortQSMComm(131072, oversample, sortSkewOf(sr))
	ratio := est / sr.Comm
	if ratio < 0.85 || ratio > 1.15 {
		t.Errorf("QSM estimate / measured = %.3f at n=131072, want within 15%%", ratio)
	}
}

// TestFig1Flat verifies prefix communication is independent of n while the
// QSM prediction underestimates it (overhead- and latency-dominated).
func TestFig1Flat(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep in -short mode")
	}
	net := machine.DefaultNet()
	small := runPrefix(net, 16384, defaultP, 2, 1, 2)
	large := runPrefix(net, 1048576, defaultP, 2, 1, 2)
	if rel := large.Comm / small.Comm; rel > 1.2 || rel < 0.8 {
		t.Errorf("prefix comm changed %.2fx from 16k to 1M; paper: flat", rel)
	}
	mc := Calibrate(net, 1, 4)
	qsm := mc.Calib(defaultP).PrefixQSMComm()
	if qsm > small.Comm/5 {
		t.Errorf("QSM prediction %.0f not far below measured %.0f", qsm, small.Comm)
	}
}
