package experiments

import (
	"repro/internal/algorithms"
	"repro/internal/bsp"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/qsmlib"
	"repro/internal/report"
	"repro/internal/workload"
)

func init() {
	register("ext1", "Extension 1: QSM-on-BSP emulation overhead (bridging-model constant)", ext1)
}

// ext1 measures the experimental counterpart of the bridging result the
// paper cites (Gibbons-Matias-Ramachandran): QSM algorithms emulated on a
// BSP machine should run within a small constant factor of the native QSM
// library on the same hardware.
func ext1(opt Options) (*Result, error) {
	sizes := sweepSizes(opt.Quick, []int{16384, 65536, 262144})
	runs := opt.runs()

	// One job per (size, run): it executes both the native and the emulated
	// machine so the pair shares one input array.
	type sample struct {
		dTot, dComm, eTot, eComm float64
		err                      error
	}
	per := sweepRuns(opt, len(sizes), runs, func(pt, r int, rec *obs.Recorder) sample {
		n := sizes[pt]
		seed := opt.Seed + int64(r)
		in := workload.UniformInts(n, 0, seed)
		alg := algorithms.SampleSort{N: n, Input: blockInput(in, n)}

		direct := qsmlib.New(defaultP, qsmlib.Options{Seed: seed, Obs: rec})
		if err := direct.Run(alg.Program()); err != nil {
			return sample{err: err}
		}
		ds := direct.RunStats()

		emu := bsp.NewQSM(defaultP, bsp.Options{Seed: seed, Obs: rec}, core.LayoutBlocked)
		if err := emu.Run(alg.Program()); err != nil {
			return sample{err: err}
		}
		es := emu.RunStats()
		return sample{
			dTot: float64(ds.TotalCycles), dComm: float64(ds.MaxComm()),
			eTot: float64(es.TotalCycles), eComm: float64(es.MaxComm()),
		}
	})

	t := report.NewTable("Extension 1: sample sort, native QSM library vs QSM-on-BSP emulation (p=16; cycles)",
		"n", "QSM total", "emulated total", "overhead", "QSM comm", "emulated comm")
	for i, n := range sizes {
		var dTot, dComm, eTot, eComm float64
		for _, s := range per[i] {
			if s.err != nil {
				return nil, s.err
			}
			dTot += s.dTot
			dComm += s.dComm
			eTot += s.eTot
			eComm += s.eComm
		}
		k := float64(runs)
		t.AddRow(report.Cycles(float64(n)),
			report.Cycles(dTot/k), report.Cycles(eTot/k),
			report.F(eTot/dTot),
			report.Cycles(dComm/k), report.Cycles(eComm/k))
	}
	t.AddNote("theory predicts a small constant overhead; the emulation pays one extra address translation and identical wire traffic on this substrate.")
	return &Result{ID: "ext1", Title: Title("ext1"), Tables: []*report.Table{t}}, nil
}
