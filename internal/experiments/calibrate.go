package experiments

import (
	"runtime"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/models"
	"repro/internal/qsmlib"
	"repro/internal/sim"
)

// MachineCalib holds the observed (hardware + software) network constants of
// a simulated machine configuration — the "Observed Performance" column of
// Table 3 — which parameterise the prediction lines.
type MachineCalib struct {
	Net machine.NetParams

	PutGapPB float64 // observed put cycles per byte, bulk transfers
	GetGapPB float64 // observed get cycles per byte, bulk transfers
	// GetWordGapPB and PutWordGapPB are the observed cycles per byte of
	// word-granularity scattered accesses (the access mode behind the
	// paper's 287 c/B get figure, and the traffic list ranking generates).
	GetWordGapPB float64
	PutWordGapPB float64
	LBarrier     float64 // 16-node empty-sync cost (plan + barrier), cycles
}

// Calib converts the measurements into model constants for p processors,
// with the bulk-transfer gap (right for algorithms that move contiguous
// ranges, like sample sort).
func (mc MachineCalib) Calib(p int) models.Calib {
	return models.Calib{
		P:     p,
		GWord: 8 * (mc.PutGapPB + mc.GetGapPB) / 2,
		L:     mc.LBarrier,
		Lat:   float64(mc.Net.Latency),
		O:     float64(mc.Net.SendOverhead),
	}
}

// ScatterCalib is Calib with the word-granularity gap, the right constant
// for irregular algorithms whose every access is a scattered single word
// (list ranking).
func (mc MachineCalib) ScatterCalib(p int) models.Calib {
	c := mc.Calib(p)
	c.GWord = 8 * (mc.GetWordGapPB + mc.PutWordGapPB) / 2
	return c
}

// bulkComm measures the bottleneck communication cycles of moving `words`
// words to (put) or from (get) a remote node through the library.
func bulkComm(net machine.NetParams, words int, get bool, seed int64) sim.Time {
	m := qsmlib.New(2, qsmlib.Options{Net: net, Seed: seed})
	err := m.Run(func(ctx core.Ctx) {
		h := ctx.Register("calib", 2*words)
		ctx.Sync()
		buf := make([]int64, words)
		if ctx.ID() == 0 {
			if get {
				ctx.Get(h, words, buf) // node 1's partition
			} else {
				ctx.Put(h, words, buf)
			}
		}
		ctx.Sync()
	})
	if err != nil {
		panic(err)
	}
	return m.RunStats().MaxComm()
}

// wordComm measures scattered word-granularity accesses under a symmetric
// load: every node of a 16-node machine gets (or puts) `words` scattered
// single words of its ring successor's partition, all at once. The symmetry
// matters: serving incoming requests overlaps with waiting for one's own
// replies, exactly as in a real irregular phase.
func wordComm(net machine.NetParams, words int, get bool, seed int64) sim.Time {
	const p = 16
	m := qsmlib.New(p, qsmlib.Options{Net: net, Seed: seed})
	err := m.Run(func(ctx core.Ctx) {
		h := ctx.Register("calibw", p*words)
		ctx.Sync()
		peer := (ctx.ID() + 1) % p
		idx := make([]int, 0, words)
		seen := make(map[int]bool, words)
		for i := 0; len(idx) < words; i++ {
			ix := peer*words + (i*7919)%words // scattered within the peer's partition
			if !seen[ix] {
				seen[ix] = true
				idx = append(idx, ix)
			}
		}
		if get {
			ctx.GetIndexed(h, idx, make([]int64, len(idx)))
		} else {
			ctx.PutIndexed(h, idx, make([]int64, len(idx)))
		}
		ctx.Sync()
	})
	if err != nil {
		panic(err)
	}
	return m.RunStats().MaxComm()
}

// emptySyncCost measures the fixed per-phase cost at p nodes.
func emptySyncCost(net machine.NetParams, p int, seed int64) sim.Time {
	m := qsmlib.New(p, qsmlib.Options{Net: net, Seed: seed})
	const phases = 4
	err := m.Run(func(ctx core.Ctx) {
		for i := 0; i < phases; i++ {
			ctx.Sync()
		}
	})
	if err != nil {
		panic(err)
	}
	return m.RunStats().TotalCycles / phases
}

// Calibrate measures the observed network constants of a configuration,
// fanning the nine independent calibration simulations across par stealing
// workers. par handling matches Options.Parallelism defaulting: par <= 0
// means one worker per GOMAXPROCS. The probes are wildly uneven — the four
// 16-node wordComm probes dominate the two-node bulk transfers — so each
// carries a cost hint and the scheduler starts the heavy ones first. The
// per-byte gaps are slopes between two transfer sizes, cancelling fixed
// per-sync costs.
func Calibrate(net machine.NetParams, seed int64, par int) MachineCalib {
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	const w1, w2 = 20000, 60000
	const s1, s2 = 5000, 15000
	probes := []struct {
		cost float64
		fn   func() sim.Time
	}{
		{1, func() sim.Time { return bulkComm(net, w1, false, seed) }},
		{3, func() sim.Time { return bulkComm(net, w2, false, seed) }},
		{1, func() sim.Time { return bulkComm(net, w1, true, seed) }},
		{3, func() sim.Time { return bulkComm(net, w2, true, seed) }},
		{30, func() sim.Time { return wordComm(net, s1, true, seed) }},
		{90, func() sim.Time { return wordComm(net, s2, true, seed) }},
		{30, func() sim.Time { return wordComm(net, s1, false, seed) }},
		{90, func() sim.Time { return wordComm(net, s2, false, seed) }},
		{5, func() sim.Time { return emptySyncCost(net, 16, seed) }},
	}
	c := parMapCost(par, len(probes),
		func(i int) float64 { return probes[i].cost }, "calibrate",
		func(i int) sim.Time { return probes[i].fn() })
	slope := func(c1, c2 sim.Time, b1, b2 int) float64 {
		return float64(c2-c1) / float64(8*(b2-b1))
	}
	return MachineCalib{
		Net:          net,
		PutGapPB:     slope(c[0], c[1], w1, w2),
		GetGapPB:     slope(c[2], c[3], w1, w2),
		GetWordGapPB: slope(c[4], c[5], s1, s2),
		PutWordGapPB: slope(c[6], c[7], s1, s2),
		LBarrier:     float64(c[8]),
	}
}
