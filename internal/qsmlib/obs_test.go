package qsmlib

import (
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
)

// TestObservedSupersteps checks a run with a recorder attached reports the
// superstep metrics and per-node sync/compute trace spans.
func TestObservedSupersteps(t *testing.T) {
	rec := obs.New(obs.Config{Metrics: true, Trace: true})
	const p, syncs = 4, 3
	m := New(p, Options{Seed: 1, Obs: rec})
	err := m.Run(func(ctx core.Ctx) {
		h := ctx.Register("a", p)
		ctx.Sync()
		ctx.Put(h, ctx.ID(), []int64{int64(ctx.ID())})
		ctx.Sync()
		ctx.Get(h, 0, make([]int64, 1))
		ctx.Sync()
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := rec.FindCounter("qsmlib", "syncs", "").Value(); got != p*syncs {
		t.Errorf("qsmlib.syncs = %d, want %d", got, p*syncs)
	}
	sc := rec.FindHistogram("qsmlib", "sync_cycles", "")
	if sc.Count() != p*syncs {
		t.Errorf("sync_cycles observations = %d, want %d", sc.Count(), p*syncs)
	}
	if rec.FindCounter("qsmlib", "comm_cycles", "").Value() == 0 {
		t.Error("comm_cycles counter is zero after remote traffic")
	}
	if rec.FindCounter("sim", "events", "").Value() == 0 {
		t.Error("engine events counter was not wired through Options.Obs")
	}
	// Each node emits one sync span per superstep, plus compute spans for the
	// gaps between syncs.
	if rec.Spans() < p*syncs {
		t.Errorf("trace has %d spans, want at least %d sync spans", rec.Spans(), p*syncs)
	}
}

// TestObservedRunUnperturbed checks attaching a recorder does not change the
// simulated timeline.
func TestObservedRunUnperturbed(t *testing.T) {
	prog := func(ctx core.Ctx) {
		h := ctx.Register("a", 8)
		ctx.Sync()
		ctx.Put(h, ctx.ID()*2, []int64{1, 2})
		ctx.Sync()
	}
	plain := New(4, Options{Seed: 1})
	if err := plain.Run(prog); err != nil {
		t.Fatal(err)
	}
	observed := New(4, Options{Seed: 1, Obs: obs.New(obs.Config{Metrics: true, Trace: true})})
	if err := observed.Run(prog); err != nil {
		t.Fatal(err)
	}
	if plain.RunStats().TotalCycles != observed.RunStats().TotalCycles {
		t.Errorf("observed run took %d cycles, unobserved %d",
			observed.RunStats().TotalCycles, plain.RunStats().TotalCycles)
	}
}
