package qsmlib

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/sim"
)

func TestPutGetRoundTrip(t *testing.T) {
	for _, layout := range []core.LayoutKind{core.LayoutBlocked, core.LayoutCyclic, core.LayoutHashed} {
		layout := layout
		t.Run(fmt.Sprint(layout), func(t *testing.T) {
			m := New(4, Options{Layout: layout, Seed: 1})
			err := m.Run(func(ctx core.Ctx) {
				h := ctx.Register("a", 64)
				ctx.Sync()
				vals := make([]int64, 16)
				for i := range vals {
					vals[i] = int64(ctx.ID()*16 + i + 1000)
				}
				ctx.Put(h, ctx.ID()*16, vals)
				ctx.Sync()
				got := make([]int64, 64)
				ctx.Get(h, 0, got)
				ctx.Sync()
				for i, v := range got {
					if v != int64(i+1000) {
						panic("bad value")
					}
				}
			})
			if err != nil {
				t.Fatal(err)
			}
			data := m.Array("a")
			for i, v := range data {
				if v != int64(i+1000) {
					t.Fatalf("backing[%d] = %d, want %d", i, v, i+1000)
				}
			}
		})
	}
}

func TestGetSeesPrePhaseState(t *testing.T) {
	m := New(2, Options{Seed: 1})
	err := m.Run(func(ctx core.Ctx) {
		h := ctx.Register("a", 2)
		ctx.Sync()
		if ctx.ID() == 0 {
			ctx.Put(h, 0, []int64{7, 7})
		}
		ctx.Sync()
		got := make([]int64, 1)
		if ctx.ID() == 1 {
			ctx.Get(h, 0, got)
		}
		if ctx.ID() == 0 {
			ctx.Put(h, 1, []int64{9}) // write a different word, same phase
		}
		ctx.Sync()
		if ctx.ID() == 1 && got[0] != 7 {
			panic("get did not see pre-phase state")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIndexedRoundTrip(t *testing.T) {
	for _, layout := range []core.LayoutKind{core.LayoutBlocked, core.LayoutHashed} {
		layout := layout
		t.Run(fmt.Sprint(layout), func(t *testing.T) {
			m := New(4, Options{Layout: layout, Seed: 2})
			const n = 128
			err := m.Run(func(ctx core.Ctx) {
				h := ctx.Register("a", n)
				ctx.Sync()
				var idx []int
				var vals []int64
				for i := ctx.ID(); i < n; i += ctx.P() {
					idx = append(idx, i)
					vals = append(vals, int64(3*i))
				}
				ctx.PutIndexed(h, idx, vals)
				ctx.Sync()
				// Gather a rotated strided set.
				var ridx []int
				for i := (ctx.ID() + 2) % ctx.P(); i < n; i += ctx.P() {
					ridx = append(ridx, i)
				}
				dst := make([]int64, len(ridx))
				ctx.GetIndexed(h, ridx, dst)
				ctx.Sync()
				for k, i := range ridx {
					if dst[k] != int64(3*i) {
						panic("bad indexed value")
					}
				}
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestConflictingWritesDeterministic(t *testing.T) {
	m := New(4, Options{Seed: 3})
	var got int64
	err := m.Run(func(ctx core.Ctx) {
		h := ctx.Register("a", 1)
		ctx.Sync()
		ctx.Put(h, 0, []int64{int64(100 + ctx.ID())})
		ctx.Sync()
		d := make([]int64, 1)
		if ctx.ID() == 2 {
			ctx.Get(h, 0, d)
		}
		ctx.Sync()
		if ctx.ID() == 2 {
			got = d[0]
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != 103 {
		t.Errorf("conflicting writes resolved to %d, want 103 (highest source)", got)
	}
}

func TestCommTimeGrowsWithVolume(t *testing.T) {
	run := func(words int) sim.Time {
		m := New(4, Options{Seed: 4})
		if err := m.Run(func(ctx core.Ctx) {
			h := ctx.Register("a", words*4)
			ctx.Sync()
			// Write the next processor's partition: all remote.
			buf := make([]int64, words)
			ctx.Put(h, ((ctx.ID()+1)%4)*words, buf)
			ctx.Sync()
		}); err != nil {
			t.Fatal(err)
		}
		return m.RunStats().MaxComm()
	}
	small, large := run(100), run(10000)
	if large < 5*small {
		t.Errorf("100x volume: comm %d -> %d, want strong growth", small, large)
	}
}

func TestLocalPutsCheaperThanRemote(t *testing.T) {
	run := func(remote bool) sim.Time {
		m := New(4, Options{Seed: 5})
		if err := m.Run(func(ctx core.Ctx) {
			h := ctx.Register("a", 40000)
			ctx.Sync()
			buf := make([]int64, 10000)
			dst := ctx.ID()
			if remote {
				dst = (ctx.ID() + 1) % 4
			}
			ctx.Put(h, dst*10000, buf)
			ctx.Sync()
		}); err != nil {
			t.Fatal(err)
		}
		return m.RunStats().TotalCycles
	}
	local, remote := run(false), run(true)
	if remote < 2*local {
		t.Errorf("remote puts (%d) should be much slower than local (%d)", remote, local)
	}
}

func TestRunStatsCounters(t *testing.T) {
	m := New(2, Options{Seed: 6})
	if err := m.Run(func(ctx core.Ctx) {
		h := ctx.Register("a", 2)
		ctx.Sync()
		ctx.Put(h, (ctx.ID()+1)%2, []int64{1})
		ctx.Sync()
		ctx.Compute(cpu.BlockSum(1000))
	}); err != nil {
		t.Fatal(err)
	}
	s := m.RunStats()
	if s.MsgsSent == 0 || s.BytesSent == 0 {
		t.Error("no messages counted")
	}
	if s.MaxComm() == 0 {
		t.Error("no communication time recorded")
	}
	if s.MaxComp() == 0 {
		t.Error("no computation time recorded")
	}
	if s.TotalCycles < s.MaxComm() {
		t.Error("total < comm")
	}
}

func TestTreeBarrierOption(t *testing.T) {
	m := New(8, Options{Seed: 7, TreeBarrier: true})
	if err := m.Run(func(ctx core.Ctx) {
		h := ctx.Register("a", 8)
		ctx.Sync()
		ctx.Put(h, ctx.ID(), []int64{int64(ctx.ID())})
		ctx.Sync()
	}); err != nil {
		t.Fatal(err)
	}
	for i, v := range m.Array("a") {
		if v != int64(i) {
			t.Fatalf("data wrong with tree barrier: %v", m.Array("a"))
		}
	}
}

func TestRunProfiledRemoteClassification(t *testing.T) {
	m := New(4, Options{Seed: 8})
	prof, err := m.RunProfiled(func(ctx core.Ctx) {
		h := ctx.Register("a", 4)
		ctx.Sync()
		ctx.Put(h, ctx.ID(), []int64{1}) // local under Blocked
		ctx.Sync()
		d := make([]int64, 4)
		ctx.Get(h, 0, d) // 3 remote words
		ctx.Sync()
	}, core.Flags{})
	if err != nil {
		t.Fatal(err)
	}
	if rw := prof.Phases[1].MaxRW(); rw != 0 {
		t.Errorf("phase 1 m_rw = %d, want 0 (local puts)", rw)
	}
	if rw := prof.Phases[2].MaxRW(); rw != 3 {
		t.Errorf("phase 2 m_rw = %d, want 3", rw)
	}
}

func TestHashedLayoutSpreadsOwnership(t *testing.T) {
	m := New(8, Options{Layout: core.LayoutHashed, Seed: 9})
	var per []int
	if err := m.Run(func(ctx core.Ctx) {
		h := ctx.Register("a", 8000)
		ctx.Sync()
		if ctx.ID() == 0 {
			per = m.PerOwner(h, 0, 8000)
		}
	}); err != nil {
		t.Fatal(err)
	}
	for o, n := range per {
		if n < 700 || n > 1300 {
			t.Errorf("owner %d has %d of 8000 words, want ~1000", o, n)
		}
	}
}

func TestDeterministicSimulation(t *testing.T) {
	run := func() sim.Time {
		m := New(4, Options{Seed: 10})
		if err := m.Run(func(ctx core.Ctx) {
			h := ctx.Register("a", 1024)
			ctx.Sync()
			buf := make([]int64, 64)
			for r := 0; r < 3; r++ {
				ctx.Put(h, int(ctx.Rand().Int31n(960)), buf)
				ctx.Sync()
			}
		}); err != nil {
			t.Fatal(err)
		}
		return m.RunStats().TotalCycles
	}
	if a, b := run(), run(); a != b {
		t.Errorf("nondeterministic simulation: %d vs %d", a, b)
	}
}

func TestEmptySyncCheap(t *testing.T) {
	m := New(16, Options{Seed: 11})
	if err := m.Run(func(ctx core.Ctx) {
		ctx.Sync()
		ctx.Sync()
	}); err != nil {
		t.Fatal(err)
	}
	// An empty sync is plan + barrier; it must stay well under a
	// data-heavy sync but be nonzero.
	total := m.RunStats().TotalCycles
	if total == 0 || total > 500000 {
		t.Errorf("two empty syncs took %d cycles", total)
	}
}

func TestRegisterMismatchPanics(t *testing.T) {
	m := New(2, Options{})
	err := m.Run(func(ctx core.Ctx) {
		if ctx.ID() == 0 {
			ctx.Register("a", 10)
		} else {
			ctx.Register("a", 10)
			ctx.Register("a", 20)
		}
	})
	if err == nil {
		t.Fatal("size mismatch should error")
	}
}

func TestOutOfBoundsPanics(t *testing.T) {
	m := New(2, Options{})
	err := m.Run(func(ctx core.Ctx) {
		h := ctx.Register("a", 4)
		ctx.Sync()
		if ctx.ID() == 0 {
			ctx.GetIndexed(h, []int{9}, make([]int64, 1))
		}
		ctx.Sync()
	})
	if err == nil {
		t.Fatal("out-of-range index should error")
	}
}

func TestReadWriteLocal(t *testing.T) {
	m := New(4, Options{Seed: 20})
	if err := m.Run(func(ctx core.Ctx) {
		h := ctx.Register("a", 16) // block 4
		ctx.Sync()
		lo := ctx.ID() * 4
		vals := []int64{1, 2, 3, 4}
		ctx.WriteLocal(h, lo, vals)
		got := make([]int64, 4)
		ctx.ReadLocal(h, lo, got)
		for i := range vals {
			if got[i] != vals[i] {
				panic("ReadLocal did not see WriteLocal")
			}
		}
		ctx.Sync()
	}); err != nil {
		t.Fatal(err)
	}
}

func TestReadLocalForeignPanics(t *testing.T) {
	m := New(4, Options{Seed: 21})
	err := m.Run(func(ctx core.Ctx) {
		h := ctx.Register("a", 16)
		ctx.Sync()
		if ctx.ID() == 0 {
			ctx.ReadLocal(h, 8, make([]int64, 2)) // proc 2's block
		}
		ctx.Sync()
	})
	if err == nil {
		t.Fatal("foreign ReadLocal should error")
	}
}

func TestFreeAndReuse(t *testing.T) {
	m := New(3, Options{Seed: 22})
	if err := m.Run(func(ctx core.Ctx) {
		h := ctx.Register("tmp", 6)
		ctx.Sync()
		ctx.Put(h, ctx.ID()*2, []int64{1, 2})
		ctx.Sync()
		ctx.Free(h)
		ctx.Sync()
		h2 := ctx.Register("tmp", 9) // reuse the name with a new size
		ctx.Sync()
		ctx.Put(h2, ctx.ID()*3, []int64{7, 8, 9})
		ctx.Sync()
	}); err != nil {
		t.Fatal(err)
	}
	if got := len(m.Array("tmp")); got != 9 {
		t.Fatalf("reused array length = %d, want 9", got)
	}
}

func TestUseAfterFreePanics(t *testing.T) {
	m := New(2, Options{Seed: 23})
	err := m.Run(func(ctx core.Ctx) {
		h := ctx.Register("tmp", 4)
		ctx.Sync()
		ctx.Free(h)
		ctx.Sync()
		ctx.Put(h, 0, []int64{1}) // all procs freed: destroyed
	})
	if err == nil {
		t.Fatal("use after free should error")
	}
}

func TestNaiveExchangeStillCorrect(t *testing.T) {
	m := New(4, Options{Seed: 24, NaiveExchange: true})
	if err := m.Run(func(ctx core.Ctx) {
		h := ctx.Register("a", 16)
		ctx.Sync()
		ctx.Put(h, ((ctx.ID()+1)%4)*4, []int64{9, 9, 9, 9})
		ctx.Sync()
	}); err != nil {
		t.Fatal(err)
	}
	for i, v := range m.Array("a") {
		if v != 9 {
			t.Fatalf("word %d = %d under naive exchange", i, v)
		}
	}
}

func TestTimeline(t *testing.T) {
	m := New(4, Options{Seed: 30})
	if err := m.Run(func(ctx core.Ctx) {
		h := ctx.Register("a", 16)
		ctx.Sync()
		ctx.Put(h, ((ctx.ID()+1)%4)*4, []int64{1, 2, 3, 4})
		ctx.Sync()
		d := make([]int64, 4)
		ctx.Get(h, 0, d)
		ctx.Sync()
	}); err != nil {
		t.Fatal(err)
	}
	tl := m.Timeline(0)
	if len(tl) != 3 {
		t.Fatalf("timeline has %d spans, want 3", len(tl))
	}
	if tl[1].PutWords != 4 {
		t.Errorf("phase 1 put words = %d, want 4", tl[1].PutWords)
	}
	if tl[2].GetWords == 0 {
		t.Errorf("phase 2 get words = 0")
	}
	for i, s := range tl {
		if s.End <= s.Start {
			t.Errorf("span %d has non-positive duration", i)
		}
		if i > 0 && s.Start < tl[i-1].End {
			t.Errorf("span %d overlaps previous", i)
		}
	}
	if m.Timeline(99) != nil {
		t.Error("invalid node should yield nil timeline")
	}
}
