// Package qsmlib is the simulated-machine backend of the QSM model: the
// bulk-synchronous shared-memory library of Section 3.1.2, reimplemented on
// the machine/msg substrate.
//
// Access to remote memory happens through explicit Get and Put calls that
// merely enqueue requests on the local node. Communication happens when
// Sync is called: the system first builds and distributes a communications
// plan saying how many put words and get requests will flow between each
// pair of nodes, then nodes exchange data in a staggered order designed to
// reduce receive-side contention and avoid deadlock (node i talks to node
// (i+r) mod p in round r), owners serve get replies from pre-phase state,
// writes are applied, and a barrier ends the phase.
package qsmlib

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/machine"
	"repro/internal/msg"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Options configure the simulated QSM machine.
type Options struct {
	Net machine.NetParams // zero value uses machine.DefaultNet
	SW  msg.SWParams      // zero value uses msg.DefaultSW
	// Layout is the default layout for arrays registered without an
	// explicit spec; LayoutDefault means blocked.
	Layout core.LayoutKind
	Seed   int64
	// TreeBarrier selects the dissemination barrier instead of the central
	// one at the end of every Sync.
	TreeBarrier bool
	// NaiveExchange disables the staggered exchange schedule: every node
	// sends to peers in index order 0,1,2,..., concentrating early traffic
	// on low-numbered receive NICs. Exists for the ablation benchmarks.
	NaiveExchange bool
	// Model builds each node's processor model; nil uses Table 2 analytic.
	Model func(id int) cpu.Model
	// Obs attaches an observability recorder to the machine, the messaging
	// layer, and the sync protocol (superstep spans with a compute/sync
	// split). Nil costs nothing.
	Obs *obs.Recorder
}

// tracePid is the trace process id qsmlib supersteps render under; bsp uses
// a different pid so both libraries can share one recorder (see ext1).
const tracePid = 0

// Machine is a simulated p-node QSM machine.
type Machine struct {
	MP   *machine.Multiprocessor
	opts Options

	arrays []*array
	byName map[string]core.Handle
	ctxs   []*qctx
}

type array struct {
	name  string
	data  []int64
	lay   core.Layout
	frees int // processors that have called Free; destroyed at P
	freed bool
}

// New builds a p-node simulated QSM machine.
func New(p int, opts Options) *Machine {
	if opts.Net == (machine.NetParams{}) {
		opts.Net = machine.DefaultNet()
	}
	if opts.SW == (msg.SWParams{}) {
		opts.SW = msg.DefaultSW()
	}
	m := &Machine{opts: opts, byName: map[string]core.Handle{}}
	m.MP = machine.New(p, opts.Net, opts.Model)
	if opts.Obs != nil {
		m.MP.Observe(opts.Obs)
	}
	return m
}

// P returns the node count.
func (m *Machine) P() int { return m.MP.P() }

// G returns the effective QSM gap parameter implied by the machine's
// hardware network: cycles per 8-byte word at the hardware bandwidth.
func (m *Machine) G() float64 { return m.opts.Net.Gap * 8 }

// Run executes prog as a QSM program on all nodes and returns when the
// simulation completes.
func (m *Machine) Run(prog core.Program) error {
	m.ctxs = make([]*qctx, m.P())
	if rec := m.opts.Obs; rec.Tracing() {
		rec.NamePid(tracePid, "qsmlib")
		for i := 0; i < m.P(); i++ {
			rec.NameTid(tracePid, i, fmt.Sprintf("node%d", i))
		}
	}
	err := m.MP.Run(m.opts.Seed, func(n *machine.Node) {
		ctx := newQctx(m, n)
		m.ctxs[n.ID()] = ctx
		prog(ctx)
	})
	if rec := m.opts.Obs; rec != nil {
		for _, c := range m.ctxs {
			if c == nil {
				continue
			}
			rec.Counter("qsmlib", "comm_cycles", "").Add(uint64(c.commCycles))
		}
		for _, n := range m.MP.Nodes {
			rec.Counter("qsmlib", "comp_cycles", "").Add(uint64(n.CompCycles))
		}
	}
	return err
}

// RunProfiled executes prog with cost recording.
func (m *Machine) RunProfiled(prog core.Program, flags core.Flags) (*core.Profile, error) {
	col := core.NewCollector(m.P(), m, cpu.NewAnalytic(cpu.Table2()), flags)
	err := m.Run(func(ctx core.Ctx) { prog(core.NewRecorder(ctx, col)) })
	profile, perr := col.Finish()
	if err == nil {
		err = perr
	}
	return profile, err
}

// Stats summarise a completed run.
type Stats struct {
	TotalCycles sim.Time // end-to-end simulated time
	// CommCycles and CompCycles are per-node library (communication) and
	// Compute time.
	CommCycles []sim.Time
	CompCycles []sim.Time
	MsgsSent   uint64
	BytesSent  uint64
}

// MaxComm returns the bottleneck node's communication time.
func (s Stats) MaxComm() sim.Time {
	var m sim.Time
	for _, c := range s.CommCycles {
		if c > m {
			m = c
		}
	}
	return m
}

// MaxComp returns the bottleneck node's computation time.
func (s Stats) MaxComp() sim.Time {
	var m sim.Time
	for _, c := range s.CompCycles {
		if c > m {
			m = c
		}
	}
	return m
}

// RunStats returns the measurements of the last Run.
func (m *Machine) RunStats() Stats {
	s := Stats{TotalCycles: m.MP.E.Now()}
	for _, n := range m.MP.Nodes {
		s.MsgsSent += n.MsgsSent
		s.BytesSent += n.BytesSent
		s.CompCycles = append(s.CompCycles, n.CompCycles)
	}
	for _, c := range m.ctxs {
		if c == nil {
			s.CommCycles = append(s.CommCycles, 0)
			continue
		}
		s.CommCycles = append(s.CommCycles, c.commCycles)
	}
	return s
}

// Timeline returns node id's per-phase sync spans from the last Run: when
// each Sync began and ended in simulated time and how many words it moved.
// Useful for visualising where a program's time goes.
func (m *Machine) Timeline(id int) []PhaseSpan {
	if id < 0 || id >= len(m.ctxs) || m.ctxs[id] == nil {
		return nil
	}
	return m.ctxs[id].timeline
}

// Array returns the backing data of a registered array for inspection after
// Run, or nil if never registered.
func (m *Machine) Array(name string) []int64 {
	h, ok := m.byName[name]
	if !ok {
		return nil
	}
	return m.arrays[h].data
}

func (m *Machine) free(h core.Handle) {
	if h < 0 || int(h) >= len(m.arrays) {
		panic(fmt.Sprintf("qsmlib: invalid handle %d", h))
	}
	a := m.arrays[h]
	if a.freed {
		return
	}
	a.frees++
	if a.frees < m.P() {
		// Collective: peers may still access the array this phase; it is
		// destroyed once every processor has freed it.
		return
	}
	a.freed = true
	a.data = nil
	delete(m.byName, a.name)
}

func (m *Machine) register(name string, n int, spec core.LayoutSpec) core.Handle {
	if h, ok := m.byName[name]; ok {
		if len(m.arrays[h].data) != n {
			panic(fmt.Sprintf("qsmlib: array %q re-registered with size %d != %d", name, n, len(m.arrays[h].data)))
		}
		return h
	}
	h := core.Handle(len(m.arrays))
	hseed := stats.Mix64(uint64(m.opts.Seed), uint64(h)+0xabcd)
	m.arrays = append(m.arrays, &array{
		name: name,
		data: make([]int64, n),
		lay:  core.ResolveLayout(spec, n, m.P(), m.opts.Layout, hseed),
	})
	m.byName[name] = h
	return h
}

func (m *Machine) arr(h core.Handle) *array {
	if h < 0 || int(h) >= len(m.arrays) {
		panic(fmt.Sprintf("qsmlib: invalid handle %d", h))
	}
	a := m.arrays[h]
	if a.freed {
		panic(fmt.Sprintf("qsmlib: array %q used after Free", a.name))
	}
	return a
}

// OwnerOf implements core.Ownership.
func (m *Machine) OwnerOf(h core.Handle, i int) int { return m.arr(h).lay.OwnerOf(i) }

// PerOwner implements core.Ownership.
func (m *Machine) PerOwner(h core.Handle, off, n int) []int {
	return m.arr(h).lay.PerOwner(off, n)
}
