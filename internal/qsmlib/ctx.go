package qsmlib

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/machine"
	"repro/internal/msg"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Wire message types of the sync protocol.

type planMsg struct {
	putWords int
	getReqs  int
}

type putSeg struct {
	h    core.Handle
	off  int   // contiguous start; -1 for indexed
	idx  []int // nil for contiguous
	vals []int64
}

type getReq struct {
	reqID int
	h     core.Handle
	off   int // contiguous start; -1 for indexed
	n     int
	idx   []int
}

type syncMsg struct {
	puts []putSeg
	reqs []getReq
}

type replyItem struct {
	reqID int
	vals  []int64
}

type replyMsg struct {
	items []replyItem
}

type pendingGet struct {
	dst []int64
	pos []int // reply value k lands in dst[pos[k]]; nil means dst[k]
}

// Software cost constants for local queue and memory work (cycles); the
// heavyweight buffer copies are charged by the msg layer.
const (
	enqueueFixed   = 16
	enqueuePerWord = 2
	localPerWord   = 4
	localPerSeg    = 16
)

// qctx is the per-node core.Ctx of the simulated machine.
type qctx struct {
	m    *Machine
	node *machine.Node
	comm *msg.Comm
	gen  int

	outPuts  [][]putSeg
	outReqs  [][]getReq
	selfReqs []getReq
	pending  []pendingGet

	commCycles sim.Time
	timeline   []PhaseSpan

	// Observability: nil-safe handles plus the last Sync's end time, which
	// delimits the compute span preceding the next Sync.
	rec           *obs.Recorder
	obsSyncs      *obs.Counter
	obsSyncCycles *obs.Histogram
	obsPutWords   *obs.Histogram
	obsGetWords   *obs.Histogram
	lastSyncEnd   sim.Time
}

// PhaseSpan records one Sync call on one node for the timeline facility.
type PhaseSpan struct {
	Phase      int
	Start, End sim.Time
	PutWords   int
	GetWords   int
}

var _ core.Ctx = (*qctx)(nil)

func newQctx(m *Machine, n *machine.Node) *qctx {
	p := m.P()
	c := &qctx{
		m:       m,
		node:    n,
		comm:    msg.NewComm(n, m.opts.SW),
		outPuts: make([][]putSeg, p),
		outReqs: make([][]getReq, p),
	}
	if rec := m.opts.Obs; rec != nil {
		c.rec = rec
		c.comm.Observe(rec)
		c.obsSyncs = rec.Counter("qsmlib", "syncs", "")
		c.obsSyncCycles = rec.Histogram("qsmlib", "sync_cycles", "", obs.ExpBuckets(1024, 2, 16))
		c.obsPutWords = rec.Histogram("qsmlib", "phase_put_words", "", obs.ExpBuckets(1, 4, 12))
		c.obsGetWords = rec.Histogram("qsmlib", "phase_get_words", "", obs.ExpBuckets(1, 4, 12))
	}
	return c
}

func (c *qctx) ID() int          { return c.node.ID() }
func (c *qctx) P() int           { return c.m.P() }
func (c *qctx) Rand() *rand.Rand { return c.node.Proc().Rand() }

func (c *qctx) Register(name string, n int) core.Handle {
	return c.m.register(name, n, core.LayoutSpec{})
}

// RegisterSpec registers an array with an explicit layout.
func (c *qctx) RegisterSpec(name string, n int, spec core.LayoutSpec) core.Handle {
	return c.m.register(name, n, spec)
}

// Free un-registers an array.
func (c *qctx) Free(h core.Handle) {
	c.busyComm(enqueueFixed)
	c.m.free(h)
}

// spansCheap reports whether per-owner spans of the array are O(p).
func spansCheap(a *array) bool {
	switch a.lay.Kind {
	case core.LayoutBlocked, core.LayoutDefault, core.LayoutSingle:
		return true
	}
	return false
}

// ReadLocal immediately reads from this node's own partition.
func (c *qctx) ReadLocal(h core.Handle, off int, dst []int64) {
	if len(dst) == 0 {
		return
	}
	a := c.m.arr(h)
	c.bounds(a, off, len(dst))
	if !a.lay.OwnsRange(c.ID(), off, len(dst)) {
		panic(fmt.Sprintf("qsmlib: ReadLocal of %q[%d:%d) not owned by node %d", a.name, off, off+len(dst), c.ID()))
	}
	copy(dst, a.data[off:off+len(dst)])
	c.node.Busy(sim.Time(localPerSeg + localPerWord*len(dst)))
}

// WriteLocal immediately writes into this node's own partition.
func (c *qctx) WriteLocal(h core.Handle, off int, src []int64) {
	if len(src) == 0 {
		return
	}
	a := c.m.arr(h)
	c.bounds(a, off, len(src))
	if !a.lay.OwnsRange(c.ID(), off, len(src)) {
		panic(fmt.Sprintf("qsmlib: WriteLocal of %q[%d:%d) not owned by node %d", a.name, off, off+len(src), c.ID()))
	}
	copy(a.data[off:off+len(src)], src)
	c.node.Busy(sim.Time(localPerSeg + localPerWord*len(src)))
}

// Compute charges local algorithm work to the node's processor model.
func (c *qctx) Compute(b cpu.OpBlock) { c.node.Compute(b) }

// busyComm charges cycles of local library work, counted as communication.
func (c *qctx) busyComm(cycles sim.Time) {
	c.node.Busy(cycles)
	c.commCycles += cycles
}

func (c *qctx) bounds(a *array, off, n int) {
	if off < 0 || off+n > len(a.data) {
		panic(fmt.Sprintf("qsmlib: range [%d,%d) out of bounds for %q (len %d)", off, off+n, a.name, len(a.data)))
	}
}

// Put enqueues a contiguous write, split into per-owner segments.
func (c *qctx) Put(h core.Handle, off int, src []int64) {
	if len(src) == 0 {
		return
	}
	a := c.m.arr(h)
	c.bounds(a, off, len(src))
	c.busyComm(enqueueFixed + sim.Time(enqueuePerWord*len(src)))
	if spansCheap(a) {
		base := off
		a.lay.Spans(off, len(src), func(o, so, cnt int) {
			vals := make([]int64, cnt)
			copy(vals, src[so-base:so-base+cnt])
			c.outPuts[o] = append(c.outPuts[o], putSeg{h: h, off: so, vals: vals})
		})
		return
	}
	c.putScattered(a, h, seqIdx(off, len(src)), src)
}

// PutIndexed enqueues scattered writes.
func (c *qctx) PutIndexed(h core.Handle, idx []int, src []int64) {
	if len(idx) != len(src) {
		panic(fmt.Sprintf("qsmlib: PutIndexed len(idx)=%d != len(src)=%d", len(idx), len(src)))
	}
	if len(idx) == 0 {
		return
	}
	a := c.m.arr(h)
	for _, ix := range idx {
		if ix < 0 || ix >= len(a.data) {
			panic(fmt.Sprintf("qsmlib: index %d out of range for %q (len %d)", ix, a.name, len(a.data)))
		}
	}
	c.busyComm(enqueueFixed + sim.Time(enqueuePerWord*len(src)))
	c.putScattered(a, h, idx, src)
}

func (c *qctx) putScattered(a *array, h core.Handle, idx []int, src []int64) {
	byOwner := map[int]*putSeg{}
	for i, ix := range idx {
		o := a.lay.OwnerOf(ix)
		seg := byOwner[o]
		if seg == nil {
			seg = &putSeg{h: h, off: -1}
			byOwner[o] = seg
		}
		seg.idx = append(seg.idx, ix)
		seg.vals = append(seg.vals, src[i])
	}
	owners := make([]int, 0, len(byOwner))
	for o := range byOwner {
		owners = append(owners, o)
	}
	sort.Ints(owners)
	for _, o := range owners {
		c.outPuts[o] = append(c.outPuts[o], *byOwner[o])
	}
}

// Get enqueues a contiguous read.
func (c *qctx) Get(h core.Handle, off int, dst []int64) {
	if len(dst) == 0 {
		return
	}
	a := c.m.arr(h)
	c.bounds(a, off, len(dst))
	c.busyComm(enqueueFixed + sim.Time(enqueuePerWord*len(dst)))
	if spansCheap(a) {
		base := off
		a.lay.Spans(off, len(dst), func(o, so, cnt int) {
			c.addGet(o, getReq{h: h, off: so, n: cnt}, pendingGet{dst: dst[so-base : so-base+cnt]})
		})
		return
	}
	c.getScattered(a, h, seqIdx(off, len(dst)), dst)
}

// GetIndexed enqueues scattered reads.
func (c *qctx) GetIndexed(h core.Handle, idx []int, dst []int64) {
	if len(idx) != len(dst) {
		panic(fmt.Sprintf("qsmlib: GetIndexed len(idx)=%d != len(dst)=%d", len(idx), len(dst)))
	}
	if len(idx) == 0 {
		return
	}
	a := c.m.arr(h)
	for _, ix := range idx {
		if ix < 0 || ix >= len(a.data) {
			panic(fmt.Sprintf("qsmlib: index %d out of range for %q (len %d)", ix, a.name, len(a.data)))
		}
	}
	c.busyComm(enqueueFixed + sim.Time(enqueuePerWord*len(dst)))
	c.getScattered(a, h, idx, dst)
}

func (c *qctx) getScattered(a *array, h core.Handle, idx []int, dst []int64) {
	type group struct {
		idx []int
		pos []int
	}
	byOwner := map[int]*group{}
	for i, ix := range idx {
		o := a.lay.OwnerOf(ix)
		g := byOwner[o]
		if g == nil {
			g = &group{}
			byOwner[o] = g
		}
		g.idx = append(g.idx, ix)
		g.pos = append(g.pos, i)
	}
	owners := make([]int, 0, len(byOwner))
	for o := range byOwner {
		owners = append(owners, o)
	}
	sort.Ints(owners)
	for _, o := range owners {
		g := byOwner[o]
		c.addGet(o, getReq{h: h, off: -1, idx: g.idx}, pendingGet{dst: dst, pos: g.pos})
	}
}

func (c *qctx) addGet(owner int, rq getReq, pg pendingGet) {
	rq.reqID = len(c.pending)
	c.pending = append(c.pending, pg)
	if owner == c.ID() {
		c.selfReqs = append(c.selfReqs, rq)
		return
	}
	c.outReqs[owner] = append(c.outReqs[owner], rq)
}

func seqIdx(off, n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = off + i
	}
	return idx
}

// gather reads the request's words from the (pre-phase) array state.
func (c *qctx) gather(rq getReq) []int64 {
	a := c.m.arr(rq.h)
	if rq.idx == nil {
		vals := make([]int64, rq.n)
		copy(vals, a.data[rq.off:rq.off+rq.n])
		return vals
	}
	vals := make([]int64, len(rq.idx))
	for i, ix := range rq.idx {
		vals[i] = a.data[ix]
	}
	return vals
}

// scatter writes reply values into the requester's destination.
func scatter(pg pendingGet, vals []int64) {
	if pg.pos == nil {
		copy(pg.dst, vals)
		return
	}
	for k, v := range vals {
		pg.dst[pg.pos[k]] = v
	}
}

func words(segs []putSeg) int {
	w := 0
	for _, s := range segs {
		w += len(s.vals)
	}
	return w
}

func smBytes(sm *syncMsg) int {
	b := 0
	for _, s := range sm.puts {
		b += 16 + 8*len(s.vals)
		if s.idx != nil {
			b += 8 * len(s.idx)
		}
	}
	for _, r := range sm.reqs {
		b += 24
		if r.idx != nil {
			b += 8 * len(r.idx)
		}
	}
	return b
}

func replyBytes(rm *replyMsg) int {
	b := 0
	for _, it := range rm.items {
		b += 16 + 8*len(it.vals)
	}
	return b
}

// peerOrder returns the exchange schedule: staggered (node me talks to
// (me+r) mod p in round r) unless the machine is configured naive.
func (c *qctx) peerOrder() []int {
	p, me := c.P(), c.ID()
	order := make([]int, 0, p-1)
	if c.m.opts.NaiveExchange {
		for peer := 0; peer < p; peer++ {
			if peer != me {
				order = append(order, peer)
			}
		}
		return order
	}
	for r := 1; r < p; r++ {
		order = append(order, (me+r)%p)
	}
	return order
}

// Sync runs the bulk-synchronous exchange protocol described in the package
// comment and ends the phase.
func (c *qctx) Sync() {
	t0 := c.node.Now()
	span := PhaseSpan{Phase: c.gen, Start: t0}
	for _, segs := range c.outPuts {
		span.PutWords += words(segs) // outPuts[me] holds the self puts
	}
	span.GetWords = len(c.pending)
	p, me := c.P(), c.ID()
	order := c.peerOrder()
	gen := c.gen
	c.gen++
	tagPlan, tagData, tagReply := 3*gen, 3*gen+1, 3*gen+2

	// 1. Distribute the communications plan.
	for _, peer := range order {
		pm := planMsg{putWords: words(c.outPuts[peer]), getReqs: len(c.outReqs[peer])}
		c.comm.Send(peer, tagPlan, 16, pm)
	}
	expectData := make([]bool, p)
	for r := 1; r < p; r++ {
		peer := (me - r + p) % p
		pm := c.comm.Recv(peer, tagPlan).Payload.(planMsg)
		expectData[peer] = pm.putWords > 0 || pm.getReqs > 0
	}

	// 2. Data exchange (staggered by default): puts and get requests.
	for _, peer := range order {
		if len(c.outPuts[peer]) == 0 && len(c.outReqs[peer]) == 0 {
			continue
		}
		sm := &syncMsg{puts: c.outPuts[peer], reqs: c.outReqs[peer]}
		c.comm.Send(peer, tagData, smBytes(sm), sm)
	}

	// 3. Receive data; serve get replies from pre-phase state.
	type incoming struct {
		src  int
		puts []putSeg
	}
	var in []incoming
	for r := 1; r < p; r++ {
		peer := (me - r + p) % p
		if !expectData[peer] {
			continue
		}
		sm := c.comm.Recv(peer, tagData).Payload.(*syncMsg)
		if len(sm.puts) > 0 {
			in = append(in, incoming{src: peer, puts: sm.puts})
		}
		if len(sm.reqs) > 0 {
			rm := &replyMsg{}
			w := 0
			for _, rq := range sm.reqs {
				vals := c.gather(rq)
				w += len(vals)
				rm.items = append(rm.items, replyItem{reqID: rq.reqID, vals: vals})
			}
			c.node.Busy(sim.Time(localPerSeg*len(sm.reqs) + localPerWord*w))
			c.comm.Send(peer, tagReply, replyBytes(rm), rm)
		}
	}

	// 4. Receive replies and fill destinations.
	for _, peer := range order {
		if len(c.outReqs[peer]) == 0 {
			continue
		}
		rm := c.comm.Recv(peer, tagReply).Payload.(*replyMsg)
		w := 0
		for _, it := range rm.items {
			scatter(c.pending[it.reqID], it.vals)
			w += len(it.vals)
		}
		c.node.Busy(sim.Time(localPerSeg*len(rm.items) + localPerWord*w))
	}

	// 5. Serve this node's own-partition gets.
	if len(c.selfReqs) > 0 {
		w := 0
		for _, rq := range c.selfReqs {
			vals := c.gather(rq)
			w += len(vals)
			scatter(c.pending[rq.reqID], vals)
		}
		c.node.Busy(sim.Time(localPerSeg*len(c.selfReqs) + localPerWord*w))
	}

	// 6. Apply writes in source order (self included), so concurrent writes
	// to one word resolve deterministically.
	sort.Slice(in, func(i, j int) bool { return in[i].src < in[j].src })
	applied := 0
	apply := func(segs []putSeg) {
		for _, s := range segs {
			a := c.m.arr(s.h)
			if s.idx == nil {
				copy(a.data[s.off:s.off+len(s.vals)], s.vals)
			} else {
				for i, ix := range s.idx {
					a.data[ix] = s.vals[i]
				}
			}
			applied += len(s.vals)
		}
	}
	ii := 0
	for src := 0; src < p; src++ {
		if src == me {
			apply(c.outPuts[me])
			continue
		}
		if ii < len(in) && in[ii].src == src {
			apply(in[ii].puts)
			ii++
		}
	}
	if applied > 0 {
		c.node.Busy(sim.Time(localPerWord * applied))
	}

	// 7. Reset phase state and synchronize.
	for i := range c.outPuts {
		c.outPuts[i] = nil
		c.outReqs[i] = nil
	}
	c.selfReqs = nil
	c.pending = nil

	if c.m.opts.TreeBarrier {
		c.comm.TreeBarrier()
	} else {
		c.comm.Barrier()
	}
	c.commCycles += c.node.Now() - t0
	span.End = c.node.Now()
	c.timeline = append(c.timeline, span)

	c.obsSyncs.Inc()
	c.obsSyncCycles.Observe(float64(span.End - t0))
	c.obsPutWords.Observe(float64(span.PutWords))
	c.obsGetWords.Observe(float64(span.GetWords))
	if c.rec.Tracing() {
		if t0 > c.lastSyncEnd {
			c.rec.Span(tracePid, me, "qsmlib", "compute", uint64(c.lastSyncEnd), uint64(t0),
				obs.Arg{Key: "phase", Val: int64(gen)})
		}
		c.rec.Span(tracePid, me, "qsmlib", fmt.Sprintf("sync %d", gen), uint64(t0), uint64(span.End),
			obs.Arg{Key: "phase", Val: int64(gen)},
			obs.Arg{Key: "put_words", Val: int64(span.PutWords)},
			obs.Arg{Key: "get_words", Val: int64(span.GetWords)})
	}
	c.lastSyncEnd = span.End
}
