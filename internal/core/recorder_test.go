package core

import (
	"math/rand"
	"testing"

	"repro/internal/cpu"
)

// fakeCtx is a minimal single-machine backend for exercising the Recorder:
// shared arrays are flat slices, puts apply at Sync, gets read pre-phase
// state. One fakeMachine hosts p fakeCtxs driven sequentially.
type fakeMachine struct {
	p      int
	arrays [][]int64
	byName map[string]Handle
	lays   []Layout
}

func newFakeMachine(p int) *fakeMachine {
	return &fakeMachine{p: p, byName: map[string]Handle{}}
}

func (m *fakeMachine) OwnerOf(h Handle, i int) int { return m.lays[h].OwnerOf(i) }
func (m *fakeMachine) PerOwner(h Handle, off, n int) []int {
	return m.lays[h].PerOwner(off, n)
}

type fakeCtx struct {
	m   *fakeMachine
	id  int
	rng *rand.Rand
}

func (c *fakeCtx) ID() int          { return c.id }
func (c *fakeCtx) P() int           { return c.m.p }
func (c *fakeCtx) Rand() *rand.Rand { return c.rng }

func (c *fakeCtx) Register(name string, n int) Handle {
	return c.RegisterSpec(name, n, LayoutSpec{})
}

func (c *fakeCtx) RegisterSpec(name string, n int, spec LayoutSpec) Handle {
	if h, ok := c.m.byName[name]; ok {
		return h
	}
	h := Handle(len(c.m.arrays))
	c.m.arrays = append(c.m.arrays, make([]int64, n))
	c.m.lays = append(c.m.lays, ResolveLayout(spec, n, c.m.p, LayoutBlocked, 7))
	c.m.byName[name] = h
	return h
}

func (c *fakeCtx) Free(Handle) {}

func (c *fakeCtx) Put(h Handle, off int, src []int64) {
	copy(c.m.arrays[h][off:off+len(src)], src) // applied eagerly: fine for these tests
}
func (c *fakeCtx) Get(h Handle, off int, dst []int64) {
	copy(dst, c.m.arrays[h][off:off+len(dst)])
}
func (c *fakeCtx) PutIndexed(h Handle, idx []int, src []int64) {
	for k, i := range idx {
		c.m.arrays[h][i] = src[k]
	}
}
func (c *fakeCtx) GetIndexed(h Handle, idx []int, dst []int64) {
	for k, i := range idx {
		dst[k] = c.m.arrays[h][i]
	}
}
func (c *fakeCtx) ReadLocal(h Handle, off int, dst []int64)  { c.Get(h, off, dst) }
func (c *fakeCtx) WriteLocal(h Handle, off int, src []int64) { c.Put(h, off, src) }
func (c *fakeCtx) Sync()                                     {}
func (c *fakeCtx) Compute(cpu.OpBlock)                       {}

var _ Ctx = (*fakeCtx)(nil)

// driven runs fn for each of p recorders over one fake machine and returns
// the collector's profile.
func driven(t *testing.T, p int, flags Flags, fn func(ctx Ctx)) (*Profile, error) {
	t.Helper()
	m := newFakeMachine(p)
	col := NewCollector(p, m, nil, flags)
	for id := 0; id < p; id++ {
		fn(NewRecorder(&fakeCtx{m: m, id: id, rng: rand.New(rand.NewSource(int64(id)))}, col))
	}
	return col.Finish()
}

func TestRecorderCountsRemoteAndLocal(t *testing.T) {
	prof, err := driven(t, 4, Flags{}, func(ctx Ctx) {
		h := ctx.Register("a", 8) // block 2: procs own [2i, 2i+2)
		ctx.Sync()
		ctx.Put(h, ctx.ID()*2, []int64{1, 2}) // local
		ctx.Sync()
		d := make([]int64, 8)
		ctx.Get(h, 0, d) // 6 remote words
		ctx.Sync()
		ctx.Compute(cpu.BlockSum(100))
	})
	if err != nil {
		t.Fatal(err)
	}
	if rw := prof.Phases[1].MaxRW(); rw != 0 {
		t.Errorf("local put counted remote: %d", rw)
	}
	if rw := prof.Phases[2].MaxRW(); rw != 6 {
		t.Errorf("phase 2 m_rw = %d, want 6", rw)
	}
	last := prof.Phases[len(prof.Phases)-1]
	if last.MaxOps() == 0 || last.MaxOpCycles() == 0 {
		t.Error("compute not recorded")
	}
}

func TestRecorderIndexedTrafficAndMsgs(t *testing.T) {
	prof, err := driven(t, 4, Flags{}, func(ctx Ctx) {
		h := ctx.Register("a", 8)
		ctx.Sync()
		if ctx.ID() == 0 {
			// One word to each other owner: 3 remote words, 3 messages.
			ctx.PutIndexed(h, []int{2, 4, 6}, []int64{1, 2, 3})
		}
		ctx.Sync()
	})
	if err != nil {
		t.Fatal(err)
	}
	ph := prof.Phases[1]
	if ph.RW[0] != 3 {
		t.Errorf("proc 0 m_rw = %d, want 3", ph.RW[0])
	}
	if ph.Msgs[0] != 3 {
		t.Errorf("proc 0 msgs = %d, want 3", ph.Msgs[0])
	}
	if ph.SentWords[0] != 3 || ph.RecvWords[1] != 1 {
		t.Errorf("h-relation wrong: sent=%v recv=%v", ph.SentWords, ph.RecvWords)
	}
}

func TestRecorderGetTrafficFlowsOwnerToReader(t *testing.T) {
	prof, err := driven(t, 2, Flags{}, func(ctx Ctx) {
		h := ctx.Register("a", 4)
		ctx.Sync()
		if ctx.ID() == 1 {
			d := make([]int64, 2)
			ctx.Get(h, 0, d) // proc 0's words
		}
		ctx.Sync()
	})
	if err != nil {
		t.Fatal(err)
	}
	ph := prof.Phases[1]
	if ph.SentWords[0] != 2 || ph.RecvWords[1] != 2 {
		t.Errorf("get traffic wrong: sent=%v recv=%v", ph.SentWords, ph.RecvWords)
	}
}

func TestCollectorRuleViolationRange(t *testing.T) {
	_, err := driven(t, 2, Flags{CheckRules: true}, func(ctx Ctx) {
		h := ctx.Register("a", 4)
		ctx.Sync()
		if ctx.ID() == 0 {
			ctx.Put(h, 1, []int64{9})
		} else {
			ctx.Get(h, 0, make([]int64, 3)) // overlaps the write at word 1
		}
		ctx.Sync()
	})
	if err == nil {
		t.Fatal("overlapping read/write not detected")
	}
}

func TestCollectorRuleCleanPasses(t *testing.T) {
	_, err := driven(t, 2, Flags{CheckRules: true}, func(ctx Ctx) {
		h := ctx.Register("a", 4)
		ctx.Sync()
		if ctx.ID() == 0 {
			ctx.Put(h, 0, []int64{9, 9})
		} else {
			ctx.Get(h, 2, make([]int64, 2)) // disjoint
		}
		ctx.Sync()
	})
	if err != nil {
		t.Fatalf("disjoint read/write flagged: %v", err)
	}
}

func TestCollectorKappaMixedSpansAndPoints(t *testing.T) {
	prof, err := driven(t, 3, Flags{TrackKappa: true}, func(ctx Ctx) {
		h := ctx.Register("a", 10)
		ctx.Sync()
		ctx.Get(h, 2, make([]int64, 4))               // range [2,6) from each of 3 procs
		ctx.GetIndexed(h, []int{3}, make([]int64, 1)) // extra point at 3
		ctx.Sync()
	})
	if err != nil {
		t.Fatal(err)
	}
	// Word 3: 3 range reads + 3 point reads = 6.
	if k := prof.Phases[1].Kappa; k != 6 {
		t.Errorf("kappa = %d, want 6", k)
	}
}

func TestRecorderLocalOpsPassThrough(t *testing.T) {
	prof, err := driven(t, 2, Flags{}, func(ctx Ctx) {
		h := ctx.RegisterSpec("a", 4, LayoutSpec{Kind: LayoutBlocked})
		ctx.Sync()
		ctx.WriteLocal(h, ctx.ID()*2, []int64{5})
		d := make([]int64, 1)
		ctx.ReadLocal(h, ctx.ID()*2, d)
		if d[0] != 5 {
			t.Error("local round trip failed")
		}
		ctx.Free(h)
		if ctx.Rand() == nil || ctx.P() != 2 {
			t.Error("passthrough accessors wrong")
		}
		ctx.Sync()
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, ph := range prof.Phases {
		if ph.MaxRW() != 0 {
			t.Error("local accesses must not count as remote")
		}
	}
}

func TestCollectorNilOwnership(t *testing.T) {
	col := NewCollector(2, nil, nil, Flags{})
	ctx := NewRecorder(&fakeCtx{m: newFakeMachine(2), id: 0}, col)
	h := ctx.Register("a", 4)
	ctx.Sync()
	ctx.Put(h, 0, []int64{1, 2})
	ctx.Sync()
	prof, err := col.Finish()
	if err != nil {
		t.Fatal(err)
	}
	// Without ownership info, every word counts as m_rw.
	if rw := prof.Phases[1].MaxRW(); rw != 2 {
		t.Errorf("m_rw = %d, want 2 (conservative)", rw)
	}
}
