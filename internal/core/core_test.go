package core

import (
	"math"
	"testing"
	"testing/quick"
)

func phase(ops, rw []uint64, kappa uint64) *PhaseProfile {
	n := len(ops)
	ph := &PhaseProfile{
		Ops: ops, OpCycles: ops, RW: rw,
		SentWords: rw, RecvWords: make([]uint64, n),
		Msgs: make([]uint64, n), Kappa: kappa,
	}
	return ph
}

func TestPhaseCharges(t *testing.T) {
	ph := phase([]uint64{100, 50}, []uint64{10, 30}, 7)
	if got := ph.QSMCharge(2); got != 100 {
		t.Errorf("QSM charge = %g, want max(100, 60, 7) = 100", got)
	}
	if got := ph.QSMCharge(5); got != 150 {
		t.Errorf("QSM charge = %g, want g*m_rw = 150", got)
	}
	ph2 := phase([]uint64{5}, []uint64{1}, 40)
	if got := ph2.QSMCharge(2); got != 40 {
		t.Errorf("QSM charge = %g, want kappa = 40", got)
	}
	if got := ph2.SQSMCharge(2); got != 80 {
		t.Errorf("s-QSM charge = %g, want g*kappa = 80", got)
	}
}

func TestSQSMAtLeastQSM(t *testing.T) {
	f := func(op, rw uint16, kappa uint8) bool {
		ph := phase([]uint64{uint64(op)}, []uint64{uint64(rw)}, uint64(kappa))
		for _, g := range []float64{0.5, 1, 3, 24} {
			if ph.SQSMCharge(g)+1e-9 < ph.QSMCharge(g) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCommOnlyLeqFull(t *testing.T) {
	ph := phase([]uint64{1000, 2000}, []uint64{10, 20}, 3)
	if ph.CommOnlyQSM(3) > ph.QSMCharge(3) {
		t.Error("comm-only charge exceeds full charge")
	}
}

func TestProfileSums(t *testing.T) {
	pr := &Profile{P: 2, Phases: []*PhaseProfile{
		phase([]uint64{10, 20}, []uint64{5, 5}, 0),
		phase([]uint64{30, 5}, []uint64{0, 8}, 0),
	}}
	if got := pr.QSMTime(1); got != 20+30 {
		t.Errorf("QSMTime = %g, want 50", got)
	}
	if pr.NumPhases() != 2 {
		t.Error("NumPhases wrong")
	}
	if got := pr.TotalRemoteWords(); got != 18 {
		t.Errorf("TotalRemoteWords = %d, want 18", got)
	}
	// BSP adds L per phase.
	if got := pr.BSPTime(1, 100); got != 20+30+200 {
		t.Errorf("BSPTime = %g, want 250", got)
	}
	bspComm := pr.BSPCommTime(2, 100)
	if bspComm != 2*5+2*8+200 {
		t.Errorf("BSPCommTime = %g, want 226", bspComm)
	}
}

func TestLogPCommCharges(t *testing.T) {
	ph := phase([]uint64{0, 0}, []uint64{10, 0}, 0)
	ph.Msgs[0] = 4
	pr := &Profile{P: 2, Phases: []*PhaseProfile{ph}}
	got := pr.LogPCommTime(2, 100, 50)
	want := 2.0*50*4 + 2*10 + 100
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("LogPCommTime = %g, want %g", got, want)
	}
}

func TestResolveLayoutDefaults(t *testing.T) {
	l := ResolveLayout(LayoutSpec{}, 100, 4, LayoutDefault, 1)
	if l.Kind != LayoutBlocked {
		t.Errorf("default of default should be blocked, got %v", l.Kind)
	}
	l = ResolveLayout(LayoutSpec{}, 100, 4, LayoutHashed, 1)
	if l.Kind != LayoutHashed {
		t.Errorf("backend default not honoured: %v", l.Kind)
	}
	l = ResolveLayout(LayoutSpec{Kind: LayoutCyclic}, 100, 4, LayoutHashed, 1)
	if l.Kind != LayoutCyclic {
		t.Errorf("explicit spec not honoured: %v", l.Kind)
	}
}

func TestLayoutOwnerOf(t *testing.T) {
	blocked := ResolveLayout(LayoutSpec{Kind: LayoutBlocked}, 10, 4, 0, 1)
	want := []int{0, 0, 0, 1, 1, 1, 2, 2, 2, 3}
	for i, w := range want {
		if got := blocked.OwnerOf(i); got != w {
			t.Errorf("blocked OwnerOf(%d) = %d, want %d", i, got, w)
		}
	}
	cyclic := ResolveLayout(LayoutSpec{Kind: LayoutCyclic}, 10, 4, 0, 1)
	for i := 0; i < 10; i++ {
		if cyclic.OwnerOf(i) != i%4 {
			t.Fatal("cyclic ownership wrong")
		}
	}
	single := ResolveLayout(LayoutSpec{Kind: LayoutSingle, Owner: 2}, 10, 4, 0, 1)
	for i := 0; i < 10; i++ {
		if single.OwnerOf(i) != 2 {
			t.Fatal("single ownership wrong")
		}
	}
}

func TestLayoutHashedBalanced(t *testing.T) {
	l := ResolveLayout(LayoutSpec{Kind: LayoutHashed}, 80000, 8, 0, 12345)
	per := l.PerOwner(0, 80000)
	for o, c := range per {
		if c < 9000 || c > 11000 {
			t.Errorf("hashed owner %d holds %d of 80000, want ~10000", o, c)
		}
	}
}

func TestLayoutPerOwnerMatchesOwnerOf(t *testing.T) {
	kinds := []LayoutKind{LayoutBlocked, LayoutCyclic, LayoutHashed, LayoutSingle}
	f := func(nRaw uint8, offRaw, lenRaw uint8, kindIdx uint8) bool {
		n := int(nRaw)%200 + 1
		p := 5
		off := int(offRaw) % n
		cnt := int(lenRaw) % (n - off)
		l := ResolveLayout(LayoutSpec{Kind: kinds[kindIdx%4], Owner: 3}, n, p, 0, 77)
		per := l.PerOwner(off, cnt)
		want := make([]int, p)
		for i := off; i < off+cnt; i++ {
			want[l.OwnerOf(i)]++
		}
		for o := range want {
			if per[o] != want[o] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestLayoutSpansCoverExactly(t *testing.T) {
	kinds := []LayoutKind{LayoutBlocked, LayoutCyclic, LayoutHashed, LayoutSingle}
	f := func(nRaw, offRaw, lenRaw, kindIdx uint8) bool {
		n := int(nRaw)%150 + 1
		off := int(offRaw) % n
		cnt := int(lenRaw) % (n - off)
		l := ResolveLayout(LayoutSpec{Kind: kinds[kindIdx%4], Owner: 1}, n, 4, 0, 9)
		cursor := off
		total := 0
		ok := true
		l.Spans(off, cnt, func(owner, so, c int) {
			if so != cursor || c <= 0 {
				ok = false
				return
			}
			for i := so; i < so+c; i++ {
				if l.OwnerOf(i) != owner {
					ok = false
				}
			}
			cursor += c
			total += c
		})
		return ok && total == cnt
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestOwnsRange(t *testing.T) {
	l := ResolveLayout(LayoutSpec{Kind: LayoutBlocked}, 12, 4, 0, 1)
	if !l.OwnsRange(0, 0, 3) {
		t.Error("proc 0 should own [0,3)")
	}
	if l.OwnsRange(0, 0, 4) {
		t.Error("proc 0 should not own [0,4)")
	}
	if !l.OwnsRange(3, 9, 3) {
		t.Error("last proc should own the tail")
	}
	h := ResolveLayout(LayoutSpec{Kind: LayoutHashed}, 1000, 4, 0, 5)
	if h.OwnsRange(0, 0, 100) {
		t.Error("hashed layout almost surely does not give one proc 100 consecutive words")
	}
	s := ResolveLayout(LayoutSpec{Kind: LayoutSingle, Owner: 2}, 50, 4, 0, 1)
	if !s.OwnsRange(2, 0, 50) || s.OwnsRange(1, 0, 1) {
		t.Error("single ownership wrong")
	}
}

func TestMaxHelpers(t *testing.T) {
	ph := &PhaseProfile{
		Ops:       []uint64{3, 9, 1},
		SentWords: []uint64{5, 2, 0},
		RecvWords: []uint64{1, 8, 2},
		Msgs:      []uint64{4, 0, 2},
	}
	if ph.MaxOps() != 9 || ph.MaxH() != 8 || ph.MaxMsgs() != 4 {
		t.Errorf("maxima wrong: ops=%d h=%d msgs=%d", ph.MaxOps(), ph.MaxH(), ph.MaxMsgs())
	}
}
