package core

import "testing"

// FuzzLayoutInvariants checks every layout kind on arbitrary geometry:
// owners are in range, PerOwner matches OwnerOf, and spans cover the range
// exactly once.
func FuzzLayoutInvariants(f *testing.F) {
	f.Add(uint16(10), uint8(4), uint8(0), uint8(5), uint64(1))
	f.Add(uint16(257), uint8(7), uint8(3), uint8(100), uint64(99))
	f.Fuzz(func(t *testing.T, nRaw uint16, pRaw, kindRaw, lenRaw uint8, hseed uint64) {
		n := int(nRaw)%1000 + 1
		p := int(pRaw)%16 + 1
		kinds := []LayoutKind{LayoutBlocked, LayoutCyclic, LayoutHashed, LayoutSingle}
		kind := kinds[int(kindRaw)%len(kinds)]
		owner := int(hseed % uint64(p))
		l := ResolveLayout(LayoutSpec{Kind: kind, Owner: owner}, n, p, LayoutBlocked, hseed)

		off := int(lenRaw) % n
		cnt := n - off
		per := l.PerOwner(off, cnt)
		total := 0
		for o, c := range per {
			if c < 0 {
				t.Fatalf("negative count for owner %d", o)
			}
			total += c
		}
		if total != cnt {
			t.Fatalf("PerOwner covers %d of %d", total, cnt)
		}
		for i := off; i < off+cnt; i++ {
			if o := l.OwnerOf(i); o < 0 || o >= p {
				t.Fatalf("OwnerOf(%d) = %d out of range", i, o)
			}
		}
		covered := 0
		cursor := off
		l.Spans(off, cnt, func(o, so, c int) {
			if so != cursor || c <= 0 || o < 0 || o >= p {
				t.Fatalf("bad span (%d,%d,%d) at cursor %d", o, so, c, cursor)
			}
			cursor += c
			covered += c
		})
		if covered != cnt {
			t.Fatalf("spans cover %d of %d", covered, cnt)
		}
	})
}
