package core

import "math"

// PhaseProfile records, for one bulk-synchronous phase, the quantities the
// cost models charge for. Slices are indexed by processor.
type PhaseProfile struct {
	// Ops is per-processor local computation, in operations (the unit QSM's
	// m_op is expressed in).
	Ops []uint64
	// OpCycles is per-processor local computation in model cycles.
	OpCycles []uint64
	// RW is the per-processor count of remote shared-memory words read or
	// written (m_rw excludes accesses a processor makes to its own
	// partition, which need no communication).
	RW []uint64
	// SentWords and RecvWords are per-processor h-relation sides for
	// BSP/LogP charging.
	SentWords []uint64
	RecvWords []uint64
	// Msgs is the per-processor message count (for LogP's overhead term).
	Msgs []uint64
	// Kappa is the maximum number of accesses to any single shared word, or
	// 0 if contention tracking was disabled.
	Kappa uint64
}

// MaxOps returns m_op: the maximum local operations on any processor.
func (ph *PhaseProfile) MaxOps() uint64 { return maxOf(ph.Ops) }

// MaxOpCycles returns the maximum local cycles on any processor.
func (ph *PhaseProfile) MaxOpCycles() uint64 { return maxOf(ph.OpCycles) }

// MaxRW returns m_rw: the maximum remote words accessed by any processor.
func (ph *PhaseProfile) MaxRW() uint64 { return maxOf(ph.RW) }

// MaxH returns the BSP h-relation: the maximum over processors of
// max(sent, received) words.
func (ph *PhaseProfile) MaxH() uint64 {
	h := maxOf(ph.SentWords)
	if r := maxOf(ph.RecvWords); r > h {
		h = r
	}
	return h
}

// MaxMsgs returns the maximum messages sent by any processor.
func (ph *PhaseProfile) MaxMsgs() uint64 { return maxOf(ph.Msgs) }

func maxOf(xs []uint64) uint64 {
	var m uint64
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// QSMCharge returns the QSM time cost of the phase,
// max(m_op, g*m_rw, kappa), in operation units.
func (ph *PhaseProfile) QSMCharge(g float64) float64 {
	return math.Max(float64(ph.MaxOps()),
		math.Max(g*float64(ph.MaxRW()), float64(ph.Kappa)))
}

// SQSMCharge returns the s-QSM (symmetric QSM) time cost,
// max(m_op, g*m_rw, g*kappa).
func (ph *PhaseProfile) SQSMCharge(g float64) float64 {
	return math.Max(float64(ph.MaxOps()),
		math.Max(g*float64(ph.MaxRW()), g*float64(ph.Kappa)))
}

// CommOnlyQSM returns the communication part of the QSM charge,
// max(g*m_rw, kappa); the paper's prediction lines chart communication time
// separately from local computation.
func (ph *PhaseProfile) CommOnlyQSM(g float64) float64 {
	return math.Max(g*float64(ph.MaxRW()), float64(ph.Kappa))
}

// Profile is the sequence of phase profiles of a complete run.
type Profile struct {
	P      int
	Phases []*PhaseProfile
}

// QSMTime sums the QSM charges over all phases.
func (pr *Profile) QSMTime(g float64) float64 {
	var t float64
	for _, ph := range pr.Phases {
		t += ph.QSMCharge(g)
	}
	return t
}

// SQSMTime sums the s-QSM charges over all phases.
func (pr *Profile) SQSMTime(g float64) float64 {
	var t float64
	for _, ph := range pr.Phases {
		t += ph.SQSMCharge(g)
	}
	return t
}

// QSMCommTime sums the communication-only QSM charges over all phases.
func (pr *Profile) QSMCommTime(g float64) float64 {
	var t float64
	for _, ph := range pr.Phases {
		t += ph.CommOnlyQSM(g)
	}
	return t
}

// BSPTime charges each phase max(m_op_cycles, g*h) + L: the BSP cost with
// the per-phase synchronization term the QSM omits.
func (pr *Profile) BSPTime(g float64, l float64) float64 {
	var t float64
	for _, ph := range pr.Phases {
		t += math.Max(float64(ph.MaxOpCycles()), g*float64(ph.MaxH())) + l
	}
	return t
}

// BSPCommTime is BSPTime without the local-computation term:
// per phase, g*h + L.
func (pr *Profile) BSPCommTime(g float64, l float64) float64 {
	var t float64
	for _, ph := range pr.Phases {
		t += g*float64(ph.MaxH()) + l
	}
	return t
}

// LogPCommTime charges per phase 2*o*msgs + g*h + l: per-message overhead at
// sender and receiver, bandwidth, and one pipelined latency per phase.
func (pr *Profile) LogPCommTime(g, l, o float64) float64 {
	var t float64
	for _, ph := range pr.Phases {
		t += 2*o*float64(ph.MaxMsgs()) + g*float64(ph.MaxH()) + l
	}
	return t
}

// NumPhases returns the number of recorded phases.
func (pr *Profile) NumPhases() int { return len(pr.Phases) }

// TotalRemoteWords returns the sum over phases of the aggregate (not max)
// remote words, a measure of total communication volume W.
func (pr *Profile) TotalRemoteWords() uint64 {
	var w uint64
	for _, ph := range pr.Phases {
		for _, x := range ph.RW {
			w += x
		}
	}
	return w
}
