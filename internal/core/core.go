// Package core defines the QSM (Queuing Shared Memory) programming model:
// the architecture-neutral contract between algorithm descriptions and
// machine implementations.
//
// A QSM machine consists of p identical processors, each with private
// memory, communicating through shared memory in a sequence of synchronized
// phases. Within a phase a processor may interleave local computation,
// shared-memory reads (Get) and shared-memory writes (Put), but values
// returned by reads issued in a phase may not be used until the next phase,
// and no shared location may be both read and written in the same phase.
// Sync ends the phase.
//
// Algorithms are written once against the Ctx interface and run unchanged
// on any backend: the cycle-accurate simulated multiprocessor
// (internal/qsmlib) used to reproduce the paper's figures, or the native
// goroutine runtime (internal/par) for real parallel execution.
//
// The QSM cost model charges a phase max(m_op, g*m_rw, kappa), where m_op is
// the maximum local computation at any processor, m_rw the maximum number of
// shared-memory reads or writes by any processor, and kappa the maximum
// contention to any single shared location. The symmetric variant s-QSM
// charges max(m_op, g*m_rw, g*kappa). Package core provides both charges and
// the per-phase accounting needed to compute them (see Recorder).
package core

import (
	"math/rand"

	"repro/internal/cpu"
)

// Handle names a registered shared-memory array.
type Handle int

// InvalidHandle is returned for failed registrations.
const InvalidHandle Handle = -1

// Ctx is the per-processor view of a QSM machine. All methods must be
// called from the processor's own program function.
type Ctx interface {
	// ID returns this processor's index in [0, P()).
	ID() int
	// P returns the number of processors.
	P() int

	// Register allocates (or, on processors other than the first caller,
	// resolves) a shared array of n 64-bit words under the given name, in
	// the backend's default layout. All processors must register the same
	// name with the same size in the same phase, and a Sync must complete
	// before the array is accessed.
	Register(name string, n int) Handle
	// RegisterSpec is Register with an explicit data layout.
	RegisterSpec(name string, n int, spec LayoutSpec) Handle
	// Free un-registers a shared array (the appendix's "un-register and
	// deallocate temporary structures"). All processors must free the same
	// handle in the same phase, after a Sync has retired every outstanding
	// access; subsequent accesses panic. The name becomes reusable.
	Free(h Handle)

	// Put enqueues a write of src to h[off : off+len(src)]. The write
	// becomes visible to readers only after the next Sync.
	Put(h Handle, off int, src []int64)
	// Get enqueues a read of h[off : off+len(dst)] into dst. dst is filled
	// with the values the locations held at the start of the Sync; it must
	// not be inspected until Sync returns.
	Get(h Handle, off int, dst []int64)
	// PutIndexed enqueues scattered writes: h[idx[i]] = src[i].
	PutIndexed(h Handle, idx []int, src []int64)
	// GetIndexed enqueues scattered reads: dst[i] = h[idx[i]].
	GetIndexed(h Handle, idx []int, dst []int64)

	// ReadLocal immediately reads h[off : off+len(dst)] into dst. Every
	// word in the range must be owned by this processor: such words live in
	// its private memory, so the access is local computation, not
	// communication, and needs no Sync. It sees the state committed by the
	// last Sync.
	ReadLocal(h Handle, off int, dst []int64)
	// WriteLocal immediately writes src to h[off : off+len(src)], which
	// must be entirely owned by this processor. Used to place distributed
	// input and results without charging communication.
	WriteLocal(h Handle, off int, src []int64)

	// Sync ends the current phase: all enqueued Puts are applied, all
	// enqueued Gets are satisfied, and all processors synchronize.
	Sync()

	// Compute charges the local computation described by b to this
	// processor. On the simulated backend it advances simulated time by the
	// node model's cost; on the native backend the work is real and Compute
	// only records the charge for cost accounting.
	Compute(b cpu.OpBlock)

	// Rand returns this processor's deterministic private random source.
	Rand() *rand.Rand
}

// Program is a QSM algorithm: it runs once on every processor.
type Program func(Ctx)

// LayoutKind selects how a shared array's words map to owning processors.
type LayoutKind int

// Layout kinds.
const (
	// LayoutDefault defers to the backend's configured default.
	LayoutDefault LayoutKind = iota
	// LayoutBlocked gives processor k words [k*ceil(n/p), (k+1)*ceil(n/p)).
	LayoutBlocked
	// LayoutCyclic gives word i to processor i mod p.
	LayoutCyclic
	// LayoutHashed gives word i to a pseudorandom processor (the randomized
	// layout of the QSM implementation contract).
	LayoutHashed
	// LayoutSingle places every word on the processor named by
	// LayoutSpec.Owner.
	LayoutSingle
)

// LayoutSpec names an explicit array layout.
type LayoutSpec struct {
	Kind  LayoutKind
	Owner int // for LayoutSingle
}

// Params are the QSM model's two architectural parameters.
type Params struct {
	P int     // number of processors
	G float64 // gap: local instruction rate / remote communication rate
}
