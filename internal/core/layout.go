package core

import "repro/internal/stats"

// Layout is a resolved array layout: the mapping from word indices to
// owning processors, shared by all backends.
type Layout struct {
	Kind  LayoutKind
	P     int
	N     int
	Block int    // words per block for LayoutBlocked
	Owner int    // for LayoutSingle
	HSeed uint64 // for LayoutHashed
}

// ResolveLayout turns a LayoutSpec into a concrete Layout for an n-word
// array on p processors. def replaces LayoutDefault; hseed salts the hashed
// mapping.
func ResolveLayout(spec LayoutSpec, n, p int, def LayoutKind, hseed uint64) Layout {
	kind := spec.Kind
	if kind == LayoutDefault {
		kind = def
	}
	if kind == LayoutDefault {
		kind = LayoutBlocked
	}
	block := (n + p - 1) / p
	if block == 0 {
		block = 1
	}
	return Layout{Kind: kind, P: p, N: n, Block: block, Owner: spec.Owner, HSeed: hseed}
}

// OwnerOf returns the processor owning word i.
func (l Layout) OwnerOf(i int) int {
	switch l.Kind {
	case LayoutCyclic:
		return i % l.P
	case LayoutHashed:
		return int(stats.Mix64(l.HSeed, uint64(i)) % uint64(l.P))
	case LayoutSingle:
		return l.Owner
	default:
		o := i / l.Block
		if o >= l.P {
			o = l.P - 1
		}
		return o
	}
}

// PerOwner returns how many words of [off, off+n) each processor owns.
func (l Layout) PerOwner(off, n int) []int {
	per := make([]int, l.P)
	switch l.Kind {
	case LayoutBlocked, LayoutDefault:
		l.Spans(off, n, func(owner, off, cnt int) { per[owner] += cnt })
	case LayoutSingle:
		per[l.Owner] = n
	case LayoutCyclic:
		base := n / l.P
		for o := range per {
			per[o] = base
		}
		for i := off + base*l.P; i < off+n; i++ {
			per[i%l.P]++
		}
	default:
		for i := off; i < off+n; i++ {
			per[l.OwnerOf(i)]++
		}
	}
	return per
}

// Spans calls fn(owner, off, count) for each maximal same-owner run of
// [off, off+n), in address order. For blocked and single layouts the number
// of spans is small; for cyclic and hashed it degenerates to per-word calls.
func (l Layout) Spans(off, n int, fn func(owner, off, cnt int)) {
	switch l.Kind {
	case LayoutSingle:
		if n > 0 {
			fn(l.Owner, off, n)
		}
	case LayoutBlocked, LayoutDefault:
		for n > 0 {
			o := l.OwnerOf(off)
			end := (off/l.Block + 1) * l.Block
			if o == l.P-1 {
				end = off + n
			}
			take := end - off
			if take > n {
				take = n
			}
			fn(o, off, take)
			off += take
			n -= take
		}
	default:
		for n > 0 {
			o := l.OwnerOf(off)
			cnt := 1
			for cnt < n && l.OwnerOf(off+cnt) == o {
				cnt++
			}
			fn(o, off, cnt)
			off += cnt
			n -= cnt
		}
	}
}

// OwnsRange reports whether proc owns every word of [off, off+n).
func (l Layout) OwnsRange(proc, off, n int) bool {
	switch l.Kind {
	case LayoutSingle:
		return l.Owner == proc
	case LayoutBlocked, LayoutDefault:
		if n <= 0 {
			return true
		}
		return l.OwnerOf(off) == proc && l.OwnerOf(off+n-1) == proc
	default:
		for i := off; i < off+n; i++ {
			if l.OwnerOf(i) != proc {
				return false
			}
		}
		return true
	}
}
