package core

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/cpu"
)

// Ownership lets the cost recorder classify shared-memory accesses as local
// or remote and attribute traffic to owners. Backends implement it for their
// data layouts.
type Ownership interface {
	// OwnerOf returns the processor owning word i of handle h.
	OwnerOf(h Handle, i int) int
	// PerOwner returns, for the range [off, off+n) of h, how many words
	// each processor owns. The result has length P.
	PerOwner(h Handle, off, n int) []int
}

// Flags selects which (potentially expensive) checks a Collector performs.
type Flags struct {
	// CheckRules verifies the QSM bulk-synchrony contract: no shared word
	// is both read and written within a single phase.
	CheckRules bool
	// TrackKappa computes the exact per-phase contention kappa (the maximum
	// number of accesses to any single word).
	TrackKappa bool
}

// Collector accumulates phase profiles from the Recorders of all
// processors. It is safe for concurrent use by the native backend.
type Collector struct {
	mu    sync.Mutex
	p     int
	own   Ownership
	cost  cpu.Model
	flags Flags

	phases  []*PhaseProfile
	traffic [][][]uint64 // per phase: p x p words sent i -> j
	spans   []*phaseSpans
	errs    []error
}

type span struct{ lo, hi int } // [lo, hi)

type phaseSpans struct {
	reads  map[Handle][]span
	writes map[Handle][]span
}

// NewCollector creates a collector for p processors. own attributes accesses
// (nil disables remote/local classification and traffic accounting); cost
// converts OpBlocks to cycles (nil uses the Table 2 analytic model).
func NewCollector(p int, own Ownership, cost cpu.Model, flags Flags) *Collector {
	if cost == nil {
		cost = cpu.NewAnalytic(cpu.Table2())
	}
	return &Collector{p: p, own: own, cost: cost, flags: flags}
}

// P returns the processor count.
func (c *Collector) P() int { return c.p }

func (c *Collector) phase(k int) (*PhaseProfile, *phaseSpans, [][]uint64) {
	for len(c.phases) <= k {
		c.phases = append(c.phases, &PhaseProfile{
			Ops:       make([]uint64, c.p),
			OpCycles:  make([]uint64, c.p),
			RW:        make([]uint64, c.p),
			SentWords: make([]uint64, c.p),
			RecvWords: make([]uint64, c.p),
			Msgs:      make([]uint64, c.p),
		})
		t := make([][]uint64, c.p)
		for i := range t {
			t[i] = make([]uint64, c.p)
		}
		c.traffic = append(c.traffic, t)
		c.spans = append(c.spans, &phaseSpans{
			reads:  map[Handle][]span{},
			writes: map[Handle][]span{},
		})
	}
	return c.phases[k], c.spans[k], c.traffic[k]
}

func (c *Collector) recordCompute(proc, phase int, b cpu.OpBlock) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ph, _, _ := c.phase(phase)
	ph.Ops[proc] += b.Ops()
	ph.OpCycles[proc] += c.cost.Cycles(b)
}

func (c *Collector) recordRange(proc, phase int, h Handle, off, n int, write bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ph, sp, tr := c.phase(phase)
	if c.own != nil {
		per := c.own.PerOwner(h, off, n)
		for owner, w := range per {
			if w == 0 {
				continue
			}
			if owner != proc {
				ph.RW[proc] += uint64(w)
				if write {
					tr[proc][owner] += uint64(w)
				} else {
					tr[owner][proc] += uint64(w) // data flows owner -> reader
				}
			}
		}
	} else {
		ph.RW[proc] += uint64(n)
	}
	if c.flags.CheckRules || c.flags.TrackKappa {
		m := sp.reads
		if write {
			m = sp.writes
		}
		m[h] = append(m[h], span{off, off + n})
	}
}

func (c *Collector) recordIndexed(proc, phase int, h Handle, idx []int, write bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ph, sp, tr := c.phase(phase)
	if c.own != nil {
		for _, i := range idx {
			owner := c.own.OwnerOf(h, i)
			if owner != proc {
				ph.RW[proc]++
				if write {
					tr[proc][owner]++
				} else {
					tr[owner][proc]++
				}
			}
		}
	} else {
		ph.RW[proc] += uint64(len(idx))
	}
	if c.flags.CheckRules || c.flags.TrackKappa {
		m := sp.reads
		if write {
			m = sp.writes
		}
		spans := m[h]
		for _, i := range idx {
			spans = append(spans, span{i, i + 1})
		}
		m[h] = spans
	}
}

// Finish resolves per-phase aggregates (message counts, h-relations, kappa)
// and returns the run profile. It reports the first bulk-synchrony rule
// violation found, if rule checking was enabled.
func (c *Collector) Finish() (*Profile, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for k, ph := range c.phases {
		tr := c.traffic[k]
		for i := 0; i < c.p; i++ {
			for j := 0; j < c.p; j++ {
				if i == j {
					continue
				}
				w := tr[i][j]
				if w > 0 {
					ph.SentWords[i] += w
					ph.RecvWords[j] += w
					ph.Msgs[i]++
				}
			}
		}
		sp := c.spans[k]
		if c.flags.CheckRules {
			if err := checkRules(sp); err != nil {
				c.errs = append(c.errs, fmt.Errorf("phase %d: %w", k, err))
			}
		}
		if c.flags.TrackKappa {
			ph.Kappa = kappaOf(sp)
		}
	}
	pr := &Profile{P: c.p, Phases: c.phases}
	if len(c.errs) > 0 {
		return pr, c.errs[0]
	}
	return pr, nil
}

// checkRules detects a shared word both read and written in one phase.
func checkRules(sp *phaseSpans) error {
	for h, writes := range sp.writes {
		reads := sp.reads[h]
		if len(reads) == 0 {
			continue
		}
		ws := append([]span(nil), writes...)
		rs := append([]span(nil), reads...)
		sort.Slice(ws, func(i, j int) bool { return ws[i].lo < ws[j].lo })
		sort.Slice(rs, func(i, j int) bool { return rs[i].lo < rs[j].lo })
		i := 0
		for _, r := range rs {
			for i < len(ws) && ws[i].hi <= r.lo {
				i++
			}
			if i < len(ws) && ws[i].lo < r.hi {
				return fmt.Errorf("QSM rule violation: handle %d word range [%d,%d) both read and written", h, max(r.lo, ws[i].lo), min(r.hi, ws[i].hi))
			}
		}
	}
	return nil
}

// kappaOf computes the maximum number of accesses covering any single word.
func kappaOf(sp *phaseSpans) uint64 {
	type edge struct {
		at    int
		delta int
	}
	var best int
	handles := map[Handle][]edge{}
	add := func(m map[Handle][]span) {
		for h, spans := range m {
			for _, s := range spans {
				handles[h] = append(handles[h], edge{s.lo, 1}, edge{s.hi, -1})
			}
		}
	}
	add(sp.reads)
	add(sp.writes)
	for _, edges := range handles {
		sort.Slice(edges, func(i, j int) bool {
			if edges[i].at != edges[j].at {
				return edges[i].at < edges[j].at
			}
			return edges[i].delta < edges[j].delta // close before open
		})
		depth := 0
		for _, e := range edges {
			depth += e.delta
			if depth > best {
				best = depth
			}
		}
	}
	return uint64(best)
}

// Recorder wraps a backend Ctx and reports every operation to a Collector.
type Recorder struct {
	inner Ctx
	c     *Collector
	phase int
}

// NewRecorder wraps ctx so that its activity is recorded into c.
func NewRecorder(ctx Ctx, c *Collector) *Recorder {
	return &Recorder{inner: ctx, c: c}
}

// ID implements Ctx.
func (r *Recorder) ID() int { return r.inner.ID() }

// P implements Ctx.
func (r *Recorder) P() int { return r.inner.P() }

// Register implements Ctx.
func (r *Recorder) Register(name string, n int) Handle { return r.inner.Register(name, n) }

// RegisterSpec implements Ctx.
func (r *Recorder) RegisterSpec(name string, n int, spec LayoutSpec) Handle {
	return r.inner.RegisterSpec(name, n, spec)
}

// Free implements Ctx.
func (r *Recorder) Free(h Handle) { r.inner.Free(h) }

// ReadLocal implements Ctx. Private-memory accesses are local computation,
// so no remote words are recorded.
func (r *Recorder) ReadLocal(h Handle, off int, dst []int64) { r.inner.ReadLocal(h, off, dst) }

// WriteLocal implements Ctx.
func (r *Recorder) WriteLocal(h Handle, off int, src []int64) { r.inner.WriteLocal(h, off, src) }

// Put implements Ctx.
func (r *Recorder) Put(h Handle, off int, src []int64) {
	r.c.recordRange(r.ID(), r.phase, h, off, len(src), true)
	r.inner.Put(h, off, src)
}

// Get implements Ctx.
func (r *Recorder) Get(h Handle, off int, dst []int64) {
	r.c.recordRange(r.ID(), r.phase, h, off, len(dst), false)
	r.inner.Get(h, off, dst)
}

// PutIndexed implements Ctx.
func (r *Recorder) PutIndexed(h Handle, idx []int, src []int64) {
	r.c.recordIndexed(r.ID(), r.phase, h, idx, true)
	r.inner.PutIndexed(h, idx, src)
}

// GetIndexed implements Ctx.
func (r *Recorder) GetIndexed(h Handle, idx []int, dst []int64) {
	r.c.recordIndexed(r.ID(), r.phase, h, idx, false)
	r.inner.GetIndexed(h, idx, dst)
}

// Sync implements Ctx.
func (r *Recorder) Sync() {
	r.inner.Sync()
	r.phase++
}

// Compute implements Ctx.
func (r *Recorder) Compute(b cpu.OpBlock) {
	r.c.recordCompute(r.ID(), r.phase, b)
	r.inner.Compute(b)
}

// Rand implements Ctx.
func (r *Recorder) Rand() *rand.Rand { return r.inner.Rand() }
