package service

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"time"

	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/store"
)

// The HTTP API cmd/qsmd serves:
//
//	POST   /v1/jobs             submit {"experiment","seed","runs","quick"}
//	POST   /v1/jobs:batch       submit {"jobs":[...]} with per-item outcomes
//	GET    /v1/jobs             list job statuses
//	GET    /v1/jobs/{id}        one job's status
//	GET    /v1/jobs/{id}/events SSE (or NDJSON via Accept) event stream
//	GET    /v1/jobs/{id}/trace  merged wall-clock + sim-time Perfetto trace
//	DELETE /v1/jobs/{id}        cancel a job
//	GET    /v1/batches/{id}/events  a batch's aggregate event stream
//	GET    /v1/results/{key}    a cached result entry by content address
//	GET    /v1/admin/state      scheduler/queue/subscriber introspection
//	GET    /healthz             liveness + drain state
//	GET    /metricsz            obs registry as Prometheus text
//	GET    /statusz             live introspection snapshot (JSON)
//
// Errors are {"error": "..."} with 400 (bad request/unknown experiment),
// 401 (keyed mode, missing/unknown API key), 404 (no such job/result),
// 429 + Retry-After (queue full or tenant over quota), or 503 (draining).
//
// Every request runs under TraceMiddleware: the X-Qsm-Trace request header
// (when a valid trace ID) or a freshly minted ID identifies the request, is
// echoed in the response header, stamps an "http" wall-clock span per
// request, and scopes the request's log lines.

// ForwardedHeader marks a request already forwarded once by a cluster node
// (internal/cluster aliases this constant). Forwarded submissions are
// pre-authenticated by the entrance node, so keyed mode admits them without
// re-presenting an API key.
const ForwardedHeader = "X-Qsm-Forwarded"

// SubmitRequest is the POST /v1/jobs body. Zero-valued fields take the
// same defaults the CLI uses (seed 0, 5 runs, full sweeps). Tenant,
// priority, and deadline shape queuing only — they never enter the cache
// key, so identical experiments submitted by different tenants share one
// cached result (and coalesce into one simulation when queued together).
type SubmitRequest struct {
	Experiment string `json:"experiment"`
	Seed       int64  `json:"seed"`
	Runs       int    `json:"runs"`
	Quick      bool   `json:"quick"`
	// Tenant names the submitting tenant for fair queuing; empty shares
	// the default tenant.
	Tenant string `json:"tenant,omitempty"`
	// Priority orders dequeue (higher first, with aging against
	// starvation).
	Priority int `json:"priority,omitempty"`
	// DeadlineMS is the submission's latency budget in milliseconds; among
	// equal aged priorities the earliest deadline dequeues first.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// Key reduces the request to the deterministic options view jobs are keyed
// on.
func (r SubmitRequest) Key() experiments.OptionsKey {
	return experiments.Options{Seed: r.Seed, Runs: r.Runs, Quick: r.Quick}.Key()
}

// Handler returns the scheduler's HTTP API.
func (s *Scheduler) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("POST /v1/jobs:batch", s.handleSubmitBatch)
	mux.HandleFunc("GET /v1/jobs", s.handleListJobs)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGetJob)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancelJob)
	mux.HandleFunc("GET /v1/results/{key}", s.handleGetResult)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleGetJobTrace)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	mux.HandleFunc("GET /v1/batches/{id}/events", s.handleBatchEvents)
	mux.HandleFunc("GET /v1/admin/state", s.handleAdminState)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metricsz", s.handleMetricsz)
	mux.HandleFunc("GET /statusz", s.handleStatusz)
	return mux
}

// statusWriter records the response code so the request span can carry it.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// Flush forwards to the underlying writer so SSE streams flush through the
// recorder (embedding only exposes the ResponseWriter method set).
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// TraceMiddleware scopes each request to a trace: it adopts a valid
// X-Qsm-Trace request header (so a client's submit and polls share one
// trace) or mints a fresh ID, echoes the ID in the response header, wraps
// the request in an "http" wall-clock span carrying method, path, and
// status, and attaches a request-scoped TraceContext (tracer + logger) to
// the request context for the layers below. It must wrap any
// fault-injecting middleware so aborted requests still commit their span.
func (s *Scheduler) TraceMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get(obs.TraceHeader)
		if !obs.ValidTraceID(id) {
			id = obs.NewTraceID()
		}
		w.Header().Set(obs.TraceHeader, id)
		tc := &obs.TraceContext{ID: id, Tracer: s.cfg.Tracer, Log: s.logFor(id)}
		r = r.WithContext(obs.WithTraceContext(r.Context(), tc))

		sw := &statusWriter{ResponseWriter: w}
		sp := tc.Start("http", "request", r.Method+" "+r.URL.Path,
			obs.WArg{Key: "method", Val: r.Method},
			obs.WArg{Key: "path", Val: r.URL.Path})
		// End via defer so a fault-injected abort (panic with
		// http.ErrAbortHandler) still commits the span; annotate the
		// outcome first.
		defer func() {
			if v := recover(); v != nil {
				sp.Annotate("status", "aborted")
				sp.End()
				panic(v)
			}
			code := sw.code
			if code == 0 {
				code = http.StatusOK
			}
			sp.Annotate("status", strconv.Itoa(code))
			sp.End()
		}()
		next.ServeHTTP(sw, r)
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func (s *Scheduler) handleSubmit(w http.ResponseWriter, r *http.Request) {
	tenant, authErr := s.authTenant(r)
	if authErr != nil {
		writeError(w, http.StatusUnauthorized, authErr)
		return
	}
	var req SubmitRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if s.tenants.enabled() && tenant != "" {
		// The API key, not the body, names the tenant in keyed mode.
		req.Tenant = tenant
	}
	js, err := s.SubmitCtx(r.Context(), Request{
		Experiment: req.Experiment,
		Options:    req.Key(),
		Tenant:     req.Tenant,
		Priority:   req.Priority,
		Deadline:   time.Duration(req.DeadlineMS) * time.Millisecond,
	})
	switch {
	case err == nil:
	case errors.Is(err, ErrUnknownExperiment):
		writeError(w, http.StatusBadRequest, err)
		return
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	default:
		var quota *QuotaError
		if errors.As(err, &quota) {
			w.Header().Set("Retry-After", retryAfterSeconds(quota.RetryAfter))
			writeError(w, http.StatusTooManyRequests, err)
			return
		}
		var full *QueueFullError
		if errors.As(err, &full) {
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, err)
			return
		}
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	// An admission-time cache hit is already complete; a queued job is
	// accepted for asynchronous execution.
	code := http.StatusAccepted
	if js.State == StateDone {
		code = http.StatusOK
	}
	writeJSON(w, code, js)
}

func (s *Scheduler) handleListJobs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Jobs())
}

func (s *Scheduler) handleGetJob(w http.ResponseWriter, r *http.Request) {
	js, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("service: no such job"))
		return
	}
	writeJSON(w, http.StatusOK, js)
}

func (s *Scheduler) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.Cancel(id) {
		writeError(w, http.StatusNotFound, errors.New("service: no such job"))
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"id": id, "status": "cancelling"})
}

func (s *Scheduler) handleGetResult(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if !store.ValidKey(key) {
		writeError(w, http.StatusBadRequest, errors.New("service: malformed result key"))
		return
	}
	e, ok, err := s.cfg.Store.GetCtx(r.Context(), key)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("service: no such result"))
		return
	}
	writeJSON(w, http.StatusOK, e)
}

func (s *Scheduler) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if s.Draining() {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":      status,
		"fingerprint": s.cfg.Fingerprint,
	})
}

func (s *Scheduler) handleMetricsz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.WriteMetricsText(w)
}

func (s *Scheduler) handleStatusz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Status())
}

// handleAdminState serves the operator's deep introspection view. In keyed
// mode any configured tenant's API key opens it; anonymous mode leaves it
// open like /statusz.
func (s *Scheduler) handleAdminState(w http.ResponseWriter, r *http.Request) {
	if _, err := s.authTenant(r); err != nil {
		writeError(w, http.StatusUnauthorized, err)
		return
	}
	writeJSON(w, http.StatusOK, s.AdminState())
}

// retryAfterSeconds renders a backoff as whole Retry-After seconds (min 1).
func retryAfterSeconds(d time.Duration) string {
	secs := int(d / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

func (s *Scheduler) handleGetJobTrace(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	ok, err := s.WriteJobTrace(w, r.PathValue("id"))
	if !ok {
		// WriteJobTrace writes nothing for a missing job, so the 404 is
		// still clean to send.
		writeError(w, http.StatusNotFound, errors.New("service: no such job"))
		return
	}
	if err != nil && s.cfg.Log.Enabled() {
		s.cfg.Log.Warn("writing job trace failed", "err", err)
	}
}
