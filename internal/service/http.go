package service

import (
	"encoding/json"
	"errors"
	"net/http"

	"repro/internal/experiments"
	"repro/internal/store"
)

// The HTTP API cmd/qsmd serves:
//
//	POST   /v1/jobs          submit {"experiment","seed","runs","quick"}
//	GET    /v1/jobs          list job statuses
//	GET    /v1/jobs/{id}     one job's status
//	DELETE /v1/jobs/{id}     cancel a job
//	GET    /v1/results/{key} a cached result entry by content address
//	GET    /healthz          liveness + drain state
//	GET    /metricsz         obs registry as Prometheus text
//
// Errors are {"error": "..."} with 400 (bad request/unknown experiment),
// 404 (no such job/result), 429 (queue full), or 503 (draining).

// SubmitRequest is the POST /v1/jobs body. Zero-valued fields take the
// same defaults the CLI uses (seed 0, 5 runs, full sweeps).
type SubmitRequest struct {
	Experiment string `json:"experiment"`
	Seed       int64  `json:"seed"`
	Runs       int    `json:"runs"`
	Quick      bool   `json:"quick"`
}

// Key reduces the request to the deterministic options view jobs are keyed
// on.
func (r SubmitRequest) Key() experiments.OptionsKey {
	return experiments.Options{Seed: r.Seed, Runs: r.Runs, Quick: r.Quick}.Key()
}

// Handler returns the scheduler's HTTP API.
func (s *Scheduler) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleListJobs)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGetJob)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancelJob)
	mux.HandleFunc("GET /v1/results/{key}", s.handleGetResult)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metricsz", s.handleMetricsz)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func (s *Scheduler) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	js, err := s.Submit(Request{Experiment: req.Experiment, Options: req.Key()})
	switch {
	case err == nil:
	case errors.Is(err, ErrUnknownExperiment):
		writeError(w, http.StatusBadRequest, err)
		return
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	default:
		var full *QueueFullError
		if errors.As(err, &full) {
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, err)
			return
		}
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	// An admission-time cache hit is already complete; a queued job is
	// accepted for asynchronous execution.
	code := http.StatusAccepted
	if js.State == StateDone {
		code = http.StatusOK
	}
	writeJSON(w, code, js)
}

func (s *Scheduler) handleListJobs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Jobs())
}

func (s *Scheduler) handleGetJob(w http.ResponseWriter, r *http.Request) {
	js, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("service: no such job"))
		return
	}
	writeJSON(w, http.StatusOK, js)
}

func (s *Scheduler) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.Cancel(id) {
		writeError(w, http.StatusNotFound, errors.New("service: no such job"))
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"id": id, "status": "cancelling"})
}

func (s *Scheduler) handleGetResult(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if !store.ValidKey(key) {
		writeError(w, http.StatusBadRequest, errors.New("service: malformed result key"))
		return
	}
	e, ok, err := s.cfg.Store.Get(key)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("service: no such result"))
		return
	}
	writeJSON(w, http.StatusOK, e)
}

func (s *Scheduler) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if s.Draining() {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":      status,
		"fingerprint": s.cfg.Fingerprint,
	})
}

func (s *Scheduler) handleMetricsz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.WriteMetricsText(w)
}
