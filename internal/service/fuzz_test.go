package service_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"strings"
	"sync"
	"testing"

	"repro/internal/experiments"
	"repro/internal/service"
	"repro/internal/store"
)

var (
	fuzzOnce    sync.Once
	fuzzHandler http.Handler
)

// fuzzServer lazily builds one scheduler shared by every fuzz execution.
// It is never drained: fuzz workers run in separate processes that exit.
func fuzzServer(f *testing.F) http.Handler {
	fuzzOnce.Do(func() {
		dir, err := os.MkdirTemp("", "qsm-fuzz-*")
		if err != nil {
			f.Fatal(err)
		}
		st, err := store.Open(dir, 0)
		if err != nil {
			f.Fatal(err)
		}
		s, err := service.New(service.Config{Store: st, Workers: 1, Fingerprint: "fuzz"})
		if err != nil {
			f.Fatal(err)
		}
		fuzzHandler = s.Handler()
	})
	return fuzzHandler
}

// buildRequest constructs the test request, converting httptest.NewRequest
// panics on unparseable request lines (e.g. embedded spaces) into nil. Only
// construction runs under the recover; handler panics stay fatal.
func buildRequest(method, target string, body []byte) (req *http.Request) {
	defer func() { recover() }()
	return httptest.NewRequest(method, target, bytes.NewReader(body))
}

// FuzzHandlers pins the HTTP surface's robustness: arbitrary methods,
// paths, and bodies must never panic the handler and never produce a 5xx —
// malformed input is the client's fault (4xx), not a server error.
func FuzzHandlers(f *testing.F) {
	handler := fuzzServer(f)
	f.Add(uint8(1), "/v1/jobs", []byte(`{"experiment":"nope"}`))
	f.Add(uint8(1), "/v1/jobs", []byte(`{not json`))
	f.Add(uint8(1), "/v1/jobs", []byte(`{"experiment":"fig7","bogus":1}`))
	f.Add(uint8(0), "/v1/jobs/zzz", []byte{})
	f.Add(uint8(2), "/v1/jobs/../../etc", []byte{})
	f.Add(uint8(0), "/v1/results/deadbeef", []byte{})
	f.Add(uint8(0), "/v1/results/"+strings.Repeat("zz", 32), []byte{})
	f.Add(uint8(0), "/metricsz", []byte{})
	f.Add(uint8(3), "/healthz", []byte{})
	f.Fuzz(func(t *testing.T, m uint8, target string, body []byte) {
		methods := []string{
			http.MethodGet, http.MethodPost, http.MethodDelete,
			http.MethodPut, http.MethodHead,
		}
		method := methods[int(m)%len(methods)]
		u, err := url.ParseRequestURI(target)
		if err != nil || u.Scheme != "" || u.Host != "" || !strings.HasPrefix(target, "/") {
			t.Skip("not a request path")
		}
		if method == http.MethodPost {
			// Bodies that submit a real registered experiment would run
			// actual simulations; robustness fuzzing only needs the
			// malformed and unknown-experiment paths.
			var sr service.SubmitRequest
			if json.Unmarshal(body, &sr) == nil && experiments.Known(sr.Experiment) {
				t.Skip("well-formed real submission")
			}
		}
		req := buildRequest(method, target, body)
		if req == nil {
			t.Skip("target not expressible as a request line")
		}
		if len(body) > 0 {
			req.Header.Set("Content-Type", "application/json")
		}
		rw := httptest.NewRecorder()
		handler.ServeHTTP(rw, req)
		if rw.Code >= 500 {
			t.Fatalf("%s %q (body %q) = %d %s; handlers must map bad input to 4xx",
				method, target, body, rw.Code, rw.Body.String())
		}
	})
}
