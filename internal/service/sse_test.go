package service_test

// SSE wire-format conformance: the golden file pins the exact bytes the
// service frames events with, the decoder tests pin the tolerances the
// event-stream processing model requires (comments, CRLF, dataless frames,
// multi-line data), and FuzzSSEDecoder pins the contract the client relies
// on — decode∘encode is the identity on anything the decoder accepts.

import (
	"bytes"
	"errors"
	"flag"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/service"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

const sseGoldenPath = "testdata/sse_golden.txt"

// goldenStream is the conformance sequence: lifecycle states, a progress
// event, a heartbeat comment between frames, an id-less dropped marker, and
// a multi-line data payload (the encoder must split it across data lines,
// the decoder must rejoin it with '\n').
func goldenStream() []service.StreamEvent {
	return []service.StreamEvent{
		{ID: 1, Type: service.EventState, Data: []byte(`{"id":"job-1","state":"queued"}`)},
		{ID: 2, Type: service.EventState, Data: []byte(`{"id":"job-1","state":"running"}`)},
		{ID: 3, Type: service.EventProgress, Data: []byte(`{"job":"job-1","done":4,"sweep_points":8,"sweep_runs":3}`)},
		{Type: service.EventDropped, Data: []byte(`{"dropped":2,"resume_id":3}`)},
		{ID: 6, Type: service.EventState, Data: []byte("{\"id\":\"job-1\",\n \"state\":\"done\"}")},
	}
}

// encodeGoldenStream frames the conformance sequence, with the heartbeat
// comment between the progress event and the dropped marker.
func encodeGoldenStream(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	for i, ev := range goldenStream() {
		if i == 3 {
			if err := service.WriteSSEComment(&buf, "hb"); err != nil {
				t.Fatal(err)
			}
		}
		if err := service.EncodeSSE(&buf, ev); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

func TestSSEGoldenFraming(t *testing.T) {
	got := encodeGoldenStream(t)
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(sseGoldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(sseGoldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(sseGoldenPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("encoded stream diverged from golden (rerun with -update if the change is intended)\ngot:\n%q\nwant:\n%q", got, want)
	}
}

func TestSSEDecodeGolden(t *testing.T) {
	data, err := os.ReadFile(sseGoldenPath)
	if err != nil {
		t.Fatal(err)
	}
	dec := service.NewSSEDecoder(bytes.NewReader(data))
	var got []service.StreamEvent
	for {
		ev, err := dec.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, ev)
	}
	// The heartbeat comment is invisible to decoders: exactly the framed
	// events come back, bytes intact.
	if want := goldenStream(); !reflect.DeepEqual(got, want) {
		t.Errorf("decoded golden stream = %+v, want %+v", got, want)
	}
}

// decodeAll drains a stream into its dispatched events.
func decodeAll(t *testing.T, in string) []service.StreamEvent {
	t.Helper()
	dec := service.NewSSEDecoder(strings.NewReader(in))
	var out []service.StreamEvent
	for {
		ev, err := dec.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("decode %q: %v", in, err)
		}
		out = append(out, ev)
	}
}

func TestSSEDecoderTolerances(t *testing.T) {
	tests := []struct {
		name string
		in   string
		want []service.StreamEvent
	}{
		{"crlf input parses like lf", "id: 4\r\nevent: state\r\ndata: x\r\n\r\n",
			[]service.StreamEvent{{ID: 4, Type: "state", Data: []byte("x")}}},
		{"dataless frame dispatches nothing", "id: 9\nevent: state\n\ndata: y\n\n",
			[]service.StreamEvent{{Data: []byte("y")}}},
		{"comment-only frames skipped", ": hb\n\n: hb\n\ndata: z\n\n",
			[]service.StreamEvent{{Data: []byte("z")}}},
		{"multi-line data rejoined", "data: a\ndata: b\n\n",
			[]service.StreamEvent{{Data: []byte("a\nb")}}},
		{"no space after colon", "data:x\n\n",
			[]service.StreamEvent{{Data: []byte("x")}}},
		{"unparseable id ignored", "id: nope\ndata: x\n\n",
			[]service.StreamEvent{{Data: []byte("x")}}},
		{"unknown field ignored", "retry: 100\ndata: x\n\n",
			[]service.StreamEvent{{Data: []byte("x")}}},
		{"empty data line kept", "data: \n\n",
			[]service.StreamEvent{{Data: []byte("")}}},
		{"unterminated tail discarded", "data: whole\n\ndata: torn",
			[]service.StreamEvent{{Data: []byte("whole")}}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := decodeAll(t, tc.in); !reflect.DeepEqual(got, tc.want) {
				t.Errorf("decode %q = %+v, want %+v", tc.in, got, tc.want)
			}
		})
	}
}

func TestSSEDecoderBoundsLineLength(t *testing.T) {
	// A stream that never sends a newline must error out, not grow the
	// client's buffer without bound.
	in := io.MultiReader(strings.NewReader("data: "), endless{'a'})
	_, err := service.NewSSEDecoder(in).Next()
	if !errors.Is(err, service.ErrSSELineTooLong) {
		t.Errorf("decoding an unbounded line: err = %v, want ErrSSELineTooLong", err)
	}
}

// endless yields one repeated byte forever.
type endless struct{ b byte }

func (e endless) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = e.b
	}
	return len(p), nil
}

// FuzzSSEDecoder pins the codec's round-trip contract: any event the
// decoder dispatches, re-encoded and re-decoded, comes back identical. The
// server encodes and the client decodes with this single implementation, so
// this is the property that keeps both ends agreeing on arbitrary payloads.
func FuzzSSEDecoder(f *testing.F) {
	f.Add([]byte("id: 1\nevent: state\ndata: {\"state\":\"done\"}\n\n"))
	f.Add([]byte("data: a\ndata: b\n\n: hb\n\nevent: dropped\ndata: {}\n\n"))
	f.Add([]byte("id: 99\r\nevent: progress\r\ndata: x\r\n\r\n"))
	f.Add([]byte("id: nope\nretry: 5\ndata:\n\n"))
	f.Fuzz(func(t *testing.T, in []byte) {
		dec := service.NewSSEDecoder(bytes.NewReader(in))
		for {
			ev, err := dec.Next()
			if err != nil {
				return // EOF or bound exceeded: both end the stream
			}
			var buf bytes.Buffer
			if err := service.EncodeSSE(&buf, ev); err != nil {
				t.Fatalf("re-encoding decoded event %+v: %v", ev, err)
			}
			again, err := service.NewSSEDecoder(bytes.NewReader(buf.Bytes())).Next()
			if err != nil {
				t.Fatalf("re-decoding %q (from %+v): %v", buf.Bytes(), ev, err)
			}
			if !reflect.DeepEqual(ev, again) {
				t.Fatalf("decode∘encode not identity:\nfirst:  %+v\nencode: %q\nsecond: %+v", ev, buf.Bytes(), again)
			}
		}
	})
}
