package service

// SSE wire format for the job/batch event streams. The encoder and decoder
// here are the single implementation used by the server handlers
// (stream.go), the typed client (WatchJob/WatchBatch), the conformance
// golden test, and FuzzSSEDecoder — so the bytes the service emits and the
// bytes the client accepts can never drift apart.
//
// Framing follows the text/event-stream format: one event is a block of
// "field: value" lines terminated by a blank line. We emit `id`, `event`,
// and `data` fields; comment lines (leading ':') carry heartbeats. The
// decoder is deliberately tolerant on input — unknown fields are ignored,
// multi-line data is rejoined with '\n', trailing CRs are stripped, and a
// frame with no data lines (comments, heartbeats, stray ids) dispatches
// nothing — so that decode∘encode is the identity on anything the decoder
// accepts, which is exactly what FuzzSSEDecoder pins down.

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Stream event types carried in the SSE `event` field.
const (
	// EventState carries a full JobStatus snapshot on every lifecycle
	// transition (queued, running, done, failed).
	EventState = "state"
	// EventProgress carries sweep progress ({"job","done","sweep_points",
	// "sweep_runs"}) while a job runs.
	EventProgress = "progress"
	// EventDropped marks a gap where a slow subscriber's buffer overflowed:
	// {"dropped":N,"resume_id":K}. The frame intentionally carries no SSE
	// id, so a client's Last-Event-ID stays at the last delivered event and
	// a reconnect replays the gap from the retained log.
	EventDropped = "dropped"
	// EventBatch is the aggregate-stream summary emitted once every member
	// of a batch reaches a terminal state.
	EventBatch = "batch"
)

// StreamEvent is one event on a job or batch stream. ID is the 1-based
// sequence number within its stream (0 on frames sent without an id, like
// dropped markers); Type is the SSE event name; Data is the JSON payload.
type StreamEvent struct {
	ID   uint64          `json:"id,omitempty"`
	Type string          `json:"event,omitempty"`
	Data json.RawMessage `json:"data,omitempty"`
}

// EncodeSSE writes ev as one text/event-stream frame: optional `id` and
// `event` lines, the payload split across `data` lines on embedded
// newlines, and the terminating blank line.
func EncodeSSE(w io.Writer, ev StreamEvent) error {
	var b strings.Builder
	if ev.ID > 0 {
		fmt.Fprintf(&b, "id: %d\n", ev.ID)
	}
	if ev.Type != "" {
		fmt.Fprintf(&b, "event: %s\n", ev.Type)
	}
	for _, line := range strings.Split(string(ev.Data), "\n") {
		b.WriteString("data: ")
		b.WriteString(line)
		b.WriteByte('\n')
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteSSEComment writes a comment frame (": text\n\n") — invisible to SSE
// clients, used as a connection heartbeat.
func WriteSSEComment(w io.Writer, text string) error {
	_, err := fmt.Fprintf(w, ": %s\n\n", text)
	return err
}

// maxSSELine bounds one line of decoder input, so a stream that never sends
// a newline cannot grow a client buffer without bound.
const maxSSELine = 1 << 20

// ErrSSELineTooLong reports a stream line over the decoder's bound.
var ErrSSELineTooLong = errors.New("sse: line exceeds 1MiB bound")

// SSEDecoder incrementally parses a text/event-stream body into
// StreamEvents.
type SSEDecoder struct {
	r *bufio.Reader
}

// NewSSEDecoder wraps r for frame-at-a-time decoding.
func NewSSEDecoder(r io.Reader) *SSEDecoder {
	return &SSEDecoder{r: bufio.NewReader(r)}
}

// Next returns the next dispatched event. Comment-only frames and frames
// without data lines are skipped, per the event-stream processing model; an
// unterminated trailing frame is discarded. It returns io.EOF at end of
// stream.
func (d *SSEDecoder) Next() (StreamEvent, error) {
	var (
		ev       StreamEvent
		data     []string
		haveData bool
	)
	for {
		line, err := d.readLine()
		if err != nil {
			return StreamEvent{}, err
		}
		if line == "" { // blank line: dispatch the accumulated frame
			if haveData {
				ev.Data = json.RawMessage(strings.Join(data, "\n"))
				return ev, nil
			}
			ev, data = StreamEvent{}, nil // nothing to dispatch; reset
			continue
		}
		if line[0] == ':' { // comment (heartbeat)
			continue
		}
		field, value := line, ""
		if i := strings.IndexByte(line, ':'); i >= 0 {
			field, value = line[:i], strings.TrimPrefix(line[i+1:], " ")
		}
		switch field {
		case "data":
			data = append(data, value)
			haveData = true
		case "event":
			ev.Type = value
		case "id":
			if n, err := strconv.ParseUint(value, 10, 64); err == nil {
				ev.ID = n
			}
		}
	}
}

// readLine reads one input line, stripping the terminator and any trailing
// CRs (so CRLF input parses like LF input and decoded payloads never end in
// a bare CR — which keeps decode∘encode the identity).
func (d *SSEDecoder) readLine() (string, error) {
	var b []byte
	for {
		chunk, err := d.r.ReadSlice('\n')
		b = append(b, chunk...)
		if len(b) > maxSSELine {
			return "", ErrSSELineTooLong
		}
		if err == bufio.ErrBufferFull {
			continue
		}
		if err != nil {
			if err == io.EOF && len(b) > 0 {
				// Unterminated final line: the frame it belongs to can
				// never be dispatched (no blank line follows), so per the
				// processing model it is discarded with the stream end.
				return "", io.EOF
			}
			return "", err
		}
		return strings.TrimRight(strings.TrimSuffix(string(b), "\n"), "\r"), nil
	}
}
