package service

// Live introspection for qsmd: Status() assembles the one-screen snapshot
// /statusz serves (and cmd/qsmtop renders) — scheduler queue and job-state
// counts, store health and degradation counters, fault-injection fire
// counts, and uptime. Everything here is a read-side view over state the
// serving path already maintains; taking a snapshot never blocks a worker
// beyond the same short locks the serving path uses.

import (
	"io"
	"runtime"
	"sort"
	"time"

	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/store"
)

// QueueStatus describes the admission queue.
type QueueStatus struct {
	Depth    int `json:"depth"`
	Capacity int `json:"capacity"`
	// AgingStepSeconds is the starvation-protection quantum: +1 effective
	// priority per step waited.
	AgingStepSeconds float64 `json:"aging_step_seconds,omitempty"`
	// Tenants is the queued-job count per tenant (omitted when idle).
	Tenants map[string]int `json:"tenants,omitempty"`
}

// SchedStatus reports the work-stealing simulation scheduler: process-wide
// steal/overflow/park totals since start, plus a racy snapshot of every
// pool currently inside a sweep with its per-worker deque depths.
type SchedStatus struct {
	Steals    uint64           `json:"steals"`
	Overflows uint64           `json:"overflows"`
	Parks     uint64           `json:"parks"`
	Pools     []sched.PoolInfo `json:"pools,omitempty"`
}

// JobCounts breaks the job table down by lifecycle state.
type JobCounts struct {
	Queued  int `json:"queued"`
	Running int `json:"running"`
	Done    int `json:"done"`
	Failed  int `json:"failed"`
	Total   int `json:"total"`
}

// SchedulerCounters mirrors the scheduler's self-metrics as plain numbers.
type SchedulerCounters struct {
	Submitted   uint64 `json:"submitted"`
	Rejected    uint64 `json:"rejected"`
	Failed      uint64 `json:"failed"`
	Retried     uint64 `json:"retried"`
	CacheHits   uint64 `json:"cache_hits"`
	CacheMisses uint64 `json:"cache_misses"`
	Inflight    int64  `json:"inflight"`
	// Coalesced counts jobs served from a batch leader's simulation;
	// CoalescedBatches counts the multi-job batches themselves.
	Coalesced        uint64 `json:"coalesced"`
	CoalescedBatches uint64 `json:"coalesced_batches"`
}

// FaultStatus reports the fault injector's armed state and per-class fire
// counts.
type FaultStatus struct {
	Armed    bool              `json:"armed"`
	Injected map[string]uint64 `json:"injected,omitempty"`
}

// Status is the /statusz payload: one JSON object summarising the live
// state of the serving stack.
type Status struct {
	UptimeSeconds float64           `json:"uptime_seconds"`
	Fingerprint   string            `json:"fingerprint"`
	Draining      bool              `json:"draining"`
	TraceEnabled  bool              `json:"trace_enabled"`
	Workers       int               `json:"workers"`
	Goroutines    int               `json:"goroutines"`
	WallSpans     int               `json:"wall_spans"`
	WallDropped   uint64            `json:"wall_spans_dropped,omitempty"`
	Queue         QueueStatus       `json:"queue"`
	Jobs          JobCounts         `json:"jobs"`
	Scheduler     SchedulerCounters `json:"scheduler"`
	Sched         SchedStatus       `json:"sched"`
	Store         store.Stats       `json:"store"`
	Faults        FaultStatus       `json:"faults"`
	// Streams summarises the push side: live subscribers and fan-out
	// counters.
	Streams StreamStatus `json:"streams"`
	// Tenants is the per-tenant quota view; present only in keyed
	// multi-tenant mode.
	Tenants map[string]TenantStatus `json:"tenants,omitempty"`
}

// Status assembles a point-in-time introspection snapshot.
func (s *Scheduler) Status() Status {
	st := Status{
		UptimeSeconds: time.Since(s.started).Seconds(),
		Fingerprint:   s.cfg.Fingerprint,
		TraceEnabled:  s.cfg.Tracer.Enabled(),
		Workers:       s.cfg.Workers,
		Goroutines:    runtime.NumGoroutine(),
		WallSpans:     s.cfg.Tracer.Spans(),
		WallDropped:   s.cfg.Tracer.Dropped(),
		Queue: QueueStatus{
			Depth:            s.queue.Len(),
			Capacity:         s.queue.Cap(),
			AgingStepSeconds: s.cfg.AgingStep.Seconds(),
			Tenants:          s.queue.TenantDepths(),
		},
		Store: s.cfg.Store.Stats(),
	}
	t := sched.Totals()
	st.Sched = SchedStatus{
		Steals:    t.Steals,
		Overflows: t.Overflows,
		Parks:     t.Parks,
		Pools:     sched.LivePools(),
	}

	s.mu.Lock()
	st.Draining = s.draining
	st.Jobs.Total = len(s.jobs)
	jobs := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	for _, j := range jobs {
		j.mu.Lock()
		state := j.state
		j.mu.Unlock()
		switch state {
		case StateQueued:
			st.Jobs.Queued++
		case StateRunning:
			st.Jobs.Running++
		case StateDone:
			st.Jobs.Done++
		case StateFailed:
			st.Jobs.Failed++
		}
	}

	s.met.Lock()
	st.Scheduler = SchedulerCounters{
		Submitted:        s.met.submitted.Value(),
		Rejected:         s.met.rejected.Value(),
		Failed:           s.met.failed.Value(),
		Retried:          s.met.retried.Value(),
		CacheHits:        s.met.hits.Value(),
		CacheMisses:      s.met.misses.Value(),
		Inflight:         s.met.inflight.Value(),
		Coalesced:        s.met.coalesced.Value(),
		CoalescedBatches: s.met.batches.Value(),
	}
	s.met.Unlock()

	if s.cfg.Faults != nil {
		st.Faults.Armed = true
		st.Faults.Injected = map[string]uint64{}
		for _, c := range faults.Classes() {
			st.Faults.Injected[c.String()] = s.cfg.Faults.Count(c)
		}
	}
	st.Streams = s.streams.status()
	st.Tenants = s.tenants.status(st.Queue.Tenants)
	return st
}

// AdminState is the GET /v1/admin/state payload: the operator's deep view —
// every queued job with its aged priority, every live stream subscriber,
// batch completion state, and tenant quota usage.
type AdminState struct {
	Draining    bool                    `json:"draining"`
	Workers     int                     `json:"workers"`
	Queue       []QueuedJobInfo         `json:"queue"`
	Jobs        JobCounts               `json:"jobs"`
	Batches     []BatchInfo             `json:"batches,omitempty"`
	Subscribers []SubscriberInfo        `json:"subscribers,omitempty"`
	Streams     StreamStatus            `json:"streams"`
	Tenants     map[string]TenantStatus `json:"tenants,omitempty"`
}

// AdminState assembles the admin introspection snapshot.
func (s *Scheduler) AdminState() AdminState {
	st := s.Status()
	out := AdminState{
		Draining:    st.Draining,
		Workers:     st.Workers,
		Queue:       s.queue.snapshot(),
		Jobs:        st.Jobs,
		Subscribers: s.streams.subscribers(),
		Streams:     st.Streams,
		Tenants:     st.Tenants,
	}
	s.mu.Lock()
	batches := make([]*batchStream, 0, len(s.batches))
	for _, b := range s.batches {
		batches = append(batches, b)
	}
	s.mu.Unlock()
	for _, b := range batches {
		out.Batches = append(out.Batches, b.info())
	}
	sort.Slice(out.Batches, func(a, b int) bool { return out.Batches[a].ID < out.Batches[b].ID })
	return out
}

// WriteJobTrace writes the merged Perfetto trace for one job: its wall-clock
// spans (HTTP handling, queue wait, scheduler attempts, store I/O, runner
// execution — every span tagged with the job's trace ID, including the
// client's polls when the client propagated the ID) alongside the job's
// sim-time spans when the scheduler collected them. It reports whether the
// job exists; a job without tracing exports an empty-but-valid trace.
func (s *Scheduler) WriteJobTrace(w io.Writer, id string) (bool, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return false, nil
	}
	return true, obs.WriteMergedTrace(w, j.traceID, s.cfg.Tracer, j.SimTrace())
}
