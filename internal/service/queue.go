package service

import (
	"sort"
	"sync"
	"time"
)

// admitQueue is the scheduler's admission queue: the service-side extension
// of the work-stealing refactor (internal/sched gives the runner LPT
// scheduling inside one sweep; this gives the serving tier priority,
// deadline, and tenant fairness across sweeps). It replaces the old FIFO
// channel with policy-aware dequeue:
//
//   - Priority: higher Request.Priority dequeues first.
//   - Aging: a job's effective priority rises by one for every AgingStep it
//     has waited, so a flood of high-priority work cannot starve
//     low-priority tenants — any queued job eventually outranks fresh
//     arrivals. Aging is quantised to whole steps so that jobs submitted
//     within the same step still tie (and fall through to fairness) instead
//     of racing on microsecond arrival order.
//   - Deadline: among equal effective priorities, earliest deadline first;
//     jobs without a deadline sort after all deadlined work.
//   - Tenant fairness: remaining ties go to the tenant served least
//     recently, so two tenants flooding unevenly still alternate; within a
//     tenant, submission order (seq) wins — single-tenant workloads keep
//     the old FIFO behaviour exactly.
//
// popBatch additionally coalesces admission: every queued job sharing the
// dequeued leader's cache key (any tenant — the result is identical by
// determinism) leaves the queue in the same batch, and the scheduler runs
// one simulation for all of them.
//
// All methods are safe for concurrent use. Blocking happens only in
// popBatch; push is non-blocking admission control.
type admitQueue struct {
	mu       sync.Mutex
	cond     *sync.Cond
	capacity int
	aging    time.Duration
	closed   bool
	size     int
	tenants  map[string]*tenantQueue
	// serveSeq orders pops; each tenant's lastServed is the serveSeq of its
	// most recent dequeue, and fairness prefers the smallest.
	serveSeq uint64
}

type tenantQueue struct {
	jobs       []*job // FIFO by seq
	lastServed uint64
}

func newAdmitQueue(capacity int, aging time.Duration) *admitQueue {
	q := &admitQueue{
		capacity: capacity,
		aging:    aging,
		tenants:  map[string]*tenantQueue{},
	}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *admitQueue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.size
}

func (q *admitQueue) Cap() int { return q.capacity }

// TenantDepths snapshots the queued-job count per tenant (the "" tenant is
// reported as-is; the HTTP layer admits it for untenanted submissions).
func (q *admitQueue) TenantDepths() map[string]int {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make(map[string]int, len(q.tenants))
	for name, tq := range q.tenants {
		if len(tq.jobs) > 0 {
			out[name] = len(tq.jobs)
		}
	}
	return out
}

// TenantDepth returns one tenant's queued-job count; the quota path checks
// it against MaxQueued at admission.
func (q *admitQueue) TenantDepth(name string) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	if tq := q.tenants[name]; tq != nil {
		return len(tq.jobs)
	}
	return 0
}

// QueuedJobInfo is one queued job's row in the admin state.
type QueuedJobInfo struct {
	ID         string `json:"id"`
	Experiment string `json:"experiment"`
	Tenant     string `json:"tenant,omitempty"`
	Priority   int    `json:"priority"`
	// EffectivePriority is the aged priority the next dequeue would use.
	EffectivePriority int     `json:"effective_priority"`
	WaitedSeconds     float64 `json:"waited_seconds"`
}

// snapshot lists every queued job in submission order, with aged
// priorities as of now.
func (q *admitQueue) snapshot() []QueuedJobInfo {
	q.mu.Lock()
	defer q.mu.Unlock()
	now := time.Now()
	var queued []*job
	for _, tq := range q.tenants {
		queued = append(queued, tq.jobs...)
	}
	sort.Slice(queued, func(a, b int) bool { return queued[a].seq < queued[b].seq })
	out := make([]QueuedJobInfo, 0, len(queued))
	for _, j := range queued {
		out = append(out, QueuedJobInfo{
			ID:                j.id,
			Experiment:        j.experiment,
			Tenant:            j.tenant,
			Priority:          j.priority,
			EffectivePriority: q.effPriority(j, now),
			WaitedSeconds:     now.Sub(j.created).Seconds(),
		})
	}
	return out
}

// push admits j, reporting false when the queue is at capacity.
func (q *admitQueue) push(j *job) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.size >= q.capacity {
		return false
	}
	tq := q.tenants[j.tenant]
	if tq == nil {
		tq = &tenantQueue{}
		q.tenants[j.tenant] = tq
	}
	tq.jobs = append(tq.jobs, j)
	q.size++
	q.cond.Signal()
	return true
}

// close wakes all blocked workers; popBatch drains the remaining jobs and
// then reports done.
func (q *admitQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// effPriority is j's aged priority at now: the submitted priority plus one
// per whole AgingStep waited.
func (q *admitQueue) effPriority(j *job, now time.Time) int {
	if q.aging <= 0 {
		return j.priority
	}
	return j.priority + int(now.Sub(j.created)/q.aging)
}

// better reports whether a should dequeue before b under the policy order:
// aged priority, deadline, tenant fairness, submission order.
func (q *admitQueue) better(a, b *job, now time.Time) bool {
	ap, bp := q.effPriority(a, now), q.effPriority(b, now)
	if ap != bp {
		return ap > bp
	}
	ad, bd := a.deadline, b.deadline
	if !ad.IsZero() || !bd.IsZero() {
		if ad.IsZero() != bd.IsZero() {
			return !ad.IsZero() // deadlined work before open-ended work
		}
		if !ad.Equal(bd) {
			return ad.Before(bd)
		}
	}
	at, bt := q.tenants[a.tenant], q.tenants[b.tenant]
	if a.tenant != b.tenant && at.lastServed != bt.lastServed {
		return at.lastServed < bt.lastServed
	}
	return a.seq < b.seq
}

// popBatch blocks until a job is available (or the queue is closed and
// empty), selects the best job under the policy, and returns it together
// with every queued job sharing its cache key — identical submissions ride
// the leader's single simulation. The leader is batch[0]; followers follow
// in submission order. ok=false means closed and drained.
func (q *admitQueue) popBatch() (batch []*job, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.size == 0 {
		if q.closed {
			return nil, false
		}
		q.cond.Wait()
	}
	now := time.Now()
	var leader *job
	for _, tq := range q.tenants {
		// Within a tenant only the front of each aged-priority class can
		// win, but scanning all queued jobs keeps the policy exact; queue
		// capacity bounds the scan.
		for _, j := range tq.jobs {
			if leader == nil || q.better(j, leader, now) {
				leader = j
			}
		}
	}
	batch = append(batch, leader)
	for _, tq := range q.tenants {
		for _, j := range tq.jobs {
			if j != leader && j.cacheKey == leader.cacheKey {
				batch = append(batch, j)
			}
		}
	}
	// Followers complete in submission order for deterministic test
	// observation; the leader stays first.
	if len(batch) > 2 {
		rest := batch[1:]
		for i := 1; i < len(rest); i++ {
			for k := i; k > 0 && rest[k].seq < rest[k-1].seq; k-- {
				rest[k], rest[k-1] = rest[k-1], rest[k]
			}
		}
	}
	q.serveSeq++
	for _, j := range batch {
		tq := q.tenants[j.tenant]
		tq.lastServed = q.serveSeq
		for i, x := range tq.jobs {
			if x == j {
				tq.jobs = append(tq.jobs[:i], tq.jobs[i+1:]...)
				break
			}
		}
		q.size--
	}
	return batch, true
}
