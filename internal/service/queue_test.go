package service_test

import (
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/service"
)

// submitQ submits with full queuing identity (tenant, priority, deadline).
func submitQ(t *testing.T, s *testSched, exp string, seed int64, tenant string, prio int, deadline time.Duration) service.JobStatus {
	t.Helper()
	js, err := s.Submit(service.Request{
		Experiment: exp,
		Options:    experiments.Options{Seed: seed, Runs: 1, Quick: true}.Key(),
		Tenant:     tenant,
		Priority:   prio,
		Deadline:   deadline,
	})
	if err != nil {
		t.Fatalf("submit %s seed %d: %v", exp, seed, err)
	}
	return js
}

// finishOrder drains lifecycle events until every listed job is terminal and
// returns their completion order. With Workers=1 completion order is dequeue
// order, which is what the queue-policy tests assert on.
func finishOrder(t *testing.T, s *testSched, ids ...string) []string {
	t.Helper()
	want := map[string]bool{}
	for _, id := range ids {
		want[id] = true
	}
	var order []string
	deadline := time.After(30 * time.Second)
	for len(order) < len(ids) {
		select {
		case js := <-s.events:
			if terminal(js.State) && want[js.ID] {
				delete(want, js.ID)
				order = append(order, js.ID)
			}
		case <-deadline:
			t.Fatalf("jobs did not finish; still waiting on %v", want)
		}
	}
	return order
}

// blockWorker parks the single worker inside a test-block job and returns
// the release channel plus the blocker's job ID. Everything submitted while
// blocked queues up, so tests control exactly what the dequeue policy sees.
func blockWorker(t *testing.T, s *testSched, seed int64) (chan struct{}, string) {
	t.Helper()
	started, release := resetBlock()
	js := submit(t, s, "test-block", seed)
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("blocker job never started")
	}
	return release, js.ID
}

func TestQueuePriorityOrder(t *testing.T) {
	s := newSched(t, service.Config{Workers: 1})
	release, blocker := blockWorker(t, s, 900)

	low := submitQ(t, s, "test-block", 901, "", 0, 0)
	high := submitQ(t, s, "test-block", 902, "", 5, 0)
	mid := submitQ(t, s, "test-block", 903, "", 2, 0)
	close(release)

	order := finishOrder(t, s, blocker, low.ID, high.ID, mid.ID)
	want := []string{blocker, high.ID, mid.ID, low.ID}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("completion order = %v, want %v (priority order)", order, want)
		}
	}
	if st, _ := s.Job(high.ID); st.Priority != 5 || st.Tenant != "" {
		t.Errorf("status lost queuing identity: %+v", st)
	}
}

func TestQueueDeadlineOrder(t *testing.T) {
	s := newSched(t, service.Config{Workers: 1})
	release, blocker := blockWorker(t, s, 910)

	open := submitQ(t, s, "test-block", 911, "", 0, 0)
	late := submitQ(t, s, "test-block", 912, "", 0, 10*time.Second)
	soon := submitQ(t, s, "test-block", 913, "", 0, time.Second)
	close(release)

	order := finishOrder(t, s, blocker, open.ID, late.ID, soon.ID)
	want := []string{blocker, soon.ID, late.ID, open.ID}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("completion order = %v, want %v (EDF, deadlined before open-ended)", order, want)
		}
	}
}

// TestQueueTenantFairness floods the queue from one tenant and checks a
// competing tenant's single job is served second, not behind the flood.
func TestQueueTenantFairness(t *testing.T) {
	s := newSched(t, service.Config{Workers: 1})
	release, blocker := blockWorker(t, s, 920)

	var flood []string
	for i := int64(0); i < 4; i++ {
		flood = append(flood, submitQ(t, s, "test-block", 921+i, "tenant-a", 0, 0).ID)
	}
	b := submitQ(t, s, "test-block", 930, "tenant-b", 0, 0)

	if depths := s.Status().Queue.Tenants; depths["tenant-a"] != 4 || depths["tenant-b"] != 1 {
		t.Errorf("queue tenant depths = %v, want tenant-a:4 tenant-b:1", depths)
	}
	close(release)

	ids := append(append([]string{blocker}, flood...), b.ID)
	order := finishOrder(t, s, ids...)
	// tenant-a wins the first pop on submission order, then tenant-b's
	// fair-share turn comes immediately — not after the whole flood.
	want := []string{blocker, flood[0], b.ID, flood[1], flood[2], flood[3]}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("completion order = %v, want %v (tenant round-robin)", order, want)
		}
	}
}

// TestQueueAgingPreventsStarvation gives a low-priority job a head start of
// many aging steps and checks it outranks a fresh high-priority job: the
// no-starvation guarantee.
func TestQueueAgingPreventsStarvation(t *testing.T) {
	s := newSched(t, service.Config{Workers: 1, AgingStep: 10 * time.Millisecond})
	release, blocker := blockWorker(t, s, 940)

	low := submitQ(t, s, "test-block", 941, "", 0, 0)
	// Let the low-priority job age ~10 steps; the fresh job's priority of 3
	// cannot catch up since both age at the same rate afterwards.
	time.Sleep(120 * time.Millisecond)
	high := submitQ(t, s, "test-block", 942, "", 3, 0)
	close(release)

	order := finishOrder(t, s, blocker, low.ID, high.ID)
	want := []string{blocker, low.ID, high.ID}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("completion order = %v, want %v (aged job first)", order, want)
		}
	}
}

// TestQueueBatchCoalescing queues three identical submissions (two tenants)
// and checks one simulation serves all three: the leader computes, the
// followers finish coalesced with the same result key.
func TestQueueBatchCoalescing(t *testing.T) {
	s := newSched(t, service.Config{Workers: 1})
	release, _ := blockWorker(t, s, 950)

	leader := submitQ(t, s, "fig7", 951, "tenant-a", 0, 0)
	f1 := submitQ(t, s, "fig7", 951, "tenant-a", 0, 0)
	f2 := submitQ(t, s, "fig7", 951, "tenant-b", 0, 0)
	if f1.CacheKey != leader.CacheKey || f2.CacheKey != leader.CacheKey {
		t.Fatalf("identical submissions got different cache keys")
	}
	close(release)

	ld := waitJob(t, s, leader.ID)
	w1 := waitJob(t, s, f1.ID)
	w2 := waitJob(t, s, f2.ID)
	if ld.State != service.StateDone || ld.Coalesced {
		t.Fatalf("leader = %+v, want done and not coalesced", ld)
	}
	for _, f := range []service.JobStatus{w1, w2} {
		if f.State != service.StateDone || !f.Coalesced || !f.Cached {
			t.Fatalf("follower = %+v, want done, coalesced, cached", f)
		}
		if f.ResultKey != ld.ResultKey {
			t.Fatalf("follower result key %s != leader %s", f.ResultKey, ld.ResultKey)
		}
	}
	st := s.Status()
	if st.Scheduler.Coalesced != 2 || st.Scheduler.CoalescedBatches != 1 {
		t.Errorf("coalesce counters = %d jobs / %d batches, want 2 / 1",
			st.Scheduler.Coalesced, st.Scheduler.CoalescedBatches)
	}
}

// TestStatusSchedSection checks /statusz's scheduler section reflects the
// process-wide work-stealing totals.
func TestStatusSchedSection(t *testing.T) {
	s := newSched(t, service.Config{Workers: 1, SimParallelism: 4})
	done := waitJob(t, s, submit(t, s, "fig7", 960).ID)
	if done.State != service.StateDone {
		t.Fatalf("job state = %s (%s)", done.State, done.Error)
	}
	st := s.Status()
	// fig7 quick fans dozens of jobs over 4 stealing workers; with the
	// whole sweep claimed through the deques, a zero steal count alongside
	// zero parks would mean the pool never ran at all.
	if st.Sched.Steals == 0 && st.Sched.Parks == 0 && st.Sched.Overflows == 0 {
		t.Errorf("sched totals all zero after a parallel sweep: %+v", st.Sched)
	}
}
