package service_test

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/service"
)

// scriptedServer runs handler and counts requests.
func scriptedServer(t *testing.T, handler func(n int64, w http.ResponseWriter, r *http.Request)) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var n atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		handler(n.Add(1), w, r)
	}))
	t.Cleanup(srv.Close)
	return srv, &n
}

func retryClient(srv *httptest.Server, attempts int) *service.Client {
	return &service.Client{
		BaseURL: srv.URL,
		HTTP:    srv.Client(),
		Retry: service.RetryPolicy{
			MaxAttempts: attempts,
			BaseBackoff: time.Millisecond,
			MaxBackoff:  5 * time.Millisecond,
			Seed:        1,
		},
	}
}

func TestClientRetries5xx(t *testing.T) {
	srv, n := scriptedServer(t, func(n int64, w http.ResponseWriter, r *http.Request) {
		if n <= 2 {
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte(`{"error":"try later"}`))
			return
		}
		w.Write([]byte(`{"id":"job-1","state":"done"}`))
	})
	c := retryClient(srv, 4)
	js, err := c.Job(context.Background(), "job-1")
	if err != nil {
		t.Fatalf("Job after retries = %v", err)
	}
	if js.State != service.StateDone {
		t.Errorf("state = %s, want done", js.State)
	}
	if got := n.Load(); got != 3 {
		t.Errorf("server saw %d requests, want 3 (two 503s, one success)", got)
	}
}

func TestClientRetriesDroppedResponses(t *testing.T) {
	srv, n := scriptedServer(t, func(n int64, w http.ResponseWriter, r *http.Request) {
		if n == 1 {
			// Abort the connection mid-response: the client sees a transport
			// error, not a status.
			panic(http.ErrAbortHandler)
		}
		w.Write([]byte(`{"id":"job-1","state":"done"}`))
	})
	c := retryClient(srv, 3)
	if _, err := c.Job(context.Background(), "job-1"); err != nil {
		t.Fatalf("Job after dropped response = %v", err)
	}
	if got := n.Load(); got != 2 {
		t.Errorf("server saw %d requests, want 2", got)
	}
}

func TestClientDoesNotRetry4xx(t *testing.T) {
	srv, n := scriptedServer(t, func(n int64, w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNotFound)
		w.Write([]byte(`{"error":"no such job"}`))
	})
	c := retryClient(srv, 5)
	_, err := c.Job(context.Background(), "job-1")
	if err == nil || !strings.Contains(err.Error(), "HTTP 404") {
		t.Fatalf("error = %v, want the 404 surfaced", err)
	}
	if strings.Contains(err.Error(), "attempts failed") {
		t.Errorf("single-attempt failure wrapped as retried: %v", err)
	}
	if got := n.Load(); got != 1 {
		t.Errorf("server saw %d requests, want 1 (404 is not retryable)", got)
	}
}

func TestClientRetryBudgetExhausted(t *testing.T) {
	srv, n := scriptedServer(t, func(n int64, w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
		w.Write([]byte(`{"error":"broken"}`))
	})
	c := retryClient(srv, 3)
	_, err := c.Job(context.Background(), "job-1")
	if err == nil || !strings.Contains(err.Error(), "3 attempts failed") {
		t.Fatalf("error = %v, want a 3-attempt failure", err)
	}
	if !strings.Contains(err.Error(), "broken") {
		t.Errorf("wrapped error lost the server's message: %v", err)
	}
	if got := n.Load(); got != 3 {
		t.Errorf("server saw %d requests, want exactly the budget of 3", got)
	}
}

func TestClientRequestTimeoutRetries(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	srv, n := scriptedServer(t, func(n int64, w http.ResponseWriter, r *http.Request) {
		if n == 1 {
			// Stall past the per-attempt timeout (or until test teardown).
			select {
			case <-r.Context().Done():
			case <-release:
			}
			return
		}
		w.Write([]byte(`{"id":"job-1","state":"done"}`))
	})
	c := retryClient(srv, 2)
	c.RequestTimeout = 50 * time.Millisecond
	js, err := c.Job(context.Background(), "job-1")
	if err != nil {
		t.Fatalf("Job after slow first attempt = %v", err)
	}
	if js.State != service.StateDone {
		t.Errorf("state = %s, want done", js.State)
	}
	if got := n.Load(); got != 2 {
		t.Errorf("server saw %d requests, want 2", got)
	}
}

func TestClientCallerContextStopsRetries(t *testing.T) {
	srv, n := scriptedServer(t, func(n int64, w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte(`{"error":"try later"}`))
	})
	c := retryClient(srv, 100)
	c.Retry.BaseBackoff = 50 * time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, err := c.Job(ctx, "job-1")
	if err == nil {
		t.Fatal("Job succeeded against an always-503 server")
	}
	if got := n.Load(); got >= 10 {
		t.Errorf("server saw %d requests; the cancelled context should have stopped the loop early", got)
	}
}
