package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"repro/internal/store"
)

// Client talks to a qsmd server; qsmbench -server is built on it.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8344".
	BaseURL string
	// HTTP overrides the transport; nil means http.DefaultClient.
	HTTP *http.Client
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) url(path string) string {
	return strings.TrimRight(c.BaseURL, "/") + path
}

// do issues one request and decodes the JSON response into out, converting
// {"error": ...} bodies on non-2xx statuses into errors.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.url(path), rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			return fmt.Errorf("qsmd: %s (HTTP %d)", e.Error, resp.StatusCode)
		}
		return fmt.Errorf("qsmd: HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(data))
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

// Submit posts one job.
func (c *Client) Submit(ctx context.Context, req SubmitRequest) (JobStatus, error) {
	var js JobStatus
	err := c.do(ctx, http.MethodPost, "/v1/jobs", req, &js)
	return js, err
}

// Job fetches one job's status.
func (c *Client) Job(ctx context.Context, id string) (JobStatus, error) {
	var js JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id), nil, &js)
	return js, err
}

// Result fetches a cached result entry by content address.
func (c *Client) Result(ctx context.Context, key string) (*store.Entry, error) {
	var e store.Entry
	if err := c.do(ctx, http.MethodGet, "/v1/results/"+url.PathEscape(key), nil, &e); err != nil {
		return nil, err
	}
	return &e, nil
}

// Cancel requests cancellation of a job.
func (c *Client) Cancel(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, "/v1/jobs/"+url.PathEscape(id), nil, nil)
}

// Wait polls a job at the given interval until it reaches a terminal state
// (done or failed), calling onPoll (when non-nil) with each observed
// status. It returns the terminal status; reaching a terminal state is not
// an error even when the job failed.
func (c *Client) Wait(ctx context.Context, id string, interval time.Duration, onPoll func(JobStatus)) (JobStatus, error) {
	if interval <= 0 {
		interval = 200 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		js, err := c.Job(ctx, id)
		if err != nil {
			return js, err
		}
		if onPoll != nil {
			onPoll(js)
		}
		if js.State == StateDone || js.State == StateFailed {
			return js, nil
		}
		select {
		case <-ctx.Done():
			return js, ctx.Err()
		case <-t.C:
		}
	}
}
